# Empty dependencies file for nmine_tests.
# This may be replaced when dependencies are built.
