
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bio/amino_acids_test.cc" "tests/CMakeFiles/nmine_tests.dir/bio/amino_acids_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/bio/amino_acids_test.cc.o.d"
  "/root/repo/tests/bio/blosum_test.cc" "tests/CMakeFiles/nmine_tests.dir/bio/blosum_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/bio/blosum_test.cc.o.d"
  "/root/repo/tests/bio/fasta_test.cc" "tests/CMakeFiles/nmine_tests.dir/bio/fasta_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/bio/fasta_test.cc.o.d"
  "/root/repo/tests/core/alphabet_test.cc" "tests/CMakeFiles/nmine_tests.dir/core/alphabet_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/core/alphabet_test.cc.o.d"
  "/root/repo/tests/core/compatibility_matrix_test.cc" "tests/CMakeFiles/nmine_tests.dir/core/compatibility_matrix_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/core/compatibility_matrix_test.cc.o.d"
  "/root/repo/tests/core/match_test.cc" "tests/CMakeFiles/nmine_tests.dir/core/match_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/core/match_test.cc.o.d"
  "/root/repo/tests/core/matrix_io_test.cc" "tests/CMakeFiles/nmine_tests.dir/core/matrix_io_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/core/matrix_io_test.cc.o.d"
  "/root/repo/tests/core/pattern_test.cc" "tests/CMakeFiles/nmine_tests.dir/core/pattern_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/core/pattern_test.cc.o.d"
  "/root/repo/tests/db/database_test.cc" "tests/CMakeFiles/nmine_tests.dir/db/database_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/db/database_test.cc.o.d"
  "/root/repo/tests/db/format_test.cc" "tests/CMakeFiles/nmine_tests.dir/db/format_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/db/format_test.cc.o.d"
  "/root/repo/tests/db/sampler_test.cc" "tests/CMakeFiles/nmine_tests.dir/db/sampler_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/db/sampler_test.cc.o.d"
  "/root/repo/tests/eval/calibration_test.cc" "tests/CMakeFiles/nmine_tests.dir/eval/calibration_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/eval/calibration_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/nmine_tests.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/eval/metrics_test.cc.o.d"
  "/root/repo/tests/eval/table_test.cc" "tests/CMakeFiles/nmine_tests.dir/eval/table_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/eval/table_test.cc.o.d"
  "/root/repo/tests/gen/matrix_generator_test.cc" "tests/CMakeFiles/nmine_tests.dir/gen/matrix_generator_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/gen/matrix_generator_test.cc.o.d"
  "/root/repo/tests/gen/noise_model_test.cc" "tests/CMakeFiles/nmine_tests.dir/gen/noise_model_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/gen/noise_model_test.cc.o.d"
  "/root/repo/tests/gen/sequence_generator_test.cc" "tests/CMakeFiles/nmine_tests.dir/gen/sequence_generator_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/gen/sequence_generator_test.cc.o.d"
  "/root/repo/tests/gen/workload_test.cc" "tests/CMakeFiles/nmine_tests.dir/gen/workload_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/gen/workload_test.cc.o.d"
  "/root/repo/tests/lattice/border_test.cc" "tests/CMakeFiles/nmine_tests.dir/lattice/border_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/lattice/border_test.cc.o.d"
  "/root/repo/tests/lattice/candidate_equivalence_test.cc" "tests/CMakeFiles/nmine_tests.dir/lattice/candidate_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/lattice/candidate_equivalence_test.cc.o.d"
  "/root/repo/tests/lattice/candidate_gen_test.cc" "tests/CMakeFiles/nmine_tests.dir/lattice/candidate_gen_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/lattice/candidate_gen_test.cc.o.d"
  "/root/repo/tests/lattice/halfway_test.cc" "tests/CMakeFiles/nmine_tests.dir/lattice/halfway_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/lattice/halfway_test.cc.o.d"
  "/root/repo/tests/lattice/pattern_counter_test.cc" "tests/CMakeFiles/nmine_tests.dir/lattice/pattern_counter_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/lattice/pattern_counter_test.cc.o.d"
  "/root/repo/tests/lattice/pattern_set_test.cc" "tests/CMakeFiles/nmine_tests.dir/lattice/pattern_set_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/lattice/pattern_set_test.cc.o.d"
  "/root/repo/tests/mining/border_collapse_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/border_collapse_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/border_collapse_test.cc.o.d"
  "/root/repo/tests/mining/calibrated_mining_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/calibrated_mining_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/calibrated_mining_test.cc.o.d"
  "/root/repo/tests/mining/cross_miner_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/cross_miner_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/cross_miner_test.cc.o.d"
  "/root/repo/tests/mining/depth_first_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/depth_first_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/depth_first_test.cc.o.d"
  "/root/repo/tests/mining/disk_mining_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/disk_mining_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/disk_mining_test.cc.o.d"
  "/root/repo/tests/mining/exhaustive_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/exhaustive_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/exhaustive_test.cc.o.d"
  "/root/repo/tests/mining/levelwise_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/levelwise_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/levelwise_test.cc.o.d"
  "/root/repo/tests/mining/max_miner_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/max_miner_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/max_miner_test.cc.o.d"
  "/root/repo/tests/mining/symbol_scan_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/symbol_scan_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/symbol_scan_test.cc.o.d"
  "/root/repo/tests/mining/toivonen_test.cc" "tests/CMakeFiles/nmine_tests.dir/mining/toivonen_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/mining/toivonen_test.cc.o.d"
  "/root/repo/tests/paper/paper_examples_test.cc" "tests/CMakeFiles/nmine_tests.dir/paper/paper_examples_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/paper/paper_examples_test.cc.o.d"
  "/root/repo/tests/stats/chernoff_coverage_test.cc" "tests/CMakeFiles/nmine_tests.dir/stats/chernoff_coverage_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/stats/chernoff_coverage_test.cc.o.d"
  "/root/repo/tests/stats/chernoff_test.cc" "tests/CMakeFiles/nmine_tests.dir/stats/chernoff_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/stats/chernoff_test.cc.o.d"
  "/root/repo/tests/stats/histogram_test.cc" "tests/CMakeFiles/nmine_tests.dir/stats/histogram_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/stats/histogram_test.cc.o.d"
  "/root/repo/tests/stats/random_test.cc" "tests/CMakeFiles/nmine_tests.dir/stats/random_test.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/stats/random_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/nmine_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/nmine_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nmine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
