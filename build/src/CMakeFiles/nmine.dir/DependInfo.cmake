
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nmine/bio/amino_acids.cc" "src/CMakeFiles/nmine.dir/nmine/bio/amino_acids.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/bio/amino_acids.cc.o.d"
  "/root/repo/src/nmine/bio/blosum.cc" "src/CMakeFiles/nmine.dir/nmine/bio/blosum.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/bio/blosum.cc.o.d"
  "/root/repo/src/nmine/bio/fasta.cc" "src/CMakeFiles/nmine.dir/nmine/bio/fasta.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/bio/fasta.cc.o.d"
  "/root/repo/src/nmine/core/alphabet.cc" "src/CMakeFiles/nmine.dir/nmine/core/alphabet.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/core/alphabet.cc.o.d"
  "/root/repo/src/nmine/core/compatibility_matrix.cc" "src/CMakeFiles/nmine.dir/nmine/core/compatibility_matrix.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/core/compatibility_matrix.cc.o.d"
  "/root/repo/src/nmine/core/match.cc" "src/CMakeFiles/nmine.dir/nmine/core/match.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/core/match.cc.o.d"
  "/root/repo/src/nmine/core/matrix_io.cc" "src/CMakeFiles/nmine.dir/nmine/core/matrix_io.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/core/matrix_io.cc.o.d"
  "/root/repo/src/nmine/core/pattern.cc" "src/CMakeFiles/nmine.dir/nmine/core/pattern.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/core/pattern.cc.o.d"
  "/root/repo/src/nmine/db/disk_database.cc" "src/CMakeFiles/nmine.dir/nmine/db/disk_database.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/db/disk_database.cc.o.d"
  "/root/repo/src/nmine/db/format.cc" "src/CMakeFiles/nmine.dir/nmine/db/format.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/db/format.cc.o.d"
  "/root/repo/src/nmine/db/in_memory_database.cc" "src/CMakeFiles/nmine.dir/nmine/db/in_memory_database.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/db/in_memory_database.cc.o.d"
  "/root/repo/src/nmine/db/reservoir_sampler.cc" "src/CMakeFiles/nmine.dir/nmine/db/reservoir_sampler.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/db/reservoir_sampler.cc.o.d"
  "/root/repo/src/nmine/eval/calibration.cc" "src/CMakeFiles/nmine.dir/nmine/eval/calibration.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/eval/calibration.cc.o.d"
  "/root/repo/src/nmine/eval/metrics.cc" "src/CMakeFiles/nmine.dir/nmine/eval/metrics.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/eval/metrics.cc.o.d"
  "/root/repo/src/nmine/eval/table.cc" "src/CMakeFiles/nmine.dir/nmine/eval/table.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/eval/table.cc.o.d"
  "/root/repo/src/nmine/eval/timer.cc" "src/CMakeFiles/nmine.dir/nmine/eval/timer.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/eval/timer.cc.o.d"
  "/root/repo/src/nmine/gen/matrix_generator.cc" "src/CMakeFiles/nmine.dir/nmine/gen/matrix_generator.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/gen/matrix_generator.cc.o.d"
  "/root/repo/src/nmine/gen/noise_model.cc" "src/CMakeFiles/nmine.dir/nmine/gen/noise_model.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/gen/noise_model.cc.o.d"
  "/root/repo/src/nmine/gen/sequence_generator.cc" "src/CMakeFiles/nmine.dir/nmine/gen/sequence_generator.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/gen/sequence_generator.cc.o.d"
  "/root/repo/src/nmine/gen/workload.cc" "src/CMakeFiles/nmine.dir/nmine/gen/workload.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/gen/workload.cc.o.d"
  "/root/repo/src/nmine/lattice/border.cc" "src/CMakeFiles/nmine.dir/nmine/lattice/border.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/lattice/border.cc.o.d"
  "/root/repo/src/nmine/lattice/candidate_gen.cc" "src/CMakeFiles/nmine.dir/nmine/lattice/candidate_gen.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/lattice/candidate_gen.cc.o.d"
  "/root/repo/src/nmine/lattice/halfway.cc" "src/CMakeFiles/nmine.dir/nmine/lattice/halfway.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/lattice/halfway.cc.o.d"
  "/root/repo/src/nmine/lattice/pattern_counter.cc" "src/CMakeFiles/nmine.dir/nmine/lattice/pattern_counter.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/lattice/pattern_counter.cc.o.d"
  "/root/repo/src/nmine/lattice/pattern_set.cc" "src/CMakeFiles/nmine.dir/nmine/lattice/pattern_set.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/lattice/pattern_set.cc.o.d"
  "/root/repo/src/nmine/mining/border_collapse_miner.cc" "src/CMakeFiles/nmine.dir/nmine/mining/border_collapse_miner.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/mining/border_collapse_miner.cc.o.d"
  "/root/repo/src/nmine/mining/depth_first_miner.cc" "src/CMakeFiles/nmine.dir/nmine/mining/depth_first_miner.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/mining/depth_first_miner.cc.o.d"
  "/root/repo/src/nmine/mining/levelwise_miner.cc" "src/CMakeFiles/nmine.dir/nmine/mining/levelwise_miner.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/mining/levelwise_miner.cc.o.d"
  "/root/repo/src/nmine/mining/max_miner.cc" "src/CMakeFiles/nmine.dir/nmine/mining/max_miner.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/mining/max_miner.cc.o.d"
  "/root/repo/src/nmine/mining/mining_result.cc" "src/CMakeFiles/nmine.dir/nmine/mining/mining_result.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/mining/mining_result.cc.o.d"
  "/root/repo/src/nmine/mining/symbol_scan.cc" "src/CMakeFiles/nmine.dir/nmine/mining/symbol_scan.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/mining/symbol_scan.cc.o.d"
  "/root/repo/src/nmine/mining/toivonen_miner.cc" "src/CMakeFiles/nmine.dir/nmine/mining/toivonen_miner.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/mining/toivonen_miner.cc.o.d"
  "/root/repo/src/nmine/stats/chernoff.cc" "src/CMakeFiles/nmine.dir/nmine/stats/chernoff.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/stats/chernoff.cc.o.d"
  "/root/repo/src/nmine/stats/histogram.cc" "src/CMakeFiles/nmine.dir/nmine/stats/histogram.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/stats/histogram.cc.o.d"
  "/root/repo/src/nmine/stats/random.cc" "src/CMakeFiles/nmine.dir/nmine/stats/random.cc.o" "gcc" "src/CMakeFiles/nmine.dir/nmine/stats/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
