# Empty compiler generated dependencies file for nmine.
# This may be replaced when dependencies are built.
