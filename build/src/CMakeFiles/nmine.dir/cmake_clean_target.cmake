file(REMOVE_RECURSE
  "libnmine.a"
)
