file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_confidence.dir/bench_fig12_confidence.cc.o"
  "CMakeFiles/bench_fig12_confidence.dir/bench_fig12_confidence.cc.o.d"
  "CMakeFiles/bench_fig12_confidence.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig12_confidence.dir/bench_util.cc.o.d"
  "bench_fig12_confidence"
  "bench_fig12_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
