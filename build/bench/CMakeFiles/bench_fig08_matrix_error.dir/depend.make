# Empty dependencies file for bench_fig08_matrix_error.
# This may be replaced when dependencies are built.
