file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_robustness.dir/bench_fig07_robustness.cc.o"
  "CMakeFiles/bench_fig07_robustness.dir/bench_fig07_robustness.cc.o.d"
  "CMakeFiles/bench_fig07_robustness.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig07_robustness.dir/bench_util.cc.o.d"
  "bench_fig07_robustness"
  "bench_fig07_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
