# Empty dependencies file for bench_fig09_candidates.
# This may be replaced when dependencies are built.
