file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_candidates.dir/bench_fig09_candidates.cc.o"
  "CMakeFiles/bench_fig09_candidates.dir/bench_fig09_candidates.cc.o.d"
  "CMakeFiles/bench_fig09_candidates.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig09_candidates.dir/bench_util.cc.o.d"
  "bench_fig09_candidates"
  "bench_fig09_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
