# Empty dependencies file for bench_blosum50.
# This may be replaced when dependencies are built.
