file(REMOVE_RECURSE
  "CMakeFiles/bench_blosum50.dir/bench_blosum50.cc.o"
  "CMakeFiles/bench_blosum50.dir/bench_blosum50.cc.o.d"
  "CMakeFiles/bench_blosum50.dir/bench_util.cc.o"
  "CMakeFiles/bench_blosum50.dir/bench_util.cc.o.d"
  "bench_blosum50"
  "bench_blosum50.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blosum50.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
