file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_performance.dir/bench_fig14_performance.cc.o"
  "CMakeFiles/bench_fig14_performance.dir/bench_fig14_performance.cc.o.d"
  "CMakeFiles/bench_fig14_performance.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig14_performance.dir/bench_util.cc.o.d"
  "bench_fig14_performance"
  "bench_fig14_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
