# Empty dependencies file for bench_fig14_performance.
# This may be replaced when dependencies are built.
