# Empty dependencies file for bench_fig11_spread.
# This may be replaced when dependencies are built.
