file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_spread.dir/bench_fig11_spread.cc.o"
  "CMakeFiles/bench_fig11_spread.dir/bench_fig11_spread.cc.o.d"
  "CMakeFiles/bench_fig11_spread.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig11_spread.dir/bench_util.cc.o.d"
  "bench_fig11_spread"
  "bench_fig11_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
