file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sample_size.dir/bench_fig10_sample_size.cc.o"
  "CMakeFiles/bench_fig10_sample_size.dir/bench_fig10_sample_size.cc.o.d"
  "CMakeFiles/bench_fig10_sample_size.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig10_sample_size.dir/bench_util.cc.o.d"
  "bench_fig10_sample_size"
  "bench_fig10_sample_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
