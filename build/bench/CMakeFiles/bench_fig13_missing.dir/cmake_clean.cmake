file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_missing.dir/bench_fig13_missing.cc.o"
  "CMakeFiles/bench_fig13_missing.dir/bench_fig13_missing.cc.o.d"
  "CMakeFiles/bench_fig13_missing.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig13_missing.dir/bench_util.cc.o.d"
  "bench_fig13_missing"
  "bench_fig13_missing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_missing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
