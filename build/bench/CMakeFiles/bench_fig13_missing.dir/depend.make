# Empty dependencies file for bench_fig13_missing.
# This may be replaced when dependencies are built.
