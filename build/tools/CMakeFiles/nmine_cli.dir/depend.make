# Empty dependencies file for nmine_cli.
# This may be replaced when dependencies are built.
