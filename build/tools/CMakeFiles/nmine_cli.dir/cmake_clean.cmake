file(REMOVE_RECURSE
  "CMakeFiles/nmine_cli.dir/nmine_cli.cc.o"
  "CMakeFiles/nmine_cli.dir/nmine_cli.cc.o.d"
  "nmine_cli"
  "nmine_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmine_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
