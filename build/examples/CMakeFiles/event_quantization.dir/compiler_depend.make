# Empty compiler generated dependencies file for event_quantization.
# This may be replaced when dependencies are built.
