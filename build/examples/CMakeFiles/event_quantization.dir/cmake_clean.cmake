file(REMOVE_RECURSE
  "CMakeFiles/event_quantization.dir/event_quantization.cpp.o"
  "CMakeFiles/event_quantization.dir/event_quantization.cpp.o.d"
  "event_quantization"
  "event_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
