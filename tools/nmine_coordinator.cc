// nmine_coordinator: runs one mining job with Phase-3 counting farmed out
// to nmine_worker processes over a line-JSON TCP protocol (see
// src/nmine/dist/wire.h). The mined pattern set is bit-identical to the
// solo `nmine_cli mine` run at any worker count and under any kill
// schedule: shard leases reassign dead workers' work, per-shard epochs
// fence zombies, and a write-ahead journal in --state-dir lets a restarted
// coordinator resume mid-scan without recounting acknowledged work.
//
// Usage:
//   nmine_coordinator --db DB.nmsq --state-dir DIR [--port P]
//       [--port-file FILE] [--lease-ms MS] [--records-per-task N]
//       [--statusz-port P] [--log-level L] [--csv] [job flags]
//
// Job flags: same names and defaults as `nmine_client submit` /
// `nmine_cli mine`: --algorithm --metric --matrix --uniform-alpha
// --threshold --max-span --max-gap --max-level --sample --delta --seed
// --threads --fault-plan --scan-retries --retry-backoff-ms --retry-budget
// --deadline --memory-budget
//
// Flags:
//   --state-dir DIR        dist journal + run checkpoint (required;
//                          reusing a previous run's dir resumes it — the
//                          crash-recovery path)
//   --port P               TCP port for workers and waiting clients
//                          (default 0: ephemeral, printed on stdout)
//   --port-file FILE       write "<port> <statusz_port>\n" once listening
//                          (scripts poll for this file)
//   --lease-ms MS          shard lease duration; a worker silent this long
//                          loses its shards to reassignment (default 2000)
//   --records-per-task N   records per dist shard, rounded up to the exec
//                          shard size (default 1024)
//   --statusz-port P       also serve /shardz /statusz /metricsz /tracez
//                          over HTTP on 127.0.0.1:P
//   --log-level L          trace|debug|info|warn|error|off (default info)
//   --csv                  print the result as CSV (byte-identical to
//                          `nmine_cli mine --csv` — drills diff them)
//
// Output and exit status mirror `nmine_client wait`: 0 with the result
// table on success, 2 with the typed error on failure, 3 when the job was
// cancelled (SIGINT/SIGTERM land here) or hit its deadline.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "nmine/dist/coordinator.h"
#include "nmine/eval/table.h"
#include "nmine/net/status_server.h"
#include "nmine/obs/logger.h"
#include "nmine/runtime/checkpoint_io.h"

namespace nmine {
namespace {

runtime::RunControl* g_run = nullptr;

void HandleStopSignal(int) {
  if (g_run != nullptr) g_run->RequestCancel();  // signal-safe by design
}

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
          values_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      }
    }
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  long long GetInt(const std::string& key, long long dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

serve::JobSpec SpecFromFlags(const Flags& flags) {
  serve::JobSpec spec;
  spec.db_path = flags.Get("db", "");
  spec.algorithm = flags.Get("algorithm", spec.algorithm);
  spec.metric = flags.Get("metric", spec.metric);
  spec.matrix_path = flags.Get("matrix", spec.matrix_path);
  if (flags.Has("uniform-alpha")) {
    spec.uniform_alpha = flags.GetDouble("uniform-alpha", 0.1);
  }
  spec.threshold = flags.GetDouble("threshold", spec.threshold);
  spec.max_span = static_cast<uint64_t>(
      flags.GetInt("max-span", static_cast<long long>(spec.max_span)));
  spec.max_gap = static_cast<uint64_t>(
      flags.GetInt("max-gap", static_cast<long long>(spec.max_gap)));
  spec.max_level = static_cast<uint64_t>(
      flags.GetInt("max-level", static_cast<long long>(spec.max_level)));
  spec.sample_size = static_cast<uint64_t>(
      flags.GetInt("sample", static_cast<long long>(spec.sample_size)));
  spec.delta = flags.GetDouble("delta", spec.delta);
  spec.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<long long>(spec.seed)));
  spec.num_threads = static_cast<uint64_t>(
      flags.GetInt("threads", static_cast<long long>(spec.num_threads)));
  spec.fault_plan = flags.Get("fault-plan", "");
  spec.scan_retries = flags.GetInt("scan-retries", spec.scan_retries);
  spec.retry_backoff_ms =
      flags.GetDouble("retry-backoff-ms", spec.retry_backoff_ms);
  spec.retry_budget = flags.GetInt("retry-budget", spec.retry_budget);
  spec.deadline_s = flags.GetDouble("deadline", spec.deadline_s);
  spec.memory_budget = static_cast<uint64_t>(flags.GetInt("memory-budget", 0));
  return spec;
}

/// Prints the terminal result exactly like `nmine_client wait` so drills
/// can byte-diff the CSVs, and maps it to the same exit codes.
int ReportResult(const serve::JobResult& result, bool csv) {
  if (!result.ok) {
    std::fprintf(stderr, "nmine_coordinator: job failed: %s: %s\n",
                 result.error_code.c_str(), result.message.c_str());
    return result.error_code == "CANCELLED" ||
                   result.error_code == "DEADLINE_EXCEEDED"
               ? 3
               : 2;
  }
  Table table({"pattern", "value"});
  for (const auto& [pattern, value] : result.rows) {
    table.AddRow({pattern, value});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    std::printf("patterns: %zu   scans: %lld%s%s\n", result.rows.size(),
                static_cast<long long>(result.scans),
                result.truncated ? "   [TRUNCATED]" : "",
                result.resumed_from_checkpoint ? "   [RESUMED]" : "");
    table.Print(std::cout);
  }
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string state_dir = flags.Get("state-dir", "");
  if (state_dir.empty()) {
    std::fprintf(stderr, "nmine_coordinator: --state-dir is required\n");
    return 1;
  }
  if (flags.Get("db", "").empty()) {
    std::fprintf(stderr, "nmine_coordinator: --db is required\n");
    return 1;
  }
  std::optional<obs::LogLevel> level =
      obs::ParseLogLevel(flags.Get("log-level", "info"));
  if (!level.has_value()) {
    std::fprintf(stderr, "nmine_coordinator: bad --log-level '%s'\n",
                 flags.Get("log-level", "").c_str());
    return 1;
  }
  obs::Logger::Global().SetLevel(*level);

  dist::Coordinator::Options options;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.state_dir = state_dir;
  options.spec = SpecFromFlags(flags);
  options.lease_ms = std::max(1LL, flags.GetInt("lease-ms", 2000));
  options.records_per_task = static_cast<uint64_t>(
      std::max(1LL, flags.GetInt("records-per-task", 1024)));

  dist::Coordinator coordinator;
  std::string error;
  if (!coordinator.Start(options, &error)) {
    std::fprintf(stderr, "nmine_coordinator: %s\n", error.c_str());
    return 1;
  }

  net::StatusServer statusz;
  uint16_t statusz_port = 0;
  if (flags.Has("statusz-port")) {
    net::StatusServer::Options sopt;
    sopt.port = static_cast<uint16_t>(flags.GetInt("statusz-port", 0));
    if (!statusz.Start(sopt, &error)) {
      std::fprintf(stderr, "nmine_coordinator: statusz: %s\n", error.c_str());
      coordinator.Stop();
      return 1;
    }
    statusz_port = statusz.port();
  }

  // stderr, not stdout: stdout is reserved for the result table so
  // `nmine_coordinator --csv > out.csv` byte-diffs against the solo CLI.
  std::fprintf(stderr, "nmine_coordinator listening on port %u (statusz %u)\n",
               static_cast<unsigned>(coordinator.port()),
               static_cast<unsigned>(statusz_port));
  std::string port_file = flags.Get("port-file", "");
  if (!port_file.empty()) {
    // Atomic write: a polling script never reads a half-written file.
    std::string body = std::to_string(coordinator.port()) + " " +
                       std::to_string(statusz_port) + "\n";
    Status s = runtime::AtomicWriteFile(port_file, body);
    if (!s.ok()) {
      std::fprintf(stderr, "nmine_coordinator: cannot write --port-file: %s\n",
                   s.ToString().c_str());
    }
  }

  g_run = coordinator.run_control();
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  serve::JobResult result = coordinator.Run();
  int code = ReportResult(result, flags.Has("csv"));
  coordinator.Stop();
  if (statusz.running()) statusz.Stop();
  return code;
}

}  // namespace
}  // namespace nmine

int main(int argc, char** argv) { return nmine::Main(argc, argv); }
