// nmine_worker: one counting worker for nmine_coordinator. Connects,
// mirrors the coordinator's counting environment (database path, noise
// matrix, metric — all named in the hello response), then polls for shard
// tasks and streams back one bit-exact partial vector per exec shard.
// Workers are expendable: SIGKILL one mid-scan and the coordinator leases
// its shards to a surviving worker, which resumes from the last
// acknowledged exec shard. Restarted workers just reconnect and poll.
//
// Usage:
//   nmine_worker --port P [--host H] [--name N] [--throttle-ms MS]
//       [--timeout-s S] [--log-level L]
//
// Flags:
//   --port P          coordinator port (required)
//   --host H          coordinator host (default 127.0.0.1)
//   --name N          worker identity for leases and /shardz attribution
//                     (default worker-<pid>)
//   --throttle-ms MS  sleep after every exec shard — drills use it to hold
//                     scans open long enough to kill processes mid-task
//   --timeout-s S     give up after this long without a successful
//                     (re)connect (default 30)
//   --log-level L     trace|debug|info|warn|error|off (default info)
//
// Exit status: 0 the coordinator finished its job and said shutdown (or a
// stop signal landed); 1 usage error, fatal mismatch (wrong database), or
// coordinator unreachable past --timeout-s.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "nmine/dist/worker.h"
#include "nmine/obs/logger.h"

namespace nmine {
namespace {

runtime::RunControl* g_run = nullptr;

void HandleStopSignal(int) {
  if (g_run != nullptr) g_run->RequestCancel();  // signal-safe by design
}

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
          values_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      }
    }
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  long long GetInt(const std::string& key, long long dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (!flags.Has("port")) {
    std::fprintf(stderr, "nmine_worker: --port is required\n");
    return 1;
  }
  std::optional<obs::LogLevel> level =
      obs::ParseLogLevel(flags.Get("log-level", "info"));
  if (!level.has_value()) {
    std::fprintf(stderr, "nmine_worker: bad --log-level '%s'\n",
                 flags.Get("log-level", "").c_str());
    return 1;
  }
  obs::Logger::Global().SetLevel(*level);

  runtime::RunControl run;
  g_run = &run;
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  dist::DistWorker::Options options;
  options.host = flags.Get("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.name = flags.Get("name", "");
  if (options.name.empty()) {
    options.name = "worker-" + std::to_string(::getpid());
  }
  options.throttle_ms = std::max(0LL, flags.GetInt("throttle-ms", 0));
  options.connect_timeout_s = flags.GetDouble("timeout-s", 30.0);
  options.run = &run;

  dist::DistWorker worker;
  Status status = worker.Run(options);
  if (status.ok() || status.code() == StatusCode::kCancelled) {
    std::printf("nmine_worker: done (%lld tasks)\n",
                static_cast<long long>(worker.tasks_completed()));
    return 0;
  }
  std::fprintf(stderr, "nmine_worker: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace
}  // namespace nmine

int main(int argc, char** argv) { return nmine::Main(argc, argv); }
