// nmine_client: command-line client for nmine_server's line-JSON job
// protocol.
//
// Usage:
//   nmine_client ping   --port P [--host H]
//   nmine_client submit --port P --db DB.nmsq [job flags] [--client C]
//       [--tag T] [--wait] [--csv]
//   nmine_client status --port P --id N
//   nmine_client wait   --port P --id N [--csv]
//   nmine_client wait   --port P --distributed [--csv]   (nmine_coordinator
//       peer: waits for the coordinator's single job, no --id)
//   nmine_client jobs   --port P
//
// Job flags (forwarded into the job spec; same names and defaults as
// `nmine_cli mine`): --algorithm --metric --matrix --uniform-alpha
// --threshold --max-span --max-gap --max-level --sample --delta --seed
// --threads --fault-plan --scan-retries --retry-backoff-ms --retry-budget
// --deadline --memory-budget
//
// Robustness flags:
//   --timeout S   total wall-clock budget for the whole operation,
//                 including reconnects (default 30). Lost connections and
//                 "server draining" responses are retried with jittered
//                 exponential backoff (the db/retry.h schedule) until the
//                 timeout; submits carry an idempotency --tag (generated
//                 from client+seed when not given), so a resubmit after a
//                 lost ack reattaches to the original job instead of
//                 running it twice.
//   --client C    logical client name: the server's fair scheduler
//                 round-robins between clients (default "cli-<pid>")
//
// Tracing flags (submit; server must run with --trace for span capture):
//   --trace-id H  attach this 128-bit trace id (32 hex digits, nonzero) to
//                 the job instead of minting one. The id rides the submit
//                 request, is echoed in the ack (printed as "trace_id: H"
//                 on stderr), and stamps every server-side span, log line,
//                 and flight event of the job.
//   --trace-out F with --wait (or the wait op): after the job reaches a
//                 terminal state, fetch its trace ({"op": "trace"}) and
//                 write the Chrome trace JSON to F (open in Perfetto)
//
// Exit status: 0 success; 1 usage/connection failure (timeout included);
// 2 the job failed with a typed runtime error; 3 the job was cancelled or
// hit its deadline.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "nmine/eval/table.h"
#include "nmine/net/retry.h"
#include "nmine/obs/json_parse.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/trace_context.h"
#include "nmine/serve/job.h"

namespace nmine {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
          values_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      }
    }
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  long long GetInt(const std::string& key, long long dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

using Clock = std::chrono::steady_clock;

/// One server connection with deadline-aware reconnect. Every failure path
/// (connect refused, connection reset, server draining) sleeps the shared
/// net/retry reconnect schedule and tries again until `deadline`.
class Connection {
 public:
  Connection(std::string host, uint16_t port, Clock::time_point deadline)
      : host_(std::move(host)), port_(port), deadline_(deadline) {}

  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Sends `line` and reads one response line, reconnecting (and
  /// re-sending — ops are idempotent) on any transport failure. nullopt
  /// only when the deadline passes first.
  std::optional<std::string> RoundTrip(const std::string& line) {
    while (true) {
      if (fd_ < 0 && !Reconnect()) return std::nullopt;
      if (SendAll(line) ) {
        std::optional<std::string> response = ReadLine();
        if (response.has_value()) return response;
      }
      Drop();
      if (!BackoffOrGiveUp()) return std::nullopt;
    }
  }

  /// Sleeps the next backoff step; false when it would cross the
  /// deadline (the caller then reports a timeout).
  bool BackoffOrGiveUp() {
    double ms = backoff_.NextBackoffMs();
    auto wake = Clock::now() + std::chrono::duration<double, std::milli>(ms);
    if (wake >= deadline_) return false;
    std::this_thread::sleep_until(wake);
    return true;
  }

 private:
  void Drop() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Reconnect() {
    while (Clock::now() < deadline_) {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0) {
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port_);
        if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) == 1 &&
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
          timeval timeout;
          timeout.tv_sec = 0;
          timeout.tv_usec = 200 * 1000;
          ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
          fd_ = fd;
          return true;
        }
        ::close(fd);
      }
      if (!BackoffOrGiveUp()) return false;
    }
    return false;
  }

  bool SendAll(const std::string& data) {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t w = ::send(fd_, data.data() + done, data.size() - done,
                         MSG_NOSIGNAL);
      if (w <= 0) return false;
      done += static_cast<size_t>(w);
    }
    return true;
  }

  std::optional<std::string> ReadLine() {
    std::string buffer;
    char chunk[4096];
    while (Clock::now() < deadline_) {
      size_t nl = buffer.find('\n');
      if (nl != std::string::npos) return buffer.substr(0, nl);
      ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r > 0) {
        buffer.append(chunk, static_cast<size_t>(r));
        continue;
      }
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)) {
        continue;  // receive timeout tick: re-check the deadline
      }
      return std::nullopt;  // peer closed or hard error
    }
    return std::nullopt;
  }

  std::string host_;
  uint16_t port_;
  Clock::time_point deadline_;
  int fd_ = -1;
  net::ReconnectBackoff backoff_;
};

serve::JobSpec SpecFromFlags(const Flags& flags) {
  serve::JobSpec spec;
  spec.db_path = flags.Get("db", "");
  spec.algorithm = flags.Get("algorithm", spec.algorithm);
  spec.metric = flags.Get("metric", spec.metric);
  spec.matrix_path = flags.Get("matrix", spec.matrix_path);
  if (flags.Has("uniform-alpha")) {
    spec.uniform_alpha = flags.GetDouble("uniform-alpha", 0.1);
  }
  spec.threshold = flags.GetDouble("threshold", spec.threshold);
  spec.max_span = static_cast<uint64_t>(
      flags.GetInt("max-span", static_cast<long long>(spec.max_span)));
  spec.max_gap = static_cast<uint64_t>(
      flags.GetInt("max-gap", static_cast<long long>(spec.max_gap)));
  spec.max_level = static_cast<uint64_t>(
      flags.GetInt("max-level", static_cast<long long>(spec.max_level)));
  spec.sample_size = static_cast<uint64_t>(
      flags.GetInt("sample", static_cast<long long>(spec.sample_size)));
  spec.delta = flags.GetDouble("delta", spec.delta);
  spec.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<long long>(spec.seed)));
  spec.num_threads = static_cast<uint64_t>(
      flags.GetInt("threads", static_cast<long long>(spec.num_threads)));
  spec.fault_plan = flags.Get("fault-plan", "");
  spec.scan_retries = flags.GetInt("scan-retries", spec.scan_retries);
  spec.retry_backoff_ms =
      flags.GetDouble("retry-backoff-ms", spec.retry_backoff_ms);
  spec.retry_budget = flags.GetInt("retry-budget", spec.retry_budget);
  spec.deadline_s = flags.GetDouble("deadline", spec.deadline_s);
  spec.memory_budget = static_cast<uint64_t>(
      flags.GetInt("memory-budget", 0));
  return spec;
}

/// Fetches job `job_id`'s trace ({"op": "trace", "id": N}) and writes the
/// Chrome trace JSON to `path`. Best-effort: a failure warns on stderr but
/// never changes the exit code — the mining result already happened.
void SaveTrace(Connection& connection, uint64_t job_id,
               const std::string& path) {
  std::string request =
      "{\"op\": \"trace\", \"id\": " + std::to_string(job_id) + "}\n";
  std::optional<std::string> line = connection.RoundTrip(request);
  if (!line.has_value()) {
    std::fprintf(stderr, "nmine_client: --trace-out: trace fetch timed out\n");
    return;
  }
  std::optional<obs::JsonValue> response = obs::ParseJson(*line);
  if (!response.has_value() || !response->is_object()) {
    std::fprintf(stderr, "nmine_client: --trace-out: malformed response\n");
    return;
  }
  const obs::JsonValue* ok = response->Get("ok");
  if (ok == nullptr || ok->type != obs::JsonValue::Type::kBool ||
      !ok->bool_value) {
    const obs::JsonValue* message = response->Get("message");
    std::fprintf(stderr, "nmine_client: --trace-out: %s\n",
                 message != nullptr && message->is_string()
                     ? message->string_value.c_str()
                     : "trace op failed");
    return;
  }
  const obs::JsonValue* trace_json = response->Get("trace_json");
  if (trace_json == nullptr || !trace_json->is_string()) {
    std::fprintf(stderr,
                 "nmine_client: --trace-out: response carries no trace\n");
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "nmine_client: --trace-out: cannot open '%s'\n",
                 path.c_str());
    return;
  }
  std::fputs(trace_json->string_value.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "trace written to %s\n", path.c_str());
}

/// Prints a terminal job result the way `nmine_cli mine --csv` prints a
/// solo run (the drill diffs them), or the typed error (plus the job's
/// trace_id, so a failure can be chased through /tracez). Returns the
/// process exit code.
int ReportResult(const obs::JsonValue& response, bool csv,
                 const std::string& trace_id) {
  const obs::JsonValue* result = response.Get("result");
  if (result == nullptr) {
    std::fprintf(stderr, "nmine_client: response carries no result\n");
    return 1;
  }
  std::optional<serve::JobResult> job_result =
      serve::JobResult::FromJson(*result);
  if (!job_result.has_value()) {
    std::fprintf(stderr, "nmine_client: malformed result payload\n");
    return 1;
  }
  if (!job_result->ok) {
    std::fprintf(stderr, "nmine_client: job failed: %s: %s\n",
                 job_result->error_code.c_str(), job_result->message.c_str());
    if (!trace_id.empty()) {
      std::fprintf(stderr, "nmine_client: trace_id: %s\n", trace_id.c_str());
    }
    return job_result->error_code == "CANCELLED" ||
                   job_result->error_code == "DEADLINE_EXCEEDED"
               ? 3
               : 2;
  }
  Table table({"pattern", "value"});
  for (const auto& [pattern, value] : job_result->rows) {
    table.AddRow({pattern, value});
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    std::printf("patterns: %zu   scans: %lld%s%s\n", job_result->rows.size(),
                static_cast<long long>(job_result->scans),
                job_result->truncated ? "   [TRUNCATED]" : "",
                job_result->resumed_from_checkpoint ? "   [RESUMED]" : "");
    table.Print(std::cout);
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: nmine_client <ping|submit|status|wait|jobs> --port P "
               "[flags]\nsee the header of tools/nmine_client.cc\n");
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string op = argv[1];
  if (op != "ping" && op != "submit" && op != "status" && op != "wait" &&
      op != "jobs") {
    return Usage();
  }
  Flags flags(argc, argv, 2);
  long long port = flags.GetInt("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "nmine_client: --port is required\n");
    return 1;
  }
  double timeout_s = flags.GetDouble("timeout", 30.0);
  if (timeout_s <= 0.0) {
    std::fprintf(stderr, "nmine_client: bad --timeout (want seconds > 0)\n");
    return 1;
  }
  Connection connection(flags.Get("host", "127.0.0.1"),
                        static_cast<uint16_t>(port),
                        Clock::now() + std::chrono::duration_cast<
                                           Clock::duration>(
                                           std::chrono::duration<double>(
                                               timeout_s)));

  std::string client = flags.Get(
      "client", "cli-" + std::to_string(static_cast<long long>(::getpid())));

  // The whole operation is one retry loop: any transport loss or typed
  // retryable response (UNAVAILABLE drain, RESOURCE_EXHAUSTED shed) backs
  // off and retries until --timeout. Submits are made idempotent with a
  // tag, so "retry the whole request" is always safe.
  std::string request;
  bool is_submit = op == "submit";
  uint64_t job_id = 0;
  std::string trace_id;
  if (is_submit) {
    serve::JobSpec spec = SpecFromFlags(flags);
    if (spec.db_path.empty()) {
      std::fprintf(stderr, "nmine_client: submit needs --db\n");
      return 1;
    }
    // The client mints the trace id (or forwards --trace-id) so the
    // request is traceable before the server ever sees it; the ack echoes
    // the binding id (the original job's on a deduped resubmit).
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    if (flags.Has("trace-id")) {
      if (!obs::ParseTraceId(flags.Get("trace-id", ""), &trace_hi,
                             &trace_lo)) {
        std::fprintf(stderr,
                     "nmine_client: bad --trace-id '%s' (want 32 hex "
                     "digits, nonzero)\n",
                     flags.Get("trace-id", "").c_str());
        return 1;
      }
    } else {
      obs::TraceContext minted = obs::MintTraceContext();
      trace_hi = minted.trace_hi;
      trace_lo = minted.trace_lo;
    }
    trace_id = obs::FormatTraceId(trace_hi, trace_lo);
    std::string tag = flags.Get(
        "tag", client + "-seed" + std::to_string(spec.seed) + "-" +
                   spec.algorithm);
    request = "{\"op\": \"submit\", \"client\": ";
    obs::AppendJsonString(client, &request);
    request.append(", \"tag\": ");
    obs::AppendJsonString(tag, &request);
    request.append(", \"trace_id\": ");
    obs::AppendJsonString(trace_id, &request);
    request.append(", \"spec\": ");
    spec.AppendJson(&request);
    request.append("}\n");
  } else if (op == "status" || op == "wait") {
    if (op == "wait" && flags.Has("distributed")) {
      // Distributed mode: the peer is an nmine_coordinator, which runs
      // exactly one job and answers an id-less wait with its result.
      request = "{\"op\": \"wait\"}\n";
    } else {
      if (!flags.Has("id")) {
        std::fprintf(stderr, "nmine_client: %s needs --id\n", op.c_str());
        return 1;
      }
      job_id = static_cast<uint64_t>(flags.GetInt("id", 0));
      request = "{\"op\": \"" + op +
                "\", \"id\": " + std::to_string(job_id) + "}\n";
    }
  } else {
    request = "{\"op\": \"" + op + "\"}\n";
  }

  while (true) {
    std::optional<std::string> response_line = connection.RoundTrip(request);
    if (!response_line.has_value()) {
      std::fprintf(stderr, "nmine_client: --timeout of %.3gs exhausted\n",
                   timeout_s);
      return 1;
    }
    std::optional<obs::JsonValue> response = obs::ParseJson(*response_line);
    if (!response.has_value() || !response->is_object()) {
      std::fprintf(stderr, "nmine_client: malformed response: %s\n",
                   response_line->c_str());
      return 1;
    }
    const obs::JsonValue* ok = response->Get("ok");
    if (ok == nullptr || ok->type != obs::JsonValue::Type::kBool) {
      std::fprintf(stderr, "nmine_client: malformed response: %s\n",
                   response_line->c_str());
      return 1;
    }

    if (!ok->bool_value) {
      const obs::JsonValue* code = response->Get("error");
      std::string error =
          code != nullptr && code->is_string() ? code->string_value : "";
      const obs::JsonValue* message = response->Get("message");
      if (error == "RESOURCE_EXHAUSTED" || error == "UNAVAILABLE") {
        // Shed or draining: honor retry_after_s when the server sent one,
        // otherwise the jittered schedule, and try again.
        double hint = response->GetNumber("retry_after_s", -1.0);
        if (hint > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              std::min(hint, timeout_s / 4.0)));
        }
        if (connection.BackoffOrGiveUp()) continue;
        std::fprintf(stderr, "nmine_client: --timeout exhausted while %s\n",
                     error == "RESOURCE_EXHAUSTED" ? "shed" : "draining");
        return 1;
      }
      std::fprintf(
          stderr, "nmine_client: %s: %s\n", error.c_str(),
          message != nullptr ? message->string_value.c_str() : "");
      return 1;
    }

    if (is_submit) {
      job_id = static_cast<uint64_t>(response->GetNumber("id", 0.0));
      const obs::JsonValue* echoed = response->Get("trace_id");
      if (echoed != nullptr && echoed->is_string()) {
        trace_id = echoed->string_value;
      }
      // To stderr: with --wait --csv, stdout carries only the result rows
      // so it can be diffed against `nmine_cli mine --csv` output.
      std::fprintf(stderr, "submitted job %llu%s\n",
                   static_cast<unsigned long long>(job_id),
                   response->Get("deduped") != nullptr ? " (deduped)" : "");
      std::fprintf(stderr, "trace_id: %s\n", trace_id.c_str());
      if (!flags.Has("wait")) return 0;
      // Switch the loop over to waiting on the job we just got.
      is_submit = false;
      op = "wait";
      request = "{\"op\": \"wait\", \"id\": " + std::to_string(job_id) +
                "}\n";
      continue;
    }
    if (op == "status" || op == "wait") {
      const obs::JsonValue* state = response->Get("state");
      const obs::JsonValue* bound = response->Get("trace_id");
      if (bound != nullptr && bound->is_string()) {
        trace_id = bound->string_value;
      }
      if (op == "status") {
        std::printf("job %llu: %s\n",
                    static_cast<unsigned long long>(job_id),
                    state != nullptr ? state->string_value.c_str() : "?");
        if (response->Get("result") == nullptr) return 0;
      }
      int code = ReportResult(*response, flags.Has("csv"), trace_id);
      if (flags.Has("trace-out") && response->Get("result") != nullptr) {
        SaveTrace(connection, job_id, flags.Get("trace-out", ""));
      }
      return code;
    }
    // ping / jobs
    std::printf("%s\n", response_line->c_str());
    return 0;
  }
}

}  // namespace
}  // namespace nmine

int main(int argc, char** argv) { return nmine::Main(argc, argv); }
