// nmine command-line tool: generate synthetic sequence databases, inspect
// database files, and mine them with any of the four algorithms.
//
// Usage:
//   nmine_cli generate --out DB.nmsq [--sequences N] [--min-len L]
//       [--max-len L] [--alphabet M] [--plant "0 1 2"]... [--plant-prob P]
//       [--noise-alpha A] [--seed S]
//   nmine_cli import --fasta FILE --out DB.nmsq
//   nmine_cli info DB.nmsq
//   nmine_cli matrix --out C.txt (--identity M | --uniform-alpha A
//       --alphabet M | --blosum50 T)
//   nmine_cli mine DB.nmsq [--metric match|support]
//       [--matrix C.txt | --uniform-alpha A | --identity]
//       [--algorithm collapse|levelwise|maxminer|toivonen|depthfirst]
//       [--threshold T] [--max-span K] [--max-gap G] [--max-level K]
//       [--sample N] [--delta D] [--seed S] [--threads N]
//       [--simd auto|avx2|neon|scalar]
//       [--calibrate none|expected|survival] [--csv]
//
// Parallelism:
//   --threads N    worker threads for database scans and pattern counting
//                  (default 1; 0 = one per hardware thread). Results are
//                  bit-identical for every N, and the accounted scan count
//                  does not change: parallelism splits the evaluation work
//                  of one pass, never the pass itself.
//   --simd LEVEL   match-kernel instruction set for M(P,s) evaluation
//                  (default auto = widest kernel both this build and this
//                  CPU support; requesting an unavailable level is an
//                  error). Mined pattern sets are bit-identical across
//                  levels: vector kernels screen windows in log space and
//                  re-derive survivors with the exact scalar product. The
//                  active kernel is reported in /statusz ("simd_kernel")
//                  and bench fingerprints.
//
// Observability (every command accepts these; see README "Observability"):
//   --log-level trace|debug|info|warn|error|off   leveled stderr logging
//                                                 (default: off)
//   --log-json FILE       structured JSON-lines log sink
//   --metrics-out FILE    dump the metrics-registry snapshot as JSON on exit
//   --trace-out FILE      record Chrome trace_event spans; open the file in
//                         chrome://tracing or https://ui.perfetto.dev
//   --progress[=SECONDS]  log a heartbeat every SECONDS (default 5) with the
//                         current phase, scan counts, and elapsed time;
//                         forces info-level stderr logging if logging is off
//
// Live introspection (see README "Observability" and DESIGN.md section 13):
//   --statusz-port PORT   serve /healthz /statusz /metricsz /profilez
//                         /flightz over HTTP on 127.0.0.1:PORT (0 picks an
//                         ephemeral port; the bound port is printed to
//                         stderr)
//   --telemetry-out FILE  append a JSON-lines time series of metric
//                         snapshots, deltas, and rates (one row per
//                         --telemetry-interval; a final row is flushed on
//                         every exit, including SIGINT/SIGTERM/--deadline)
//   --telemetry-interval S  seconds between telemetry rows (default 1)
//   --openmetrics-out FILE  rewrite FILE with the OpenMetrics/Prometheus
//                         text rendering on every telemetry sample
//                         (default: <telemetry-out>.prom)
//   --flight-recorder FILE  keep a lock-free in-memory ring of the last
//                         1024 structured events (spans, phases, governor
//                         steps, retries, checkpoints) and dump it to FILE
//                         on SIGSEGV/SIGABRT and on exit codes 2/3
//
// Fault-tolerance flags for `mine` (drills and recovery; see README
// "Robustness"):
//   --scan-retries N        retries per failed scan (default 2; 0 disables)
//   --retry-backoff-ms B    initial backoff, doubled per retry (default 5)
//   --retry-budget N        cap on CUMULATIVE retries across all scans of
//                           the run (default unlimited); a flapping disk
//                           then fails the run instead of retrying forever
//                           (gauge db.scan.retry_budget_remaining)
//   --fault-plan SPEC       inject scan faults, e.g. "open-fail:1" or
//                           "corrupt-from:0" (see db/fault_injecting_database.h)
//   --phase3-checkpoint F   checkpoint border-collapsing probe state to F
//   --phase3-retries N      miner-level re-probes of a failed Phase-3 batch
//
// Run lifecycle flags for `mine` (see README "Run lifecycle"):
//   --run-checkpoint F      whole-run checkpoint: snapshot after Phase 1,
//                           after Phase 2, and after every Phase-3 probe
//                           scan; an interrupted run rerun with the same
//                           flags resumes bit-identically (collapse only;
//                           supersedes --phase3-checkpoint)
//   --deadline S            stop cooperatively after S seconds: the run
//                           flushes its checkpoint and exits 3
//   --memory-budget BYTES   degrade instead of thrash: first shrink probe
//                           batches, then the in-memory sample (epsilon is
//                           recomputed); results stay exact, only the scan
//                           count grows
//
// SIGINT/SIGTERM trigger the same cooperative stop as --deadline: finish
// the current scan boundary, flush the checkpoint, exit 3.
//
// Exit status: 0 on success, 1 on usage/IO errors, 2 when a database scan
// or mining run failed at runtime (unrecoverable fault, corrupt data, or
// an exhausted memory budget), 3 when the run was cancelled (signal) or
// hit its --deadline — state is checkpointed when --run-checkpoint (or
// --phase3-checkpoint) is set, so a rerun resumes where it stopped.
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nmine/bio/blosum.h"
#include "nmine/bio/fasta.h"
#include "nmine/core/match_kernel.h"
#include "nmine/core/matrix_io.h"
#include "nmine/core/status.h"
#include "nmine/db/disk_database.h"
#include "nmine/db/fault_injecting_database.h"
#include "nmine/db/format.h"
#include "nmine/db/retrying_database.h"
#include "nmine/eval/calibration.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/depth_first_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/toivonen_miner.h"
#include "nmine/net/status_server.h"
#include "nmine/obs/export/telemetry_sampler.h"
#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/obs/trace.h"
#include "nmine/runtime/run_control.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace {

// Process-wide run control so the signal handler can reach it.
// RunControl::RequestCancel is a relaxed atomic store — async-signal-safe.
runtime::RunControl g_run_control;

extern "C" void HandleStopSignal(int /*signum*/) {
  g_run_control.RequestCancel();
}

// Crash-dump path for the SIGSEGV/SIGABRT handlers. Written once during
// flag parsing (before any handler can fire) into static storage, so the
// handler never touches std::string.
char g_flight_crash_path[4096] = {0};

extern "C" void HandleCrashSignal(int signum) {
  // Async-signal-safe path only: open(2) + FlightRecorder::DumpToFd
  // (atomics, write(2), stack-local formatting) + re-raise with the
  // default disposition so the process still dies with the right status.
  if (g_flight_crash_path[0] != '\0') {
    int fd = ::open(g_flight_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      nmine::obs::FlightRecorder::Global().DumpToFd(fd);
      ::close(fd);
    }
  }
  std::signal(signum, SIG_DFL);
  ::raise(signum);
}

/// Minimal --flag value parser: flags may appear in any order after the
/// command and positional arguments.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
          values_[key.substr(0, eq)].push_back(key.substr(eq + 1));
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[key].push_back(argv[++i]);
        } else {
          values_[key].push_back("");  // boolean flag
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second.back();
  }

  double GetDouble(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.back().c_str());
  }

  long long GetInt(const std::string& key, long long dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.back().c_str());
  }

  std::vector<std::string> GetAll(const std::string& key) const {
    auto it = values_.find(key);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positional_;
};

int Usage() {
  std::fprintf(stderr,
               "usage: nmine_cli <generate|import|info|matrix|mine> [flags]\n"
               "see the header of tools/nmine_cli.cc for the flag list\n"
               "exit status: 0 success; 1 usage or I/O setup error; 2 data\n"
               "or runtime fault (including an exhausted --memory-budget);\n"
               "3 cancelled by SIGINT/SIGTERM or --deadline, with progress\n"
               "checkpointed when --run-checkpoint is set\n");
  return 1;
}

/// Configures the observability stack from --log-level / --log-json /
/// --metrics-out / --trace-out and flushes the file outputs when the
/// command finishes (destructor). Returns usage errors via ok().
class ObsSession {
 public:
  explicit ObsSession(const Flags& flags)
      : metrics_out_(flags.Get("metrics-out", "")),
        trace_out_(flags.Get("trace-out", "")) {
    std::string level_text = flags.Get("log-level", "off");
    std::optional<obs::LogLevel> level = obs::ParseLogLevel(level_text);
    if (!level.has_value()) {
      std::fprintf(stderr,
                   "bad --log-level '%s' (want "
                   "trace|debug|info|warn|error|off)\n",
                   level_text.c_str());
      return;
    }
    obs::Logger& logger = obs::Logger::Global();
    logger.SetLevel(*level);
    if (*level != obs::LogLevel::kOff) {
      logger.AddSink(std::make_unique<obs::TextSink>(&std::cerr));
    }
    std::string log_json = flags.Get("log-json", "");
    if (!log_json.empty()) {
      auto sink = std::make_unique<obs::JsonFileSink>(log_json);
      if (!sink->ok()) {
        std::fprintf(stderr, "cannot open --log-json file '%s'\n",
                     log_json.c_str());
        return;
      }
      // A JSON sink without an explicit level records everything.
      if (*level == obs::LogLevel::kOff) {
        logger.SetLevel(obs::LogLevel::kTrace);
      }
      logger.AddSink(std::move(sink));
    }
    if (!trace_out_.empty()) {
      obs::Tracer::Global().Start();
    }
    if (flags.Has("progress")) {
      std::string value = flags.Get("progress", "");
      double interval_s = value.empty() ? 5.0 : std::atof(value.c_str());
      if (interval_s <= 0.0) {
        std::fprintf(stderr, "bad --progress interval '%s' (want seconds > 0)\n",
                     value.c_str());
        return;
      }
      // The heartbeat reads the profiler's current section, and must be
      // visible even when logging is otherwise off.
      obs::Profiler::Global().Enable();
      if (*level == obs::LogLevel::kOff) {
        if (logger.level() == obs::LogLevel::kOff) {
          logger.SetLevel(obs::LogLevel::kInfo);
        }
        logger.AddSink(std::make_unique<obs::TextSink>(&std::cerr));
      }
      StartHeartbeat(interval_s);
    }

    // --- Live introspection: flight recorder, telemetry, statusz. ---
    flight_dump_path_ = flags.Get("flight-recorder", "");
    const bool want_statusz = flags.Has("statusz-port");
    const std::string telemetry_out = flags.Get("telemetry-out", "");
    if (!flight_dump_path_.empty() || want_statusz || !telemetry_out.empty()) {
      // The ring is cheap (one fetch_add + bounded copy per event), so any
      // introspection surface turns it on; /flightz and crash dumps then
      // always have a recent-event tail to show.
      obs::FlightRecorder::Global().Enable();
    }
    if (!flight_dump_path_.empty()) {
      if (flight_dump_path_.size() >= sizeof(g_flight_crash_path)) {
        std::fprintf(stderr, "--flight-recorder path too long\n");
        return;
      }
      std::memcpy(g_flight_crash_path, flight_dump_path_.c_str(),
                  flight_dump_path_.size() + 1);
      std::signal(SIGSEGV, HandleCrashSignal);
      std::signal(SIGABRT, HandleCrashSignal);
      std::signal(SIGBUS, HandleCrashSignal);
    }
    if (!telemetry_out.empty()) {
      double interval_s = flags.GetDouble("telemetry-interval", 1.0);
      if (interval_s <= 0.0) {
        std::fprintf(stderr,
                     "bad --telemetry-interval '%s' (want seconds > 0)\n",
                     flags.Get("telemetry-interval", "").c_str());
        return;
      }
      obs::TelemetrySampler::Options sampler_options;
      sampler_options.jsonl_path = telemetry_out;
      sampler_options.openmetrics_path =
          flags.Get("openmetrics-out", telemetry_out + ".prom");
      sampler_options.interval_s = interval_s;
      sampler_ = std::make_unique<obs::TelemetrySampler>();
      if (!sampler_->Start(sampler_options)) {
        std::fprintf(stderr, "cannot open --telemetry-out file '%s'\n",
                     telemetry_out.c_str());
        return;
      }
    }
    if (want_statusz) {
      long long port = flags.GetInt("statusz-port", 0);
      if (port < 0 || port > 65535) {
        std::fprintf(stderr, "bad --statusz-port '%lld' (want 0..65535)\n",
                     port);
        return;
      }
      net::StatusServer::Options server_options;
      server_options.port = static_cast<uint16_t>(port);
      server_ = std::make_unique<net::StatusServer>();
      std::string error;
      if (!server_->Start(server_options, &error)) {
        std::fprintf(stderr, "cannot start --statusz-port server: %s\n",
                     error.c_str());
        return;
      }
      // Printed unconditionally so scripts (and the CI drill) can pick up
      // an ephemeral port without enabling logging.
      std::fprintf(stderr, "statusz: listening on http://127.0.0.1:%u\n",
                   server_->port());
    }
    ok_ = true;
  }

  /// Flushes the exit-time introspection artifacts and passes `code`
  /// through: a final telemetry row tagged with how the run ended, and a
  /// flight-recorder dump when the run failed or was cancelled. Called by
  /// Main around the command's exit code, so SIGINT/SIGTERM/--deadline
  /// exits (which return through CmdMine) flush exactly like clean ones.
  int Finalize(int code) {
    if (sampler_ != nullptr) {
      sampler_->Stop();
      const char* reason = code == 0   ? "exit"
                           : code == 3 ? "cancelled"
                           : code == 2 ? "fault"
                                       : "error";
      sampler_->FlushFinal(reason);
    }
    if (server_ != nullptr) {
      server_->Stop();
    }
    if ((code == 2 || code == 3) && !flight_dump_path_.empty()) {
      if (obs::FlightRecorder::Global().DumpJsonFile(flight_dump_path_)) {
        std::fprintf(stderr, "flight recorder dumped to '%s'\n",
                     flight_dump_path_.c_str());
      } else {
        std::fprintf(stderr, "cannot write --flight-recorder file '%s'\n",
                     flight_dump_path_.c_str());
      }
    }
    return code;
  }

  ~ObsSession() {
    // Failed-construction and early-usage-error paths that skip
    // Finalize(): make sure the server and sampler threads are down
    // before their objects die.
    if (server_ != nullptr) server_->Stop();
    if (sampler_ != nullptr) sampler_->Stop();
    if (progress_thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(progress_mutex_);
        progress_stop_ = true;
      }
      progress_cv_.notify_all();
      progress_thread_.join();
    }
    if (!metrics_out_.empty()) {
      if (!obs::MetricsRegistry::Global().WriteJsonFile(metrics_out_)) {
        std::fprintf(stderr, "cannot write --metrics-out file '%s'\n",
                     metrics_out_.c_str());
      }
    }
    if (!trace_out_.empty()) {
      obs::Tracer::Global().Stop();
      if (!obs::Tracer::Global().WriteJsonFile(trace_out_)) {
        std::fprintf(stderr, "cannot write --trace-out file '%s'\n",
                     trace_out_.c_str());
      }
    }
    obs::Logger::Global().ClearSinks();
  }

  bool ok() const { return ok_; }

 private:
  void StartHeartbeat(double interval_s) {
    progress_thread_ = std::thread([this, interval_s] {
      auto start = std::chrono::steady_clock::now();
      std::unique_lock<std::mutex> lock(progress_mutex_);
      while (!progress_cv_.wait_for(
          lock, std::chrono::duration<double>(interval_s),
          [this] { return progress_stop_; })) {
        double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        std::string phase = obs::Profiler::Global().CurrentSection();
        obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
        NMINE_LOG(kInfo, "progress")
            .Msg("heartbeat")
            .Str("phase", phase.empty() ? "idle" : phase)
            .Num("elapsed_s", elapsed)
            .Num("scans_started", metrics.CounterValue("db.scans.started"))
            .Num("sequences_scanned",
                 metrics.CounterValue("db.sequences_scanned"));
      }
    });
  }

  bool ok_ = false;
  std::string metrics_out_;
  std::string trace_out_;
  std::string flight_dump_path_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
  std::unique_ptr<net::StatusServer> server_;
  bool progress_stop_ = false;
  std::mutex progress_mutex_;
  std::condition_variable progress_cv_;
  std::thread progress_thread_;
};

std::optional<Pattern> ParseIdPattern(const std::string& text) {
  std::istringstream in(text);
  std::vector<SymbolId> body;
  std::string token;
  while (in >> token) {
    if (token == "*") {
      body.push_back(kWildcard);
    } else {
      body.push_back(static_cast<SymbolId>(std::atoi(token.c_str())));
    }
  }
  if (!Pattern::IsValidBody(body)) return std::nullopt;
  return Pattern(std::move(body));
}

int CmdGenerate(const Flags& flags) {
  std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 1;
  }
  GeneratorConfig config;
  config.num_sequences = static_cast<size_t>(flags.GetInt("sequences", 1000));
  config.min_length = static_cast<size_t>(flags.GetInt("min-len", 50));
  config.max_length = static_cast<size_t>(flags.GetInt("max-len", 100));
  config.alphabet_size = static_cast<size_t>(flags.GetInt("alphabet", 20));
  config.plant_probability = flags.GetDouble("plant-prob", 0.3);
  for (const std::string& text : flags.GetAll("plant")) {
    std::optional<Pattern> p = ParseIdPattern(text);
    if (!p.has_value()) {
      std::fprintf(stderr, "generate: bad --plant pattern '%s'\n",
                   text.c_str());
      return 1;
    }
    config.planted.push_back(std::move(*p));
  }
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  InMemorySequenceDatabase db = GenerateDatabase(config, &rng);

  double alpha = flags.GetDouble("noise-alpha", 0.0);
  if (alpha > 0.0) {
    db = ApplyUniformNoise(db, alpha, config.alphabet_size, &rng);
  }
  IoResult r = dbformat::WriteDatabaseFile(out, db.records());
  if (!r.ok) {
    std::fprintf(stderr, "generate: %s\n", r.message.c_str());
    return 1;
  }
  std::printf("wrote %zu sequences (%llu symbols) to %s\n",
              db.NumSequences(),
              static_cast<unsigned long long>(db.TotalSymbols()),
              out.c_str());
  return 0;
}

int CmdImport(const Flags& flags) {
  std::string fasta = flags.Get("fasta", "");
  std::string out = flags.Get("out", "");
  if (fasta.empty() || out.empty()) {
    std::fprintf(stderr, "import: --fasta and --out are required\n");
    return 1;
  }
  std::vector<FastaRecord> records;
  IoResult r = ReadFastaFile(fasta, &records);
  if (!r.ok) {
    std::fprintf(stderr, "import: %s\n", r.message.c_str());
    return 1;
  }
  size_t skipped = 0;
  InMemorySequenceDatabase db = FastaToDatabase(records, &skipped);
  r = dbformat::WriteDatabaseFile(out, db.records());
  if (!r.ok) {
    std::fprintf(stderr, "import: %s\n", r.message.c_str());
    return 1;
  }
  std::printf(
      "imported %zu sequences (%llu residues, %zu non-standard skipped) "
      "to %s\n",
      db.NumSequences(), static_cast<unsigned long long>(db.TotalSymbols()),
      skipped, out.c_str());
  return 0;
}

int CmdInfo(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "info: database path required\n");
    return 1;
  }
  Status error;
  std::unique_ptr<DiskSequenceDatabase> db =
      DiskSequenceDatabase::Open(flags.positional()[0], &error);
  if (db == nullptr) {
    std::fprintf(stderr, "info: %s\n", error.ToString().c_str());
    return 1;
  }
  size_t min_len = SIZE_MAX;
  size_t max_len = 0;
  SymbolId max_symbol = -1;
  Status scan_status = db->Scan(
      [&](const SequenceRecord& r) {
        min_len = std::min(min_len, r.symbols.size());
        max_len = std::max(max_len, r.symbols.size());
        for (SymbolId s : r.symbols) max_symbol = std::max(max_symbol, s);
      },
      /*restart=*/[&] {
        min_len = SIZE_MAX;
        max_len = 0;
        max_symbol = -1;
      });
  if (!scan_status.ok()) {
    std::fprintf(stderr, "info: %s\n", scan_status.ToString().c_str());
    return 2;
  }
  std::printf("sequences:     %zu\n", db->NumSequences());
  std::printf("total symbols: %llu\n",
              static_cast<unsigned long long>(db->TotalSymbols()));
  if (db->NumSequences() > 0) {
    std::printf("lengths:       %zu .. %zu (avg %.1f)\n", min_len, max_len,
                static_cast<double>(db->TotalSymbols()) /
                    static_cast<double>(db->NumSequences()));
    std::printf("alphabet:      >= %d symbols\n", max_symbol + 1);
  }
  return 0;
}

int CmdMatrix(const Flags& flags) {
  std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "matrix: --out is required\n");
    return 1;
  }
  std::optional<CompatibilityMatrix> c;
  if (flags.Has("identity")) {
    c = CompatibilityMatrix::Identity(
        static_cast<size_t>(flags.GetInt("identity", 20)));
  } else if (flags.Has("uniform-alpha")) {
    c = UniformNoiseMatrix(static_cast<size_t>(flags.GetInt("alphabet", 20)),
                           flags.GetDouble("uniform-alpha", 0.1));
  } else if (flags.Has("blosum50")) {
    c = BlosumCompatibilityMatrix(flags.GetDouble("blosum50", 1.0));
  } else {
    std::fprintf(stderr,
                 "matrix: one of --identity M, --uniform-alpha A, "
                 "--blosum50 T is required\n");
    return 1;
  }
  MatrixIoResult r = WriteCompatibilityMatrixFile(out, *c);
  if (!r.ok) {
    std::fprintf(stderr, "matrix: %s\n", r.message.c_str());
    return 1;
  }
  std::printf("wrote %zux%zu matrix to %s\n", c->size(), c->size(),
              out.c_str());
  return 0;
}

int CmdMine(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "mine: database path required\n");
    return 1;
  }
  // Retry policy shared by the disk database (real I/O faults) and the
  // retrying decorator above the fault injector (drill faults).
  RetryPolicy retry;
  retry.max_attempts =
      1 + static_cast<int>(std::max(0LL, flags.GetInt("scan-retries", 2)));
  retry.initial_backoff_ms = flags.GetDouble("retry-backoff-ms", 5.0);

  // Per-run retry budget shared by the disk layer and the drill retrier,
  // so cumulative retries are capped no matter which layer performs them.
  std::optional<RetryBudget> retry_budget;
  if (flags.Has("retry-budget")) {
    long long budget_value = flags.GetInt("retry-budget", -1);
    if (budget_value < 0) {
      std::fprintf(stderr, "mine: bad --retry-budget '%s' (want >= 0)\n",
                   flags.Get("retry-budget", "").c_str());
      return 1;
    }
    retry_budget.emplace(budget_value);
  }

  Status error;
  DiskSequenceDatabase::Options db_options;
  db_options.retry = retry;
  db_options.retry_budget = retry_budget.has_value() ? &*retry_budget : nullptr;
  std::unique_ptr<DiskSequenceDatabase> db = DiskSequenceDatabase::Open(
      flags.positional()[0], db_options, &error);
  if (db == nullptr) {
    std::fprintf(stderr, "mine: %s\n", error.ToString().c_str());
    return 1;
  }

  // Optional fault-injection drill: Retrying(FaultInjecting(disk)), so the
  // injected faults exercise the same retry path as real ones. The plan
  // applies to mining scans only (the alphabet probe below runs directly
  // on disk), which keeps drill scan indices deterministic: index 0 is the
  // first mining scan.
  std::unique_ptr<FaultInjectingDatabase> injector;
  std::unique_ptr<RetryingDatabase> retrier;
  const SequenceDatabase* mine_db = db.get();
  std::string fault_spec = flags.Get("fault-plan", "");
  if (!fault_spec.empty()) {
    std::string plan_error;
    std::optional<FaultPlan> plan = FaultPlan::Parse(fault_spec, &plan_error);
    if (!plan.has_value()) {
      std::fprintf(stderr, "mine: %s\n", plan_error.c_str());
      return 1;
    }
    injector =
        std::make_unique<FaultInjectingDatabase>(db.get(), std::move(*plan));
    retrier = std::make_unique<RetryingDatabase>(
        injector.get(), retry, /*sleeper=*/nullptr,
        retry_budget.has_value() ? &*retry_budget : nullptr);
    mine_db = retrier.get();
  }

  // Determine the alphabet size from the data when only implicit matrices
  // are requested.
  SymbolId max_symbol = -1;
  Status probe_status = db->Scan(
      [&](const SequenceRecord& r) {
        for (SymbolId s : r.symbols) max_symbol = std::max(max_symbol, s);
      },
      /*restart=*/[&] { max_symbol = -1; });
  if (!probe_status.ok()) {
    std::fprintf(stderr, "mine: %s\n", probe_status.ToString().c_str());
    return 2;
  }
  size_t m = static_cast<size_t>(max_symbol + 1);

  std::optional<CompatibilityMatrix> c;
  if (flags.Has("matrix")) {
    MatrixIoResult merr;
    c = ReadCompatibilityMatrixFile(flags.Get("matrix", ""), &merr);
    if (!c.has_value()) {
      std::fprintf(stderr, "mine: %s\n", merr.message.c_str());
      if (merr.code == MatrixIoCode::kNotStochastic) {
        std::fprintf(stderr,
                     "mine: every column of a compatibility matrix must sum "
                     "to 1 (Definition 3.4); re-normalize the file\n");
      }
      return 1;
    }
    if (c->size() < m) {
      std::fprintf(stderr,
                   "mine: matrix is %zux%zu but the data uses %zu symbols\n",
                   c->size(), c->size(), m);
      return 1;
    }
  } else if (flags.Has("uniform-alpha")) {
    c = UniformNoiseMatrix(m, flags.GetDouble("uniform-alpha", 0.1));
  } else {
    c = CompatibilityMatrix::Identity(m);
  }

  Metric metric =
      flags.Get("metric", "match") == "support" ? Metric::kSupport
                                                : Metric::kMatch;
  MinerOptions options;
  options.min_threshold = flags.GetDouble("threshold", 0.1);
  options.space.max_span = static_cast<size_t>(flags.GetInt("max-span", 10));
  options.space.max_gap = static_cast<size_t>(flags.GetInt("max-gap", 0));
  options.max_level = static_cast<size_t>(
      flags.GetInt("max-level", static_cast<long long>(options.space.max_span)));
  options.sample_size = static_cast<size_t>(flags.GetInt("sample", 1000));
  options.delta = flags.GetDouble("delta", 1e-4);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.num_threads =
      static_cast<size_t>(std::max(0LL, flags.GetInt("threads", 1)));
  options.phase3_scan_retries =
      static_cast<size_t>(std::max(0LL, flags.GetInt("phase3-retries", 1)));
  options.phase3_checkpoint_path = flags.Get("phase3-checkpoint", "");
  options.run_checkpoint_path = flags.Get("run-checkpoint", "");
  options.memory_budget_bytes =
      static_cast<size_t>(std::max(0LL, flags.GetInt("memory-budget", 0)));

  // Cooperative stop: SIGINT/SIGTERM and --deadline share one RunControl,
  // polled at scan/level/batch boundaries by every miner.
  options.run_control = &g_run_control;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  double deadline_s = flags.GetDouble("deadline", 0.0);
  if (flags.Has("deadline") && deadline_s <= 0.0) {
    std::fprintf(stderr, "mine: bad --deadline '%s' (want seconds > 0)\n",
                 flags.Get("deadline", "").c_str());
    return 1;
  }
  if (deadline_s > 0.0) g_run_control.SetDeadlineAfter(deadline_s);

  // Match-kernel selection: resolve --simd against the real host (auto
  // picks the widest kernel this build AND this CPU support) and install
  // the process-wide kernel before any mining threads exist. Mined
  // pattern sets are bit-identical across kernels; only speed changes.
  std::string simd_flag = flags.Get("simd", "auto");
  SimdLevel simd_level;
  std::string simd_error;
  if (!ResolveSimdLevel(simd_flag, DetectCpuFeatures(), &simd_level,
                        &simd_error) ||
      !SetActiveMatchKernel(simd_level, &simd_error)) {
    std::fprintf(stderr, "mine: %s\n", simd_error.c_str());
    return 1;
  }
  runtime::RunStatusBoard::Global().SetSimdKernel(SimdLevelName(simd_level));

  std::string algorithm = flags.Get("algorithm", "collapse");
  std::string calibrate = flags.Get("calibrate", "none");

  // Publish the run on the status board so /statusz and the telemetry
  // sampler see it (string literals only — the board stores raw
  // pointers).
  const char* algo_name = calibrate != "none"    ? "levelwise_calibrated"
                          : algorithm == "collapse"   ? "collapse"
                          : algorithm == "levelwise"  ? "levelwise"
                          : algorithm == "maxminer"   ? "maxminer"
                          : algorithm == "toivonen"   ? "toivonen"
                          : algorithm == "depthfirst" ? "depthfirst"
                                                      : "unknown";
  runtime::RunStatusBoard::Global().BeginRun("mine", algo_name);
  runtime::RunStatusBoard::Global().SetRunControl(&g_run_control);

  MiningResult result;
  if (calibrate != "none") {
    if (algorithm != "levelwise") {
      std::fprintf(stderr,
                   "mine: --calibrate requires --algorithm levelwise "
                   "(per-pattern thresholds)\n");
      return 1;
    }
    CalibrationMode mode = calibrate == "survival"
                               ? CalibrationMode::kDiagonalSurvival
                               : CalibrationMode::kExpectedDeflation;
    MatchCalibration calibration(*c, mode);
    LevelwiseMiner miner(metric, options);
    double tau = options.min_threshold;
    result = miner.MineWithThreshold(
        *mine_db, *c, [&calibration, tau](const Pattern& p) {
          return calibration.ThresholdFor(p, tau);
        });
  } else if (algorithm == "collapse") {
    result = BorderCollapseMiner(metric, options).Mine(*mine_db, *c);
  } else if (algorithm == "levelwise") {
    result = LevelwiseMiner(metric, options).Mine(*mine_db, *c);
  } else if (algorithm == "maxminer") {
    result = MaxMiner(metric, options).Mine(*mine_db, *c);
  } else if (algorithm == "toivonen") {
    result = ToivonenMiner(metric, options).Mine(*mine_db, *c);
  } else if (algorithm == "depthfirst") {
    result = DepthFirstMiner(metric, options).Mine(*mine_db, *c);
  } else {
    std::fprintf(stderr, "mine: unknown --algorithm '%s'\n",
                 algorithm.c_str());
    return 1;
  }

  if (!result.ok()) {
    std::fprintf(stderr, "mine: mining failed: %s\n",
                 result.status.ToString().c_str());
    if (result.status.code() == StatusCode::kDataLoss) {
      std::fprintf(stderr,
                   "mine: the database appears corrupted; retries cannot "
                   "recover it\n");
    }
    if (result.status.code() == StatusCode::kCancelled ||
        result.status.code() == StatusCode::kDeadlineExceeded) {
      std::string ckpt = !options.run_checkpoint_path.empty()
                             ? options.run_checkpoint_path
                             : options.phase3_checkpoint_path;
      if (!ckpt.empty()) {
        std::fprintf(stderr,
                     "mine: progress checkpointed to '%s'; rerun with the "
                     "same flags to resume\n",
                     ckpt.c_str());
      }
      return 3;
    }
    return 2;
  }

  Table table({"pattern", "value"});
  for (const Pattern& p : result.border.ToSortedVector()) {
    auto it = result.values.find(p);
    table.AddRow({p.ToString(),
                  it == result.values.end() ? "-" : Table::Num(it->second, 5)});
  }
  if (flags.Has("csv")) {
    table.PrintCsv(std::cout);
  } else {
    std::printf("frequent patterns: %zu   border: %zu   scans: %lld   "
                "time: %.2fs%s\n",
                result.frequent.size(), result.border.size(),
                static_cast<long long>(result.scans), result.seconds,
                result.truncated ? "   [TRUNCATED]" : "");
    table.Print(std::cout);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  ObsSession obs_session(flags);
  if (!obs_session.ok()) return 1;
  if (command == "generate") return obs_session.Finalize(CmdGenerate(flags));
  if (command == "import") return obs_session.Finalize(CmdImport(flags));
  if (command == "info") return obs_session.Finalize(CmdInfo(flags));
  if (command == "matrix") return obs_session.Finalize(CmdMatrix(flags));
  if (command == "mine") return obs_session.Finalize(CmdMine(flags));
  return Usage();
}

}  // namespace
}  // namespace nmine

int main(int argc, char** argv) { return nmine::Main(argc, argv); }
