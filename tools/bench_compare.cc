// Diffs two BENCH_*.json snapshots (or two directories of them, matched
// by file name) and fails when a bench got slower beyond noise: median
// up by more than --threshold (default 15%) AND by more than 3x the
// larger MAD of the two runs. A new bench with no baseline, or a pair
// whose snapshots carry mismatched/unsupported schema versions, is a
// per-scenario failure (the rest still get diffed). Exit codes: 0 clean,
// 1 regression or per-scenario failure, 2 usage/IO error.
//
//   bench_compare old.json new.json
//   bench_compare --threshold=0.10 bench/baselines build/bench_out
//   bench_compare --summary-out="$GITHUB_STEP_SUMMARY" old_dir new_dir
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/compare.h"

int main(int argc, char** argv) {
  double threshold = nmine::bench::kDefaultRegressionThreshold;
  std::string summary_out;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--summary-out=", 0) == 0) {
      summary_out = arg.substr(14);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2 || threshold <= 0.0) {
    std::fprintf(stderr,
                 "usage: bench_compare [--threshold=FRACTION] "
                 "[--summary-out=FILE] <old.json|old_dir> <new.json|new_dir>\n");
    return 2;
  }

  nmine::bench::CompareReport report;
  std::string error;
  if (!nmine::bench::CompareFilesOrDirs(paths[0], paths[1], threshold,
                                        &report, &error)) {
    std::fprintf(stderr, "bench_compare: %s\n", error.c_str());
    return 2;
  }
  nmine::bench::PrintReport(report, std::cout);
  if (!summary_out.empty()) {
    // Append, not truncate: CI job summaries accumulate sections from
    // several steps in the same file.
    std::ofstream out(summary_out, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "bench_compare: cannot open summary file '%s'\n",
                   summary_out.c_str());
      return 2;
    }
    nmine::bench::PrintMarkdownSummary(report, threshold, out);
  }
  if (!report.errors.empty()) {
    std::printf("FAIL: %zu scenario(s) could not be compared\n",
                report.errors.size());
    return 1;
  }
  if (report.has_regression) {
    std::printf("FAIL: at least one bench regressed beyond %.0f%% + noise\n",
                threshold * 100.0);
    return 1;
  }
  std::printf("OK: no regression beyond %.0f%% + noise\n", threshold * 100.0);
  return 0;
}
