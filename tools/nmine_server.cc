// nmine_server: a mining daemon. Accepts jobs over a line-JSON TCP
// protocol (one JSON object per line; see src/nmine/serve/protocol.h),
// runs each as a governed mining run on the shared thread pool, and keeps
// every admitted job durable in a write-ahead journal so a crash loses
// nothing a client was acknowledged for.
//
// Usage:
//   nmine_server --state-dir DIR [--port P] [--queue-capacity N]
//       [--max-running N] [--shed-retry-after S] [--statusz-port P]
//       [--port-file FILE] [--log-level L] [--trace] [--trace-buffer N]
//       [--simd auto|avx2|neon|scalar]
//
// Flags:
//   --state-dir DIR        job journal + per-job run checkpoints (required;
//                          reusing a previous run's dir = crash recovery:
//                          queued and interrupted jobs are re-admitted and
//                          resume from their checkpoints)
//   --port P               TCP port for the job protocol (default 0: pick
//                          an ephemeral port and print it)
//   --queue-capacity N     admission bound; beyond it submits are shed
//                          with a typed RESOURCE_EXHAUSTED (default 64)
//   --max-running N        concurrent jobs (default 1; 0 = admit-only,
//                          for tests)
//   --shed-retry-after S   retry_after_s hint on shed/drain responses
//                          (default 1)
//   --statusz-port P       also serve /healthz /statusz /metricsz /jobsz
//                          over HTTP on 127.0.0.1:P
//   --port-file FILE       write "<job_port> <statusz_port>\n" once both
//                          listeners are up (scripts poll for this file)
//   --log-level L          trace|debug|info|warn|error|off (default info)
//   --trace                per-job request tracing: bind every job to a
//                          128-bit trace id, emit lifecycle + miner spans,
//                          serve per-job Chrome trace JSON via the "trace"
//                          op and /tracez (see DESIGN.md §15)
//   --trace-buffer N       tracer ring capacity in events (default 65536);
//                          full ring drops oldest, counted by
//                          obs.trace.dropped
//   --simd LEVEL           match-kernel instruction set for all jobs
//                          (default auto = widest supported; mined results
//                          are bit-identical across levels; reported in
//                          /statusz as "simd_kernel")
//
// Lifecycle: SIGTERM or SIGINT triggers a graceful drain — stop admitting
// (submits get a typed UNAVAILABLE), cancel in-flight jobs cooperatively
// so they flush their run checkpoints, journal them back to queued, flush
// telemetry, exit 0. A SIGKILL'd server restarted on the same --state-dir
// recovers from the journal instead.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "nmine/core/match_kernel.h"
#include "nmine/net/status_server.h"
#include "nmine/obs/logger.h"
#include "nmine/runtime/checkpoint_io.h"
#include "nmine/runtime/run_status.h"
#include "nmine/serve/server.h"

namespace nmine {
namespace {

std::atomic<bool> g_drain{false};

void HandleDrainSignal(int) { g_drain.store(true, std::memory_order_relaxed); }

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        size_t eq = key.find('=');
        if (eq != std::string::npos) {
          values_[key.substr(0, eq)] = key.substr(eq + 1);
        } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      }
    }
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  long long GetInt(const std::string& key, long long dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::atof(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string state_dir = flags.Get("state-dir", "");
  if (state_dir.empty()) {
    std::fprintf(stderr, "nmine_server: --state-dir is required\n");
    return 1;
  }
  std::optional<obs::LogLevel> level =
      obs::ParseLogLevel(flags.Get("log-level", "info"));
  if (!level.has_value()) {
    std::fprintf(stderr, "nmine_server: bad --log-level '%s'\n",
                 flags.Get("log-level", "").c_str());
    return 1;
  }
  obs::Logger::Global().SetLevel(*level);

  // Match-kernel selection for every job this server runs (process-wide;
  // results are bit-identical across kernels, only speed changes).
  SimdLevel simd_level;
  std::string simd_error;
  if (!ResolveSimdLevel(flags.Get("simd", "auto"), DetectCpuFeatures(),
                        &simd_level, &simd_error) ||
      !SetActiveMatchKernel(simd_level, &simd_error)) {
    std::fprintf(stderr, "nmine_server: %s\n", simd_error.c_str());
    return 1;
  }
  runtime::RunStatusBoard::Global().SetSimdKernel(SimdLevelName(simd_level));

  serve::MiningServer::Options options;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.state_dir = state_dir;
  options.queue_capacity =
      static_cast<size_t>(std::max(0LL, flags.GetInt("queue-capacity", 64)));
  options.max_running =
      static_cast<size_t>(std::max(0LL, flags.GetInt("max-running", 1)));
  options.shed_retry_after_s = flags.GetDouble("shed-retry-after", 1.0);
  options.tracing = flags.Has("trace");
  options.trace_buffer =
      static_cast<size_t>(std::max(0LL, flags.GetInt("trace-buffer", 0)));

  serve::MiningServer server;
  std::string error;
  if (!server.Start(options, &error)) {
    std::fprintf(stderr, "nmine_server: %s\n", error.c_str());
    return 1;
  }

  net::StatusServer statusz;
  uint16_t statusz_port = 0;
  if (flags.Has("statusz-port")) {
    net::StatusServer::Options sopt;
    sopt.port = static_cast<uint16_t>(flags.GetInt("statusz-port", 0));
    if (!statusz.Start(sopt, &error)) {
      std::fprintf(stderr, "nmine_server: statusz: %s\n", error.c_str());
      server.Stop();
      return 1;
    }
    statusz_port = statusz.port();
  }

  std::printf("nmine_server listening on port %u (statusz %u)\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned>(statusz_port));
  std::fflush(stdout);
  std::string port_file = flags.Get("port-file", "");
  if (!port_file.empty()) {
    // Atomic write: a polling script never reads a half-written file.
    std::string body = std::to_string(server.port()) + " " +
                       std::to_string(statusz_port) + "\n";
    Status s = runtime::AtomicWriteFile(port_file, body);
    if (!s.ok()) {
      std::fprintf(stderr, "nmine_server: cannot write --port-file: %s\n",
                   s.ToString().c_str());
    }
  }

  std::signal(SIGTERM, HandleDrainSignal);
  std::signal(SIGINT, HandleDrainSignal);
  while (!g_drain.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  NMINE_LOG(kInfo, "serve").Msg("drain signal received");
  server.Drain();
  if (statusz.running()) statusz.Stop();
  return 0;
}

}  // namespace
}  // namespace nmine

int main(int argc, char** argv) { return nmine::Main(argc, argv); }
