// Determinism oracle for the parallel scan engine: every parallel
// counting path must be BIT-IDENTICAL to its serial run — same shard
// grouping, same merge order, so the floating-point sums are the same
// doubles, not merely close. All comparisons below are exact (EXPECT_EQ
// on doubles is deliberate).
#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/pattern.h"
#include "nmine/db/fault_injecting_database.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/db/retrying_database.h"
#include "nmine/exec/policy.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/symbol_scan.h"
#include "nmine/stats/random.h"

namespace nmine {
namespace {

constexpr size_t kAlphabet = 8;

InMemorySequenceDatabase MakeDatabase(size_t n_seq, uint64_t seed) {
  Rng rng(seed);
  GeneratorConfig config;
  config.num_sequences = n_seq;
  config.min_length = 10;
  config.max_length = 30;
  config.alphabet_size = kAlphabet;
  config.planted.push_back(Pattern({1, 2, 3}));
  config.plant_probability = 0.4;
  return GenerateDatabase(config, &rng);
}

std::vector<Pattern> TestPatterns() {
  return {
      Pattern({1}),
      Pattern({1, 2}),
      Pattern({1, 2, 3}),
      Pattern({2, kWildcard, 1}),
      Pattern({3, kWildcard, kWildcard, 5}),
      Pattern({0, 4}),
      Pattern({7, 6, 5}),
  };
}

exec::ExecPolicy Policy(size_t threads, size_t shard_size) {
  exec::ExecPolicy policy;
  policy.num_threads = threads;
  policy.shard_size = shard_size;
  return policy;
}

// The thread counts exercised against each serial reference: even, odd,
// and more threads than the 1-core CI machine has (oversubscription must
// not change results either).
const size_t kThreadCounts[] = {1, 2, 4, 7};
const size_t kShardSizes[] = {16, exec::kDefaultShardSize};

class ParallelOracleTest : public ::testing::Test {
 protected:
  InMemorySequenceDatabase db_ = MakeDatabase(400, 99);
  std::vector<Pattern> patterns_ = TestPatterns();
  // Dense matrix: every column is full, the match walk sees partial
  // credit everywhere. Sparse (identity): columns have one entry, the
  // support-style early exits dominate.
  CompatibilityMatrix dense_ = UniformNoiseMatrix(kAlphabet, 0.15);
  CompatibilityMatrix sparse_ = CompatibilityMatrix::Identity(kAlphabet);
};

TEST_F(ParallelOracleTest, CountMatchesBitIdentical) {
  for (const CompatibilityMatrix* c : {&dense_, &sparse_}) {
    for (size_t shard : kShardSizes) {
      std::vector<double> reference =
          CountMatches(db_, *c, patterns_, Policy(1, shard));
      for (size_t threads : kThreadCounts) {
        std::vector<double> got =
            CountMatches(db_, *c, patterns_, Policy(threads, shard));
        ASSERT_EQ(got.size(), reference.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], reference[i])
              << "threads=" << threads << " shard=" << shard << " i=" << i;
        }
      }
    }
  }
}

TEST_F(ParallelOracleTest, CountSupportsBitIdentical) {
  for (size_t shard : kShardSizes) {
    std::vector<double> reference =
        CountSupports(db_, patterns_, Policy(1, shard));
    for (size_t threads : kThreadCounts) {
      std::vector<double> got =
          CountSupports(db_, patterns_, Policy(threads, shard));
      EXPECT_EQ(got, reference) << "threads=" << threads << " shard=" << shard;
    }
  }
}

TEST_F(ParallelOracleTest, InRecordsVariantsBitIdentical) {
  const std::vector<SequenceRecord>& records = db_.records();
  std::vector<double> match_ref =
      CountMatchesInRecords(records, dense_, patterns_, Policy(1, 16));
  std::vector<double> support_ref =
      CountSupportsInRecords(records, patterns_, Policy(1, 16));
  for (size_t threads : kThreadCounts) {
    EXPECT_EQ(CountMatchesInRecords(records, dense_, patterns_,
                                    Policy(threads, 16)),
              match_ref)
        << "threads=" << threads;
    EXPECT_EQ(CountSupportsInRecords(records, patterns_,
                                     Policy(threads, 16)),
              support_ref)
        << "threads=" << threads;
  }
}

// Phase 1: the sharded symbol-match accumulation must be bit-identical AND
// the reservoir sample must contain exactly the same records (the sampler
// stays on the scanning thread, consuming RNG draws in delivery order).
TEST_F(ParallelOracleTest, SymbolScanBitIdenticalIncludingSample) {
  const size_t sample_size = 50;
  Rng ref_rng(7);
  SymbolScanResult reference =
      ScanSymbolsAndSample(db_, dense_, sample_size, &ref_rng, Policy(1, 32));
  ASSERT_TRUE(reference.status.ok());
  for (size_t threads : kThreadCounts) {
    Rng rng(7);
    SymbolScanResult got =
        ScanSymbolsAndSample(db_, dense_, sample_size, &rng,
                             Policy(threads, 32));
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(got.symbol_match, reference.symbol_match)
        << "threads=" << threads;
    ASSERT_EQ(got.sample.NumSequences(), reference.sample.NumSequences());
    for (size_t i = 0; i < got.sample.records().size(); ++i) {
      EXPECT_EQ(got.sample.records()[i].id, reference.sample.records()[i].id)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST_F(ParallelOracleTest, SymbolSupportScanBitIdentical) {
  Rng ref_rng(7);
  SymbolScanResult reference =
      ScanSymbolSupports(db_, kAlphabet, 50, &ref_rng, Policy(1, 32));
  ASSERT_TRUE(reference.status.ok());
  for (size_t threads : kThreadCounts) {
    Rng rng(7);
    SymbolScanResult got =
        ScanSymbolSupports(db_, kAlphabet, 50, &rng, Policy(threads, 32));
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(got.symbol_match, reference.symbol_match)
        << "threads=" << threads;
  }
}

// A retried scan restarts the reducer; the recovered parallel run must
// still equal the fault-free serial run. short-read:1:5 delivers five
// records and then fails once, so the restart fires with buffered,
// partially-merged state in flight.
TEST_F(ParallelOracleTest, RetriedParallelScanEqualsFaultFreeSerial) {
  std::vector<double> reference =
      CountMatches(db_, dense_, patterns_, Policy(1, 16));
  for (size_t threads : kThreadCounts) {
    std::string error;
    std::optional<FaultPlan> plan = FaultPlan::Parse("short-read:1:5", &error);
    ASSERT_TRUE(plan.has_value()) << error;
    FaultInjectingDatabase faulty(&db_, *plan);
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_ms = 0.0;
    RetryingDatabase retrying(&faulty, policy);
    std::vector<double> got;
    Status status = TryCountMatches(retrying, dense_, patterns_, &got,
                                    Policy(threads, 16));
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(got, reference) << "threads=" << threads;
    EXPECT_GE(faulty.attempts(), 2);
  }
}

// End to end: a full border-collapsing run (Phase 1 sample, Phase 2
// in-memory mining, Phase 3 probes) must produce the same border, the
// same frequent set, and the same values at 4 threads as at 1.
TEST_F(ParallelOracleTest, BorderCollapseMinerBitIdenticalAcrossThreads) {
  MinerOptions options;
  options.min_threshold = 0.3;
  options.space.max_span = 5;
  options.max_level = 5;
  options.sample_size = 100;
  options.delta = 0.05;
  options.seed = 11;

  options.num_threads = 1;
  MiningResult serial =
      BorderCollapseMiner(Metric::kMatch, options).Mine(db_, dense_);
  ASSERT_TRUE(serial.ok());

  options.num_threads = 4;
  MiningResult parallel =
      BorderCollapseMiner(Metric::kMatch, options).Mine(db_, dense_);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(parallel.frequent.ToSortedVector(),
            serial.frequent.ToSortedVector());
  EXPECT_EQ(parallel.border.ToSortedVector(), serial.border.ToSortedVector());
  EXPECT_EQ(parallel.scans, serial.scans);
  for (const auto& [pattern, value] : serial.values) {
    auto it = parallel.values.find(pattern);
    ASSERT_NE(it, parallel.values.end()) << pattern.ToString();
    EXPECT_EQ(it->second, value) << pattern.ToString();
  }
}

}  // namespace
}  // namespace nmine
