// Unit tests for the exec layer: ParallelFor index coverage and the
// deterministic sharded reduction primitives.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/sequence.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/exec/parallel_for.h"
#include "nmine/exec/policy.h"
#include "nmine/exec/sharded_reduce.h"
#include "nmine/exec/thread_pool.h"

namespace nmine {
namespace exec {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(HardwareThreads(), 1u);
  EXPECT_EQ(ResolveNumThreads(0), HardwareThreads());
  EXPECT_EQ(ResolveNumThreads(3), 3u);
}

TEST(ThreadPoolTest, SharedPoolGrowsAndNeverShrinks) {
  ThreadPool& pool = ThreadPool::Shared();
  pool.EnsureWorkers(2);
  size_t after_two = pool.num_workers();
  EXPECT_GE(after_two, 2u);
  pool.EnsureWorkers(1);  // no-op: never shrinks
  EXPECT_EQ(pool.num_workers(), after_two);
}

TEST(ThreadPoolTest, ReservedWorkersStayOnTopOfEnsureWorkers) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_workers(), 2u);
  EXPECT_EQ(pool.reserved_workers(), 0u);

  // Park a long-lived service task (like the status server's accept
  // loop) on a reserved worker.
  std::atomic<bool> stop{false};
  std::atomic<bool> parked{false};
  pool.ReserveWorker();
  EXPECT_EQ(pool.reserved_workers(), 1u);
  EXPECT_EQ(pool.num_workers(), 3u);
  pool.Submit([&] {
    parked.store(true);
    while (!stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  while (!parked.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // EnsureWorkers(n) must mean "n workers free for tasks": with one
  // worker parked, asking for 4 yields 4 usable workers, so 4 mutually
  // blocking tasks (a barrier) can all run concurrently.
  pool.EnsureWorkers(4);
  EXPECT_EQ(pool.num_workers(), 5u);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      arrived.fetch_add(1);
      while (arrived.load() < 4) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (int spins = 0; arrived.load() < 4 && spins < 5000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(arrived.load(), 4);  // nobody starved by the parked service
  stop.store(true);
}

TEST(ParallelForTest, EveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    const size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    ParallelFor(threads, count,
                [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ParallelForTest, EdgeCases) {
  // count == 0: no calls, returns immediately.
  std::atomic<int> calls{0};
  ParallelFor(4, 0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);

  // More threads than indices: still every index exactly once.
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  ParallelFor(16, 3, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1);

  // 0 = hardware concurrency.
  std::atomic<uint64_t> sum{0};
  ParallelFor(0, 100, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelForTest, BarrierMakesWritesVisible) {
  std::vector<size_t> out(256, 0);
  ParallelFor(4, out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

std::vector<SequenceRecord> MakeRecords(size_t n) {
  std::vector<SequenceRecord> records;
  for (size_t i = 0; i < n; ++i) {
    SequenceRecord r;
    r.id = static_cast<int64_t>(i);
    r.symbols = {static_cast<SymbolId>(i % 5), static_cast<SymbolId>(i % 3)};
    records.push_back(std::move(r));
  }
  return records;
}

// A kernel that counts records and sums their ids; stateless, so any
// grouping yields the same totals (these are exact integer sums).
RecordFnFactory CountingFactory() {
  return []() -> RecordFn {
    return [](const SequenceRecord& r, std::vector<double>* partial) {
      (*partial)[0] += 1.0;
      (*partial)[1] += static_cast<double>(r.id);
    };
  };
}

TEST(ShardedScanReducerTest, SumsAreCorrectForAnyPolicy) {
  const size_t n = 700;  // not a multiple of any shard size used below
  std::vector<SequenceRecord> records = MakeRecords(n);
  const double expect_ids = static_cast<double>(n * (n - 1) / 2);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t shard : {size_t{16}, size_t{256}}) {
      ExecPolicy policy;
      policy.num_threads = threads;
      policy.shard_size = shard;
      ShardedScanReducer reducer(2, policy, CountingFactory());
      for (const SequenceRecord& r : records) reducer.Consume(r);
      std::vector<double> totals = reducer.Finish();
      EXPECT_EQ(totals[0], static_cast<double>(n))
          << "threads=" << threads << " shard=" << shard;
      EXPECT_EQ(totals[1], expect_ids);
    }
  }
}

TEST(ShardedScanReducerTest, RestartDropsAllAccumulation) {
  std::vector<SequenceRecord> records = MakeRecords(300);
  ExecPolicy policy;
  policy.num_threads = 4;
  policy.shard_size = 32;
  ShardedScanReducer reducer(2, policy, CountingFactory());
  // Simulate a failed attempt: feed some records, then restart mid-way,
  // as a retrying database would before redelivering from the top.
  for (size_t i = 0; i < 123; ++i) reducer.Consume(records[i]);
  reducer.Restart();
  for (const SequenceRecord& r : records) reducer.Consume(r);
  std::vector<double> totals = reducer.Finish();
  EXPECT_EQ(totals[0], 300.0);
}

TEST(ReduceRecordsTest, MatchesSerialBitForBit) {
  // A kernel with a value whose accumulation is order-sensitive in
  // floating point: equality across thread counts demonstrates that the
  // grouping really is fixed by shard_size alone.
  std::vector<SequenceRecord> records = MakeRecords(511);
  RecordFnFactory factory = []() -> RecordFn {
    return [](const SequenceRecord& r, std::vector<double>* partial) {
      (*partial)[0] += 1.0 / (1.0 + static_cast<double>(r.id) * 0.7);
    };
  };
  ExecPolicy serial;  // num_threads = 1, default shard size
  std::vector<double> reference = ReduceRecords(records, 1, serial, factory);
  for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    ExecPolicy policy;
    policy.num_threads = threads;
    std::vector<double> got = ReduceRecords(records, 1, policy, factory);
    EXPECT_EQ(got[0], reference[0]) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace exec
}  // namespace nmine
