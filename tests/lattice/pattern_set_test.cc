#include "nmine/lattice/pattern_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(PatternSetTest, InsertContainsErase) {
  PatternSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Insert(P({0, 1})));
  EXPECT_FALSE(s.Insert(P({0, 1})));  // duplicate
  EXPECT_TRUE(s.Contains(P({0, 1})));
  EXPECT_FALSE(s.Contains(P({1, 0})));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Erase(P({0, 1})));
  EXPECT_FALSE(s.Erase(P({0, 1})));
  EXPECT_TRUE(s.empty());
}

TEST(PatternSetTest, VectorConstructorDeduplicates) {
  PatternSet s({P({0}), P({1}), P({0})});
  EXPECT_EQ(s.size(), 2u);
}

TEST(PatternSetTest, SortedExportIsDeterministic) {
  PatternSet s({P({2, 2}), P({0}), P({1, -1, 1}), P({3})});
  std::vector<Pattern> v = s.ToSortedVector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], P({0}));
  EXPECT_EQ(v[1], P({3}));
  EXPECT_EQ(v[2], P({2, 2}));
  EXPECT_EQ(v[3], P({1, -1, 1}));
}

TEST(PatternSetTest, IntersectionSize) {
  PatternSet a({P({0}), P({1}), P({2})});
  PatternSet b({P({1}), P({2}), P({3}), P({4})});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
  EXPECT_EQ(a.IntersectionSize(PatternSet()), 0u);
}

}  // namespace
}  // namespace nmine
