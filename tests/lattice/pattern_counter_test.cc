#include "nmine/lattice/pattern_counter.h"

#include <gtest/gtest.h>

#include "nmine/gen/sequence_generator.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::NaiveMatches;
using testutil::NaiveSupports;
using testutil::P;

TEST(PatternTrieTest, SinglePatternMatchesSequenceMatch) {
  CompatibilityMatrix c = Figure2Matrix();
  PatternTrie trie({P({0, 1})});
  std::vector<double> best;
  trie.BestMatches(c, {0, 1, 1, 2, 3, 0}, &best);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_DOUBLE_EQ(best[0], 0.72);  // the Section-3 example
}

TEST(PatternTrieTest, SharedPrefixesComputeCorrectly) {
  CompatibilityMatrix c = Figure2Matrix();
  std::vector<Pattern> patterns = {P({0, 1}), P({0, 1, 2}), P({0, -1, 2}),
                                   P({1}), P({1, 1})};
  PatternTrie trie(patterns);
  Sequence s = {0, 1, 2, 0, 1};
  std::vector<double> best;
  trie.BestMatches(c, s, &best);
  std::vector<double> expected = NaiveMatches(
      {{0, s}}, c, patterns);
  ASSERT_EQ(best.size(), expected.size());
  for (size_t i = 0; i < best.size(); ++i) {
    EXPECT_DOUBLE_EQ(best[i], expected[i]) << patterns[i].ToString();
  }
}

TEST(PatternTrieTest, DuplicatePatternsBothReceiveResults) {
  CompatibilityMatrix c = Figure2Matrix();
  PatternTrie trie({P({0, 1}), P({0, 1})});
  std::vector<double> best;
  trie.BestMatches(c, {0, 1}, &best);
  ASSERT_EQ(best.size(), 2u);
  EXPECT_DOUBLE_EQ(best[0], best[1]);
  EXPECT_GT(best[0], 0.0);
}

TEST(PatternTrieTest, SupportsAreBinary) {
  PatternTrie trie({P({0, 1}), P({1, 0}), P({0, -1, 0})});
  std::vector<double> best;
  trie.BestSupports({0, 1, 0}, &best);
  EXPECT_DOUBLE_EQ(best[0], 1.0);
  EXPECT_DOUBLE_EQ(best[1], 1.0);
  EXPECT_DOUBLE_EQ(best[2], 1.0);
  trie.BestSupports({0, 0, 0}, &best);
  EXPECT_DOUBLE_EQ(best[0], 0.0);
  EXPECT_DOUBLE_EQ(best[1], 0.0);
  EXPECT_DOUBLE_EQ(best[2], 1.0);
}

TEST(CountersTest, OneScanPerBatch) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  CountMatches(db, c, {P({0}), P({1}), P({0, 1})});
  EXPECT_EQ(db.scan_count(), 1);
  CountSupports(db, {P({0}), P({1})});
  EXPECT_EQ(db.scan_count(), 2);
}

TEST(CountersTest, MatchesPaperFigure4cSpotChecks) {
  // Hand-verified cells of Figure 4(c): match(d1d2) = 0.2025 (paper rounds
  // to 0.203) and match(d2d1) = 0.39125 (paper: 0.391).
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  std::vector<double> v = CountMatches(db, c, {P({0, 1}), P({1, 0})});
  EXPECT_NEAR(v[0], 0.2025, 1e-12);
  EXPECT_NEAR(v[1], 0.39125, 1e-12);
}

TEST(CountersTest, SupportsMatchPaperFigure4c) {
  // support(d1d2) = 0.25, support(d2d1) = 0.50, support(d4d2) = 0.50.
  InMemorySequenceDatabase db = Figure4Database();
  std::vector<double> v =
      CountSupports(db, {P({0, 1}), P({1, 0}), P({3, 1})});
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.50);
  EXPECT_DOUBLE_EQ(v[2], 0.50);
}

TEST(CountersTest, EmptyDatabaseYieldsZeros) {
  InMemorySequenceDatabase db;
  CompatibilityMatrix c = Figure2Matrix();
  std::vector<double> v = CountMatches(db, c, {P({0})});
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

class TrieVsNaiveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieVsNaiveProperty, RandomBatchesAgreeWithNaiveOracle) {
  Rng rng(GetParam());
  const size_t m = 5;
  CompatibilityMatrix c = Figure2Matrix();

  // Random database.
  std::vector<SequenceRecord> records;
  const size_t num_seq = 1 + rng.UniformInt(8);
  for (size_t i = 0; i < num_seq; ++i) {
    SequenceRecord r;
    r.id = static_cast<SequenceId>(i);
    r.symbols = RandomSequence(1 + rng.UniformInt(20), m, &rng);
    records.push_back(std::move(r));
  }

  // Random pattern batch (with wildcards).
  std::vector<Pattern> patterns;
  const size_t num_patterns = 1 + rng.UniformInt(30);
  for (size_t i = 0; i < num_patterns; ++i) {
    patterns.push_back(
        RandomPattern(1 + rng.UniformInt(4), /*max_gap=*/2, m, &rng));
  }

  std::vector<double> trie_match = CountMatchesInRecords(records, c, patterns);
  std::vector<double> naive_match = NaiveMatches(records, c, patterns);
  std::vector<double> trie_sup = CountSupportsInRecords(records, patterns);
  std::vector<double> naive_sup = NaiveSupports(records, patterns);
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_NEAR(trie_match[i], naive_match[i], 1e-12)
        << patterns[i].ToString();
    EXPECT_DOUBLE_EQ(trie_sup[i], naive_sup[i]) << patterns[i].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TrieVsNaiveProperty,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace nmine
