#include "nmine/lattice/candidate_gen.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "nmine/lattice/pattern_set.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(CandidateGenTest, Level1) {
  std::vector<Pattern> c = Level1Candidates({0, 2, 4});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], P({0}));
  EXPECT_EQ(c[1], P({2}));
  EXPECT_EQ(c[2], P({4}));
}

TEST(CandidateGenTest, InSpaceChecksSpanAndGap) {
  PatternSpaceOptions opts;
  opts.max_span = 4;
  opts.max_gap = 1;
  EXPECT_TRUE(InSpace(P({0, 1, 2, 3}), opts));
  EXPECT_FALSE(InSpace(P({0, 1, 2, 3, 4}), opts));     // span 5
  EXPECT_TRUE(InSpace(P({0, -1, 1}), opts));           // gap 1
  EXPECT_FALSE(InSpace(P({0, -1, -1, 1}), opts));      // gap 2
}

TEST(CandidateGenTest, RightExtensionsContiguous) {
  PatternSpaceOptions opts;
  opts.max_span = 3;
  opts.max_gap = 0;
  std::vector<Pattern> ext = RightExtensions(P({0, 1}), {0, 1}, opts);
  ASSERT_EQ(ext.size(), 2u);
  EXPECT_EQ(ext[0], P({0, 1, 0}));
  EXPECT_EQ(ext[1], P({0, 1, 1}));
}

TEST(CandidateGenTest, RightExtensionsWithGaps) {
  PatternSpaceOptions opts;
  opts.max_span = 4;
  opts.max_gap = 2;
  std::vector<Pattern> ext = RightExtensions(P({0, 1}), {5}, opts);
  // gap 0 -> {0 1 5}; gap 1 -> {0 1 * 5}; gap 2 would need span 5 > 4.
  ASSERT_EQ(ext.size(), 2u);
  EXPECT_EQ(ext[0], P({0, 1, 5}));
  EXPECT_EQ(ext[1], P({0, 1, -1, 5}));
}

TEST(CandidateGenTest, RightExtensionsRespectMaxSpan) {
  PatternSpaceOptions opts;
  opts.max_span = 2;
  opts.max_gap = 3;
  EXPECT_TRUE(RightExtensions(P({0, 1}), {0, 1}, opts).empty());
}

TEST(CandidateGenTest, GeneratingPrefixInvertsExtension) {
  PatternSpaceOptions opts;
  opts.max_span = 8;
  opts.max_gap = 2;
  Pattern base = P({3, -1, 4, 5});
  for (const Pattern& ext : RightExtensions(base, {0, 7}, opts)) {
    EXPECT_EQ(GeneratingPrefix(ext), base) << ext.ToString();
  }
}

TEST(CandidateGenTest, GeneratingPrefixOfSingletonIsEmpty) {
  EXPECT_TRUE(GeneratingPrefix(P({3})).empty());
}

TEST(CandidateGenTest, NextLevelAprioriPrunes) {
  PatternSpaceOptions opts;
  opts.max_span = 3;
  opts.max_gap = 0;
  // Frequent 2-patterns: {0 1} and {1 2}. Candidate {0 1 2} needs {0 1},
  // {1 2}, and {0 * 2}; the latter is outside the contiguous space so it is
  // skipped, and the candidate survives.
  PatternSet frequent({P({0, 1}), P({1, 2})});
  std::vector<Pattern> next = NextLevelCandidates(
      {P({0, 1}), P({1, 2})}, {0, 1, 2}, opts,
      [&frequent](const Pattern& sub) { return frequent.Contains(sub); });
  EXPECT_NE(std::find(next.begin(), next.end(), P({0, 1, 2})), next.end());
  // {0 1 0} requires {1 0}, which is infrequent -> pruned.
  EXPECT_EQ(std::find(next.begin(), next.end(), P({0, 1, 0})), next.end());
}

TEST(CandidateGenTest, NextLevelChecksWildcardSubpatterns) {
  PatternSpaceOptions opts;
  opts.max_span = 3;
  opts.max_gap = 1;
  // In gapped mode {0 * 2} IS in the space, so candidate {0 1 2} is pruned
  // unless {0 * 2} is frequent too.
  PatternSet frequent({P({0, 1}), P({1, 2})});
  std::vector<Pattern> next = NextLevelCandidates(
      {P({0, 1})}, {2}, opts,
      [&frequent](const Pattern& sub) { return frequent.Contains(sub); });
  EXPECT_EQ(std::find(next.begin(), next.end(), P({0, 1, 2})), next.end());

  frequent.Insert(P({0, -1, 2}));
  next = NextLevelCandidates(
      {P({0, 1})}, {2}, opts,
      [&frequent](const Pattern& sub) { return frequent.Contains(sub); });
  EXPECT_NE(std::find(next.begin(), next.end(), P({0, 1, 2})), next.end());
}

TEST(CandidateGenTest, EveryCandidateGeneratedExactlyOnce) {
  PatternSpaceOptions opts;
  opts.max_span = 4;
  opts.max_gap = 1;
  std::vector<Pattern> level = {P({0, 1}), P({0, -1, 1}), P({1, 0}),
                                P({1, -1, 0})};
  std::vector<Pattern> next = NextLevelCandidates(
      level, {0, 1}, opts, [](const Pattern&) { return true; });
  PatternSet seen;
  for (const Pattern& p : next) {
    EXPECT_TRUE(seen.Insert(p)) << "duplicate " << p.ToString();
  }
}

}  // namespace
}  // namespace nmine
