#include "nmine/lattice/border.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(BorderTest, InsertKeepsMaximalOnly) {
  Border b;
  EXPECT_TRUE(b.Insert(P({0, 1, 2})));
  EXPECT_FALSE(b.Insert(P({0, 1})));  // subsumed
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.Insert(P({3, 4})));  // incomparable
  EXPECT_EQ(b.size(), 2u);
}

TEST(BorderTest, InsertEvictsSubsumedElements) {
  Border b;
  b.Insert(P({0, 1}));
  b.Insert(P({1, 2}));
  EXPECT_TRUE(b.Insert(P({0, 1, 2})));  // subsumes both
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.ContainsElement(P({0, 1, 2})));
}

TEST(BorderTest, CoversIsDownwardClosure) {
  Border b;
  b.Insert(P({0, 1, 2, 3}));
  EXPECT_TRUE(b.Covers(P({0, 1})));
  EXPECT_TRUE(b.Covers(P({1, -1, 3})));
  EXPECT_TRUE(b.Covers(P({0, 1, 2, 3})));  // itself
  EXPECT_FALSE(b.Covers(P({3, 0})));
  EXPECT_FALSE(b.Covers(P({0, 1, 2, 3, 4})));
}

TEST(BorderTest, PaperFigure3Border) {
  // "the border should consist of three patterns: d1d2d3, d1d2**d5,
  // and d1**d4" when those are the maximal frequent patterns.
  Border b;
  // Insert the whole frequent downset in arbitrary order.
  for (const Pattern& p :
       {P({0}), P({1}), P({2}), P({3}), P({4}), P({0, 1}), P({0, -1, 2}),
        P({1, 2}), P({0, -1, -1, 3}), P({0, 1, -1, -1, 4}), P({0, 1, 2}),
        P({1, -1, -1, 4})}) {
    b.Insert(p);
  }
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.ContainsElement(P({0, 1, 2})));
  EXPECT_TRUE(b.ContainsElement(P({0, 1, -1, -1, 4})));
  EXPECT_TRUE(b.ContainsElement(P({0, -1, -1, 3})));
}

TEST(BorderTest, Levels) {
  Border b;
  EXPECT_EQ(b.MaxLevel(), 0u);
  EXPECT_EQ(b.MinLevel(), 0u);
  b.Insert(P({0, 1, 2}));
  b.Insert(P({7}));
  EXPECT_EQ(b.MaxLevel(), 3u);
  EXPECT_EQ(b.MinLevel(), 1u);
}

TEST(BorderTest, ClearAndSortedExport) {
  Border b;
  b.Insert(P({5}));
  b.Insert(P({1, 2}));
  std::vector<Pattern> v = b.ToSortedVector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], P({5}));
  b.clear();
  EXPECT_TRUE(b.empty());
}

TEST(BorderTest, ReinsertingElementIsNoOp) {
  Border b;
  EXPECT_TRUE(b.Insert(P({0, 1})));
  EXPECT_FALSE(b.Insert(P({0, 1})));
  EXPECT_EQ(b.size(), 1u);
}

}  // namespace
}  // namespace nmine
