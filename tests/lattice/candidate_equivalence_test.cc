// Equivalence of the right-extension candidate generator with a
// first-principles definition: the level-(k+1) candidates are exactly the
// (k+1)-patterns of the space whose generating prefix is frequent and
// whose in-space immediate subpatterns all satisfy the predicate.
#include <algorithm>

#include <gtest/gtest.h>

#include "nmine/lattice/candidate_gen.h"
#include "nmine/lattice/pattern_set.h"
#include "nmine/stats/random.h"
#include "test_util.h"

namespace nmine {
namespace {

class CandidateEquivalenceProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CandidateEquivalenceProperty, MatchesFirstPrinciplesDefinition) {
  Rng rng(GetParam());
  const size_t m = 3;
  PatternSpaceOptions opts;
  opts.max_span = 4;
  opts.max_gap = GetParam() % 2;

  std::vector<Pattern> space = testutil::EnumeratePatterns(m, opts);

  // Pick a random "frequent" subset per level, downward-closed within the
  // space (drop patterns whose in-space immediate subpatterns were culled)
  // so the setup is Apriori-consistent.
  PatternSet frequent;
  std::vector<Pattern> ordered = space;
  std::sort(ordered.begin(), ordered.end(),
            [](const Pattern& a, const Pattern& b) {
              return a.NumSymbols() < b.NumSymbols();
            });
  for (const Pattern& p : ordered) {
    if (!rng.Bernoulli(0.7)) continue;
    bool closed = true;
    for (const Pattern& sub : p.ImmediateSubpatterns()) {
      if (InSpace(sub, opts) && !frequent.Contains(sub)) {
        closed = false;
        break;
      }
    }
    if (closed) frequent.Insert(p);
  }

  // Frequent symbols and per-level frequent lists.
  std::vector<SymbolId> symbols;
  for (size_t d = 0; d < m; ++d) {
    if (frequent.Contains(Pattern({static_cast<SymbolId>(d)}))) {
      symbols.push_back(static_cast<SymbolId>(d));
    }
  }

  for (size_t k = 1; k + 1 <= opts.max_span; ++k) {
    std::vector<Pattern> level_k;
    for (const Pattern& p : frequent) {
      if (p.NumSymbols() == k) level_k.push_back(p);
    }
    std::sort(level_k.begin(), level_k.end());
    std::vector<Pattern> generated = NextLevelCandidates(
        level_k, symbols, opts,
        [&frequent](const Pattern& sub) { return frequent.Contains(sub); });
    PatternSet generated_set(generated);

    // First principles: all (k+1)-patterns of the space whose generating
    // prefix is frequent, whose last symbol is a frequent symbol, and
    // whose in-space immediate subpatterns are all frequent.
    PatternSet expected;
    for (const Pattern& p : space) {
      if (p.NumSymbols() != k + 1) continue;
      if (!frequent.Contains(GeneratingPrefix(p))) continue;
      SymbolId last = p[p.length() - 1];
      if (std::find(symbols.begin(), symbols.end(), last) == symbols.end()) {
        continue;
      }
      bool ok = true;
      for (const Pattern& sub : p.ImmediateSubpatterns()) {
        if (InSpace(sub, opts) && !frequent.Contains(sub)) {
          ok = false;
          break;
        }
      }
      if (ok) expected.Insert(p);
    }

    EXPECT_EQ(generated_set.ToSortedVector(), expected.ToSortedVector())
        << "level " << k + 1 << " gap " << opts.max_gap;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, CandidateEquivalenceProperty,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace nmine
