#include "nmine/lattice/halfway.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "nmine/lattice/pattern_set.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(HalfwayTest, PaperFigure6Example) {
  // Section 4.3: with d1 on FQT and d1d2d3d4d5 on INFQT, "the patterns
  // d1d2d3, d1d2*d4, d1d2**d5, d1*d3d4, d1*d3*d5, and d1**d4d5 are
  // ambiguous patterns on the halfway layer".
  std::vector<Pattern> half =
      HalfwayPatterns(P({0}), P({0, 1, 2, 3, 4}), /*contiguous=*/false,
                      /*cap=*/1000);
  PatternSet set(half);
  EXPECT_EQ(set.size(), 6u);
  EXPECT_TRUE(set.Contains(P({0, 1, 2})));
  EXPECT_TRUE(set.Contains(P({0, 1, -1, 3})));
  EXPECT_TRUE(set.Contains(P({0, 1, -1, -1, 4})));
  EXPECT_TRUE(set.Contains(P({0, -1, 2, 3})));
  EXPECT_TRUE(set.Contains(P({0, -1, 2, -1, 4})));
  EXPECT_TRUE(set.Contains(P({0, -1, -1, 3, 4})));
}

TEST(HalfwayTest, TargetLevelIsCeilOfMidpoint) {
  // k1 = 1, k2 = 5 -> i = 3; k1 = 1, k2 = 4 -> i = ceil(2.5) = 3.
  std::vector<Pattern> half =
      HalfwayPatterns(P({0}), P({0, 1, 2, 3}), false, 1000);
  ASSERT_FALSE(half.empty());
  for (const Pattern& p : half) {
    EXPECT_EQ(p.NumSymbols(), 3u);
  }
}

TEST(HalfwayTest, ResultsAreStrictlyBetweenParents) {
  Pattern lo = P({2, 3});
  Pattern hi = P({1, 2, 3, 4, 5, 6});
  for (const Pattern& p : HalfwayPatterns(lo, hi, false, 1000)) {
    EXPECT_TRUE(lo.IsSubpatternOf(p)) << p.ToString();
    EXPECT_TRUE(p.IsSubpatternOf(hi)) << p.ToString();
    EXPECT_GT(p.NumSymbols(), lo.NumSymbols());
    EXPECT_LT(p.NumSymbols(), hi.NumSymbols());
  }
}

TEST(HalfwayTest, ContiguousModeProducesSubstrings) {
  std::vector<Pattern> half =
      HalfwayPatterns(P({1, 2}), P({0, 1, 2, 3, 4}), /*contiguous=*/true,
                      1000);
  // target = ceil((2+5)/2) = 4; substrings of length 4 containing "1 2":
  // {0 1 2 3} and {1 2 3 4}.
  PatternSet set(half);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(P({0, 1, 2, 3})));
  EXPECT_TRUE(set.Contains(P({1, 2, 3, 4})));
}

TEST(HalfwayTest, CapLimitsOutput) {
  std::vector<Pattern> half =
      HalfwayPatterns(P({0}), P({0, 1, 2, 3, 4, 5, 6, 7}), false, 3);
  EXPECT_EQ(half.size(), 3u);
}

TEST(HalfwayTest, WildcardParentPatterns) {
  // Parents may themselves contain wildcards.
  Pattern lo = P({0, -1, 2});
  Pattern hi = P({0, 1, 2, 3, 4});
  for (const Pattern& p : HalfwayPatterns(lo, hi, false, 1000)) {
    EXPECT_TRUE(lo.IsSubpatternOf(p)) << p.ToString();
    EXPECT_TRUE(p.IsSubpatternOf(hi)) << p.ToString();
    EXPECT_EQ(p.NumSymbols(), 4u);  // ceil((2+5)/2)
  }
}

TEST(HalfwayTest, MultipleEmbeddingsDeduplicate) {
  // p1 embeds into p2 at two offsets; results must still be unique.
  std::vector<Pattern> half =
      HalfwayPatterns(P({1}), P({1, 0, 1, 0}), false, 1000);
  PatternSet seen;
  for (const Pattern& p : half) {
    EXPECT_TRUE(seen.Insert(p)) << "duplicate " << p.ToString();
  }
}

TEST(BisectionOrderTest, DocumentedExample) {
  EXPECT_EQ(BisectionOrder(1, 9),
            (std::vector<size_t>{5, 3, 8, 2, 4, 7, 9, 1, 6}));
}

TEST(BisectionOrderTest, CoversEveryLevelExactlyOnce) {
  std::vector<size_t> order = BisectionOrder(3, 17);
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<size_t> expected;
  for (size_t i = 3; i <= 17; ++i) expected.push_back(i);
  EXPECT_EQ(sorted, expected);
}

TEST(BisectionOrderTest, SingletonAndEmpty) {
  EXPECT_EQ(BisectionOrder(4, 4), std::vector<size_t>{4});
  EXPECT_TRUE(BisectionOrder(5, 4).empty());
}

TEST(BisectionOrderTest, FirstElementIsMidpoint) {
  EXPECT_EQ(BisectionOrder(10, 20).front(), 15u);
  EXPECT_EQ(BisectionOrder(1, 2).front(), 2u);  // ceil
}

}  // namespace
}  // namespace nmine
