#include "nmine/gen/sequence_generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nmine/core/match.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(SequenceGeneratorTest, RandomSequenceShapeAndRange) {
  Rng rng(1);
  Sequence s = RandomSequence(100, 7, &rng);
  EXPECT_EQ(s.size(), 100u);
  for (SymbolId sym : s) {
    EXPECT_GE(sym, 0);
    EXPECT_LT(sym, 7);
  }
}

TEST(SequenceGeneratorTest, RandomSequenceIsRoughlyUniform) {
  Rng rng(2);
  std::vector<int> counts(4, 0);
  Sequence s = RandomSequence(8000, 4, &rng);
  for (SymbolId sym : s) ++counts[static_cast<size_t>(sym)];
  for (int c : counts) {
    EXPECT_NEAR(c, 2000, 5 * std::sqrt(8000 * 0.25 * 0.75));
  }
}

TEST(SequenceGeneratorTest, RandomPatternShape) {
  Rng rng(3);
  Pattern contiguous = RandomPattern(5, 0, 9, &rng);
  EXPECT_EQ(contiguous.NumSymbols(), 5u);
  EXPECT_EQ(contiguous.length(), 5u);

  Pattern gapped = RandomPattern(4, 2, 9, &rng);
  EXPECT_EQ(gapped.NumSymbols(), 4u);
  EXPECT_GE(gapped.length(), 4u);
  EXPECT_LE(gapped.length(), 4u + 3u * 2u);
}

TEST(SequenceGeneratorTest, PlantPatternOverwritesNonWildcardOnly) {
  Sequence s = {9, 9, 9, 9, 9};
  PlantPattern(P({0, -1, 2}), 1, &s);
  EXPECT_EQ(s, (Sequence{9, 0, 9, 2, 9}));
}

TEST(SequenceGeneratorTest, PlantedPatternIsFoundBySupport) {
  Rng rng(4);
  GeneratorConfig config;
  config.num_sequences = 200;
  config.min_length = 30;
  config.max_length = 40;
  config.alphabet_size = 20;
  config.planted = {P({1, 2, 3, 4, 5, 6})};
  config.plant_probability = 0.5;
  InMemorySequenceDatabase db = GenerateDatabase(config, &rng);
  double hits = 0;
  db.Scan([&](const SequenceRecord& r) {
    hits += SequenceSupport(config.planted[0], r.symbols);
  });
  double support = hits / static_cast<double>(db.NumSequences());
  // Planted at 0.5 plus (negligible) background occurrences.
  EXPECT_NEAR(support, 0.5, 0.12);
}

TEST(SequenceGeneratorTest, LengthBoundsRespected) {
  Rng rng(5);
  GeneratorConfig config;
  config.num_sequences = 50;
  config.min_length = 10;
  config.max_length = 12;
  config.alphabet_size = 4;
  InMemorySequenceDatabase db = GenerateDatabase(config, &rng);
  db.Scan([](const SequenceRecord& r) {
    EXPECT_GE(r.symbols.size(), 10u);
    EXPECT_LE(r.symbols.size(), 12u);
  });
}

TEST(SequenceGeneratorTest, DeterministicGivenSeed) {
  GeneratorConfig config;
  config.num_sequences = 10;
  config.alphabet_size = 5;
  Rng a(6);
  Rng b(6);
  InMemorySequenceDatabase da = GenerateDatabase(config, &a);
  InMemorySequenceDatabase dbb = GenerateDatabase(config, &b);
  for (size_t i = 0; i < da.records().size(); ++i) {
    EXPECT_EQ(da.records()[i].symbols, dbb.records()[i].symbols);
  }
}

}  // namespace
}  // namespace nmine
