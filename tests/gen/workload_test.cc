#include "nmine/gen/workload.h"

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(WorkloadTest, StandardDatabaseIsDeterministic) {
  WorkloadSpec spec;
  spec.num_sequences = 30;
  spec.seed = 9;
  std::vector<Pattern> p1;
  std::vector<Pattern> p2;
  InMemorySequenceDatabase a = MakeStandardDatabase(spec, &p1);
  InMemorySequenceDatabase b = MakeStandardDatabase(spec, &p2);
  EXPECT_EQ(p1, p2);
  ASSERT_EQ(a.NumSequences(), b.NumSequences());
  for (size_t i = 0; i < a.records().size(); ++i) {
    EXPECT_EQ(a.records()[i].symbols, b.records()[i].symbols);
  }
}

TEST(WorkloadTest, StandardDatabaseSharedAcrossAlphas) {
  WorkloadSpec spec;
  spec.num_sequences = 25;
  spec.seed = 10;
  NoisyWorkload w1 = MakeUniformNoiseWorkload(spec, 0.1);
  NoisyWorkload w2 = MakeUniformNoiseWorkload(spec, 0.4);
  for (size_t i = 0; i < w1.standard.records().size(); ++i) {
    EXPECT_EQ(w1.standard.records()[i].symbols,
              w2.standard.records()[i].symbols);
  }
}

TEST(WorkloadTest, AlphaZeroTestEqualsStandard) {
  WorkloadSpec spec;
  spec.num_sequences = 15;
  NoisyWorkload w = MakeUniformNoiseWorkload(spec, 0.0);
  for (size_t i = 0; i < w.standard.records().size(); ++i) {
    EXPECT_EQ(w.standard.records()[i].symbols, w.test.records()[i].symbols);
  }
  EXPECT_TRUE(w.matrix.IsIdentity());
}

TEST(WorkloadTest, MatrixMatchesChannel) {
  WorkloadSpec spec;
  spec.alphabet_size = 10;
  NoisyWorkload w = MakeUniformNoiseWorkload(spec, 0.3);
  EXPECT_DOUBLE_EQ(w.matrix(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(w.matrix(1, 0), 0.3 / 9.0);
  EXPECT_TRUE(w.matrix.Validate().ok);
}

TEST(WorkloadTest, PlantedPatternsHaveRequestedShape) {
  WorkloadSpec spec;
  spec.num_planted = 5;
  spec.planted_symbols_min = 4;
  spec.planted_symbols_max = 6;
  spec.planted_max_gap = 0;
  std::vector<Pattern> planted;
  MakeStandardDatabase(spec, &planted);
  ASSERT_EQ(planted.size(), 5u);
  for (const Pattern& p : planted) {
    EXPECT_GE(p.NumSymbols(), 4u);
    EXPECT_LE(p.NumSymbols(), 6u);
    EXPECT_EQ(p.length(), p.NumSymbols());  // contiguous
  }
}

}  // namespace
}  // namespace nmine
