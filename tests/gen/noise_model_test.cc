#include "nmine/gen/noise_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nmine/gen/sequence_generator.h"

namespace nmine {
namespace {

TEST(UniformNoiseTest, PreservesLength) {
  Rng rng(1);
  Sequence s = RandomSequence(500, 6, &rng);
  Sequence noisy = ApplyUniformNoise(s, 0.3, 6, &rng);
  EXPECT_EQ(noisy.size(), s.size());
}

TEST(UniformNoiseTest, AlphaZeroIsIdentity) {
  Rng rng(2);
  Sequence s = RandomSequence(100, 6, &rng);
  EXPECT_EQ(ApplyUniformNoise(s, 0.0, 6, &rng), s);
}

TEST(UniformNoiseTest, SubstitutionRateIsAlpha) {
  Rng rng(3);
  const size_t n = 20000;
  Sequence s(n, 2);  // all the same symbol
  Sequence noisy = ApplyUniformNoise(s, 0.25, 10, &rng);
  size_t changed = 0;
  for (size_t i = 0; i < n; ++i) {
    if (noisy[i] != s[i]) ++changed;
  }
  EXPECT_NEAR(static_cast<double>(changed) / n, 0.25,
              5 * std::sqrt(0.25 * 0.75 / n));
}

TEST(UniformNoiseTest, SubstitutionsNeverKeepTheSymbol) {
  // The channel draws a *different* symbol: the observed rate of change
  // equals alpha exactly, not alpha * (m-1)/m.
  Rng rng(4);
  Sequence s(5000, 0);
  Sequence noisy = ApplyUniformNoise(s, 1.0, 4, &rng);
  for (SymbolId sym : noisy) {
    EXPECT_NE(sym, 0);
    EXPECT_GE(sym, 1);
    EXPECT_LT(sym, 4);
  }
}

TEST(UniformNoiseTest, DatabaseVariantKeepsIdsAndCount) {
  Rng rng(5);
  InMemorySequenceDatabase db = InMemorySequenceDatabase::FromSequences(
      {{0, 1, 2}, {3, 4}, {5, 5, 5, 5}});
  InMemorySequenceDatabase noisy = ApplyUniformNoise(db, 0.5, 6, &rng);
  ASSERT_EQ(noisy.NumSequences(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(noisy.records()[i].id, db.records()[i].id);
    EXPECT_EQ(noisy.records()[i].symbols.size(),
              db.records()[i].symbols.size());
  }
}

TEST(EmissionModelTest, EmitFollowsRowDistribution) {
  EmissionModel model({{0.0, 1.0}, {0.5, 0.5}});
  Rng rng(6);
  // True symbol 0 always emits 1.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(model.Emit(0, &rng), 1);
  }
  // True symbol 1 emits both with equal rate.
  int ones = 0;
  const int reps = 10000;
  for (int i = 0; i < reps; ++i) {
    ones += model.Emit(1, &rng);
  }
  EXPECT_NEAR(ones, reps / 2, 5 * std::sqrt(reps * 0.25));
}

TEST(EmissionModelTest, ProbabilityAccessor) {
  EmissionModel model({{0.9, 0.1}, {0.2, 0.8}});
  EXPECT_DOUBLE_EQ(model.Probability(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(model.Probability(1, 0), 0.2);
  EXPECT_EQ(model.size(), 2u);
}

TEST(EmissionModelTest, ApplyPreservesShape) {
  EmissionModel model({{1.0, 0.0}, {0.0, 1.0}});  // identity channel
  Rng rng(7);
  Sequence s = {0, 1, 1, 0};
  EXPECT_EQ(model.Apply(s, &rng), s);
  InMemorySequenceDatabase db =
      InMemorySequenceDatabase::FromSequences({{0, 1}, {1}});
  InMemorySequenceDatabase out = model.Apply(db, &rng);
  EXPECT_EQ(out.records()[0].symbols, (Sequence{0, 1}));
  EXPECT_EQ(out.records()[1].symbols, (Sequence{1}));
}

}  // namespace
}  // namespace nmine
