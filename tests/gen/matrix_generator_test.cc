#include "nmine/gen/matrix_generator.h"

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(UniformNoiseMatrixTest, Section51Construction) {
  // C(d_i, d_j) = 1 - alpha if i == j, alpha / (m - 1) otherwise.
  CompatibilityMatrix c = UniformNoiseMatrix(20, 0.2);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.8);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.2 / 19.0);
  EXPECT_TRUE(c.Validate().ok);
}

TEST(UniformNoiseMatrixTest, AlphaZeroIsIdentity) {
  EXPECT_TRUE(UniformNoiseMatrix(5, 0.0).IsIdentity());
}

TEST(UniformNoiseMatrixTest, TotalNoiseIsUniform) {
  // "all entries ... would have the same value 1/m" in the extreme case:
  // alpha = (m-1)/m makes every entry 1/m.
  const size_t m = 4;
  CompatibilityMatrix c = UniformNoiseMatrix(m, 3.0 / 4.0);
  for (SymbolId i = 0; i < 4; ++i) {
    for (SymbolId j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), 0.25, 1e-12);
    }
  }
}

TEST(SparseRandomMatrixTest, ColumnsAreStochastic) {
  Rng rng(1);
  CompatibilityMatrix c = SparseRandomMatrix(50, 0.1, 0.8, &rng);
  EXPECT_TRUE(c.Validate().ok) << c.Validate().message;
}

TEST(SparseRandomMatrixTest, IsActuallySparse) {
  // Section 5.7: "a symbol is compatible to around 10% of other symbols".
  Rng rng(2);
  CompatibilityMatrix c = SparseRandomMatrix(100, 0.1, 0.8, &rng);
  // Each column: 1 diagonal + 10 compat entries = 11 of 100 non-zero.
  EXPECT_NEAR(c.Sparsity(), 0.89, 0.02);
}

TEST(SparseRandomMatrixTest, DiagonalDominates) {
  Rng rng(3);
  CompatibilityMatrix c = SparseRandomMatrix(30, 0.1, 0.75, &rng);
  for (SymbolId j = 0; j < 30; ++j) {
    EXPECT_DOUBLE_EQ(c(j, j), 0.75);
  }
}

TEST(PerturbDiagonalTest, ColumnsStayStochastic) {
  Rng rng(4);
  CompatibilityMatrix c = UniformNoiseMatrix(20, 0.2);
  CompatibilityMatrix e = PerturbDiagonal(c, 0.10, &rng);
  EXPECT_TRUE(e.Validate().ok) << e.Validate().message;
}

TEST(PerturbDiagonalTest, DiagonalMovesByErrorFraction) {
  Rng rng(5);
  CompatibilityMatrix c = UniformNoiseMatrix(10, 0.3);  // diagonal 0.7
  CompatibilityMatrix e = PerturbDiagonal(c, 0.10, &rng);
  for (SymbolId j = 0; j < 10; ++j) {
    double d = e(j, j);
    EXPECT_TRUE(std::abs(d - 0.63) < 1e-9 || std::abs(d - 0.77) < 1e-9)
        << "column " << j << " diagonal " << d;
  }
}

TEST(PerturbDiagonalTest, ZeroErrorIsIdentityTransform) {
  Rng rng(6);
  CompatibilityMatrix c = UniformNoiseMatrix(8, 0.25);
  CompatibilityMatrix e = PerturbDiagonal(c, 0.0, &rng);
  for (SymbolId i = 0; i < 8; ++i) {
    for (SymbolId j = 0; j < 8; ++j) {
      EXPECT_NEAR(e(i, j), c(i, j), 1e-12);
    }
  }
}

TEST(PerturbDiagonalTest, IdentityMatrixIsUnchanged) {
  // Diagonal 1 has no off-diagonal mass to renormalize against.
  Rng rng(7);
  CompatibilityMatrix e =
      PerturbDiagonal(CompatibilityMatrix::Identity(5), 0.2, &rng);
  EXPECT_TRUE(e.IsIdentity());
}

TEST(PosteriorFromEmissionTest, BayesInversion) {
  // Emission: true 0 -> obs {0: 0.9, 1: 0.1}; true 1 -> {0: 0.2, 1: 0.8}.
  // Uniform priors. P(true=0 | obs=0) = 0.9 / (0.9 + 0.2).
  CompatibilityMatrix c =
      PosteriorFromEmission({{0.9, 0.1}, {0.2, 0.8}}, {1.0, 1.0});
  EXPECT_NEAR(c(0, 0), 0.9 / 1.1, 1e-12);
  EXPECT_NEAR(c(1, 0), 0.2 / 1.1, 1e-12);
  EXPECT_NEAR(c(0, 1), 0.1 / 0.9, 1e-12);
  EXPECT_TRUE(c.Validate().ok);
}

TEST(PosteriorFromEmissionTest, PriorsShiftPosterior) {
  CompatibilityMatrix c =
      PosteriorFromEmission({{0.5, 0.5}, {0.5, 0.5}}, {3.0, 1.0});
  EXPECT_NEAR(c(0, 0), 0.75, 1e-12);
  EXPECT_NEAR(c(1, 0), 0.25, 1e-12);
}

}  // namespace
}  // namespace nmine
