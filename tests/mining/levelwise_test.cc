#include "nmine/mining/levelwise_miner.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::P;

MinerOptions SmallOptions(double threshold) {
  MinerOptions o;
  o.min_threshold = threshold;
  o.space.max_span = 4;
  o.space.max_gap = 1;
  return o;
}

TEST(LevelwiseMinerTest, MatchMiningOnPaperExample) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kMatch, SmallOptions(0.3));
  MiningResult r = miner.Mine(db, Figure2Matrix());
  // Symbols above 0.3: d1 (0.7), d2 (0.8), d3 (0.3875), d4 (0.425).
  EXPECT_TRUE(r.frequent.Contains(P({0})));
  EXPECT_TRUE(r.frequent.Contains(P({1})));
  EXPECT_TRUE(r.frequent.Contains(P({2})));
  EXPECT_TRUE(r.frequent.Contains(P({3})));
  EXPECT_FALSE(r.frequent.Contains(P({4})));  // d5: 0.075
  // 2-patterns above 0.3 (Figure 4(c)): d2d1 (0.391) and d4d2 (0.321).
  EXPECT_TRUE(r.frequent.Contains(P({1, 0})));
  EXPECT_TRUE(r.frequent.Contains(P({3, 1})));
  EXPECT_FALSE(r.frequent.Contains(P({0, 1})));  // 0.2025
  EXPECT_NEAR(r.values[P({1, 0})], 0.39125, 1e-12);
}

TEST(LevelwiseMinerTest, SupportMiningOnPaperExample) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kSupport, SmallOptions(0.5));
  MiningResult r = miner.Mine(db, Figure2Matrix());
  // Supports >= 0.5: d1, d2, d3, d4, d2d1, d4d2, and longer chains
  // d4d2d1 (S2+S3 = 0.5) and d3*d2d1? (S1: d3 at 2, then d1... window
  // d3 d1 -> no; S3: d3 d4 d2 d1 gives d3*d2? d3 * d2 occurs in S3 only)
  EXPECT_TRUE(r.frequent.Contains(P({1, 0})));
  EXPECT_TRUE(r.frequent.Contains(P({3, 1})));
  EXPECT_TRUE(r.frequent.Contains(P({3, 1, 0})));
  EXPECT_TRUE(r.frequent.Contains(P({3, -1, 0})));
  EXPECT_FALSE(r.frequent.Contains(P({4})));
  EXPECT_NEAR(r.values[P({3, 1, 0})], 0.5, 1e-12);
}

TEST(LevelwiseMinerTest, SupportEqualsIdentityMatch) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner support_miner(Metric::kSupport, SmallOptions(0.4));
  LevelwiseMiner match_miner(Metric::kMatch, SmallOptions(0.4));
  MiningResult rs = support_miner.Mine(db, Figure2Matrix());
  MiningResult rm = match_miner.Mine(db, CompatibilityMatrix::Identity(5));
  EXPECT_EQ(rs.frequent.ToSortedVector(), rm.frequent.ToSortedVector());
}

TEST(LevelwiseMinerTest, OneScanPerLevel) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kMatch, SmallOptions(0.3));
  MiningResult r = miner.Mine(db, Figure2Matrix());
  EXPECT_EQ(static_cast<size_t>(r.scans), r.level_stats.size());
  EXPECT_GE(r.scans, 2);
}

TEST(LevelwiseMinerTest, LevelStatsAreConsistent) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kMatch, SmallOptions(0.25));
  MiningResult r = miner.Mine(db, Figure2Matrix());
  size_t total_frequent = 0;
  for (const LevelStats& s : r.level_stats) {
    EXPECT_LE(s.num_frequent, s.num_candidates);
    total_frequent += s.num_frequent;
  }
  EXPECT_EQ(total_frequent, r.frequent.size());
  EXPECT_EQ(r.level_stats[0].num_candidates, 5u);  // all symbols
}

TEST(LevelwiseMinerTest, AprioriHoldsOnOutput) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kMatch, SmallOptions(0.2));
  MiningResult r = miner.Mine(db, Figure2Matrix());
  for (const Pattern& p : r.frequent) {
    for (const Pattern& sub : p.ImmediateSubpatterns()) {
      if (!InSpace(sub, SmallOptions(0.2).space)) continue;
      EXPECT_TRUE(r.frequent.Contains(sub))
          << sub.ToString() << " missing under " << p.ToString();
    }
  }
}

TEST(LevelwiseMinerTest, BorderIsMaximalFrequent) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kMatch, SmallOptions(0.3));
  MiningResult r = miner.Mine(db, Figure2Matrix());
  for (const Pattern& p : r.frequent) {
    EXPECT_TRUE(r.border.Covers(p)) << p.ToString();
  }
  for (const Pattern& e : r.border.elements()) {
    EXPECT_TRUE(r.frequent.Contains(e));
  }
}

TEST(LevelwiseMinerTest, MaxLevelCapStopsEarly) {
  InMemorySequenceDatabase db = Figure4Database();
  MinerOptions o = SmallOptions(0.1);
  o.max_level = 1;
  LevelwiseMiner miner(Metric::kMatch, o);
  MiningResult r = miner.Mine(db, Figure2Matrix());
  EXPECT_EQ(r.level_stats.size(), 1u);
  EXPECT_EQ(r.border.MaxLevel(), 1u);
}

TEST(LevelwiseMinerTest, ThresholdAboveEverythingYieldsEmpty) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kMatch, SmallOptions(0.99));
  MiningResult r = miner.Mine(db, Figure2Matrix());
  EXPECT_TRUE(r.frequent.empty());
  EXPECT_TRUE(r.border.empty());
  EXPECT_EQ(r.scans, 1);  // the level-1 scan
}

TEST(LevelwiseMinerTest, MineRecordsMatchesMine) {
  InMemorySequenceDatabase db = Figure4Database();
  LevelwiseMiner miner(Metric::kMatch, SmallOptions(0.3));
  MiningResult a = miner.Mine(db, Figure2Matrix());
  MiningResult b = miner.MineRecords(db.records(), Figure2Matrix());
  EXPECT_EQ(a.frequent.ToSortedVector(), b.frequent.ToSortedVector());
}

}  // namespace
}  // namespace nmine
