// Integration: the miners run unchanged on a disk-resident database and
// produce bit-identical results to the in-memory backend, with the same
// scan accounting.
#include <cstdio>

#include <gtest/gtest.h>

#include "nmine/db/disk_database.h"
#include "nmine/db/format.h"
#include "nmine/gen/workload.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

class DiskMiningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec spec;
    spec.num_sequences = 80;
    spec.min_length = 20;
    spec.max_length = 40;
    spec.num_planted = 2;
    spec.planted_symbols_min = 4;
    spec.planted_symbols_max = 6;
    spec.seed = 77;
    workload_ = MakeUniformNoiseWorkload(spec, 0.1);

    // Unique per test: under `ctest -j` sibling tests run concurrently in
    // separate processes, and a shared path lets one test's TearDown
    // delete the file another is still scanning.
    path_ =
        std::string(::testing::TempDir()) + "/disk_mining_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".nmsq";
    ASSERT_TRUE(
        dbformat::WriteDatabaseFile(path_, workload_.test.records()).ok);
    Status error;
    disk_ = DiskSequenceDatabase::Open(path_, &error);
    ASSERT_NE(disk_, nullptr) << error.ToString();
  }

  void TearDown() override { std::remove(path_.c_str()); }

  MinerOptions Options() const {
    MinerOptions o;
    o.min_threshold = 0.25;
    o.space.max_span = 6;
    o.sample_size = 80;
    o.delta = 0.05;
    o.seed = 3;
    return o;
  }

  NoisyWorkload workload_;
  std::string path_;
  std::unique_ptr<DiskSequenceDatabase> disk_;
};

TEST_F(DiskMiningTest, LevelwiseMatchesInMemory) {
  LevelwiseMiner miner(Metric::kMatch, Options());
  MiningResult mem = miner.Mine(workload_.test, workload_.matrix);
  MiningResult disk = miner.Mine(*disk_, workload_.matrix);
  EXPECT_EQ(mem.frequent.ToSortedVector(), disk.frequent.ToSortedVector());
  EXPECT_EQ(mem.scans, disk.scans);
}

TEST_F(DiskMiningTest, BorderCollapseMatchesInMemory) {
  BorderCollapseMiner miner(Metric::kMatch, Options());
  MiningResult mem = miner.Mine(workload_.test, workload_.matrix);
  MiningResult disk = miner.Mine(*disk_, workload_.matrix);
  EXPECT_EQ(mem.frequent.ToSortedVector(), disk.frequent.ToSortedVector());
  EXPECT_EQ(mem.border.ToSortedVector(), disk.border.ToSortedVector());
  EXPECT_EQ(mem.scans, disk.scans);
}

TEST_F(DiskMiningTest, SupportModelOnDisk) {
  LevelwiseMiner miner(Metric::kSupport, Options());
  CompatibilityMatrix id = CompatibilityMatrix::Identity(20);
  MiningResult mem = miner.Mine(workload_.test, id);
  MiningResult disk = miner.Mine(*disk_, id);
  EXPECT_EQ(mem.frequent.ToSortedVector(), disk.frequent.ToSortedVector());
}

}  // namespace
}  // namespace nmine
