// Tests for LevelwiseMiner::MineWithThreshold (per-pattern thresholds),
// the calibrated-mining workflow, and the candidate-cap guardrail.
#include <gtest/gtest.h>

#include "nmine/eval/calibration.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/levelwise_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::P;

TEST(MineWithThresholdTest, ConstantThresholdMatchesMine) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o;
  o.min_threshold = 0.3;
  o.space.max_span = 4;
  o.space.max_gap = 1;
  LevelwiseMiner miner(Metric::kMatch, o);
  MiningResult plain = miner.Mine(db, c);
  db.ResetScanCount();
  MiningResult fn = miner.MineWithThreshold(
      db, c, [](const Pattern&) { return 0.3; });
  EXPECT_EQ(plain.frequent.ToSortedVector(), fn.frequent.ToSortedVector());
  EXPECT_EQ(plain.scans, fn.scans);
}

TEST(MineWithThresholdTest, PerPatternThresholdIsApplied) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o;
  o.min_threshold = 0.3;  // ignored by MineWithThreshold
  o.space.max_span = 2;
  LevelwiseMiner miner(Metric::kMatch, o);
  // Demand 0.5 from 1-patterns but only 0.2 from longer ones:
  // d4 (match 0.425) fails level 1... but then its extensions are never
  // generated — demonstrating the Apriori coupling of threshold functions.
  MiningResult r = miner.MineWithThreshold(
      db, c, [](const Pattern& p) {
        return p.NumSymbols() == 1 ? 0.5 : 0.2;
      });
  EXPECT_FALSE(r.frequent.Contains(P({3})));
  EXPECT_FALSE(r.frequent.Contains(P({3, 1})));  // pruned with its prefix
  EXPECT_TRUE(r.frequent.Contains(P({1})));      // 0.8 >= 0.5
  EXPECT_TRUE(r.frequent.Contains(P({1, 0})));   // 0.391 >= 0.2
}

TEST(CalibratedMiningTest, RecoversPlantedPatternUnderConcentratedNoise) {
  // Two interchangeable siblings per symbol pair; the support model loses
  // the planted 4-pattern, calibrated match keeps it (the clickstream
  // scenario in miniature).
  const size_t m = 8;
  std::vector<std::vector<double>> emission(m, std::vector<double>(m, 0.0));
  for (size_t i = 0; i < m; ++i) emission[i][i] = 0.7;
  for (size_t k = 0; k < m / 2; ++k) {
    emission[2 * k][2 * k + 1] = 0.3;
    emission[2 * k + 1][2 * k] = 0.3;
  }
  EmissionModel channel(emission);
  CompatibilityMatrix compat =
      PosteriorFromEmission(emission, std::vector<double>(m, 1.0));

  Rng rng(5);
  GeneratorConfig config;
  config.num_sequences = 300;
  config.min_length = 20;
  config.max_length = 30;
  config.alphabet_size = m;
  Pattern habit = P({0, 2, 4, 6});
  config.planted = {habit};
  config.plant_probability = 0.6;
  InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
  InMemorySequenceDatabase observed = channel.Apply(standard, &rng);

  MinerOptions o;
  o.min_threshold = 0.35;
  o.space.max_span = 4;
  o.max_level = 4;

  LevelwiseMiner support_miner(Metric::kSupport, o);
  MiningResult support =
      support_miner.Mine(observed, CompatibilityMatrix::Identity(m));
  // Exact occurrences survive with probability 0.7^4 = 0.24: concealed.
  EXPECT_FALSE(support.frequent.Contains(habit));

  MatchCalibration cal(compat);
  LevelwiseMiner match_miner(Metric::kMatch, o);
  MiningResult match = match_miner.MineWithThreshold(
      observed, compat,
      [&cal](const Pattern& p) { return cal.ThresholdFor(p, 0.35); });
  EXPECT_TRUE(match.frequent.Contains(habit));
}

TEST(TruncationGuardTest, CapBoundsCandidatesAndSetsFlag) {
  // Threshold 0 makes every pattern frequent; without the cap the level-3
  // candidate set would have 5^3 = 125 patterns.
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o;
  o.min_threshold = 0.0;
  o.space.max_span = 3;
  o.max_candidates_per_level = 10;
  LevelwiseMiner miner(Metric::kMatch, o);
  MiningResult r = miner.Mine(db, c);
  EXPECT_TRUE(r.truncated);
  for (const LevelStats& s : r.level_stats) {
    if (s.level >= 2) {
      EXPECT_LE(s.num_candidates, 10u);
    }
  }
}

TEST(TruncationGuardTest, GenerousCapDoesNotTruncate) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o;
  o.min_threshold = 0.3;
  o.space.max_span = 4;
  LevelwiseMiner miner(Metric::kMatch, o);
  EXPECT_FALSE(miner.Mine(db, c).truncated);
}

}  // namespace
}  // namespace nmine
