#include "nmine/mining/depth_first_miner.h"

#include <gtest/gtest.h>

#include "nmine/gen/sequence_generator.h"
#include "nmine/gen/workload.h"
#include "nmine/mining/levelwise_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::P;

MinerOptions Options(double threshold, size_t span, size_t gap) {
  MinerOptions o;
  o.min_threshold = threshold;
  o.space.max_span = span;
  o.space.max_gap = gap;
  return o;
}

TEST(DepthFirstMinerTest, MatchesLevelwiseOnPaperExample) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = Options(0.3, 4, 1);
  DepthFirstMiner dfs(Metric::kMatch, o);
  LevelwiseMiner oracle(Metric::kMatch, o);
  MiningResult got = dfs.Mine(db, c);
  MiningResult want = oracle.Mine(db, c);
  EXPECT_EQ(got.frequent.ToSortedVector(), want.frequent.ToSortedVector());
  EXPECT_EQ(got.border.ToSortedVector(), want.border.ToSortedVector());
}

TEST(DepthFirstMinerTest, ValuesAreExact) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  DepthFirstMiner dfs(Metric::kMatch, Options(0.3, 4, 1));
  MiningResult r = dfs.Mine(db, c);
  ASSERT_TRUE(r.frequent.Contains(P({1, 0})));
  EXPECT_NEAR(r.values[P({1, 0})], 0.39125, 1e-12);
  EXPECT_NEAR(r.values[P({1})], 0.8, 1e-12);
}

TEST(DepthFirstMinerTest, UsesExactlyOneScan) {
  // The headline property: depth-first projection mining is
  // memory-resident — one pass loads the data, everything else is
  // incremental.
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  DepthFirstMiner dfs(Metric::kMatch, Options(0.3, 4, 1));
  MiningResult r = dfs.Mine(db, c);
  EXPECT_EQ(r.scans, 1);
}

TEST(DepthFirstMinerTest, SupportMetric) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix id = CompatibilityMatrix::Identity(5);
  MinerOptions o = Options(0.5, 4, 1);
  DepthFirstMiner dfs(Metric::kSupport, o);
  LevelwiseMiner oracle(Metric::kSupport, o);
  EXPECT_EQ(dfs.Mine(db, id).frequent.ToSortedVector(),
            oracle.Mine(db, id).frequent.ToSortedVector());
}

TEST(DepthFirstMinerTest, MaxLevelCap) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = Options(0.2, 4, 1);
  o.max_level = 1;
  DepthFirstMiner dfs(Metric::kMatch, o);
  MiningResult r = dfs.Mine(db, c);
  for (const Pattern& p : r.frequent) {
    EXPECT_EQ(p.NumSymbols(), 1u);
  }
}

TEST(DepthFirstMinerTest, EmptyDatabase) {
  InMemorySequenceDatabase db;
  CompatibilityMatrix c = Figure2Matrix();
  DepthFirstMiner dfs(Metric::kMatch, Options(0.1, 4, 0));
  MiningResult r = dfs.Mine(db, c);
  EXPECT_TRUE(r.frequent.empty());
}

TEST(DepthFirstMinerTest, TruncationGuard) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = Options(0.0, 3, 0);
  o.max_candidates_per_level = 5;
  DepthFirstMiner dfs(Metric::kMatch, o);
  MiningResult r = dfs.Mine(db, c);
  EXPECT_TRUE(r.truncated);
}

class DepthFirstAgreementProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(DepthFirstAgreementProperty, AgreesWithLevelwiseOnRandomData) {
  Rng rng(GetParam() + 500);
  GeneratorConfig config;
  config.num_sequences = 15 + rng.UniformInt(20);
  config.min_length = 5;
  config.max_length = 15;
  config.alphabet_size = 5;
  config.planted = {RandomPattern(3, 0, 5, &rng)};
  config.plant_probability = 0.5;
  InMemorySequenceDatabase db = GenerateDatabase(config, &rng);
  CompatibilityMatrix c = Figure2Matrix();

  MinerOptions o = Options(0.2 + 0.1 * rng.UniformDouble(), 5,
                           GetParam() % 2);
  DepthFirstMiner dfs(Metric::kMatch, o);
  LevelwiseMiner oracle(Metric::kMatch, o);
  MiningResult got = dfs.Mine(db, c);
  MiningResult want = oracle.Mine(db, c);
  EXPECT_EQ(got.frequent.ToSortedVector(), want.frequent.ToSortedVector());
  // Spot-check that values agree as well.
  for (const Pattern& p : want.frequent) {
    EXPECT_NEAR(got.values[p], want.values[p], 1e-12) << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DepthFirstAgreementProperty,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace nmine
