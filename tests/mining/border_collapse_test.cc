#include "nmine/mining/border_collapse_miner.h"

#include <gtest/gtest.h>

#include "nmine/gen/workload.h"
#include "nmine/mining/levelwise_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::P;

MinerOptions ExactOptions(double threshold, size_t n) {
  MinerOptions o;
  o.min_threshold = threshold;
  o.space.max_span = 4;
  o.space.max_gap = 1;
  o.sample_size = n;  // sample == whole database -> exact behaviour
  o.delta = 1e-4;
  return o;
}

TEST(ClassifySampleTest, LabelsFollowChernoffBound) {
  // Two sequences; pattern {0} has match 1.0, {1} has 0.5, {2} has 0.
  std::vector<SequenceRecord> records = {{0, {0, 1}}, {1, {0, 0}}};
  CompatibilityMatrix id = CompatibilityMatrix::Identity(3);
  std::vector<double> symbol_match = {1.0, 0.5, 0.0};
  MinerOptions o;
  o.min_threshold = 0.45;
  o.space.max_span = 2;
  o.delta = 0.5;  // large delta -> small epsilon, but n=2 keeps it wide
  SampleClassification cls =
      ClassifySamplePatterns(records, id, symbol_match, Metric::kMatch, o);
  // eps for {0}: R=1.0 -> sqrt(ln2/4) ~ 0.416 -> 1.0 > 0.45+0.416 ->
  // frequent. eps for {1}: R=0.5 -> ~0.208 -> 0.5 within +-0.208 of 0.45
  // -> ambiguous.
  PatternSet freq(cls.frequent);
  PatternSet amb(cls.ambiguous);
  EXPECT_TRUE(freq.Contains(P({0})));
  EXPECT_TRUE(amb.Contains(P({1})));
  EXPECT_FALSE(freq.Contains(P({2})));
  EXPECT_FALSE(amb.Contains(P({2})));
}

TEST(ClassifySampleTest, RestrictedSpreadNeverIncreasesAmbiguity) {
  InMemorySequenceDatabase db = Figure4Database();
  std::vector<double> symbol_match = {0.7, 0.8, 0.3875, 0.425, 0.075};
  MinerOptions o;
  o.min_threshold = 0.3;
  o.space.max_span = 3;
  o.delta = 1e-2;
  SampleClassification cls = ClassifySamplePatterns(
      db.records(), Figure2Matrix(), symbol_match, Metric::kMatch, o);
  EXPECT_LE(cls.ambiguous.size(), cls.ambiguous_with_unit_spread);
}

TEST(ClassifySampleTest, BordersEmbraceAmbiguousRegion) {
  InMemorySequenceDatabase db = Figure4Database();
  std::vector<double> symbol_match = {0.7, 0.8, 0.3875, 0.425, 0.075};
  MinerOptions o;
  o.min_threshold = 0.25;
  o.space.max_span = 3;
  o.space.max_gap = 1;
  o.delta = 1e-2;
  SampleClassification cls = ClassifySamplePatterns(
      db.records(), Figure2Matrix(), symbol_match, Metric::kMatch, o);
  for (const Pattern& p : cls.ambiguous) {
    EXPECT_TRUE(cls.infqt.Covers(p)) << p.ToString();
  }
  for (const Pattern& p : cls.frequent) {
    EXPECT_TRUE(cls.fqt.Covers(p)) << p.ToString();
  }
}

TEST(BorderCollapseMinerTest, ExactWhenSampleIsWholeDatabase) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = ExactOptions(0.3, db.NumSequences());
  BorderCollapseMiner miner(Metric::kMatch, o);
  LevelwiseMiner oracle(Metric::kMatch, o);
  MiningResult got = miner.Mine(db, c);
  MiningResult want = oracle.Mine(db, c);
  EXPECT_EQ(got.frequent.ToSortedVector(), want.frequent.ToSortedVector());
  EXPECT_EQ(got.border.ToSortedVector(), want.border.ToSortedVector());
}

TEST(BorderCollapseMinerTest, ProbedValuesAreExact) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = ExactOptions(0.3, db.NumSequences());
  BorderCollapseMiner miner(Metric::kMatch, o);
  MiningResult r = miner.Mine(db, c);
  ASSERT_TRUE(r.frequent.Contains(P({1, 0})));
  EXPECT_NEAR(r.values[P({1, 0})], 0.39125, 1e-9);
}

TEST(BorderCollapseMinerTest, SupportMetricWorks) {
  InMemorySequenceDatabase db = Figure4Database();
  MinerOptions o = ExactOptions(0.5, db.NumSequences());
  BorderCollapseMiner miner(Metric::kSupport, o);
  LevelwiseMiner oracle(Metric::kSupport, o);
  CompatibilityMatrix c = CompatibilityMatrix::Identity(5);
  EXPECT_EQ(miner.Mine(db, c).frequent.ToSortedVector(),
            oracle.Mine(db, c).frequent.ToSortedVector());
}

TEST(BorderCollapseMinerTest, ScansAreFewAndAccounted) {
  WorkloadSpec spec;
  spec.num_sequences = 150;
  spec.min_length = 30;
  spec.max_length = 50;
  spec.num_planted = 2;
  spec.planted_symbols_min = 6;
  spec.planted_symbols_max = 8;
  spec.seed = 11;
  NoisyWorkload w = MakeUniformNoiseWorkload(spec, 0.1);

  MinerOptions o;
  o.min_threshold = 0.25;
  o.space.max_span = 10;
  o.space.max_gap = 0;
  o.sample_size = 150;
  o.delta = 0.01;
  o.seed = 3;
  BorderCollapseMiner miner(Metric::kMatch, o);
  MiningResult r = miner.Mine(w.test, w.matrix);
  EXPECT_GE(r.scans, 1);  // at least the Phase-1 scan
  EXPECT_EQ(r.scans, w.test.scan_count());
  EXPECT_LE(r.scans, 8);  // border collapsing keeps this small
}

TEST(BorderCollapseMinerTest, DiagnosticsArePopulated) {
  InMemorySequenceDatabase db = Figure4Database();
  MinerOptions o = ExactOptions(0.3, 2);  // tiny sample
  o.seed = 17;
  BorderCollapseMiner miner(Metric::kMatch, o);
  MiningResult r = miner.Mine(db, Figure2Matrix());
  EXPECT_EQ(r.symbol_match.size(), 5u);
  EXPECT_FALSE(r.level_stats.empty());
}

TEST(BorderCollapseMinerTest, TinyMemoryBudgetStillTerminates) {
  InMemorySequenceDatabase db = Figure4Database();
  MinerOptions o = ExactOptions(0.25, db.NumSequences());
  o.max_counters_per_scan = 1;  // one counter per scan
  BorderCollapseMiner miner(Metric::kMatch, o);
  LevelwiseMiner oracle(Metric::kMatch, o);
  CompatibilityMatrix c = Figure2Matrix();
  EXPECT_EQ(miner.Mine(db, c).frequent.ToSortedVector(),
            oracle.Mine(db, c).frequent.ToSortedVector());
}

TEST(BorderCollapseMinerTest, DeterministicGivenSeed) {
  InMemorySequenceDatabase db = Figure4Database();
  MinerOptions o = ExactOptions(0.3, 3);
  o.seed = 5;
  BorderCollapseMiner miner(Metric::kMatch, o);
  CompatibilityMatrix c = Figure2Matrix();
  MiningResult a = miner.Mine(db, c);
  db.ResetScanCount();
  MiningResult b = miner.Mine(db, c);
  EXPECT_EQ(a.frequent.ToSortedVector(), b.frequent.ToSortedVector());
  EXPECT_EQ(a.scans, b.scans);
}

}  // namespace
}  // namespace nmine
