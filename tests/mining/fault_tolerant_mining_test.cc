// End-to-end fault tolerance: every miner either absorbs a transient scan
// fault (producing results bit-identical to the fault-free run) or fails
// closed with a typed error and an empty pattern set. Border collapsing
// additionally retries failed probe scans at the miner level and resumes
// an interrupted Phase 3 from its checkpoint.
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/db/fault_injecting_database.h"
#include "nmine/db/retry.h"
#include "nmine/db/retrying_database.h"
#include "nmine/gen/workload.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/depth_first_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/phase3_checkpoint.h"
#include "nmine/mining/toivonen_miner.h"
#include "nmine/obs/metrics.h"
#include "test_util.h"

namespace nmine {
namespace {

using MineFn = std::function<MiningResult(const SequenceDatabase&)>;

class FaultTolerantMiningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec spec;
    spec.num_sequences = 80;
    spec.min_length = 20;
    spec.max_length = 40;
    spec.num_planted = 2;
    spec.planted_symbols_min = 4;
    spec.planted_symbols_max = 6;
    spec.seed = 77;
    workload_ = MakeUniformNoiseWorkload(spec, 0.1);
  }

  MinerOptions Options() const {
    MinerOptions o;
    o.min_threshold = 0.25;
    o.space.max_span = 6;
    o.sample_size = 30;  // well under N: leaves a real ambiguous region
    o.delta = 0.05;
    o.seed = 3;
    o.max_counters_per_scan = 4;  // forces several Phase-3 probe scans
    return o;
  }

  /// Every miner under test, by name.
  std::vector<std::pair<std::string, MineFn>> Miners() const {
    MinerOptions o = Options();
    const CompatibilityMatrix& c = workload_.matrix;
    return {
        {"levelwise",
         [o, &c](const SequenceDatabase& db) {
           return LevelwiseMiner(Metric::kMatch, o).Mine(db, c);
         }},
        {"collapse",
         [o, &c](const SequenceDatabase& db) {
           return BorderCollapseMiner(Metric::kMatch, o).Mine(db, c);
         }},
        {"maxminer",
         [o, &c](const SequenceDatabase& db) {
           return MaxMiner(Metric::kMatch, o).Mine(db, c);
         }},
        {"toivonen",
         [o, &c](const SequenceDatabase& db) {
           return ToivonenMiner(Metric::kMatch, o).Mine(db, c);
         }},
        {"depthfirst",
         [o, &c](const SequenceDatabase& db) {
           return DepthFirstMiner(Metric::kMatch, o).Mine(db, c);
         }},
    };
  }

  NoisyWorkload workload_;
};

TEST_F(FaultTolerantMiningTest, TransientFaultsAreInvisibleWithRetry) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  for (const auto& [name, mine] : Miners()) {
    MiningResult clean = mine(workload_.test);
    ASSERT_TRUE(clean.ok()) << name;

    // First attempt of the first scan fails, plus one mid-run transient.
    FaultPlan plan;
    plan.open_fail_scans = 1;
    plan.fail_scan_indices = {3};
    FaultInjectingDatabase injector(&workload_.test, plan);
    FakeSleeper sleeper;
    RetryingDatabase db(&injector, policy, &sleeper);

    MiningResult faulted = mine(db);
    EXPECT_TRUE(faulted.ok()) << name << ": " << faulted.status.ToString();
    EXPECT_EQ(clean.frequent.ToSortedVector(),
              faulted.frequent.ToSortedVector())
        << name;
    EXPECT_EQ(clean.border.ToSortedVector(), faulted.border.ToSortedVector())
        << name;
    // The retrying decorator counts logical scans, so the paper's cost
    // metric is unchanged by the absorbed faults.
    EXPECT_EQ(clean.scans, faulted.scans) << name;
    EXPECT_FALSE(sleeper.slept_ms().empty()) << name;
  }
}

TEST_F(FaultTolerantMiningTest, PermanentFaultFailsClosed) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t failed_before = reg.CounterValue("mining.failed_runs");
  int miners = 0;
  for (const auto& [name, mine] : Miners()) {
    FaultPlan plan;
    plan.corrupt_from_scan = 0;
    FaultInjectingDatabase injector(&workload_.test, plan);
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.jitter = 0.0;
    FakeSleeper sleeper;
    RetryingDatabase db(&injector, policy, &sleeper);

    MiningResult r = mine(db);
    EXPECT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.status.code(), StatusCode::kDataLoss) << name;
    // A partial answer is indistinguishable from a complete one, so a
    // failed run must return an empty pattern set.
    EXPECT_TRUE(r.frequent.ToSortedVector().empty()) << name;
    EXPECT_TRUE(r.border.ToSortedVector().empty()) << name;
    // Permanent faults are never retried.
    EXPECT_TRUE(sleeper.slept_ms().empty()) << name;
    ++miners;
  }
  EXPECT_EQ(reg.CounterValue("mining.failed_runs") - failed_before, miners);
}

TEST_F(FaultTolerantMiningTest, Phase3MinerLevelRetryMatchesCleanRun) {
  MinerOptions options = Options();
  options.phase3_scan_retries = 1;
  BorderCollapseMiner miner(Metric::kMatch, options);
  MiningResult clean = miner.Mine(workload_.test, workload_.matrix);
  ASSERT_TRUE(clean.ok());
  // Needs at least one Phase-3 probe scan for the fault below to hit one.
  ASSERT_GE(clean.scans, 2) << "workload leaves no ambiguous region";

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t retries_before = reg.CounterValue("phase3.scan_retries");

  // Attempt 0 is the Phase-1 scan; attempt 1 is the first probe scan. No
  // retrying decorator here: the retry under test is the miner's own.
  FaultPlan plan;
  plan.fail_scan_indices = {1};
  FaultInjectingDatabase db(&workload_.test, plan);
  MiningResult faulted = miner.Mine(db, workload_.matrix);
  EXPECT_TRUE(faulted.ok()) << faulted.status.ToString();
  EXPECT_EQ(clean.frequent.ToSortedVector(),
            faulted.frequent.ToSortedVector());
  EXPECT_EQ(clean.border.ToSortedVector(), faulted.border.ToSortedVector());
  EXPECT_GE(reg.CounterValue("phase3.scan_retries") - retries_before, 1);
}

TEST_F(FaultTolerantMiningTest, CheckpointResumeMatchesCleanRun) {
  BorderCollapseMiner reference(Metric::kMatch, Options());
  MiningResult clean = reference.Mine(workload_.test, workload_.matrix);
  ASSERT_TRUE(clean.ok());
  // Needs >= 2 probe scans so a checkpoint exists when the fault hits.
  ASSERT_GE(clean.scans, 3) << "workload collapses in a single probe scan";

  const std::string ckpt =
      std::string(::testing::TempDir()) + "/phase3_resume.ckpt";
  RemovePhase3Checkpoint(ckpt);
  MinerOptions options = Options();
  options.phase3_checkpoint_path = ckpt;
  BorderCollapseMiner miner(Metric::kMatch, options);

  // Run 1: permanent fault on the last probe scan. Fails closed, leaving
  // the checkpoint of the previous good probe on disk.
  FaultPlan plan;
  plan.corrupt_from_scan = static_cast<int>(clean.scans) - 1;
  FaultInjectingDatabase faulty(&workload_.test, plan);
  MiningResult interrupted = miner.Mine(faulty, workload_.matrix);
  ASSERT_FALSE(interrupted.ok());
  EXPECT_TRUE(interrupted.frequent.ToSortedVector().empty());
  EXPECT_TRUE(std::ifstream(ckpt).good()) << "checkpoint missing after fault";

  // Run 2: same configuration against the healthy database resumes from
  // the checkpoint instead of redoing Phases 1-3 from scratch.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t resumes_before = reg.CounterValue("phase3.resumes");
  MiningResult resumed = miner.Mine(workload_.test, workload_.matrix);
  EXPECT_TRUE(resumed.ok()) << resumed.status.ToString();
  EXPECT_EQ(clean.frequent.ToSortedVector(),
            resumed.frequent.ToSortedVector());
  EXPECT_EQ(clean.border.ToSortedVector(), resumed.border.ToSortedVector());
  // Scan accounting spans the interrupted and resumed runs: checkpointed
  // scans plus this run's remaining probes equal the fault-free total.
  EXPECT_EQ(resumed.scans, clean.scans);
  EXPECT_EQ(reg.CounterValue("phase3.resumes") - resumes_before, 1);
  // Success removes the checkpoint.
  EXPECT_FALSE(std::ifstream(ckpt).good());
}

TEST_F(FaultTolerantMiningTest, CheckpointRoundTripAndGuards) {
  const std::string path =
      std::string(::testing::TempDir()) + "/cp_roundtrip.ckpt";
  Phase3Checkpoint cp;
  cp.metric = Metric::kMatch;
  cp.min_threshold = 0.25;
  cp.num_sequences = 80;
  cp.total_symbols = 2400;
  cp.scans_completed = 3;
  cp.ambiguous_after_sample = 12;
  cp.ambiguous_with_unit_spread = 9;
  cp.accepted_from_sample = 4;
  cp.truncated = true;
  cp.symbol_match = {0.5, 0.25, 0.125};
  cp.resolved_frequent.emplace_back(testutil::P({0, 1}), 0.75);
  cp.resolved_frequent.emplace_back(testutil::P({0, -1, 2}), 0.5);
  cp.unresolved.emplace_back(testutil::P({1, 2}), 0.3);
  ASSERT_TRUE(WritePhase3Checkpoint(path, cp).ok());

  Phase3Checkpoint expected;
  expected.metric = Metric::kMatch;
  expected.min_threshold = 0.25;
  expected.num_sequences = 80;
  expected.total_symbols = 2400;
  Phase3Checkpoint loaded;
  ASSERT_TRUE(LoadPhase3Checkpoint(path, expected, &loaded).ok());
  EXPECT_EQ(loaded.scans_completed, 3);
  EXPECT_EQ(loaded.ambiguous_after_sample, 12u);
  EXPECT_EQ(loaded.ambiguous_with_unit_spread, 9u);
  EXPECT_EQ(loaded.accepted_from_sample, 4u);
  EXPECT_TRUE(loaded.truncated);
  EXPECT_EQ(loaded.symbol_match, cp.symbol_match);
  ASSERT_EQ(loaded.resolved_frequent.size(), 2u);
  EXPECT_EQ(loaded.resolved_frequent[0].first, cp.resolved_frequent[0].first);
  EXPECT_DOUBLE_EQ(loaded.resolved_frequent[1].second, 0.5);
  ASSERT_EQ(loaded.unresolved.size(), 1u);
  EXPECT_EQ(loaded.unresolved[0].first, testutil::P({1, 2}));

  // Guard mismatch: a different threshold must refuse the checkpoint.
  Phase3Checkpoint other = expected;
  other.min_threshold = 0.5;
  Phase3Checkpoint ignored;
  EXPECT_EQ(LoadPhase3Checkpoint(path, other, &ignored).code(),
            StatusCode::kFailedPrecondition);

  // Missing file: fresh run.
  EXPECT_EQ(
      LoadPhase3Checkpoint(path + ".missing", expected, &ignored).code(),
      StatusCode::kNotFound);

  // Malformed file: data loss, never a crash.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "nmine-phase3-checkpoint v1\nmetric match\ngarbage here\n";
  }
  EXPECT_EQ(LoadPhase3Checkpoint(path, expected, &ignored).code(),
            StatusCode::kDataLoss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nmine
