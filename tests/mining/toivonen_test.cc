#include "nmine/mining/toivonen_miner.h"

#include <gtest/gtest.h>

#include "nmine/gen/workload.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;

MinerOptions ExactOptions(double threshold, size_t n) {
  MinerOptions o;
  o.min_threshold = threshold;
  o.space.max_span = 4;
  o.space.max_gap = 1;
  o.sample_size = n;
  o.delta = 1e-4;
  return o;
}

TEST(ToivonenMinerTest, ExactWhenSampleIsWholeDatabase) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = ExactOptions(0.3, db.NumSequences());
  ToivonenMiner miner(Metric::kMatch, o);
  LevelwiseMiner oracle(Metric::kMatch, o);
  EXPECT_EQ(miner.Mine(db, c).frequent.ToSortedVector(),
            oracle.Mine(db, c).frequent.ToSortedVector());
}

TEST(ToivonenMinerTest, SupportMetric) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix id = CompatibilityMatrix::Identity(5);
  MinerOptions o = ExactOptions(0.5, db.NumSequences());
  ToivonenMiner miner(Metric::kSupport, o);
  LevelwiseMiner oracle(Metric::kSupport, o);
  EXPECT_EQ(miner.Mine(db, id).frequent.ToSortedVector(),
            oracle.Mine(db, id).frequent.ToSortedVector());
}

TEST(ToivonenMinerTest, ScanAccountingMatchesDatabaseCounter) {
  WorkloadSpec spec;
  spec.num_sequences = 120;
  spec.num_planted = 2;
  spec.seed = 21;
  NoisyWorkload w = MakeUniformNoiseWorkload(spec, 0.1);
  MinerOptions o;
  o.min_threshold = 0.25;
  o.space.max_span = 8;
  o.sample_size = 120;  // epsilon must stay below the threshold
  o.delta = 0.05;
  o.seed = 9;
  ToivonenMiner miner(Metric::kMatch, o);
  MiningResult r = miner.Mine(w.test, w.matrix);
  EXPECT_EQ(r.scans, w.test.scan_count());
  EXPECT_GE(r.scans, 1);
}

TEST(ToivonenMinerTest, LevelwiseVerificationNeedsMoreScansThanCollapsing) {
  // The headline claim of Figure 14(b): with many ambiguous levels, the
  // level-wise finalization pays roughly one scan per level while border
  // collapsing probes in bisection order. With a small sample both miners
  // face the same ambiguous region (same seed -> same Phase 1/2).
  WorkloadSpec spec;
  spec.num_sequences = 400;
  spec.min_length = 40;
  spec.max_length = 60;
  spec.num_planted = 2;
  spec.planted_symbols_min = 10;
  spec.planted_symbols_max = 10;
  spec.plant_probability = 0.5;
  spec.seed = 33;
  NoisyWorkload w = MakeUniformNoiseWorkload(spec, 0.1);

  MinerOptions o;
  o.min_threshold = 0.25;
  o.space.max_span = 12;
  o.sample_size = 400;
  o.delta = 0.01;
  o.seed = 4;
  ToivonenMiner toivonen(Metric::kMatch, o);
  MiningResult rt = toivonen.Mine(w.test, w.matrix);

  w.test.ResetScanCount();
  BorderCollapseMiner collapse(Metric::kMatch, o);
  MiningResult rc = collapse.Mine(w.test, w.matrix);

  EXPECT_EQ(rt.frequent.ToSortedVector(), rc.frequent.ToSortedVector());
  EXPECT_LE(rc.scans, rt.scans);
}

TEST(ToivonenMinerTest, MemoryBudgetSplitsLevelsIntoBatches) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = ExactOptions(0.25, 2);  // small sample -> ambiguity
  o.max_counters_per_scan = 1;
  o.seed = 12;
  ToivonenMiner miner(Metric::kMatch, o);
  MiningResult small_budget = miner.Mine(db, c);

  db.ResetScanCount();
  o.max_counters_per_scan = 100000;
  ToivonenMiner roomy(Metric::kMatch, o);
  MiningResult big_budget = roomy.Mine(db, c);

  EXPECT_EQ(small_budget.frequent.ToSortedVector(),
            big_budget.frequent.ToSortedVector());
  EXPECT_GE(small_budget.scans, big_budget.scans);
}

}  // namespace
}  // namespace nmine
