#include "nmine/mining/max_miner.h"

#include <gtest/gtest.h>

#include "nmine/gen/workload.h"
#include "nmine/mining/levelwise_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::P;

MinerOptions Options(double threshold, size_t span, size_t gap) {
  MinerOptions o;
  o.min_threshold = threshold;
  o.space.max_span = span;
  o.space.max_gap = gap;
  return o;
}

TEST(MaxMinerTest, BorderMatchesLevelwiseOnPaperExample) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = Options(0.3, 4, 1);
  MaxMiner miner(Metric::kMatch, o);
  LevelwiseMiner oracle(Metric::kMatch, o);
  EXPECT_EQ(miner.Mine(db, c).border.ToSortedVector(),
            oracle.Mine(db, c).border.ToSortedVector());
}

TEST(MaxMinerTest, FrequentSetIsCompleteToo) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MinerOptions o = Options(0.25, 4, 0);
  MaxMiner miner(Metric::kMatch, o);
  LevelwiseMiner oracle(Metric::kMatch, o);
  EXPECT_EQ(miner.Mine(db, c).frequent.ToSortedVector(),
            oracle.Mine(db, c).frequent.ToSortedVector());
}

TEST(MaxMinerTest, SupportMetric) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix id = CompatibilityMatrix::Identity(5);
  MinerOptions o = Options(0.5, 4, 1);
  MaxMiner miner(Metric::kSupport, o);
  LevelwiseMiner oracle(Metric::kSupport, o);
  EXPECT_EQ(miner.Mine(db, id).border.ToSortedVector(),
            oracle.Mine(db, id).border.ToSortedVector());
}

TEST(MaxMinerTest, LookAheadSavesScansOnDominantLongPattern) {
  // One strongly planted contiguous pattern: the overlap-join look-ahead
  // should discover it long before the level-wise frontier arrives, and
  // the covered levels then need no scan at all.
  WorkloadSpec spec;
  spec.num_sequences = 150;
  spec.min_length = 40;
  spec.max_length = 60;
  spec.num_planted = 1;
  spec.planted_symbols_min = 12;
  spec.planted_symbols_max = 12;
  spec.plant_probability = 0.8;
  spec.seed = 5;
  NoisyWorkload w = MakeUniformNoiseWorkload(spec, 0.0);

  MinerOptions o = Options(0.5, 12, 0);
  MaxMiner max_miner(Metric::kSupport, o);
  MiningResult rm = max_miner.Mine(w.standard, w.matrix);

  w.standard.ResetScanCount();
  LevelwiseMiner levelwise(Metric::kSupport, o);
  MiningResult rl = levelwise.Mine(w.standard, w.matrix);

  EXPECT_EQ(rm.border.ToSortedVector(), rl.border.ToSortedVector());
  EXPECT_LT(rm.scans, rl.scans);
  // The planted pattern itself is on the border.
  EXPECT_TRUE(rm.border.ContainsElement(w.planted[0]));
}

TEST(MaxMinerTest, ScanAccountingMatchesDatabase) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MaxMiner miner(Metric::kMatch, Options(0.3, 4, 0));
  MiningResult r = miner.Mine(db, c);
  EXPECT_EQ(r.scans, db.scan_count());
}

TEST(MaxMinerTest, EmptyResultOnImpossibleThreshold) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  MaxMiner miner(Metric::kMatch, Options(0.99, 4, 0));
  MiningResult r = miner.Mine(db, c);
  EXPECT_TRUE(r.border.empty());
}

}  // namespace
}  // namespace nmine
