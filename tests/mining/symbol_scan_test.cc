#include "nmine/mining/symbol_scan.h"

#include <gtest/gtest.h>

#include "nmine/lattice/pattern_counter.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::P;

TEST(SymbolScanTest, Figure5SymbolMatches) {
  // Algorithm 4.1 on the Figure 4(a) database with the Figure 2 matrix.
  // Hand-derived values (see EXPERIMENTS.md for the two cells where the
  // paper's own table is internally inconsistent):
  //   d1: (0.9 + 0.9 + 0.9 + 0.1) / 4 = 0.7
  //   d2: (0.8 * 4) / 4            = 0.8     (paper: 0.8)
  //   d3: (0.7 + 0.15 + 0.7 + 0)/4 = 0.3875  (paper: 0.4)
  //   d4: (0.1 + 0.75 + 0.75 + 0.1)/4 = 0.425 (paper: 0.425)
  //   d5: (0.15 + 0 + 0.15 + 0)/4  = 0.075   (paper: 0.075)
  InMemorySequenceDatabase db = Figure4Database();
  Rng rng(1);
  SymbolScanResult r =
      ScanSymbolsAndSample(db, Figure2Matrix(), /*sample_size=*/0, &rng);
  ASSERT_EQ(r.symbol_match.size(), 5u);
  EXPECT_NEAR(r.symbol_match[0], 0.7, 1e-12);
  EXPECT_NEAR(r.symbol_match[1], 0.8, 1e-12);
  EXPECT_NEAR(r.symbol_match[2], 0.3875, 1e-12);
  EXPECT_NEAR(r.symbol_match[3], 0.425, 1e-12);
  EXPECT_NEAR(r.symbol_match[4], 0.075, 1e-12);
}

TEST(SymbolScanTest, AgreesWithOnePatternCounting) {
  // match[d] must equal the Definition-3.7 match of the 1-pattern (d).
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  Rng rng(2);
  SymbolScanResult r = ScanSymbolsAndSample(db, c, 0, &rng);
  std::vector<double> direct =
      CountMatches(db, c, {P({0}), P({1}), P({2}), P({3}), P({4})});
  for (size_t d = 0; d < 5; ++d) {
    EXPECT_NEAR(r.symbol_match[d], direct[d], 1e-12) << "d" << (d + 1);
  }
}

TEST(SymbolScanTest, UsesExactlyOneScan) {
  InMemorySequenceDatabase db = Figure4Database();
  Rng rng(3);
  ScanSymbolsAndSample(db, Figure2Matrix(), 2, &rng);
  EXPECT_EQ(db.scan_count(), 1);
}

TEST(SymbolScanTest, SampleSizeIsRespected) {
  InMemorySequenceDatabase db = Figure4Database();
  Rng rng(4);
  SymbolScanResult r = ScanSymbolsAndSample(db, Figure2Matrix(), 2, &rng);
  EXPECT_EQ(r.sample.NumSequences(), 2u);
  Rng rng2(5);
  r = ScanSymbolsAndSample(db, Figure2Matrix(), 100, &rng2);
  EXPECT_EQ(r.sample.NumSequences(), 4u);  // min(n, N)
}

TEST(SymbolScanTest, IdentityMatrixGivesSupports) {
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix id = CompatibilityMatrix::Identity(5);
  Rng rng(6);
  SymbolScanResult match_r = ScanSymbolsAndSample(db, id, 0, &rng);
  Rng rng2(6);
  SymbolScanResult sup_r = ScanSymbolSupports(db, 5, 0, &rng2);
  for (size_t d = 0; d < 5; ++d) {
    EXPECT_NEAR(match_r.symbol_match[d], sup_r.symbol_match[d], 1e-12);
  }
  // Figure 4(b) supports: d1 0.75, d2 1.0, d3 0.5, d4 0.5, d5 0.
  EXPECT_NEAR(sup_r.symbol_match[0], 0.75, 1e-12);
  EXPECT_NEAR(sup_r.symbol_match[1], 1.00, 1e-12);
  EXPECT_NEAR(sup_r.symbol_match[2], 0.50, 1e-12);
  EXPECT_NEAR(sup_r.symbol_match[3], 0.50, 1e-12);
  EXPECT_NEAR(sup_r.symbol_match[4], 0.00, 1e-12);
}

TEST(SymbolScanTest, EmptyDatabase) {
  InMemorySequenceDatabase db;
  Rng rng(7);
  SymbolScanResult r = ScanSymbolsAndSample(db, Figure2Matrix(), 3, &rng);
  for (double v : r.symbol_match) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  EXPECT_EQ(r.sample.NumSequences(), 0u);
}

}  // namespace
}  // namespace nmine
