#include <gtest/gtest.h>

#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/toivonen_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;

/// Property sweep: on random databases, all four miners agree — the exact
/// level-wise result is the ground truth; the probabilistic miners run
/// with sample == whole database, where the Chernoff machinery still
/// produces an ambiguous band but every ambiguous pattern gets verified
/// exactly.
class MinerAgreementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MinerAgreementProperty, AllMinersAgree) {
  Rng rng(GetParam());
  const size_t m = 5;
  GeneratorConfig config;
  config.num_sequences = 20 + rng.UniformInt(20);
  config.min_length = 5;
  config.max_length = 15;
  config.alphabet_size = m;
  config.planted = {RandomPattern(3 + rng.UniformInt(2), 0, m, &rng)};
  config.plant_probability = 0.5;
  InMemorySequenceDatabase db = GenerateDatabase(config, &rng);
  CompatibilityMatrix c = Figure2Matrix();

  MinerOptions o;
  o.min_threshold = 0.25 + 0.1 * rng.UniformDouble();
  o.space.max_span = 5;
  o.space.max_gap = GetParam() % 2;  // alternate contiguous / gapped
  o.sample_size = db.NumSequences();
  o.delta = 0.2;  // keep the Chernoff band narrower than the threshold
  o.seed = GetParam();

  LevelwiseMiner levelwise(Metric::kMatch, o);
  MiningResult truth = levelwise.Mine(db, c);

  db.ResetScanCount();
  BorderCollapseMiner collapse(Metric::kMatch, o);
  MiningResult rc = collapse.Mine(db, c);
  EXPECT_EQ(rc.frequent.ToSortedVector(), truth.frequent.ToSortedVector());
  EXPECT_EQ(rc.border.ToSortedVector(), truth.border.ToSortedVector());

  db.ResetScanCount();
  ToivonenMiner toivonen(Metric::kMatch, o);
  MiningResult rt = toivonen.Mine(db, c);
  EXPECT_EQ(rt.frequent.ToSortedVector(), truth.frequent.ToSortedVector());

  db.ResetScanCount();
  MaxMiner max_miner(Metric::kMatch, o);
  MiningResult rm = max_miner.Mine(db, c);
  EXPECT_EQ(rm.border.ToSortedVector(), truth.border.ToSortedVector());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MinerAgreementProperty,
                         ::testing::Range<uint64_t>(0, 12));

/// Apriori monotonicity property on random pattern pairs: Claim 3.2.
class AprioriProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AprioriProperty, SubpatternHasAtLeastTheMatch) {
  Rng rng(GetParam() + 1000);
  const size_t m = 5;
  CompatibilityMatrix c = Figure2Matrix();
  std::vector<SequenceRecord> records;
  for (size_t i = 0; i < 6; ++i) {
    SequenceRecord r;
    r.id = static_cast<SequenceId>(i);
    r.symbols = RandomSequence(4 + rng.UniformInt(20), m, &rng);
    records.push_back(std::move(r));
  }
  Pattern super = RandomPattern(2 + rng.UniformInt(4), 1, m, &rng);
  std::vector<Pattern> batch = {super};
  std::vector<Pattern> subs = super.ImmediateSubpatterns();
  batch.insert(batch.end(), subs.begin(), subs.end());
  std::vector<double> v = testutil::NaiveMatches(records, c, batch);
  for (size_t i = 1; i < batch.size(); ++i) {
    EXPECT_GE(v[i], v[0] - 1e-12)
        << batch[i].ToString() << " vs " << super.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AprioriProperty,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace nmine
