// The strongest correctness check: on tiny instances, enumerate EVERY
// valid pattern in the bounded space, evaluate it with the naive
// definition-level oracle, and require each miner's frequent set to equal
// the brute-force set exactly.
#include <functional>

#include <gtest/gtest.h>

#include "nmine/gen/sequence_generator.h"
#include "nmine/lattice/candidate_gen.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/depth_first_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/toivonen_miner.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;

/// Brute-force frequent set per Definitions 3.5-3.7.
PatternSet BruteForceFrequent(const std::vector<SequenceRecord>& records,
                              const CompatibilityMatrix& c, double threshold,
                              const PatternSpaceOptions& opts,
                              bool support_metric) {
  std::vector<Pattern> all = testutil::EnumeratePatterns(c.size(), opts);
  std::vector<double> values =
      support_metric ? testutil::NaiveSupports(records, all)
                     : testutil::NaiveMatches(records, c, all);
  PatternSet frequent;
  for (size_t i = 0; i < all.size(); ++i) {
    if (values[i] >= threshold) {
      frequent.Insert(all[i]);
    }
  }
  return frequent;
}

class ExhaustiveProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExhaustiveProperty, EveryMinerMatchesBruteForce) {
  Rng rng(GetParam() + 9000);
  const size_t m = 4;
  GeneratorConfig config;
  config.num_sequences = 8 + rng.UniformInt(10);
  config.min_length = 3;
  config.max_length = 10;
  config.alphabet_size = m;
  InMemorySequenceDatabase db = GenerateDatabase(config, &rng);

  // A 4x4 column-stochastic matrix with zeros and asymmetry.
  CompatibilityMatrix c({
      {0.80, 0.10, 0.00, 0.05},
      {0.20, 0.70, 0.10, 0.00},
      {0.00, 0.20, 0.80, 0.15},
      {0.00, 0.00, 0.10, 0.80},
  });
  ASSERT_TRUE(c.Validate().ok);

  MinerOptions o;
  o.min_threshold = 0.15 + 0.15 * rng.UniformDouble();
  o.space.max_span = 4;
  o.space.max_gap = GetParam() % 3 == 0 ? 1 : 0;
  o.sample_size = db.NumSequences();
  o.delta = 0.3;
  o.seed = GetParam();

  const bool support = GetParam() % 2 == 1;
  Metric metric = support ? Metric::kSupport : Metric::kMatch;
  PatternSet expected = BruteForceFrequent(
      db.records(), c, o.min_threshold, o.space, support);

  LevelwiseMiner levelwise(metric, o);
  EXPECT_EQ(levelwise.Mine(db, c).frequent.ToSortedVector(),
            expected.ToSortedVector());

  DepthFirstMiner dfs(metric, o);
  EXPECT_EQ(dfs.Mine(db, c).frequent.ToSortedVector(),
            expected.ToSortedVector());

  BorderCollapseMiner collapse(metric, o);
  EXPECT_EQ(collapse.Mine(db, c).frequent.ToSortedVector(),
            expected.ToSortedVector());

  ToivonenMiner toivonen(metric, o);
  EXPECT_EQ(toivonen.Mine(db, c).frequent.ToSortedVector(),
            expected.ToSortedVector());

  // MaxMiner guarantees the border only.
  Border expected_border;
  std::vector<Pattern> desc = expected.ToSortedVector();
  for (auto it = desc.rbegin(); it != desc.rend(); ++it) {
    expected_border.Insert(*it);
  }
  MaxMiner max_miner(metric, o);
  EXPECT_EQ(max_miner.Mine(db, c).border.ToSortedVector(),
            expected_border.ToSortedVector());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ExhaustiveProperty,
                         ::testing::Range<uint64_t>(0, 16));

TEST(EnumeratePatternsTest, CountsForTinySpace) {
  // m = 2, span <= 3, contiguous: 2 + 4 + 8 = 14 patterns.
  PatternSpaceOptions opts;
  opts.max_span = 3;
  opts.max_gap = 0;
  std::vector<Pattern> all = testutil::EnumeratePatterns(2, opts);
  EXPECT_EQ(all.size(), 14u);

  // Allowing one-wildcard gaps adds the 4 patterns x * y.
  opts.max_gap = 1;
  all = testutil::EnumeratePatterns(2, opts);
  EXPECT_EQ(all.size(), 18u);
}

}  // namespace
}  // namespace nmine
