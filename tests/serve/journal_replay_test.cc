// Crash-recovery coverage for the job journal beyond the happy replay the
// server test exercises: a torn trailing line (SIGKILL mid-write) must be
// skipped and compacted away, a leftover .tmp from an interrupted
// compaction must not poison the next Open, running jobs rewind to
// queued, the terminal-job cap bounds the journal, and an idempotent
// resubmit lands on the SAME recovered job across a real server restart.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "nmine/db/format.h"
#include "nmine/gen/workload.h"
#include "nmine/obs/json_parse.h"
#include "nmine/serve/job.h"
#include "nmine/serve/job_journal.h"
#include "nmine/serve/server.h"

namespace nmine {
namespace serve {
namespace {

/// One request -> one response over a fresh connection.
std::optional<std::string> LineRequest(uint16_t port,
                                       const std::string& line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  size_t done = 0;
  while (done < line.size()) {
    ssize_t w = ::send(fd, line.data() + done, line.size() - done, 0);
    if (w <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    done += static_cast<size_t>(w);
  }
  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    buffer.append(chunk, static_cast<size_t>(r));
  }
  ::close(fd);
  size_t nl = buffer.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  return buffer.substr(0, nl);
}

std::optional<obs::JsonValue> Ask(uint16_t port, const std::string& line) {
  std::optional<std::string> response = LineRequest(port, line);
  if (!response.has_value()) return std::nullopt;
  return obs::ParseJson(*response);
}

std::string SubmitLine(const std::string& client, const std::string& tag,
                       const JobSpec& spec) {
  std::string line =
      "{\"op\": \"submit\", \"client\": \"" + client + "\", \"tag\": \"" +
      tag + "\", \"spec\": ";
  spec.AppendJson(&line);
  line.append("}\n");
  return line;
}

/// Job embeds a RunControl and cannot be copied or moved, so the helper
/// fills a caller-owned instance in place.
void FillJob(Job* job, uint64_t id, const std::string& tag) {
  job->id = id;
  job->client = "alice";
  job->tag = tag;
  job->spec.db_path = "/data/db.nmsq";
  job->spec.threshold = 0.3;
}

Status SubmitJob(JobJournal* journal, uint64_t id, const std::string& tag) {
  Job job;
  FillJob(&job, id, tag);
  return journal->AppendSubmit(job);
}

class JournalReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/journal_replay_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<JobJournal> Open(std::map<uint64_t, Job>* recovered,
                                   uint64_t* next_id) {
    std::string error;
    std::unique_ptr<JobJournal> journal =
        JobJournal::Open(dir_, recovered, next_id, &error);
    EXPECT_NE(journal, nullptr) << error;
    return journal;
  }

  std::string JournalContents(const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
};

TEST_F(JournalReplayTest, TornTailIsSkippedAndCompactedAway) {
  std::map<uint64_t, Job> recovered;
  uint64_t next_id = 0;
  std::unique_ptr<JobJournal> journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  const std::string path = journal->path();
  ASSERT_TRUE(SubmitJob(journal.get(), 1, "t1").ok());
  ASSERT_TRUE(SubmitJob(journal.get(), 2, "t2").ok());
  ASSERT_TRUE(journal->AppendState(1, JobState::kRunning).ok());
  journal.reset();

  // SIGKILL mid-append: half a submit line, no terminating newline.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"event\": \"submit\", \"id\": 3, \"client\": \"zebra";
  }

  journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(next_id, 3u);  // the torn job 3 was never acknowledged
  // Job 1 was running at the crash: rewound so the executor re-runs it.
  EXPECT_EQ(recovered.at(1).state, JobState::kQueued);
  EXPECT_EQ(recovered.at(2).tag, "t2");
  // Compaction rewrote the journal: the torn fragment is gone for good,
  // so the NEXT restart replays a clean file.
  EXPECT_EQ(JournalContents(path).find("zebra"), std::string::npos);
}

TEST_F(JournalReplayTest, LeftoverCompactionTmpDoesNotPoisonOpen) {
  std::map<uint64_t, Job> recovered;
  uint64_t next_id = 0;
  std::unique_ptr<JobJournal> journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  const std::string path = journal->path();
  ASSERT_TRUE(SubmitJob(journal.get(), 1, "t1").ok());
  journal.reset();

  // A crash between compaction's tmp write and its rename leaves this
  // behind. Open must ignore it and trust only the real journal.
  {
    std::ofstream out(path + ".tmp");
    out << "{\"event\": \"submit\", \"id\": 99, \"client\": \"ghost\", "
           "\"tag\": \"g\", \"spec\": {\"db\": \"/g.nmsq\"}}\n";
  }

  journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.count(99), 0u);
  EXPECT_EQ(next_id, 2u);
  // The next compaction reclaimed the tmp path (rename over it).
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(JournalReplayTest, ResultLineMakesAJobTerminalOnReplay) {
  std::map<uint64_t, Job> recovered;
  uint64_t next_id = 0;
  std::unique_ptr<JobJournal> journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  ASSERT_TRUE(SubmitJob(journal.get(), 1, "t1").ok());
  ASSERT_TRUE(journal->AppendState(1, JobState::kRunning).ok());
  JobResult result;
  result.ok = true;
  result.rows = {{"0 1 2", "0.53"}};
  result.scans = 7;
  ASSERT_TRUE(journal->AppendResult(1, result).ok());
  ASSERT_TRUE(journal->AppendState(1, JobState::kDone).ok());
  journal.reset();

  journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  ASSERT_EQ(recovered.count(1), 1u);
  const Job& job = recovered.at(1);
  // Terminal with a journaled result: NOT rewound, nothing re-runs.
  EXPECT_EQ(job.state, JobState::kDone);
  ASSERT_EQ(job.result.rows.size(), 1u);
  EXPECT_EQ(job.result.rows[0].first, "0 1 2");
  EXPECT_EQ(job.result.scans, 7);
}

TEST_F(JournalReplayTest, CompactionDropsOnlyTheOldestTerminalJobs) {
  std::map<uint64_t, Job> recovered;
  uint64_t next_id = 0;
  std::unique_ptr<JobJournal> journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  const size_t total = JobJournal::kMaxTerminalKept + 8;
  JobResult done_result;
  done_result.ok = true;
  for (uint64_t id = 1; id <= total; ++id) {
    ASSERT_TRUE(SubmitJob(journal.get(), id, "t" + std::to_string(id)).ok());
    ASSERT_TRUE(journal->AppendResult(id, done_result).ok());
    ASSERT_TRUE(journal->AppendState(id, JobState::kDone).ok());
  }
  // One live job, newer than everything: must survive regardless of cap.
  ASSERT_TRUE(SubmitJob(journal.get(), total + 1, "live").ok());
  journal.reset();

  journal = Open(&recovered, &next_id);
  ASSERT_NE(journal, nullptr);
  EXPECT_EQ(recovered.size(), JobJournal::kMaxTerminalKept + 1);
  EXPECT_EQ(recovered.count(1), 0u);  // oldest terminal: dropped
  EXPECT_EQ(recovered.count(total), 1u);  // newest terminal: kept
  EXPECT_EQ(recovered.at(total + 1).state, JobState::kQueued);
  EXPECT_EQ(next_id, total + 2);
}

// The end-to-end half: a restart replays the journal, and a client that
// never saw its submit ack resubmits the SAME client+tag — the recovered
// board must absorb it as a dedup, not run the job twice.
class ResubmitAcrossRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/resubmit_restart_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    WorkloadSpec wspec;
    wspec.num_sequences = 60;
    wspec.min_length = 15;
    wspec.max_length = 30;
    wspec.num_planted = 2;
    wspec.planted_symbols_min = 3;
    wspec.planted_symbols_max = 4;
    wspec.seed = 11;
    NoisyWorkload workload = MakeUniformNoiseWorkload(wspec, 0.1);
    db_path_ = dir_ + "/db.nmsq";
    ASSERT_TRUE(
        dbformat::WriteDatabaseFile(db_path_, workload.test.records()).ok);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  JobSpec Spec() const {
    JobSpec spec;
    spec.db_path = db_path_;
    spec.uniform_alpha = 0.1;
    spec.threshold = 0.3;
    spec.max_span = 4;
    spec.sample_size = 60;
    spec.delta = 0.05;
    return spec;
  }

  std::string dir_;
  std::string db_path_;
};

TEST_F(ResubmitAcrossRestartTest, SameTagReattachesToTheRecoveredJob) {
  MiningServer::Options options;
  options.state_dir = dir_ + "/state";
  options.max_running = 0;  // admit-only: the job is journaled, never run
  std::string error;

  uint64_t id = 0;
  {
    MiningServer server;
    ASSERT_TRUE(server.Start(options, &error)) << error;
    std::optional<obs::JsonValue> ack = Ask(server.port(), SubmitLine("alice", "once", Spec()));
    ASSERT_TRUE(ack.has_value());
    ASSERT_TRUE(ack->Get("ok")->bool_value);
    id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
    ASSERT_GT(id, 0u);
    server.Stop();  // abrupt: the queued job survives only in the journal
  }

  options.max_running = 1;  // the reborn server actually runs jobs
  MiningServer reborn;
  ASSERT_TRUE(reborn.Start(options, &error)) << error;
  // The client never saw a terminal state, so it resubmits the same
  // client+tag. At-most-once admission: same id, marked deduped.
  std::optional<obs::JsonValue> again = Ask(reborn.port(), SubmitLine("alice", "once", Spec()));
  ASSERT_TRUE(again.has_value());
  ASSERT_TRUE(again->Get("ok")->bool_value);
  EXPECT_DOUBLE_EQ(again->GetNumber("id", 0.0),
                   static_cast<double>(id));
  EXPECT_NE(again->Get("deduped"), nullptr);

  std::optional<obs::JsonValue> done = Ask(reborn.port(),
      "{\"op\": \"wait\", \"id\": " + std::to_string(id) + "}\n");
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->Get("state")->string_value, "done");
  // Exactly one run: the resubmit attached, it did not clone the job.
  std::optional<obs::JsonValue> board =
      Ask(reborn.port(), "{\"op\": \"jobs\"}\n");
  ASSERT_TRUE(board.has_value());
  EXPECT_DOUBLE_EQ(
      board->Get("board")->Get("counts")->GetNumber("done", -1.0), 1.0);
  reborn.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace nmine
