// MiningServer integration: the in-process half of the chaos drill.
// Exercises the full robustness spine deterministically — typed shedding
// under an undersized queue, idempotent resubmits, per-job fault
// isolation, graceful drain re-queueing an in-flight job, and crash
// recovery (abrupt stop + restart on the same state dir) finishing every
// admitted job with results identical to a solo run. The CI drill repeats
// this across real processes with SIGKILL.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/db/format.h"
#include "nmine/gen/workload.h"
#include "nmine/net/status_server.h"
#include "nmine/obs/json_parse.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/trace.h"
#include "nmine/serve/job.h"
#include "nmine/serve/server.h"

namespace nmine {
namespace serve {
namespace {

/// One request -> one response over a fresh connection (the protocol is
/// stateless per line, so this is all a test needs; `wait` simply keeps
/// the connection open until the job is terminal).
std::optional<std::string> LineRequest(uint16_t port,
                                       const std::string& line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  size_t done = 0;
  while (done < line.size()) {
    ssize_t w = ::send(fd, line.data() + done, line.size() - done, 0);
    if (w <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    done += static_cast<size_t>(w);
  }
  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    buffer.append(chunk, static_cast<size_t>(r));
  }
  ::close(fd);
  size_t nl = buffer.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  return buffer.substr(0, nl);
}

std::optional<obs::JsonValue> Ask(uint16_t port, const std::string& line) {
  std::optional<std::string> response = LineRequest(port, line);
  if (!response.has_value()) return std::nullopt;
  return obs::ParseJson(*response);
}

std::string SubmitLine(const std::string& client, const std::string& tag,
                       const JobSpec& spec) {
  std::string line =
      "{\"op\": \"submit\", \"client\": \"" + client + "\", \"tag\": \"" +
      tag + "\", \"spec\": ";
  spec.AppendJson(&line);
  line.append("}\n");
  return line;
}

class MiningServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/serve_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    WorkloadSpec wspec;
    wspec.num_sequences = 60;
    wspec.min_length = 15;
    wspec.max_length = 30;
    wspec.num_planted = 2;
    wspec.planted_symbols_min = 3;
    wspec.planted_symbols_max = 4;
    wspec.seed = 11;
    NoisyWorkload workload = MakeUniformNoiseWorkload(wspec, 0.1);
    db_path_ = dir_ + "/db.nmsq";
    ASSERT_TRUE(
        dbformat::WriteDatabaseFile(db_path_, workload.test.records()).ok);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  JobSpec QuickSpec() const {
    JobSpec spec;
    spec.db_path = db_path_;
    spec.uniform_alpha = 0.1;
    spec.threshold = 0.3;
    spec.max_span = 4;
    spec.sample_size = 60;
    spec.delta = 0.05;
    return spec;
  }

  MiningServer::Options ServerOptions() const {
    MiningServer::Options options;
    options.state_dir = dir_ + "/state";
    return options;
  }

  /// Waits for job `id` on `port` and returns the parsed response.
  std::optional<obs::JsonValue> Wait(uint16_t port, uint64_t id) {
    return Ask(port,
               "{\"op\": \"wait\", \"id\": " + std::to_string(id) + "}\n");
  }

  static JobResult ResultOf(const obs::JsonValue& response) {
    const obs::JsonValue* payload = response.Get("result");
    EXPECT_NE(payload, nullptr);
    std::optional<JobResult> result = JobResult::FromJson(*payload);
    EXPECT_TRUE(result.has_value());
    return result.value_or(JobResult{});
  }

  std::string dir_;
  std::string db_path_;
};

TEST_F(MiningServerTest, SubmitWaitMatchesASoloRunBitForBit) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;

  std::optional<obs::JsonValue> ack =
      Ask(server.port(), SubmitLine("alice", "t1", QuickSpec()));
  ASSERT_TRUE(ack.has_value());
  ASSERT_TRUE(ack->Get("ok")->bool_value);
  const uint64_t id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
  ASSERT_GT(id, 0u);

  std::optional<obs::JsonValue> done = Wait(server.port(), id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->Get("state")->string_value, "done");
  JobResult via_server = ResultOf(*done);
  ASSERT_TRUE(via_server.ok);

  JobResult solo = RunJob(QuickSpec(), "", nullptr);
  ASSERT_TRUE(solo.ok);
  EXPECT_EQ(via_server.rows, solo.rows);  // preformatted: bit-identity
  EXPECT_EQ(via_server.scans, solo.scans);
  server.Drain();
}

TEST_F(MiningServerTest, FullQueueShedsWithTypedRetryHint) {
  MiningServer::Options options = ServerOptions();
  options.max_running = 0;  // admit-only: the queue fills deterministically
  options.queue_capacity = 2;
  options.shed_retry_after_s = 2.5;
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t shed_before = reg.CounterValue("serve.jobs.shed");

  for (int i = 0; i < 2; ++i) {
    std::optional<obs::JsonValue> ack = Ask(
        server.port(),
        SubmitLine("alice", "tag-" + std::to_string(i), QuickSpec()));
    ASSERT_TRUE(ack.has_value());
    EXPECT_TRUE(ack->Get("ok")->bool_value) << "submit " << i;
  }
  std::optional<obs::JsonValue> shed =
      Ask(server.port(), SubmitLine("alice", "tag-over", QuickSpec()));
  ASSERT_TRUE(shed.has_value());
  EXPECT_FALSE(shed->Get("ok")->bool_value);
  EXPECT_EQ(shed->Get("error")->string_value, "RESOURCE_EXHAUSTED");
  EXPECT_DOUBLE_EQ(shed->GetNumber("retry_after_s", -1.0), 2.5);
  EXPECT_EQ(reg.CounterValue("serve.jobs.shed"), shed_before + 1);

  // A shed job was never journaled: it does not haunt the next restart.
  server.Stop();
  MiningServer reborn;
  ASSERT_TRUE(reborn.Start(options, &error)) << error;
  std::optional<obs::JsonValue> board =
      Ask(reborn.port(), "{\"op\": \"jobs\"}\n");
  ASSERT_TRUE(board.has_value());
  EXPECT_DOUBLE_EQ(
      board->Get("board")->Get("counts")->GetNumber("queued", -1.0), 2.0);
  reborn.Stop();
}

TEST_F(MiningServerTest, ResubmitWithSameTagReattachesToTheSameJob) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;

  std::optional<obs::JsonValue> first =
      Ask(server.port(), SubmitLine("alice", "once", QuickSpec()));
  ASSERT_TRUE(first.has_value());
  const double id = first->GetNumber("id", 0.0);
  std::optional<obs::JsonValue> second =
      Ask(server.port(), SubmitLine("alice", "once", QuickSpec()));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->Get("ok")->bool_value);
  EXPECT_DOUBLE_EQ(second->GetNumber("id", -1.0), id);
  EXPECT_NE(second->Get("deduped"), nullptr);

  // A different client reusing the tag text is NOT deduped.
  std::optional<obs::JsonValue> other =
      Ask(server.port(), SubmitLine("bob", "once", QuickSpec()));
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(other->GetNumber("id", -1.0), id);
  server.Drain();
}

TEST_F(MiningServerTest, JobFaultsAreIsolatedAndTyped) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;

  // Unrecoverable corruption: typed DATA_LOSS failure for this job only.
  JobSpec corrupt = QuickSpec();
  corrupt.fault_plan = "corrupt-from:0";
  corrupt.scan_retries = 1;
  std::optional<obs::JsonValue> ack =
      Ask(server.port(), SubmitLine("alice", "bad", corrupt));
  ASSERT_TRUE(ack.has_value());
  const uint64_t bad_id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
  std::optional<obs::JsonValue> failed = Wait(server.port(), bad_id);
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->Get("state")->string_value, "failed");
  JobResult bad = ResultOf(*failed);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error_code, "DATA_LOSS");

  // An unparseable spec is refused before admission, also typed.
  std::optional<obs::JsonValue> refused = Ask(
      server.port(),
      "{\"op\": \"submit\", \"spec\": {\"db\": \"x\", "
      "\"algorithm\": \"quantum\"}}\n");
  ASSERT_TRUE(refused.has_value());
  EXPECT_FALSE(refused->Get("ok")->bool_value);
  EXPECT_EQ(refused->Get("error")->string_value, "INVALID_ARGUMENT");

  // The server keeps serving healthy jobs afterwards.
  ack = Ask(server.port(), SubmitLine("alice", "good", QuickSpec()));
  ASSERT_TRUE(ack.has_value());
  std::optional<obs::JsonValue> done = Wait(
      server.port(), static_cast<uint64_t>(ack->GetNumber("id", 0.0)));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->Get("state")->string_value, "done");
  server.Drain();
}

TEST_F(MiningServerTest, UnknownJobIsNotFound) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;
  std::optional<obs::JsonValue> r =
      Ask(server.port(), "{\"op\": \"status\", \"id\": 424242}\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->Get("ok")->bool_value);
  EXPECT_EQ(r->Get("error")->string_value, "NOT_FOUND");
  server.Drain();
}

TEST_F(MiningServerTest, AbruptStopThenRestartFinishesEveryAdmittedJob) {
  // Phase 1: admit-only server takes the jobs and "crashes" (abrupt stop
  // journals nothing extra — the journal looks exactly SIGKILL'd).
  MiningServer::Options admit_only = ServerOptions();
  admit_only.max_running = 0;
  uint64_t ids[3];
  {
    MiningServer server;
    std::string error;
    ASSERT_TRUE(server.Start(admit_only, &error)) << error;
    for (int i = 0; i < 3; ++i) {
      JobSpec spec = QuickSpec();
      spec.seed = 42 + static_cast<uint64_t>(i);
      std::optional<obs::JsonValue> ack = Ask(
          server.port(),
          SubmitLine("client-" + std::to_string(i % 2),
                     "job-" + std::to_string(i), spec));
      ASSERT_TRUE(ack.has_value());
      ASSERT_TRUE(ack->Get("ok")->bool_value);
      ids[i] = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
    }
    server.Stop();
  }

  // Phase 2: restart on the same state dir; every admitted job must reach
  // done with the same rows a solo run produces.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t recovered_before = reg.CounterValue("serve.jobs.recovered");
  MiningServer::Options serving = ServerOptions();
  serving.max_running = 2;
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(serving, &error)) << error;
  EXPECT_EQ(reg.CounterValue("serve.jobs.recovered"), recovered_before + 3);

  for (int i = 0; i < 3; ++i) {
    std::optional<obs::JsonValue> done = Wait(server.port(), ids[i]);
    ASSERT_TRUE(done.has_value()) << "job " << ids[i];
    ASSERT_TRUE(done->Get("ok")->bool_value);
    EXPECT_EQ(done->Get("state")->string_value, "done") << "job " << ids[i];
    JobSpec spec = QuickSpec();
    spec.seed = 42 + static_cast<uint64_t>(i);
    JobResult solo = RunJob(spec, "", nullptr);
    EXPECT_EQ(ResultOf(*done).rows, solo.rows) << "job " << ids[i];
  }

  // The idempotency index survived the crash: resubmitting an old tag
  // reattaches instead of re-running.
  std::optional<obs::JsonValue> again = Ask(
      server.port(), SubmitLine("client-0", "job-0", QuickSpec()));
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(again->GetNumber("id", 0.0),
                   static_cast<double>(ids[0]));
  EXPECT_NE(again->Get("deduped"), nullptr);
  server.Drain();
}

TEST_F(MiningServerTest, DrainRequeuesInFlightJobAndRestartResumes) {
  // A seeded flaky fault plan makes the job slow (real retry backoffs)
  // without changing its result, so the drain reliably lands mid-run —
  // after the run checkpoint exists, which the test waits for.
  JobSpec slow = QuickSpec();
  slow.fault_plan = "flaky:0.7, seed:5";
  slow.scan_retries = 30;
  slow.retry_backoff_ms = 40.0;

  MiningServer::Options options = ServerOptions();
  uint64_t id;
  {
    MiningServer server;
    std::string error;
    ASSERT_TRUE(server.Start(options, &error)) << error;
    std::optional<obs::JsonValue> ack =
        Ask(server.port(), SubmitLine("alice", "slow", slow));
    ASSERT_TRUE(ack.has_value());
    ASSERT_TRUE(ack->Get("ok")->bool_value);
    id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));

    // Wait until the job has flushed its first run checkpoint, then pull
    // the plug gracefully while it is still mining.
    const std::string ckpt =
        options.state_dir + "/job-" + std::to_string(id) + ".ckpt";
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!std::filesystem::exists(ckpt) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(std::filesystem::exists(ckpt))
        << "job never flushed a checkpoint";
    server.Drain();
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_GE(reg.CounterValue("serve.jobs.interrupted"), 1);

  // Restart: the job is re-admitted and resumes from its checkpoint.
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  std::optional<obs::JsonValue> done = Wait(server.port(), id);
  ASSERT_TRUE(done.has_value());
  ASSERT_TRUE(done->Get("ok")->bool_value) << "wait failed";
  EXPECT_EQ(done->Get("state")->string_value, "done");
  JobResult resumed = ResultOf(*done);
  ASSERT_TRUE(resumed.ok);
  EXPECT_TRUE(resumed.resumed_from_checkpoint);

  // Bit-identical to an uninterrupted, fault-free solo run.
  JobResult solo = RunJob(QuickSpec(), "", nullptr);
  ASSERT_TRUE(solo.ok);
  EXPECT_EQ(resumed.rows, solo.rows);
  server.Drain();
}

TEST_F(MiningServerTest, TracingBindsEverySpanToTheJobsTraceId) {
  MiningServer::Options options = ServerOptions();
  options.tracing = true;
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  const std::string trace_id = "00c0ffee00c0ffee00c0ffee00c0ffee";
  std::string line =
      "{\"op\": \"submit\", \"client\": \"alice\", \"tag\": \"traced\", "
      "\"trace_id\": \"" +
      trace_id + "\", \"spec\": ";
  QuickSpec().AppendJson(&line);
  line.append("}\n");
  std::optional<obs::JsonValue> ack = Ask(server.port(), line);
  ASSERT_TRUE(ack.has_value());
  ASSERT_TRUE(ack->Get("ok")->bool_value);
  // The ack echoes the binding trace id.
  ASSERT_NE(ack->Get("trace_id"), nullptr);
  EXPECT_EQ(ack->Get("trace_id")->string_value, trace_id);
  const uint64_t id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));

  std::optional<obs::JsonValue> done = Wait(server.port(), id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->Get("state")->string_value, "done");
  ASSERT_NE(done->Get("trace_id"), nullptr);
  EXPECT_EQ(done->Get("trace_id")->string_value, trace_id);

  // Fetch the per-job trace over the protocol and validate it.
  std::optional<obs::JsonValue> traced = Ask(
      server.port(), "{\"op\": \"trace\", \"id\": " + std::to_string(id) +
                         "}\n");
  ASSERT_TRUE(traced.has_value());
  ASSERT_TRUE(traced->Get("ok")->bool_value);
  const obs::JsonValue* payload = traced->Get("trace_json");
  ASSERT_NE(payload, nullptr);
  ASSERT_TRUE(payload->is_string());
  std::optional<obs::JsonValue> trace = obs::ParseJson(payload->string_value);
  ASSERT_TRUE(trace.has_value()) << payload->string_value;
  const obs::JsonValue* events = trace->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  bool saw_root = false;
  bool saw_queue_wait = false;
  bool saw_run = false;
  bool saw_miner_span = false;
  for (const obs::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    // Every span in the job's trace carries the job's trace id.
    ASSERT_NE(e.Get("args"), nullptr);
    ASSERT_NE(e.Get("args")->Get("trace_id"), nullptr);
    EXPECT_EQ(e.Get("args")->Get("trace_id")->string_value, trace_id);
    EXPECT_GE(e.GetNumber("dur", -1.0), 0.0);
    const std::string& name = e.Get("name")->string_value;
    if (name == "job") saw_root = true;
    if (name == "job.queue_wait") saw_queue_wait = true;
    if (name == "job.run") saw_run = true;
    const std::string& cat = e.Get("cat")->string_value;
    if (cat == "mining" || cat == "phase1" || cat == "phase2" ||
        cat == "phase3") {
      saw_miner_span = true;
    }
  }
  // The lifecycle spine: queued -> admitted (job.queue_wait), running ->
  // done (job.run), and the root span covering the whole job.
  EXPECT_TRUE(saw_root);
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_run);
  // Context propagated into the miner: the run's own phase spans
  // attributed to this job.
  EXPECT_TRUE(saw_miner_span);

  // /tracez lists the completed trace with a phase breakdown.
  std::string tracez = server.TracezJson("");
  std::optional<obs::JsonValue> listing = obs::ParseJson(tracez);
  ASSERT_TRUE(listing.has_value()) << tracez;
  EXPECT_EQ(listing->Get("version")->string_value, "nmine.tracez.v1");
  const obs::JsonValue* traces = listing->Get("traces");
  ASSERT_NE(traces, nullptr);
  ASSERT_FALSE(traces->array.empty());
  const obs::JsonValue& row = traces->array[0];
  EXPECT_EQ(row.Get("trace_id")->string_value, trace_id);
  EXPECT_GE(row.GetNumber("run_ms", -1.0), 0.0);
  ASSERT_NE(row.Get("phases_ms"), nullptr);

  // /tracez?id=<hex> serves the same Chrome JSON as the trace op.
  std::optional<obs::JsonValue> by_id =
      obs::ParseJson(server.TracezJson("id=" + trace_id));
  ASSERT_TRUE(by_id.has_value());
  EXPECT_FALSE(by_id->Get("traceEvents")->array.empty());

  server.Drain();
  obs::Tracer::Global().Stop();
}

TEST_F(MiningServerTest, ServerMintsTraceIdWhenClientSendsNone) {
  MiningServer::Options options = ServerOptions();
  options.tracing = true;
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  std::optional<obs::JsonValue> ack =
      Ask(server.port(), SubmitLine("alice", "untraced", QuickSpec()));
  ASSERT_TRUE(ack.has_value());
  ASSERT_TRUE(ack->Get("ok")->bool_value);
  ASSERT_NE(ack->Get("trace_id"), nullptr);
  const std::string& minted = ack->Get("trace_id")->string_value;
  ASSERT_EQ(minted.size(), 32u);
  EXPECT_NE(minted, std::string(32, '0'));

  // A deduping resubmit keeps the original binding, even when the retry
  // carries a different (or no) trace id.
  std::optional<obs::JsonValue> again =
      Ask(server.port(), SubmitLine("alice", "untraced", QuickSpec()));
  ASSERT_TRUE(again.has_value());
  ASSERT_NE(again->Get("trace_id"), nullptr);
  EXPECT_EQ(again->Get("trace_id")->string_value, minted);

  server.Drain();
  obs::Tracer::Global().Stop();
}

TEST_F(MiningServerTest, TraceOpWithoutTracingIsFailedPrecondition) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;
  std::optional<obs::JsonValue> ack =
      Ask(server.port(), SubmitLine("alice", "t", QuickSpec()));
  ASSERT_TRUE(ack.has_value());
  const uint64_t id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
  ASSERT_TRUE(Wait(server.port(), id).has_value());
  std::optional<obs::JsonValue> traced = Ask(
      server.port(), "{\"op\": \"trace\", \"id\": " + std::to_string(id) +
                         "}\n");
  ASSERT_TRUE(traced.has_value());
  EXPECT_FALSE(traced->Get("ok")->bool_value);
  EXPECT_EQ(traced->Get("error")->string_value, "FAILED_PRECONDITION");
  server.Drain();
}

TEST_F(MiningServerTest, JobszReportsLatencyQuantilesAndQueueAges) {
  // Admit-only server: the submitted job stays queued, so the board must
  // report a growing oldest-queued age and count it as the current max
  // queue wait.
  MiningServer::Options options = ServerOptions();
  options.max_running = 0;
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  ASSERT_TRUE(
      Ask(server.port(), SubmitLine("alice", "parked", QuickSpec()))
          .has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  std::optional<obs::JsonValue> board = obs::ParseJson(server.JobszJson());
  ASSERT_TRUE(board.has_value());
  const double oldest = board->GetNumber("oldest_queued_age_ms", -1.0);
  EXPECT_GE(oldest, 25.0);
  EXPECT_GE(board->GetNumber("max_queue_wait_ms", -1.0), oldest);
  const obs::JsonValue* latency = board->Get("latency");
  ASSERT_NE(latency, nullptr);
  ASSERT_NE(latency->Get("queue_wait_ms"), nullptr);
  ASSERT_NE(latency->Get("run_ms"), nullptr);
  EXPECT_GE(latency->Get("run_ms")->GetNumber("p99", -1.0), 0.0);

  // The /healthz queue contributor reports the same staleness data.
  std::vector<std::string> reasons;
  std::optional<obs::JsonValue> queue =
      obs::ParseJson("{" + server.HealthQueueMember(&reasons) + "}");
  ASSERT_TRUE(queue.has_value());
  const obs::JsonValue* member = queue->Get("queue");
  ASSERT_NE(member, nullptr);
  EXPECT_DOUBLE_EQ(member->GetNumber("depth", -1.0), 1.0);
  EXPECT_GE(member->GetNumber("oldest_queued_age_ms", -1.0), 25.0);
  EXPECT_GE(member->GetNumber("max_queue_wait_ms", -1.0),
            member->GetNumber("oldest_queued_age_ms", -1.0));
  EXPECT_TRUE(reasons.empty());  // 30ms is nowhere near stalled
  // End-to-end: the member and ages appear in the process /healthz body.
  std::optional<obs::JsonValue> healthz =
      obs::ParseJson(net::StatusServer::HealthzBody());
  ASSERT_TRUE(healthz.has_value());
  ASSERT_NE(healthz->Get("queue"), nullptr);
  EXPECT_GE(healthz->Get("queue")->GetNumber("oldest_queued_age_ms", -1.0),
            25.0);
  server.Stop();

  // A served job moves the ages back to zero and lands in the latency
  // histograms and the slow-job exemplar table.
  MiningServer::Options serving = ServerOptions();
  serving.state_dir = dir_ + "/state2";
  MiningServer worker;
  ASSERT_TRUE(worker.Start(serving, &error)) << error;
  std::optional<obs::JsonValue> ack =
      Ask(worker.port(), SubmitLine("alice", "served", QuickSpec()));
  ASSERT_TRUE(ack.has_value());
  const uint64_t id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
  std::optional<obs::JsonValue> done = Wait(worker.port(), id);
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->Get("state")->string_value, "done");

  board = obs::ParseJson(worker.JobszJson());
  ASSERT_TRUE(board.has_value());
  EXPECT_DOUBLE_EQ(board->GetNumber("oldest_queued_age_ms", -1.0), 0.0);
  latency = board->Get("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->Get("run_ms")->GetNumber("count", 0.0), 1.0);
  EXPECT_GE(latency->Get("queue_wait_ms")->GetNumber("count", 0.0), 1.0);
  const obs::JsonValue* slowest = board->Get("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_TRUE(slowest->is_array());
  ASSERT_FALSE(slowest->array.empty());
  EXPECT_DOUBLE_EQ(slowest->array[0].GetNumber("id", -1.0),
                   static_cast<double>(id));
  EXPECT_GE(slowest->array[0].GetNumber("run_ms", -1.0), 0.0);
  ASSERT_NE(slowest->array[0].Get("trace_id"), nullptr);
  // Per-job board entries carry their trace ids and terminal latencies.
  const obs::JsonValue* jobs = board->Get("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_FALSE(jobs->array.empty());
  ASSERT_NE(jobs->array[0].Get("trace_id"), nullptr);
  EXPECT_GE(jobs->array[0].GetNumber("run_ms", -1.0), 0.0);
  worker.Drain();
}

}  // namespace
}  // namespace serve
}  // namespace nmine
