// MiningServer integration: the in-process half of the chaos drill.
// Exercises the full robustness spine deterministically — typed shedding
// under an undersized queue, idempotent resubmits, per-job fault
// isolation, graceful drain re-queueing an in-flight job, and crash
// recovery (abrupt stop + restart on the same state dir) finishing every
// admitted job with results identical to a solo run. The CI drill repeats
// this across real processes with SIGKILL.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "nmine/db/format.h"
#include "nmine/gen/workload.h"
#include "nmine/obs/json_parse.h"
#include "nmine/obs/metrics.h"
#include "nmine/serve/job.h"
#include "nmine/serve/server.h"

namespace nmine {
namespace serve {
namespace {

/// One request -> one response over a fresh connection (the protocol is
/// stateless per line, so this is all a test needs; `wait` simply keeps
/// the connection open until the job is terminal).
std::optional<std::string> LineRequest(uint16_t port,
                                       const std::string& line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  size_t done = 0;
  while (done < line.size()) {
    ssize_t w = ::send(fd, line.data() + done, line.size() - done, 0);
    if (w <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    done += static_cast<size_t>(w);
  }
  std::string buffer;
  char chunk[4096];
  while (buffer.find('\n') == std::string::npos) {
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r <= 0) break;
    buffer.append(chunk, static_cast<size_t>(r));
  }
  ::close(fd);
  size_t nl = buffer.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  return buffer.substr(0, nl);
}

std::optional<obs::JsonValue> Ask(uint16_t port, const std::string& line) {
  std::optional<std::string> response = LineRequest(port, line);
  if (!response.has_value()) return std::nullopt;
  return obs::ParseJson(*response);
}

std::string SubmitLine(const std::string& client, const std::string& tag,
                       const JobSpec& spec) {
  std::string line =
      "{\"op\": \"submit\", \"client\": \"" + client + "\", \"tag\": \"" +
      tag + "\", \"spec\": ";
  spec.AppendJson(&line);
  line.append("}\n");
  return line;
}

class MiningServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/serve_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    WorkloadSpec wspec;
    wspec.num_sequences = 60;
    wspec.min_length = 15;
    wspec.max_length = 30;
    wspec.num_planted = 2;
    wspec.planted_symbols_min = 3;
    wspec.planted_symbols_max = 4;
    wspec.seed = 11;
    NoisyWorkload workload = MakeUniformNoiseWorkload(wspec, 0.1);
    db_path_ = dir_ + "/db.nmsq";
    ASSERT_TRUE(
        dbformat::WriteDatabaseFile(db_path_, workload.test.records()).ok);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  JobSpec QuickSpec() const {
    JobSpec spec;
    spec.db_path = db_path_;
    spec.uniform_alpha = 0.1;
    spec.threshold = 0.3;
    spec.max_span = 4;
    spec.sample_size = 60;
    spec.delta = 0.05;
    return spec;
  }

  MiningServer::Options ServerOptions() const {
    MiningServer::Options options;
    options.state_dir = dir_ + "/state";
    return options;
  }

  /// Waits for job `id` on `port` and returns the parsed response.
  std::optional<obs::JsonValue> Wait(uint16_t port, uint64_t id) {
    return Ask(port,
               "{\"op\": \"wait\", \"id\": " + std::to_string(id) + "}\n");
  }

  static JobResult ResultOf(const obs::JsonValue& response) {
    const obs::JsonValue* payload = response.Get("result");
    EXPECT_NE(payload, nullptr);
    std::optional<JobResult> result = JobResult::FromJson(*payload);
    EXPECT_TRUE(result.has_value());
    return result.value_or(JobResult{});
  }

  std::string dir_;
  std::string db_path_;
};

TEST_F(MiningServerTest, SubmitWaitMatchesASoloRunBitForBit) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;

  std::optional<obs::JsonValue> ack =
      Ask(server.port(), SubmitLine("alice", "t1", QuickSpec()));
  ASSERT_TRUE(ack.has_value());
  ASSERT_TRUE(ack->Get("ok")->bool_value);
  const uint64_t id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
  ASSERT_GT(id, 0u);

  std::optional<obs::JsonValue> done = Wait(server.port(), id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->Get("state")->string_value, "done");
  JobResult via_server = ResultOf(*done);
  ASSERT_TRUE(via_server.ok);

  JobResult solo = RunJob(QuickSpec(), "", nullptr);
  ASSERT_TRUE(solo.ok);
  EXPECT_EQ(via_server.rows, solo.rows);  // preformatted: bit-identity
  EXPECT_EQ(via_server.scans, solo.scans);
  server.Drain();
}

TEST_F(MiningServerTest, FullQueueShedsWithTypedRetryHint) {
  MiningServer::Options options = ServerOptions();
  options.max_running = 0;  // admit-only: the queue fills deterministically
  options.queue_capacity = 2;
  options.shed_retry_after_s = 2.5;
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t shed_before = reg.CounterValue("serve.jobs.shed");

  for (int i = 0; i < 2; ++i) {
    std::optional<obs::JsonValue> ack = Ask(
        server.port(),
        SubmitLine("alice", "tag-" + std::to_string(i), QuickSpec()));
    ASSERT_TRUE(ack.has_value());
    EXPECT_TRUE(ack->Get("ok")->bool_value) << "submit " << i;
  }
  std::optional<obs::JsonValue> shed =
      Ask(server.port(), SubmitLine("alice", "tag-over", QuickSpec()));
  ASSERT_TRUE(shed.has_value());
  EXPECT_FALSE(shed->Get("ok")->bool_value);
  EXPECT_EQ(shed->Get("error")->string_value, "RESOURCE_EXHAUSTED");
  EXPECT_DOUBLE_EQ(shed->GetNumber("retry_after_s", -1.0), 2.5);
  EXPECT_EQ(reg.CounterValue("serve.jobs.shed"), shed_before + 1);

  // A shed job was never journaled: it does not haunt the next restart.
  server.Stop();
  MiningServer reborn;
  ASSERT_TRUE(reborn.Start(options, &error)) << error;
  std::optional<obs::JsonValue> board =
      Ask(reborn.port(), "{\"op\": \"jobs\"}\n");
  ASSERT_TRUE(board.has_value());
  EXPECT_DOUBLE_EQ(
      board->Get("board")->Get("counts")->GetNumber("queued", -1.0), 2.0);
  reborn.Stop();
}

TEST_F(MiningServerTest, ResubmitWithSameTagReattachesToTheSameJob) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;

  std::optional<obs::JsonValue> first =
      Ask(server.port(), SubmitLine("alice", "once", QuickSpec()));
  ASSERT_TRUE(first.has_value());
  const double id = first->GetNumber("id", 0.0);
  std::optional<obs::JsonValue> second =
      Ask(server.port(), SubmitLine("alice", "once", QuickSpec()));
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->Get("ok")->bool_value);
  EXPECT_DOUBLE_EQ(second->GetNumber("id", -1.0), id);
  EXPECT_NE(second->Get("deduped"), nullptr);

  // A different client reusing the tag text is NOT deduped.
  std::optional<obs::JsonValue> other =
      Ask(server.port(), SubmitLine("bob", "once", QuickSpec()));
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(other->GetNumber("id", -1.0), id);
  server.Drain();
}

TEST_F(MiningServerTest, JobFaultsAreIsolatedAndTyped) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;

  // Unrecoverable corruption: typed DATA_LOSS failure for this job only.
  JobSpec corrupt = QuickSpec();
  corrupt.fault_plan = "corrupt-from:0";
  corrupt.scan_retries = 1;
  std::optional<obs::JsonValue> ack =
      Ask(server.port(), SubmitLine("alice", "bad", corrupt));
  ASSERT_TRUE(ack.has_value());
  const uint64_t bad_id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
  std::optional<obs::JsonValue> failed = Wait(server.port(), bad_id);
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->Get("state")->string_value, "failed");
  JobResult bad = ResultOf(*failed);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error_code, "DATA_LOSS");

  // An unparseable spec is refused before admission, also typed.
  std::optional<obs::JsonValue> refused = Ask(
      server.port(),
      "{\"op\": \"submit\", \"spec\": {\"db\": \"x\", "
      "\"algorithm\": \"quantum\"}}\n");
  ASSERT_TRUE(refused.has_value());
  EXPECT_FALSE(refused->Get("ok")->bool_value);
  EXPECT_EQ(refused->Get("error")->string_value, "INVALID_ARGUMENT");

  // The server keeps serving healthy jobs afterwards.
  ack = Ask(server.port(), SubmitLine("alice", "good", QuickSpec()));
  ASSERT_TRUE(ack.has_value());
  std::optional<obs::JsonValue> done = Wait(
      server.port(), static_cast<uint64_t>(ack->GetNumber("id", 0.0)));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->Get("state")->string_value, "done");
  server.Drain();
}

TEST_F(MiningServerTest, UnknownJobIsNotFound) {
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(ServerOptions(), &error)) << error;
  std::optional<obs::JsonValue> r =
      Ask(server.port(), "{\"op\": \"status\", \"id\": 424242}\n");
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->Get("ok")->bool_value);
  EXPECT_EQ(r->Get("error")->string_value, "NOT_FOUND");
  server.Drain();
}

TEST_F(MiningServerTest, AbruptStopThenRestartFinishesEveryAdmittedJob) {
  // Phase 1: admit-only server takes the jobs and "crashes" (abrupt stop
  // journals nothing extra — the journal looks exactly SIGKILL'd).
  MiningServer::Options admit_only = ServerOptions();
  admit_only.max_running = 0;
  uint64_t ids[3];
  {
    MiningServer server;
    std::string error;
    ASSERT_TRUE(server.Start(admit_only, &error)) << error;
    for (int i = 0; i < 3; ++i) {
      JobSpec spec = QuickSpec();
      spec.seed = 42 + static_cast<uint64_t>(i);
      std::optional<obs::JsonValue> ack = Ask(
          server.port(),
          SubmitLine("client-" + std::to_string(i % 2),
                     "job-" + std::to_string(i), spec));
      ASSERT_TRUE(ack.has_value());
      ASSERT_TRUE(ack->Get("ok")->bool_value);
      ids[i] = static_cast<uint64_t>(ack->GetNumber("id", 0.0));
    }
    server.Stop();
  }

  // Phase 2: restart on the same state dir; every admitted job must reach
  // done with the same rows a solo run produces.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t recovered_before = reg.CounterValue("serve.jobs.recovered");
  MiningServer::Options serving = ServerOptions();
  serving.max_running = 2;
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(serving, &error)) << error;
  EXPECT_EQ(reg.CounterValue("serve.jobs.recovered"), recovered_before + 3);

  for (int i = 0; i < 3; ++i) {
    std::optional<obs::JsonValue> done = Wait(server.port(), ids[i]);
    ASSERT_TRUE(done.has_value()) << "job " << ids[i];
    ASSERT_TRUE(done->Get("ok")->bool_value);
    EXPECT_EQ(done->Get("state")->string_value, "done") << "job " << ids[i];
    JobSpec spec = QuickSpec();
    spec.seed = 42 + static_cast<uint64_t>(i);
    JobResult solo = RunJob(spec, "", nullptr);
    EXPECT_EQ(ResultOf(*done).rows, solo.rows) << "job " << ids[i];
  }

  // The idempotency index survived the crash: resubmitting an old tag
  // reattaches instead of re-running.
  std::optional<obs::JsonValue> again = Ask(
      server.port(), SubmitLine("client-0", "job-0", QuickSpec()));
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(again->GetNumber("id", 0.0),
                   static_cast<double>(ids[0]));
  EXPECT_NE(again->Get("deduped"), nullptr);
  server.Drain();
}

TEST_F(MiningServerTest, DrainRequeuesInFlightJobAndRestartResumes) {
  // A seeded flaky fault plan makes the job slow (real retry backoffs)
  // without changing its result, so the drain reliably lands mid-run —
  // after the run checkpoint exists, which the test waits for.
  JobSpec slow = QuickSpec();
  slow.fault_plan = "flaky:0.7, seed:5";
  slow.scan_retries = 30;
  slow.retry_backoff_ms = 40.0;

  MiningServer::Options options = ServerOptions();
  uint64_t id;
  {
    MiningServer server;
    std::string error;
    ASSERT_TRUE(server.Start(options, &error)) << error;
    std::optional<obs::JsonValue> ack =
        Ask(server.port(), SubmitLine("alice", "slow", slow));
    ASSERT_TRUE(ack.has_value());
    ASSERT_TRUE(ack->Get("ok")->bool_value);
    id = static_cast<uint64_t>(ack->GetNumber("id", 0.0));

    // Wait until the job has flushed its first run checkpoint, then pull
    // the plug gracefully while it is still mining.
    const std::string ckpt =
        options.state_dir + "/job-" + std::to_string(id) + ".ckpt";
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!std::filesystem::exists(ckpt) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(std::filesystem::exists(ckpt))
        << "job never flushed a checkpoint";
    server.Drain();
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_GE(reg.CounterValue("serve.jobs.interrupted"), 1);

  // Restart: the job is re-admitted and resumes from its checkpoint.
  MiningServer server;
  std::string error;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  std::optional<obs::JsonValue> done = Wait(server.port(), id);
  ASSERT_TRUE(done.has_value());
  ASSERT_TRUE(done->Get("ok")->bool_value) << "wait failed";
  EXPECT_EQ(done->Get("state")->string_value, "done");
  JobResult resumed = ResultOf(*done);
  ASSERT_TRUE(resumed.ok);
  EXPECT_TRUE(resumed.resumed_from_checkpoint);

  // Bit-identical to an uninterrupted, fault-free solo run.
  JobResult solo = RunJob(QuickSpec(), "", nullptr);
  ASSERT_TRUE(solo.ok);
  EXPECT_EQ(resumed.rows, solo.rows);
  server.Drain();
}

}  // namespace
}  // namespace serve
}  // namespace nmine
