// JobJournal: replay fidelity, torn-tail tolerance (the SIGKILL contract),
// running-to-queued rewind, and compaction of terminal jobs.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "nmine/serve/job_journal.h"

namespace nmine {
namespace serve {
namespace {

class JobJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Job is pinned in place (it owns a RunControl), so the helper refills a
  // scratch instance instead of returning one by value.
  const Job& MakeJobValue(uint64_t id, const std::string& client) {
    scratch_.id = id;
    scratch_.client = client;
    scratch_.tag = "tag-" + std::to_string(id);
    scratch_.spec = JobSpec();
    scratch_.spec.db_path = "/data/db.nmsq";
    scratch_.spec.threshold = 0.3;
    scratch_.state = JobState::kQueued;
    scratch_.submit_us = 1000 + static_cast<int64_t>(id);
    return scratch_;
  }

  std::string JournalPath() const { return dir_ + "/jobs.journal"; }

  std::string dir_;
  Job scratch_;
};

TEST_F(JobJournalTest, FreshDirStartsEmpty) {
  std::map<uint64_t, Job> board;
  uint64_t next_id = 0;
  std::string error;
  auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
  ASSERT_NE(journal, nullptr) << error;
  EXPECT_TRUE(board.empty());
  EXPECT_EQ(next_id, 1u);
}

TEST_F(JobJournalTest, ReplaysSubmitsStatesAndResults) {
  {
    std::map<uint64_t, Job> board;
    uint64_t next_id = 0;
    std::string error;
    auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
    ASSERT_NE(journal, nullptr) << error;
    ASSERT_TRUE(journal->AppendSubmit(MakeJobValue(1, "alice")).ok());
    ASSERT_TRUE(journal->AppendSubmit(MakeJobValue(2, "bob")).ok());
    ASSERT_TRUE(journal->AppendState(1, JobState::kRunning).ok());
    JobResult result;
    result.ok = true;
    result.rows = {{"0 1", "0.50000"}};
    result.scans = 2;
    ASSERT_TRUE(journal->AppendResult(1, result).ok());
  }
  std::map<uint64_t, Job> board;
  uint64_t next_id = 0;
  std::string error;
  auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_EQ(board.size(), 2u);
  EXPECT_EQ(next_id, 3u);
  EXPECT_EQ(board[1].state, JobState::kDone);
  EXPECT_EQ(board[1].client, "alice");
  EXPECT_EQ(board[1].tag, "tag-1");
  ASSERT_EQ(board[1].result.rows.size(), 1u);
  EXPECT_EQ(board[1].result.rows[0].first, "0 1");
  EXPECT_EQ(board[2].state, JobState::kQueued);
  EXPECT_DOUBLE_EQ(board[2].spec.threshold, 0.3);
}

TEST_F(JobJournalTest, RunningJobsRewindToQueued) {
  {
    std::map<uint64_t, Job> board;
    uint64_t next_id = 0;
    std::string error;
    auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
    ASSERT_NE(journal, nullptr) << error;
    ASSERT_TRUE(journal->AppendSubmit(MakeJobValue(1, "alice")).ok());
    ASSERT_TRUE(journal->AppendState(1, JobState::kRunning).ok());
    // SIGKILL here: no result line ever lands.
  }
  std::map<uint64_t, Job> board;
  uint64_t next_id = 0;
  std::string error;
  auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_EQ(board.size(), 1u);
  EXPECT_EQ(board[1].state, JobState::kQueued);
}

TEST_F(JobJournalTest, ToleratesTornTrailingLineAtEveryCut) {
  std::string full;
  {
    std::map<uint64_t, Job> board;
    uint64_t next_id = 0;
    std::string error;
    auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
    ASSERT_NE(journal, nullptr) << error;
    ASSERT_TRUE(journal->AppendSubmit(MakeJobValue(1, "alice")).ok());
    ASSERT_TRUE(journal->AppendState(1, JobState::kRunning).ok());
    JobResult result;
    result.ok = false;
    result.error_code = "DATA_LOSS";
    result.message = "torn";
    ASSERT_TRUE(journal->AppendResult(1, result).ok());
    ASSERT_TRUE(journal->AppendSubmit(MakeJobValue(2, "bob")).ok());
    std::ifstream in(JournalPath());
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 0u);
  // The last journaled event is job 2's submit. Truncating anywhere
  // inside it must at worst lose job 2 (whose client never saw an ack),
  // never corrupt job 1's terminal record or crash recovery. Losing only
  // the trailing newline keeps job 2: its JSON was fully durable.
  const size_t last_line_start = full.rfind('\n', full.size() - 2) + 1;
  for (size_t cut = last_line_start; cut <= full.size(); ++cut) {
    const bool json_complete = cut + 1 >= full.size();
    {
      std::ofstream out(JournalPath(),
                        std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    std::map<uint64_t, Job> board;
    uint64_t next_id = 0;
    std::string error;
    auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
    ASSERT_NE(journal, nullptr) << "cut at byte " << cut << ": " << error;
    ASSERT_GE(board.size(), 1u) << "cut at byte " << cut;
    EXPECT_EQ(board[1].state, JobState::kFailed) << "cut at byte " << cut;
    EXPECT_EQ(board[1].result.error_code, "DATA_LOSS");
    EXPECT_EQ(board.count(2), json_complete ? 1u : 0u)
        << "cut at byte " << cut;
  }
}

TEST_F(JobJournalTest, CompactionDropsOldestTerminalJobsOnly) {
  constexpr size_t kExtra = 10;
  {
    std::map<uint64_t, Job> board;
    uint64_t next_id = 0;
    std::string error;
    auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
    ASSERT_NE(journal, nullptr) << error;
    for (uint64_t id = 1; id <= JobJournal::kMaxTerminalKept + kExtra;
         ++id) {
      ASSERT_TRUE(journal->AppendSubmit(MakeJobValue(id, "alice")).ok());
      JobResult result;
      result.ok = true;
      ASSERT_TRUE(journal->AppendResult(id, result).ok());
    }
    // One live job; must always survive compaction.
    ASSERT_TRUE(journal->AppendSubmit(
                    MakeJobValue(JobJournal::kMaxTerminalKept + kExtra + 1,
                                 "bob"))
                    .ok());
  }
  std::map<uint64_t, Job> board;
  uint64_t next_id = 0;
  std::string error;
  auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
  ASSERT_NE(journal, nullptr) << error;
  EXPECT_EQ(board.size(), JobJournal::kMaxTerminalKept + 1);
  // The oldest terminal ids were dropped, the newest kept, and the queued
  // job survived.
  EXPECT_EQ(board.count(1), 0u);
  EXPECT_EQ(board.count(kExtra), 0u);
  EXPECT_EQ(board.count(kExtra + 1), 1u);
  EXPECT_EQ(board.count(JobJournal::kMaxTerminalKept + kExtra + 1), 1u);
  EXPECT_EQ(board[JobJournal::kMaxTerminalKept + kExtra + 1].state,
            JobState::kQueued);
  // next_id keeps counting past everything ever journaled.
  EXPECT_EQ(next_id, JobJournal::kMaxTerminalKept + kExtra + 2);
}

TEST_F(JobJournalTest, CompactedJournalIsSmallerAndStillReplays) {
  {
    std::map<uint64_t, Job> board;
    uint64_t next_id = 0;
    std::string error;
    auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
    ASSERT_NE(journal, nullptr) << error;
    // Many redundant state flips for one job...
    ASSERT_TRUE(journal->AppendSubmit(MakeJobValue(1, "alice")).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(journal->AppendState(1, JobState::kRunning).ok());
      ASSERT_TRUE(journal->AppendState(1, JobState::kQueued).ok());
    }
  }
  const auto before = std::filesystem::file_size(JournalPath());
  {
    std::map<uint64_t, Job> board;
    uint64_t next_id = 0;
    std::string error;
    auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
    ASSERT_NE(journal, nullptr) << error;
  }
  const auto after = std::filesystem::file_size(JournalPath());
  EXPECT_LT(after, before);  // ...squeezed to one submit line on reopen

  std::map<uint64_t, Job> board;
  uint64_t next_id = 0;
  std::string error;
  auto journal = JobJournal::Open(dir_, &board, &next_id, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_EQ(board.size(), 1u);
  EXPECT_EQ(board[1].state, JobState::kQueued);
}

}  // namespace
}  // namespace serve
}  // namespace nmine
