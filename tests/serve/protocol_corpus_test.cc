// Malformed-frame corpus for the server wire protocol. Two layers:
// ParseRequest must reject every corrupt line with a TYPED error (version
// mismatch is FAILED_PRECONDITION, all other garbage INVALID_ARGUMENT —
// never a half-filled Request the server would act on), and a live
// MiningServer fed the same corpus over one connection must answer each
// line and still serve a valid ping afterwards: garbage degrades a reply,
// never the server.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/obs/json_parse.h"
#include "nmine/serve/protocol.h"
#include "nmine/serve/server.h"

namespace nmine {
namespace serve {
namespace {

/// The corpus is shared between the parser-level and socket-level tests.
/// Entries must be newline-free (one frame per line on the wire) and
/// non-empty (the server silently skips blank lines, by design).
struct CorpusCase {
  const char* name;
  std::string line;
  const char* expect_code;
};

std::vector<CorpusCase> Corpus() {
  return {
      {"not json", "this is not json", "INVALID_ARGUMENT"},
      {"truncated object", "{\"op\": \"ping\"", "INVALID_ARGUMENT"},
      {"array not object", "[1, 2, 3]", "INVALID_ARGUMENT"},
      {"bare string", "\"ping\"", "INVALID_ARGUMENT"},
      {"bad utf8 bytes", std::string("{\"op\": \"\xff\xfe\x01\"}"),
       "INVALID_ARGUMENT"},
      {"numeric op", "{\"op\": 7}", "INVALID_ARGUMENT"},
      {"missing op", "{\"id\": 3}", "INVALID_ARGUMENT"},
      {"unknown op", "{\"op\": \"launch\"}", "INVALID_ARGUMENT"},
      {"status without id", "{\"op\": \"status\"}", "INVALID_ARGUMENT"},
      {"wait without id", "{\"op\": \"wait\"}", "INVALID_ARGUMENT"},
      {"trace without id", "{\"op\": \"trace\"}", "INVALID_ARGUMENT"},
      {"submit without spec", "{\"op\": \"submit\", \"client\": \"c\"}",
       "INVALID_ARGUMENT"},
      {"submit with spec missing db",
       "{\"op\": \"submit\", \"spec\": {\"threshold\": 0.3}}",
       "INVALID_ARGUMENT"},
      {"submit with short trace_id",
       "{\"op\": \"submit\", \"trace_id\": \"abc\", "
       "\"spec\": {\"db\": \"/x.nmsq\"}}",
       "INVALID_ARGUMENT"},
      {"future version", "{\"v\": 2, \"op\": \"ping\"}",
       "FAILED_PRECONDITION"},
      {"fractional version", "{\"v\": 1.5, \"op\": \"ping\"}",
       "FAILED_PRECONDITION"},
      {"string version", "{\"v\": \"1\", \"op\": \"ping\"}",
       "FAILED_PRECONDITION"},
  };
}

TEST(ProtocolCorpusTest, EveryCorruptLineFailsWithATypedCode) {
  for (const CorpusCase& c : Corpus()) {
    std::string error;
    std::string code;
    std::optional<Request> request = ParseRequest(c.line, &error, &code);
    EXPECT_FALSE(request.has_value()) << c.name;
    EXPECT_EQ(code, c.expect_code) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
  // The empty line is parser-rejected too (the server filters it earlier).
  std::string error;
  std::string code;
  EXPECT_FALSE(ParseRequest("", &error, &code).has_value());
  EXPECT_EQ(code, "INVALID_ARGUMENT");
}

TEST(ProtocolCorpusTest, ExplicitCurrentVersionStillParses) {
  std::string error;
  std::optional<Request> request =
      ParseRequest("{\"v\": 1, \"op\": \"ping\"}", &error);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_EQ(request->version, kProtocolVersion);
}

/// A blocking line-oriented connection that STAYS OPEN across frames —
/// the wedge test needs garbage and the follow-up ping on one socket.
class PersistentConnection {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool SendLine(const std::string& line) {
    std::string framed = line + "\n";
    size_t done = 0;
    while (done < framed.size()) {
      ssize_t w = ::send(fd_, framed.data() + done, framed.size() - done,
                         MSG_NOSIGNAL);
      if (w <= 0) return false;
      done += static_cast<size_t>(w);
    }
    return true;
  }

  std::optional<std::string> ReadLine() {
    char chunk[4096];
    size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(r));
    }
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  ~PersistentConnection() { Close(); }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class ProtocolCorpusServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/proto_corpus_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    MiningServer::Options options;
    options.state_dir = dir_ + "/state";
    std::string error;
    ASSERT_TRUE(server_.Start(options, &error)) << error;
  }

  void TearDown() override {
    server_.Stop();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  MiningServer server_;
};

TEST_F(ProtocolCorpusServerTest, GarbageNeverWedgesTheConnection) {
  PersistentConnection conn;
  ASSERT_TRUE(conn.Connect(server_.port()));
  for (const CorpusCase& c : Corpus()) {
    ASSERT_TRUE(conn.SendLine(c.line)) << c.name;
    std::optional<std::string> reply = conn.ReadLine();
    ASSERT_TRUE(reply.has_value()) << c.name;
    std::optional<obs::JsonValue> value = obs::ParseJson(*reply);
    ASSERT_TRUE(value.has_value()) << c.name << ": " << *reply;
    EXPECT_FALSE(value->Get("ok")->bool_value) << c.name;
    EXPECT_EQ(value->Get("error")->string_value, c.expect_code) << c.name;
  }
  // The same connection still speaks the protocol after the full corpus.
  ASSERT_TRUE(conn.SendLine("{\"op\": \"ping\"}"));
  std::optional<std::string> pong = conn.ReadLine();
  ASSERT_TRUE(pong.has_value());
  std::optional<obs::JsonValue> value = obs::ParseJson(*pong);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->Get("ok")->bool_value);
}

TEST_F(ProtocolCorpusServerTest, OversizedLineIsSheddedTyped) {
  PersistentConnection flooder;
  ASSERT_TRUE(flooder.Connect(server_.port()));
  // 2 MiB with no newline: the server must refuse to buffer it forever.
  std::string flood(2u << 20, 'a');
  flooder.SendLine(flood);  // the server may close mid-send; that's fine
  std::optional<std::string> reply = flooder.ReadLine();
  if (reply.has_value()) {  // reply is best-effort once the cap trips
    std::optional<obs::JsonValue> value = obs::ParseJson(*reply);
    ASSERT_TRUE(value.has_value());
    EXPECT_FALSE(value->Get("ok")->bool_value);
    EXPECT_EQ(value->Get("error")->string_value, "INVALID_ARGUMENT");
  }
  // The flood cost one connection, not the server: a new one still works.
  PersistentConnection conn;
  ASSERT_TRUE(conn.Connect(server_.port()));
  ASSERT_TRUE(conn.SendLine("{\"op\": \"ping\"}"));
  std::optional<std::string> pong = conn.ReadLine();
  ASSERT_TRUE(pong.has_value());
  std::optional<obs::JsonValue> value = obs::ParseJson(*pong);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->Get("ok")->bool_value);
}

}  // namespace
}  // namespace serve
}  // namespace nmine
