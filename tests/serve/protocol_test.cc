// Wire protocol: request parsing (happy paths, typed rejections), spec and
// result JSON codecs round-tripping exactly — the same codec feeds the wire
// and the job journal, so a drift here is a recovery bug, not a cosmetic
// one.
#include <gtest/gtest.h>

#include "nmine/obs/json_parse.h"
#include "nmine/serve/job.h"
#include "nmine/serve/protocol.h"

namespace nmine {
namespace serve {
namespace {

TEST(ProtocolTest, ParsesPingJobsStatusWait) {
  std::string error;
  std::optional<Request> r = ParseRequest("{\"op\": \"ping\"}", &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->op, "ping");

  r = ParseRequest("{\"op\": \"jobs\"}", &error);
  ASSERT_TRUE(r.has_value()) << error;

  r = ParseRequest("{\"op\": \"status\", \"id\": 7}", &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_TRUE(r->has_job_id);
  EXPECT_EQ(r->job_id, 7u);

  r = ParseRequest("{\"op\": \"wait\", \"id\": 9}", &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->job_id, 9u);
}

TEST(ProtocolTest, ParsesSubmitWithSpec) {
  std::string error;
  std::optional<Request> r = ParseRequest(
      "{\"op\": \"submit\", \"client\": \"c1\", \"tag\": \"t1\", "
      "\"spec\": {\"db\": \"/x.nmsq\", \"algorithm\": \"levelwise\", "
      "\"threshold\": 0.3, \"max_span\": 5, \"deadline_s\": 2.5}}",
      &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->client, "c1");
  EXPECT_EQ(r->tag, "t1");
  ASSERT_TRUE(r->spec.has_value());
  EXPECT_EQ(r->spec->db_path, "/x.nmsq");
  EXPECT_EQ(r->spec->algorithm, "levelwise");
  EXPECT_DOUBLE_EQ(r->spec->threshold, 0.3);
  EXPECT_EQ(r->spec->max_span, 5u);
  EXPECT_DOUBLE_EQ(r->spec->deadline_s, 2.5);
  // Unset members keep CLI defaults.
  EXPECT_EQ(r->spec->metric, "match");
  EXPECT_EQ(r->spec->scan_retries, 2);
}

TEST(ProtocolTest, ParsesTraceOp) {
  std::string error;
  std::optional<Request> r =
      ParseRequest("{\"op\": \"trace\", \"id\": 4}", &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->op, "trace");
  EXPECT_TRUE(r->has_job_id);
  EXPECT_EQ(r->job_id, 4u);
  EXPECT_FALSE(ParseRequest("{\"op\": \"trace\"}", &error).has_value());
}

TEST(ProtocolTest, ParsesSubmitTraceId) {
  std::string error;
  std::optional<Request> r = ParseRequest(
      "{\"op\": \"submit\", \"client\": \"c1\", "
      "\"trace_id\": \"0123456789abcdeffedcba9876543210\", "
      "\"spec\": {\"db\": \"/x.nmsq\"}}",
      &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->trace_id, "0123456789abcdeffedcba9876543210");

  // Absent trace_id is fine (the server mints one).
  r = ParseRequest(
      "{\"op\": \"submit\", \"client\": \"c1\", "
      "\"spec\": {\"db\": \"/x.nmsq\"}}",
      &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_TRUE(r->trace_id.empty());
}

TEST(ProtocolTest, RejectsMalformedTraceId) {
  std::string error;
  // Wrong length / non-hex / all-zero / non-string all get a typed reject.
  EXPECT_FALSE(ParseRequest("{\"op\": \"submit\", \"client\": \"c\", "
                            "\"trace_id\": \"abc\", "
                            "\"spec\": {\"db\": \"/x\"}}",
                            &error)
                   .has_value());
  EXPECT_NE(error.find("trace_id"), std::string::npos);
  EXPECT_FALSE(ParseRequest("{\"op\": \"submit\", \"client\": \"c\", "
                            "\"trace_id\": "
                            "\"zzzz456789abcdeffedcba9876543210\", "
                            "\"spec\": {\"db\": \"/x\"}}",
                            &error)
                   .has_value());
  EXPECT_FALSE(ParseRequest("{\"op\": \"submit\", \"client\": \"c\", "
                            "\"trace_id\": "
                            "\"00000000000000000000000000000000\", "
                            "\"spec\": {\"db\": \"/x\"}}",
                            &error)
                   .has_value());
  EXPECT_FALSE(ParseRequest("{\"op\": \"submit\", \"client\": \"c\", "
                            "\"trace_id\": 7, "
                            "\"spec\": {\"db\": \"/x\"}}",
                            &error)
                   .has_value());
}

TEST(ProtocolTest, UnknownMembersAreIgnoredForCompatibility) {
  // An older server receiving a newer client's request must not choke on
  // members it does not know (this is how trace_id itself shipped).
  std::string error;
  std::optional<Request> r = ParseRequest(
      "{\"op\": \"submit\", \"client\": \"c1\", "
      "\"future_field\": \"x\", \"another\": {\"deep\": [1, 2]}, "
      "\"spec\": {\"db\": \"/x.nmsq\", \"future_knob\": 9}}",
      &error);
  ASSERT_TRUE(r.has_value()) << error;
  EXPECT_EQ(r->client, "c1");
  ASSERT_TRUE(r->spec.has_value());
  EXPECT_EQ(r->spec->db_path, "/x.nmsq");

  r = ParseRequest("{\"op\": \"ping\", \"novel\": true}", &error);
  ASSERT_TRUE(r.has_value()) << error;
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  std::string error;
  EXPECT_FALSE(ParseRequest("not json", &error).has_value());
  EXPECT_FALSE(ParseRequest("[1,2]", &error).has_value());
  EXPECT_FALSE(ParseRequest("{\"op\": \"fly\"}", &error).has_value());
  EXPECT_FALSE(ParseRequest("{\"op\": \"status\"}", &error).has_value());
  EXPECT_FALSE(ParseRequest("{\"op\": \"submit\"}", &error).has_value());
  EXPECT_FALSE(
      ParseRequest("{\"op\": \"submit\", \"spec\": {}}", &error).has_value());
  EXPECT_FALSE(ParseRequest("{\"op\": \"submit\", \"spec\": {\"db\": \"d\", "
                            "\"algorithm\": \"quantum\"}}",
                            &error)
                   .has_value());
  EXPECT_NE(error.find("quantum"), std::string::npos);
  EXPECT_FALSE(ParseRequest("{\"op\": \"submit\", \"spec\": {\"db\": \"d\", "
                            "\"metric\": \"vibes\"}}",
                            &error)
                   .has_value());
}

TEST(ProtocolTest, SpecJsonRoundTripsExactly) {
  JobSpec spec;
  spec.db_path = "/data/db.nmsq";
  spec.algorithm = "toivonen";
  spec.metric = "support";
  spec.matrix_path = "/data/c.txt";
  spec.uniform_alpha = 0.15;
  spec.threshold = 0.42;
  spec.max_span = 7;
  spec.max_gap = 2;
  spec.max_level = 3;
  spec.sample_size = 500;
  spec.delta = 0.01;
  spec.seed = 1234;
  spec.num_threads = 4;
  spec.fault_plan = "flaky:0.5, seed:9";
  spec.scan_retries = 5;
  spec.retry_backoff_ms = 1.5;
  spec.retry_budget = 12;
  spec.deadline_s = 30.0;
  spec.memory_budget = 1 << 20;

  std::string json;
  spec.AppendJson(&json);
  std::optional<obs::JsonValue> value = obs::ParseJson(json);
  ASSERT_TRUE(value.has_value());
  std::string error;
  std::optional<JobSpec> back = JobSpec::FromJson(*value, &error);
  ASSERT_TRUE(back.has_value()) << error;

  EXPECT_EQ(back->db_path, spec.db_path);
  EXPECT_EQ(back->algorithm, spec.algorithm);
  EXPECT_EQ(back->metric, spec.metric);
  EXPECT_EQ(back->matrix_path, spec.matrix_path);
  EXPECT_DOUBLE_EQ(back->uniform_alpha, spec.uniform_alpha);
  EXPECT_DOUBLE_EQ(back->threshold, spec.threshold);
  EXPECT_EQ(back->max_span, spec.max_span);
  EXPECT_EQ(back->max_gap, spec.max_gap);
  EXPECT_EQ(back->max_level, spec.max_level);
  EXPECT_EQ(back->sample_size, spec.sample_size);
  EXPECT_DOUBLE_EQ(back->delta, spec.delta);
  EXPECT_EQ(back->seed, spec.seed);
  EXPECT_EQ(back->num_threads, spec.num_threads);
  EXPECT_EQ(back->fault_plan, spec.fault_plan);
  EXPECT_EQ(back->scan_retries, spec.scan_retries);
  EXPECT_DOUBLE_EQ(back->retry_backoff_ms, spec.retry_backoff_ms);
  EXPECT_EQ(back->retry_budget, spec.retry_budget);
  EXPECT_DOUBLE_EQ(back->deadline_s, spec.deadline_s);
  EXPECT_EQ(back->memory_budget, spec.memory_budget);
}

TEST(ProtocolTest, ResultJsonRoundTripsExactly) {
  JobResult result;
  result.ok = true;
  result.rows = {{"0 1 2", "0.28402"}, {"3 * 4", "-"}};
  result.scans = 7;
  result.truncated = true;
  result.resumed_from_checkpoint = true;

  std::string json;
  result.AppendJson(&json);
  std::optional<obs::JsonValue> value = obs::ParseJson(json);
  ASSERT_TRUE(value.has_value());
  std::optional<JobResult> back = JobResult::FromJson(*value);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->rows, result.rows);
  EXPECT_EQ(back->scans, 7);
  EXPECT_TRUE(back->truncated);
  EXPECT_TRUE(back->resumed_from_checkpoint);

  JobResult failed;
  failed.ok = false;
  failed.error_code = "DATA_LOSS";
  failed.message = "db \"quote\" torn\nbadly";
  json.clear();
  failed.AppendJson(&json);
  value = obs::ParseJson(json);
  ASSERT_TRUE(value.has_value());
  back = JobResult::FromJson(*value);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error_code, "DATA_LOSS");
  EXPECT_EQ(back->message, failed.message);
}

TEST(ProtocolTest, ResponseBuilders) {
  EXPECT_EQ(OkResponse(), "{\"ok\": true}\n");
  EXPECT_EQ(OkResponse(", \"id\": 3"), "{\"ok\": true, \"id\": 3}\n");

  std::string shed = ErrorResponse("RESOURCE_EXHAUSTED", "queue full", 1.5);
  std::optional<obs::JsonValue> value = obs::ParseJson(shed);
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(value->Get("ok")->bool_value);
  EXPECT_EQ(value->Get("error")->string_value, "RESOURCE_EXHAUSTED");
  EXPECT_DOUBLE_EQ(value->GetNumber("retry_after_s", -1.0), 1.5);

  std::string plain = ErrorResponse("NOT_FOUND", "no job 9");
  value = obs::ParseJson(plain);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->Get("retry_after_s"), nullptr);
}

}  // namespace
}  // namespace serve
}  // namespace nmine
