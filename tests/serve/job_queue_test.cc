// BoundedFairQueue: admission bound, round-robin fairness between
// clients, per-client FIFO order, and drain-after-stop semantics.
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/serve/job_queue.h"

namespace nmine {
namespace serve {
namespace {

TEST(JobQueueTest, BoundIsEnforced) {
  BoundedFairQueue queue(3);
  EXPECT_TRUE(queue.TryPush("a", 1));
  EXPECT_TRUE(queue.TryPush("a", 2));
  EXPECT_TRUE(queue.TryPush("b", 3));
  EXPECT_FALSE(queue.TryPush("a", 4));  // full: shed
  EXPECT_FALSE(queue.TryPush("c", 5));  // full for new clients too
  EXPECT_EQ(queue.size(), 3u);

  uint64_t id;
  ASSERT_TRUE(queue.Pop(&id));
  EXPECT_TRUE(queue.TryPush("c", 5));  // slot freed
}

TEST(JobQueueTest, RecoveryBypassesTheBound) {
  BoundedFairQueue queue(1);
  EXPECT_TRUE(queue.TryPush("a", 1));
  queue.PushRecovered("a", 2);
  queue.PushRecovered("b", 3);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(JobQueueTest, RoundRobinsBetweenClientsFifoWithin) {
  BoundedFairQueue queue(16);
  // Client a floods first; b and c each submit one job afterwards.
  for (uint64_t id = 1; id <= 6; ++id) ASSERT_TRUE(queue.TryPush("a", id));
  ASSERT_TRUE(queue.TryPush("b", 100));
  ASSERT_TRUE(queue.TryPush("c", 200));

  std::vector<uint64_t> order;
  uint64_t id;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(queue.Pop(&id));
    order.push_back(id);
  }
  // The flood does not starve b or c: they are served within the first
  // rotation, interleaved with a's FIFO (1, 2, 3, ...).
  std::vector<uint64_t> expected = {1, 100, 200, 2, 3, 4, 5, 6};
  EXPECT_EQ(order, expected);
}

TEST(JobQueueTest, StopDrainsRemainingThenReleases) {
  BoundedFairQueue queue(8);
  ASSERT_TRUE(queue.TryPush("a", 1));
  ASSERT_TRUE(queue.TryPush("a", 2));
  queue.Stop();

  uint64_t id;
  EXPECT_TRUE(queue.Pop(&id));
  EXPECT_EQ(id, 1u);
  EXPECT_TRUE(queue.Pop(&id));
  EXPECT_EQ(id, 2u);
  EXPECT_FALSE(queue.Pop(&id));  // stopped and empty
}

TEST(JobQueueTest, StopWakesABlockedPopper) {
  BoundedFairQueue queue(4);
  std::thread popper([&queue] {
    uint64_t id;
    EXPECT_FALSE(queue.Pop(&id));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Stop();
  popper.join();
}

TEST(JobQueueTest, ConcurrentPushersAndPoppersLoseNothing) {
  BoundedFairQueue queue(1024);
  constexpr int kPerClient = 100;
  std::vector<std::thread> pushers;
  for (int c = 0; c < 4; ++c) {
    pushers.emplace_back([&queue, c] {
      for (int i = 0; i < kPerClient; ++i) {
        ASSERT_TRUE(queue.TryPush("client-" + std::to_string(c),
                                  static_cast<uint64_t>(c * 1000 + i)));
      }
    });
  }
  std::vector<uint64_t> popped;
  std::mutex popped_mutex;
  std::vector<std::thread> poppers;
  for (int p = 0; p < 2; ++p) {
    poppers.emplace_back([&] {
      uint64_t id;
      while (queue.Pop(&id)) {
        std::lock_guard<std::mutex> lock(popped_mutex);
        popped.push_back(id);
      }
    });
  }
  for (std::thread& t : pushers) t.join();
  while (queue.size() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.Stop();
  for (std::thread& t : poppers) t.join();
  EXPECT_EQ(popped.size(), 4u * kPerClient);
}

TEST(JobQueueTest, RetryAfterSFallsBackUntilTwoPopsAreObserved) {
  int64_t clock_us = 0;
  BoundedFairQueue queue(64, [&clock_us] { return clock_us; });
  EXPECT_DOUBLE_EQ(queue.RetryAfterS(2.5), 2.5);  // no pops yet
  ASSERT_TRUE(queue.TryPush("a", 1));
  uint64_t id;
  ASSERT_TRUE(queue.Pop(&id));
  EXPECT_DOUBLE_EQ(queue.RetryAfterS(2.5), 2.5);  // one pop: no interval
}

TEST(JobQueueTest, RetryAfterSIsDepthTimesMeanDrainInterval) {
  int64_t clock_us = 0;
  BoundedFairQueue queue(64, [&clock_us] { return clock_us; });
  for (uint64_t i = 1; i <= 6; ++i) ASSERT_TRUE(queue.TryPush("a", i));
  uint64_t id;
  // Four pops 100 ms apart: the mean drain interval is 0.1 s.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Pop(&id));
    clock_us += 100'000;
  }
  // Two jobs still queued at 0.1 s each: honest hint is 0.2 s, not the
  // static fallback.
  EXPECT_NEAR(queue.RetryAfterS(9.0), 0.2, 1e-9);
}

TEST(JobQueueTest, RetryAfterSClampsBothEnds) {
  int64_t clock_us = 0;
  BoundedFairQueue queue(64, [&clock_us] { return clock_us; });
  for (uint64_t i = 1; i <= 10; ++i) ASSERT_TRUE(queue.TryPush("a", i));
  uint64_t id;
  // Instantaneous pops: estimate 0 is useless, clamp to the floor.
  ASSERT_TRUE(queue.Pop(&id));
  ASSERT_TRUE(queue.Pop(&id));
  EXPECT_DOUBLE_EQ(queue.RetryAfterS(9.0), BoundedFairQueue::kMinRetryAfterS);
  // Glacial drain (mean 50 s per pop, 7 still queued -> 350 s estimate):
  // clamp to the ceiling so clients are never told to vanish for minutes.
  clock_us += 100'000'000;
  ASSERT_TRUE(queue.Pop(&id));
  EXPECT_DOUBLE_EQ(queue.RetryAfterS(9.0), BoundedFairQueue::kMaxRetryAfterS);
}

}  // namespace
}  // namespace serve
}  // namespace nmine
