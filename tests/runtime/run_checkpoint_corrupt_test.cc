// Corrupt-checkpoint corpus: the whole-run checkpoint loader (and its
// Phase-3 adapter) must survive truncation at every byte offset, bad
// magic, garbage sections, and guard mismatches — returning kDataLoss /
// kFailedPrecondition, never crashing and never silently accepting a
// damaged file as complete.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/mining/phase3_checkpoint.h"
#include "nmine/runtime/run_checkpoint.h"
#include "test_util.h"

namespace nmine {
namespace {

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// A representative checkpoint exercising every section: diagnostics,
/// governor state, symbol matches, a sample, resolved and unresolved
/// patterns (with wildcards).
runtime::RunCheckpoint MakeCheckpoint(runtime::RunStage stage) {
  runtime::RunCheckpoint cp;
  cp.stage = stage;
  cp.metric = Metric::kMatch;
  cp.min_threshold = 0.25;
  cp.num_sequences = 80;
  cp.total_symbols = 2400;
  cp.sample_size = 30;
  cp.seed = 3;
  cp.delta = 0.05;
  cp.scans_completed = 2;
  cp.ambiguous_after_sample = 12;
  cp.ambiguous_with_unit_spread = 9;
  cp.accepted_from_sample = 4;
  cp.truncated = true;
  cp.effective_sample_size = 25;
  cp.final_epsilon = 0.19238793;
  cp.symbol_match = {0.5, 0.25, 0.125};
  cp.sample.push_back({7, {0, 1, 2, 1}});
  cp.sample.push_back({21, {2, 2}});
  cp.resolved_frequent.emplace_back(testutil::P({0, 1}), 0.75);
  cp.resolved_frequent.emplace_back(testutil::P({0, -1, 2}), 0.5);
  cp.unresolved.emplace_back(testutil::P({1, 2}), 0.3);
  return cp;
}

/// Guard matching MakeCheckpoint (only guard fields are inspected).
runtime::RunCheckpoint Guard() { return MakeCheckpoint(runtime::RunStage::kPhase3Progress); }

bool SameContents(const runtime::RunCheckpoint& a,
                  const runtime::RunCheckpoint& b) {
  if (a.stage != b.stage || a.scans_completed != b.scans_completed ||
      a.symbol_match != b.symbol_match ||
      a.sample.size() != b.sample.size() ||
      a.resolved_frequent != b.resolved_frequent ||
      a.unresolved != b.unresolved) {
    return false;
  }
  for (size_t i = 0; i < a.sample.size(); ++i) {
    if (a.sample[i].id != b.sample[i].id ||
        a.sample[i].symbols != b.sample[i].symbols) {
      return false;
    }
  }
  return true;
}

class RunCheckpointCorruptTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) const {
    return std::string(::testing::TempDir()) + "/" + name;
  }
};

TEST_F(RunCheckpointCorruptTest, RoundTripEveryStage) {
  const std::string path = Path("roundtrip.ckpt");
  for (runtime::RunStage stage :
       {runtime::RunStage::kPhase1Done, runtime::RunStage::kPhase2Done,
        runtime::RunStage::kPhase3Progress}) {
    runtime::RunCheckpoint cp = MakeCheckpoint(stage);
    ASSERT_TRUE(runtime::WriteRunCheckpoint(path, cp).ok());
    runtime::RunCheckpoint loaded;
    ASSERT_TRUE(runtime::LoadRunCheckpoint(path, Guard(), &loaded).ok())
        << ToString(stage);
    EXPECT_EQ(loaded.stage, stage);
    EXPECT_TRUE(SameContents(cp, loaded)) << ToString(stage);
    EXPECT_EQ(loaded.effective_sample_size, 25u);
    EXPECT_DOUBLE_EQ(loaded.final_epsilon, 0.19238793);
  }
  std::remove(path.c_str());
}

TEST_F(RunCheckpointCorruptTest, TruncationAtEveryByteOffset) {
  const std::string path = Path("truncate_src.ckpt");
  const std::string victim = Path("truncate.ckpt");
  runtime::RunCheckpoint cp =
      MakeCheckpoint(runtime::RunStage::kPhase3Progress);
  ASSERT_TRUE(runtime::WriteRunCheckpoint(path, cp).ok());
  const std::string bytes = ReadBytes(path);
  ASSERT_GT(bytes.size(), 0u);

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteBytes(victim, bytes.substr(0, cut));
    runtime::RunCheckpoint loaded;
    Status s = runtime::LoadRunCheckpoint(victim, Guard(), &loaded);
    if (s.ok()) {
      // The only acceptable OK is a cut that leaves the data complete
      // (e.g. dropping the final newline): the contents must be
      // bit-identical to the original, never silently partial.
      EXPECT_TRUE(SameContents(cp, loaded)) << "cut at byte " << cut;
    } else {
      EXPECT_TRUE(s.code() == StatusCode::kDataLoss ||
                  s.code() == StatusCode::kFailedPrecondition)
          << "cut at byte " << cut << ": " << s.ToString();
    }
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST_F(RunCheckpointCorruptTest, BadMagicAndGarbageSections) {
  const std::string path = Path("garbage.ckpt");
  runtime::RunCheckpoint ignored;

  const std::vector<std::string> corpus = {
      "",                                         // empty file
      "\n",                                       // blank line
      "nmine-phase3-checkpoint v1\n",             // legacy/foreign magic
      "nmine-run-checkpoint v2\nstage phase3\n",  // future version
      "nmine-run-checkpoint v1\n",                // header only
      "nmine-run-checkpoint v1\nstage phase9\n",  // unknown stage
      "nmine-run-checkpoint v1\nstage phase3\nmetric mojo\n",
      "nmine-run-checkpoint v1\nstage phase3\nmetric match\nthreshold x\n",
      "nmine-run-checkpoint v1\nstage phase3\nmetric match\n"
      "threshold 0.25\ndb 80 2400\nsampling 30 3 0.05\nscans -4\n",
      std::string(1 << 16, 'A'),                  // a wall of noise
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    WriteBytes(path, corpus[i]);
    Status s = runtime::LoadRunCheckpoint(path, Guard(), &ignored);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss) << "corpus entry " << i;
  }
  std::remove(path.c_str());
}

TEST_F(RunCheckpointCorruptTest, EveryGuardFieldIsEnforced) {
  const std::string path = Path("guards.ckpt");
  ASSERT_TRUE(
      runtime::WriteRunCheckpoint(
          path, MakeCheckpoint(runtime::RunStage::kPhase2Done))
          .ok());
  runtime::RunCheckpoint ignored;
  ASSERT_TRUE(runtime::LoadRunCheckpoint(path, Guard(), &ignored).ok());

  std::vector<runtime::RunCheckpoint> mismatches(7, Guard());
  mismatches[0].metric = Metric::kSupport;
  mismatches[1].min_threshold = 0.5;
  mismatches[2].num_sequences = 81;
  mismatches[3].total_symbols = 2401;
  mismatches[4].sample_size = 31;
  mismatches[5].seed = 4;
  mismatches[6].delta = 0.01;
  for (size_t i = 0; i < mismatches.size(); ++i) {
    Status s = runtime::LoadRunCheckpoint(path, mismatches[i], &ignored);
    EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition)
        << "guard field " << i;
  }
  std::remove(path.c_str());
}

TEST_F(RunCheckpointCorruptTest, MissingFileIsNotFound) {
  runtime::RunCheckpoint ignored;
  Status s = runtime::LoadRunCheckpoint(Path("does_not_exist.ckpt"), Guard(),
                                        &ignored);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(RunCheckpointCorruptTest, Phase3AdapterSurvivesTheSameCorpus) {
  const std::string path = Path("adapter.ckpt");
  // Write via the adapter, truncate at every offset, load via the adapter.
  Phase3Checkpoint cp;
  cp.metric = Metric::kMatch;
  cp.min_threshold = 0.25;
  cp.num_sequences = 80;
  cp.total_symbols = 2400;
  cp.scans_completed = 3;
  cp.symbol_match = {0.5, 0.25};
  cp.resolved_frequent.emplace_back(testutil::P({0, 1}), 0.75);
  cp.unresolved.emplace_back(testutil::P({1}), 0.3);
  ASSERT_TRUE(WritePhase3Checkpoint(path, cp).ok());

  Phase3Checkpoint expected;
  expected.metric = Metric::kMatch;
  expected.min_threshold = 0.25;
  expected.num_sequences = 80;
  expected.total_symbols = 2400;

  const std::string bytes = ReadBytes(path);
  const std::string victim = Path("adapter_cut.ckpt");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteBytes(victim, bytes.substr(0, cut));
    Phase3Checkpoint loaded;
    Status s = LoadPhase3Checkpoint(victim, expected, &loaded);
    if (s.ok()) {
      EXPECT_EQ(loaded.resolved_frequent, cp.resolved_frequent)
          << "cut at byte " << cut;
      EXPECT_EQ(loaded.unresolved, cp.unresolved) << "cut at byte " << cut;
    } else {
      EXPECT_TRUE(s.code() == StatusCode::kDataLoss ||
                  s.code() == StatusCode::kFailedPrecondition)
          << "cut at byte " << cut << ": " << s.ToString();
    }
  }
  // Guard mismatch through the adapter.
  Phase3Checkpoint other = expected;
  other.num_sequences = 79;
  Phase3Checkpoint ignored;
  EXPECT_EQ(LoadPhase3Checkpoint(path, other, &ignored).code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST_F(RunCheckpointCorruptTest, SigtermMidWriteNeverTearsTheCheckpoint) {
  // The atomic-rename contract under an ill-timed SIGTERM/SIGKILL: the
  // writer stages the new checkpoint at `path + ".tmp"` and renames only
  // after a full flush. Dying at ANY point of the staged write must leave
  // the previous checkpoint at `path` fully loadable — simulated here by
  // materializing every prefix of the new bytes into the .tmp path.
  const std::string path = Path("sigterm.ckpt");
  runtime::RunCheckpoint old_cp =
      MakeCheckpoint(runtime::RunStage::kPhase2Done);
  ASSERT_TRUE(runtime::WriteRunCheckpoint(path, old_cp).ok());

  runtime::RunCheckpoint new_cp =
      MakeCheckpoint(runtime::RunStage::kPhase3Progress);
  new_cp.scans_completed = 9;
  const std::string tmp = Path("sigterm_new.ckpt");
  ASSERT_TRUE(runtime::WriteRunCheckpoint(tmp, new_cp).ok());
  const std::string new_bytes = ReadBytes(tmp);
  ASSERT_GT(new_bytes.size(), 0u);
  std::remove(tmp.c_str());

  for (size_t cut = 0; cut <= new_bytes.size(); ++cut) {
    WriteBytes(path + ".tmp", new_bytes.substr(0, cut));
    runtime::RunCheckpoint loaded;
    ASSERT_TRUE(runtime::LoadRunCheckpoint(path, Guard(), &loaded).ok())
        << "torn .tmp of " << cut << " bytes leaked into the checkpoint";
    EXPECT_EQ(loaded.stage, runtime::RunStage::kPhase2Done)
        << "cut at byte " << cut;
    EXPECT_TRUE(SameContents(old_cp, loaded)) << "cut at byte " << cut;
  }

  // Resume-after-restart: the rerun overwrites the stale .tmp and lands
  // the new checkpoint; the next load sees the new state, whole.
  ASSERT_TRUE(runtime::WriteRunCheckpoint(path, new_cp).ok());
  runtime::RunCheckpoint loaded;
  ASSERT_TRUE(runtime::LoadRunCheckpoint(path, Guard(), &loaded).ok());
  EXPECT_EQ(loaded.stage, runtime::RunStage::kPhase3Progress);
  EXPECT_EQ(loaded.scans_completed, 9u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace nmine
