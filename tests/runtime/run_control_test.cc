// RunControl semantics: cooperative cancellation, monotonic deadlines, and
// their integration with the exec layer (a stopped run claims no new work
// and callers observe a typed status, never garbage accumulation).
#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/exec/parallel_for.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/runtime/run_control.h"
#include "test_util.h"

namespace nmine {
namespace {

TEST(RunControlTest, FreshControlAllowsEverything) {
  runtime::RunControl run;
  EXPECT_FALSE(run.cancel_requested());
  EXPECT_FALSE(run.has_deadline());
  EXPECT_FALSE(run.StopRequested());
  EXPECT_TRUE(run.Check().ok());
  EXPECT_TRUE(std::isinf(run.RemainingSeconds()));
  EXPECT_GT(run.RemainingSeconds(), 0.0);
}

TEST(RunControlTest, CancelStopsTheRun) {
  runtime::RunControl run;
  run.RequestCancel();
  EXPECT_TRUE(run.cancel_requested());
  EXPECT_TRUE(run.StopRequested());
  EXPECT_EQ(run.Check().code(), StatusCode::kCancelled);
  run.RequestCancel();  // idempotent
  EXPECT_EQ(run.Check().code(), StatusCode::kCancelled);
}

TEST(RunControlTest, ExpiredDeadlineStopsTheRun) {
  runtime::RunControl run;
  run.SetDeadlineAfter(-1.0);  // non-positive: expires immediately
  EXPECT_TRUE(run.has_deadline());
  EXPECT_TRUE(run.StopRequested());
  EXPECT_EQ(run.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LE(run.RemainingSeconds(), 0.0);
}

TEST(RunControlTest, FutureDeadlineDoesNotStopTheRun) {
  runtime::RunControl run;
  run.SetDeadlineAfter(3600.0);
  EXPECT_TRUE(run.has_deadline());
  EXPECT_FALSE(run.StopRequested());
  EXPECT_TRUE(run.Check().ok());
  EXPECT_GT(run.RemainingSeconds(), 3500.0);
  EXPECT_LE(run.RemainingSeconds(), 3600.0);
}

TEST(RunControlTest, CancellationWinsOverDeadline) {
  runtime::RunControl run;
  run.SetDeadlineAfter(-1.0);
  run.RequestCancel();
  EXPECT_EQ(run.Check().code(), StatusCode::kCancelled);
}

TEST(RunControlTest, ClearDeadlineDisarms) {
  runtime::RunControl run;
  run.SetDeadlineAfter(-1.0);
  ASSERT_TRUE(run.StopRequested());
  run.ClearDeadline();
  EXPECT_FALSE(run.has_deadline());
  EXPECT_FALSE(run.StopRequested());
  EXPECT_TRUE(run.Check().ok());
}

TEST(RunControlTest, ResetClearsEverything) {
  runtime::RunControl run;
  run.RequestCancel();
  run.SetDeadlineAfter(-1.0);
  run.Reset();
  EXPECT_FALSE(run.cancel_requested());
  EXPECT_FALSE(run.has_deadline());
  EXPECT_TRUE(run.Check().ok());
}

TEST(RunControlTest, NullPointerHelpersAreNoOps) {
  EXPECT_FALSE(runtime::StopRequested(nullptr));
  EXPECT_TRUE(runtime::CheckRun(nullptr).ok());
  runtime::RunControl run;
  EXPECT_FALSE(runtime::StopRequested(&run));
  run.RequestCancel();
  EXPECT_TRUE(runtime::StopRequested(&run));
  EXPECT_EQ(runtime::CheckRun(&run).code(), StatusCode::kCancelled);
}

TEST(RunControlTest, StoppedParallelForClaimsNoNewIndices) {
  runtime::RunControl run;
  run.RequestCancel();
  std::atomic<int> calls{0};
  // Serial path: a pre-cancelled run does zero iterations.
  exec::ParallelFor(1, 1000, [&](size_t) { ++calls; }, &run);
  EXPECT_EQ(calls.load(), 0);
  // Parallel path: workers observe the stop before claiming indices.
  exec::ParallelFor(4, 1000, [&](size_t) { ++calls; }, &run);
  EXPECT_EQ(calls.load(), 0);
  // Null run: everything executes.
  exec::ParallelFor(4, 100, [&](size_t) { ++calls; }, nullptr);
  EXPECT_EQ(calls.load(), 100);
}

TEST(RunControlTest, CancelledCountRefusesToChargeAScan) {
  InMemorySequenceDatabase db = testutil::Figure4Database();
  CompatibilityMatrix c = testutil::Figure2Matrix();
  std::vector<Pattern> patterns = {testutil::P({0, 1}), testutil::P({1})};

  runtime::RunControl run;
  run.RequestCancel();
  exec::ExecPolicy exec;
  exec.run = &run;

  const int64_t scans_before = db.scan_count();
  std::vector<double> values;
  Status s = TryCountMatches(db, c, patterns, &values, exec);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // The pre-scan check refuses to charge a scan for a stopped run.
  EXPECT_EQ(db.scan_count(), scans_before);

  run.Reset();
  s = TryCountMatches(db, c, patterns, &values, exec);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.scan_count(), scans_before + 1);
  EXPECT_EQ(values.size(), patterns.size());
}

}  // namespace
}  // namespace nmine
