// Cancellation / deadline determinism: a run cancelled in the middle of
// any phase fails closed with kCancelled, flushes its whole-run checkpoint,
// and a resumed run produces bit-identical frequent patterns, match values,
// and border — with the cumulative charged scans equal to an uninterrupted
// run's, at one and at four threads. Cancelled scans are never recorded in
// a checkpoint (their accumulation was discarded), so the resumed run
// replays them and the paper's cost metric stays honest.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/db/sequence_database.h"
#include "nmine/gen/workload.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/depth_first_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/toivonen_miner.h"
#include "nmine/runtime/run_control.h"
#include "test_util.h"

namespace nmine {
namespace {

/// Decorator that requests cooperative cancellation when a chosen scan
/// starts (after_records == 0) or after delivering `after_records` records
/// of that scan — simulating a SIGINT/SIGTERM arriving mid-pass.
class CancellingDatabase : public SequenceDatabase {
 public:
  CancellingDatabase(const SequenceDatabase* inner, runtime::RunControl* run,
                     int cancel_at_scan, int after_records)
      : inner_(inner),
        run_(run),
        cancel_at_scan_(cancel_at_scan),
        after_records_(after_records) {}

  size_t NumSequences() const override { return inner_->NumSequences(); }
  uint64_t TotalSymbols() const override { return inner_->TotalSymbols(); }

  Status Scan(const Visitor& visitor,
              const RestartFn& restart) const override {
    CountScan();
    const int scan = scans_started_++;
    if (scan == cancel_at_scan_ && after_records_ == 0) {
      run_->RequestCancel();
    }
    int delivered = 0;
    return inner_->Scan(
        [&](const SequenceRecord& rec) {
          if (scan == cancel_at_scan_ && after_records_ > 0 &&
              ++delivered == after_records_) {
            run_->RequestCancel();
          }
          visitor(rec);
        },
        restart);
  }

 private:
  const SequenceDatabase* inner_;
  runtime::RunControl* run_;
  int cancel_at_scan_;
  int after_records_;
  mutable int scans_started_ = 0;
};

class CancelResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec spec;
    spec.num_sequences = 80;
    spec.min_length = 20;
    spec.max_length = 40;
    spec.num_planted = 2;
    spec.planted_symbols_min = 4;
    spec.planted_symbols_max = 6;
    spec.seed = 77;
    workload_ = MakeUniformNoiseWorkload(spec, 0.1);
  }

  MinerOptions Options() const {
    MinerOptions o;
    o.min_threshold = 0.25;
    o.space.max_span = 6;
    o.sample_size = 30;
    o.delta = 0.05;
    o.seed = 3;
    o.max_counters_per_scan = 4;  // forces several Phase-3 probe scans
    return o;
  }

  NoisyWorkload workload_;
};

TEST_F(CancelResumeTest, CancelDuringEachPhaseResumesBitIdentical) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    MinerOptions base = Options();
    base.num_threads = threads;
    MiningResult clean =
        BorderCollapseMiner(Metric::kMatch, base)
            .Mine(workload_.test, workload_.matrix);
    ASSERT_TRUE(clean.ok()) << clean.status.ToString();
    // Scan 0 is Phase 1; scans 1.. are Phase-3 probes. We need at least
    // two probe scans so the mid-Phase-3 cancel finds a checkpoint.
    ASSERT_GE(clean.scans, 3) << "workload collapses in a single probe scan";

    struct CancelPoint {
      const char* phase;
      int scan;           // which scan triggers the cancel
      int after_records;  // 0 = at scan start, else mid-scan
    };
    const std::vector<CancelPoint> points = {
        {"phase1", 0, 10},                             // mid Phase-1 scan
        {"phase2", 1, 0},                              // right after Phase 2
        {"phase3", static_cast<int>(clean.scans) - 1, 5},  // deep in Phase 3
    };

    for (const CancelPoint& pt : points) {
      SCOPED_TRACE(std::string(pt.phase) + " threads=" +
                   std::to_string(threads));
      const std::string ckpt = std::string(::testing::TempDir()) +
                               "/cancel_" + pt.phase + "_t" +
                               std::to_string(threads) + ".ckpt";
      std::remove(ckpt.c_str());

      runtime::RunControl run;
      MinerOptions options = base;
      options.run_checkpoint_path = ckpt;
      options.run_control = &run;
      BorderCollapseMiner miner(Metric::kMatch, options);

      CancellingDatabase db(&workload_.test, &run, pt.scan,
                            pt.after_records);
      MiningResult interrupted = miner.Mine(db, workload_.matrix);
      ASSERT_FALSE(interrupted.ok());
      EXPECT_EQ(interrupted.status.code(), StatusCode::kCancelled);
      // Fail-closed: never a silently-partial pattern set.
      EXPECT_TRUE(interrupted.frequent.ToSortedVector().empty());
      EXPECT_TRUE(interrupted.border.ToSortedVector().empty());

      // Resume with the same options against the healthy database.
      run.Reset();
      MiningResult resumed = miner.Mine(workload_.test, workload_.matrix);
      ASSERT_TRUE(resumed.ok()) << resumed.status.ToString();
      EXPECT_EQ(clean.frequent.ToSortedVector(),
                resumed.frequent.ToSortedVector());
      EXPECT_EQ(clean.border.ToSortedVector(),
                resumed.border.ToSortedVector());
      // Match values are bit-identical (the checkpoint stores %.17g
      // doubles; sample-accepted estimates replay from the same sample).
      EXPECT_EQ(clean.values, resumed.values);
      // Cumulative charged scans: checkpointed scans plus the resumed
      // run's remaining work equal the uninterrupted total — a cancelled
      // scan is discarded, not checkpointed, and replayed on resume.
      EXPECT_EQ(resumed.scans, clean.scans);
      // Success removes the checkpoint.
      EXPECT_FALSE(std::ifstream(ckpt).good());
    }
  }
}

TEST_F(CancelResumeTest, ExpiredDeadlineFailsBeforeChargingAnyScan) {
  runtime::RunControl run;
  run.SetDeadlineAfter(-1.0);
  MinerOptions options = Options();
  options.run_control = &run;
  const int64_t scans_before = workload_.test.scan_count();
  MiningResult r = BorderCollapseMiner(Metric::kMatch, options)
                       .Mine(workload_.test, workload_.matrix);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.frequent.ToSortedVector().empty());
  EXPECT_EQ(workload_.test.scan_count(), scans_before);
}

TEST_F(CancelResumeTest, EveryMinerFailsClosedWhenPreCancelled) {
  runtime::RunControl run;
  run.RequestCancel();
  MinerOptions options = Options();
  options.run_control = &run;
  const CompatibilityMatrix& c = workload_.matrix;

  std::vector<std::pair<std::string, MiningResult>> runs;
  runs.emplace_back("levelwise", LevelwiseMiner(Metric::kMatch, options)
                                     .Mine(workload_.test, c));
  runs.emplace_back("collapse", BorderCollapseMiner(Metric::kMatch, options)
                                    .Mine(workload_.test, c));
  runs.emplace_back("maxminer",
                    MaxMiner(Metric::kMatch, options).Mine(workload_.test, c));
  runs.emplace_back("toivonen", ToivonenMiner(Metric::kMatch, options)
                                    .Mine(workload_.test, c));
  runs.emplace_back("depthfirst", DepthFirstMiner(Metric::kMatch, options)
                                      .Mine(workload_.test, c));
  for (const auto& [name, r] : runs) {
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << name;
    EXPECT_TRUE(r.frequent.ToSortedVector().empty()) << name;
    EXPECT_TRUE(r.border.ToSortedVector().empty()) << name;
    EXPECT_TRUE(r.values.empty()) << name;
  }
}

}  // namespace
}  // namespace nmine
