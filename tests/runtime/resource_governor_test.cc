// ResourceGovernor: byte accounting, the degradation ladder (probe-batch
// shrink, then sample shrink, then kResourceExhausted), and the end-to-end
// guarantee that a budget-constrained run degrades cost, never results.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/gen/workload.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/governed_count.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/toivonen_miner.h"
#include "nmine/obs/metrics.h"
#include "nmine/runtime/resource_governor.h"
#include "nmine/runtime/run_control.h"
#include "test_util.h"

namespace nmine {
namespace {

TEST(ResourceGovernorTest, UnlimitedBudgetAdmitsEverything) {
  runtime::ResourceGovernor g(0);
  EXPECT_TRUE(g.unlimited());
  EXPECT_TRUE(g.Charge("anything", SIZE_MAX / 2).ok());
  EXPECT_EQ(g.charged_bytes(), 0u);  // unlimited: nothing tracked
  EXPECT_EQ(g.AdmitBatch(1000, 1 << 20), 1000u);
  EXPECT_EQ(g.AdmitSample(50, 1 << 30, 1), 50u);
  EXPECT_EQ(g.degradation_steps(), 0);
}

TEST(ResourceGovernorTest, ChargeAndReleaseAccounting) {
  runtime::ResourceGovernor g(1000);
  EXPECT_FALSE(g.unlimited());
  EXPECT_EQ(g.RemainingBytes(), 1000u);
  EXPECT_TRUE(g.Charge("a", 600).ok());
  EXPECT_EQ(g.charged_bytes(), 600u);
  EXPECT_EQ(g.RemainingBytes(), 400u);
  Status s = g.Charge("b", 500);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.charged_bytes(), 600u);  // failed charge is not applied
  g.Release(600);
  EXPECT_EQ(g.charged_bytes(), 0u);
  EXPECT_TRUE(g.Charge("b", 500).ok());
  g.Release(SIZE_MAX);  // clamped at zero, never underflows
  EXPECT_EQ(g.charged_bytes(), 0u);
}

TEST(ResourceGovernorTest, AdmitBatchShrinksThenExhausts) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t shrinks_before =
      reg.CounterValue("governor.probe_batch_shrinks");
  const int64_t exhausted_before = reg.CounterValue("governor.exhausted");

  runtime::ResourceGovernor g(1000);
  // Fits outright: no degradation.
  EXPECT_EQ(g.AdmitBatch(10, 100), 10u);
  EXPECT_EQ(g.degradation_steps(), 0);
  // Does not fit: shrunk to what the remaining budget holds.
  EXPECT_EQ(g.AdmitBatch(100, 100), 10u);
  EXPECT_EQ(g.degradation_steps(), 1);
  // The step is counted once per run, the shrink counter every time.
  EXPECT_EQ(g.AdmitBatch(100, 100), 10u);
  EXPECT_EQ(g.degradation_steps(), 1);
  EXPECT_EQ(reg.CounterValue("governor.probe_batch_shrinks") - shrinks_before,
            2);
  // Not even one counter fits: 0, and the exhaustion is counted.
  EXPECT_EQ(g.AdmitBatch(10, 2000), 0u);
  EXPECT_EQ(reg.CounterValue("governor.exhausted") - exhausted_before, 1);
}

TEST(ResourceGovernorTest, AdmitSampleShrinksProRata) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t shrinks_before = reg.CounterValue("governor.sample_shrinks");

  // Full fit: everything admitted and charged.
  runtime::ResourceGovernor fits(1000);
  EXPECT_EQ(fits.AdmitSample(10, 800, 1), 10u);
  EXPECT_EQ(fits.charged_bytes(), 800u);
  EXPECT_EQ(fits.degradation_steps(), 0);

  // Binding budget: the kept prefix is pro-rata to HALF the remaining
  // bytes (the other half stays free for counting batches).
  runtime::ResourceGovernor binds(400);
  EXPECT_EQ(binds.AdmitSample(10, 800, 1), 2u);  // (400/2) / (800/10)
  EXPECT_EQ(binds.charged_bytes(), 160u);
  EXPECT_EQ(binds.degradation_steps(), 1);
  EXPECT_EQ(reg.CounterValue("governor.sample_shrinks") - shrinks_before, 1);

  // Below the floor: refused outright.
  runtime::ResourceGovernor tiny(10);
  EXPECT_EQ(tiny.AdmitSample(10, 800, 2), 0u);
}

TEST(GovernedCountTest, UnlimitedGovernorIsASingleCall) {
  std::vector<Pattern> patterns = {testutil::P({0}), testutil::P({1}),
                                   testutil::P({2})};
  int calls = 0;
  BatchCountFn count = [&calls](const std::vector<Pattern>& batch,
                                std::vector<double>* values) {
    ++calls;
    values->assign(batch.size(), static_cast<double>(batch.size()));
    return Status::Ok();
  };
  std::vector<double> values;
  runtime::ResourceGovernor unlimited(0);
  EXPECT_TRUE(
      GovernedCount(patterns, &unlimited, nullptr, count, &values).ok());
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(values.size(), 3u);
  // Null governor behaves the same.
  calls = 0;
  EXPECT_TRUE(GovernedCount(patterns, nullptr, nullptr, count, &values).ok());
  EXPECT_EQ(calls, 1);
}

TEST(GovernedCountTest, BindingBudgetSplitsBatchesInOrder) {
  std::vector<Pattern> patterns;
  for (int i = 0; i < 7; ++i) patterns.push_back(testutil::P({i % 3}));
  const size_t per = CounterBytes(patterns[0]);

  // Budget for exactly 2 counters per batch: 7 patterns -> 4 calls.
  runtime::ResourceGovernor g(2 * per);
  int calls = 0;
  BatchCountFn count = [&calls](const std::vector<Pattern>& batch,
                                std::vector<double>* values) {
    values->clear();
    for (const Pattern& p : batch) {
      values->push_back(static_cast<double>(p.NumSymbols()) +
                        static_cast<double>(calls));
    }
    ++calls;
    return Status::Ok();
  };
  std::vector<double> values;
  ASSERT_TRUE(GovernedCount(patterns, &g, nullptr, count, &values).ok());
  EXPECT_EQ(calls, 4);  // ceil(7 / 2)
  ASSERT_EQ(values.size(), patterns.size());
  // Values are concatenated in input order: entry i was produced by batch
  // i/2, so the call index embedded above must match.
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], 1.0 + static_cast<double>(i / 2)) << i;
  }
}

TEST(GovernedCountTest, ImpossibleBudgetFailsTyped) {
  std::vector<Pattern> patterns = {testutil::P({0, 1, 2})};
  runtime::ResourceGovernor g(1);  // cannot hold any counter
  int calls = 0;
  BatchCountFn count = [&calls](const std::vector<Pattern>&,
                                std::vector<double>*) {
    ++calls;
    return Status::Ok();
  };
  std::vector<double> values;
  Status s = GovernedCount(patterns, &g, nullptr, count, &values);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 0);
}

TEST(GovernedCountTest, CancelledRunStopsBetweenBatches) {
  std::vector<Pattern> patterns = {testutil::P({0}), testutil::P({1})};
  runtime::RunControl run;
  run.RequestCancel();
  std::vector<double> values;
  BatchCountFn count = [](const std::vector<Pattern>&,
                          std::vector<double>*) { return Status::Ok(); };
  Status s = GovernedCount(patterns, nullptr, &run, count, &values);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
}

/// End-to-end: a budget-constrained run must produce the same patterns as
/// an unlimited run — only cost degrades (smaller probe batches, then a
/// smaller sample with a recomputed epsilon). Only ladder exhaustion may
/// yield kResourceExhausted.
class GovernedMiningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec spec;
    spec.num_sequences = 80;
    spec.min_length = 20;
    spec.max_length = 40;
    spec.num_planted = 2;
    spec.planted_symbols_min = 4;
    spec.planted_symbols_max = 6;
    spec.seed = 77;
    workload_ = MakeUniformNoiseWorkload(spec, 0.1);
  }

  MinerOptions Options() const {
    MinerOptions o;
    o.min_threshold = 0.25;
    o.space.max_span = 6;
    // Large enough that the budget below shrinks it to a sample whose
    // Chernoff band still sits near the threshold (a drastically smaller
    // sample stays correct but probes most of the pattern space).
    o.sample_size = 60;
    o.delta = 0.05;
    o.seed = 3;
    o.max_counters_per_scan = 8;
    return o;
  }

  NoisyWorkload workload_;
};

TEST_F(GovernedMiningTest, BudgetDegradesCostNotResults) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  MiningResult unlimited =
      BorderCollapseMiner(Metric::kMatch, Options()).Mine(workload_.test,
                                                          workload_.matrix);
  ASSERT_TRUE(unlimited.ok());
  ASSERT_GT(unlimited.effective_sample_size, 0u);

  // A budget that holds only part of the sample. Large enough that the
  // shrunken sample's epsilon stays below the threshold (a much smaller
  // budget still yields correct results, just via an enormous ambiguous
  // region that probes most of the pattern space).
  MinerOptions constrained = Options();
  constrained.memory_budget_bytes = 8900;
  const int64_t degraded_before = reg.CounterValue("mining.degraded_runs");
  MiningResult degraded =
      BorderCollapseMiner(Metric::kMatch, constrained)
          .Mine(workload_.test, workload_.matrix);
  ASSERT_TRUE(degraded.ok()) << degraded.status.ToString();

  // Same answer, degraded cost: the probed patterns are exact in both
  // runs, so the frequent set and border are identical.
  EXPECT_EQ(unlimited.frequent.ToSortedVector(),
            degraded.frequent.ToSortedVector());
  EXPECT_EQ(unlimited.border.ToSortedVector(),
            degraded.border.ToSortedVector());
  EXPECT_GT(degraded.degradation_steps, 0);
  EXPECT_GE(degraded.scans, unlimited.scans);
  // The shrunken sample widened epsilon.
  EXPECT_LT(degraded.effective_sample_size, unlimited.effective_sample_size);
  EXPECT_GT(degraded.final_epsilon, unlimited.final_epsilon);
  EXPECT_EQ(reg.CounterValue("mining.degraded_runs") - degraded_before, 1);
}

TEST_F(GovernedMiningTest, ToivonenDegradesTheSameWay) {
  MiningResult unlimited =
      ToivonenMiner(Metric::kMatch, Options()).Mine(workload_.test,
                                                    workload_.matrix);
  ASSERT_TRUE(unlimited.ok());

  MinerOptions constrained = Options();
  constrained.memory_budget_bytes = 8192;
  MiningResult degraded = ToivonenMiner(Metric::kMatch, constrained)
                              .Mine(workload_.test, workload_.matrix);
  ASSERT_TRUE(degraded.ok()) << degraded.status.ToString();
  // Verification is exact in both runs; the degraded run just verifies a
  // larger ambiguous region in smaller batches.
  EXPECT_EQ(unlimited.frequent.ToSortedVector(),
            degraded.frequent.ToSortedVector());
  EXPECT_GT(degraded.degradation_steps, 0);
  EXPECT_GE(degraded.scans, unlimited.scans);
}

TEST_F(GovernedMiningTest, LevelwiseAndMaxMinerSplitScansUnderBudget) {
  for (bool use_max : {false, true}) {
    MiningResult unlimited =
        use_max ? MaxMiner(Metric::kMatch, Options()).Mine(workload_.test,
                                                           workload_.matrix)
                : LevelwiseMiner(Metric::kMatch, Options())
                      .Mine(workload_.test, workload_.matrix);
    ASSERT_TRUE(unlimited.ok());

    MinerOptions constrained = Options();
    constrained.memory_budget_bytes = 2048;
    MiningResult degraded =
        use_max ? MaxMiner(Metric::kMatch, constrained)
                      .Mine(workload_.test, workload_.matrix)
                : LevelwiseMiner(Metric::kMatch, constrained)
                      .Mine(workload_.test, workload_.matrix);
    ASSERT_TRUE(degraded.ok()) << degraded.status.ToString();
    EXPECT_EQ(unlimited.frequent.ToSortedVector(),
              degraded.frequent.ToSortedVector())
        << (use_max ? "maxminer" : "levelwise");
    EXPECT_GT(degraded.degradation_steps, 0);
    EXPECT_GT(degraded.scans, unlimited.scans);
  }
}

TEST_F(GovernedMiningTest, ExhaustedLadderFailsClosed) {
  // A budget too small for even one sampled sequence: the ladder has no
  // step left, so the run fails typed with an empty pattern set.
  MinerOptions impossible = Options();
  impossible.memory_budget_bytes = 8;
  MiningResult r = BorderCollapseMiner(Metric::kMatch, impossible)
                       .Mine(workload_.test, workload_.matrix);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.frequent.ToSortedVector().empty());
  EXPECT_TRUE(r.border.ToSortedVector().empty());
}

}  // namespace
}  // namespace nmine
