#include "nmine/core/pattern.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(PatternTest, BasicProperties) {
  Pattern p = P({0, -1, 2});
  EXPECT_EQ(p.length(), 3u);
  EXPECT_EQ(p.NumSymbols(), 2u);
  EXPECT_EQ(p[0], 0);
  EXPECT_TRUE(IsWildcard(p[1]));
  EXPECT_EQ(p[2], 2);
  EXPECT_FALSE(p.empty());
}

TEST(PatternTest, DefaultConstructedIsEmpty) {
  Pattern p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0u);
  EXPECT_EQ(p.NumSymbols(), 0u);
}

TEST(PatternTest, ValidBodyRules) {
  EXPECT_TRUE(Pattern::IsValidBody({0}));
  EXPECT_TRUE(Pattern::IsValidBody({0, kWildcard, 1}));
  EXPECT_FALSE(Pattern::IsValidBody({}));
  EXPECT_FALSE(Pattern::IsValidBody({kWildcard, 0}));   // leading *
  EXPECT_FALSE(Pattern::IsValidBody({0, kWildcard}));   // trailing *
  EXPECT_FALSE(Pattern::IsValidBody({kWildcard}));      // only *
  EXPECT_FALSE(Pattern::IsValidBody({0, -7, 1}));       // bogus id
}

TEST(PatternTest, TrimmedStripsWildcards) {
  std::optional<Pattern> p =
      Pattern::Trimmed({kWildcard, kWildcard, 3, kWildcard, 1, kWildcard});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, P({3, -1, 1}));
}

TEST(PatternTest, TrimmedAllWildcardsIsNullopt) {
  EXPECT_FALSE(Pattern::Trimmed({kWildcard, kWildcard}).has_value());
  EXPECT_FALSE(Pattern::Trimmed({}).has_value());
}

TEST(PatternTest, ParseAgainstAlphabet) {
  Alphabet a = Alphabet::Anonymous(5);
  std::optional<Pattern> p = Pattern::Parse("d1 * d3", a);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, P({0, -1, 2}));
  EXPECT_FALSE(Pattern::Parse("d1 dX", a).has_value());  // unknown name
  EXPECT_FALSE(Pattern::Parse("* d1", a).has_value());   // leading *
  EXPECT_FALSE(Pattern::Parse("", a).has_value());
}

TEST(PatternTest, SubpatternDefinition33) {
  // Examples from Section 3: d1*d3 and d1**d4d5 are subpatterns of
  // d1*d3d4d5; d1d2 is not.
  Pattern big = P({0, -1, 2, 3, 4});
  EXPECT_TRUE(P({0, -1, 2}).IsSubpatternOf(big));
  EXPECT_TRUE(P({0, -1, -1, 3, 4}).IsSubpatternOf(big));
  EXPECT_FALSE(P({0, 1}).IsSubpatternOf(big));
}

TEST(PatternTest, SubpatternAllowsOffsets) {
  Pattern big = P({5, 0, 1, 2});
  EXPECT_TRUE(P({0, 1}).IsSubpatternOf(big));   // offset 1
  EXPECT_TRUE(P({1, 2}).IsSubpatternOf(big));   // offset 2
  EXPECT_TRUE(P({5}).IsSubpatternOf(big));      // offset 0
  EXPECT_FALSE(P({2, 1}).IsSubpatternOf(big));  // order matters
}

TEST(PatternTest, SubpatternIsReflexive) {
  Pattern p = P({0, -1, 2, 2});
  EXPECT_TRUE(p.IsSubpatternOf(p));
}

TEST(PatternTest, SubpatternWildcardMustMatchSomething) {
  // The wildcard consumes exactly one position.
  EXPECT_FALSE(P({0, -1, 1}).IsSubpatternOf(P({0, 1})));
  EXPECT_TRUE(P({0, -1, 1}).IsSubpatternOf(P({0, 9, 1})));
}

TEST(PatternTest, LongerIsNeverSubpatternOfShorter) {
  EXPECT_FALSE(P({0, 1, 2}).IsSubpatternOf(P({0, 1})));
}

TEST(PatternTest, ImmediateSubpattern) {
  Pattern big = P({0, 1, 2});
  EXPECT_TRUE(P({0, 1}).IsImmediateSubpatternOf(big));
  EXPECT_TRUE(P({0, -1, 2}).IsImmediateSubpatternOf(big));
  EXPECT_FALSE(P({0}).IsImmediateSubpatternOf(big));  // two levels down
  EXPECT_FALSE(big.IsImmediateSubpatternOf(big));
}

TEST(PatternTest, ImmediateSubpatternsOfContiguousTriple) {
  std::vector<Pattern> subs = P({0, 1, 2}).ImmediateSubpatterns();
  // Deleting each of the three symbols: {1 2}, {0 * 2}, {0 1}.
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_NE(std::find(subs.begin(), subs.end(), P({1, 2})), subs.end());
  EXPECT_NE(std::find(subs.begin(), subs.end(), P({0, -1, 2})), subs.end());
  EXPECT_NE(std::find(subs.begin(), subs.end(), P({0, 1})), subs.end());
}

TEST(PatternTest, ImmediateSubpatternsTrimCascadingWildcards) {
  // Deleting the symbol after a gap trims the whole gap.
  std::vector<Pattern> subs = P({0, -1, 1, 2}).ImmediateSubpatterns();
  // Delete 0 -> {1 2}; delete 1 -> {0 * * 2} -> stays (interior);
  // delete 2 -> {0 * 1}.
  EXPECT_NE(std::find(subs.begin(), subs.end(), P({1, 2})), subs.end());
  EXPECT_NE(std::find(subs.begin(), subs.end(), P({0, -1, -1, 2})),
            subs.end());
  EXPECT_NE(std::find(subs.begin(), subs.end(), P({0, -1, 1})), subs.end());
  EXPECT_EQ(subs.size(), 3u);
}

TEST(PatternTest, ImmediateSubpatternsDeduplicate) {
  // Both deletions of {5 5} yield the same 1-pattern {5}.
  std::vector<Pattern> subs = P({5, 5}).ImmediateSubpatterns();
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], P({5}));
}

TEST(PatternTest, ImmediateSubpatternsOfSingletonEmpty) {
  EXPECT_TRUE(P({3}).ImmediateSubpatterns().empty());
}

TEST(PatternTest, EverySubIsImmediateSubpattern) {
  Pattern big = P({4, -1, 2, 7, 7});
  for (const Pattern& sub : big.ImmediateSubpatterns()) {
    EXPECT_TRUE(sub.IsImmediateSubpatternOf(big))
        << sub.ToString() << " vs " << big.ToString();
  }
}

TEST(PatternTest, EqualityAndHash) {
  EXPECT_EQ(P({0, -1, 2}), P({0, -1, 2}));
  EXPECT_NE(P({0, -1, 2}), P({0, 2}));
  EXPECT_EQ(P({0, -1, 2}).Hash(), P({0, -1, 2}).Hash());
  EXPECT_NE(P({0, 1}).Hash(), P({1, 0}).Hash());
}

TEST(PatternTest, OrderingIsByLengthThenLex) {
  EXPECT_LT(P({9}), P({0, 1}));
  EXPECT_LT(P({0, 1}), P({0, 2}));
  EXPECT_LT(P({0, -1, 1}), P({0, 0, 0}));  // wildcard (-1) sorts first
}

TEST(PatternTest, ToStringForms) {
  Alphabet a = Alphabet::Anonymous(5);
  EXPECT_EQ(P({0, -1, 2}).ToString(a), "d1 * d3");
  EXPECT_EQ(P({0, -1, 2}).ToString(), "0 * 2");
}

}  // namespace
}  // namespace nmine
