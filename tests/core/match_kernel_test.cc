#include "nmine/core/match_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "nmine/core/column_index.h"
#include "nmine/core/match.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/stats/random.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::P;

/// Restores the auto-resolved kernel on scope exit so forced-kernel tests
/// never leak process-wide state into later tests.
struct KernelGuard {
  ~KernelGuard() {
    SimdLevel level = SimdLevel::kScalar;
    ResolveSimdLevel("auto", DetectCpuFeatures(), &level, nullptr);
    SetActiveMatchKernel(level, nullptr);
  }
};

/// The naive Definition-3.6 loop, written independently of the kernel
/// stack: the oracle every kernel (including scalar) is judged against.
double NaiveBest(const CompatibilityMatrix& c, const Pattern& p,
                 const Sequence& seq) {
  if (seq.size() < p.length()) return 0.0;
  double best = 0.0;
  for (size_t offset = 0; offset + p.length() <= seq.size(); ++offset) {
    double match = 1.0;
    for (size_t i = 0; i < p.length(); ++i) {
      SymbolId sym = p[i];
      if (IsWildcard(sym)) continue;
      match *= c.Column(seq[offset + i])[static_cast<size_t>(sym)];
      if (match == 0.0) break;
    }
    if (match > best) best = match;
  }
  return best;
}

std::vector<const MatchKernel*> CompiledKernels() {
  std::vector<const MatchKernel*> kernels;
  CpuFeatures host = DetectCpuFeatures();
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    const MatchKernel* k = GetMatchKernel(level);
    if (k == nullptr) continue;
    if (level == SimdLevel::kAvx2 && !host.avx2) continue;
    if (level == SimdLevel::kNeon && !host.neon) continue;
    kernels.push_back(k);
  }
  return kernels;
}

Sequence RandomSequence(Rng& rng, size_t length, size_t m) {
  Sequence seq(length);
  for (SymbolId& s : seq) {
    s = static_cast<SymbolId>(rng.UniformInt(m));
  }
  return seq;
}

Pattern RandomPattern(Rng& rng, size_t length, size_t m,
                      double wildcard_prob) {
  std::vector<SymbolId> body(length);
  for (size_t i = 0; i < length; ++i) {
    bool interior = i > 0 && i + 1 < length;
    body[i] = interior && rng.Bernoulli(wildcard_prob)
                  ? kWildcard
                  : static_cast<SymbolId>(rng.UniformInt(m));
  }
  return Pattern(body);
}

/// Runs every compiled-and-supported kernel over random (patterns,
/// sequences) drawn for `c` and checks all of them bitwise against the
/// scalar kernel, and the scalar kernel against the naive oracle.
void CheckCorpus(const CompatibilityMatrix& c, double wildcard_prob,
                 uint64_t seed) {
  Rng rng(seed);
  const size_t m = c.size();
  std::vector<const MatchKernel*> kernels = CompiledKernels();
  ASSERT_FALSE(kernels.empty());
  ASSERT_EQ(kernels[0]->level(), SimdLevel::kScalar);

  for (int round = 0; round < 12; ++round) {
    std::vector<Pattern> patterns;
    const size_t num_patterns = 1 + rng.UniformInt(6);
    for (size_t i = 0; i < num_patterns; ++i) {
      patterns.push_back(RandomPattern(rng, 1 + rng.UniformInt(12), m,
                                       wildcard_prob));
    }
    PreparedPatternSet prep;
    prep.Prepare(c, patterns);

    // Lengths straddle the vector block width (8 on AVX2) so full blocks,
    // tails, and sequences shorter than every pattern are all exercised.
    const size_t seq_len = rng.UniformInt(70);
    Sequence seq = RandomSequence(rng, seq_len, m);

    std::vector<double> scalar_best(patterns.size());
    MatchScratch scalar_scratch;
    kernels[0]->BestMatches(prep, seq, &scalar_scratch, scalar_best.data());
    for (size_t i = 0; i < patterns.size(); ++i) {
      EXPECT_EQ(scalar_best[i], NaiveBest(c, patterns[i], seq))
          << "scalar kernel diverges from the naive oracle (pattern " << i
          << ", round " << round << ")";
    }

    for (size_t ki = 1; ki < kernels.size(); ++ki) {
      std::vector<double> best(patterns.size());
      MatchScratch scratch;
      kernels[ki]->BestMatches(prep, seq, &scratch, best.data());
      for (size_t i = 0; i < patterns.size(); ++i) {
        // Bit-identity, not tolerance: the SIMD screen must re-derive
        // every surviving window with the exact scalar product.
        EXPECT_EQ(best[i], scalar_best[i])
            << kernels[ki]->name() << " diverges from scalar (pattern " << i
            << ", round " << round << ", seq_len " << seq.size() << ")";
      }
    }
  }
}

TEST(MatchKernelTest, DenseMatrixCorpusBitIdentical) {
  CheckCorpus(UniformNoiseMatrix(20, 0.2), /*wildcard_prob=*/0.0,
              /*seed=*/101);
}

TEST(MatchKernelTest, SparseMatrixCorpusBitIdentical) {
  // Figure-2-style sparse matrix scaled up: mostly zeros, so -inf log
  // entries and the zero short-circuit dominate.
  CompatibilityMatrix c(12);
  Rng rng(7);
  for (size_t j = 0; j < 12; ++j) {
    c.Set(static_cast<SymbolId>(j), static_cast<SymbolId>(j), 0.8);
    c.Set(static_cast<SymbolId>((j + 1) % 12), static_cast<SymbolId>(j), 0.2);
  }
  CheckCorpus(c, /*wildcard_prob=*/0.0, /*seed=*/202);
}

TEST(MatchKernelTest, NearUnderflowTinyProbabilitiesBitIdentical) {
  // Entries so small that products of a dozen factors sink to ~1e-250:
  // the screen's guard-band argument needs normal doubles, so near the
  // subnormal range ScreenThreshold must disable screening rather than
  // risk a wrong reject. Bit-identity must survive that regime.
  CompatibilityMatrix c(6);
  Rng rng(11);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      double v = (i == j) ? 1e-18 : 1e-21 * (1.0 + rng.UniformDouble());
      c.Set(static_cast<SymbolId>(i), static_cast<SymbolId>(j), v);
    }
  }
  CheckCorpus(c, /*wildcard_prob=*/0.0, /*seed=*/303);
}

TEST(MatchKernelTest, WildcardHeavyCorpusBitIdentical) {
  CheckCorpus(UniformNoiseMatrix(10, 0.3), /*wildcard_prob=*/0.5,
              /*seed=*/404);
}

TEST(MatchKernelTest, SequenceShorterThanPatternIsZeroOnEveryKernel) {
  CompatibilityMatrix c = Figure2Matrix();
  PreparedPatternSet prep;
  prep.Prepare(c, std::vector<Pattern>{P({0, 1, 2}), P({0, -1, -1, 1})});
  Sequence seq = {0, 1};
  for (const MatchKernel* k : CompiledKernels()) {
    std::vector<double> best(2, 99.0);
    MatchScratch scratch;
    k->BestMatches(prep, seq, &scratch, best.data());
    EXPECT_EQ(best[0], 0.0) << k->name();
    EXPECT_EQ(best[1], 0.0) << k->name();
  }
}

TEST(MatchKernelTest, SegmentMatchIsTheExactReference) {
  // The kernels' exact re-evaluation path must be SegmentMatch's loop;
  // pin the equivalence through the public single-window API.
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 1, 1, 2, 3, 0};
  Pattern p = P({0, 1});
  double expected = 0.0;
  for (size_t w = 0; w + p.length() <= s.size(); ++w) {
    expected = std::max(expected, SegmentMatch(c, p, s, w));
  }
  EXPECT_EQ(SequenceMatch(c, p, s), expected);
  EXPECT_DOUBLE_EQ(expected, 0.72);
}

TEST(MatchKernelTest, ThresholdAcceptRejectAgreesAcrossKernels) {
  // A mining threshold placed exactly on the best match value: the
  // accept/reject decision (match >= tau) must agree across kernels,
  // which requires the match values themselves to be bitwise equal.
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 1, 1, 2, 3, 0};
  PreparedPatternSet prep;
  prep.Prepare(c, std::vector<Pattern>{P({0, 1}), P({0, 1, 1})});
  std::vector<double> scalar_best(2);
  MatchScratch scalar_scratch;
  GetMatchKernel(SimdLevel::kScalar)
      ->BestMatches(prep, s, &scalar_scratch, scalar_best.data());
  EXPECT_DOUBLE_EQ(scalar_best[0], 0.72);
  const double tau = scalar_best[0];  // threshold exactly at the best match
  for (const MatchKernel* k : CompiledKernels()) {
    std::vector<double> best(2);
    MatchScratch scratch;
    k->BestMatches(prep, s, &scratch, best.data());
    EXPECT_TRUE(best[0] >= tau) << k->name();
    EXPECT_EQ(best[0], scalar_best[0]) << k->name();
    EXPECT_EQ(best[1], scalar_best[1]) << k->name();
    EXPECT_FALSE(best[1] >= tau) << k->name();
  }
}

TEST(MatchKernelDispatchTest, AutoNeverSelectsUnsupportedIsa) {
  // Mocked host with no vector features: auto must land on scalar even
  // though wider kernels may be compiled into this binary.
  CpuFeatures none;
  SimdLevel level = SimdLevel::kAvx2;
  std::string error;
  ASSERT_TRUE(ResolveSimdLevel("auto", none, &level, &error));
  EXPECT_EQ(level, SimdLevel::kScalar);

  // Mocked AVX2-only host: auto picks avx2 iff the kernel is compiled in,
  // and never neon.
  CpuFeatures avx2_host;
  avx2_host.avx2 = true;
  ASSERT_TRUE(ResolveSimdLevel("auto", avx2_host, &level, &error));
  if (KernelCompiled(SimdLevel::kAvx2)) {
    EXPECT_EQ(level, SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(level, SimdLevel::kScalar);
  }

  CpuFeatures neon_host;
  neon_host.neon = true;
  ASSERT_TRUE(ResolveSimdLevel("auto", neon_host, &level, &error));
  if (KernelCompiled(SimdLevel::kNeon)) {
    EXPECT_EQ(level, SimdLevel::kNeon);
  } else {
    EXPECT_EQ(level, SimdLevel::kScalar);
  }
}

TEST(MatchKernelDispatchTest, ExplicitRequestForUnsupportedIsaFails) {
  CpuFeatures none;
  SimdLevel level;
  std::string error;
  // scalar always works, even on a featureless host.
  EXPECT_TRUE(ResolveSimdLevel("scalar", none, &level, &error));
  EXPECT_EQ(level, SimdLevel::kScalar);
  // An explicit vector request on a host without the feature must fail
  // with a diagnostic, never silently fall back.
  EXPECT_FALSE(ResolveSimdLevel("avx2", none, &level, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ResolveSimdLevel("neon", none, &level, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ResolveSimdLevel("sse9", none, &level, &error));
  EXPECT_NE(error.find("sse9"), std::string::npos);
}

TEST(MatchKernelDispatchTest, EmptyFlagMeansAuto) {
  CpuFeatures none;
  SimdLevel level = SimdLevel::kAvx2;
  ASSERT_TRUE(ResolveSimdLevel("", none, &level, nullptr));
  EXPECT_EQ(level, SimdLevel::kScalar);
}

TEST(MatchKernelDispatchTest, SetActiveRejectsUnavailableKernel) {
  KernelGuard guard;
  // At least one of avx2/neon is absent on any single host; setting it
  // must fail and leave the active kernel usable.
  CpuFeatures host = DetectCpuFeatures();
  SimdLevel missing = host.avx2 ? SimdLevel::kNeon : SimdLevel::kAvx2;
  std::string error;
  EXPECT_FALSE(SetActiveMatchKernel(missing, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(SetActiveMatchKernel(SimdLevel::kScalar, &error));
  EXPECT_STREQ(ActiveMatchKernelName(), "scalar");
}

TEST(ColumnIndexTest, StackAndHeapPathsResolveColumns) {
  CompatibilityMatrix c = Figure2Matrix();
  ColumnIndex index;
  // Short sequence: stays on the internal stack buffer.
  Sequence short_seq = {0, 1, 4};
  index.Build(c, short_seq);
  ASSERT_EQ(index.size(), 3u);
  for (size_t j = 0; j < short_seq.size(); ++j) {
    EXPECT_EQ(index.cols()[j], c.Column(short_seq[j]));
  }
  // Long sequence (> 512): spills to the heap; rebuild must still be
  // correct after the switch, and switching back reuses the stack.
  Rng rng(5);
  Sequence long_seq = RandomSequence(rng, 600, c.size());
  index.Build(c, long_seq);
  ASSERT_EQ(index.size(), 600u);
  for (size_t j = 0; j < long_seq.size(); ++j) {
    EXPECT_EQ(index.cols()[j], c.Column(long_seq[j]));
  }
  index.Build(c, short_seq);
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index.cols()[2], c.Column(4));
}

std::vector<SequenceRecord> RandomRecords(Rng& rng, size_t count,
                                          size_t max_len, size_t m) {
  std::vector<SequenceRecord> records;
  for (size_t i = 0; i < count; ++i) {
    records.push_back({static_cast<SequenceId>(i + 1),
                       RandomSequence(rng, 1 + rng.UniformInt(max_len), m)});
  }
  return records;
}

TEST(MatchKernelBatchTest, FlatBatchCountsBitIdenticalAcrossKernels) {
  KernelGuard guard;
  // Dense matrix -> the batch counter takes the flat (kernel) path.
  CompatibilityMatrix c = UniformNoiseMatrix(12, 0.25);
  ASSERT_LT(c.Sparsity(), 0.5);
  Rng rng(17);
  std::vector<SequenceRecord> records = RandomRecords(rng, 40, 60, 12);
  std::vector<Pattern> patterns;
  for (int i = 0; i < 24; ++i) {
    patterns.push_back(RandomPattern(rng, 1 + rng.UniformInt(6), 12, 0.2));
  }
  ASSERT_TRUE(SetActiveMatchKernel(SimdLevel::kScalar, nullptr));
  std::vector<double> scalar = CountMatchesInRecords(records, c, patterns);
  EXPECT_EQ(scalar, testutil::NaiveMatches(records, c, patterns));
  for (const MatchKernel* k : CompiledKernels()) {
    ASSERT_TRUE(SetActiveMatchKernel(k->level(), nullptr));
    EXPECT_EQ(CountMatchesInRecords(records, c, patterns), scalar)
        << k->name();
  }
}

TEST(MatchKernelBatchTest, TrieLeafRunsBitIdenticalAcrossKernels) {
  KernelGuard guard;
  // Sparse matrix -> the trie path, whose leaf runs go through
  // MatchKernel::LeafRunMax.
  CompatibilityMatrix c(10);
  for (size_t j = 0; j < 10; ++j) {
    c.Set(static_cast<SymbolId>(j), static_cast<SymbolId>(j), 0.7);
    c.Set(static_cast<SymbolId>((j + 3) % 10), static_cast<SymbolId>(j), 0.3);
  }
  ASSERT_GE(c.Sparsity(), 0.5);
  Rng rng(23);
  std::vector<SequenceRecord> records = RandomRecords(rng, 40, 50, 10);
  // Many patterns sharing prefixes -> plenty of single-pattern leaf
  // children for the runs.
  std::vector<Pattern> patterns;
  for (int i = 0; i < 40; ++i) {
    patterns.push_back(RandomPattern(rng, 1 + rng.UniformInt(4), 10, 0.15));
  }
  ASSERT_TRUE(SetActiveMatchKernel(SimdLevel::kScalar, nullptr));
  std::vector<double> scalar = CountMatchesInRecords(records, c, patterns);
  EXPECT_EQ(scalar, testutil::NaiveMatches(records, c, patterns));
  std::vector<double> supports_scalar;
  {
    PatternTrie trie(patterns);
    supports_scalar.assign(patterns.size(), 0.0);
    trie.BestSupportsInto(records[0].symbols, supports_scalar.data());
  }
  for (const MatchKernel* k : CompiledKernels()) {
    ASSERT_TRUE(SetActiveMatchKernel(k->level(), nullptr));
    EXPECT_EQ(CountMatchesInRecords(records, c, patterns), scalar)
        << k->name();
  }
  // Leaf runs must not change exact-support semantics either.
  PatternTrie trie(patterns);
  std::vector<double> supports;
  trie.BestSupports(records[0].symbols, &supports);
  EXPECT_EQ(supports, supports_scalar);
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_EQ(supports[i],
              SequenceSupport(patterns[i], records[0].symbols));
  }
}

TEST(MatchKernelBatchTest, MinedPatternSetsBitIdenticalScalarVsAuto) {
  KernelGuard guard;
  // End-to-end acceptance: a full border-collapsing mining run must
  // produce the same patterns with the same metric values on --simd=scalar
  // and --simd=auto.
  Rng rng(31);
  InMemorySequenceDatabase db;
  for (const SequenceRecord& r : RandomRecords(rng, 60, 40, 8)) {
    db.Add(r.symbols);
  }
  CompatibilityMatrix c = UniformNoiseMatrix(8, 0.2);
  MinerOptions options;
  options.min_threshold = 0.3;
  options.space.max_span = 4;
  options.sample_size = 30;
  options.seed = 9;
  BorderCollapseMiner miner(Metric::kMatch, options);

  ASSERT_TRUE(SetActiveMatchKernel(SimdLevel::kScalar, nullptr));
  MiningResult scalar_result = miner.Mine(db, c);
  ASSERT_TRUE(scalar_result.status.ok());

  SimdLevel auto_level = SimdLevel::kScalar;
  ASSERT_TRUE(
      ResolveSimdLevel("auto", DetectCpuFeatures(), &auto_level, nullptr));
  ASSERT_TRUE(SetActiveMatchKernel(auto_level, nullptr));
  MiningResult auto_result = miner.Mine(db, c);
  ASSERT_TRUE(auto_result.status.ok());

  std::vector<Pattern> scalar_patterns = scalar_result.FrequentSorted();
  std::vector<Pattern> auto_patterns = auto_result.FrequentSorted();
  ASSERT_EQ(scalar_patterns.size(), auto_patterns.size());
  for (size_t i = 0; i < scalar_patterns.size(); ++i) {
    EXPECT_EQ(scalar_patterns[i].body(), auto_patterns[i].body());
    EXPECT_EQ(scalar_result.values.at(scalar_patterns[i]),
              auto_result.values.at(auto_patterns[i]));
  }
}

}  // namespace
}  // namespace nmine
