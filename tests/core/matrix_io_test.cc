#include "nmine/core/matrix_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

TEST(MatrixIoTest, FormatParseRoundTrip) {
  CompatibilityMatrix c = testutil::Figure2Matrix();
  std::string text = FormatCompatibilityMatrix(c);
  MatrixIoResult error;
  std::optional<CompatibilityMatrix> parsed =
      ParseCompatibilityMatrix(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  ASSERT_EQ(parsed->size(), c.size());
  for (SymbolId i = 0; i < 5; ++i) {
    for (SymbolId j = 0; j < 5; ++j) {
      EXPECT_NEAR((*parsed)(i, j), c(i, j), 1e-9);
    }
  }
}

TEST(MatrixIoTest, CommentsAndBlankLinesIgnored) {
  MatrixIoResult error;
  std::optional<CompatibilityMatrix> parsed = ParseCompatibilityMatrix(
      "# compatibility matrix\n\n2\n0.9 0.2 # trailing comment\n0.1 0.8\n",
      &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_DOUBLE_EQ((*parsed)(0, 1), 0.2);
}

TEST(MatrixIoTest, RejectsEmptyInput) {
  MatrixIoResult error;
  EXPECT_FALSE(ParseCompatibilityMatrix("# only a comment\n", &error)
                   .has_value());
  EXPECT_FALSE(error.ok);
}

TEST(MatrixIoTest, RejectsBadSize) {
  MatrixIoResult error;
  EXPECT_FALSE(ParseCompatibilityMatrix("x\n1.0\n", &error).has_value());
  EXPECT_NE(error.message.find("alphabet size"), std::string::npos);
}

TEST(MatrixIoTest, RejectsWrongEntryCount) {
  MatrixIoResult error;
  EXPECT_FALSE(
      ParseCompatibilityMatrix("2\n1 0 0\n", &error).has_value());
  EXPECT_NE(error.message.find("expected 4 entries"), std::string::npos);
}

TEST(MatrixIoTest, RejectsBadNumber) {
  MatrixIoResult error;
  EXPECT_FALSE(
      ParseCompatibilityMatrix("2\n1 0 oops 1\n", &error).has_value());
  EXPECT_NE(error.message.find("bad number"), std::string::npos);
}

TEST(MatrixIoTest, RejectsNonStochasticMatrix) {
  MatrixIoResult error;
  EXPECT_FALSE(
      ParseCompatibilityMatrix("2\n0.9 0.9\n0.9 0.9\n", &error).has_value());
  EXPECT_NE(error.message.find("column-stochastic"), std::string::npos);
}

TEST(MatrixIoTest, FileRoundTrip) {
  std::string path = std::string(::testing::TempDir()) + "/matrix.txt";
  CompatibilityMatrix c = testutil::Figure2Matrix();
  ASSERT_TRUE(WriteCompatibilityMatrixFile(path, c).ok);
  MatrixIoResult error;
  std::optional<CompatibilityMatrix> parsed =
      ReadCompatibilityMatrixFile(path, &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  EXPECT_NEAR((*parsed)(1, 3), 0.1, 1e-9);
  std::remove(path.c_str());
}

TEST(MatrixIoTest, MissingFileFails) {
  MatrixIoResult error;
  EXPECT_FALSE(
      ReadCompatibilityMatrixFile("/nonexistent/matrix.txt", &error)
          .has_value());
  EXPECT_FALSE(error.ok);
}

}  // namespace
}  // namespace nmine
