#include "nmine/core/compatibility_matrix.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

TEST(CompatibilityMatrixTest, Figure2EntriesAndAsymmetry) {
  CompatibilityMatrix c = testutil::Figure2Matrix();
  EXPECT_EQ(c.size(), 5u);
  // "C(d1, d2) = 0.1 and C(d2, d1) = 0.05" (Section 3).
  EXPECT_DOUBLE_EQ(c(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(c(1, 0), 0.05);
  EXPECT_DOUBLE_EQ(c(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(c(0, 2), 0.0);  // "impossible that a d1 may turn to a d3"
}

TEST(CompatibilityMatrixTest, Figure2ColumnsAreStochastic) {
  MatrixValidation v = testutil::Figure2Matrix().Validate();
  EXPECT_TRUE(v.ok) << v.message;
}

TEST(CompatibilityMatrixTest, WildcardIsFullyCompatible) {
  CompatibilityMatrix c = testutil::Figure2Matrix();
  for (SymbolId obs = 0; obs < 5; ++obs) {
    EXPECT_DOUBLE_EQ(c(kWildcard, obs), 1.0);
  }
}

TEST(CompatibilityMatrixTest, IdentityIsNoiseFree) {
  CompatibilityMatrix c = CompatibilityMatrix::Identity(4);
  EXPECT_TRUE(c.IsIdentity());
  EXPECT_TRUE(c.Validate().ok);
  EXPECT_DOUBLE_EQ(c(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(c(2, 3), 0.0);
  EXPECT_FALSE(testutil::Figure2Matrix().IsIdentity());
}

TEST(CompatibilityMatrixTest, ValidateRejectsNonStochasticColumn) {
  CompatibilityMatrix c = CompatibilityMatrix::Identity(3);
  c.Set(0, 1, 0.5);  // column 1 now sums to 1.5
  MatrixValidation v = c.Validate();
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.message.find("column"), std::string::npos);
}

TEST(CompatibilityMatrixTest, ValidateRejectsOutOfRangeEntry) {
  CompatibilityMatrix c = CompatibilityMatrix::Identity(3);
  c.Set(0, 0, 1.5);
  EXPECT_FALSE(c.Validate().ok);
  c.Set(0, 0, -0.2);
  EXPECT_FALSE(c.Validate().ok);
}

TEST(CompatibilityMatrixTest, ZeroMatrixFailsValidation) {
  CompatibilityMatrix c(3);
  EXPECT_FALSE(c.Validate().ok);
}

TEST(CompatibilityMatrixTest, Sparsity) {
  EXPECT_DOUBLE_EQ(CompatibilityMatrix::Identity(4).Sparsity(), 12.0 / 16.0);
  // Figure 2 has 9 zero entries out of 25.
  EXPECT_DOUBLE_EQ(testutil::Figure2Matrix().Sparsity(), 9.0 / 25.0);
}

TEST(CompatibilityMatrixTest, ColumnNonZeros) {
  CompatibilityMatrix c = testutil::Figure2Matrix();
  // Observed d1: true values d1 (0.9), d2 (0.05), d3 (0.05).
  const auto& col = c.ColumnNonZeros(0);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col[0].symbol, 0);
  EXPECT_DOUBLE_EQ(col[0].value, 0.9);
  EXPECT_EQ(col[1].symbol, 1);
  EXPECT_DOUBLE_EQ(col[1].value, 0.05);
  EXPECT_EQ(col[2].symbol, 2);
  EXPECT_DOUBLE_EQ(col[2].value, 0.05);
}

TEST(CompatibilityMatrixTest, RowNonZeros) {
  CompatibilityMatrix c = testutil::Figure2Matrix();
  // True d5 can be observed as d3 (0.15) or d5 (0.85).
  const auto& row = c.RowNonZeros(4);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].symbol, 2);
  EXPECT_DOUBLE_EQ(row[0].value, 0.15);
  EXPECT_EQ(row[1].symbol, 4);
  EXPECT_DOUBLE_EQ(row[1].value, 0.85);
}

TEST(CompatibilityMatrixTest, MaxInColumn) {
  CompatibilityMatrix c = testutil::Figure2Matrix();
  EXPECT_DOUBLE_EQ(c.MaxInColumn(0), 0.9);
  EXPECT_DOUBLE_EQ(c.MaxInColumn(3), 0.75);
}

TEST(CompatibilityMatrixTest, SetInvalidatesIndex) {
  CompatibilityMatrix c = testutil::Figure2Matrix();
  EXPECT_DOUBLE_EQ(c.MaxInColumn(0), 0.9);  // builds the index
  c.Set(4, 0, 0.95);
  EXPECT_DOUBLE_EQ(c.MaxInColumn(0), 0.95);  // rebuilt after Set
}

}  // namespace
}  // namespace nmine
