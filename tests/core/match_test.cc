#include "nmine/core/match.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::P;

TEST(MatchTest, SegmentMatchPaperExample) {
  // "the match of P1 = d1*d2 in s = d1d2d2 is 0.9 * 1 * 0.8 = 0.72".
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 1, 1};
  EXPECT_DOUBLE_EQ(SegmentMatch(c, P({0, -1, 1}), s, 0), 0.72);
}

TEST(MatchTest, SegmentMatchZeroFactorShortCircuits) {
  // "P2 = d1d2d5 does not match s because ... x C(d5, d2) = 0".
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 1, 1};
  EXPECT_DOUBLE_EQ(SegmentMatch(c, P({0, 1, 4}), s, 0), 0.0);
}

TEST(MatchTest, SequenceMatchSlidesWindowPaperExample) {
  // M(d1d2, d1d2d2d3d4d1) = max{0.72, 0.08, 0.005, 0, 0} = 0.72.
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 1, 1, 2, 3, 0};
  Pattern p = P({0, 1});
  EXPECT_DOUBLE_EQ(SequenceMatch(c, p, s), 0.72);
  // Check the individual windows the paper lists.
  EXPECT_DOUBLE_EQ(SegmentMatch(c, p, s, 0), 0.72);
  EXPECT_DOUBLE_EQ(SegmentMatch(c, p, s, 1), 0.08);
  EXPECT_DOUBLE_EQ(SegmentMatch(c, p, s, 2), 0.005);
  EXPECT_DOUBLE_EQ(SegmentMatch(c, p, s, 3), 0.0);
  EXPECT_DOUBLE_EQ(SegmentMatch(c, p, s, 4), 0.0);
}

TEST(MatchTest, SequenceShorterThanPatternHasZeroMatch) {
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0};
  EXPECT_DOUBLE_EQ(SequenceMatch(c, P({0, 1}), s), 0.0);
  EXPECT_DOUBLE_EQ(SequenceSupport(P({0, 1}), s), 0.0);
}

TEST(MatchTest, WildcardPositionsCostNothing) {
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 4, 4, 1};  // d1 d5 d5 d2
  EXPECT_DOUBLE_EQ(SequenceMatch(c, P({0, -1, -1, 1}), s), 0.9 * 0.8);
}

TEST(MatchTest, MatchEqualsSupportUnderIdentityMatrix) {
  // Section 3, observation 3: noise-free environment degenerates to
  // support.
  CompatibilityMatrix id = CompatibilityMatrix::Identity(5);
  Sequence s = {0, 1, 2, 0, 3};
  for (const Pattern& p :
       {P({0, 1}), P({1, -1, 0}), P({2, 3}), P({3, 0}), P({0, 1, 2, 0, 3})}) {
    EXPECT_DOUBLE_EQ(SequenceMatch(id, p, s), SequenceSupport(p, s))
        << p.ToString();
  }
}

TEST(MatchTest, SupportIsBinary) {
  Sequence s = {0, 1, 2};
  EXPECT_DOUBLE_EQ(SequenceSupport(P({0, 1}), s), 1.0);
  EXPECT_DOUBLE_EQ(SequenceSupport(P({0, -1, 2}), s), 1.0);
  EXPECT_DOUBLE_EQ(SequenceSupport(P({1, 0}), s), 0.0);
}

TEST(MatchTest, AprioriOnSegments) {
  // Claim 3.1: M(P, s) >= M(P', s) whenever P is a subpattern of P'.
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 1, 2, 3, 0, 1};
  Pattern super = P({0, 1, 2});
  for (const Pattern& sub : super.ImmediateSubpatterns()) {
    EXPECT_GE(SequenceMatch(c, sub, s), SequenceMatch(c, super, s))
        << sub.ToString();
  }
}

TEST(MatchTest, MatchIsAtMostOne) {
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s = {0, 0, 1, 2, 3, 4, 4};
  EXPECT_LE(SequenceMatch(c, P({0, 1, 2}), s), 1.0);
  EXPECT_GE(SequenceMatch(c, P({0, 1, 2}), s), 0.0);
}

}  // namespace
}  // namespace nmine
