// Status taxonomy: every StatusCode has a distinct human-readable name
// (the CLI and logs print these), factories set the expected codes, and
// transience is the retry contract the fault-tolerance layer relies on.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"

namespace nmine {
namespace {

std::vector<StatusCode> AllCodes() {
  return {
      StatusCode::kOk,
      StatusCode::kNotFound,
      StatusCode::kUnavailable,
      StatusCode::kDataLoss,
      StatusCode::kInvalidArgument,
      StatusCode::kFailedPrecondition,
      StatusCode::kInternal,
      StatusCode::kCancelled,
      StatusCode::kDeadlineExceeded,
      StatusCode::kResourceExhausted,
  };
}

TEST(StatusCodeTest, ToStringCoversEveryCodeDistinctly) {
  std::set<std::string> names;
  for (StatusCode code : AllCodes()) {
    const std::string name = ToString(code);
    EXPECT_FALSE(name.empty());
    // A fallthrough placeholder would leak into operator output.
    EXPECT_EQ(name.find("unknown"), std::string::npos) << name;
    EXPECT_EQ(name.find("?"), std::string::npos) << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), AllCodes().size()) << "duplicate code names";
}

TEST(StatusCodeTest, LifecycleCodesHaveTheDocumentedNames) {
  EXPECT_STREQ(ToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(ToString(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(ToString(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(ToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(StatusCodeTest, FactoriesSetTheMatchingCode) {
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusCodeTest, OnlyUnavailableIsTransient) {
  for (StatusCode code : AllCodes()) {
    Status s = code == StatusCode::kOk ? Status::Ok()
                                       : Status::Error(code, "x");
    EXPECT_EQ(s.IsTransient(), code == StatusCode::kUnavailable)
        << ToString(code);
  }
}

TEST(StatusCodeTest, ToStringFormatsCodeAndMessage) {
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  EXPECT_EQ(Status::Cancelled("operator interrupt").ToString(),
            "CANCELLED: operator interrupt");
  EXPECT_EQ(Status::ResourceExhausted("").ToString(), "RESOURCE_EXHAUSTED");
}

}  // namespace
}  // namespace nmine
