#include "nmine/core/alphabet.h"

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(AlphabetTest, InternAndLookup) {
  Alphabet a;
  EXPECT_TRUE(a.empty());
  SymbolId x = a.Intern("A");
  SymbolId y = a.Intern("C");
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 1);
  EXPECT_EQ(a.Intern("A"), x);  // idempotent
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.Name(x), "A");
  EXPECT_EQ(*a.Id("C"), y);
  EXPECT_FALSE(a.Id("G").has_value());
}

TEST(AlphabetTest, ConstructorDeduplicates) {
  Alphabet a({"A", "B", "A", "C"});
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(*a.Id("A"), 0);
  EXPECT_EQ(*a.Id("C"), 2);
}

TEST(AlphabetTest, AnonymousNaming) {
  Alphabet a = Alphabet::Anonymous(3);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Name(0), "d1");
  EXPECT_EQ(a.Name(2), "d3");
  EXPECT_EQ(*a.Id("d2"), 1);
}

TEST(AlphabetTest, WildcardRendersAsStar) {
  Alphabet a = Alphabet::Anonymous(2);
  EXPECT_EQ(a.Name(kWildcard), "*");
}

}  // namespace
}  // namespace nmine
