#ifndef NMINE_TESTS_TEST_JSON_H_
#define NMINE_TESTS_TEST_JSON_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace nmine {
namespace testjson {

/// Minimal JSON value for verifying the observability subsystem's output
/// (metrics snapshots, trace_event files, JSON-lines logs) by parsing it
/// back instead of string-matching. Not a general-purpose parser: strict
/// RFC 8259 subset, no \uXXXX decoding beyond Latin-1.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// Object member access; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parses `text` as one JSON document (trailing whitespace allowed).
/// Returns nullopt on any syntax error.
std::optional<JsonValue> ParseJson(const std::string& text);

}  // namespace testjson
}  // namespace nmine

#endif  // NMINE_TESTS_TEST_JSON_H_
