#ifndef NMINE_TESTS_TEST_JSON_H_
#define NMINE_TESTS_TEST_JSON_H_

#include <optional>
#include <string>

#include "nmine/obs/json_parse.h"

namespace nmine {
namespace testjson {

/// The tests historically had their own minimal JSON parser; it now lives
/// in the library (nmine/obs/json_parse.h) so bench_compare and other
/// tools can read the JSON this system emits. These aliases keep the
/// test-side spelling stable.
using JsonValue = ::nmine::obs::JsonValue;

inline std::optional<JsonValue> ParseJson(const std::string& text) {
  return ::nmine::obs::ParseJson(text);
}

}  // namespace testjson
}  // namespace nmine

#endif  // NMINE_TESTS_TEST_JSON_H_
