#include "bench/compare.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/harness.h"

namespace nmine {
namespace bench {
namespace {

SnapshotStats Stats(const std::string& name, double median, double mad) {
  SnapshotStats s;
  s.name = name;
  s.median = median;
  s.mad = mad;
  return s;
}

TEST(CompareStatsTest, FlagsRegressionBeyondThresholdAndNoise) {
  // +20% on a tight distribution: both conditions hold.
  CompareEntry e = CompareStats(Stats("b", 1.00, 0.01),
                                Stats("b", 1.20, 0.01), 0.15);
  EXPECT_TRUE(e.regression);
  EXPECT_FALSE(e.improvement);
  EXPECT_NEAR(e.delta_pct, 20.0, 1e-9);
}

TEST(CompareStatsTest, LargeMadSuppressesPercentOnlyRegressions) {
  // +20% but the delta (0.2) is within 3 x MAD (3 x 0.1 = 0.3): noise.
  CompareEntry e = CompareStats(Stats("b", 1.00, 0.10),
                                Stats("b", 1.20, 0.05), 0.15);
  EXPECT_FALSE(e.regression);
}

TEST(CompareStatsTest, SmallDeltaIsNotARegression) {
  CompareEntry e = CompareStats(Stats("b", 1.00, 0.0),
                                Stats("b", 1.10, 0.0), 0.15);
  EXPECT_FALSE(e.regression);
  EXPECT_FALSE(e.improvement);
}

TEST(CompareStatsTest, FlagsImprovementSymmetrically) {
  CompareEntry e = CompareStats(Stats("b", 1.00, 0.01),
                                Stats("b", 0.70, 0.01), 0.15);
  EXPECT_FALSE(e.regression);
  EXPECT_TRUE(e.improvement);
}

class CompareFilesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) / "bench_compare_test";
    old_dir_ = (dir_ / "old").string();
    new_dir_ = (dir_ / "new").string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(old_dir_);
    std::filesystem::create_directories(new_dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes a BENCH_<name>.json with the given rep timings through the
  /// harness's own writer, so the test also covers the schema the tool
  /// actually reads.
  std::string WriteSnapshot(const std::string& dir, const std::string& name,
                            std::vector<double> seconds) {
    EXPECT_TRUE(WriteBenchJsonV2(name, ComputeRepStats(std::move(seconds)),
                                 dir));
    return dir + "/BENCH_" + name + ".json";
  }

  std::filesystem::path dir_;
  std::string old_dir_;
  std::string new_dir_;
};

TEST_F(CompareFilesTest, DetectsInjectedRegressionInFileMode) {
  // Tight old run around 1.0 s; new run injected 30% slower.
  std::string old_file =
      WriteSnapshot(old_dir_, "micro.x", {1.00, 1.01, 0.99});
  std::string new_file =
      WriteSnapshot(new_dir_, "micro.x", {1.30, 1.31, 1.29});

  CompareReport report;
  std::string error;
  ASSERT_TRUE(CompareFilesOrDirs(old_file, new_file,
                                 kDefaultRegressionThreshold, &report,
                                 &error))
      << error;
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].regression);
  EXPECT_TRUE(report.has_regression);
  EXPECT_NEAR(report.entries[0].old_median, 1.00, 1e-9);
  EXPECT_NEAR(report.entries[0].new_median, 1.30, 1e-9);
}

TEST_F(CompareFilesTest, DirectoryModeMatchesByFileNameAndReportsMissing) {
  WriteSnapshot(old_dir_, "a", {1.0, 1.0, 1.0});
  WriteSnapshot(new_dir_, "a", {1.0, 1.0, 1.0});
  WriteSnapshot(old_dir_, "gone", {2.0});
  WriteSnapshot(new_dir_, "fresh", {2.0});

  CompareReport report;
  std::string error;
  ASSERT_TRUE(CompareFilesOrDirs(old_dir_, new_dir_,
                                 kDefaultRegressionThreshold, &report,
                                 &error))
      << error;
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].name, "a");
  EXPECT_FALSE(report.has_regression);
  ASSERT_EQ(report.only_in_old.size(), 1u);
  EXPECT_EQ(report.only_in_old[0], "BENCH_gone.json");
  ASSERT_EQ(report.only_in_new.size(), 1u);
  EXPECT_EQ(report.only_in_new[0], "BENCH_fresh.json");
}

TEST_F(CompareFilesTest, ReadsSchemaV1FilesWithoutStats) {
  // Two v1 files (no "stats" object, no "schema_version"): the loader
  // falls back to median = "seconds", mad = 0, and the pair compares.
  std::string old_file = old_dir_ + "/BENCH_v1.json";
  std::string new_file = new_dir_ + "/BENCH_v1.json";
  {
    std::ofstream f(old_file);
    f << "{\"bench\": \"v1\", \"seconds\": 2.0, \"metrics\": {}}\n";
  }
  {
    std::ofstream f(new_file);
    f << "{\"bench\": \"v1\", \"seconds\": 3.0, \"metrics\": {}}\n";
  }

  CompareReport report;
  std::string error;
  ASSERT_TRUE(CompareFilesOrDirs(old_file, new_file,
                                 kDefaultRegressionThreshold, &report,
                                 &error))
      << error;
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_NEAR(report.entries[0].old_median, 2.0, 1e-9);
  EXPECT_TRUE(report.entries[0].regression);  // 2.0 -> 3.0, zero MAD
}

TEST_F(CompareFilesTest, SchemaMismatchIsAPerScenarioError) {
  // v1 baseline against a v2 run: no trustworthy verdict (v1 carries no
  // spread estimate), so the pair lands in errors, not entries.
  std::string old_file = old_dir_ + "/BENCH_m.json";
  {
    std::ofstream f(old_file);
    f << "{\"bench\": \"m\", \"seconds\": 2.0}\n";
  }
  std::string new_file = WriteSnapshot(new_dir_, "m", {2.0, 2.0, 2.0});

  CompareReport report;
  std::string error;
  ASSERT_TRUE(CompareFilesOrDirs(old_file, new_file,
                                 kDefaultRegressionThreshold, &report,
                                 &error))
      << error;
  EXPECT_TRUE(report.entries.empty());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("schema mismatch"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

TEST_F(CompareFilesTest, UnsupportedSchemaVersionFailsTheLoad) {
  std::string file = old_dir_ + "/BENCH_future.json";
  {
    std::ofstream f(file);
    f << "{\"schema_version\": 99, \"bench\": \"future\", "
         "\"stats\": {\"median\": 1.0, \"mad\": 0.0}}\n";
  }
  SnapshotStats stats;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(file, &stats, &error));
  EXPECT_NE(error.find("unsupported schema_version 99"), std::string::npos);
}

TEST_F(CompareFilesTest, MissingBaselineIsAPerScenarioError) {
  WriteSnapshot(old_dir_, "a", {1.0, 1.0, 1.0});
  WriteSnapshot(new_dir_, "a", {1.0, 1.0, 1.0});
  WriteSnapshot(new_dir_, "fresh", {2.0});

  CompareReport report;
  std::string error;
  ASSERT_TRUE(CompareFilesOrDirs(old_dir_, new_dir_,
                                 kDefaultRegressionThreshold, &report,
                                 &error))
      << error;
  EXPECT_FALSE(report.has_regression);  // the matched pair is clean...
  ASSERT_EQ(report.errors.size(), 1u);  // ...but the hole still fails it
  EXPECT_NE(report.errors[0].find("no baseline"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

TEST_F(CompareFilesTest, MarkdownSummaryListsRowsAndFailures) {
  WriteSnapshot(old_dir_, "a", {1.00, 1.01, 0.99});
  WriteSnapshot(new_dir_, "a", {1.30, 1.31, 1.29});
  WriteSnapshot(new_dir_, "fresh", {2.0});

  CompareReport report;
  std::string error;
  ASSERT_TRUE(CompareFilesOrDirs(old_dir_, new_dir_,
                                 kDefaultRegressionThreshold, &report,
                                 &error))
      << error;
  std::ostringstream md;
  PrintMarkdownSummary(report, kDefaultRegressionThreshold, md);
  const std::string text = md.str();
  EXPECT_NE(text.find("FAILED"), std::string::npos);
  EXPECT_NE(text.find("| a |"), std::string::npos);
  EXPECT_NE(text.find("regression"), std::string::npos);
  EXPECT_NE(text.find("no baseline"), std::string::npos);
}

TEST_F(CompareFilesTest, UnreadableFileIsAPerScenarioError) {
  std::string new_file = WriteSnapshot(new_dir_, "x", {1.0});
  CompareReport report;
  std::string error;
  ASSERT_TRUE(CompareFilesOrDirs(old_dir_ + "/BENCH_absent.json", new_file,
                                 kDefaultRegressionThreshold, &report,
                                 &error))
      << error;
  EXPECT_TRUE(report.entries.empty());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("cannot read"), std::string::npos);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace bench
}  // namespace nmine
