// The distributed miner's whole contract, in process: the coordinator +
// N workers must mine the exact byte-for-byte pattern set of a solo
// serve::RunJob at any worker count, through worker death mid-task
// (lease reassignment + resume from the journaled checkpoint), a zombie
// worker firing poisoned stale-epoch results (fenced, never counted),
// and a coordinator crash mid-scan (journal adoption on restart). The CI
// chaos drill repeats the same story across real processes with SIGKILL.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/db/format.h"
#include "nmine/dist/coordinator.h"
#include "nmine/dist/worker.h"
#include "nmine/gen/workload.h"
#include "nmine/obs/json_parse.h"
#include "nmine/obs/metrics.h"
#include "nmine/serve/job.h"

namespace nmine {
namespace dist {
namespace {

using Clock = std::chrono::steady_clock;

/// One worker on its own thread with its own stop token.
struct WorkerHarness {
  runtime::RunControl run;
  DistWorker worker;
  std::thread thread;
  Status status = Status::Ok();

  void Start(uint16_t port, const std::string& name, int64_t throttle_ms) {
    thread = std::thread([this, port, name, throttle_ms] {
      DistWorker::Options options;
      options.port = port;
      options.name = name;
      options.throttle_ms = throttle_ms;
      options.run = &run;
      status = worker.Run(options);
    });
  }

  void Join() {
    if (thread.joinable()) thread.join();
  }

  ~WorkerHarness() {
    run.RequestCancel();
    Join();
  }
};

/// Raw blocking socket speaking the dist wire protocol — the "zombie"
/// below needs full manual control over what it sends and when.
class RawConnection {
 public:
  explicit RawConnection(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  std::optional<obs::JsonValue> RoundTrip(const std::string& line) {
    size_t done = 0;
    while (done < line.size()) {
      ssize_t w = ::send(fd_, line.data() + done, line.size() - done, 0);
      if (w <= 0) return std::nullopt;
      done += static_cast<size_t>(w);
    }
    char chunk[65536];
    while (buffer_.find('\n') == std::string::npos) {
      ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<size_t>(r));
    }
    size_t nl = buffer_.find('\n');
    std::string response = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return obs::ParseJson(response);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class DistMiningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/dist_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    // 600 records: 3 exec shards of 256, so record-aligned dist shards
    // genuinely split the scan (records_per_task below controls how).
    WorkloadSpec wspec;
    wspec.num_sequences = 600;
    wspec.min_length = 6;
    wspec.max_length = 12;
    wspec.num_planted = 2;
    wspec.planted_symbols_min = 3;
    wspec.planted_symbols_max = 3;
    wspec.seed = 17;
    NoisyWorkload workload = MakeUniformNoiseWorkload(wspec, 0.1);
    db_path_ = dir_ + "/db.nmsq";
    ASSERT_TRUE(
        dbformat::WriteDatabaseFile(db_path_, workload.test.records()).ok);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  serve::JobSpec Spec() const {
    serve::JobSpec spec;
    spec.db_path = db_path_;
    spec.uniform_alpha = 0.1;
    spec.threshold = 0.3;
    spec.max_span = 4;
    spec.sample_size = 80;
    spec.delta = 0.05;
    return spec;
  }

  Coordinator::Options CoordinatorOptions(const std::string& state_subdir,
                                          int64_t lease_ms,
                                          uint64_t records_per_task) const {
    Coordinator::Options options;
    options.state_dir = dir_ + "/" + state_subdir;
    options.spec = Spec();
    options.lease_ms = lease_ms;
    options.records_per_task = records_per_task;
    return options;
  }

  serve::JobResult Solo() { return serve::RunJob(Spec(), "", nullptr); }

  /// Polls ShardzJson until `pred` holds or ~10 s pass.
  template <typename Pred>
  bool WaitForShardz(Coordinator& coordinator, Pred pred) {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < deadline) {
      std::optional<obs::JsonValue> shardz =
          obs::ParseJson(coordinator.ShardzJson());
      if (shardz.has_value() && pred(*shardz)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  std::string dir_;
  std::string db_path_;
};

TEST_F(DistMiningTest, BitIdenticalToSoloAtOneTwoAndFourWorkers) {
  serve::JobResult solo = Solo();
  ASSERT_TRUE(solo.ok);
  for (int num_workers : {1, 2, 4}) {
    Coordinator coordinator;
    std::string error;
    ASSERT_TRUE(coordinator.Start(
        CoordinatorOptions("state_w" + std::to_string(num_workers),
                           /*lease_ms=*/2000, /*records_per_task=*/256),
        &error))
        << error;
    std::vector<std::unique_ptr<WorkerHarness>> workers;
    for (int i = 0; i < num_workers; ++i) {
      workers.push_back(std::make_unique<WorkerHarness>());
      workers.back()->Start(coordinator.port(),
                            "w" + std::to_string(i), /*throttle_ms=*/0);
    }
    serve::JobResult result = coordinator.Run();
    for (auto& worker : workers) {
      worker->Join();
      EXPECT_TRUE(worker->status.ok()) << worker->status.ToString();
    }
    coordinator.Stop();
    ASSERT_TRUE(result.ok) << result.message;
    EXPECT_EQ(result.rows, solo.rows) << num_workers << " workers";
    EXPECT_EQ(result.scans, solo.scans) << num_workers << " workers";
  }
}

TEST_F(DistMiningTest, DeadWorkersShardIsReassignedAndResumed) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t reassigned_before = reg.CounterValue("dist.shards.reassigned");
  const int64_t retaken_before = reg.CounterValue("dist.shards.resumed") +
                                 reg.CounterValue("dist.shards.restarted");

  Coordinator coordinator;
  std::string error;
  // 512-record tasks = 2 exec shards each: a worker can die BETWEEN its
  // task's exec shards, leaving journaled progress to resume from.
  ASSERT_TRUE(coordinator.Start(CoordinatorOptions("state", /*lease_ms=*/300,
                                                   /*records_per_task=*/512),
                                &error))
      << error;

  serve::JobResult result;
  std::thread run_thread([&] { result = coordinator.Run(); });

  // The doomed worker crawls (400 ms per exec shard, longer than the
  // lease) and is killed as soon as it has delivered one progress frame.
  WorkerHarness doomed;
  doomed.Start(coordinator.port(), "doomed", /*throttle_ms=*/400);
  ASSERT_TRUE(WaitForShardz(coordinator, [](const obs::JsonValue& shardz) {
    const obs::JsonValue* shards = shardz.Get("shards");
    if (shards == nullptr || !shards->is_array()) return false;
    for (const obs::JsonValue& shard : shards->array) {
      if (shard.GetNumber("done", 0.0) > 0.0) return true;
    }
    return false;
  }));
  doomed.run.RequestCancel();
  doomed.Join();
  EXPECT_EQ(doomed.status.code(), StatusCode::kCancelled);

  // The survivor inherits the half-done shard once the lease lapses.
  WorkerHarness survivor;
  survivor.Start(coordinator.port(), "survivor", /*throttle_ms=*/0);
  run_thread.join();
  survivor.Join();
  coordinator.Stop();

  ASSERT_TRUE(result.ok) << result.message;
  serve::JobResult solo = Solo();
  ASSERT_TRUE(solo.ok);
  EXPECT_EQ(result.rows, solo.rows);
  EXPECT_EQ(result.scans, solo.scans);
  EXPECT_GT(reg.CounterValue("dist.shards.reassigned"), reassigned_before);
  EXPECT_GT(reg.CounterValue("dist.shards.resumed") +
                reg.CounterValue("dist.shards.restarted"),
            retaken_before);
}

TEST_F(DistMiningTest, ZombieWithStaleEpochIsFencedAndNeverCounted) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t fenced_before = reg.CounterValue("dist.results.fenced");

  Coordinator coordinator;
  std::string error;
  ASSERT_TRUE(coordinator.Start(CoordinatorOptions("state", /*lease_ms=*/250,
                                                   /*records_per_task=*/256),
                                &error))
      << error;
  serve::JobResult result;
  std::thread run_thread([&] { result = coordinator.Run(); });

  // The zombie grabs a task, then goes silent past its lease.
  RawConnection zombie(coordinator.port());
  ASSERT_TRUE(zombie.ok());
  std::optional<obs::JsonValue> hello = zombie.RoundTrip(
      "{\"v\": 1, \"op\": \"hello\", \"worker\": \"zombie\"}\n");
  ASSERT_TRUE(hello.has_value());
  uint64_t scan = 0, shard = 0, epoch = 0;
  size_t width = 0, num_exec = 0;
  {
    const Clock::time_point deadline =
        Clock::now() + std::chrono::seconds(10);
    bool granted = false;
    while (!granted && Clock::now() < deadline) {
      std::optional<obs::JsonValue> reply = zombie.RoundTrip(
          "{\"v\": 1, \"op\": \"poll\", \"worker\": \"zombie\"}\n");
      ASSERT_TRUE(reply.has_value());
      std::optional<PollReply> parsed = ParsePollReply(*reply);
      ASSERT_TRUE(parsed.has_value());
      ASSERT_FALSE(parsed->shutdown);  // job must not finish without us
      if (parsed->task.has_value()) {
        scan = parsed->task->scan;
        shard = parsed->task->shard;
        epoch = parsed->task->epoch;
        width = parsed->task->patterns.size();
        const uint64_t records =
            parsed->task->end_record - parsed->task->begin_record;
        num_exec = static_cast<size_t>((records + 255) / 256);
        granted = true;
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    ASSERT_TRUE(granted);
  }

  // A live worker picks up the slack; wait until the coordinator has
  // re-granted the zombie's shard at a higher epoch.
  WorkerHarness worker;
  worker.Start(coordinator.port(), "live", /*throttle_ms=*/0);
  ASSERT_TRUE(WaitForShardz(coordinator, [&](const obs::JsonValue& shardz) {
    const obs::JsonValue* shards = shardz.Get("shards");
    if (shards == nullptr || !shards->is_array()) return false;
    for (const obs::JsonValue& s : shards->array) {
      if (static_cast<uint64_t>(s.GetNumber("id", 0.0)) == shard &&
          static_cast<uint64_t>(s.GetNumber("epoch", 0.0)) > epoch) {
        return true;
      }
    }
    // The whole scan may already be over — that also outruns the zombie.
    const obs::JsonValue* active = shardz.Get("scan_active");
    return active != nullptr && !active->bool_value;
  }));

  // The zombie wakes up and reports a COMPLETE, POISONED count under its
  // stale epoch. The coordinator must refuse it with a typed error.
  std::string poison = "{\"v\": 1, \"op\": \"progress\", \"worker\": "
                       "\"zombie\", \"scan\": " +
                       std::to_string(scan) +
                       ", \"shard\": " + std::to_string(shard) +
                       ", \"epoch\": " + std::to_string(epoch) +
                       ", \"done\": " + std::to_string(num_exec) +
                       ", \"complete\": true, \"partials\": [";
  for (size_t k = 0; k < num_exec; ++k) {
    if (k > 0) poison.append(", ");
    poison.append("[");
    for (size_t i = 0; i < width; ++i) {
      if (i > 0) poison.append(", ");
      poison.append("\"" + EncodeDoubleBits(999.0) + "\"");
    }
    poison.append("]");
  }
  poison.append("]}\n");
  std::optional<obs::JsonValue> verdict = zombie.RoundTrip(poison);
  ASSERT_TRUE(verdict.has_value());
  const obs::JsonValue* ok = verdict->Get("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->bool_value);
  const obs::JsonValue* code = verdict->Get("error");
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(code->string_value, "FAILED_PRECONDITION");

  run_thread.join();
  worker.Join();
  coordinator.Stop();

  EXPECT_GT(reg.CounterValue("dist.results.fenced"), fenced_before);
  ASSERT_TRUE(result.ok) << result.message;
  serve::JobResult solo = Solo();
  ASSERT_TRUE(solo.ok);
  // The poison never landed: bit-identical rows.
  EXPECT_EQ(result.rows, solo.rows);
}

TEST_F(DistMiningTest, CoordinatorRestartAdoptsTheJournaledScan) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t adopted_before = reg.CounterValue("dist.scans.adopted");
  const std::string state_subdir = "state";

  serve::JobResult first_result;
  {
    Coordinator coordinator;
    std::string error;
    // Tight lease so the workerless coordinator starts counting locally
    // (through the journaled grant/progress path) almost immediately.
    ASSERT_TRUE(coordinator.Start(
        CoordinatorOptions(state_subdir, /*lease_ms=*/100,
                           /*records_per_task=*/256),
        &error))
        << error;
    std::thread run_thread([&] { first_result = coordinator.Run(); });
    // Kill the first life mid-scan, right after the FIRST task's progress
    // hits the journal (the file is the durable, race-free signal — the
    // live shardz view exposes mid-scan state only for instants). The job
    // has exactly one distributed scan (phase 3 verifies all candidates
    // in a single batch) of three single-exec-shard tasks, so when the
    // first progress line lands, two full task counts still separate the
    // scan from its scan_end — ample room for Stop() to cancel mid-scan
    // and strand an in-flight scan WITH journaled shard progress.
    const std::string journal_path = dir_ + "/" + state_subdir +
                                     "/dist.journal";
    bool mid_scan = false;
    const Clock::time_point deadline = Clock::now() + std::chrono::seconds(10);
    while (Clock::now() < deadline) {
      std::ifstream in(journal_path);
      std::string contents((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
      if (contents.find("\"event\": \"progress\"") != std::string::npos) {
        mid_scan = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    coordinator.Stop();
    run_thread.join();
    ASSERT_TRUE(mid_scan);
    EXPECT_FALSE(first_result.ok);  // the first life died mid-run
  }

  // Second life, same state dir: resumes the run from its checkpoint and
  // adopts the in-flight scan's journaled shard progress.
  Coordinator coordinator;
  std::string error;
  ASSERT_TRUE(coordinator.Start(CoordinatorOptions(state_subdir,
                                                   /*lease_ms=*/100,
                                                   /*records_per_task=*/256),
                                &error))
      << error;
  serve::JobResult result = coordinator.Run();
  coordinator.Stop();

  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_TRUE(result.resumed_from_checkpoint);
  EXPECT_GT(reg.CounterValue("dist.scans.adopted"), adopted_before);
  serve::JobResult solo = Solo();
  ASSERT_TRUE(solo.ok);
  EXPECT_EQ(result.rows, solo.rows);
  EXPECT_EQ(result.scans, solo.scans);
}

TEST_F(DistMiningTest, ShardzExposesOwnersLeasesAndCounters) {
  Coordinator coordinator;
  std::string error;
  // 512-record tasks = 2 exec shards: after the first progress frame the
  // worker throttles 100 ms, leaving its lease visibly held (owner set,
  // done == 1) for the poll below to observe.
  ASSERT_TRUE(coordinator.Start(CoordinatorOptions("state", /*lease_ms=*/5000,
                                                   /*records_per_task=*/512),
                                &error))
      << error;
  serve::JobResult result;
  std::thread run_thread([&] { result = coordinator.Run(); });
  WorkerHarness worker;
  worker.Start(coordinator.port(), "observer-w", /*throttle_ms=*/100);

  bool saw_owner = false;
  WaitForShardz(coordinator, [&](const obs::JsonValue& shardz) {
    const obs::JsonValue* shards = shardz.Get("shards");
    if (shards == nullptr || !shards->is_array()) return false;
    for (const obs::JsonValue& shard : shards->array) {
      const obs::JsonValue* owner = shard.Get("owner");
      if (owner != nullptr && owner->string_value == "observer-w" &&
          shard.Get("lease_age_ms") != nullptr &&
          shard.Get("reassigns") != nullptr &&
          shard.Get("epoch") != nullptr) {
        saw_owner = true;
        return true;
      }
    }
    return false;
  });
  run_thread.join();
  worker.Join();
  coordinator.Stop();

  EXPECT_TRUE(saw_owner);
  ASSERT_TRUE(result.ok);
  // Run-level counters ride along on every board.
  std::optional<obs::JsonValue> shardz =
      obs::ParseJson(coordinator.ShardzJson());
  ASSERT_TRUE(shardz.has_value());
  EXPECT_NE(shardz->Get("reassigned"), nullptr);
  EXPECT_NE(shardz->Get("fenced"), nullptr);
  EXPECT_NE(shardz->Get("resumed"), nullptr);
  EXPECT_NE(shardz->Get("restarted"), nullptr);
}

}  // namespace
}  // namespace dist
}  // namespace nmine
