// Wire protocol of the distributed miner: doubles must cross the wire
// bit-exactly (the whole bit-identity contract rides on it), worker
// frames must be version-fenced, and malformed frames must fail typed —
// never parse into a half-filled request a coordinator would act on.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/dist/wire.h"
#include "nmine/obs/json_parse.h"
#include "test_util.h"

namespace nmine {
namespace dist {
namespace {

uint64_t BitsOf(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

TEST(DoubleBitsTest, RoundTripsExactBitPatterns) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          -1e300,
                          5e-324,  // smallest denormal
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN(),
                          0.27731999999999999};
  for (double d : cases) {
    std::string hex = EncodeDoubleBits(d);
    EXPECT_EQ(hex.size(), 16u);
    double back = 0.0;
    ASSERT_TRUE(DecodeDoubleBits(hex, &back)) << hex;
    EXPECT_EQ(BitsOf(d), BitsOf(back)) << hex;  // bitwise, NaN included
  }
}

TEST(DoubleBitsTest, RejectsAnythingButSixteenLowercaseHexDigits) {
  double d = 0.0;
  EXPECT_FALSE(DecodeDoubleBits("", &d));
  EXPECT_FALSE(DecodeDoubleBits("3fd5555555555555ff", &d));  // 18 chars
  EXPECT_FALSE(DecodeDoubleBits("3fd555555555555", &d));     // 15 chars
  EXPECT_FALSE(DecodeDoubleBits("3FD5555555555555", &d));    // uppercase
  EXPECT_FALSE(DecodeDoubleBits("3fd555555555555g", &d));    // non-hex
  EXPECT_FALSE(DecodeDoubleBits("0x3fd55555555555", &d));    // prefix
}

TEST(PatternsJsonTest, RoundTripsWildcards) {
  std::vector<Pattern> patterns = {testutil::P({0, -1, 2}),
                                   testutil::P({1, 3}), testutil::P({4})};
  std::string json;
  AppendPatternsJson(patterns, &json);
  std::optional<obs::JsonValue> value = obs::ParseJson(json);
  ASSERT_TRUE(value.has_value());
  std::vector<Pattern> back;
  ASSERT_TRUE(ParsePatternsJson(*value, &back));
  ASSERT_EQ(back.size(), patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    EXPECT_TRUE(back[i] == patterns[i]) << i;
  }
}

TEST(PatternsJsonTest, RejectsInvalidBodies) {
  std::vector<Pattern> out;
  // Wildcard endpoint and empty body are invalid pattern bodies.
  std::optional<obs::JsonValue> bad = obs::ParseJson("[[-1, 2]]");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ParsePatternsJson(*bad, &out));
  bad = obs::ParseJson("[[]]");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ParsePatternsJson(*bad, &out));
  bad = obs::ParseJson("[[\"a\"]]");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ParsePatternsJson(*bad, &out));
}

TEST(DistRequestTest, ParsesProgressFrame) {
  std::string line =
      "{\"v\": 1, \"op\": \"progress\", \"worker\": \"w1\", \"scan\": 3, "
      "\"shard\": 2, \"epoch\": 5, \"done\": 2, \"complete\": true, "
      "\"partials\": [[\"" +
      EncodeDoubleBits(1.5) + "\"], [\"" + EncodeDoubleBits(-0.25) + "\"]]}";
  std::string error, code;
  std::optional<DistRequest> request = ParseDistRequest(line, &error, &code);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_EQ(request->op, "progress");
  EXPECT_EQ(request->worker, "w1");
  EXPECT_EQ(request->scan, 3u);
  EXPECT_EQ(request->shard, 2u);
  EXPECT_EQ(request->epoch, 5u);
  EXPECT_EQ(request->done, 2u);
  EXPECT_TRUE(request->complete);
  ASSERT_EQ(request->partials.size(), 2u);
  EXPECT_EQ(request->partials[0][0], 1.5);
  EXPECT_EQ(request->partials[1][0], -0.25);
}

TEST(DistRequestTest, WorkerOpsAreVersionFenced) {
  std::string error, code;
  // Missing "v" entirely.
  EXPECT_FALSE(ParseDistRequest("{\"op\": \"poll\", \"worker\": \"w\"}",
                                &error, &code)
                   .has_value());
  EXPECT_EQ(code, "FAILED_PRECONDITION");
  // Wrong version.
  EXPECT_FALSE(
      ParseDistRequest("{\"v\": 2, \"op\": \"hello\", \"worker\": \"w\"}",
                       &error, &code)
          .has_value());
  EXPECT_EQ(code, "FAILED_PRECONDITION");
  // Client frames (ping/wait) are plain v1 serve-style lines: no "v".
  EXPECT_TRUE(ParseDistRequest("{\"op\": \"ping\"}", &error, &code)
                  .has_value());
  EXPECT_TRUE(ParseDistRequest("{\"op\": \"wait\"}", &error, &code)
                  .has_value());
}

TEST(DistRequestTest, MalformedFramesFailTyped) {
  struct Case {
    const char* line;
    const char* expect_code;
  };
  const Case cases[] = {
      {"not json at all", "INVALID_ARGUMENT"},
      {"[1, 2, 3]", "INVALID_ARGUMENT"},
      {"{\"op\": 7}", "INVALID_ARGUMENT"},
      {"{\"op\": \"launch\"}", "INVALID_ARGUMENT"},
      {"{\"v\": 1, \"op\": \"poll\", \"worker\": \"\"}", "INVALID_ARGUMENT"},
      // done disagrees with the partial count.
      {"{\"v\": 1, \"op\": \"progress\", \"worker\": \"w\", \"scan\": 1, "
       "\"shard\": 0, \"epoch\": 1, \"done\": 2, \"partials\": []}",
       "INVALID_ARGUMENT"},
      // partials not hex-encoded.
      {"{\"v\": 1, \"op\": \"progress\", \"worker\": \"w\", \"scan\": 1, "
       "\"shard\": 0, \"epoch\": 1, \"done\": 1, \"partials\": [[0.5]]}",
       "INVALID_ARGUMENT"},
  };
  for (const Case& c : cases) {
    std::string error, code;
    EXPECT_FALSE(ParseDistRequest(c.line, &error, &code).has_value())
        << c.line;
    EXPECT_EQ(code, c.expect_code) << c.line;
    EXPECT_FALSE(error.empty()) << c.line;
  }
}

TEST(HelloResponseTest, RoundTrips) {
  HelloInfo info;
  info.db_path = "/data/db.nmsq";
  info.matrix_path = "";
  info.uniform_alpha = 0.1;
  info.metric = "match";
  info.num_symbols = 6;
  info.num_sequences = 60;
  info.exec_shard_size = 256;
  info.lease_ms = 2000;
  std::optional<obs::JsonValue> value = obs::ParseJson(HelloResponse(info));
  ASSERT_TRUE(value.has_value());
  std::optional<HelloInfo> back = ParseHelloResponse(*value);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->db_path, info.db_path);
  EXPECT_EQ(back->uniform_alpha, info.uniform_alpha);
  EXPECT_EQ(back->metric, info.metric);
  EXPECT_EQ(back->num_sequences, info.num_sequences);
  EXPECT_EQ(back->exec_shard_size, info.exec_shard_size);
  EXPECT_EQ(back->lease_ms, info.lease_ms);
}

TEST(HelloResponseTest, RejectsMissingVersionOrGeometry) {
  std::optional<obs::JsonValue> value = obs::ParseJson(
      "{\"ok\": true, \"db\": \"x\", \"metric\": \"match\", "
      "\"exec_shard_size\": 256}");
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(ParseHelloResponse(*value).has_value());  // no "v"
  value = obs::ParseJson(
      "{\"ok\": true, \"v\": 1, \"db\": \"x\", \"metric\": \"match\", "
      "\"exec_shard_size\": 0}");
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(ParseHelloResponse(*value).has_value());  // zero shard size
}

TEST(PollReplyTest, TaskRoundTripsWithResumeState) {
  TaskAssignment task;
  task.scan = 7;
  task.shard = 3;
  task.epoch = 9;
  task.begin_record = 512;
  task.end_record = 1024;
  task.resume_done = 1;
  task.resume_partials = {{0.5, -0.0}};
  task.patterns = {testutil::P({0, -1, 2})};
  std::optional<obs::JsonValue> value = obs::ParseJson(TaskResponse(task));
  ASSERT_TRUE(value.has_value());
  std::optional<PollReply> reply = ParsePollReply(*value);
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(reply->task.has_value());
  EXPECT_FALSE(reply->shutdown);
  EXPECT_EQ(reply->task->scan, 7u);
  EXPECT_EQ(reply->task->shard, 3u);
  EXPECT_EQ(reply->task->epoch, 9u);
  EXPECT_EQ(reply->task->begin_record, 512u);
  EXPECT_EQ(reply->task->end_record, 1024u);
  ASSERT_EQ(reply->task->resume_partials.size(), 1u);
  EXPECT_EQ(BitsOf(reply->task->resume_partials[0][1]), BitsOf(-0.0));
  ASSERT_EQ(reply->task->patterns.size(), 1u);
}

TEST(PollReplyTest, IdleAndShutdownForms) {
  std::optional<obs::JsonValue> idle = obs::ParseJson(IdleResponse(75));
  ASSERT_TRUE(idle.has_value());
  std::optional<PollReply> reply = ParsePollReply(*idle);
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->task.has_value());
  EXPECT_FALSE(reply->shutdown);
  EXPECT_EQ(reply->idle_ms, 75);

  std::optional<obs::JsonValue> shutdown = obs::ParseJson(ShutdownResponse());
  ASSERT_TRUE(shutdown.has_value());
  reply = ParsePollReply(*shutdown);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->shutdown);
}

TEST(PollReplyTest, RejectsCorruptTasks) {
  // Empty record range.
  std::optional<obs::JsonValue> bad = obs::ParseJson(
      "{\"ok\": true, \"task\": {\"scan\": 1, \"shard\": 0, \"epoch\": 1, "
      "\"begin\": 9, \"end\": 9, \"resume_done\": 0, "
      "\"resume_partials\": [], \"patterns\": [[0]]}}");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ParsePollReply(*bad).has_value());
  // resume_done disagrees with resume_partials.
  bad = obs::ParseJson(
      "{\"ok\": true, \"task\": {\"scan\": 1, \"shard\": 0, \"epoch\": 1, "
      "\"begin\": 0, \"end\": 9, \"resume_done\": 1, "
      "\"resume_partials\": [], \"patterns\": [[0]]}}");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ParsePollReply(*bad).has_value());
}

}  // namespace
}  // namespace dist
}  // namespace nmine
