// The coordinator's write-ahead journal: epochs must never regress across
// reopen (the zombie fence depends on it), in-flight scan progress must
// replay exactly, a torn tail must be skipped, and Open must compact dead
// scans away.
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/dist/journal.h"
#include "test_util.h"

namespace nmine {
namespace dist {
namespace {

class DistJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/dist_journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DistJournalTest, EpochsSurviveReopenAndNeverRegress) {
  ReplayState state;
  std::string error;
  std::unique_ptr<DistJournal> journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  EXPECT_TRUE(state.epochs.empty());
  ASSERT_TRUE(journal->AppendEpoch(0, 1).ok());
  ASSERT_TRUE(journal->AppendEpoch(0, 2).ok());
  ASSERT_TRUE(journal->AppendEpoch(7, 5).ok());
  journal.reset();

  journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  EXPECT_EQ(state.epochs[0], 2u);
  EXPECT_EQ(state.epochs[7], 5u);
  EXPECT_FALSE(state.has_scan);
}

TEST_F(DistJournalTest, InFlightScanReplaysWithExactPartials) {
  ReplayState state;
  std::string error;
  std::unique_ptr<DistJournal> journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;

  ASSERT_TRUE(journal->AppendScanBegin(3, 0xdeadbeefcafef00dull).ok());
  ShardProgress progress;
  progress.done = 2;
  progress.complete = false;
  progress.partials = {{0.5, -0.0}, {1.0 / 3.0, 2.0}};
  ASSERT_TRUE(journal->AppendShardProgress(3, 1, progress).ok());
  // A later frame REPLACES the earlier one — cumulative, never additive.
  progress.done = 3;
  progress.complete = true;
  progress.partials.push_back({4.0, 5.0});
  ASSERT_TRUE(journal->AppendShardProgress(3, 1, progress).ok());
  journal.reset();

  journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_TRUE(state.has_scan);
  EXPECT_EQ(state.scan, 3u);
  EXPECT_EQ(state.fingerprint, 0xdeadbeefcafef00dull);
  ASSERT_EQ(state.shards.count(1), 1u);
  const ShardProgress& replayed = state.shards.at(1);
  EXPECT_EQ(replayed.done, 3u);
  EXPECT_TRUE(replayed.complete);
  ASSERT_EQ(replayed.partials.size(), 3u);
  EXPECT_EQ(replayed.partials[1][0], 1.0 / 3.0);
  EXPECT_TRUE(std::signbit(replayed.partials[0][1]));  // -0.0 preserved
}

TEST_F(DistJournalTest, ScanEndClearsInFlightStateAndCompactionDropsIt) {
  ReplayState state;
  std::string error;
  std::unique_ptr<DistJournal> journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  const std::string path = journal->path();

  ASSERT_TRUE(journal->AppendEpoch(2, 4).ok());
  ASSERT_TRUE(journal->AppendScanBegin(1, 42).ok());
  ShardProgress progress;
  progress.done = 1;
  progress.partials = {{9.0}};
  ASSERT_TRUE(journal->AppendShardProgress(1, 0, progress).ok());
  ASSERT_TRUE(journal->AppendScanEnd(1).ok());
  journal.reset();

  journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  EXPECT_FALSE(state.has_scan);
  EXPECT_EQ(state.epochs[2], 4u);
  // Compaction keeps only what the next life needs: the epoch line.
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents.find("progress"), std::string::npos);
  EXPECT_EQ(contents.find("scan"), std::string::npos);
  EXPECT_NE(contents.find("epoch"), std::string::npos);
}

TEST_F(DistJournalTest, NewScanSupersedesTheOldOne) {
  ReplayState state;
  std::string error;
  std::unique_ptr<DistJournal> journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_TRUE(journal->AppendScanBegin(1, 111).ok());
  ShardProgress progress;
  progress.done = 1;
  progress.partials = {{1.0}};
  ASSERT_TRUE(journal->AppendShardProgress(1, 0, progress).ok());
  ASSERT_TRUE(journal->AppendScanBegin(2, 222).ok());
  journal.reset();

  journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  ASSERT_TRUE(state.has_scan);
  EXPECT_EQ(state.scan, 2u);
  EXPECT_EQ(state.fingerprint, 222u);
  EXPECT_TRUE(state.shards.empty());  // scan 1's progress is dead
}

TEST_F(DistJournalTest, TornTailIsSkippedNotFatal) {
  ReplayState state;
  std::string error;
  std::unique_ptr<DistJournal> journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  const std::string path = journal->path();
  ASSERT_TRUE(journal->AppendEpoch(0, 3).ok());
  ASSERT_TRUE(journal->AppendScanBegin(5, 99).ok());
  journal.reset();

  // SIGKILL mid-write: the final line is half a progress frame.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"event\": \"progress\", \"scan\": 5, \"shard\": 0, \"done\": 1, "
           "\"partials\": [[\"3fd5";
  }

  journal = DistJournal::Open(dir_, &state, &error);
  ASSERT_NE(journal, nullptr) << error;
  EXPECT_EQ(state.epochs[0], 3u);
  ASSERT_TRUE(state.has_scan);
  EXPECT_EQ(state.scan, 5u);
  // The torn frame was never acknowledged, so dropping it is correct.
  EXPECT_TRUE(state.shards.empty());
}

TEST(ScanFingerprintTest, SensitiveToMetricPatternsAndOrder) {
  std::vector<Pattern> a = {testutil::P({0, 1}), testutil::P({2})};
  std::vector<Pattern> reordered = {testutil::P({2}), testutil::P({0, 1})};
  std::vector<Pattern> wildcarded = {testutil::P({0, -1, 1}),
                                     testutil::P({2})};
  const uint64_t base = ScanFingerprint("match", a);
  EXPECT_EQ(base, ScanFingerprint("match", a));  // deterministic
  EXPECT_NE(base, ScanFingerprint("support", a));
  EXPECT_NE(base, ScanFingerprint("match", reordered));
  EXPECT_NE(base, ScanFingerprint("match", wildcarded));
  EXPECT_NE(base, ScanFingerprint("match", {}));
}

}  // namespace
}  // namespace dist
}  // namespace nmine
