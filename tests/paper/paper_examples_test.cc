// Exact-value verification of every self-consistent number in the paper's
// worked examples (Figures 2, 4 and 5, and the Section-3/4 prose). Two
// cells of the paper's own tables are internally inconsistent with its
// Figure-2 matrix (documented in EXPERIMENTS.md); those assert the values
// implied by the paper's definitions.
#include <algorithm>

#include <gtest/gtest.h>

#include "nmine/bio/amino_acids.h"
#include "nmine/core/match.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/mining/symbol_scan.h"
#include "nmine/stats/chernoff.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::Figure2Matrix;
using testutil::Figure4Database;
using testutil::P;

TEST(PaperExamples, Figure2MatrixColumnExpansion) {
  // "an observed d1 corresponds to a true occurrence of d1, d2, and d3
  // with probability 0.9, 0.05, and 0.05" (Section 1).
  CompatibilityMatrix c = Figure2Matrix();
  EXPECT_DOUBLE_EQ(c(0, 0), 0.90);
  EXPECT_DOUBLE_EQ(c(1, 0), 0.05);
  EXPECT_DOUBLE_EQ(c(2, 0), 0.05);
  EXPECT_DOUBLE_EQ(c(3, 0), 0.00);
  EXPECT_DOUBLE_EQ(c(4, 0), 0.00);
}

TEST(PaperExamples, Section3MatchOfPatternInSegment) {
  CompatibilityMatrix c = Figure2Matrix();
  // M(d1*d2, d1d2d2) = 0.9 * 1 * 0.8 = 0.72.
  EXPECT_DOUBLE_EQ(SegmentMatch(c, P({0, -1, 1}), {0, 1, 1}, 0), 0.72);
  // M(d1d2d5, d1d2d2) = 0 (C(d5, d2) = 0).
  EXPECT_DOUBLE_EQ(SegmentMatch(c, P({0, 1, 4}), {0, 1, 1}, 0), 0.0);
}

TEST(PaperExamples, Section3MatchInSequence) {
  // "max{0.72, 0.08, 0.005, 0, 0} = 0.72" for d1d2 in d1d2d2d3d4d1.
  CompatibilityMatrix c = Figure2Matrix();
  EXPECT_DOUBLE_EQ(SequenceMatch(c, P({0, 1}), {0, 1, 1, 2, 3, 0}), 0.72);
}

TEST(PaperExamples, Figure4bSupportOfEachSymbol) {
  InMemorySequenceDatabase db = Figure4Database();
  std::vector<double> sup =
      CountSupports(db, {P({0}), P({1}), P({2}), P({3}), P({4})});
  EXPECT_DOUBLE_EQ(sup[0], 0.75);  // d1
  EXPECT_DOUBLE_EQ(sup[1], 1.00);  // d2
  EXPECT_DOUBLE_EQ(sup[2], 0.50);  // d3
  EXPECT_DOUBLE_EQ(sup[3], 0.50);  // d4
  EXPECT_DOUBLE_EQ(sup[4], 0.00);  // d5
}

TEST(PaperExamples, Figure4bMatchOfEachSymbol) {
  // d2, d4, d5 agree with the paper (0.800, 0.425, 0.075). The paper
  // prints 0.538 for d1 and 0.400 for d3; its own Figure 5(b) running
  // sums give 0.675 + 0.1/4 = 0.7 and 0.3875 (see EXPERIMENTS.md).
  InMemorySequenceDatabase db = Figure4Database();
  std::vector<double> m = CountMatches(
      db, Figure2Matrix(), {P({0}), P({1}), P({2}), P({3}), P({4})});
  EXPECT_NEAR(m[0], 0.700, 1e-12);
  EXPECT_NEAR(m[1], 0.800, 1e-12);
  EXPECT_NEAR(m[2], 0.3875, 1e-12);
  EXPECT_NEAR(m[3], 0.425, 1e-12);
  EXPECT_NEAR(m[4], 0.075, 1e-12);
}

TEST(PaperExamples, Figure4cTwoSymbolPatterns) {
  // Hand-verified cells of Figure 4(c).
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  std::vector<Pattern> patterns = {
      P({0, 1}),  // d1 d2: paper 0.203
      P({1, 0}),  // d2 d1: paper 0.391
      P({3, 1}),  // d4 d2: paper 0.321
      P({2, 4}),  // d3 d5: paper 0
      P({4, 4}),  // d5 d5: paper 0
  };
  std::vector<double> m = CountMatches(db, c, patterns);
  EXPECT_NEAR(m[0], 0.2025, 1e-12);
  EXPECT_NEAR(m[1], 0.39125, 1e-12);
  EXPECT_NEAR(m[2], 0.32125, 1e-12);
  EXPECT_DOUBLE_EQ(m[3], 0.0);
  EXPECT_DOUBLE_EQ(m[4], 0.0);

  std::vector<double> s = CountSupports(db, patterns);
  EXPECT_DOUBLE_EQ(s[0], 0.25);
  EXPECT_DOUBLE_EQ(s[1], 0.50);
  EXPECT_DOUBLE_EQ(s[2], 0.50);
  EXPECT_DOUBLE_EQ(s[3], 0.0);
}

TEST(PaperExamples, Figure4dContributionOfSegmentD2D2) {
  // "the match contributed to each pattern by an observation of d2 d2";
  // 9 patterns benefit and the contributions sum to 1.
  CompatibilityMatrix c = Figure2Matrix();
  Sequence seg = {1, 1};
  double total = 0.0;
  size_t positive = 0;
  for (SymbolId i = 0; i < 5; ++i) {
    for (SymbolId j = 0; j < 5; ++j) {
      double m = SegmentMatch(c, P({i, j}), seg, 0);
      total += m;
      if (m > 0) ++positive;
    }
  }
  EXPECT_EQ(positive, 9u);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Spot values from Figure 4(d).
  EXPECT_DOUBLE_EQ(SegmentMatch(c, P({1, 1}), seg, 0), 0.64);
  EXPECT_DOUBLE_EQ(SegmentMatch(c, P({0, 1}), seg, 0), 0.08);
  EXPECT_DOUBLE_EQ(SegmentMatch(c, P({0, 0}), seg, 0), 0.01);
}

TEST(PaperExamples, Figure5aMaxMatchProgression) {
  // max_match after examining each element of "d1 d2 d3 d1".
  CompatibilityMatrix c = Figure2Matrix();
  Sequence s1 = {0, 1, 2, 0};
  std::vector<double> max_match(5, 0.0);
  std::vector<std::vector<double>> snapshots;
  for (SymbolId obs : s1) {
    for (SymbolId d = 0; d < 5; ++d) {
      max_match[static_cast<size_t>(d)] =
          std::max(max_match[static_cast<size_t>(d)], c(d, obs));
    }
    snapshots.push_back(max_match);
  }
  // After d1: 0.9, 0.05, 0.05, 0, 0.
  EXPECT_DOUBLE_EQ(snapshots[0][0], 0.9);
  EXPECT_DOUBLE_EQ(snapshots[0][1], 0.05);
  EXPECT_DOUBLE_EQ(snapshots[0][2], 0.05);
  EXPECT_DOUBLE_EQ(snapshots[0][3], 0.0);
  // After d2: d2 -> 0.8, d4 -> 0.1.
  EXPECT_DOUBLE_EQ(snapshots[1][1], 0.8);
  EXPECT_DOUBLE_EQ(snapshots[1][3], 0.1);
  // After d3: d3 -> 0.7, d5 -> 0.15.
  EXPECT_DOUBLE_EQ(snapshots[2][2], 0.7);
  EXPECT_DOUBLE_EQ(snapshots[2][4], 0.15);
  // Final column: 0.9, 0.8, 0.7, 0.1, 0.15.
  EXPECT_DOUBLE_EQ(snapshots[3][0], 0.9);
  EXPECT_DOUBLE_EQ(snapshots[3][1], 0.8);
  EXPECT_DOUBLE_EQ(snapshots[3][2], 0.7);
  EXPECT_DOUBLE_EQ(snapshots[3][3], 0.1);
  EXPECT_DOUBLE_EQ(snapshots[3][4], 0.15);
}

TEST(PaperExamples, Figure5bRunningMatchProgression) {
  // The running match after each sequence; checked against the columns of
  // Figure 5(b) that are consistent with the Figure-2 matrix (all of
  // d2/d4/d5, and d1/d3 up to sequence 3 — see EXPERIMENTS.md).
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  std::vector<double> match(5, 0.0);
  std::vector<std::vector<double>> after;
  db.Scan([&](const SequenceRecord& r) {
    std::vector<double> max_match(5, 0.0);
    for (SymbolId obs : r.symbols) {
      for (SymbolId d = 0; d < 5; ++d) {
        max_match[static_cast<size_t>(d)] =
            std::max(max_match[static_cast<size_t>(d)], c(d, obs));
      }
    }
    for (size_t d = 0; d < 5; ++d) {
      match[d] += max_match[d] / 4.0;
    }
    after.push_back(match);
  });
  EXPECT_NEAR(after[0][0], 0.225, 1e-9);
  EXPECT_NEAR(after[1][0], 0.450, 1e-9);
  EXPECT_NEAR(after[2][0], 0.675, 1e-9);
  EXPECT_NEAR(after[0][1], 0.200, 1e-9);
  EXPECT_NEAR(after[3][1], 0.800, 1e-9);
  EXPECT_NEAR(after[0][2], 0.175, 1e-9);
  EXPECT_NEAR(after[1][2], 0.2125, 1e-9);
  EXPECT_NEAR(after[2][2], 0.3875, 1e-9);
  EXPECT_NEAR(after[0][3], 0.025, 1e-9);
  EXPECT_NEAR(after[1][3], 0.2125, 1e-9);
  EXPECT_NEAR(after[2][3], 0.400, 1e-9);
  EXPECT_NEAR(after[3][3], 0.425, 1e-9);
  EXPECT_NEAR(after[0][4], 0.0375, 1e-9);
  EXPECT_NEAR(after[3][4], 0.075, 1e-9);
}

TEST(PaperExamples, Section3PatternChainMatches) {
  // "consider patterns d3, d3d2, d3d2d2, and d3d2d2d1 ... their matches
  // are 0.4, 0.07, 0.016, and 0.00522". Hand-derivation gives 0.3875,
  // 0.07, 0.016 and 0.01305 (the last looks like a misplaced decimal in
  // the paper: the per-sequence maxima sum to 0.0522 before dividing by
  // N = 4); supports are 0.5, 0, 0, 0 as stated.
  InMemorySequenceDatabase db = Figure4Database();
  CompatibilityMatrix c = Figure2Matrix();
  std::vector<Pattern> chain = {P({2}), P({2, 1}), P({2, 1, 1}),
                                P({2, 1, 1, 0})};
  std::vector<double> m = CountMatches(db, c, chain);
  EXPECT_NEAR(m[0], 0.3875, 1e-12);
  EXPECT_NEAR(m[1], 0.07, 1e-12);
  EXPECT_NEAR(m[2], 0.016, 1e-12);
  EXPECT_NEAR(m[3], 0.01305, 1e-12);

  std::vector<double> s = CountSupports(db, chain);
  EXPECT_DOUBLE_EQ(s[0], 0.5);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
  EXPECT_DOUBLE_EQ(s[3], 0.0);

  // The qualitative claim holds: the match decays far more slowly than
  // the support as the pattern grows.
  EXPECT_GT(m[1], 0.0);
  EXPECT_GT(m[2], 0.0);
  EXPECT_GT(m[3], 0.0);
}

TEST(PaperExamples, Section4ChernoffNumbers) {
  // n = 10000, R = 1, delta = 1e-4 -> eps ~ 0.0215 (Section 4).
  EXPECT_NEAR(ChernoffEpsilon(1.0, 1e-4, 10000), 0.0215, 5e-4);
  // Claim 4.2 example: matches 0.1 and 0.05 -> R = 0.05, a 95% reduction.
  EXPECT_DOUBLE_EQ(0.05 / 1.0, 0.05);
}

TEST(PaperExamples, ZincFingerSignatureParses) {
  // Section 3: C**C************H**H (the gap widths are illustrative).
  Alphabet a = AminoAcidAlphabet();
  std::optional<Pattern> zinc =
      Pattern::Parse("C * * C * * * * * * * * * * * * H * * H", a);
  ASSERT_TRUE(zinc.has_value());
  EXPECT_EQ(zinc->NumSymbols(), 4u);
  EXPECT_EQ(zinc->length(), 20u);
}

}  // namespace
}  // namespace nmine
