#include "test_util.h"

#include <functional>

#include "nmine/core/match.h"

namespace nmine {
namespace testutil {

CompatibilityMatrix Figure2Matrix() {
  return CompatibilityMatrix({
      {0.90, 0.10, 0.00, 0.00, 0.00},  // d1
      {0.05, 0.80, 0.05, 0.10, 0.00},  // d2
      {0.05, 0.00, 0.70, 0.15, 0.10},  // d3
      {0.00, 0.10, 0.10, 0.75, 0.05},  // d4
      {0.00, 0.00, 0.15, 0.00, 0.85},  // d5
  });
}

InMemorySequenceDatabase Figure4Database() {
  return InMemorySequenceDatabase::FromSequences({
      {0, 1, 2, 0},  // d1 d2 d3 d1
      {3, 1, 0},     // d4 d2 d1
      {2, 3, 1, 0},  // d3 d4 d2 d1
      {1, 1},        // d2 d2
  });
}

Pattern P(std::vector<int> ids) {
  std::vector<SymbolId> body;
  body.reserve(ids.size());
  for (int id : ids) {
    body.push_back(id < 0 ? kWildcard : static_cast<SymbolId>(id));
  }
  return Pattern(std::move(body));
}

std::vector<Pattern> EnumeratePatterns(size_t m,
                                       const PatternSpaceOptions& opts) {
  std::vector<Pattern> out;
  std::vector<SymbolId> body;
  std::function<void()> grow = [&]() {
    if (!body.empty() && !IsWildcard(body.back())) {
      out.push_back(Pattern(body));
    }
    if (body.size() >= opts.max_span) return;
    for (size_t d = 0; d < m; ++d) {
      body.push_back(static_cast<SymbolId>(d));
      grow();
      body.pop_back();
    }
    if (!body.empty()) {
      size_t run = 0;
      for (auto it = body.rbegin(); it != body.rend() && IsWildcard(*it);
           ++it) {
        ++run;
      }
      if (run < opts.max_gap) {
        body.push_back(kWildcard);
        grow();
        body.pop_back();
      }
    }
  };
  grow();
  return out;
}

std::vector<double> NaiveMatches(const std::vector<SequenceRecord>& records,
                                 const CompatibilityMatrix& c,
                                 const std::vector<Pattern>& patterns) {
  std::vector<double> out(patterns.size(), 0.0);
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (const SequenceRecord& r : records) {
      out[i] += SequenceMatch(c, patterns[i], r.symbols);
    }
    if (!records.empty()) {
      out[i] /= static_cast<double>(records.size());
    }
  }
  return out;
}

std::vector<double> NaiveSupports(const std::vector<SequenceRecord>& records,
                                  const std::vector<Pattern>& patterns) {
  std::vector<double> out(patterns.size(), 0.0);
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (const SequenceRecord& r : records) {
      out[i] += SequenceSupport(patterns[i], r.symbols);
    }
    if (!records.empty()) {
      out[i] /= static_cast<double>(records.size());
    }
  }
  return out;
}

}  // namespace testutil
}  // namespace nmine
