#ifndef NMINE_TESTS_TEST_UTIL_H_
#define NMINE_TESTS_TEST_UTIL_H_

#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/lattice/candidate_gen.h"
#include "nmine/core/pattern.h"
#include "nmine/db/in_memory_database.h"

namespace nmine {
namespace testutil {

/// The 5-symbol compatibility matrix of the paper's Figure 2.
CompatibilityMatrix Figure2Matrix();

/// The 4-sequence database of the paper's Figure 4(a):
///   1: d1 d2 d3 d1
///   2: d4 d2 d1
///   3: d3 d4 d2 d1
///   4: d2 d2
/// (Symbols are 0-based ids: d1 = 0, ..., d5 = 4.)
InMemorySequenceDatabase Figure4Database();

/// Shorthand for building a pattern from 0-based ids; -1 is the wildcard.
Pattern P(std::vector<int> ids);

/// Naive per-pattern match counter: the test oracle for PatternTrie.
/// Returns the Definition-3.7 average of SequenceMatch over the records.
std::vector<double> NaiveMatches(const std::vector<SequenceRecord>& records,
                                 const CompatibilityMatrix& c,
                                 const std::vector<Pattern>& patterns);

/// Enumerates every valid pattern in the bounded space (all bodies over
/// the m-symbol alphabet with non-wildcard endpoints, span <= max_span,
/// wildcard runs <= max_gap). For exhaustive brute-force verification.
std::vector<Pattern> EnumeratePatterns(size_t m,
                                       const PatternSpaceOptions& opts);

/// Naive support counter oracle.
std::vector<double> NaiveSupports(const std::vector<SequenceRecord>& records,
                                  const std::vector<Pattern>& patterns);

}  // namespace testutil
}  // namespace nmine

#endif  // NMINE_TESTS_TEST_UTIL_H_
