#include "nmine/eval/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(TableTest, AlignedOutput) {
  Table t({"alpha", "value"});
  t.AddRow({"0.1", "12"});
  t.AddRow({"0.25", "3"});
  std::ostringstream out;
  t.Print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("| alpha | value |"), std::string::npos);
  EXPECT_NE(s.find("| 0.25  | 3     |"), std::string::npos);
}

TEST(TableTest, ShortRowsPadAndLongRowsTruncate) {
  Table t({"a", "b"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream out;
  t.Print(out);  // must not crash; the "3" is dropped
  EXPECT_EQ(out.str().find("3"), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::Num(0.123456, 3), "0.123");
  EXPECT_EQ(Table::Num(2.0, 1), "2.0");
  EXPECT_EQ(Table::Int(42), "42");
  EXPECT_EQ(Table::Int(-7), "-7");
}

TEST(TableTest, CsvEscaping) {
  Table t({"name", "note"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"quote\"inside", "x"});
  std::ostringstream out;
  t.PrintCsv(out);
  std::string s = out.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(s.find("name,note\n"), std::string::npos);
}

}  // namespace
}  // namespace nmine
