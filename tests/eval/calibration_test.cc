#include "nmine/eval/calibration.h"

#include <gtest/gtest.h>

#include "nmine/gen/matrix_generator.h"
#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(CalibrationTest, IdentityMatrixHasNoDeflation) {
  MatchCalibration cal(CompatibilityMatrix::Identity(4));
  for (SymbolId d = 0; d < 4; ++d) {
    EXPECT_DOUBLE_EQ(cal.SymbolDeflation(d), 1.0);
  }
  EXPECT_DOUBLE_EQ(cal.PatternDeflation(P({0, 1, 2})), 1.0);
}

TEST(CalibrationTest, UniformChannelExpectedDeflation) {
  // g = (1-alpha)^2 + alpha^2 / (m-1) for the uniform channel.
  const double alpha = 0.2;
  const size_t m = 20;
  MatchCalibration cal(UniformNoiseMatrix(m, alpha));
  const double expected =
      (1 - alpha) * (1 - alpha) + alpha * alpha / (m - 1);
  for (SymbolId d = 0; d < static_cast<SymbolId>(m); ++d) {
    EXPECT_NEAR(cal.SymbolDeflation(d), expected, 1e-12);
  }
}

TEST(CalibrationTest, DiagonalSurvivalMode) {
  const double alpha = 0.3;
  MatchCalibration cal(UniformNoiseMatrix(10, alpha),
                       CalibrationMode::kDiagonalSurvival);
  for (SymbolId d = 0; d < 10; ++d) {
    EXPECT_DOUBLE_EQ(cal.SymbolDeflation(d), 1.0 - alpha);
  }
}

TEST(CalibrationTest, SurvivalIsLooserThanExpectedDeflation) {
  // C(d,d) >= g always, so the survival threshold is the higher (tighter
  // acceptance) of the two.
  CompatibilityMatrix c = UniformNoiseMatrix(20, 0.25);
  MatchCalibration expected(c, CalibrationMode::kExpectedDeflation);
  MatchCalibration survival(c, CalibrationMode::kDiagonalSurvival);
  for (SymbolId d = 0; d < 20; ++d) {
    EXPECT_GT(survival.SymbolDeflation(d), expected.SymbolDeflation(d));
  }
}

TEST(CalibrationTest, PatternDeflationIsProductOverNonWildcards) {
  MatchCalibration cal(UniformNoiseMatrix(5, 0.2));
  double g = cal.SymbolDeflation(0);
  EXPECT_NEAR(cal.PatternDeflation(P({0, 1})), g * g, 1e-12);
  // Wildcards cost nothing.
  EXPECT_NEAR(cal.PatternDeflation(P({0, -1, 1})), g * g, 1e-12);
  EXPECT_NEAR(cal.PatternDeflation(P({0, -1, -1, 1, 2})), g * g * g, 1e-12);
}

TEST(CalibrationTest, ThresholdScalesWithDeflation) {
  MatchCalibration cal(UniformNoiseMatrix(5, 0.2));
  Pattern p = P({0, 1, 2});
  EXPECT_NEAR(cal.ThresholdFor(p, 0.4), 0.4 * cal.PatternDeflation(p),
              1e-12);
}

TEST(CalibrationTest, AsymmetricMatrix) {
  // Figure-2 matrix: deflation differs per symbol (rows differ).
  MatchCalibration cal(testutil::Figure2Matrix());
  // Row d1 = {0.9, 0.1, 0, 0, 0}, row sum 1 -> g = 0.81 + 0.01 = 0.82.
  EXPECT_NEAR(cal.SymbolDeflation(0), 0.82, 1e-12);
  // Row d5 = {0, 0, 0.15, 0, 0.85}, row sum 1 -> g = 0.0225 + 0.7225.
  EXPECT_NEAR(cal.SymbolDeflation(4), 0.745, 1e-12);
}

TEST(CalibrationTest, ZeroRowYieldsZeroDeflation) {
  CompatibilityMatrix c = CompatibilityMatrix::Identity(3);
  c.Set(1, 1, 0.0);  // symbol 1 never the true value of anything
  c.Set(0, 1, 1.0);  // keep column 1 stochastic
  MatchCalibration cal(c);
  EXPECT_DOUBLE_EQ(cal.SymbolDeflation(1), 0.0);
}

}  // namespace
}  // namespace nmine
