#include "nmine/eval/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace {

using testutil::P;

TEST(MetricsTest, AccuracyAndCompleteness) {
  PatternSet reference({P({0}), P({1}), P({2}), P({3})});
  PatternSet discovered({P({0}), P({1}), P({9})});
  ModelQuality q = CompareResultSets(discovered, reference);
  EXPECT_EQ(q.common, 2u);
  EXPECT_DOUBLE_EQ(q.accuracy, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.completeness, 2.0 / 4.0);
}

TEST(MetricsTest, PerfectRecovery) {
  PatternSet s({P({0}), P({1, 2})});
  ModelQuality q = CompareResultSets(s, s);
  EXPECT_DOUBLE_EQ(q.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(q.completeness, 1.0);
}

TEST(MetricsTest, EmptySetsUseConventionalOne) {
  PatternSet empty;
  PatternSet some({P({0})});
  EXPECT_DOUBLE_EQ(CompareResultSets(empty, some).accuracy, 1.0);
  EXPECT_DOUBLE_EQ(CompareResultSets(empty, some).completeness, 0.0);
  EXPECT_DOUBLE_EQ(CompareResultSets(some, empty).completeness, 1.0);
}

TEST(MetricsTest, FilterByLevel) {
  PatternSet s({P({0}), P({1}), P({0, 1}), P({0, -1, 2}), P({0, 1, 2})});
  EXPECT_EQ(FilterByLevel(s, 1).size(), 2u);
  EXPECT_EQ(FilterByLevel(s, 2).size(), 2u);  // {0 1} and {0 * 2}
  EXPECT_EQ(FilterByLevel(s, 3).size(), 1u);
  EXPECT_EQ(FilterByLevel(s, 4).size(), 0u);
}

TEST(MetricsTest, ErrorRate) {
  PatternSet reference({P({0}), P({1}), P({2}), P({3})});
  PatternSet discovered({P({0}), P({1}), P({9})});
  // 2 misses + 1 false positive over 4 reference patterns.
  EXPECT_DOUBLE_EQ(ErrorRate(discovered, reference), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(ErrorRate(reference, reference), 0.0);
  EXPECT_DOUBLE_EQ(ErrorRate(discovered, PatternSet()), 0.0);
}

}  // namespace
}  // namespace nmine
