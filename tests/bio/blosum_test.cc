#include "nmine/bio/blosum.h"

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(BlosumTest, MatrixIsSymmetric) {
  const auto& s = Blosum50Scores();
  for (size_t i = 0; i < kNumAminoAcids; ++i) {
    for (size_t j = 0; j < kNumAminoAcids; ++j) {
      EXPECT_EQ(s[i][j], s[j][i]) << "(" << i << "," << j << ")";
    }
  }
}

TEST(BlosumTest, DiagonalIsPositiveAndLargest) {
  const auto& s = Blosum50Scores();
  for (size_t i = 0; i < kNumAminoAcids; ++i) {
    EXPECT_GT(s[i][i], 0);
    for (size_t j = 0; j < kNumAminoAcids; ++j) {
      if (i != j) {
        EXPECT_LT(s[i][j], s[i][i]);
      }
    }
  }
}

TEST(BlosumTest, KnownConservativeSubstitutions) {
  // The paper's intro: N-D, K-R and V-I mutations are relatively likely.
  // In BLOSUM50 all three pairs score positive (conservative).
  Alphabet a = AminoAcidAlphabet();
  const auto& s = Blosum50Scores();
  auto score = [&](const char* x, const char* y) {
    return s[static_cast<size_t>(*a.Id(x))][static_cast<size_t>(*a.Id(y))];
  };
  EXPECT_GT(score("N", "D"), 0);
  EXPECT_GT(score("K", "R"), 0);
  EXPECT_GT(score("V", "I"), 0);
  // A dissimilar pair for contrast.
  EXPECT_LT(score("C", "D"), 0);
}

TEST(BlosumTest, EmissionRowsAreStochastic) {
  for (double t : {0.5, 1.0, 2.0}) {
    std::vector<std::vector<double>> rows = BlosumEmissionRows(t);
    ASSERT_EQ(rows.size(), kNumAminoAcids);
    for (const auto& row : rows) {
      double sum = 0.0;
      for (double v : row) {
        EXPECT_GT(v, 0.0);
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(BlosumTest, CompatibilityMatrixIsValid) {
  CompatibilityMatrix c = BlosumCompatibilityMatrix(1.0);
  EXPECT_TRUE(c.Validate().ok) << c.Validate().message;
  EXPECT_EQ(c.size(), kNumAminoAcids);
}

TEST(BlosumTest, DiagonalDominatesPerColumn) {
  CompatibilityMatrix c = BlosumCompatibilityMatrix(1.0);
  for (SymbolId j = 0; j < static_cast<SymbolId>(kNumAminoAcids); ++j) {
    for (SymbolId i = 0; i < static_cast<SymbolId>(kNumAminoAcids); ++i) {
      if (i != j) {
        EXPECT_GT(c(j, j), c(i, j)) << "column " << j;
      }
    }
  }
}

TEST(BlosumTest, LowerTemperatureSharpensDiagonal) {
  double sharp = BlosumDiagonalMass(0.5);
  double normal = BlosumDiagonalMass(1.0);
  double flat = BlosumDiagonalMass(2.0);
  EXPECT_GT(sharp, normal);
  EXPECT_GT(normal, flat);
  EXPECT_GT(flat, 1.0 / kNumAminoAcids);  // always better than chance
}

TEST(BlosumTest, NToDBeatsNToC) {
  // A likely mutation (N->D) has a larger compatibility than an unlikely
  // one (N->C).
  Alphabet a = AminoAcidAlphabet();
  CompatibilityMatrix c = BlosumCompatibilityMatrix(1.0);
  SymbolId n = *a.Id("N");
  SymbolId d = *a.Id("D");
  SymbolId cc = *a.Id("C");
  EXPECT_GT(c(n, d), c(n, cc));
}

}  // namespace
}  // namespace nmine
