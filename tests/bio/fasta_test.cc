#include "nmine/bio/fasta.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace nmine {
namespace {

constexpr char kSample[] =
    ">sp|P1|first protein\n"
    "AMTKYQ\n"
    "VCEBRH\n"
    "; a comment line\n"
    ">second\n"
    "nkvd\n"
    "\n"
    ">empty\n";

TEST(FastaTest, ParsesHeadersAndConcatenatesLines) {
  std::vector<FastaRecord> records;
  std::string error;
  ASSERT_TRUE(ParseFasta(kSample, &records, &error)) << error;
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].header, "sp|P1|first protein");
  EXPECT_EQ(records[0].residues, "AMTKYQVCEBRH");
  EXPECT_EQ(records[1].residues, "nkvd");
  EXPECT_TRUE(records[2].residues.empty());
}

TEST(FastaTest, ToleratesCrlf) {
  std::vector<FastaRecord> records;
  std::string error;
  ASSERT_TRUE(ParseFasta(">x\r\nAC\r\nDE\r\n", &records, &error));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].residues, "ACDE");
}

TEST(FastaTest, RejectsDataBeforeHeader) {
  std::vector<FastaRecord> records;
  std::string error;
  EXPECT_FALSE(ParseFasta("ACDE\n>late\n", &records, &error));
  EXPECT_NE(error.find("before the first"), std::string::npos);
}

TEST(FastaTest, EmptyInputIsValid) {
  std::vector<FastaRecord> records;
  std::string error;
  EXPECT_TRUE(ParseFasta("", &records, &error));
  EXPECT_TRUE(records.empty());
}

TEST(FastaTest, DatabaseConversionMapsResidues) {
  std::vector<FastaRecord> records;
  std::string error;
  ASSERT_TRUE(ParseFasta(kSample, &records, &error));
  size_t skipped = 0;
  InMemorySequenceDatabase db = FastaToDatabase(records, &skipped);
  ASSERT_EQ(db.NumSequences(), 3u);
  Alphabet aa = AminoAcidAlphabet();
  // "AMTKYQVCEBRH": B is not a standard amino acid and is skipped.
  EXPECT_EQ(db.records()[0].symbols.size(), 11u);
  EXPECT_EQ(db.records()[0].symbols[0], *aa.Id("A"));
  EXPECT_EQ(db.records()[0].symbols[1], *aa.Id("M"));
  // Lower-case residues are upcased.
  EXPECT_EQ(db.records()[1].symbols.size(), 4u);
  EXPECT_EQ(db.records()[1].symbols[0], *aa.Id("N"));
  EXPECT_EQ(skipped, 1u);  // the 'B'
}

TEST(FastaTest, FileRoundTrip) {
  std::string path = std::string(::testing::TempDir()) + "/test.fasta";
  {
    std::ofstream out(path);
    out << kSample;
  }
  std::vector<FastaRecord> records;
  IoResult r = ReadFastaFile(path, &records);
  ASSERT_TRUE(r.ok) << r.message;
  EXPECT_EQ(records.size(), 3u);
  std::remove(path.c_str());
}

TEST(FastaTest, MissingFileFails) {
  std::vector<FastaRecord> records;
  EXPECT_FALSE(ReadFastaFile("/nonexistent/x.fasta", &records).ok);
}

}  // namespace
}  // namespace nmine
