#include "nmine/bio/amino_acids.h"

#include <cstring>

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(AminoAcidsTest, TwentyDistinctLetters) {
  const char* letters = AminoAcidLetters();
  EXPECT_EQ(std::strlen(letters), kNumAminoAcids);
  for (size_t i = 0; i < kNumAminoAcids; ++i) {
    for (size_t j = i + 1; j < kNumAminoAcids; ++j) {
      EXPECT_NE(letters[i], letters[j]);
    }
  }
}

TEST(AminoAcidsTest, AlphabetRoundTrips) {
  Alphabet a = AminoAcidAlphabet();
  EXPECT_EQ(a.size(), kNumAminoAcids);
  EXPECT_EQ(*a.Id("A"), 0);
  EXPECT_EQ(*a.Id("V"), 19);
  EXPECT_EQ(a.Name(4), "C");  // cysteine
  EXPECT_EQ(a.Name(8), "H");  // histidine
}

TEST(AminoAcidsTest, ProteinToSequence) {
  // The paper's Figure 1 fragment starts "A M T K Y Q V ...".
  Sequence s = ProteinToSequence("AMTKYQV");
  Alphabet a = AminoAcidAlphabet();
  ASSERT_EQ(s.size(), 7u);
  EXPECT_EQ(s[0], *a.Id("A"));
  EXPECT_EQ(s[1], *a.Id("M"));
  EXPECT_EQ(s[6], *a.Id("V"));
}

TEST(AminoAcidsTest, UnknownLettersAreSkipped) {
  Sequence s = ProteinToSequence("A?B M");  // '?', 'B', ' ' are not AAs
  EXPECT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace nmine
