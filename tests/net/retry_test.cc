// The shared reconnect backoff (nmine_client and dist workers): it must
// follow the jittered db/retry schedule exactly — reproducible from the
// policy seed — stay inside the policy's envelope, and restart after
// Reset().
#include <gtest/gtest.h>

#include "nmine/net/retry.h"

namespace nmine {
namespace net {
namespace {

TEST(ReconnectBackoffTest, FollowsTheSeededScheduleExactly) {
  RetryPolicy policy = ReconnectPolicy();
  ReconnectBackoff backoff(policy);
  Rng rng(policy.jitter_seed);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(backoff.NextBackoffMs(), BackoffMs(policy, i, &rng))
        << "failure " << i;
  }
  EXPECT_EQ(backoff.failures(), 10);
}

TEST(ReconnectBackoffTest, StepsAreBoundedByThePolicy) {
  RetryPolicy policy = ReconnectPolicy();
  ReconnectBackoff backoff(policy);
  for (int i = 0; i < 32; ++i) {
    double ms = backoff.NextBackoffMs();
    EXPECT_GE(ms, policy.initial_backoff_ms);
    // Deterministic part caps at max_backoff_ms; jitter adds at most
    // `jitter` on top.
    EXPECT_LE(ms, policy.max_backoff_ms * (1.0 + policy.jitter));
  }
}

TEST(ReconnectBackoffTest, ResetRestartsTheSchedule) {
  ReconnectBackoff backoff;
  double first = backoff.NextBackoffMs();
  for (int i = 0; i < 5; ++i) backoff.NextBackoffMs();
  EXPECT_GT(backoff.NextBackoffMs(), first);  // schedule has grown
  backoff.Reset();
  EXPECT_EQ(backoff.failures(), 0);
  // Back at the first step: within one initial step's jitter envelope.
  double after_reset = backoff.NextBackoffMs();
  const RetryPolicy& policy = backoff.policy();
  EXPECT_GE(after_reset, policy.initial_backoff_ms);
  EXPECT_LE(after_reset, policy.initial_backoff_ms * (1.0 + policy.jitter));
}

TEST(ReconnectPolicyTest, IsTunedForTcpNotDiskScans) {
  RetryPolicy policy = ReconnectPolicy();
  EXPECT_DOUBLE_EQ(policy.initial_backoff_ms, 50.0);
  EXPECT_DOUBLE_EQ(policy.max_backoff_ms, 2000.0);
}

}  // namespace
}  // namespace net
}  // namespace nmine
