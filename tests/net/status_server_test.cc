#include "nmine/net/status_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <optional>
#include <string>

#include "nmine/obs/json_parse.h"
#include "nmine/obs/metrics.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace net {
namespace {

struct HttpResult {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Raw-socket GET against 127.0.0.1:port — the same thing the CI smoke
/// drill does with curl, without depending on curl.
std::optional<HttpResult> HttpGet(uint16_t port, const std::string& path,
                                  const std::string& method = "GET") {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request =
      method + " " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  size_t done = 0;
  while (done < request.size()) {
    ssize_t w = ::send(fd, request.data() + done, request.size() - done, 0);
    if (w <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    done += static_cast<size_t>(w);
  }
  std::string raw;
  char buf[4096];
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);

  HttpResult result;
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  const std::string headers = raw.substr(0, header_end);
  result.body = raw.substr(header_end + 4);
  if (std::sscanf(headers.c_str(), "HTTP/1.0 %d", &result.status) != 1) {
    return std::nullopt;
  }
  size_t ct = headers.find("Content-Type: ");
  if (ct != std::string::npos) {
    size_t eol = headers.find("\r\n", ct);
    result.content_type = headers.substr(ct + 14, eol - ct - 14);
  }
  return result;
}

class StatusServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    StatusServer::Options options;  // port 0: ephemeral
    ASSERT_TRUE(server_.Start(options, &error)) << error;
    ASSERT_NE(server_.port(), 0);
  }
  void TearDown() override { server_.Stop(); }

  StatusServer server_;
};

TEST_F(StatusServerTest, HealthzReportsOk) {
  std::optional<HttpResult> r = HttpGet(server_.port(), "/healthz");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  std::optional<obs::JsonValue> doc = obs::ParseJson(r->body);
  ASSERT_TRUE(doc.has_value()) << r->body;
  const obs::JsonValue* status = doc->Get("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->string_value, "ok");
  EXPECT_GE(doc->GetNumber("uptime_s", -1.0), 0.0);
}

/// True when the /healthz "reasons" array contains `reason`.
bool HasReason(const obs::JsonValue& doc, const std::string& reason) {
  const obs::JsonValue* reasons = doc.Get("reasons");
  if (reasons == nullptr || !reasons->is_array()) return false;
  for (const obs::JsonValue& r : reasons->array) {
    if (r.string_value == reason) return true;
  }
  return false;
}

std::optional<obs::JsonValue> PollHealthz(uint16_t port) {
  std::optional<HttpResult> r = HttpGet(port, "/healthz");
  if (!r.has_value() || r->status != 200) return std::nullopt;
  return obs::ParseJson(r->body);
}

TEST_F(StatusServerTest, HealthzDegradesWhenGovernorLadderEngaged) {
  runtime::RunStatusBoard::Global().PublishGovernor(1 << 20, 3 << 20, 2);
  std::optional<obs::JsonValue> doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  // Degraded, not dead: liveness stays 200 (PollHealthz checked it) and
  // the body names the cause so a balancer can route around this node.
  EXPECT_EQ(doc->Get("status")->string_value, "degraded");
  EXPECT_TRUE(HasReason(*doc, "governor_ladder_engaged"));

  runtime::RunStatusBoard::Global().Reset();
  doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("status")->string_value, "ok");  // recovers
}

TEST_F(StatusServerTest, HealthzDegradesWhileScanRetriesClimb) {
  // First poll records the retry-counter baseline.
  std::optional<obs::JsonValue> doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(HasReason(*doc, "scan_retries_climbing"));

  obs::MetricsRegistry::Global().GetCounter("db.scan.retries").Add(3);
  doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("status")->string_value, "degraded");
  EXPECT_TRUE(HasReason(*doc, "scan_retries_climbing"));

  // No further retries between polls: the signal clears on its own.
  doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(HasReason(*doc, "scan_retries_climbing"));
}

// Keep this after every test that expects "ok": the exhausted-budget
// signal is deliberately sticky for the life of the process.
TEST_F(StatusServerTest, HealthzDegradesAfterRetryBudgetExhaustion) {
  obs::MetricsRegistry::Global()
      .GetCounter("db.scan.retry_budget_exhausted")
      .Increment();
  std::optional<obs::JsonValue> doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("status")->string_value, "degraded");
  EXPECT_TRUE(HasReason(*doc, "retry_budget_exhausted"));
}

TEST_F(StatusServerTest, StatuszServesTheRunBoard) {
  runtime::RunStatusBoard::Global().BeginRun("mine", "collapse");
  runtime::RunStatusBoard::Global().SetPhase("phase2");
  std::optional<HttpResult> r = HttpGet(server_.port(), "/statusz");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  std::optional<obs::JsonValue> doc = obs::ParseJson(r->body);
  ASSERT_TRUE(doc.has_value()) << r->body;
  const obs::JsonValue* schema = doc->Get("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value, "nmine.statusz.v1");
  const obs::JsonValue* phase = doc->Get("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->string_value, "phase2");
  EXPECT_NE(doc->Get("governor"), nullptr);
  runtime::RunStatusBoard::Global().Reset();
}

TEST_F(StatusServerTest, MetricszServesOpenMetricsText) {
  obs::MetricsRegistry::Global().GetCounter("statusz.test.metric").Add(3);
  std::optional<HttpResult> r = HttpGet(server_.port(), "/metricsz");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  EXPECT_NE(r->content_type.find("openmetrics-text"), std::string::npos);
  EXPECT_NE(r->body.find("nmine_statusz_test_metric_total"),
            std::string::npos);
  ASSERT_GE(r->body.size(), 6u);
  EXPECT_EQ(r->body.substr(r->body.size() - 6), "# EOF\n");
}

TEST_F(StatusServerTest, ProfilezAndFlightzReturnJson) {
  std::optional<HttpResult> profile = HttpGet(server_.port(), "/profilez");
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->status, 200);
  EXPECT_TRUE(obs::ParseJson(profile->body).has_value()) << profile->body;

  std::optional<HttpResult> flight = HttpGet(server_.port(), "/flightz");
  ASSERT_TRUE(flight.has_value());
  EXPECT_EQ(flight->status, 200);
  std::optional<obs::JsonValue> doc = obs::ParseJson(flight->body);
  ASSERT_TRUE(doc.has_value()) << flight->body;
  const obs::JsonValue* schema = doc->Get("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value, "nmine.flight.v1");
}

TEST_F(StatusServerTest, UnknownPathIs404AndNonGetIs405) {
  std::optional<HttpResult> missing = HttpGet(server_.port(), "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
  EXPECT_TRUE(obs::ParseJson(missing->body).has_value());

  std::optional<HttpResult> post = HttpGet(server_.port(), "/statusz", "POST");
  ASSERT_TRUE(post.has_value());
  EXPECT_EQ(post->status, 405);
}

TEST_F(StatusServerTest, CountsRequestsAndIgnoresQueryStrings) {
  const uint64_t before = server_.requests_served();
  std::optional<HttpResult> r = HttpGet(server_.port(), "/healthz?probe=1");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);  // query string stripped before dispatch
  EXPECT_GT(server_.requests_served(), before);
}

TEST_F(StatusServerTest, QueryEndpointReceivesQueryString) {
  // Registrations are process-permanent, so use a test-scoped path.
  StatusServer::RegisterQueryEndpoint(
      "/test_queryz", [](const std::string& query) {
        return "{\"query\": \"" + query + "\"}\n";
      });
  std::optional<HttpResult> r = HttpGet(server_.port(), "/test_queryz?id=7");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  std::optional<obs::JsonValue> doc = obs::ParseJson(r->body);
  ASSERT_TRUE(doc.has_value()) << r->body;
  EXPECT_EQ(doc->Get("query")->string_value, "id=7");

  r = HttpGet(server_.port(), "/test_queryz");
  ASSERT_TRUE(r.has_value());
  doc = obs::ParseJson(r->body);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("query")->string_value, "");  // no '?': empty query
}

TEST_F(StatusServerTest, HealthSignalContributesReasonAndMember) {
  bool degrade = true;
  StatusServer::RegisterHealthSignal(
      "test.signal", [&degrade](std::vector<std::string>* reasons) {
        if (degrade) reasons->push_back("test_signal_tripped");
        return std::string("\"test_member\": {\"value\": 42}");
      });
  std::optional<obs::JsonValue> doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("status")->string_value, "degraded");
  EXPECT_TRUE(HasReason(*doc, "test_signal_tripped"));
  const obs::JsonValue* member = doc->Get("test_member");
  ASSERT_NE(member, nullptr);
  EXPECT_DOUBLE_EQ(member->GetNumber("value", -1.0), 42.0);

  // The signal clears -> healthz recovers, the member stays informational.
  degrade = false;
  doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(HasReason(*doc, "test_signal_tripped"));
  EXPECT_NE(doc->Get("test_member"), nullptr);

  // Keyed registration: replacing the contributor takes effect (and
  // neutralizes this test's signal for later tests in the process).
  StatusServer::RegisterHealthSignal(
      "test.signal",
      [](std::vector<std::string>*) { return std::string(); });
  doc = PollHealthz(server_.port());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Get("test_member"), nullptr);
}

TEST(StatusServerLifecycleTest, StopIsIdempotentAndRestartable) {
  StatusServer server;
  std::string error;
  StatusServer::Options options;
  ASSERT_TRUE(server.Start(options, &error)) << error;
  EXPECT_FALSE(server.Start(options, &error));  // already running
  server.Stop();
  server.Stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());

  ASSERT_TRUE(server.Start(options, &error)) << error;
  std::optional<HttpResult> r = HttpGet(server.port(), "/healthz");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->status, 200);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(StatusServerLifecycleTest, RejectsBadBindAddress) {
  StatusServer server;
  std::string error;
  StatusServer::Options options;
  options.bind_address = "not-an-address";
  EXPECT_FALSE(server.Start(options, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace net
}  // namespace nmine
