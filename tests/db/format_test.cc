#include "nmine/db/format.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nmine {
namespace dbformat {
namespace {

TEST(VarintTest, RoundTripsRepresentativeValues) {
  const uint64_t values[] = {0,    1,       127,        128,
                             300,  16383,   16384,      (1ull << 32) - 1,
                             1ull << 32,    ~0ull};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(v, &buf);
    const char* pos = buf.data();
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&pos, buf.data() + buf.size(), &out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.data() + buf.size());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::string buf;
  PutVarint64(42, &buf);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(128, &buf);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(1ull << 60, &buf);
  const char* pos = buf.data();
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(&pos, buf.data() + buf.size() - 1, &out));
}

TEST(VarintTest, EmptyInputFails) {
  const char* pos = nullptr;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(&pos, pos, &out));
}

TEST(FormatTest, EncodeDecodeRoundTrip) {
  std::vector<SequenceRecord> records = testutil::Figure4Database().records();
  std::string bytes = EncodeDatabase(records);
  std::vector<SequenceRecord> decoded;
  IoResult r = DecodeDatabase(bytes, &decoded);
  ASSERT_TRUE(r.ok) << r.message;
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].id, records[i].id);
    EXPECT_EQ(decoded[i].symbols, records[i].symbols);
  }
}

TEST(FormatTest, DecodeRejectsBadMagic) {
  std::vector<SequenceRecord> decoded;
  IoResult r = DecodeDatabase("XXXXYYYYZZZZ", &decoded);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("magic"), std::string::npos);
}

TEST(FormatTest, DecodeRejectsShortHeader) {
  std::vector<SequenceRecord> decoded;
  EXPECT_FALSE(DecodeDatabase("NM", &decoded).ok);
}

TEST(FormatTest, DecodeRejectsWrongVersion) {
  std::string bytes = EncodeDatabase({});
  bytes[4] = 99;  // version byte
  std::vector<SequenceRecord> decoded;
  IoResult r = DecodeDatabase(bytes, &decoded);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("version"), std::string::npos);
}

TEST(FormatTest, DecodeRejectsTrailingGarbage) {
  std::string bytes =
      EncodeDatabase(testutil::Figure4Database().records()) + "garbage";
  std::vector<SequenceRecord> decoded;
  IoResult r = DecodeDatabase(bytes, &decoded);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("trailing"), std::string::npos);
}

TEST(FormatTest, DecodeRejectsTruncatedRecords) {
  std::string bytes = EncodeDatabase(testutil::Figure4Database().records());
  for (size_t cut : {bytes.size() - 1, bytes.size() - 2, size_t{6}}) {
    std::vector<SequenceRecord> decoded;
    EXPECT_FALSE(DecodeDatabase(bytes.substr(0, cut), &decoded).ok)
        << "cut=" << cut;
  }
}

TEST(FormatTest, WriteToUnwritablePathFails) {
  IoResult r = WriteDatabaseFile("/nonexistent-dir/x.nmsq", {});
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace dbformat
}  // namespace nmine
