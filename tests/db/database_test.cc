#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "nmine/db/disk_database.h"
#include "nmine/db/format.h"
#include "nmine/db/in_memory_database.h"
#include "test_util.h"

namespace nmine {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(InMemoryDatabaseTest, BasicAccounting) {
  InMemorySequenceDatabase db = testutil::Figure4Database();
  EXPECT_EQ(db.NumSequences(), 4u);
  EXPECT_EQ(db.TotalSymbols(), 4u + 3u + 4u + 2u);
  EXPECT_EQ(db.records()[2].id, 2);
}

TEST(InMemoryDatabaseTest, ScanVisitsInOrderAndCounts) {
  InMemorySequenceDatabase db = testutil::Figure4Database();
  EXPECT_EQ(db.scan_count(), 0);
  std::vector<SequenceId> ids;
  db.Scan([&](const SequenceRecord& r) { ids.push_back(r.id); });
  EXPECT_EQ(ids, (std::vector<SequenceId>{0, 1, 2, 3}));
  EXPECT_EQ(db.scan_count(), 1);
  db.Scan([](const SequenceRecord&) {});
  EXPECT_EQ(db.scan_count(), 2);
  db.ResetScanCount();
  EXPECT_EQ(db.scan_count(), 0);
}

TEST(InMemoryDatabaseTest, EmptyDatabase) {
  InMemorySequenceDatabase db;
  EXPECT_EQ(db.NumSequences(), 0u);
  size_t visits = 0;
  db.Scan([&](const SequenceRecord&) { ++visits; });
  EXPECT_EQ(visits, 0u);
  EXPECT_EQ(db.scan_count(), 1);
}

TEST(DiskDatabaseTest, RoundTripsThroughDisk) {
  InMemorySequenceDatabase mem = testutil::Figure4Database();
  std::string path = TempPath("roundtrip.nmsq");
  ASSERT_TRUE(dbformat::WriteDatabaseFile(path, mem.records()).ok);

  Status error;
  std::unique_ptr<DiskSequenceDatabase> disk =
      DiskSequenceDatabase::Open(path, &error);
  ASSERT_NE(disk, nullptr) << error.ToString();
  EXPECT_EQ(disk->NumSequences(), mem.NumSequences());
  EXPECT_EQ(disk->TotalSymbols(), mem.TotalSymbols());

  std::vector<SequenceRecord> seen;
  disk->Scan([&](const SequenceRecord& r) { seen.push_back(r); });
  ASSERT_EQ(seen.size(), mem.records().size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].id, mem.records()[i].id);
    EXPECT_EQ(seen[i].symbols, mem.records()[i].symbols);
  }
  EXPECT_EQ(disk->scan_count(), 1);  // Open's pre-scan is not counted
  std::remove(path.c_str());
}

TEST(DiskDatabaseTest, OpenMissingFileFails) {
  Status error;
  EXPECT_EQ(DiskSequenceDatabase::Open("/nonexistent/nope.nmsq", &error),
            nullptr);
  EXPECT_EQ(error.code(), StatusCode::kNotFound);
}

TEST(DiskDatabaseTest, OpenRejectsBadMagic) {
  std::string path = TempPath("badmagic.nmsq");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("JUNKJUNKJUNK", f);
    std::fclose(f);
  }
  Status error;
  EXPECT_EQ(DiskSequenceDatabase::Open(path, &error), nullptr);
  EXPECT_EQ(error.code(), StatusCode::kDataLoss);
  EXPECT_NE(error.message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DiskDatabaseTest, OpenRejectsTruncatedFile) {
  InMemorySequenceDatabase mem = testutil::Figure4Database();
  std::string bytes = dbformat::EncodeDatabase(mem.records());
  std::string path = TempPath("truncated.nmsq");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() - 3, f);  // drop the tail
    std::fclose(f);
  }
  Status error;
  EXPECT_EQ(DiskSequenceDatabase::Open(path, &error), nullptr);
  EXPECT_FALSE(error.ok());
  std::remove(path.c_str());
}

TEST(DiskDatabaseTest, EmptyDatabaseRoundTrips) {
  std::string path = TempPath("empty.nmsq");
  ASSERT_TRUE(dbformat::WriteDatabaseFile(path, {}).ok);
  Status error;
  std::unique_ptr<DiskSequenceDatabase> disk =
      DiskSequenceDatabase::Open(path, &error);
  ASSERT_NE(disk, nullptr) << error.ToString();
  EXPECT_EQ(disk->NumSequences(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nmine
