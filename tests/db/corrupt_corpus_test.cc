// Corruption corpus: a valid database image truncated at every byte offset
// must produce a clean typed error from both the streaming disk reader and
// the whole-image decoder — never a crash, hang, or silently partial read.
// Also pins down the LEB128 overflow rule: a 10-byte varint may only
// contribute bit 63 with its final byte.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/db/disk_database.h"
#include "nmine/db/format.h"
#include "test_util.h"

namespace nmine {
namespace {

std::vector<SequenceRecord> CorpusRecords() {
  std::vector<SequenceRecord> records = testutil::Figure4Database().records();
  // Add a longer sequence with multi-byte varint symbols so truncation
  // offsets land inside record bodies, not just headers.
  SequenceRecord big;
  big.id = 1000;
  for (int i = 0; i < 12; ++i) {
    big.symbols.push_back(static_cast<SymbolId>(100 + 37 * i));
  }
  records.push_back(big);
  return records;
}

std::string WriteBytes(const std::string& name, const std::string& bytes) {
  std::string path = std::string(::testing::TempDir()) + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  return path;
}

TEST(CorruptCorpusTest, EveryTruncationOffsetFailsCleanlyOnOpen) {
  const std::string bytes = dbformat::EncodeDatabase(CorpusRecords());
  ASSERT_GT(bytes.size(), 10u);
  DiskSequenceDatabase::Options options;
  options.retry = RetryPolicy::NoRetry();  // no backoff sleeps in the loop
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::string path =
        WriteBytes("trunc_corpus.nmsq", bytes.substr(0, len));
    Status error;
    std::unique_ptr<DiskSequenceDatabase> db =
        DiskSequenceDatabase::Open(path, options, &error);
    EXPECT_EQ(db, nullptr) << "prefix of length " << len << " opened";
    EXPECT_FALSE(error.ok()) << "prefix of length " << len;
    EXPECT_FALSE(error.message().empty()) << "prefix of length " << len;
    std::remove(path.c_str());
  }
}

TEST(CorruptCorpusTest, EveryTruncationOffsetFailsCleanlyOnDecode) {
  const std::string bytes = dbformat::EncodeDatabase(CorpusRecords());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<SequenceRecord> records;
    IoResult r = dbformat::DecodeDatabase(bytes.substr(0, len), &records);
    EXPECT_FALSE(r.ok) << "prefix of length " << len << " decoded";
    EXPECT_FALSE(r.message.empty()) << "prefix of length " << len;
  }
}

TEST(CorruptCorpusTest, FullImageStillRoundTrips) {
  const std::vector<SequenceRecord> original = CorpusRecords();
  std::vector<SequenceRecord> decoded;
  ASSERT_TRUE(
      dbformat::DecodeDatabase(dbformat::EncodeDatabase(original), &decoded)
          .ok);
  ASSERT_EQ(decoded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].id, original[i].id);
    EXPECT_EQ(decoded[i].symbols, original[i].symbols);
  }
}

// --- Varint overflow regression (the 10th byte may only carry bit 63). ---

TEST(CorruptCorpusTest, MaxUint64VarintRoundTrips) {
  std::string buf;
  dbformat::PutVarint64(UINT64_MAX, &buf);
  ASSERT_EQ(buf.size(), 10u);
  EXPECT_EQ(static_cast<uint8_t>(buf.back()), 0x01u);
  const char* pos = buf.data();
  uint64_t value = 0;
  ASSERT_TRUE(dbformat::GetVarint64(&pos, buf.data() + buf.size(), &value));
  EXPECT_EQ(value, UINT64_MAX);
  EXPECT_EQ(pos, buf.data() + buf.size());
}

TEST(CorruptCorpusTest, OverflowingTenthByteRejected) {
  // Nine continuation bytes then a final byte whose payload exceeds 1:
  // accepting it would silently drop the high bits.
  std::string buf(9, static_cast<char>(0xff));
  buf.push_back(0x02);
  const char* pos = buf.data();
  uint64_t value = 0;
  EXPECT_FALSE(dbformat::GetVarint64(&pos, buf.data() + buf.size(), &value));
}

TEST(CorruptCorpusTest, ElevenByteVarintRejected) {
  std::string buf(10, static_cast<char>(0xff));
  buf.push_back(0x01);
  const char* pos = buf.data();
  uint64_t value = 0;
  EXPECT_FALSE(dbformat::GetVarint64(&pos, buf.data() + buf.size(), &value));
}

TEST(CorruptCorpusTest, DiskReaderAcceptsMaxVarintRecordId) {
  // Header + one empty-bodied record whose id is the canonical 10-byte
  // encoding of UINT64_MAX: must stream cleanly.
  std::string bytes(dbformat::kMagic, sizeof(dbformat::kMagic));
  bytes.push_back(static_cast<char>(dbformat::kVersion));
  dbformat::PutVarint64(1, &bytes);            // count
  dbformat::PutVarint64(UINT64_MAX, &bytes);   // id
  dbformat::PutVarint64(0, &bytes);            // len
  const std::string path = WriteBytes("max_id.nmsq", bytes);
  Status error;
  std::unique_ptr<DiskSequenceDatabase> db = DiskSequenceDatabase::Open(
      path, {RetryPolicy::NoRetry(), nullptr}, &error);
  ASSERT_NE(db, nullptr) << error.ToString();
  EXPECT_EQ(db->NumSequences(), 1u);
  EXPECT_EQ(db->TotalSymbols(), 0u);
  std::remove(path.c_str());
}

TEST(CorruptCorpusTest, DiskReaderRejectsOverlongVarintAsDataLoss) {
  // Overlong sequence count: structural corruption, not truncation, so the
  // reader must classify it as permanent (kDataLoss) — retries cannot help.
  std::string bytes(dbformat::kMagic, sizeof(dbformat::kMagic));
  bytes.push_back(static_cast<char>(dbformat::kVersion));
  bytes.append(9, static_cast<char>(0xff));
  bytes.push_back(0x02);
  const std::string path = WriteBytes("overlong.nmsq", bytes);
  Status error;
  std::unique_ptr<DiskSequenceDatabase> db = DiskSequenceDatabase::Open(
      path, {RetryPolicy::NoRetry(), nullptr}, &error);
  EXPECT_EQ(db, nullptr);
  EXPECT_EQ(error.code(), StatusCode::kDataLoss);
  EXPECT_NE(error.message().find("overlong"), std::string::npos)
      << error.ToString();
  std::remove(path.c_str());
}

TEST(CorruptCorpusTest, TrailingGarbageRejected) {
  std::string bytes = dbformat::EncodeDatabase(CorpusRecords());
  bytes.push_back(0x00);
  const std::string path = WriteBytes("trailing.nmsq", bytes);
  Status error;
  std::unique_ptr<DiskSequenceDatabase> db = DiskSequenceDatabase::Open(
      path, {RetryPolicy::NoRetry(), nullptr}, &error);
  EXPECT_EQ(db, nullptr);
  EXPECT_EQ(error.code(), StatusCode::kDataLoss);
  std::vector<SequenceRecord> records;
  IoResult r = dbformat::DecodeDatabase(bytes, &records);
  EXPECT_FALSE(r.ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nmine
