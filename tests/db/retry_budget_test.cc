// RetryBudget: the per-run cap on cumulative retries across all scans.
// Covers the counting contract, the published gauge, thread-safety of the
// shared pool, and the RunScanWithRetry integration (exhaustion surfaces
// the failure with a typed message instead of retrying forever).
#include <atomic>
#include <climits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/db/retry.h"
#include "nmine/obs/metrics.h"

namespace nmine {
namespace {

TEST(RetryBudgetTest, UnlimitedBudgetNeverBlocks) {
  RetryBudget budget(-1);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_EQ(budget.remaining(), INT64_MAX);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.TryConsume());
  EXPECT_EQ(budget.used(), 0);  // unlimited pools track nothing
}

TEST(RetryBudgetTest, CountsDownAndPublishesTheGauge) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  RetryBudget budget(3);
  EXPECT_EQ(budget.remaining(), 3);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("db.scan.retry_budget_remaining"), 3.0);

  EXPECT_TRUE(budget.TryConsume());
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_DOUBLE_EQ(reg.GaugeValue("db.scan.retry_budget_remaining"), 1.0);
  EXPECT_TRUE(budget.TryConsume());
  EXPECT_FALSE(budget.TryConsume());  // spent
  EXPECT_FALSE(budget.TryConsume());  // stays spent
  EXPECT_EQ(budget.remaining(), 0);
  EXPECT_EQ(budget.used(), 3);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("db.scan.retry_budget_remaining"), 0.0);
}

TEST(RetryBudgetTest, ConcurrentConsumersNeverOverspend) {
  constexpr int64_t kTotal = 100;
  RetryBudget budget(kTotal);
  std::atomic<int64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget, &granted] {
      for (int i = 0; i < 50; ++i) {
        if (budget.TryConsume()) granted.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(granted.load(), kTotal);  // 400 asked, exactly 100 granted
  EXPECT_EQ(budget.remaining(), 0);
}

TEST(RetryBudgetTest, ExhaustionStopsRunScanWithRetry) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t exhausted_before =
      reg.CounterValue("db.scan.retry_budget_exhausted");

  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryBudget budget(1);
  FakeSleeper sleeper;
  int attempts = 0;
  Status status = RunScanWithRetry(
      policy, &sleeper, /*can_replay=*/true, "test scan",
      [&attempts](int) {
        ++attempts;
        ScanAttempt outcome;
        outcome.status = Status::Unavailable("disk flapping");
        return outcome;
      },
      &budget);

  // First attempt + the single budgeted retry; the per-scan limit of 5
  // never gets a say.
  EXPECT_EQ(attempts, 2);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("run retry budget of 1 exhausted"),
            std::string::npos)
      << status.ToString();
  EXPECT_EQ(reg.CounterValue("db.scan.retry_budget_exhausted"),
            exhausted_before + 1);
}

TEST(RetryBudgetTest, BudgetIsSharedAcrossScansOfOneRun) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryBudget budget(2);
  FakeSleeper sleeper;

  // Two scans that each fail once then recover: each spends one retry.
  for (int scan = 0; scan < 2; ++scan) {
    Status status = RunScanWithRetry(
        policy, &sleeper, /*can_replay=*/true, "test scan",
        [](int attempt) {
          ScanAttempt outcome;
          if (attempt == 0) {
            outcome.status = Status::Unavailable("hiccup");
          }
          return outcome;
        },
        &budget);
    EXPECT_TRUE(status.ok()) << "scan " << scan;
  }
  EXPECT_EQ(budget.remaining(), 0);

  // The third scan's transient failure can no longer be retried.
  int attempts = 0;
  Status status = RunScanWithRetry(
      policy, &sleeper, /*can_replay=*/true, "test scan",
      [&attempts](int) {
        ++attempts;
        ScanAttempt outcome;
        outcome.status = Status::Unavailable("hiccup");
        return outcome;
      },
      &budget);
  EXPECT_EQ(attempts, 1);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace nmine
