#include "nmine/db/reservoir_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace nmine {
namespace {

SequenceRecord Rec(SequenceId id) {
  SequenceRecord r;
  r.id = id;
  r.symbols = {static_cast<SymbolId>(id % 7)};
  return r;
}

TEST(SequentialSamplerTest, TakesExactlyNWhenPopulationLarger) {
  Rng rng(1);
  SequentialSampler s(10, 100, &rng);
  for (SequenceId i = 0; i < 100; ++i) {
    s.Offer(Rec(i));
  }
  EXPECT_EQ(s.sample().size(), 10u);
}

TEST(SequentialSamplerTest, TakesAllWhenPopulationSmaller) {
  Rng rng(2);
  SequentialSampler s(10, 4, &rng);
  for (SequenceId i = 0; i < 4; ++i) {
    s.Offer(Rec(i));
  }
  ASSERT_EQ(s.sample().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.sample()[i].id, static_cast<SequenceId>(i));
  }
}

TEST(SequentialSamplerTest, SampleIsInPopulationOrder) {
  Rng rng(3);
  SequentialSampler s(20, 200, &rng);
  for (SequenceId i = 0; i < 200; ++i) {
    s.Offer(Rec(i));
  }
  for (size_t i = 1; i < s.sample().size(); ++i) {
    EXPECT_LT(s.sample()[i - 1].id, s.sample()[i].id);
  }
}

TEST(SequentialSamplerTest, MarginalInclusionIsUniform) {
  // Each element must be selected with probability n/N = 0.25; chi-square
  // smoke test over 2000 repetitions.
  constexpr size_t kN = 20;
  constexpr size_t kPick = 5;
  constexpr int kReps = 2000;
  std::vector<int> hits(kN, 0);
  Rng rng(4);
  for (int rep = 0; rep < kReps; ++rep) {
    SequentialSampler s(kPick, kN, &rng);
    for (SequenceId i = 0; i < static_cast<SequenceId>(kN); ++i) {
      if (s.Offer(Rec(i))) {
        ++hits[static_cast<size_t>(i)];
      }
    }
  }
  const double expected = kReps * static_cast<double>(kPick) / kN;  // 500
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(hits[i], expected, 5 * std::sqrt(expected)) << "index " << i;
  }
}

TEST(SequentialSamplerTest, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    Rng rng(seed);
    SequentialSampler s(5, 50, &rng);
    for (SequenceId i = 0; i < 50; ++i) s.Offer(Rec(i));
    std::vector<SequenceId> ids;
    for (const auto& r : s.sample()) ids.push_back(r.id);
    return ids;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // overwhelmingly likely
}

TEST(ReservoirSamplerTest, KeepsFirstNThenSubsamples) {
  Rng rng(5);
  ReservoirSampler s(8, &rng);
  for (SequenceId i = 0; i < 8; ++i) s.Offer(Rec(i));
  ASSERT_EQ(s.sample().size(), 8u);
  for (SequenceId i = 8; i < 1000; ++i) s.Offer(Rec(i));
  EXPECT_EQ(s.sample().size(), 8u);
  EXPECT_EQ(s.seen(), 1000u);
}

TEST(ReservoirSamplerTest, MarginalInclusionIsUniform) {
  constexpr size_t kN = 25;
  constexpr size_t kPick = 5;
  constexpr int kReps = 2000;
  std::vector<int> hits(kN, 0);
  Rng rng(6);
  for (int rep = 0; rep < kReps; ++rep) {
    ReservoirSampler s(kPick, &rng);
    for (SequenceId i = 0; i < static_cast<SequenceId>(kN); ++i) {
      s.Offer(Rec(i));
    }
    for (const auto& r : s.sample()) {
      ++hits[static_cast<size_t>(r.id)];
    }
  }
  const double expected = kReps * static_cast<double>(kPick) / kN;  // 400
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(hits[i], expected, 5 * std::sqrt(expected)) << "index " << i;
  }
}

TEST(SamplerTest, TakeDatabaseMovesSample) {
  Rng rng(9);
  SequentialSampler s(3, 10, &rng);
  for (SequenceId i = 0; i < 10; ++i) s.Offer(Rec(i));
  InMemorySequenceDatabase db = s.TakeDatabase();
  EXPECT_EQ(db.NumSequences(), 3u);
}

}  // namespace
}  // namespace nmine
