// Fault plans, the injecting decorator, and retry-with-backoff: transient
// faults are absorbed (with an observable retry schedule and counters),
// permanent faults surface immediately, and mid-stream retries only happen
// when the caller supplied a restart callback.
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nmine/core/status.h"
#include "nmine/db/disk_database.h"
#include "nmine/db/fault_injecting_database.h"
#include "nmine/db/format.h"
#include "nmine/db/retry.h"
#include "nmine/db/retrying_database.h"
#include "nmine/obs/metrics.h"
#include "test_util.h"

namespace nmine {
namespace {

RetryPolicy TestPolicy(int max_attempts) {
  RetryPolicy p;
  p.max_attempts = max_attempts;
  p.initial_backoff_ms = 5.0;
  p.multiplier = 2.0;
  p.max_backoff_ms = 500.0;
  p.jitter = 0.0;  // deterministic schedule for assertions
  return p;
}

/// Counts records seen in the current attempt; restart resets it.
struct CountingVisitor {
  size_t seen = 0;
  SequenceDatabase::Visitor Visit() {
    return [this](const SequenceRecord&) { ++seen; };
  }
  SequenceDatabase::RestartFn Restart() {
    return [this] { seen = 0; };
  }
};

TEST(FaultPlanTest, ParsesFullSpec) {
  std::string error;
  std::optional<FaultPlan> plan = FaultPlan::Parse(
      "open-fail:2, short-read:1:3, fail-scan:5, fail-scan:7, "
      "corrupt-from:9, flaky:0.25, seed:17",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->open_fail_scans, 2);
  EXPECT_EQ(plan->short_read_scans, 1);
  EXPECT_EQ(plan->short_read_records, 3u);
  EXPECT_EQ(plan->fail_scan_indices, (std::vector<int>{5, 7}));
  EXPECT_EQ(plan->corrupt_from_scan, 9);
  EXPECT_DOUBLE_EQ(plan->flake_probability, 0.25);
  EXPECT_EQ(plan->seed, 17u);
}

TEST(FaultPlanTest, EmptySpecIsBenign) {
  std::string error;
  std::optional<FaultPlan> plan = FaultPlan::Parse("", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->open_fail_scans, 0);
  EXPECT_EQ(plan->corrupt_from_scan, -1);
}

TEST(FaultPlanTest, RejectsMalformedClauses) {
  for (const char* bad :
       {"open-fail", "open-fail:x", "open-fail:-1", "short-read:1",
        "short-read:1:x", "flaky:2", "flaky:-0.1", "bogus:1",
        "corrupt-from:x"}) {
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(FaultInjectionTest, OpenFailFailsThenRecovers) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.open_fail_scans = 1;
  FaultInjectingDatabase db(&inner, plan);
  CountingVisitor v;
  Status first = db.Scan(v.Visit(), v.Restart());
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(first.IsTransient());
  Status second = db.Scan(v.Visit(), v.Restart());
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_EQ(v.seen, inner.NumSequences());
  EXPECT_EQ(db.attempts(), 2);
}

TEST(FaultInjectionTest, ShortReadDeliversPrefixThenFails) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.short_read_scans = 1;
  plan.short_read_records = 2;
  FaultInjectingDatabase db(&inner, plan);
  CountingVisitor v;
  Status first = db.Scan(v.Visit(), v.Restart());
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_EQ(v.seen, 2u);  // the short read stopped after K records
  Status second = db.Scan(v.Visit(), v.Restart());
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_EQ(v.seen, inner.NumSequences());
}

TEST(FaultInjectionTest, FailScanTargetsOneAttemptIndex) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.fail_scan_indices = {1};
  FaultInjectingDatabase db(&inner, plan);
  CountingVisitor v;
  EXPECT_TRUE(db.Scan(v.Visit(), v.Restart()).ok());
  EXPECT_EQ(db.Scan(v.Visit(), v.Restart()).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(db.Scan(v.Visit(), v.Restart()).ok());
}

TEST(FaultInjectionTest, CorruptFromIsPermanentAndDominates) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.corrupt_from_scan = 0;
  plan.open_fail_scans = 5;  // corruption must win over transient clauses
  FaultInjectingDatabase db(&inner, plan);
  CountingVisitor v;
  for (int i = 0; i < 3; ++i) {
    Status s = db.Scan(v.Visit(), v.Restart());
    EXPECT_EQ(s.code(), StatusCode::kDataLoss);
    EXPECT_FALSE(s.IsTransient());
  }
}

TEST(RetryingDatabaseTest, AbsorbsTransientFaultsWithBackoffSchedule) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const int64_t faults_before = reg.CounterValue("db.scan.faults");
  const int64_t retries_before = reg.CounterValue("db.scan.retries");

  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.open_fail_scans = 2;
  FaultInjectingDatabase injector(&inner, plan);
  FakeSleeper sleeper;
  RetryingDatabase db(&injector, TestPolicy(3), &sleeper);

  CountingVisitor v;
  Status s = db.Scan(v.Visit(), v.Restart());
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(v.seen, inner.NumSequences());
  // Two failures -> two sleeps at 5ms then 10ms (jitter disabled).
  ASSERT_EQ(sleeper.slept_ms().size(), 2u);
  EXPECT_DOUBLE_EQ(sleeper.slept_ms()[0], 5.0);
  EXPECT_DOUBLE_EQ(sleeper.slept_ms()[1], 10.0);
  // One logical scan, three physical attempts.
  EXPECT_EQ(db.scan_count(), 1);
  EXPECT_EQ(injector.attempts(), 3);
  EXPECT_EQ(reg.CounterValue("db.scan.faults") - faults_before, 2);
  EXPECT_EQ(reg.CounterValue("db.scan.retries") - retries_before, 2);
}

TEST(RetryingDatabaseTest, GivesUpAfterMaxAttempts) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.open_fail_scans = 10;
  FaultInjectingDatabase injector(&inner, plan);
  FakeSleeper sleeper;
  RetryingDatabase db(&injector, TestPolicy(3), &sleeper);
  CountingVisitor v;
  Status s = db.Scan(v.Visit(), v.Restart());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(injector.attempts(), 3);
}

TEST(RetryingDatabaseTest, PermanentFaultIsNotRetried) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.corrupt_from_scan = 0;
  FaultInjectingDatabase injector(&inner, plan);
  FakeSleeper sleeper;
  RetryingDatabase db(&injector, TestPolicy(5), &sleeper);
  CountingVisitor v;
  Status s = db.Scan(v.Visit(), v.Restart());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(injector.attempts(), 1);
  EXPECT_TRUE(sleeper.slept_ms().empty());
}

TEST(RetryingDatabaseTest, NoRestartMeansNoMidStreamRetry) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.short_read_scans = 5;
  plan.short_read_records = 2;  // records are delivered before the failure
  FaultInjectingDatabase injector(&inner, plan);
  FakeSleeper sleeper;
  RetryingDatabase db(&injector, TestPolicy(5), &sleeper);

  // Without a restart callback the accumulated visitor state could not be
  // reset, so the mid-stream fault must surface instead of being retried.
  CountingVisitor v;
  Status s = db.Scan(v.Visit());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(injector.attempts(), 1);
  EXPECT_TRUE(sleeper.slept_ms().empty());

  // With a restart callback the same plan is retried until the short reads
  // are exhausted, and the visitor ends with exactly one full pass.
  CountingVisitor v2;
  FaultPlan plan2;
  plan2.short_read_scans = 2;
  plan2.short_read_records = 2;
  FaultInjectingDatabase injector2(&inner, plan2);
  RetryingDatabase db2(&injector2, TestPolicy(5), &sleeper);
  Status s2 = db2.Scan(v2.Visit(), v2.Restart());
  EXPECT_TRUE(s2.ok()) << s2.ToString();
  EXPECT_EQ(v2.seen, inner.NumSequences());
  EXPECT_EQ(injector2.attempts(), 3);
}

TEST(RetryingDatabaseTest, FlakyPlanIsSeedDeterministic) {
  InMemorySequenceDatabase inner = testutil::Figure4Database();
  FaultPlan plan;
  plan.flake_probability = 0.5;
  plan.seed = 7;
  auto run = [&] {
    FaultInjectingDatabase injector(&inner, plan);
    std::vector<int> codes;
    CountingVisitor v;
    for (int i = 0; i < 16; ++i) {
      codes.push_back(
          static_cast<int>(injector.Scan(v.Visit(), v.Restart()).code()));
    }
    return codes;
  };
  EXPECT_EQ(run(), run());
}

TEST(DiskScanFaultTest, TruncationAfterOpenSurfacesOnScan) {
  const std::vector<SequenceRecord> records =
      testutil::Figure4Database().records();
  const std::string path =
      std::string(::testing::TempDir()) + "/trunc_after_open.nmsq";
  ASSERT_TRUE(dbformat::WriteDatabaseFile(path, records).ok);
  Status error;
  std::unique_ptr<DiskSequenceDatabase> db = DiskSequenceDatabase::Open(
      path, {RetryPolicy::NoRetry(), nullptr}, &error);
  ASSERT_NE(db, nullptr) << error.ToString();

  // Simulate a concurrent rewrite shrinking the file after Open validated it.
  const std::string bytes = dbformat::EncodeDatabase(records);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  CountingVisitor v;
  Status s = db->Scan(v.Visit(), v.Restart());
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nmine
