#include "nmine/stats/random.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.UniformDouble(), b.UniformDouble());
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(4);
  int hits = 0;
  constexpr int kReps = 10000;
  for (int i = 0; i < kReps; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits, 3000, 5 * std::sqrt(kReps * 0.3 * 0.7));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  // The child must not replay the parent's stream.
  Rng b(5);
  b.Fork();
  EXPECT_DOUBLE_EQ(a.UniformDouble(), b.UniformDouble());
  (void)child;
}

TEST(DiscreteSamplerTest, RespectsWeights) {
  DiscreteSampler s({1.0, 3.0, 0.0, 6.0});
  Rng rng(6);
  std::vector<int> counts(4, 0);
  constexpr int kReps = 20000;
  for (int i = 0; i < kReps; ++i) {
    ++counts[s.Sample(rng)];
  }
  EXPECT_EQ(counts[2], 0);  // zero weight never drawn
  EXPECT_NEAR(counts[0], kReps * 0.1, 5 * std::sqrt(kReps * 0.1));
  EXPECT_NEAR(counts[1], kReps * 0.3, 5 * std::sqrt(kReps * 0.3));
  EXPECT_NEAR(counts[3], kReps * 0.6, 5 * std::sqrt(kReps * 0.6));
}

TEST(DiscreteSamplerTest, SingleOutcome) {
  DiscreteSampler s({5.0});
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s.Sample(rng), 0u);
  }
}

}  // namespace
}  // namespace nmine
