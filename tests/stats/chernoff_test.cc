#include "nmine/stats/chernoff.h"

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(ChernoffTest, PaperExampleTenThousandSamples) {
  // Section 4: "assume that the spread of a random variable is 1 and mu is
  // the mean of 10000 samples ... the true value is at least mu - 0.0215
  // with 99.99% confidence."
  EXPECT_NEAR(ChernoffEpsilon(1.0, 1e-4, 10000), 0.0215, 5e-4);
}

TEST(ChernoffTest, EpsilonIsLinearInSpread) {
  // Claim 4.2's payoff: "reduce the value of epsilon by 95%" when R drops
  // from 1 to 0.05 ("epsilon is linearly proportional to R").
  double full = ChernoffEpsilon(1.0, 1e-3, 500);
  double restricted = ChernoffEpsilon(0.05, 1e-3, 500);
  EXPECT_NEAR(restricted, full * 0.05, 1e-12);
}

TEST(ChernoffTest, EpsilonShrinksWithSampleSize) {
  double e1 = ChernoffEpsilon(1.0, 1e-4, 100);
  double e2 = ChernoffEpsilon(1.0, 1e-4, 400);
  EXPECT_NEAR(e2, e1 / 2.0, 1e-12);  // ~ 1/sqrt(n)
}

TEST(ChernoffTest, EpsilonShrinksWithLargerDelta) {
  EXPECT_LT(ChernoffEpsilon(1.0, 0.1, 1000), ChernoffEpsilon(1.0, 1e-4, 1000));
}

TEST(ChernoffTest, ZeroSpreadGivesZeroEpsilon) {
  EXPECT_DOUBLE_EQ(ChernoffEpsilon(0.0, 1e-4, 100), 0.0);
}

TEST(ClassifyMatchTest, ThreeWaySplit) {
  const double thr = 0.5;
  const double eps = 0.1;
  EXPECT_EQ(ClassifyMatch(0.70, thr, eps), PatternLabel::kFrequent);
  EXPECT_EQ(ClassifyMatch(0.55, thr, eps), PatternLabel::kAmbiguous);
  EXPECT_EQ(ClassifyMatch(0.50, thr, eps), PatternLabel::kAmbiguous);
  EXPECT_EQ(ClassifyMatch(0.45, thr, eps), PatternLabel::kAmbiguous);
  EXPECT_EQ(ClassifyMatch(0.30, thr, eps), PatternLabel::kInfrequent);
}

TEST(ClassifyMatchTest, BoundaryValuesAreAmbiguous) {
  // Conservative: exactly min_match ± eps stays ambiguous.
  EXPECT_EQ(ClassifyMatch(0.6, 0.5, 0.1), PatternLabel::kAmbiguous);
  EXPECT_EQ(ClassifyMatch(0.4, 0.5, 0.1), PatternLabel::kAmbiguous);
}

TEST(ClassifyMatchTest, ZeroEpsilonIsExact) {
  EXPECT_EQ(ClassifyMatch(0.51, 0.5, 0.0), PatternLabel::kFrequent);
  EXPECT_EQ(ClassifyMatch(0.49, 0.5, 0.0), PatternLabel::kInfrequent);
  EXPECT_EQ(ClassifyMatch(0.50, 0.5, 0.0), PatternLabel::kAmbiguous);
}

TEST(PatternLabelTest, ToStringNames) {
  EXPECT_STREQ(ToString(PatternLabel::kFrequent), "frequent");
  EXPECT_STREQ(ToString(PatternLabel::kAmbiguous), "ambiguous");
  EXPECT_STREQ(ToString(PatternLabel::kInfrequent), "infrequent");
}

}  // namespace
}  // namespace nmine
