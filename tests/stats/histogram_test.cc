#include "nmine/stats/histogram.h"

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.num_bins(), 4u);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), 0.25);
  EXPECT_DOUBLE_EQ(h.BinLow(3), 0.75);
  EXPECT_DOUBLE_EQ(h.BinHigh(3), 1.0);
}

TEST(HistogramTest, AddPlacesValuesInBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.26);
  h.Add(0.26);
  h.Add(0.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(5.0);
  h.Add(1.0);  // hi is exclusive; clamps to last bin
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
}

TEST(HistogramTest, FractionAndCumulative) {
  Histogram h(0.0, 1.0, 4);
  for (double v : {0.1, 0.3, 0.3, 0.6}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.25);
  EXPECT_DOUBLE_EQ(h.Fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0.49), 0.75);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0.99), 1.0);
}

TEST(HistogramTest, SummaryStatistics) {
  Histogram h(0.0, 10.0, 5);
  for (double v : {2.0, 4.0, 6.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.min_seen(), 2.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

}  // namespace
}  // namespace nmine
