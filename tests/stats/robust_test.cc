#include "nmine/stats/robust.h"

#include <gtest/gtest.h>

namespace nmine {
namespace {

TEST(MedianTest, EmptyIsZero) { EXPECT_EQ(Median({}), 0.0); }

TEST(MedianTest, OddSizePicksMiddle) {
  EXPECT_DOUBLE_EQ(Median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({9.0, 1.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Median({2.0, -1.0, 100.0, 4.0, 3.0}), 3.0);
}

TEST(MedianTest, EvenSizeAveragesMiddleTwo) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0}), 1.5);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(MedianTest, DoesNotModifyInput) {
  std::vector<double> values = {9.0, 1.0, 5.0};
  Median(values);
  EXPECT_EQ(values, (std::vector<double>{9.0, 1.0, 5.0}));
}

TEST(MedianAbsDeviationTest, TinySamplesAreZero) {
  EXPECT_EQ(MedianAbsDeviation({}), 0.0);
  EXPECT_EQ(MedianAbsDeviation({42.0}), 0.0);
}

TEST(MedianAbsDeviationTest, KnownValues) {
  // median = 3, |x - 3| = {2, 1, 0, 1, 2} -> MAD = 1.
  EXPECT_DOUBLE_EQ(MedianAbsDeviation({1.0, 2.0, 3.0, 4.0, 5.0}), 1.0);
  // Constant samples have no spread.
  EXPECT_DOUBLE_EQ(MedianAbsDeviation({7.0, 7.0, 7.0}), 0.0);
}

TEST(MedianAbsDeviationTest, RobustToOneOutlier) {
  // The outlier moves the mean wildly but barely touches the MAD.
  EXPECT_DOUBLE_EQ(MedianAbsDeviation({1.0, 2.0, 3.0, 4.0, 1000.0}), 1.0);
}

}  // namespace
}  // namespace nmine
