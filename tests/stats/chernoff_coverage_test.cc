// Statistical validation of the Chernoff/Hoeffding machinery: the bound's
// empirical coverage must be at least the promised 1 - delta (and in
// practice far higher — the paper's Section 5.5 observation).
#include <cmath>

#include <gtest/gtest.h>

#include "nmine/stats/chernoff.h"
#include "nmine/stats/random.h"

namespace nmine {
namespace {

/// Draws n observations of a [0, R]-bounded variable and checks whether
/// the true mean lies within epsilon of the sample mean.
bool BoundHolds(double true_p, double spread, double delta, size_t n,
                Rng* rng) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Bernoulli(p) scaled to [0, R]: mean = p * R, spread = R.
    sum += rng->Bernoulli(true_p) ? spread : 0.0;
  }
  double mu = sum / static_cast<double>(n);
  double eps = ChernoffEpsilon(spread, delta, n);
  double true_mean = true_p * spread;
  return std::fabs(mu - true_mean) <= eps;
}

TEST(ChernoffCoverageTest, EmpiricalCoverageExceedsConfidence) {
  Rng rng(123);
  const double delta = 0.1;  // promise: 90% one-sided, 80% two-sided
  const size_t n = 200;
  int holds = 0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    holds += BoundHolds(0.3, 1.0, delta, n, &rng) ? 1 : 0;
  }
  // Hoeffding is conservative: coverage is far above 1 - 2*delta.
  EXPECT_GT(holds, reps * 0.9);
}

TEST(ChernoffCoverageTest, RestrictedSpreadStillCovers) {
  // Claim 4.2: when the variable genuinely lives in [0, R] with R < 1,
  // the bound computed with the restricted spread remains valid.
  Rng rng(456);
  const double spread = 0.05;
  int holds = 0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    holds += BoundHolds(0.5, spread, 0.05, 150, &rng) ? 1 : 0;
  }
  EXPECT_GT(holds, reps * 0.95);
}

TEST(ChernoffCoverageTest, MisclassificationRateBelowDelta) {
  // End-to-end Claim 4.1: a pattern whose true mean is ABOVE
  // min_match + 2*eps is labelled frequent (or at worst ambiguous) with
  // overwhelming probability; the infrequent label occurs less often
  // than delta.
  Rng rng(789);
  const size_t n = 150;
  const double delta = 0.05;
  const double eps = ChernoffEpsilon(1.0, delta, n);
  const double min_match = 0.3;
  const double true_p = min_match + 2 * eps;
  int mislabeled = 0;
  const int reps = 3000;
  for (int i = 0; i < reps; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      sum += rng.Bernoulli(true_p) ? 1.0 : 0.0;
    }
    PatternLabel label =
        ClassifyMatch(sum / static_cast<double>(n), min_match, eps);
    if (label == PatternLabel::kInfrequent) {
      ++mislabeled;
    }
  }
  EXPECT_LT(mislabeled, reps * delta);
}

TEST(ChernoffCoverageTest, ExponentialTailOfMisses) {
  // Section 4: Prob(dis(P) > 2*rho) = Prob(dis(P) > rho)^4 — the deficit
  // of a missed pattern decays exponentially. Empirically, undershooting
  // the sample mean by 2*eps must be far rarer than by eps.
  Rng rng(1011);
  const size_t n = 100;
  const double p = 0.5;
  const double eps = 0.08;
  int under_one = 0;
  int under_two = 0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      sum += rng.Bernoulli(p) ? 1.0 : 0.0;
    }
    double mu = sum / static_cast<double>(n);
    if (mu < p - eps) ++under_one;
    if (mu < p - 2 * eps) ++under_two;
  }
  ASSERT_GT(under_one, 0);
  // The 2-eps tail must be at most a small fraction of the 1-eps tail.
  EXPECT_LT(under_two * 5, under_one);
}

}  // namespace
}  // namespace nmine
