#include "nmine/obs/export/telemetry_sampler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "nmine/obs/json_parse.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"

namespace nmine {
namespace obs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<JsonValue> ReadRows(const std::string& path) {
  std::vector<JsonValue> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<JsonValue> doc = ParseJson(line);
    EXPECT_TRUE(doc.has_value()) << "unparseable telemetry row: " << line;
    if (doc.has_value()) rows.push_back(*doc);
  }
  return rows;
}

TEST(TelemetrySamplerTest, RejectsBadOptions) {
  TelemetrySampler sampler;
  TelemetrySampler::Options options;
  EXPECT_FALSE(sampler.Start(options));  // no path
  options.jsonl_path = TempPath("telemetry_bad.jsonl");
  options.interval_s = 0.0;
  EXPECT_FALSE(sampler.Start(options));  // no interval
  EXPECT_FALSE(sampler.running());
}

TEST(TelemetrySamplerTest, WritesSchemaVersionedRowsWithDeltasAndRates) {
  MetricsRegistry reg;
  reg.GetCounter("work.items").Add(4);
  reg.GetGauge("sample.size").Set(123.0);

  const std::string path = TempPath("telemetry_rows.jsonl");
  TelemetrySampler sampler;
  TelemetrySampler::Options options;
  options.jsonl_path = path;
  options.interval_s = 0.01;
  options.registry = &reg;
  options.include_profile = false;
  ASSERT_TRUE(sampler.Start(options));
  EXPECT_TRUE(sampler.running());

  // Let a few ticks land, bump the counter, let more land.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  reg.GetCounter("work.items").Add(6);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  sampler.Stop();
  ASSERT_TRUE(sampler.FlushFinal("exit"));

  std::vector<JsonValue> rows = ReadRows(path);
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows.size(), sampler.rows_written());

  int64_t prev_t = 0;
  int64_t prev_counter = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonValue& row = rows[i];
    const JsonValue* schema = row.Get("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string_value, "nmine.telemetry.v1");
    EXPECT_EQ(row.GetNumber("seq", -1.0), static_cast<double>(i + 1));
    const int64_t t = static_cast<int64_t>(row.GetNumber("t_us", -1.0));
    EXPECT_GE(t, prev_t);  // shared monotonic clock base
    prev_t = t;
    const JsonValue* counters = row.Get("counters");
    ASSERT_NE(counters, nullptr);
    const int64_t value =
        static_cast<int64_t>(counters->GetNumber("work.items", -1.0));
    EXPECT_GE(value, prev_counter);  // monotone across rows
    prev_counter = value;
    const JsonValue* gauges = row.Get("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->GetNumber("sample.size", -1.0), 123.0);
    ASSERT_NE(row.Get("deltas"), nullptr);
    ASSERT_NE(row.Get("rates"), nullptr);
  }
  // First row deltas from zero; counter totals reconcile with the deltas.
  EXPECT_EQ(rows[0].Get("deltas")->GetNumber("work.items", -1.0),
            rows[0].Get("counters")->GetNumber("work.items", -2.0));
  int64_t delta_sum = 0;
  for (const JsonValue& row : rows) {
    delta_sum +=
        static_cast<int64_t>(row.Get("deltas")->GetNumber("work.items", 0.0));
  }
  EXPECT_EQ(delta_sum, 10);

  const JsonValue& last = rows.back();
  EXPECT_EQ(last.Get("reason")->string_value, "exit");
  EXPECT_EQ(last.Get("counters")->GetNumber("work.items", -1.0), 10.0);
}

TEST(TelemetrySamplerTest, FourWritersHammerCountersWhileSampling) {
  MetricsRegistry reg;
  const std::string path = TempPath("telemetry_hammer.jsonl");
  TelemetrySampler sampler;
  TelemetrySampler::Options options;
  options.jsonl_path = path;
  options.interval_s = 0.002;  // sample as fast as possible
  options.registry = &reg;
  options.include_profile = false;
  ASSERT_TRUE(sampler.Start(options));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      Counter& c = reg.GetCounter("hammer.count");
      HistogramMetric& h = reg.GetHistogram("hammer.hist", {1.0, 10.0});
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        h.Observe(static_cast<double>(i % 20));
        reg.GetGauge("hammer.gauge").Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  sampler.Stop();
  ASSERT_TRUE(sampler.FlushFinal("exit"));

  std::vector<JsonValue> rows = ReadRows(path);
  ASSERT_GE(rows.size(), 1u);
  int64_t prev = 0;
  for (const JsonValue& row : rows) {
    const JsonValue* counters = row.Get("counters");
    ASSERT_NE(counters, nullptr);
    const int64_t value =
        static_cast<int64_t>(counters->GetNumber("hammer.count", 0.0));
    EXPECT_GE(value, prev);  // never runs backwards mid-hammer
    prev = value;
  }
  EXPECT_EQ(rows.back().Get("counters")->GetNumber("hammer.count", -1.0),
            static_cast<double>(kThreads) * kPerThread);
}

TEST(TelemetrySamplerTest, RewritesOpenMetricsFileAlongsideJsonl) {
  MetricsRegistry reg;
  reg.GetCounter("om.scans").Add(7);
  const std::string jsonl = TempPath("telemetry_om.jsonl");
  const std::string prom = TempPath("telemetry_om.prom");
  TelemetrySampler sampler;
  TelemetrySampler::Options options;
  options.jsonl_path = jsonl;
  options.openmetrics_path = prom;
  options.interval_s = 10.0;  // no tick fires; FlushFinal drives the write
  options.registry = &reg;
  options.include_profile = false;
  ASSERT_TRUE(sampler.Start(options));
  sampler.Stop();
  ASSERT_TRUE(sampler.FlushFinal("deadline"));

  std::ifstream in(prom);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("nmine_om_scans_total 7"), std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);

  std::vector<JsonValue> rows = ReadRows(jsonl);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("reason")->string_value, "deadline");
}

TEST(TelemetrySamplerTest, IncludesProfileSectionWhenAsked) {
  MetricsRegistry reg;
  Profiler profiler;
  profiler.GetSection("phase3.scan").Record(1000000);
  const std::string path = TempPath("telemetry_profile.jsonl");
  TelemetrySampler sampler;
  TelemetrySampler::Options options;
  options.jsonl_path = path;
  options.interval_s = 10.0;
  options.registry = &reg;
  options.profiler = &profiler;
  options.include_profile = true;
  ASSERT_TRUE(sampler.Start(options));
  sampler.Stop();
  ASSERT_TRUE(sampler.FlushFinal("exit"));

  std::vector<JsonValue> rows = ReadRows(path);
  ASSERT_EQ(rows.size(), 1u);
  const JsonValue* profile = rows[0].Get("profile");
  ASSERT_NE(profile, nullptr);
  const JsonValue* section = profile->Get("phase3.scan");
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->GetNumber("count", -1.0), 1.0);
  EXPECT_EQ(section->GetNumber("total_ns", -1.0), 1000000.0);
}

}  // namespace
}  // namespace obs
}  // namespace nmine
