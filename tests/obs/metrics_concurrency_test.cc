// TSan-oriented concurrency coverage for the metrics layer: counters,
// gauges, and histograms hammered from four threads while a reader takes
// registry snapshots — the exact access pattern of the telemetry sampler
// and the /metricsz endpoint scraping a live mining run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "nmine/obs/metrics.h"

namespace nmine {
namespace obs {
namespace {

TEST(MetricsConcurrencyTest, SnapshotsWhileFourThreadsWrite) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> max_seen{0};
  std::thread reader([&] {
    int64_t prev = 0;
    while (!stop.load(std::memory_order_acquire)) {
      MetricsSnapshot snap = reg.Snapshot();
      for (const auto& [name, value] : snap.counters) {
        if (name == "conc.count") {
          // Counter monotonicity must hold across concurrent snapshots.
          EXPECT_GE(value, prev);
          prev = value;
          max_seen.store(value, std::memory_order_relaxed);
        }
      }
      for (const auto& [name, h] : snap.histograms) {
        int64_t bucket_total = 0;
        for (int64_t c : h.counts) bucket_total += c;
        // Buckets and the count field are separate atomics; a snapshot
        // may catch an Observe() between the two, but never more buckets
        // than observations started.
        EXPECT_LE(h.count, kThreads * kPerThread);
        EXPECT_LE(bucket_total, kThreads * kPerThread);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      Counter& c = reg.GetCounter("conc.count");
      Gauge& g = reg.GetGauge("conc.gauge");
      HistogramMetric& h = reg.GetHistogram("conc.hist", {1.0, 8.0, 64.0});
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
        g.Set(static_cast<double>(t * kPerThread + i));
        h.Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  MetricsSnapshot final_snap = reg.Snapshot();
  ASSERT_EQ(final_snap.counters.size(), 1u);
  EXPECT_EQ(final_snap.counters[0].second, kThreads * kPerThread);
  ASSERT_EQ(final_snap.histograms.size(), 1u);
  const HistogramSnapshot& h = final_snap.histograms[0].second;
  EXPECT_EQ(h.count, kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : h.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_EQ(h.min, 0.0);
  EXPECT_EQ(h.max, 99.0);
  EXPECT_GE(max_seen.load(), 0);
}

TEST(MetricsConcurrencyTest, RegistrationRacesResolveToOneMetric) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter& c = reg.GetCounter("race.me");
      c.Increment();
      seen[static_cast<size_t>(t)] = &c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);  // one shared counter
  }
  EXPECT_EQ(reg.CounterValue("race.me"), kThreads);
}

}  // namespace
}  // namespace obs
}  // namespace nmine
