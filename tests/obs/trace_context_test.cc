#include "nmine/obs/trace_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "nmine/exec/parallel_for.h"
#include "nmine/exec/thread_pool.h"
#include "nmine/obs/trace.h"

namespace nmine {
namespace obs {
namespace {

/// Every test starts and ends with no trace context on the main thread
/// and the global tracer stopped.
class TraceContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Stop();
    ASSERT_FALSE(CurrentTraceContext().active());
  }
  void TearDown() override {
    Tracer::Global().Stop();
    EXPECT_FALSE(CurrentTraceContext().active());
  }
};

TEST_F(TraceContextTest, FormatAndParseRoundTrip) {
  TraceContext ctx;
  ctx.trace_hi = 0x0123456789abcdefULL;
  ctx.trace_lo = 0xfedcba9876543210ULL;
  std::string hex = FormatTraceId(ctx.trace_hi, ctx.trace_lo);
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  uint64_t hi = 0;
  uint64_t lo = 0;
  ASSERT_TRUE(ParseTraceId(hex, &hi, &lo));
  EXPECT_EQ(hi, ctx.trace_hi);
  EXPECT_EQ(lo, ctx.trace_lo);
  // Uppercase input parses too (ids are case-insensitive on the wire).
  ASSERT_TRUE(ParseTraceId("0123456789ABCDEFFEDCBA9876543210", &hi, &lo));
  EXPECT_EQ(hi, ctx.trace_hi);
  EXPECT_EQ(lo, ctx.trace_lo);
}

TEST_F(TraceContextTest, ParseRejectsMalformedIds) {
  uint64_t hi = 0;
  uint64_t lo = 0;
  EXPECT_FALSE(ParseTraceId("", &hi, &lo));
  EXPECT_FALSE(ParseTraceId("abc", &hi, &lo));                // too short
  EXPECT_FALSE(ParseTraceId(std::string(33, 'a'), &hi, &lo));  // too long
  EXPECT_FALSE(ParseTraceId("0123456789abcdeffedcba987654321g", &hi, &lo));
  EXPECT_FALSE(ParseTraceId(std::string(32, '0'), &hi, &lo));  // all zero
  EXPECT_FALSE(ParseTraceId("0123456789abcdef fedcba987654321", &hi, &lo));
}

TEST_F(TraceContextTest, MintedIdsAreNonzeroAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    TraceContext ctx = MintTraceContext();
    EXPECT_TRUE(ctx.active());
    EXPECT_NE(ctx.span_id, 0u);
    seen.insert(FormatTraceId(ctx.trace_hi, ctx.trace_lo));
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST_F(TraceContextTest, NextSpanIdNeverRepeatsOrReturnsZero) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = NextSpanId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST_F(TraceContextTest, ScopedContextInstallsAndRestores) {
  TraceContext outer = MintTraceContext();
  {
    ScopedTraceContext scope(outer);
    EXPECT_EQ(CurrentTraceContext().trace_lo, outer.trace_lo);
    TraceContext inner = MintTraceContext();
    {
      ScopedTraceContext nested(inner);
      EXPECT_EQ(CurrentTraceContext().trace_lo, inner.trace_lo);
    }
    EXPECT_EQ(CurrentTraceContext().trace_lo, outer.trace_lo);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST_F(TraceContextTest, SpanInstallsItselfAsParentForNestedSpans) {
  Tracer::Global().Start();
  TraceContext job = MintTraceContext();
  {
    ScopedTraceContext scope(job);
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test");
    }
  }
  Tracer::Global().Stop();
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.trace_hi, job.trace_hi);
  EXPECT_EQ(inner.trace_lo, job.trace_lo);
  EXPECT_EQ(outer.parent_span_id, job.span_id);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
}

TEST_F(TraceContextTest, ThreadPoolSubmitPropagatesContext) {
  exec::ThreadPool::Shared().EnsureWorkers(2);
  TraceContext job = MintTraceContext();
  TraceContext seen_on_worker;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  {
    ScopedTraceContext scope(job);
    exec::ThreadPool::Shared().Submit([&] {
      std::lock_guard<std::mutex> lock(mutex);
      seen_on_worker = CurrentTraceContext();
      done = true;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(seen_on_worker.trace_hi, job.trace_hi);
  EXPECT_EQ(seen_on_worker.trace_lo, job.trace_lo);
  EXPECT_EQ(seen_on_worker.span_id, job.span_id);
}

TEST_F(TraceContextTest, InactiveContextSubmitsUnwrapped) {
  exec::ThreadPool::Shared().EnsureWorkers(2);
  TraceContext seen_on_worker = MintTraceContext();  // sentinel: nonzero
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  exec::ThreadPool::Shared().Submit([&] {
    std::lock_guard<std::mutex> lock(mutex);
    seen_on_worker = CurrentTraceContext();
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  EXPECT_FALSE(seen_on_worker.active());
}

/// The cross-attribution guarantee the tracing model rests on: two jobs
/// running concurrently, each fanning out over the shared pool with
/// ParallelFor, must produce bit-exactly partitioned spans — every span a
/// job's workers emit carries that job's trace id and no other. Run under
/// TSan this also proves the context handoff is race-free.
TEST_F(TraceContextTest, ConcurrentJobsNeverCrossAttributeSpans) {
  exec::ThreadPool::Shared().EnsureWorkers(8);
  Tracer::Global().Stop();
  Tracer::Global().SetCapacity(Tracer::kDefaultCapacity);
  Tracer::Global().Start();

  const TraceContext job_a = MintTraceContext();
  const TraceContext job_b = MintTraceContext();
  constexpr size_t kIters = 64;
  auto run_job = [](const TraceContext& job, const char* span_name) {
    ScopedTraceContext scope(job);
    TraceSpan root("job.root", "test");
    exec::ParallelFor(4, kIters, [&](size_t) {
      TraceSpan span(span_name, "test");
    });
  };
  std::thread a(run_job, std::cref(job_a), "job_a.work");
  std::thread b(run_job, std::cref(job_b), "job_b.work");
  a.join();
  b.join();
  Tracer::Global().Stop();

  size_t a_spans = 0;
  size_t b_spans = 0;
  for (const TraceEvent& e : Tracer::Global().Events()) {
    if (e.name == "job_a.work") {
      ++a_spans;
      EXPECT_EQ(e.trace_hi, job_a.trace_hi);
      EXPECT_EQ(e.trace_lo, job_a.trace_lo);
      EXPECT_NE(e.span_id, 0u);
      EXPECT_NE(e.parent_span_id, 0u);
    } else if (e.name == "job_b.work") {
      ++b_spans;
      EXPECT_EQ(e.trace_hi, job_b.trace_hi);
      EXPECT_EQ(e.trace_lo, job_b.trace_lo);
      EXPECT_NE(e.span_id, 0u);
      EXPECT_NE(e.parent_span_id, 0u);
    }
  }
  EXPECT_EQ(a_spans, kIters);
  EXPECT_EQ(b_spans, kIters);
}

}  // namespace
}  // namespace obs
}  // namespace nmine
