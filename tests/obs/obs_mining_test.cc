// End-to-end checks that a mining run records its cost accounting in the
// observability subsystem and that both views (MiningResult snapshot
// fields vs. the global metrics registry / tracer) agree.
#include <gtest/gtest.h>

#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/trace.h"

namespace nmine {
namespace {

InMemorySequenceDatabase SmallWorkload(uint64_t seed) {
  Rng rng(seed);
  GeneratorConfig config;
  config.num_sequences = 120;
  config.min_length = 20;
  config.max_length = 30;
  config.alphabet_size = 6;
  InMemorySequenceDatabase db = GenerateDatabase(config, &rng);
  Pattern planted({0, 1, 2});
  std::vector<SequenceRecord> records = db.records();
  for (SequenceRecord& r : records) {
    if (rng.Bernoulli(0.5)) PlantPattern(planted, 3, &r.symbols);
  }
  return InMemorySequenceDatabase::FromRecords(std::move(records));
}

class ObsMiningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().Reset();
    obs::Tracer::Global().Stop();
  }
  void TearDown() override { obs::Tracer::Global().Stop(); }
};

TEST_F(ObsMiningTest, BorderCollapseScansAgreeWithRegistry) {
  InMemorySequenceDatabase db = SmallWorkload(11);
  CompatibilityMatrix c = UniformNoiseMatrix(6, 0.1);
  MinerOptions options;
  options.min_threshold = 0.3;
  options.space.max_span = 4;
  options.max_level = 4;
  options.sample_size = 40;  // small sample -> real ambiguous region
  options.delta = 0.05;
  options.seed = 7;

  BorderCollapseMiner miner(Metric::kMatch, options);
  MiningResult result = miner.Mine(db, c);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  // The headline acceptance check: the registry's scan accounting equals
  // the per-run snapshot on MiningResult.
  EXPECT_EQ(reg.CounterValue("mining.scans"), result.scans);

  // Scans decompose into exactly one Phase-1 scan plus the Phase-3 probe
  // scans (Phase 2 runs on the in-memory sample).
  EXPECT_EQ(reg.CounterValue("phase1.scans") +
                reg.CounterValue("phase3.scans"),
            result.scans);
  EXPECT_EQ(reg.CounterValue("phase1.scans"), 1);

  // Phase-2 diagnostics folded from the result snapshot.
  EXPECT_EQ(reg.CounterValue("phase2.ambiguous_after_sample"),
            static_cast<int64_t>(result.ambiguous_after_sample));
  EXPECT_EQ(reg.CounterValue("phase2.accepted_from_sample"),
            static_cast<int64_t>(result.accepted_from_sample));
  EXPECT_EQ(reg.CounterValue("phase2.ambiguous_with_unit_spread"),
            static_cast<int64_t>(result.ambiguous_with_unit_spread));

  // The live Phase-2 ambiguous counter agrees with the snapshot too.
  EXPECT_EQ(reg.CounterValue("phase2.ambiguous"),
            static_cast<int64_t>(result.ambiguous_after_sample));

  // Per-level candidate counters mirror LevelStats.
  ASSERT_FALSE(result.level_stats.empty());
  for (const LevelStats& s : result.level_stats) {
    EXPECT_EQ(
        reg.CounterValue(obs::LevelMetricName("mining", s.level,
                                              "candidates")),
        static_cast<int64_t>(s.num_candidates))
        << "level " << s.level;
    EXPECT_EQ(
        reg.CounterValue(obs::LevelMetricName("mining", s.level, "frequent")),
        static_cast<int64_t>(s.num_frequent))
        << "level " << s.level;
  }

  EXPECT_EQ(reg.CounterValue("mining.runs"), 1);
  EXPECT_EQ(reg.CounterValue("mining.algorithm.collapse.runs"), 1);
  EXPECT_EQ(reg.GaugeValue("mining.last.scans"),
            static_cast<double>(result.scans));
  EXPECT_EQ(reg.GaugeValue("mining.last.frequent"),
            static_cast<double>(result.frequent.size()));
}

TEST_F(ObsMiningTest, TracerEmitsOneSpanPerPhase3Scan) {
  InMemorySequenceDatabase db = SmallWorkload(12);
  CompatibilityMatrix c = UniformNoiseMatrix(6, 0.1);
  MinerOptions options;
  options.min_threshold = 0.3;
  options.space.max_span = 4;
  options.max_level = 4;
  options.sample_size = 40;
  options.delta = 0.05;
  options.seed = 7;

  obs::Tracer::Global().Start();
  BorderCollapseMiner miner(Metric::kMatch, options);
  MiningResult result = miner.Mine(db, c);
  obs::Tracer::Global().Stop();

  size_t phase3_scan_spans = 0;
  size_t phase1_spans = 0;
  size_t mine_spans = 0;
  for (const obs::TraceEvent& e : obs::Tracer::Global().Events()) {
    if (e.name == "phase3.scan") ++phase3_scan_spans;
    if (e.name == "phase1.symbol_scan") ++phase1_spans;
    if (e.name == "mine.border_collapse") ++mine_spans;
  }
  EXPECT_EQ(phase1_spans, 1u);
  EXPECT_EQ(mine_spans, 1u);
  EXPECT_EQ(static_cast<int64_t>(phase3_scan_spans),
            obs::MetricsRegistry::Global().CounterValue("phase3.scans"));
  EXPECT_EQ(static_cast<int64_t>(phase1_spans + phase3_scan_spans),
            result.scans);
}

TEST_F(ObsMiningTest, LevelwiseChargesOneScanPerLevel) {
  InMemorySequenceDatabase db = SmallWorkload(13);
  CompatibilityMatrix c = UniformNoiseMatrix(6, 0.1);
  MinerOptions options;
  options.min_threshold = 0.3;
  options.space.max_span = 3;
  options.max_level = 3;

  LevelwiseMiner miner(Metric::kMatch, options);
  MiningResult result = miner.Mine(db, c);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.CounterValue("mining.scans"), result.scans);
  EXPECT_EQ(reg.CounterValue("mining.algorithm.levelwise.runs"), 1);
  EXPECT_EQ(static_cast<size_t>(result.scans), result.level_stats.size());
}

TEST_F(ObsMiningTest, MetricsAccumulateAcrossRuns) {
  InMemorySequenceDatabase db = SmallWorkload(14);
  CompatibilityMatrix c = UniformNoiseMatrix(6, 0.1);
  MinerOptions options;
  options.min_threshold = 0.35;
  options.space.max_span = 3;
  options.max_level = 3;
  options.sample_size = 60;
  options.delta = 0.05;

  BorderCollapseMiner miner(Metric::kMatch, options);
  MiningResult r1 = miner.Mine(db, c);
  MiningResult r2 = miner.Mine(db, c);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.CounterValue("mining.runs"), 2);
  EXPECT_EQ(reg.CounterValue("mining.scans"), r1.scans + r2.scans);
}

}  // namespace
}  // namespace nmine
