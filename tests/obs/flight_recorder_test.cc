#include "nmine/obs/flight_recorder.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nmine/obs/json_parse.h"

namespace nmine {
namespace obs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(FlightRecorderTest, DisabledRecordIsANoOp) {
  FlightRecorder fr;
  fr.Record(FlightEventType::kPhase, "phase1");
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.Snapshot().empty());
}

TEST(FlightRecorderTest, RecordsInOrderWithSequenceNumbers) {
  FlightRecorder fr;
  fr.Enable(64);
  fr.Record(FlightEventType::kPhase, "phase1");
  fr.Record(FlightEventType::kProgress, "phase3.collapse", 10, 4);
  fr.Record(FlightEventType::kCancel, "run_control.cancel");

  std::vector<FlightEvent> events = fr.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEventType::kPhase);
  EXPECT_STREQ(events[0].name, "phase1");
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].a, 10);
  EXPECT_EQ(events[1].b, 4);
  EXPECT_EQ(events[2].type, FlightEventType::kCancel);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_LE(events[0].t_us, events[1].t_us);
  EXPECT_LE(events[1].t_us, events[2].t_us);
}

TEST(FlightRecorderTest, TruncatesLongNamesInsteadOfOverflowing) {
  FlightRecorder fr;
  fr.Enable(64);
  const std::string longname(200, 'x');
  fr.Record(FlightEventType::kCustom, longname.c_str());
  std::vector<FlightEvent> events = fr.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LT(std::strlen(events[0].name), sizeof(events[0].name));
  EXPECT_EQ(events[0].name[0], 'x');
}

TEST(FlightRecorderTest, WrapKeepsOnlyTheNewestEventsOldestFirst) {
  FlightRecorder fr;
  fr.Enable(10);  // rounds up to 64
  EXPECT_EQ(fr.capacity(), 64u);
  for (int i = 0; i < 200; ++i) {
    fr.Record(FlightEventType::kProgress, "p", i);
  }
  EXPECT_EQ(fr.total_recorded(), 200u);
  std::vector<FlightEvent> events = fr.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().seq, 200u);
  EXPECT_EQ(events.back().a, 199);
}

// The ring is a seqlock: writers update slot fields non-atomically and
// readers detect tears via the marker, which is a benign-by-design data
// race TSan rightly flags. The hammer test is therefore skipped under
// TSan (the metrics-layer concurrency tests cover the sanitizer run).
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NMINE_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define NMINE_TSAN 1
#endif

TEST(FlightRecorderTest, ConcurrentWritersNeverProduceTornSlots) {
#ifdef NMINE_TSAN
  GTEST_SKIP() << "seqlock tears are detected, not avoided; racy by design";
#else
  FlightRecorder fr;
  fr.Enable(128);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&fr, t] {
      for (int i = 0; i < kPerThread; ++i) {
        fr.Record(FlightEventType::kProgress, "writer.hammer", t, i);
        if (i % 64 == 0) fr.Snapshot();  // readers race the wrap
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(fr.total_recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<FlightEvent> events = fr.Snapshot();
  EXPECT_LE(events.size(), fr.capacity());
  std::set<uint64_t> seqs;
  for (const FlightEvent& e : events) {
    // A torn slot would surface as a garbage name or an out-of-range seq;
    // every writer uses the same name so any corruption is a real tear.
    EXPECT_STREQ(e.name, "writer.hammer");
    EXPECT_GE(e.seq, 1u);
    EXPECT_LE(e.seq, fr.total_recorded());
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
  }
#endif
}

TEST(FlightRecorderTest, SnapshotJsonParsesWithSchemaAndEvents) {
  FlightRecorder fr;
  fr.Enable(64);
  fr.Record(FlightEventType::kSpanEnter, "mine.border_collapse");
  fr.Record(FlightEventType::kGovernorStep, "governor.batch_shrink", 100, 50);

  std::optional<JsonValue> doc = ParseJson(fr.SnapshotJson());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* schema = doc->Get("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value, "nmine.flight.v1");
  EXPECT_EQ(doc->GetNumber("total_recorded", -1.0), 2.0);
  const JsonValue* events = doc->Get("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  const JsonValue* type = events->array[1].Get("type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->string_value, "governor_step");
}

TEST(FlightRecorderTest, DumpToFdWritesParseableJsonLines) {
  FlightRecorder fr;
  fr.Enable(64);
  fr.Record(FlightEventType::kPhase, "phase3");
  fr.Record(FlightEventType::kScanRetry, "phase3.scan", 2, 17);

  const std::string path = TempPath("flight_dump.jsonl");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  fr.DumpToFd(fd);
  ::close(fd);

  std::ifstream in(path);
  std::vector<JsonValue> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<JsonValue> doc = ParseJson(line);
    ASSERT_TRUE(doc.has_value()) << "unparseable line: " << line;
    lines.push_back(*doc);
  }
  // Header line, then one line per event.
  ASSERT_EQ(lines.size(), 3u);
  const JsonValue* schema = lines[0].Get("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value, "nmine.flight.v1");
  EXPECT_EQ(lines[0].GetNumber("total_recorded", -1.0), 2.0);
  const JsonValue* type = lines[1].Get("type");
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->string_value, "phase");
  EXPECT_EQ(lines[2].GetNumber("a", -1.0), 2.0);
  EXPECT_EQ(lines[2].GetNumber("b", -1.0), 17.0);
}

TEST(FlightRecorderTest, ResetDropsEventsButStaysEnabled) {
  FlightRecorder fr;
  fr.Enable(64);
  fr.Record(FlightEventType::kPhase, "phase1");
  fr.Reset();
  EXPECT_TRUE(fr.Snapshot().empty());
  EXPECT_TRUE(fr.enabled());
  fr.Record(FlightEventType::kPhase, "phase2");
  EXPECT_EQ(fr.Snapshot().size(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace nmine
