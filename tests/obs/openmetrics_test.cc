#include "nmine/obs/export/openmetrics.h"

#include <gtest/gtest.h>

#include <string>

#include "nmine/obs/metrics.h"

namespace nmine {
namespace obs {
namespace {

int64_t ParseValueOf(const std::string& text, const std::string& line_prefix) {
  size_t pos = text.find(line_prefix);
  EXPECT_NE(pos, std::string::npos) << "no line starting '" << line_prefix
                                    << "' in:\n" << text;
  if (pos == std::string::npos) return -1;
  return std::stoll(text.substr(pos + line_prefix.size()));
}

TEST(OpenMetricsNameTest, SanitizesDotsAndPrefixes) {
  EXPECT_EQ(OpenMetricsName("db.scan.retries"), "nmine_db_scan_retries");
  EXPECT_EQ(OpenMetricsName("phase3.scans"), "nmine_phase3_scans");
  EXPECT_EQ(OpenMetricsName("weird-name!x"), "nmine_weird_name_x");
  EXPECT_EQ(OpenMetricsName("a:b_c9"), "nmine_a:b_c9");
}

TEST(OpenMetricsNameTest, EscapesLabelValues) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(OpenMetricsRenderTest, GoldenCounterGaugeHistogram) {
  MetricsRegistry reg;
  reg.GetCounter("phase3.scans").Add(12);
  reg.GetGauge("phase1.sample_size").Set(400.0);
  HistogramMetric& h = reg.GetHistogram("phase2.band_width", {1.0, 2.0});
  h.Observe(0.5);   // bucket le=1
  h.Observe(1.5);   // bucket le=2
  h.Observe(1.5);   // bucket le=2
  h.Observe(10.0);  // overflow

  const std::string text = RenderOpenMetrics(reg.Snapshot());
  EXPECT_EQ(text,
            "# TYPE nmine_phase3_scans counter\n"
            "nmine_phase3_scans_total 12\n"
            "# TYPE nmine_phase1_sample_size gauge\n"
            "nmine_phase1_sample_size 400\n"
            "# TYPE nmine_phase2_band_width histogram\n"
            "nmine_phase2_band_width_bucket{le=\"1\"} 1\n"
            "nmine_phase2_band_width_bucket{le=\"2\"} 3\n"
            "nmine_phase2_band_width_bucket{le=\"+Inf\"} 4\n"
            "nmine_phase2_band_width_sum 13.5\n"
            "nmine_phase2_band_width_count 4\n"
            "# EOF\n");
}

TEST(OpenMetricsRenderTest, BucketsAreCumulativeAndInfMatchesCount) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.GetHistogram("x", {1.0, 2.0, 4.0});
  for (double v : {0.5, 0.5, 1.5, 3.0, 3.0, 3.0, 100.0}) h.Observe(v);

  const std::string text = RenderOpenMetrics(reg.Snapshot());
  EXPECT_EQ(ParseValueOf(text, "nmine_x_bucket{le=\"1\"} "), 2);
  EXPECT_EQ(ParseValueOf(text, "nmine_x_bucket{le=\"2\"} "), 3);
  EXPECT_EQ(ParseValueOf(text, "nmine_x_bucket{le=\"4\"} "), 6);
  EXPECT_EQ(ParseValueOf(text, "nmine_x_bucket{le=\"+Inf\"} "), 7);
  EXPECT_EQ(ParseValueOf(text, "nmine_x_count "), 7);
}

TEST(OpenMetricsRenderTest, EndsWithEofMarkerEvenWhenEmpty) {
  MetricsRegistry reg;
  const std::string text = RenderOpenMetrics(reg.Snapshot());
  EXPECT_EQ(text, "# EOF\n");
}

TEST(OpenMetricsRenderTest, CountersNeverRunBackwardsAcrossScrapes) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("scrape.me");
  c.Add(5);
  const int64_t first =
      ParseValueOf(RenderOpenMetrics(reg.Snapshot()), "nmine_scrape_me_total ");
  c.Add(3);
  const int64_t second =
      ParseValueOf(RenderOpenMetrics(reg.Snapshot()), "nmine_scrape_me_total ");
  EXPECT_EQ(first, 5);
  EXPECT_EQ(second, 8);
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace obs
}  // namespace nmine
