#include "nmine/obs/trace.h"

#include <gtest/gtest.h>

#include "../test_json.h"

namespace nmine {
namespace obs {
namespace {

/// Every test leaves the global tracer stopped.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Stop(); }
  void TearDown() override { Tracer::Global().Stop(); }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  {
    TraceSpan span("never", "test");
    EXPECT_FALSE(span.armed());
    span.Arg("k", "v");
  }
  // Start() clears the buffer, so check before starting: the span above
  // must not have appended to whatever was there.
  size_t before = Tracer::Global().NumEvents();
  {
    TraceSpan span("still nothing", "test");
  }
  EXPECT_EQ(Tracer::Global().NumEvents(), before);
}

TEST_F(TracerTest, RecordsNestedSpans) {
  Tracer::Global().Start();
  {
    TraceSpan outer("phase3.border_collapse", "phase3");
    EXPECT_TRUE(outer.armed());
    {
      TraceSpan inner("phase3.scan", "phase3");
      inner.Arg("probed", 512).Arg("ratio", 0.25);
    }
    {
      TraceSpan inner2("phase3.scan", "phase3");
    }
  }
  Tracer::Global().Stop();

  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded at destruction: inner events first, outer last.
  const TraceEvent& inner = events[0];
  const TraceEvent& inner2 = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_EQ(inner.name, "phase3.scan");
  EXPECT_EQ(outer.name, "phase3.border_collapse");

  // Nesting: both inner spans lie within the outer span, and the second
  // inner span starts at or after the first one ends.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_GE(inner2.ts_us, inner.ts_us + inner.dur_us);
  EXPECT_LE(inner2.ts_us + inner2.dur_us, outer.ts_us + outer.dur_us);

  ASSERT_EQ(inner.args.size(), 2u);
  EXPECT_EQ(inner.args[0].first, "probed");
  EXPECT_EQ(inner.args[0].second, "512");
  EXPECT_EQ(inner.args[1].second, "0.25");
}

TEST_F(TracerTest, SnapshotIsWellFormedTraceEventJson) {
  Tracer::Global().Start();
  {
    TraceSpan span("mine.border_collapse", "mining");
    span.Arg("note", "quotes \"inside\"");
    TraceSpan child("phase1.symbol_scan", "phase1");
  }
  Tracer::Global().Stop();

  auto parsed = testjson::ParseJson(Tracer::Global().SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const testjson::JsonValue* events = parsed->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  for (const testjson::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.Get("name"), nullptr);
    ASSERT_NE(e.Get("cat"), nullptr);
    ASSERT_NE(e.Get("ph"), nullptr);
    EXPECT_EQ(e.Get("ph")->string_value, "X");  // complete event
    ASSERT_NE(e.Get("ts"), nullptr);
    EXPECT_TRUE(e.Get("ts")->is_number());
    ASSERT_NE(e.Get("dur"), nullptr);
    EXPECT_TRUE(e.Get("dur")->is_number());
    EXPECT_GE(e.Get("dur")->number_value, 0.0);
    ASSERT_NE(e.Get("pid"), nullptr);
    ASSERT_NE(e.Get("tid"), nullptr);
    ASSERT_NE(e.Get("args"), nullptr);
    EXPECT_TRUE(e.Get("args")->is_object());
  }
  // The string arg survived JSON escaping.
  EXPECT_EQ(events->array[1].Get("name")->string_value,
            "mine.border_collapse");
  EXPECT_EQ(events->array[1].Get("args")->Get("note")->string_value,
            "quotes \"inside\"");
}

TEST_F(TracerTest, EmptySnapshotStillParses) {
  Tracer::Global().Start();
  Tracer::Global().Stop();
  auto parsed = testjson::ParseJson(Tracer::Global().SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->Get("traceEvents")->array.empty());
}

TEST_F(TracerTest, StartClearsPreviousEvents) {
  Tracer::Global().Start();
  {
    TraceSpan span("old", "test");
  }
  EXPECT_EQ(Tracer::Global().NumEvents(), 1u);
  Tracer::Global().Start();
  EXPECT_EQ(Tracer::Global().NumEvents(), 0u);
  Tracer::Global().Stop();
}

}  // namespace
}  // namespace obs
}  // namespace nmine
