#include "nmine/obs/trace.h"

#include <gtest/gtest.h>

#include "../test_json.h"

namespace nmine {
namespace obs {
namespace {

/// Every test leaves the global tracer stopped.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Stop(); }
  void TearDown() override { Tracer::Global().Stop(); }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  {
    TraceSpan span("never", "test");
    EXPECT_FALSE(span.armed());
    span.Arg("k", "v");
  }
  // Start() clears the buffer, so check before starting: the span above
  // must not have appended to whatever was there.
  size_t before = Tracer::Global().NumEvents();
  {
    TraceSpan span("still nothing", "test");
  }
  EXPECT_EQ(Tracer::Global().NumEvents(), before);
}

TEST_F(TracerTest, RecordsNestedSpans) {
  Tracer::Global().Start();
  {
    TraceSpan outer("phase3.border_collapse", "phase3");
    EXPECT_TRUE(outer.armed());
    {
      TraceSpan inner("phase3.scan", "phase3");
      inner.Arg("probed", 512).Arg("ratio", 0.25);
    }
    {
      TraceSpan inner2("phase3.scan", "phase3");
    }
  }
  Tracer::Global().Stop();

  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 3u);
  // Spans are recorded at destruction: inner events first, outer last.
  const TraceEvent& inner = events[0];
  const TraceEvent& inner2 = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_EQ(inner.name, "phase3.scan");
  EXPECT_EQ(outer.name, "phase3.border_collapse");

  // Nesting: both inner spans lie within the outer span, and the second
  // inner span starts at or after the first one ends.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_GE(inner2.ts_us, inner.ts_us + inner.dur_us);
  EXPECT_LE(inner2.ts_us + inner2.dur_us, outer.ts_us + outer.dur_us);

  ASSERT_EQ(inner.args.size(), 2u);
  EXPECT_EQ(inner.args[0].first, "probed");
  EXPECT_EQ(inner.args[0].second, "512");
  EXPECT_EQ(inner.args[1].second, "0.25");
}

TEST_F(TracerTest, SnapshotIsWellFormedTraceEventJson) {
  Tracer::Global().Start();
  {
    TraceSpan span("mine.border_collapse", "mining");
    span.Arg("note", "quotes \"inside\"");
    TraceSpan child("phase1.symbol_scan", "phase1");
  }
  Tracer::Global().Stop();

  auto parsed = testjson::ParseJson(Tracer::Global().SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  const testjson::JsonValue* events = parsed->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  for (const testjson::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.Get("name"), nullptr);
    ASSERT_NE(e.Get("cat"), nullptr);
    ASSERT_NE(e.Get("ph"), nullptr);
    EXPECT_EQ(e.Get("ph")->string_value, "X");  // complete event
    ASSERT_NE(e.Get("ts"), nullptr);
    EXPECT_TRUE(e.Get("ts")->is_number());
    ASSERT_NE(e.Get("dur"), nullptr);
    EXPECT_TRUE(e.Get("dur")->is_number());
    EXPECT_GE(e.Get("dur")->number_value, 0.0);
    ASSERT_NE(e.Get("pid"), nullptr);
    ASSERT_NE(e.Get("tid"), nullptr);
    ASSERT_NE(e.Get("args"), nullptr);
    EXPECT_TRUE(e.Get("args")->is_object());
  }
  // The string arg survived JSON escaping.
  EXPECT_EQ(events->array[1].Get("name")->string_value,
            "mine.border_collapse");
  EXPECT_EQ(events->array[1].Get("args")->Get("note")->string_value,
            "quotes \"inside\"");
}

TEST_F(TracerTest, EmptySnapshotStillParses) {
  Tracer::Global().Start();
  Tracer::Global().Stop();
  auto parsed = testjson::ParseJson(Tracer::Global().SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->Get("traceEvents")->array.empty());
}

TEST_F(TracerTest, RestartClearsButRedundantStartKeepsBuffer) {
  Tracer::Global().Start();
  {
    TraceSpan span("old", "test");
  }
  EXPECT_EQ(Tracer::Global().NumEvents(), 1u);
  // Start() on a running tracer is a no-op: a component (re)starting
  // inside a live server must not discard other traces' buffered spans.
  Tracer::Global().Start();
  EXPECT_EQ(Tracer::Global().NumEvents(), 1u);
  // A full stop/start cycle does clear.
  Tracer::Global().Stop();
  Tracer::Global().Start();
  EXPECT_EQ(Tracer::Global().NumEvents(), 0u);
  Tracer::Global().Stop();
}

TEST_F(TracerTest, StartAnchorsWallClock) {
  EXPECT_EQ(Tracer::Global().WallEpochUs(), 0);
  Tracer::Global().Start();
  // Trace ts 0 is the process epoch, which is in the past: the anchor
  // must be a plausible recent wall-clock time (after 2020-01-01).
  EXPECT_GT(Tracer::Global().WallEpochUs(), 1577836800LL * 1000000LL);
  Tracer::Global().Stop();
}

TEST_F(TracerTest, RingCapacityBoundsBufferAndCountsDrops) {
  Tracer::Global().SetCapacity(4);
  Tracer::Global().Start();
  uint64_t dropped_before = Tracer::Global().dropped();
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.name = "e" + std::to_string(i);
    e.category = "test";
    e.ts_us = i;
    Tracer::Global().AddComplete(std::move(e));
  }
  Tracer::Global().Stop();
  EXPECT_EQ(Tracer::Global().NumEvents(), 4u);
  EXPECT_EQ(Tracer::Global().dropped() - dropped_before, 6u);
  // The ring keeps the most recent events, in order.
  std::vector<TraceEvent> events = Tracer::Global().Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
  Tracer::Global().SetCapacity(Tracer::kDefaultCapacity);
}

TEST_F(TracerTest, TraceJsonFiltersByTraceIdAndShiftsToWallClock) {
  Tracer::Global().Start();
  const int64_t wall_epoch = Tracer::Global().WallEpochUs();
  TraceEvent mine;
  mine.name = "job.run";
  mine.category = "serve";
  mine.ts_us = 100;
  mine.dur_us = 50;
  mine.trace_hi = 0xabc;
  mine.trace_lo = 0xdef;
  mine.span_id = 7;
  Tracer::Global().AddComplete(std::move(mine));
  TraceEvent other;
  other.name = "unrelated";
  other.category = "serve";
  other.trace_hi = 1;
  other.trace_lo = 2;
  Tracer::Global().AddComplete(std::move(other));
  Tracer::Global().Stop();

  std::string json = Tracer::Global().TraceJson(0xabc, 0xdef);
  // Single line (it is embedded as one line-JSON response member).
  EXPECT_EQ(json.find('\n'), std::string::npos);
  auto parsed = testjson::ParseJson(json);
  ASSERT_TRUE(parsed.has_value());
  const testjson::JsonValue* events = parsed->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  const testjson::JsonValue& e = events->array[0];
  EXPECT_EQ(e.Get("name")->string_value, "job.run");
  EXPECT_EQ(e.Get("ts")->number_value,
            static_cast<double>(wall_epoch + 100));
  EXPECT_EQ(e.Get("args")->Get("trace_id")->string_value,
            "0000000000000abc0000000000000def");

  // No matches -> still a valid document with an empty event array.
  auto empty = testjson::ParseJson(Tracer::Global().TraceJson(9, 9));
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->Get("traceEvents")->array.empty());
}

}  // namespace
}  // namespace obs
}  // namespace nmine
