#include "nmine/obs/logger.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "../test_json.h"

namespace nmine {
namespace obs {
namespace {

/// Test sink buffering every record it receives.
class CaptureSink : public LogSink {
 public:
  explicit CaptureSink(std::vector<LogRecord>* records)
      : records_(records) {}
  void Write(const LogRecord& record) override {
    records_->push_back(record);
  }

 private:
  std::vector<LogRecord>* records_;
};

/// Every test restores the global logger to its silent default.
class LoggerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Global().ClearSinks();
    Logger::Global().SetLevel(LogLevel::kOff);
  }
  void TearDown() override {
    Logger::Global().ClearSinks();
    Logger::Global().SetLevel(LogLevel::kOff);
  }

  void Attach(std::vector<LogRecord>* records) {
    Logger::Global().AddSink(std::make_unique<CaptureSink>(records));
  }
};

TEST_F(LoggerTest, ParseLogLevelRoundTrip) {
  for (LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    auto parsed = ParseLogLevel(ToString(level));
    ASSERT_TRUE(parsed.has_value()) << ToString(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
}

TEST_F(LoggerTest, LevelFilteringDropsBelowThreshold) {
  std::vector<LogRecord> records;
  Attach(&records);
  Logger::Global().SetLevel(LogLevel::kWarn);

  NMINE_LOG(kDebug, "test").Msg("dropped");
  NMINE_LOG(kInfo, "test").Msg("dropped too");
  NMINE_LOG(kWarn, "test").Msg("kept");
  NMINE_LOG(kError, "test").Msg("kept too");

  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kWarn);
  EXPECT_EQ(records[0].message, "kept");
  EXPECT_EQ(records[1].level, LogLevel::kError);
  EXPECT_EQ(records[1].message, "kept too");
}

TEST_F(LoggerTest, OffLevelSilencesEverything) {
  std::vector<LogRecord> records;
  Attach(&records);
  Logger::Global().SetLevel(LogLevel::kOff);
  NMINE_LOG(kError, "test").Msg("never seen");
  EXPECT_TRUE(records.empty());
}

TEST_F(LoggerTest, NoSinksMeansShouldLogIsFalse) {
  Logger::Global().SetLevel(LogLevel::kTrace);
  EXPECT_FALSE(Logger::Global().ShouldLog(LogLevel::kError));
}

TEST_F(LoggerTest, RoutesToAllSinks) {
  std::vector<LogRecord> a;
  std::vector<LogRecord> b;
  Attach(&a);
  Attach(&b);
  Logger::Global().SetLevel(LogLevel::kInfo);
  NMINE_LOG(kInfo, "router").Msg("fan out").Num("n", 3);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].message, "fan out");
  EXPECT_EQ(b[0].message, "fan out");
  ASSERT_EQ(a[0].fields.size(), 1u);
  EXPECT_EQ(a[0].fields[0].first, "n");
  EXPECT_EQ(a[0].fields[0].second, "3");
}

TEST_F(LoggerTest, FieldsPreserveOrderAndRenderNumbers) {
  std::vector<LogRecord> records;
  Attach(&records);
  Logger::Global().SetLevel(LogLevel::kTrace);
  NMINE_LOG(kTrace, "fields")
      .Msg("mixed")
      .Num("count", size_t{42})
      .Num("delta", -7)
      .Num("ratio", 0.5)
      .Str("name", "x");
  ASSERT_EQ(records.size(), 1u);
  const LogRecord& r = records[0];
  ASSERT_EQ(r.fields.size(), 4u);
  EXPECT_EQ(r.fields[0], (std::pair<std::string, std::string>{"count", "42"}));
  EXPECT_EQ(r.fields[1], (std::pair<std::string, std::string>{"delta", "-7"}));
  EXPECT_EQ(r.fields[2], (std::pair<std::string, std::string>{"ratio", "0.5"}));
  EXPECT_EQ(r.fields[3], (std::pair<std::string, std::string>{"name", "x"}));
  EXPECT_GE(r.ts_us, 0);
}

TEST_F(LoggerTest, TextSinkRendersOneLine) {
  std::ostringstream out;
  Logger::Global().AddSink(std::make_unique<TextSink>(&out));
  Logger::Global().SetLevel(LogLevel::kInfo);
  NMINE_LOG(kInfo, "phase3").Msg("probe scan").Num("probed", 512);
  std::string line = out.str();
  EXPECT_NE(line.find("INFO"), std::string::npos);
  EXPECT_NE(line.find("phase3: probe scan"), std::string::npos);
  EXPECT_NE(line.find("probed=512"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST_F(LoggerTest, JsonLinesSinkEmitsParsableObjects) {
  std::ostringstream out;
  Logger::Global().AddSink(std::make_unique<JsonLinesSink>(&out));
  Logger::Global().SetLevel(LogLevel::kDebug);
  NMINE_LOG(kDebug, "phase2")
      .Msg("level \"quoted\"\nclassified")
      .Num("level", 3)
      .Str("note", "tab\there");
  NMINE_LOG(kError, "phase2").Msg("second record");

  std::istringstream lines(out.str());
  std::string line;
  size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    auto parsed = testjson::ParseJson(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    ASSERT_TRUE(parsed->is_object());
    ASSERT_NE(parsed->Get("level"), nullptr);
    ASSERT_NE(parsed->Get("component"), nullptr);
    EXPECT_EQ(parsed->Get("component")->string_value, "phase2");
    ASSERT_NE(parsed->Get("message"), nullptr);
    ASSERT_NE(parsed->Get("ts_us"), nullptr);
    EXPECT_TRUE(parsed->Get("ts_us")->is_number());
  }
  EXPECT_EQ(n, 2u);

  // The escaped message round-trips through the parser.
  std::istringstream again(out.str());
  std::getline(again, line);
  auto first = testjson::ParseJson(line);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->Get("message")->string_value,
            "level \"quoted\"\nclassified");
  EXPECT_EQ(first->Get("note")->string_value, "tab\there");
  EXPECT_EQ(first->Get("level")->string_value, "debug");
  // A user field colliding with a reserved key is namespaced, not dropped.
  ASSERT_NE(first->Get("field.level"), nullptr);
  EXPECT_EQ(first->Get("field.level")->string_value, "3");
}

}  // namespace
}  // namespace obs
}  // namespace nmine
