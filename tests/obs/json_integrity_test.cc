// End-to-end integrity of the JSON this system emits: every byte sequence
// a metric name or trace argument can contain must survive
// AppendJsonString -> ParseJson unchanged, and a --trace-out file must be
// a well-formed Chrome trace_event document.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "nmine/obs/json_parse.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/trace.h"

namespace nmine {
namespace obs {
namespace {

/// Serializes `text` as a JSON string literal and parses it back.
std::string RoundTrip(const std::string& text) {
  std::string doc;
  AppendJsonString(text, &doc);
  std::optional<JsonValue> parsed = ParseJson(doc);
  EXPECT_TRUE(parsed.has_value()) << "unparseable: " << doc;
  if (!parsed.has_value()) return "<parse failure>";
  EXPECT_TRUE(parsed->is_string());
  return parsed->string_value;
}

TEST(JsonIntegrityTest, EscapedSpecialsRoundTrip) {
  const std::string text = "quote:\" backslash:\\ slash:/";
  EXPECT_EQ(RoundTrip(text), text);
}

TEST(JsonIntegrityTest, EveryControlCharacterRoundTrips) {
  for (int ch = 0; ch < 0x20; ++ch) {
    std::string text = "a";
    text.push_back(static_cast<char>(ch));
    text += "b";
    EXPECT_EQ(RoundTrip(text), text) << "control char " << ch;
  }
  // DEL and a high Latin-1 byte pass through as raw bytes.
  EXPECT_EQ(RoundTrip(std::string(1, '\x7f')), "\x7f");
}

TEST(JsonIntegrityTest, MultiByteUtf8RoundTrips) {
  // Two-, three-, and four-byte UTF-8 sequences: é, ∑ (U+2211),
  // 𝄞 (U+1D11E). The emitter passes bytes >= 0x20 through untouched and
  // the parser does the same, so the encoded bytes survive exactly.
  const std::string text = "caf\xc3\xa9 \xe2\x88\x91 \xf0\x9d\x84\x9e";
  EXPECT_EQ(RoundTrip(text), text);
}

TEST(JsonIntegrityTest, MixedPathologicalStringRoundTrips) {
  std::string text = "tab\there\nnewline\x01\x1f";
  text += '\0';  // embedded NUL
  text += "\xc3\xbc after-nul";
  EXPECT_EQ(RoundTrip(text), text);
}

TEST(JsonIntegrityTest, TraceOutFileIsValidChromeTraceJson) {
  Tracer& tracer = Tracer::Global();
  tracer.Start();
  {
    TraceSpan span("phase1.symbol_scan", "phase1");
    span.Arg("sequences", static_cast<int64_t>(400));
    span.Arg("label", "control\x01char and caf\xc3\xa9");
  }
  { TraceSpan span("mine.collapse", "mining"); }
  tracer.Stop();

  std::string path = std::string(::testing::TempDir()) + "/trace_out.json";
  ASSERT_TRUE(tracer.WriteJsonFile(path));
  std::optional<JsonValue> parsed = ParseJsonFile(path);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());

  const JsonValue* events = parsed->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  for (const JsonValue& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const JsonValue* ph = event.Get("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string_value, "X");  // complete events only
    EXPECT_NE(event.Get("name"), nullptr);
    EXPECT_NE(event.Get("ts"), nullptr);
    EXPECT_NE(event.Get("dur"), nullptr);
  }
  // The pathological argument survived the file round trip.
  const JsonValue* args = events->array[0].Get("args");
  ASSERT_NE(args, nullptr);
  const JsonValue* label = args->Get("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->string_value, "control\x01char and caf\xc3\xa9");

  std::filesystem::remove(path);
}

}  // namespace
}  // namespace obs
}  // namespace nmine
