#include "nmine/obs/metrics.h"

#include <gtest/gtest.h>

#include "../test_json.h"

namespace nmine {
namespace obs {
namespace {

TEST(CounterTest, Arithmetic) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Add(-2);
  EXPECT_EQ(c.value(), 40);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(HistogramMetricTest, BucketEdgesAreInclusiveUpperBounds) {
  HistogramMetric h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 0 (inclusive edge)
  h.Observe(1.5);   // bucket 1
  h.Observe(4.0);   // bucket 2 (inclusive edge)
  h.Observe(100.0); // overflow bucket
  std::vector<int64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 5.0);
}

TEST(HistogramMetricTest, ResetClearsEverything) {
  HistogramMetric h({1.0});
  h.Observe(0.5);
  h.Observe(2.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  std::vector<int64_t> counts = h.counts();
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

TEST(HistogramMetricTest, QuantilesInterpolateWithinBuckets) {
  // 20 observations, 1..20, split evenly across the two bounded buckets.
  HistogramMetric h({10.0, 20.0});
  for (int v = 1; v <= 20; ++v) h.Observe(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 19.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 19.8);
  // The extremes clamp to the observed min/max.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);
}

TEST(HistogramMetricTest, OverflowBucketQuantilesClampToObservedRange) {
  HistogramMetric h({1.0});
  h.Observe(100.0);
  h.Observe(200.0);
  // Both observations sit in the open-ended overflow bucket, whose edges
  // are taken from the observed min/max rather than infinity.
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 150.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 199.0);
}

TEST(HistogramMetricTest, QuantileOfEmptyHistogramIsZero) {
  HistogramMetric h({1.0});
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramMetricTest, SnapshotJsonCarriesQuantiles) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.GetHistogram("latency", {10.0, 20.0});
  for (int v = 1; v <= 20; ++v) h.Observe(v);
  auto parsed = testjson::ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  const testjson::JsonValue* hist =
      parsed->Get("histograms")->Get("latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->GetNumber("p50", -1.0), 10.0);
  EXPECT_DOUBLE_EQ(hist->GetNumber("p95", -1.0), 19.0);
  EXPECT_DOUBLE_EQ(hist->GetNumber("p99", -1.0), 19.8);
  EXPECT_DOUBLE_EQ(hist->GetNumber("count", -1.0), 20.0);
  EXPECT_DOUBLE_EQ(hist->GetNumber("sum", -1.0), 210.0);
}

TEST(MetricsRegistryTest, GetReturnsStableInstances) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(reg.CounterValue("x"), 7);
  EXPECT_EQ(reg.CounterValue("never-registered"), 0);
  EXPECT_TRUE(reg.HasCounter("x"));
  EXPECT_FALSE(reg.HasCounter("y"));

  Gauge& g = reg.GetGauge("g");
  g.Set(2.5);
  EXPECT_EQ(reg.GaugeValue("g"), 2.5);

  HistogramMetric& h1 = reg.GetHistogram("h", {1.0, 2.0});
  HistogramMetric& h2 = reg.GetHistogram("h", {9.0});  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("c");
  c.Add(5);
  reg.GetGauge("g").Set(1.0);
  reg.GetHistogram("h", {1.0}).Observe(0.5);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("c"), 0);
  EXPECT_EQ(reg.GaugeValue("g"), 0.0);
  EXPECT_EQ(reg.GetHistogram("h", {}).count(), 0);
  // The reference obtained before Reset() is still the live counter.
  c.Increment();
  EXPECT_EQ(reg.CounterValue("c"), 1);
}

TEST(MetricsRegistryTest, SnapshotJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("mining.scans").Add(3);
  reg.GetCounter("phase3.probed").Add(1200);
  reg.GetGauge("phase1.sample.target").Set(400);
  HistogramMetric& h = reg.GetHistogram("phase2.band_width", {0.1, 0.5});
  h.Observe(0.05);
  h.Observe(0.3);
  h.Observe(0.7);

  auto parsed = testjson::ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());

  const testjson::JsonValue* counters = parsed->Get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  ASSERT_NE(counters->Get("mining.scans"), nullptr);
  EXPECT_EQ(counters->Get("mining.scans")->number_value, 3.0);
  EXPECT_EQ(counters->Get("phase3.probed")->number_value, 1200.0);

  const testjson::JsonValue* gauges = parsed->Get("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Get("phase1.sample.target"), nullptr);
  EXPECT_EQ(gauges->Get("phase1.sample.target")->number_value, 400.0);

  const testjson::JsonValue* hists = parsed->Get("histograms");
  ASSERT_NE(hists, nullptr);
  const testjson::JsonValue* band = hists->Get("phase2.band_width");
  ASSERT_NE(band, nullptr);
  ASSERT_NE(band->Get("bounds"), nullptr);
  ASSERT_EQ(band->Get("bounds")->array.size(), 2u);
  EXPECT_EQ(band->Get("bounds")->array[0].number_value, 0.1);
  ASSERT_NE(band->Get("counts"), nullptr);
  ASSERT_EQ(band->Get("counts")->array.size(), 3u);
  EXPECT_EQ(band->Get("counts")->array[0].number_value, 1.0);
  EXPECT_EQ(band->Get("counts")->array[1].number_value, 1.0);
  EXPECT_EQ(band->Get("counts")->array[2].number_value, 1.0);
  EXPECT_EQ(band->Get("count")->number_value, 3.0);
  EXPECT_NEAR(band->Get("sum")->number_value, 1.05, 1e-12);
  EXPECT_EQ(band->Get("min")->number_value, 0.05);
  EXPECT_EQ(band->Get("max")->number_value, 0.7);
}

TEST(MetricsRegistryTest, EmptySnapshotIsValidJson) {
  MetricsRegistry reg;
  auto parsed = testjson::ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->Get("counters")->is_object());
  EXPECT_TRUE(parsed->Get("counters")->object.empty());
  EXPECT_TRUE(parsed->Get("gauges")->object.empty());
  EXPECT_TRUE(parsed->Get("histograms")->object.empty());
}

TEST(MetricsRegistryTest, LevelMetricNameFormatsTwoDigits) {
  EXPECT_EQ(LevelMetricName("mining", 3, "candidates"),
            "mining.level.03.candidates");
  EXPECT_EQ(LevelMetricName("mining", 12, "frequent"),
            "mining.level.12.frequent");
}

}  // namespace
}  // namespace obs
}  // namespace nmine
