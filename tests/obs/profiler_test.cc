#include "nmine/obs/profiler.h"

#include <gtest/gtest.h>

#include <thread>

#include "../test_json.h"

namespace nmine {
namespace obs {
namespace {

/// The profiler is process-global; each test starts from a disabled,
/// zeroed state and leaves it that way.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::Global().Disable();
    Profiler::Global().Reset();
  }
  void TearDown() override {
    Profiler::Global().Disable();
    Profiler::Global().Reset();
  }
};

TEST_F(ProfilerTest, DisabledScopesRecordNothing) {
  {
    NMINE_PROFILE_SCOPE("disabled.outer");
    NMINE_PROFILE_SCOPE("disabled.inner");
  }
  EXPECT_EQ(ResolveSection("disabled.flat"), nullptr);
  EXPECT_TRUE(Profiler::Global().Snapshot().empty());
  EXPECT_EQ(Profiler::Global().CurrentSection(), "");
}

TEST_F(ProfilerTest, NestedScopesFormSlashSeparatedPaths) {
  Profiler& p = Profiler::Global();
  p.Enable();
  {
    NMINE_PROFILE_SCOPE("outer");
    EXPECT_EQ(p.CurrentSection(), "outer");
    for (int i = 0; i < 3; ++i) {
      NMINE_PROFILE_SCOPE("inner");
      EXPECT_EQ(p.CurrentSection(), "outer/inner");
    }
    // Leaving the nested scope restores the enclosing section.
    EXPECT_EQ(p.CurrentSection(), "outer");
  }
  EXPECT_EQ(p.CurrentSection(), "");
  p.Disable();

  auto snapshot = p.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "outer");
  EXPECT_EQ(snapshot[0].second.count, 1u);
  EXPECT_EQ(snapshot[1].first, "outer/inner");
  EXPECT_EQ(snapshot[1].second.count, 3u);
  EXPECT_GE(snapshot[1].second.min_ns, 0);
  EXPECT_GE(snapshot[1].second.max_ns, snapshot[1].second.min_ns);
  EXPECT_GE(snapshot[0].second.total_ns, snapshot[1].second.total_ns);
}

TEST_F(ProfilerTest, SectionTimerRecordsIntoResolvedSection) {
  Profiler& p = Profiler::Global();
  p.Enable();
  Profiler::Section* section = ResolveSection("flat.loop");
  ASSERT_NE(section, nullptr);
  for (int i = 0; i < 5; ++i) {
    SectionTimer timer(section);
  }
  p.Disable();
  ProfileStats s = section->stats();
  EXPECT_EQ(s.count, 5u);
  EXPECT_GE(s.total_ns, 0);
  // A null section (the disabled fast path) must be a no-op.
  SectionTimer noop(nullptr);
}

TEST_F(ProfilerTest, SnapshotJsonParsesAndCarriesAggregates) {
  Profiler& p = Profiler::Global();
  p.Enable();
  {
    NMINE_PROFILE_SCOPE("phase");
  }
  p.Disable();

  auto parsed = testjson::ParseJson(p.SnapshotJson());
  ASSERT_TRUE(parsed.has_value());
  const testjson::JsonValue* sections = parsed->Get("sections");
  ASSERT_NE(sections, nullptr);
  const testjson::JsonValue* phase = sections->Get("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->GetNumber("count", -1), 1.0);
  EXPECT_GE(phase->GetNumber("total_ns", -1), 0.0);
  EXPECT_GE(phase->GetNumber("mean_ns", -1), 0.0);
  EXPECT_GE(phase->GetNumber("max_ns", -1), phase->GetNumber("min_ns", 0.0));
}

TEST_F(ProfilerTest, ResetZeroesAggregatesButKeepsReferences) {
  Profiler& p = Profiler::Global();
  p.Enable();
  Profiler::Section* section = ResolveSection("reset.me");
  section->Record(100);
  p.Reset();
  EXPECT_TRUE(p.Snapshot().empty());
  // The reference is still the live section.
  section->Record(7);
  ProfileStats s = section->stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.total_ns, 7);
  EXPECT_EQ(s.min_ns, 7);
  EXPECT_EQ(s.max_ns, 7);
  p.Disable();
}

TEST_F(ProfilerTest, ConcurrentRecordingsAllLand) {
  Profiler& p = Profiler::Global();
  p.Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p] {
      Profiler::Section& section = p.GetSection("mt.section");
      for (int i = 0; i < kPerThread; ++i) {
        section.Record(i + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  p.Disable();
  ProfileStats s = p.GetSection("mt.section").stats();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.min_ns, 1);
  EXPECT_EQ(s.max_ns, kPerThread);
}

// The --progress heartbeat reports the MAIN thread's open section (the
// thread that called Enable); scopes opened by scan workers must neither
// clobber it while running nor blank it when they close.
TEST_F(ProfilerTest, WorkerScopesDoNotClobberMainCurrentSection) {
  Profiler& p = Profiler::Global();
  p.Enable();
  {
    NMINE_PROFILE_SCOPE("main.work");
    ASSERT_EQ(p.CurrentSection(), "main.work");
    std::thread worker([&p] {
      NMINE_PROFILE_SCOPE("worker.shard");
      EXPECT_EQ(p.CurrentSection(), "main.work");
    });
    worker.join();
    // The worker's scope closed; the main thread's section must survive.
    EXPECT_EQ(p.CurrentSection(), "main.work");
  }
  EXPECT_EQ(p.CurrentSection(), "");
  p.Disable();
  // The worker's timing still landed in its own section.
  EXPECT_EQ(p.GetSection("worker.shard").stats().count, 1u);
}

}  // namespace
}  // namespace obs
}  // namespace nmine
