// Figure 10: number of ambiguous patterns vs sample size, for several
// noise levels. Paper: ambiguous counts fall steeply with the sample size
// and rise with the degree of noise.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/symbol_scan.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig10(const bench::BenchContext& ctx) {
  const size_t m = 20;
  const double tau = 0.30;

  Rng rng(505);
  GeneratorConfig config;
  config.num_sequences = 2000;
  config.min_length = 40;
  config.max_length = 60;
  config.alphabet_size = m;
  InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
  for (size_t k = 2; k <= 8; ++k) {
    PlantIntoDatabase(RandomPattern(k, 0, m, &rng), 0.45, &standard, &rng);
  }

  const double alphas[] = {0.1, 0.2, 0.3};
  const size_t sample_sizes[] = {50, 100, 200, 400, 800, 1600};

  Table fig10({"samples", "ambiguous (a=0.1)", "ambiguous (a=0.2)",
               "ambiguous (a=0.3)"});
  std::vector<std::vector<size_t>> counts(
      std::size(sample_sizes), std::vector<size_t>(std::size(alphas), 0));

  for (size_t ai = 0; ai < std::size(alphas); ++ai) {
    Rng noise_rng(606);
    InMemorySequenceDatabase test =
        ApplyUniformNoise(standard, alphas[ai], m, &noise_rng);
    CompatibilityMatrix c = UniformNoiseMatrix(m, alphas[ai]);
    for (size_t si = 0; si < std::size(sample_sizes); ++si) {
      MinerOptions options;
      options.min_threshold = tau;
      options.space.max_span = 8;
      options.max_level = 8;
      options.delta = 1e-4;
      options.sample_size = sample_sizes[si];
      options.seed = 17;
      Rng sample_rng(options.seed);
      SymbolScanResult phase1 =
          ScanSymbolsAndSample(test, c, options.sample_size, &sample_rng);
      SampleClassification cls = ClassifySamplePatterns(
          phase1.sample.records(), c, phase1.symbol_match, Metric::kMatch,
          options);
      counts[si][ai] = cls.ambiguous.size();
    }
  }
  for (size_t si = 0; si < std::size(sample_sizes); ++si) {
    fig10.AddRow({Table::Int(static_cast<long long>(sample_sizes[si])),
                  Table::Int(static_cast<long long>(counts[si][0])),
                  Table::Int(static_cast<long long>(counts[si][1])),
                  Table::Int(static_cast<long long>(counts[si][2]))});
  }
  if (ctx.verbose) {
    std::cout << "Figure 10: ambiguous patterns vs sample size "
                 "(min_match = 0.30, 1 - delta = 0.9999)\n";
    fig10.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig10_sample_size", RunFig10);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
