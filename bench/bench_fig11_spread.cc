// Figure 11: effect of the restricted spread R (Claim 4.2).
//  (a) the average spread R = min_i match[d_i] of a candidate pattern,
//      by number of non-eternal symbols, for several noise levels
//      (paper: R tightens with pattern length and with noise);
//  (b) the number of ambiguous patterns with the restricted R over the
//      number with the default R = 1 (paper: < 20% for long patterns —
//      a five-fold pruning power).
//
// The background uses a Zipf-like symbol distribution: spread pruning
// derives its power from symbol-frequency skew (with a perfectly uniform
// alphabet every symbol has the same match and R barely varies).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/symbol_scan.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

InMemorySequenceDatabase MakeSkewedStandard(Rng* rng,
                                            std::vector<Pattern>* planted) {
  const size_t m = 20;
  GeneratorConfig config;
  config.num_sequences = 600;
  config.min_length = 40;
  config.max_length = 60;
  config.alphabet_size = m;
  config.symbol_weights.resize(m);
  for (size_t i = 0; i < m; ++i) {
    config.symbol_weights[i] = 1.0 / static_cast<double>(i + 1);  // Zipf
  }
  InMemorySequenceDatabase db = GenerateDatabase(config, rng);
  for (size_t k = 2; k <= 10; ++k) {
    Pattern p = RandomPattern(k, 0, m, rng);
    PlantIntoDatabase(p, 0.4, &db, rng);
    planted->push_back(std::move(p));
  }
  return db;
}

void RunFig11(const bench::BenchContext& ctx) {
  const size_t m = 20;
  Rng rng(707);
  std::vector<Pattern> planted;
  InMemorySequenceDatabase standard = MakeSkewedStandard(&rng, &planted);

  Table fig11a({"non-eternal symbols", "avg R (a=0.1)", "avg R (a=0.2)",
                "avg R (a=0.3)"});
  Table fig11b({"alpha", "ambiguous (restricted R)", "ambiguous (R = 1)",
                "ratio"});

  const double alphas[] = {0.1, 0.2, 0.3};
  std::vector<std::vector<double>> avg_r(11,
                                         std::vector<double>(3, 0.0));
  std::vector<std::vector<size_t>> level_counts(11,
                                                std::vector<size_t>(3, 0));

  for (size_t ai = 0; ai < std::size(alphas); ++ai) {
    double alpha = alphas[ai];
    Rng noise_rng(808);
    InMemorySequenceDatabase test =
        ApplyUniformNoise(standard, alpha, m, &noise_rng);
    CompatibilityMatrix c = UniformNoiseMatrix(m, alpha);

    // Per-symbol matches come from the Phase-1 scan; the candidate
    // population at level k is represented by random k-patterns drawn
    // from the background symbol distribution (candidates combine
    // whatever symbols are frequent, including the rare tail).
    Rng scan_rng(1);
    SymbolScanResult phase1 = ScanSymbolsAndSample(test, c, 0, &scan_rng);
    std::vector<double> weights(m);
    for (size_t i = 0; i < m; ++i) {
      weights[i] = 1.0 / static_cast<double>(i + 1);
    }
    DiscreteSampler background(weights);
    Rng cand_rng(2);
    constexpr size_t kDraws = 4000;
    for (size_t k = 1; k <= 10; ++k) {
      for (size_t d = 0; d < kDraws; ++d) {
        double r = 1.0;
        for (size_t i = 0; i < k; ++i) {
          SymbolId s = static_cast<SymbolId>(background.Sample(cand_rng));
          r = std::min(r, phase1.symbol_match[static_cast<size_t>(s)]);
        }
        avg_r[k][ai] += r;
        ++level_counts[k][ai];
      }
    }

    // Part (b): ambiguous counts with and without the restricted spread.
    MinerOptions sample_options;
    sample_options.space.max_span = 10;
    sample_options.max_level = 10;
    sample_options.min_threshold = 0.25;
    sample_options.delta = 1e-4;
    sample_options.sample_size = 300;
    Rng sample_rng(5);
    SymbolScanResult sampled =
        ScanSymbolsAndSample(test, c, sample_options.sample_size,
                             &sample_rng);
    SampleClassification cls = ClassifySamplePatterns(
        sampled.sample.records(), c, sampled.symbol_match, Metric::kMatch,
        sample_options);
    double ratio =
        cls.ambiguous_with_unit_spread == 0
            ? 1.0
            : static_cast<double>(cls.ambiguous.size()) /
                  static_cast<double>(cls.ambiguous_with_unit_spread);
    fig11b.AddRow(
        {Table::Num(alpha, 1),
         Table::Int(static_cast<long long>(cls.ambiguous.size())),
         Table::Int(static_cast<long long>(cls.ambiguous_with_unit_spread)),
         Table::Num(ratio, 3)});
  }

  for (size_t k = 1; k <= 10; ++k) {
    if (level_counts[k][0] + level_counts[k][1] + level_counts[k][2] == 0) {
      continue;
    }
    std::vector<std::string> row = {Table::Int(static_cast<long long>(k))};
    for (size_t ai = 0; ai < 3; ++ai) {
      row.push_back(level_counts[k][ai] == 0
                        ? "-"
                        : Table::Num(avg_r[k][ai] /
                                         static_cast<double>(
                                             level_counts[k][ai]),
                                     4));
    }
    fig11a.AddRow(std::move(row));
  }

  if (ctx.verbose) {
    std::cout << "Figure 11(a): average restricted spread R by pattern "
                 "length (Zipf background)\n";
    fig11a.Print(std::cout);
    std::cout << "\nFigure 11(b): ambiguous patterns, restricted R vs "
                 "R = 1 (sample = 300, 1 - delta = 0.9999)\n";
    fig11b.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig11_spread", RunFig11);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
