#include "harness.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <utility>

#include "nmine/core/match_kernel.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/stats/robust.h"

namespace nmine {
namespace bench {
namespace {

struct Scenario {
  std::string name;
  ScenarioFn fn;
  ScenarioOptions options;
};

std::vector<Scenario>& Registry() {
  static std::vector<Scenario> scenarios;
  return scenarios;
}

// Build identity injected by bench/CMakeLists.txt at configure time; the
// fallbacks keep non-CMake builds (and unit tests) compiling.
#ifndef NMINE_GIT_SHA
#define NMINE_GIT_SHA "unknown"
#endif
#ifndef NMINE_BUILD_FLAGS
#define NMINE_BUILD_FLAGS "unknown"
#endif
#ifndef NMINE_BUILD_TYPE
#define NMINE_BUILD_TYPE "unknown"
#endif

std::string CpuModel() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      size_t begin = line.find_first_not_of(" \t", colon + 1);
      if (begin == std::string::npos) break;
      return line.substr(begin);
    }
  }
  return "unknown";
}

void AppendField(const char* key, const std::string& value, bool last,
                 std::string* out) {
  out->append("    ");
  obs::AppendJsonString(key, out);
  out->append(": ");
  obs::AppendJsonString(value, out);
  out->append(last ? "\n" : ",\n");
}

double NowSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--reps=N] [--warmup=N] [--threads=N]\n"
               "          [--simd=auto|avx2|neon|scalar]\n"
               "          [--filter=SUBSTRING] [--smoke] [--list]\n"
               "          [--out-dir=DIR]\n",
               argv0);
}

}  // namespace

void RegisterScenario(const std::string& name, ScenarioFn fn,
                      ScenarioOptions options) {
  Registry().push_back({name, std::move(fn), options});
}

RepStats ComputeRepStats(std::vector<double> seconds) {
  RepStats stats;
  stats.seconds = std::move(seconds);
  if (stats.seconds.empty()) return stats;
  stats.median = Median(stats.seconds);
  stats.mad = MedianAbsDeviation(stats.seconds);
  stats.min = *std::min_element(stats.seconds.begin(), stats.seconds.end());
  stats.max = *std::max_element(stats.seconds.begin(), stats.seconds.end());
  double sum = 0.0;
  for (double s : stats.seconds) sum += s;
  stats.mean = sum / static_cast<double>(stats.seconds.size());
  return stats;
}

BuildFingerprint CurrentFingerprint() {
  BuildFingerprint fp;
  fp.git_sha = NMINE_GIT_SHA;
#if defined(__clang__)
  fp.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  fp.compiler = std::string("gcc ") + __VERSION__;
#else
  fp.compiler = "unknown";
#endif
  fp.flags = NMINE_BUILD_FLAGS;
  fp.build_type = NMINE_BUILD_TYPE;
  fp.cpu = CpuModel();
  // Kernel + feature identity: two snapshots taken with different match
  // kernels (or on hosts with different vector units) are flagged by the
  // fingerprint before their timings are compared.
  fp.simd_kernel = ActiveMatchKernelName();
  CpuFeatures features = DetectCpuFeatures();
  std::string feats;
  if (features.avx2) feats += "avx2";
  if (features.neon) feats += feats.empty() ? "neon" : "+neon";
  fp.cpu_features = feats.empty() ? "none" : feats;
  return fp;
}

int64_t PeakRssKb() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss);  // kilobytes on Linux
}

std::string Iso8601UtcNow() {
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

std::string BenchJsonV2(const std::string& name, const RepStats& stats) {
  std::string out = "{\n  \"schema_version\": 2,\n  \"bench\": ";
  obs::AppendJsonString(name, &out);
  out.append(",\n  \"timestamp\": ");
  obs::AppendJsonString(Iso8601UtcNow(), &out);
  // "seconds" keeps its schema-v1 meaning: one representative wall-clock
  // number for the whole bench (now the median over reps).
  out.append(",\n  \"seconds\": ");
  obs::AppendJsonNumber(stats.median, &out);
  out.append(",\n  \"stats\": {\n    \"reps\": ");
  obs::AppendJsonNumber(static_cast<double>(stats.seconds.size()), &out);
  out.append(",\n    \"seconds\": [");
  for (size_t i = 0; i < stats.seconds.size(); ++i) {
    if (i > 0) out.append(", ");
    obs::AppendJsonNumber(stats.seconds[i], &out);
  }
  out.append("],\n    \"median\": ");
  obs::AppendJsonNumber(stats.median, &out);
  out.append(",\n    \"mad\": ");
  obs::AppendJsonNumber(stats.mad, &out);
  out.append(",\n    \"min\": ");
  obs::AppendJsonNumber(stats.min, &out);
  out.append(",\n    \"max\": ");
  obs::AppendJsonNumber(stats.max, &out);
  out.append(",\n    \"mean\": ");
  obs::AppendJsonNumber(stats.mean, &out);
  out.append("\n  },\n  \"peak_rss_kb\": ");
  obs::AppendJsonNumber(static_cast<double>(PeakRssKb()), &out);
  out.append(",\n  \"fingerprint\": {\n");
  BuildFingerprint fp = CurrentFingerprint();
  AppendField("git_sha", fp.git_sha, false, &out);
  AppendField("compiler", fp.compiler, false, &out);
  AppendField("flags", fp.flags, false, &out);
  AppendField("build_type", fp.build_type, false, &out);
  AppendField("cpu", fp.cpu, false, &out);
  AppendField("simd_kernel", fp.simd_kernel, false, &out);
  AppendField("cpu_features", fp.cpu_features, true, &out);
  out.append("  },\n  \"metrics\": ");
  out.append(obs::MetricsRegistry::Global().SnapshotJson());
  out.append(",\n  \"profile\": ");
  out.append(obs::Profiler::Global().SnapshotJson());
  out.append("}\n");
  return out;
}

std::string ResolveOutDir(const std::string& out_dir_flag) {
  if (!out_dir_flag.empty()) return out_dir_flag;
  const char* env = std::getenv("NMINE_BENCH_OUT_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return ".";
}

bool WriteBenchJsonV2(const std::string& name, const RepStats& stats,
                      const std::string& out_dir) {
  std::string path = out_dir + "/BENCH_" + name + ".json";
  std::string doc = BenchJsonV2(name, stats);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open() || !(file << doc)) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("[bench snapshot written to %s]\n", path.c_str());
  return true;
}

int BenchMain(int argc, char** argv, HarnessDefaults defaults) {
  int reps = defaults.reps;
  int warmup = defaults.warmup;
  long long threads = 1;
  std::string simd_flag = "auto";
  std::string filter;
  std::string out_dir_flag;
  bool smoke_only = false;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string key = arg;
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    if (key == "--reps") {
      reps = std::atoi(value.c_str());
    } else if (key == "--warmup") {
      warmup = std::atoi(value.c_str());
    } else if (key == "--threads") {
      threads = std::atoll(value.c_str());
    } else if (key == "--simd") {
      simd_flag = value;
    } else if (key == "--filter") {
      filter = value;
    } else if (key == "--out-dir") {
      out_dir_flag = value;
    } else if (key == "--smoke") {
      smoke_only = true;
    } else if (key == "--list") {
      list_only = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  if (warmup < 0) warmup = 0;
  if (threads < 0) threads = 1;

  // Install the process-wide match kernel before any scenario runs so the
  // fingerprint and the measured code path agree.
  SimdLevel simd_level;
  std::string simd_error;
  if (!ResolveSimdLevel(simd_flag, DetectCpuFeatures(), &simd_level,
                        &simd_error) ||
      !SetActiveMatchKernel(simd_level, &simd_error)) {
    std::fprintf(stderr, "%s\n", simd_error.c_str());
    return 2;
  }

  std::vector<const Scenario*> selected;
  for (const Scenario& s : Registry()) {
    if (smoke_only && !s.options.smoke) continue;
    if (!filter.empty() && s.name.find(filter) == std::string::npos) continue;
    selected.push_back(&s);
  }
  if (list_only) {
    for (const Scenario* s : selected) {
      std::printf("%s%s\n", s->name.c_str(),
                  s->options.smoke ? " [smoke]" : "");
    }
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no scenario matches the filter\n");
    return 1;
  }

  const std::string out_dir = ResolveOutDir(out_dir_flag);
  obs::Profiler& profiler = obs::Profiler::Global();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  profiler.Enable();

  bool all_written = true;
  for (const Scenario* s : selected) {
    std::printf("== %s (warmup=%d, reps=%d) ==\n", s->name.c_str(), warmup,
                reps);
    bool spoke = false;
    for (int w = 0; w < warmup; ++w) {
      BenchContext ctx;
      ctx.rep = -1;
      ctx.warmup = true;
      ctx.threads = static_cast<size_t>(threads);
      ctx.verbose = !spoke;
      spoke = true;
      s->fn(ctx);
    }
    // Measured reps start from a clean slate so the emitted metrics and
    // profile snapshots cover exactly the timed work.
    metrics.Reset();
    profiler.Reset();
    std::vector<double> seconds;
    seconds.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      BenchContext ctx;
      ctx.rep = r;
      ctx.threads = static_cast<size_t>(threads);
      ctx.verbose = !spoke;
      spoke = true;
      auto start = std::chrono::steady_clock::now();
      s->fn(ctx);
      seconds.push_back(NowSecondsSince(start));
      std::printf("  rep %d: %.4f s\n", r, seconds.back());
    }
    RepStats stats = ComputeRepStats(std::move(seconds));
    std::printf("  median %.4f s  (mad %.4f, min %.4f, max %.4f)\n",
                stats.median, stats.mad, stats.min, stats.max);
    all_written = WriteBenchJsonV2(s->name, stats, out_dir) && all_written;
    // Isolate the next scenario's snapshot.
    metrics.Reset();
    profiler.Reset();
  }
  return all_written ? 0 : 1;
}

}  // namespace bench
}  // namespace nmine
