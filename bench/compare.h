#ifndef NMINE_BENCH_COMPARE_H_
#define NMINE_BENCH_COMPARE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace nmine {
namespace bench {

/// What bench_compare needs from one BENCH_*.json document. Schema v1
/// files (no "stats" object) load with median = "seconds" and mad = 0.
struct SnapshotStats {
  std::string name;
  int schema_version = 1;  // absent field means v1
  double median = 0.0;
  double mad = 0.0;
  std::string git_sha;  // "" when the file carries no fingerprint
};

/// Highest BENCH snapshot schema this tool understands.
inline constexpr int kMaxSupportedSnapshotSchema = 2;

/// Parses one snapshot file; false (with *error set) on IO/parse trouble.
bool LoadSnapshot(const std::string& path, SnapshotStats* out,
                  std::string* error);

/// One bench present in both snapshots.
struct CompareEntry {
  std::string name;
  double old_median = 0.0;
  double new_median = 0.0;
  double old_mad = 0.0;
  double new_mad = 0.0;
  double delta_pct = 0.0;  // (new - old) / old * 100, 0 when old == 0
  /// Slower beyond noise: new > old * (1 + threshold) AND the absolute
  /// delta exceeds 3x the larger of the two MADs.
  bool regression = false;
  /// Faster by the same margin (informational only).
  bool improvement = false;
};

/// The regression rule, exposed for tests. `threshold` is fractional
/// (0.15 = 15%).
CompareEntry CompareStats(const SnapshotStats& old_stats,
                          const SnapshotStats& new_stats, double threshold);

struct CompareReport {
  std::vector<CompareEntry> entries;
  std::vector<std::string> only_in_old;  // bench names missing from new
  std::vector<std::string> only_in_new;  // bench names with no baseline
  /// Per-scenario failures: a new result with no baseline to diff
  /// against, or a pair whose snapshots could not be loaded or carry an
  /// unsupported schema. Any entry here means the comparison is
  /// incomplete and must fail, independent of has_regression.
  std::vector<std::string> errors;
  bool has_regression = false;

  bool ok() const { return !has_regression && errors.empty(); }
};

/// Compares two snapshot files, or two directories of BENCH_*.json files
/// matched by file name. Returns false (with *error set) only when
/// nothing could be compared at all; per-scenario trouble (unreadable
/// file, schema mismatch, missing baseline) lands in report->errors so
/// the remaining scenarios still get diffed.
bool CompareFilesOrDirs(const std::string& old_path,
                        const std::string& new_path, double threshold,
                        CompareReport* report, std::string* error);

/// Human-readable table of the report.
void PrintReport(const CompareReport& report, std::ostream& os);

/// GitHub-flavored markdown delta table (for CI job summaries): one row
/// per bench plus a failure list when the report is not clean.
void PrintMarkdownSummary(const CompareReport& report, double threshold,
                          std::ostream& os);

inline constexpr double kDefaultRegressionThreshold = 0.15;

}  // namespace bench
}  // namespace nmine

#endif  // NMINE_BENCH_COMPARE_H_
