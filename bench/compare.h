#ifndef NMINE_BENCH_COMPARE_H_
#define NMINE_BENCH_COMPARE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace nmine {
namespace bench {

/// What bench_compare needs from one BENCH_*.json document. Schema v1
/// files (no "stats" object) load with median = "seconds" and mad = 0.
struct SnapshotStats {
  std::string name;
  double median = 0.0;
  double mad = 0.0;
  std::string git_sha;  // "" when the file carries no fingerprint
};

/// Parses one snapshot file; false (with *error set) on IO/parse trouble.
bool LoadSnapshot(const std::string& path, SnapshotStats* out,
                  std::string* error);

/// One bench present in both snapshots.
struct CompareEntry {
  std::string name;
  double old_median = 0.0;
  double new_median = 0.0;
  double old_mad = 0.0;
  double new_mad = 0.0;
  double delta_pct = 0.0;  // (new - old) / old * 100, 0 when old == 0
  /// Slower beyond noise: new > old * (1 + threshold) AND the absolute
  /// delta exceeds 3x the larger of the two MADs.
  bool regression = false;
  /// Faster by the same margin (informational only).
  bool improvement = false;
};

/// The regression rule, exposed for tests. `threshold` is fractional
/// (0.15 = 15%).
CompareEntry CompareStats(const SnapshotStats& old_stats,
                          const SnapshotStats& new_stats, double threshold);

struct CompareReport {
  std::vector<CompareEntry> entries;
  std::vector<std::string> only_in_old;  // bench names missing from new
  std::vector<std::string> only_in_new;
  bool has_regression = false;
};

/// Compares two snapshot files, or two directories of BENCH_*.json files
/// matched by file name. Returns false (with *error set) when nothing
/// could be compared.
bool CompareFilesOrDirs(const std::string& old_path,
                        const std::string& new_path, double threshold,
                        CompareReport* report, std::string* error);

/// Human-readable table of the report.
void PrintReport(const CompareReport& report, std::ostream& os);

inline constexpr double kDefaultRegressionThreshold = 0.15;

}  // namespace bench
}  // namespace nmine

#endif  // NMINE_BENCH_COMPARE_H_
