// Figure 9: number of candidate patterns at each level of the lattice,
// support model vs match model, on a noisy database with long planted
// patterns. Paper: the match model produces more candidates per level and
// its counts diminish much more slowly with the level.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/calibration.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig09(const bench::BenchContext& ctx) {
  const double alpha = 0.3;
  const double tau = 0.012;
  const size_t kMaxLevel = 20;
  const size_t m = 20;

  // Long planted patterns so the lattice stays populated deep down.
  Rng rng(303);
  GeneratorConfig config;
  config.num_sequences = 150;
  config.min_length = 45;
  config.max_length = 60;
  config.alphabet_size = m;
  InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
  for (int i = 0; i < 3; ++i) {
    PlantIntoDatabase(RandomPattern(kMaxLevel, 0, m, &rng), 0.5, &standard,
                      &rng);
  }
  Rng noise_rng(404);
  InMemorySequenceDatabase test =
      ApplyUniformNoise(standard, alpha, m, &noise_rng);
  CompatibilityMatrix c = UniformNoiseMatrix(m, alpha);

  MinerOptions options;
  options.min_threshold = tau;
  options.space.max_span = kMaxLevel;
  options.max_level = kMaxLevel;
  options.max_candidates_per_level = 250000;

  LevelwiseMiner support_miner(Metric::kSupport, options);
  MiningResult support =
      support_miner.Mine(test, CompatibilityMatrix::Identity(m));

  LevelwiseMiner match_miner(Metric::kMatch, options);
  MatchCalibration calibration(c);
  MiningResult match = match_miner.MineWithThreshold(
      test, c,
      [&calibration, tau](const Pattern& p) {
        return calibration.ThresholdFor(p, tau);
      });

  Table fig9({"level", "support candidates", "match candidates"});
  for (size_t level = 1; level <= kMaxLevel; ++level) {
    long long s = 0;
    long long mm = 0;
    for (const LevelStats& st : support.level_stats) {
      if (st.level == level) s = static_cast<long long>(st.num_candidates);
    }
    for (const LevelStats& st : match.level_stats) {
      if (st.level == level) mm = static_cast<long long>(st.num_candidates);
    }
    if (s == 0 && mm == 0) break;
    fig9.AddRow({Table::Int(static_cast<long long>(level)), Table::Int(s),
                 Table::Int(mm)});
  }
  if (ctx.verbose) {
    std::printf("Figure 9: candidate patterns per level (alpha = %.1f, "
                "min threshold = %.3f)\n", alpha, tau);
    fig9.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig09_candidates", RunFig09);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
