#ifndef NMINE_BENCH_BENCH_UTIL_H_
#define NMINE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/pattern.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/eval/calibration.h"
#include "nmine/eval/metrics.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/miner_options.h"
#include "nmine/stats/random.h"

namespace nmine {
namespace benchutil {

/// The Section-5 robustness workload shared by the Figure-7/8/BLOSUM
/// benches: a 20-symbol background with contiguous patterns of every
/// length k in [2, 8] planted at three support levels (0.4, 0.2, 0.1), so
/// that quality can be evaluated per pattern length and near-threshold
/// behaviour is exercised.
struct RobustnessWorkload {
  InMemorySequenceDatabase standard;
  std::vector<Pattern> planted;
};

inline constexpr double kRobustnessThreshold = 0.05;
inline constexpr size_t kRobustnessMaxLevel = 8;
inline constexpr size_t kRobustnessAlphabet = 20;

RobustnessWorkload MakeRobustnessStandard(uint64_t seed);

/// Plants `p` into each sequence of `db` independently with probability
/// `prob` at a uniform offset (sequences shorter than `p` are skipped).
void PlantIntoDatabase(const Pattern& p, double prob,
                       InMemorySequenceDatabase* db, Rng* rng);

/// Shared miner options for the robustness experiments (contiguous
/// patterns, level cap kRobustnessMaxLevel).
MinerOptions RobustnessOptions();

/// The reference result R: the support model on the noise-free standard
/// database (identical to the match model there — Section 3, obs. 3).
MiningResult MineReference(const InMemorySequenceDatabase& standard);

/// The support model on a test database, raw threshold (the baseline has
/// no knowledge of the noise).
MiningResult MineSupportModel(const InMemorySequenceDatabase& test);

/// The match model on a test database with the raw (paper-literal) common
/// threshold.
MiningResult MineMatchModelRaw(const InMemorySequenceDatabase& test,
                               const CompatibilityMatrix& c);

/// The match model with deflation-calibrated per-pattern thresholds
/// (eval/calibration.h) — the configuration that reproduces the paper's
/// Figure-7 shapes; see EXPERIMENTS.md. kExpectedDeflation is the
/// unbiased detector but is only feasible while its threshold stays above
/// the background partial-credit floor (alpha <= ~0.3 for the uniform
/// channel); kDiagonalSurvival is safe at any noise level.
MiningResult MineMatchModelCalibrated(const InMemorySequenceDatabase& test,
                                      const CompatibilityMatrix& c,
                                      CalibrationMode mode);

/// Renders q as "acc/comp" percentages.
std::string QualityCell(const ModelQuality& q);

/// Writes BENCH_<name>.json for a single timed run: wall-clock seconds
/// plus the global metrics/profiler snapshots, so the perf trajectory is
/// machine-readable next to the human table. Emits the harness's
/// schema-v2 document (single-rep stats, ISO-8601 UTC timestamp, build
/// fingerprint) into $NMINE_BENCH_OUT_DIR when set, else the working
/// directory. Prints a one-line note (or a warning on IO failure).
/// Harness-run scenarios need not call this — BenchMain writes the same
/// document with full repetition stats.
void WriteBenchJson(const std::string& name, double seconds);

}  // namespace benchutil
}  // namespace nmine

#endif  // NMINE_BENCH_BENCH_UTIL_H_
