#include "bench_util.h"

#include <cstdio>

#include "harness.h"
#include "nmine/eval/calibration.h"
#include "nmine/gen/sequence_generator.h"

namespace nmine {
namespace benchutil {

RobustnessWorkload MakeRobustnessStandard(uint64_t seed) {
  Rng rng(seed);
  GeneratorConfig config;
  config.num_sequences = 400;
  config.min_length = 40;
  config.max_length = 60;
  config.alphabet_size = kRobustnessAlphabet;
  RobustnessWorkload w;
  w.standard = GenerateDatabase(config, &rng);

  const double supports[] = {0.4, 0.2, 0.1};
  for (size_t k = 2; k <= kRobustnessMaxLevel; ++k) {
    for (double s : supports) {
      Pattern p = RandomPattern(k, /*max_gap=*/0, kRobustnessAlphabet, &rng);
      PlantIntoDatabase(p, s, &w.standard, &rng);
      w.planted.push_back(std::move(p));
    }
  }
  return w;
}

void PlantIntoDatabase(const Pattern& p, double prob,
                       InMemorySequenceDatabase* db, Rng* rng) {
  std::vector<SequenceRecord> records = db->records();
  for (SequenceRecord& r : records) {
    if (r.symbols.size() < p.length()) continue;
    if (!rng->Bernoulli(prob)) continue;
    size_t offset = rng->UniformInt(r.symbols.size() - p.length() + 1);
    PlantPattern(p, offset, &r.symbols);
  }
  *db = InMemorySequenceDatabase::FromRecords(std::move(records));
}

MinerOptions RobustnessOptions() {
  MinerOptions o;
  o.min_threshold = kRobustnessThreshold;
  o.space.max_span = kRobustnessMaxLevel;
  o.space.max_gap = 0;
  o.max_level = kRobustnessMaxLevel;
  o.max_candidates_per_level = 200000;
  return o;
}

MiningResult MineReference(const InMemorySequenceDatabase& standard) {
  LevelwiseMiner miner(Metric::kSupport, RobustnessOptions());
  return miner.Mine(standard,
                    CompatibilityMatrix::Identity(kRobustnessAlphabet));
}

MiningResult MineSupportModel(const InMemorySequenceDatabase& test) {
  LevelwiseMiner miner(Metric::kSupport, RobustnessOptions());
  return miner.Mine(test, CompatibilityMatrix::Identity(kRobustnessAlphabet));
}

MiningResult MineMatchModelRaw(const InMemorySequenceDatabase& test,
                               const CompatibilityMatrix& c) {
  LevelwiseMiner miner(Metric::kMatch, RobustnessOptions());
  return miner.Mine(test, c);
}

MiningResult MineMatchModelCalibrated(const InMemorySequenceDatabase& test,
                                      const CompatibilityMatrix& c,
                                      CalibrationMode mode) {
  LevelwiseMiner miner(Metric::kMatch, RobustnessOptions());
  MatchCalibration calibration(c, mode);
  const double tau = kRobustnessThreshold;
  return miner.MineWithThreshold(
      test, c, [&calibration, tau](const Pattern& p) {
        return calibration.ThresholdFor(p, tau);
      });
}

std::string QualityCell(const ModelQuality& q) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%5.1f%% / %5.1f%%", q.accuracy * 100.0,
                q.completeness * 100.0);
  return buf;
}

void WriteBenchJson(const std::string& name, double seconds) {
  bench::WriteBenchJsonV2(name, bench::ComputeRepStats({seconds}),
                          bench::ResolveOutDir(""));
}

}  // namespace benchutil
}  // namespace nmine
