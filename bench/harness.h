#ifndef NMINE_BENCH_HARNESS_H_
#define NMINE_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace nmine {
namespace bench {

/// Per-execution context handed to a scenario body.
struct BenchContext {
  /// 0-based index of the measured repetition (-1 during warmup).
  int rep = 0;
  /// True while the harness is warming up (the execution is not timed
  /// into the stats).
  bool warmup = false;
  /// True exactly once per scenario (the first execution, warmup or not):
  /// gate human-readable tables and printf output on this so repeated
  /// repetitions stay quiet.
  bool verbose = false;
  /// Worker threads requested via --threads (default 1; 0 = one per
  /// hardware thread). Scenarios that mine should forward this to
  /// MinerOptions::num_threads; fixed-thread scaling scenarios (e.g.
  /// bench_threads) may ignore it.
  size_t threads = 1;
};

using ScenarioFn = std::function<void(const BenchContext&)>;

struct ScenarioOptions {
  /// Part of the fast subset run by `--smoke` (the CI perf gate).
  bool smoke = false;
};

/// Registers a scenario under `name`; the harness emits one
/// BENCH_<name>.json per scenario it runs. Call before BenchMain (file
/// scope via ScenarioRegistrar, or at the top of main).
void RegisterScenario(const std::string& name, ScenarioFn fn,
                      ScenarioOptions options = {});

/// File-scope registration helper:
///   NMINE_BENCH_SCENARIO("micro.varint_roundtrip", RunVarint, {.smoke=true});
struct ScenarioRegistrar {
  ScenarioRegistrar(const char* name, ScenarioFn fn,
                    ScenarioOptions options = {}) {
    RegisterScenario(name, std::move(fn), options);
  }
};

/// Harness defaults a binary can override for its workload size (figure
/// benches run whole experiments and default to one unwarmed rep; the
/// microbenches default to warmup + several reps). Command-line flags
/// always win.
struct HarnessDefaults {
  int reps = 3;
  int warmup = 1;
};

/// Runs the registered scenarios and writes one schema-v2 BENCH JSON per
/// scenario. Flags:
///   --reps=N      measured repetitions per scenario
///   --warmup=N    untimed warmup executions per scenario
///   --threads=N   worker threads handed to scenarios via
///                 BenchContext::threads (default 1; 0 = hardware)
///   --simd=LEVEL  match kernel for M(P,s): auto|avx2|neon|scalar
///                 (default auto; the active kernel is stamped into every
///                 snapshot's fingerprint as "simd_kernel")
///   --filter=SUB  only scenarios whose name contains SUB
///   --smoke       only scenarios registered with smoke=true
///   --list        print scenario names and exit
///   --out-dir=DIR directory for BENCH_<name>.json (default: the
///                 NMINE_BENCH_OUT_DIR environment variable, else CWD)
/// Returns the process exit code.
int BenchMain(int argc, char** argv, HarnessDefaults defaults = {});

/// Robust summary of the measured repetition timings.
struct RepStats {
  std::vector<double> seconds;  // per measured rep, run order
  double median = 0.0;
  double mad = 0.0;  // median absolute deviation
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

RepStats ComputeRepStats(std::vector<double> seconds);

/// Machine + build identity stamped into every snapshot so two BENCH
/// files can be judged comparable before their numbers are.
struct BuildFingerprint {
  std::string git_sha;
  std::string compiler;
  std::string flags;
  std::string build_type;
  std::string cpu;  // "model name" from /proc/cpuinfo, "unknown" elsewhere
  std::string simd_kernel;   // active match kernel ("scalar", "avx2", ...)
  std::string cpu_features;  // detected vector features ("avx2", "none", ...)
};

BuildFingerprint CurrentFingerprint();

/// Peak resident set size of this process in kilobytes (getrusage), or 0
/// where unavailable.
int64_t PeakRssKb();

/// Current wall-clock time as ISO-8601 UTC ("2026-08-05T12:34:56Z").
std::string Iso8601UtcNow();

/// Renders the schema-v2 BENCH document. The top-level "seconds" field
/// keeps its v1 meaning (one representative wall-clock number — now the
/// median) so old consumers keep working; v2 adds "schema_version",
/// "stats", "peak_rss_kb", "fingerprint", and the profiler "profile"
/// snapshot next to the v1 "metrics" snapshot.
std::string BenchJsonV2(const std::string& name, const RepStats& stats);

/// Resolves the output directory: `out_dir_flag` if non-empty, else the
/// NMINE_BENCH_OUT_DIR environment variable, else "." .
std::string ResolveOutDir(const std::string& out_dir_flag);

/// Writes BenchJsonV2 to <out_dir>/BENCH_<name>.json; returns false (and
/// warns on stderr) on IO failure.
bool WriteBenchJsonV2(const std::string& name, const RepStats& stats,
                      const std::string& out_dir);

}  // namespace bench
}  // namespace nmine

#endif  // NMINE_BENCH_HARNESS_H_
