// Thread-scaling bench: the Figure-14 workload (deep border, long planted
// patterns) mined by border collapsing at a fixed threshold with 1, 2, 4,
// and 8 worker threads. The parallel scan engine is bit-identical to the
// serial one, so the only thing that may change between scenarios is the
// wall clock; each scenario cross-checks its border against the serial
// run and warns loudly on any divergence.
//
// Interpreting the numbers: speedup = median(threads.fig14_t1) /
// median(threads.fig14_tN). On a single-core machine (like the committed
// baseline environment) the t2/t4/t8 scenarios measure scheduling
// overhead, not speedup — expect ~1x there and read multi-core results
// only from multi-core runs.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

struct Workload {
  InMemorySequenceDatabase test;
  CompatibilityMatrix c = CompatibilityMatrix::Identity(1);
};

/// Same construction as bench_fig14_performance.cc (same seeds), so the
/// scaling numbers are measured on exactly the Figure-14 input.
Workload MakeFig14Workload() {
  const size_t m = 20;
  const double alpha = 0.1;
  Rng rng(1404);
  GeneratorConfig config;
  config.num_sequences = 800;
  config.min_length = 50;
  config.max_length = 70;
  config.alphabet_size = m;
  InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
  for (int i = 0; i < 3; ++i) {
    PlantIntoDatabase(RandomPattern(12, 0, m, &rng), 0.55, &standard, &rng);
  }
  Rng noise_rng(1405);
  Workload w;
  w.test = ApplyUniformNoise(standard, alpha, m, &noise_rng);
  w.c = UniformNoiseMatrix(m, alpha);
  return w;
}

MinerOptions Fig14Options(size_t num_threads) {
  MinerOptions options;
  options.min_threshold = 0.25;
  options.space.max_span = 14;
  options.max_level = 14;
  options.sample_size = 400;
  options.delta = 0.01;
  options.seed = 21;
  options.num_threads = num_threads;
  return options;
}

void RunWithThreads(const bench::BenchContext& ctx, const Workload& w,
                    size_t num_threads) {
  BorderCollapseMiner miner(Metric::kMatch, Fig14Options(num_threads));
  MiningResult result = miner.Mine(w.test, w.c);

  if (num_threads != 1) {
    // Determinism cross-check: sharded counting must not change the mined
    // border. Serial reference mined once, cached across reps.
    static const std::vector<Pattern> serial_border = [&w] {
      BorderCollapseMiner serial(Metric::kMatch, Fig14Options(1));
      return serial.Mine(w.test, w.c).border.ToSortedVector();
    }();
    if (result.border.ToSortedVector() != serial_border) {
      std::printf(
          "WARNING: border at %zu threads differs from the serial border\n",
          num_threads);
    }
  }
  if (ctx.verbose) {
    std::printf("threads=%zu: %zu frequent, border %zu, %lld scans\n",
                num_threads, result.frequent.size(), result.border.size(),
                static_cast<long long>(result.scans));
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Shared across scenarios and reps: the workload is input, not work.
  static const Workload w = MakeFig14Workload();
  for (size_t t : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    bench::RegisterScenario(
        "threads.fig14_t" + std::to_string(t),
        [t](const bench::BenchContext& ctx) { RunWithThreads(ctx, w, t); },
        {.smoke = true});
  }
  return bench::BenchMain(argc, argv, {.reps = 3, .warmup = 1});
}
