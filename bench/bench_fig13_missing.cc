// Figure 13: distribution of the true matches of the patterns MISSED by
// the probabilistic algorithm, relative to the threshold. Paper: over 90%
// of missed patterns lie within 5% above min_match, and none beyond 15% —
// the exponential tail the Chernoff bound predicts (Section 4).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/stats/histogram.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig13(const bench::BenchContext& ctx) {
  const size_t m = 20;
  const double alpha = 0.2;
  // Threshold and plantings chosen so that many patterns' true matches sit
  // just above the threshold — the only patterns the Chernoff bound can
  // plausibly miss (Section 4's analysis).
  const double tau = 0.12;
  // Small samples and a permissive delta provoke enough misses to draw a
  // distribution; 40 repetitions with independent seeds are aggregated.
  const size_t kReps = 80;

  Histogram relative_excess(0.0, 0.25, 5);  // 5% bins up to 25%
  size_t total_missed = 0;
  size_t total_truth = 0;

  for (size_t rep = 0; rep < kReps; ++rep) {
    Rng rng(1000 + rep);
    GeneratorConfig config;
    config.num_sequences = 600;
    config.min_length = 40;
    config.max_length = 60;
    config.alphabet_size = m;
    InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
    // s * g^k with g(0.2) = 0.642 lands slightly above tau = 0.12.
    const struct {
      size_t k;
      double s;
    } plantings[] = {{2, 0.28}, {2, 0.30}, {2, 0.32}, {2, 0.34}, {2, 0.36},
                     {3, 0.43}, {3, 0.46}, {3, 0.50}, {3, 0.52}, {3, 0.55},
                     {4, 0.70}, {4, 0.74}, {4, 0.78}, {4, 0.81}, {4, 0.84}};
    for (const auto& pl : plantings) {
      PlantIntoDatabase(RandomPattern(pl.k, 0, m, &rng), pl.s, &standard,
                        &rng);
    }
    Rng noise_rng(2000 + rep);
    InMemorySequenceDatabase test =
        ApplyUniformNoise(standard, alpha, m, &noise_rng);
    CompatibilityMatrix c = UniformNoiseMatrix(m, alpha);

    MinerOptions options;
    options.min_threshold = tau;
    options.space.max_span = 5;
    options.max_level = 5;
    LevelwiseMiner oracle(Metric::kMatch, options);
    MiningResult truth = oracle.Mine(test, c);

    options.delta = 0.6;        // permissive: more misclassification
    options.sample_size = 40;   // small sample: noisy estimates
    options.seed = 3000 + rep;
    BorderCollapseMiner miner(Metric::kMatch, options);
    test.ResetScanCount();
    MiningResult probabilistic = miner.Mine(test, c);

    total_truth += truth.frequent.size();
    for (const Pattern& p : truth.frequent) {
      if (probabilistic.frequent.Contains(p)) continue;
      ++total_missed;
      double true_match = truth.values[p];
      relative_excess.Add((true_match - tau) / tau);
    }
  }

  Table fig13({"true match above threshold", "fraction of missed patterns"});
  for (size_t b = 0; b < relative_excess.num_bins(); ++b) {
    char label[64];
    std::snprintf(label, sizeof(label), "%2.0f%% - %2.0f%%",
                  relative_excess.BinLow(b) * 100.0,
                  relative_excess.BinHigh(b) * 100.0);
    fig13.AddRow({label, Table::Num(relative_excess.Fraction(b), 3)});
  }
  if (ctx.verbose) {
    std::cout << "Figure 13: where the missed patterns' true matches lie "
                 "(aggregated over " << kReps << " runs)\n";
    fig13.Print(std::cout);
    std::printf(
        "\nmissed %zu of %zu frequent patterns (%.4f%%); within 5%% of the "
        "threshold: %.1f%%\n",
        total_missed, total_truth,
        total_truth == 0
            ? 0.0
            : 100.0 * static_cast<double>(total_missed) /
                  static_cast<double>(total_truth),
        100.0 * relative_excess.CumulativeFraction(0.049));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig13_missing", RunFig13);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
