// Figure 7: robustness of the match model vs the support model.
//
//  (a)/(b): accuracy and completeness of both models as the noise level
//           alpha grows (paper: match stays >95%, support collapses).
//  (c)/(d): accuracy and completeness at alpha = 0.1 by the number of
//           non-eternal symbols (paper: support degrades with length,
//           match stays flat).
//
// Both the calibrated match model (which reproduces the paper's shapes;
// see EXPERIMENTS.md for why calibration is required) and the raw
// equal-threshold protocol are reported.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig07(const bench::BenchContext& ctx) {
  RobustnessWorkload w = MakeRobustnessStandard(/*seed=*/101);
  MiningResult reference = MineReference(w.standard);
  if (ctx.verbose) {
    std::printf("Reference |R| = %zu patterns (support model, noise-free)\n\n",
                reference.frequent.size());
  }

  const double alphas[] = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6};

  // The unbiased expected-deflation calibration is only feasible while
  // its threshold stays above the background partial-credit floor.
  const double kMaxAlphaForExpectedDeflation = 0.3;
  Table fig7ab({"alpha", "support acc/comp", "match(g-cal) acc/comp",
                "match(surv-cal) acc/comp", "match(raw) acc/comp"});
  MiningResult match_cal_01;  // kept for Figure 7(c)/(d)
  MiningResult support_01;

  for (double alpha : alphas) {
    Rng noise_rng(777);
    InMemorySequenceDatabase test =
        alpha > 0.0
            ? ApplyUniformNoise(w.standard, alpha, kRobustnessAlphabet,
                                &noise_rng)
            : w.standard;
    CompatibilityMatrix c =
        alpha > 0.0 ? UniformNoiseMatrix(kRobustnessAlphabet, alpha)
                    : CompatibilityMatrix::Identity(kRobustnessAlphabet);

    MiningResult support = MineSupportModel(test);
    MiningResult match_surv =
        MineMatchModelCalibrated(test, c, CalibrationMode::kDiagonalSurvival);
    MiningResult match_raw = MineMatchModelRaw(test, c);
    std::string g_cell = "(infeasible)";
    MiningResult match_g;
    if (alpha <= kMaxAlphaForExpectedDeflation) {
      match_g = MineMatchModelCalibrated(
          test, c, CalibrationMode::kExpectedDeflation);
      g_cell = QualityCell(
          CompareResultSets(match_g.frequent, reference.frequent));
    }

    fig7ab.AddRow(
        {Table::Num(alpha, 1),
         QualityCell(CompareResultSets(support.frequent, reference.frequent)),
         g_cell,
         QualityCell(
             CompareResultSets(match_surv.frequent, reference.frequent)),
         QualityCell(
             CompareResultSets(match_raw.frequent, reference.frequent))});

    if (alpha == 0.1) {
      match_cal_01 = std::move(match_g);
      support_01 = std::move(support);
    }
  }
  if (ctx.verbose) {
    std::cout << "Figure 7(a)/(b): quality vs degree of noise alpha\n";
    fig7ab.Print(std::cout);
  }

  Table fig7cd({"non-eternal symbols", "support acc/comp",
                "match(g-cal) acc/comp"});
  for (size_t k = 1; k <= kRobustnessMaxLevel; ++k) {
    PatternSet ref_k = FilterByLevel(reference.frequent, k);
    if (ref_k.empty()) continue;
    PatternSet sup_k = FilterByLevel(support_01.frequent, k);
    PatternSet mat_k = FilterByLevel(match_cal_01.frequent, k);
    fig7cd.AddRow({Table::Int(static_cast<long long>(k)),
                   QualityCell(CompareResultSets(sup_k, ref_k)),
                   QualityCell(CompareResultSets(mat_k, ref_k))});
  }
  if (ctx.verbose) {
    std::cout << "\nFigure 7(c)/(d): quality vs pattern length at alpha=0.1\n";
    fig7cd.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig07_robustness", RunFig07);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
