// Figure 8: robustness of the match model to errors in the compatibility
// matrix itself. The test database is fixed at alpha = 0.2; the matrix
// handed to the miner has its diagonal perturbed by +-e% (columns
// re-normalized), e in {0..20}%. Paper: moderate degradation, ~88%/85%
// at 10% error.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig08(const bench::BenchContext& ctx) {
  const double alpha = 0.2;
  RobustnessWorkload w = MakeRobustnessStandard(/*seed=*/101);
  MiningResult reference = MineReference(w.standard);

  Rng noise_rng(777);
  InMemorySequenceDatabase test =
      ApplyUniformNoise(w.standard, alpha, kRobustnessAlphabet, &noise_rng);
  CompatibilityMatrix true_matrix =
      UniformNoiseMatrix(kRobustnessAlphabet, alpha);

  Table fig8({"matrix error e%", "match acc/comp"});
  for (double e : {0.0, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20}) {
    Rng perturb_rng(42);
    CompatibilityMatrix noisy_matrix =
        PerturbDiagonal(true_matrix, e, &perturb_rng);
    MiningResult match = MineMatchModelCalibrated(test, noisy_matrix,
                                 CalibrationMode::kExpectedDeflation);
    fig8.AddRow(
        {Table::Num(e * 100.0, 0),
         QualityCell(CompareResultSets(match.frequent, reference.frequent))});
  }
  if (ctx.verbose) {
    std::cout << "Figure 8: match-model quality vs error in the "
                 "compatibility matrix (alpha = 0.2)\n";
    fig8.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig08_matrix_error", RunFig08);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
