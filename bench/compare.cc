#include "compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <ostream>

#include "nmine/eval/table.h"
#include "nmine/obs/json_parse.h"

namespace nmine {
namespace bench {
namespace {

namespace fs = std::filesystem;

bool IsBenchFile(const fs::path& path) {
  const std::string name = path.filename().string();
  return name.rfind("BENCH_", 0) == 0 && path.extension() == ".json";
}

/// BENCH_*.json files in `dir`, keyed by file name for matching.
std::map<std::string, std::string> ListBenchFiles(const std::string& dir) {
  std::map<std::string, std::string> out;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && IsBenchFile(entry.path())) {
      out[entry.path().filename().string()] = entry.path().string();
    }
  }
  return out;
}

}  // namespace

bool LoadSnapshot(const std::string& path, SnapshotStats* out,
                  std::string* error) {
  std::optional<obs::JsonValue> doc = obs::ParseJsonFile(path);
  if (!doc.has_value() || !doc->is_object()) {
    *error = "cannot read or parse " + path;
    return false;
  }
  out->schema_version =
      static_cast<int>(doc->GetNumber("schema_version", 1.0));
  if (out->schema_version < 1 ||
      out->schema_version > kMaxSupportedSnapshotSchema) {
    *error = path + ": unsupported schema_version " +
             std::to_string(out->schema_version) + " (this tool reads <= " +
             std::to_string(kMaxSupportedSnapshotSchema) +
             "; rebuild the baseline or update bench_compare)";
    return false;
  }
  const obs::JsonValue* bench = doc->Get("bench");
  out->name = bench != nullptr && bench->is_string() ? bench->string_value
                                                     : path;
  const obs::JsonValue* stats = doc->Get("stats");
  if (stats != nullptr && stats->is_object()) {
    out->median = stats->GetNumber("median", doc->GetNumber("seconds", 0.0));
    out->mad = stats->GetNumber("mad", 0.0);
  } else {
    // Schema v1: a single wall-clock number and no spread estimate.
    out->median = doc->GetNumber("seconds", 0.0);
    out->mad = 0.0;
  }
  const obs::JsonValue* fp = doc->Get("fingerprint");
  if (fp != nullptr) {
    const obs::JsonValue* sha = fp->Get("git_sha");
    if (sha != nullptr && sha->is_string()) out->git_sha = sha->string_value;
  }
  return true;
}

CompareEntry CompareStats(const SnapshotStats& old_stats,
                          const SnapshotStats& new_stats, double threshold) {
  CompareEntry e;
  e.name = old_stats.name;
  e.old_median = old_stats.median;
  e.new_median = new_stats.median;
  e.old_mad = old_stats.mad;
  e.new_mad = new_stats.mad;
  if (e.old_median > 0.0) {
    e.delta_pct = (e.new_median - e.old_median) / e.old_median * 100.0;
  }
  const double noise = 3.0 * std::max(e.old_mad, e.new_mad);
  const double delta = e.new_median - e.old_median;
  e.regression =
      e.new_median > e.old_median * (1.0 + threshold) && delta > noise;
  e.improvement =
      e.new_median < e.old_median * (1.0 - threshold) && -delta > noise;
  return e;
}

bool CompareFilesOrDirs(const std::string& old_path,
                        const std::string& new_path, double threshold,
                        CompareReport* report, std::string* error) {
  std::vector<std::pair<std::string, std::string>> pairs;  // old, new
  std::error_code ec;
  const bool old_is_dir = fs::is_directory(old_path, ec);
  const bool new_is_dir = fs::is_directory(new_path, ec);
  if (old_is_dir != new_is_dir) {
    *error = "cannot compare a directory against a file";
    return false;
  }
  if (old_is_dir) {
    std::map<std::string, std::string> old_files = ListBenchFiles(old_path);
    std::map<std::string, std::string> new_files = ListBenchFiles(new_path);
    for (const auto& [file, path] : old_files) {
      auto it = new_files.find(file);
      if (it == new_files.end()) {
        report->only_in_old.push_back(file);
      } else {
        pairs.emplace_back(path, it->second);
      }
    }
    for (const auto& [file, path] : new_files) {
      if (old_files.find(file) == old_files.end()) {
        report->only_in_new.push_back(file);
        // A result with no baseline is a hole in regression coverage,
        // not a skippable scenario: fail it so the baseline gets
        // (re)generated instead of silently rotting.
        report->errors.push_back(
            file + ": no baseline in " + old_path +
            " (regenerate baselines to cover this bench)");
      }
    }
    if (pairs.empty() && report->only_in_new.empty()) {
      *error = "no matching BENCH_*.json files between " + old_path +
               " and " + new_path;
      return false;
    }
  } else {
    pairs.emplace_back(old_path, new_path);
  }

  for (const auto& [old_file, new_file] : pairs) {
    SnapshotStats old_stats;
    SnapshotStats new_stats;
    std::string pair_error;
    if (!LoadSnapshot(old_file, &old_stats, &pair_error) ||
        !LoadSnapshot(new_file, &new_stats, &pair_error)) {
      report->errors.push_back(pair_error);
      continue;
    }
    if (old_stats.schema_version != new_stats.schema_version) {
      // Cross-schema medians are not comparable like-for-like (v1 has no
      // spread estimate, so the noise gate degenerates); flag the pair
      // instead of producing a verdict nobody should trust.
      report->errors.push_back(
          old_stats.name + ": schema mismatch (baseline v" +
          std::to_string(old_stats.schema_version) + " vs new v" +
          std::to_string(new_stats.schema_version) +
          "; regenerate the baseline with the current harness)");
      continue;
    }
    CompareEntry e = CompareStats(old_stats, new_stats, threshold);
    report->has_regression = report->has_regression || e.regression;
    report->entries.push_back(std::move(e));
  }
  if (report->entries.empty() && report->errors.empty()) {
    *error = "nothing comparable between " + old_path + " and " + new_path;
    return false;
  }
  std::sort(report->entries.begin(), report->entries.end(),
            [](const CompareEntry& a, const CompareEntry& b) {
              return a.name < b.name;
            });
  return true;
}

void PrintReport(const CompareReport& report, std::ostream& os) {
  Table table({"bench", "old median s", "new median s", "delta", "verdict"});
  for (const CompareEntry& e : report.entries) {
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.1f%%", e.delta_pct);
    const char* verdict = e.regression      ? "REGRESSION"
                          : e.improvement   ? "improvement"
                                            : "ok";
    table.AddRow({e.name, Table::Num(e.old_median, 4),
                  Table::Num(e.new_median, 4), delta, verdict});
  }
  table.Print(os);
  for (const std::string& name : report.only_in_old) {
    os << "missing from new snapshot: " << name << "\n";
  }
  for (const std::string& error : report.errors) {
    os << "FAIL: " << error << "\n";
  }
}

void PrintMarkdownSummary(const CompareReport& report, double threshold,
                          std::ostream& os) {
  os << "### Bench comparison ("
     << (report.ok() ? "clean" : "FAILED") << ", threshold "
     << static_cast<int>(threshold * 100.0) << "% + 3×MAD)\n\n";
  if (!report.entries.empty()) {
    os << "| bench | old median (s) | new median (s) | delta | verdict |\n"
       << "|---|---:|---:|---:|---|\n";
    for (const CompareEntry& e : report.entries) {
      char old_s[32];
      char new_s[32];
      char delta[32];
      std::snprintf(old_s, sizeof(old_s), "%.4f", e.old_median);
      std::snprintf(new_s, sizeof(new_s), "%.4f", e.new_median);
      std::snprintf(delta, sizeof(delta), "%+.1f%%", e.delta_pct);
      const char* verdict = e.regression    ? "❌ regression"
                            : e.improvement ? "✅ improvement"
                                            : "ok";
      os << "| " << e.name << " | " << old_s << " | " << new_s << " | "
         << delta << " | " << verdict << " |\n";
    }
    os << "\n";
  }
  for (const std::string& error : report.errors) {
    os << "- ❌ " << error << "\n";
  }
  for (const std::string& name : report.only_in_old) {
    os << "- ⚠️ missing from new snapshot: " << name << "\n";
  }
}

}  // namespace bench
}  // namespace nmine
