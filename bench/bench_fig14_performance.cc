// Figure 14: performance of the three algorithms across match thresholds.
//  (a) CPU time;
//  (b) number of full database scans (paper: border collapsing needs 2-4
//      scans; Max-Miner and the sampling-based level-wise search need 5
//      to 10+);
//  (c) how much of the work happens against the full database: patterns
//      verified per scan (the level-wise finalization's weakness — "the
//      match value usually changes very little from level to level").
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/depth_first_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/toivonen_miner.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig14(const bench::BenchContext& ctx) {
  const size_t m = 20;
  const double alpha = 0.1;

  Rng rng(1404);
  GeneratorConfig config;
  config.num_sequences = 800;
  config.min_length = 50;
  config.max_length = 70;
  config.alphabet_size = m;
  InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
  // Long planted patterns make the frequent border deep: the regime where
  // level-wise verification pays one scan per level.
  for (int i = 0; i < 3; ++i) {
    PlantIntoDatabase(RandomPattern(12, 0, m, &rng), 0.55, &standard, &rng);
  }
  Rng noise_rng(1405);
  InMemorySequenceDatabase test =
      ApplyUniformNoise(standard, alpha, m, &noise_rng);
  CompatibilityMatrix c = UniformNoiseMatrix(m, alpha);

  Table fig14({"min_match", "algorithm", "CPU s", "scans",
               "patterns counted vs full DB"});
  for (double tau : {0.35, 0.30, 0.25, 0.20}) {
    MinerOptions options;
    options.min_threshold = tau;
    options.space.max_span = 14;
    options.max_level = 14;
    options.sample_size = 400;
    options.delta = 0.01;
    options.seed = 21;
    options.num_threads = ctx.threads;

    struct Entry {
      const char* name;
      MiningResult result;
    };
    std::vector<Entry> entries;

    {
      MaxMiner miner(Metric::kMatch, options);
      test.ResetScanCount();
      entries.push_back({"Max-Miner", miner.Mine(test, c)});
    }
    {
      ToivonenMiner miner(Metric::kMatch, options);
      test.ResetScanCount();
      entries.push_back({"sampling level-wise", miner.Mine(test, c)});
    }
    {
      BorderCollapseMiner miner(Metric::kMatch, options);
      test.ResetScanCount();
      entries.push_back({"border collapsing", miner.Mine(test, c)});
    }
    {
      // Memory-resident reference point (the paper excludes it from its
      // comparison because it assumes the data does not fit in memory).
      DepthFirstMiner miner(Metric::kMatch, options);
      test.ResetScanCount();
      entries.push_back({"depth-first (in-mem)", miner.Mine(test, c)});
    }

    // Sanity: the algorithms must agree on the border.
    if (entries[0].result.border.ToSortedVector() !=
            entries[2].result.border.ToSortedVector() ||
        entries[1].result.frequent.ToSortedVector() !=
            entries[2].result.frequent.ToSortedVector()) {
      std::printf("WARNING: algorithms disagree at tau = %.2f\n", tau);
    }

    for (Entry& e : entries) {
      // Patterns counted against the full database: everything except the
      // in-memory sample work. For the deterministic Max-Miner that is
      // every candidate; for the sampling algorithms it is the verified
      // ambiguous patterns.
      long long counted;
      if (std::string(e.name) == "Max-Miner" ||
          std::string(e.name) == "depth-first (in-mem)") {
        counted = static_cast<long long>(e.result.TotalCandidates());
      } else {
        counted = static_cast<long long>(e.result.ambiguous_after_sample);
      }
      fig14.AddRow({Table::Num(tau, 2), e.name,
                    Table::Num(e.result.seconds, 3),
                    Table::Int(e.result.scans), Table::Int(counted)});
    }
  }
  if (ctx.verbose) {
    std::cout << "Figure 14: CPU time, scans, and full-database counting "
                 "work of the algorithms\n";
    fig14.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig14_performance", RunFig14);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
