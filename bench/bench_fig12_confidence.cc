// Figure 12: effect of the confidence 1 - delta.
//  (a) number of ambiguous patterns after the sample phase (paper: drops
//      sharply as confidence decreases, because epsilon shrinks);
//  (b) error rate of the final result (paper: far below delta — the
//      Chernoff bound is very conservative; ~0.01 even at delta = 0.1).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig12(const bench::BenchContext& ctx) {
  const size_t m = 20;
  const double alpha = 0.2;
  // Threshold and planting are tuned so that a sizable population of
  // patterns has its (deflated) match hovering near the threshold — the
  // regime in which the Chernoff band actually matters.
  const double tau = 0.12;

  Rng rng(909);
  GeneratorConfig config;
  config.num_sequences = 1500;
  config.min_length = 40;
  config.max_length = 60;
  config.alphabet_size = m;
  InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
  // s * g^k with g(0.2) = 0.642 lands near tau = 0.12 for these pairs.
  const struct {
    size_t k;
    double s;
  } plantings[] = {{2, 0.30}, {3, 0.45}, {4, 0.70}, {5, 0.95}};
  for (const auto& pl : plantings) {
    for (int copy = 0; copy < 3; ++copy) {
      PlantIntoDatabase(RandomPattern(pl.k, 0, m, &rng), pl.s, &standard,
                        &rng);
    }
  }
  Rng noise_rng(910);
  InMemorySequenceDatabase test =
      ApplyUniformNoise(standard, alpha, m, &noise_rng);
  CompatibilityMatrix c = UniformNoiseMatrix(m, alpha);

  // Exact result as the ground truth for the error rate.
  MinerOptions exact_options;
  exact_options.min_threshold = tau;
  exact_options.space.max_span = 8;
  exact_options.max_level = 8;
  LevelwiseMiner oracle(Metric::kMatch, exact_options);
  MiningResult truth = oracle.Mine(test, c);

  Table fig12({"1 - delta", "ambiguous patterns", "error rate"});
  for (double delta : {0.1, 0.01, 1e-3, 1e-4, 1e-5}) {
    MinerOptions options = exact_options;
    options.delta = delta;
    options.sample_size = 300;
    options.seed = 13;
    BorderCollapseMiner miner(Metric::kMatch, options);
    test.ResetScanCount();
    MiningResult r = miner.Mine(test, c);
    double err = ErrorRate(r.frequent, truth.frequent);
    fig12.AddRow({Table::Num(1.0 - delta, 5),
                  Table::Int(static_cast<long long>(
                      r.ambiguous_after_sample)),
                  Table::Num(err, 5)});
  }
  if (ctx.verbose) {
    std::cout << "Figure 12: ambiguous patterns and error rate vs "
                 "confidence (sample = 300, min_match = 0.12)\n";
    fig12.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig12_confidence", RunFig12);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
