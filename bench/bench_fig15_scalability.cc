// Figure 15: scalability with respect to the number of distinct symbols m.
// Synthetic databases with sparse compatibility matrices (each symbol
// compatible with ~10% of the others, Section 5.7). Paper: the number of
// scans decreases with m (fewer qualifying patterns), while the response
// time first drops and then grows again as the m x m matrix dominates.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "harness.h"
#include "nmine/eval/table.h"
#include "nmine/eval/timer.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/mining/border_collapse_miner.h"

using namespace nmine;
using namespace nmine::benchutil;

namespace {

void RunFig15(const bench::BenchContext& ctx) {
  Table fig15({"m", "scans", "response time s", "frequent patterns"});

  for (size_t m : {20u, 50u, 100u, 500u, 1000u, 2000u, 5000u}) {
    Rng rng(1500 + m);
    GeneratorConfig config;
    config.num_sequences = 300;
    config.min_length = 100;
    config.max_length = 140;
    config.alphabet_size = m;
    InMemorySequenceDatabase standard = GenerateDatabase(config, &rng);
    for (size_t k = 2; k <= 6; ++k) {
      PlantIntoDatabase(RandomPattern(k, 0, m, &rng), 0.4, &standard, &rng);
    }

    // Sparse matrix: ~10% compatibility, dominant diagonal; the matching
    // emission channel substitutes within the compatible set.
    CompatibilityMatrix c = SparseRandomMatrix(m, 0.1, 0.85, &rng);
    // Perturb the data with a simple channel: keep a symbol with p=0.85,
    // otherwise replace it with a random symbol compatible with it.
    InMemorySequenceDatabase test;
    standard.Scan([&](const SequenceRecord& r) {
      SequenceRecord noisy;
      noisy.id = r.id;
      noisy.symbols.reserve(r.symbols.size());
      for (SymbolId s : r.symbols) {
        if (rng.Bernoulli(0.85)) {
          noisy.symbols.push_back(s);
        } else {
          const auto& row = c.RowNonZeros(s);
          noisy.symbols.push_back(
              row[rng.UniformInt(row.size())].symbol);
        }
      }
      test.Add(std::move(noisy));
    });

    MinerOptions options;
    options.min_threshold = 0.25;
    options.space.max_span = 8;
    options.max_level = 8;
    options.sample_size = 100;  // modest sample: a real ambiguous region
    options.delta = 0.01;
    // A constrained counter budget makes the number of scans reflect the
    // size of the ambiguous region (the paper's Figure 15(a) effect).
    options.max_counters_per_scan = 150;
    options.seed = 5;

    BorderCollapseMiner miner(Metric::kMatch, options);
    test.ResetScanCount();
    WallTimer run;
    MiningResult r = miner.Mine(test, c);
    fig15.AddRow({Table::Int(static_cast<long long>(m)),
                  Table::Int(r.scans), Table::Num(run.Seconds(), 3),
                  Table::Int(static_cast<long long>(r.frequent.size()))});
  }
  if (ctx.verbose) {
    std::cout << "Figure 15: scans and response time vs number of distinct "
                 "symbols (sparse matrices, ~10% compatibility)\n";
    fig15.Print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::RegisterScenario("fig15_scalability", RunFig15);
  return bench::BenchMain(argc, argv, {.reps = 1, .warmup = 0});
}
