// Microbenchmarks for the hot paths: sliding-window match computation,
// trie-batched counting vs naive counting, the Phase-1 symbol scan, and
// the varint codec. Each scenario runs a fixed amount of work per
// repetition, so the harness's median/MAD over reps is directly
// comparable across builds; the smoke subset is the CI perf gate.
//
// The match loop (micro.sequence_match) deliberately exercises code with
// NO profiler instrumentation inside it: SequenceMatch carries no scopes,
// so this scenario doubles as the guard that leaving NMINE_PROFILE_SCOPE
// in the library costs nothing on the innermost loops (the disabled-state
// cost of a scope is one relaxed atomic load, and there are none here).
#include <cstdint>
#include <string>
#include <vector>

#include "harness.h"
#include "nmine/core/match.h"
#include "nmine/core/match_kernel.h"
#include "nmine/db/format.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/lattice/halfway.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/mining/symbol_scan.h"

namespace nmine {
namespace {

/// Keeps `value` observable so the compiler cannot elide the computation.
template <typename T>
inline void KeepAlive(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

CompatibilityMatrix Matrix20() { return UniformNoiseMatrix(20, 0.2); }

InMemorySequenceDatabase MakeDb(size_t n, size_t len) {
  Rng rng(1);
  GeneratorConfig config;
  config.num_sequences = n;
  config.min_length = len;
  config.max_length = len;
  config.alphabet_size = 20;
  return GenerateDatabase(config, &rng);
}

std::vector<Pattern> MakePatterns(size_t count, size_t k) {
  Rng rng(2);
  std::vector<Pattern> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(RandomPattern(k, 0, 20, &rng));
  }
  return out;
}

/// Level-(k+1) style batch: right-extensions of shared frequent prefixes,
/// the shape on which the counting trie earns its keep.
std::vector<Pattern> MakeSharedPrefixPatterns(size_t count) {
  Rng rng(7);
  std::vector<Pattern> patterns;
  const size_t groups = count / 20;
  for (size_t g = 0; g < groups; ++g) {
    Pattern prefix = RandomPattern(4, 0, 20, &rng);
    for (SymbolId sym = 0; sym < 20; ++sym) {
      std::vector<SymbolId> body = prefix.body();
      body.push_back(sym);
      patterns.push_back(Pattern(std::move(body)));
    }
  }
  return patterns;
}

void RunSequenceMatch(const bench::BenchContext&) {
  static const CompatibilityMatrix c = Matrix20();
  static const Sequence seq = [] {
    Rng rng(3);
    return RandomSequence(1000, 20, &rng);
  }();
  static const Pattern p = [] {
    Rng rng(4);
    return RandomPattern(8, 0, 20, &rng);
  }();
  for (int i = 0; i < 2000; ++i) {
    double match = SequenceMatch(c, p, seq);
    KeepAlive(match);
  }
}

void RunTrieBatchCount(const bench::BenchContext&) {
  static const CompatibilityMatrix c = Matrix20();
  static const InMemorySequenceDatabase db = MakeDb(50, 100);
  static const std::vector<Pattern> patterns = MakePatterns(256, 4);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> out = CountMatchesInRecords(db.records(), c,
                                                    patterns);
    KeepAlive(out);
  }
}

void RunNaiveBatchCount(const bench::BenchContext&) {
  static const CompatibilityMatrix c = Matrix20();
  static const InMemorySequenceDatabase db = MakeDb(50, 100);
  static const std::vector<Pattern> patterns = MakePatterns(256, 4);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> out(patterns.size(), 0.0);
    for (size_t j = 0; j < patterns.size(); ++j) {
      for (const SequenceRecord& r : db.records()) {
        out[j] += SequenceMatch(c, patterns[j], r.symbols);
      }
    }
    KeepAlive(out);
  }
}

void RunTrieSharedPrefixes(const bench::BenchContext&) {
  static const CompatibilityMatrix c = Matrix20();
  static const InMemorySequenceDatabase db = MakeDb(50, 100);
  static const std::vector<Pattern> patterns = MakeSharedPrefixPatterns(320);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> out = CountMatchesInRecords(db.records(), c,
                                                    patterns);
    KeepAlive(out);
  }
}

void RunNaiveSharedPrefixes(const bench::BenchContext&) {
  static const CompatibilityMatrix c = Matrix20();
  static const InMemorySequenceDatabase db = MakeDb(50, 100);
  static const std::vector<Pattern> patterns = MakeSharedPrefixPatterns(320);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> out(patterns.size(), 0.0);
    for (size_t j = 0; j < patterns.size(); ++j) {
      for (const SequenceRecord& r : db.records()) {
        out[j] += SequenceMatch(c, patterns[j], r.symbols);
      }
    }
    KeepAlive(out);
  }
}

/// Runs `fn` under the widest kernel this build and host support, then
/// restores the harness-selected kernel. The *_simd scenarios force the
/// vector kernel regardless of --simd, so one run always produces the
/// (baseline-kernel, vector-kernel) pair the speedup gate compares; on
/// hosts without a vector unit they degenerate to the scalar scenario and
/// the pair shows ~1x.
void RunWithWidestKernel(const bench::BenchContext& ctx,
                         void (*fn)(const bench::BenchContext&)) {
  SimdLevel previous = ActiveMatchKernel().level();
  SimdLevel widest = SimdLevel::kScalar;
  ResolveSimdLevel("auto", DetectCpuFeatures(), &widest, nullptr);
  SetActiveMatchKernel(widest, nullptr);
  fn(ctx);
  SetActiveMatchKernel(previous, nullptr);
}

void RunSequenceMatchSimd(const bench::BenchContext& ctx) {
  RunWithWidestKernel(ctx, RunSequenceMatch);
}

void RunTrieBatchCountSimd(const bench::BenchContext& ctx) {
  RunWithWidestKernel(ctx, RunTrieBatchCount);
}

void RunSymbolScan(const bench::BenchContext&) {
  static const CompatibilityMatrix c = Matrix20();
  static const InMemorySequenceDatabase db = MakeDb(1000, 200);
  for (int i = 0; i < 5; ++i) {
    Rng rng(4);
    SymbolScanResult result = ScanSymbolsAndSample(db, c, 0, &rng);
    KeepAlive(result);
  }
}

void RunVarintRoundTrip(const bench::BenchContext&) {
  static const std::vector<uint64_t> values = [] {
    std::vector<uint64_t> out;
    Rng rng(5);
    for (int i = 0; i < 1024; ++i) {
      out.push_back(rng.UniformInt(1u << 20));
    }
    return out;
  }();
  for (int i = 0; i < 2000; ++i) {
    std::string buf;
    for (uint64_t v : values) {
      dbformat::PutVarint64(v, &buf);
    }
    const char* pos = buf.data();
    const char* end = buf.data() + buf.size();
    uint64_t out = 0;
    uint64_t sum = 0;
    while (pos < end && dbformat::GetVarint64(&pos, end, &out)) {
      sum += out;
    }
    KeepAlive(sum);
  }
}

void RunHalfwayGeneration(const bench::BenchContext&) {
  static const Pattern p2 = [] {
    Rng rng(6);
    return RandomPattern(10, 0, 20, &rng);
  }();
  static const Pattern p1({p2[0]});
  for (int i = 0; i < 2000; ++i) {
    std::vector<Pattern> halfway =
        HalfwayPatterns(p1, p2, /*contiguous=*/false, 4096);
    KeepAlive(halfway);
  }
}

}  // namespace
}  // namespace nmine

int main(int argc, char** argv) {
  using nmine::bench::RegisterScenario;
  RegisterScenario("micro.sequence_match", nmine::RunSequenceMatch,
                   {.smoke = true});
  RegisterScenario("micro.sequence_match_simd", nmine::RunSequenceMatchSimd,
                   {.smoke = true});
  RegisterScenario("micro.trie_batch_count", nmine::RunTrieBatchCount,
                   {.smoke = true});
  RegisterScenario("micro.trie_batch_count_simd",
                   nmine::RunTrieBatchCountSimd, {.smoke = true});
  RegisterScenario("micro.naive_batch_count", nmine::RunNaiveBatchCount);
  RegisterScenario("micro.trie_shared_prefixes",
                   nmine::RunTrieSharedPrefixes);
  RegisterScenario("micro.naive_shared_prefixes",
                   nmine::RunNaiveSharedPrefixes);
  RegisterScenario("micro.symbol_scan", nmine::RunSymbolScan,
                   {.smoke = true});
  RegisterScenario("micro.varint_roundtrip", nmine::RunVarintRoundTrip,
                   {.smoke = true});
  RegisterScenario("micro.halfway_generation", nmine::RunHalfwayGeneration,
                   {.smoke = true});
  return nmine::bench::BenchMain(argc, argv, {.reps = 5, .warmup = 1});
}
