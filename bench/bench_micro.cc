// Microbenchmarks (google-benchmark) for the hot paths: sliding-window
// match computation, trie-batched counting vs naive counting, the Phase-1
// symbol scan, and the varint codec.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "nmine/core/match.h"
#include "nmine/db/format.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/sequence_generator.h"
#include "nmine/lattice/halfway.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/mining/symbol_scan.h"

namespace nmine {
namespace {

CompatibilityMatrix Matrix20() { return UniformNoiseMatrix(20, 0.2); }

InMemorySequenceDatabase MakeDb(size_t n, size_t len) {
  Rng rng(1);
  GeneratorConfig config;
  config.num_sequences = n;
  config.min_length = len;
  config.max_length = len;
  config.alphabet_size = 20;
  return GenerateDatabase(config, &rng);
}

std::vector<Pattern> MakePatterns(size_t count, size_t k) {
  Rng rng(2);
  std::vector<Pattern> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(RandomPattern(k, 0, 20, &rng));
  }
  return out;
}

void BM_SequenceMatch(benchmark::State& state) {
  CompatibilityMatrix c = Matrix20();
  Rng rng(3);
  Sequence seq = RandomSequence(static_cast<size_t>(state.range(0)), 20,
                                &rng);
  Pattern p = RandomPattern(8, 0, 20, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SequenceMatch(c, p, seq));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(seq.size()));
}
BENCHMARK(BM_SequenceMatch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TrieBatchCount(benchmark::State& state) {
  CompatibilityMatrix c = Matrix20();
  InMemorySequenceDatabase db = MakeDb(50, 100);
  std::vector<Pattern> patterns =
      MakePatterns(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountMatchesInRecords(db.records(), c, patterns));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrieBatchCount)->Arg(16)->Arg(256)->Arg(2048);

// Mining-realistic batch: level-(k+1) candidates are right-extensions of
// shared frequent prefixes, so the trie evaluates each prefix once per
// window. (On unrelated random patterns with a dense matrix the naive
// loop wins — see BM_NaiveBatchCount.)
void BM_TrieBatchCountSharedPrefixes(benchmark::State& state) {
  CompatibilityMatrix c = Matrix20();
  InMemorySequenceDatabase db = MakeDb(50, 100);
  Rng rng(7);
  std::vector<Pattern> patterns;
  const size_t groups = static_cast<size_t>(state.range(0)) / 20;
  for (size_t g = 0; g < groups; ++g) {
    Pattern prefix = RandomPattern(4, 0, 20, &rng);
    for (SymbolId sym = 0; sym < 20; ++sym) {
      std::vector<SymbolId> body = prefix.body();
      body.push_back(sym);
      patterns.push_back(Pattern(std::move(body)));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountMatchesInRecords(db.records(), c, patterns));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(patterns.size()));
}
BENCHMARK(BM_TrieBatchCountSharedPrefixes)->Arg(320)->Arg(2048);

void BM_NaiveBatchCountSharedPrefixes(benchmark::State& state) {
  CompatibilityMatrix c = Matrix20();
  InMemorySequenceDatabase db = MakeDb(50, 100);
  Rng rng(7);
  std::vector<Pattern> patterns;
  const size_t groups = static_cast<size_t>(state.range(0)) / 20;
  for (size_t g = 0; g < groups; ++g) {
    Pattern prefix = RandomPattern(4, 0, 20, &rng);
    for (SymbolId sym = 0; sym < 20; ++sym) {
      std::vector<SymbolId> body = prefix.body();
      body.push_back(sym);
      patterns.push_back(Pattern(std::move(body)));
    }
  }
  for (auto _ : state) {
    std::vector<double> out(patterns.size(), 0.0);
    for (size_t i = 0; i < patterns.size(); ++i) {
      for (const SequenceRecord& r : db.records()) {
        out[i] += SequenceMatch(c, patterns[i], r.symbols);
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(patterns.size()));
}
BENCHMARK(BM_NaiveBatchCountSharedPrefixes)->Arg(320)->Arg(2048);

void BM_NaiveBatchCount(benchmark::State& state) {
  CompatibilityMatrix c = Matrix20();
  InMemorySequenceDatabase db = MakeDb(50, 100);
  std::vector<Pattern> patterns =
      MakePatterns(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    std::vector<double> out(patterns.size(), 0.0);
    for (size_t i = 0; i < patterns.size(); ++i) {
      for (const SequenceRecord& r : db.records()) {
        out[i] += SequenceMatch(c, patterns[i], r.symbols);
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NaiveBatchCount)->Arg(16)->Arg(256)->Arg(2048);

void BM_SymbolScan(benchmark::State& state) {
  CompatibilityMatrix c = Matrix20();
  InMemorySequenceDatabase db =
      MakeDb(static_cast<size_t>(state.range(0)), 200);
  for (auto _ : state) {
    Rng rng(4);
    benchmark::DoNotOptimize(ScanSymbolsAndSample(db, c, 0, &rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TotalSymbols()));
}
BENCHMARK(BM_SymbolScan)->Arg(100)->Arg(1000);

void BM_VarintRoundTrip(benchmark::State& state) {
  std::vector<uint64_t> values;
  Rng rng(5);
  for (int i = 0; i < 1024; ++i) {
    values.push_back(rng.UniformInt(1u << 20));
  }
  for (auto _ : state) {
    std::string buf;
    for (uint64_t v : values) {
      dbformat::PutVarint64(v, &buf);
    }
    const char* pos = buf.data();
    const char* end = buf.data() + buf.size();
    uint64_t out = 0;
    uint64_t sum = 0;
    while (pos < end && dbformat::GetVarint64(&pos, end, &out)) {
      sum += out;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintRoundTrip);

void BM_HalfwayGeneration(benchmark::State& state) {
  Rng rng(6);
  Pattern p2 = RandomPattern(static_cast<size_t>(state.range(0)), 0, 20,
                             &rng);
  Pattern p1({p2[0]});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HalfwayPatterns(p1, p2, /*contiguous=*/false, 4096));
  }
}
BENCHMARK(BM_HalfwayGeneration)->Arg(6)->Arg(10)->Arg(14);

}  // namespace
}  // namespace nmine
