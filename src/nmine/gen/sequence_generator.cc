#include "nmine/gen/sequence_generator.h"

#include <cassert>
#include <optional>

namespace nmine {

Sequence RandomSequence(size_t length, size_t m, Rng* rng) {
  Sequence seq(length);
  for (size_t i = 0; i < length; ++i) {
    seq[i] = static_cast<SymbolId>(rng->UniformInt(m));
  }
  return seq;
}

Sequence WeightedRandomSequence(size_t length, const DiscreteSampler& dist,
                                Rng* rng) {
  Sequence seq(length);
  for (size_t i = 0; i < length; ++i) {
    seq[i] = static_cast<SymbolId>(dist.Sample(*rng));
  }
  return seq;
}

Pattern RandomPattern(size_t num_symbols, size_t max_gap, size_t m,
                      Rng* rng) {
  assert(num_symbols >= 1);
  std::vector<SymbolId> body;
  body.push_back(static_cast<SymbolId>(rng->UniformInt(m)));
  for (size_t i = 1; i < num_symbols; ++i) {
    size_t gap = max_gap == 0 ? 0 : rng->UniformInt(max_gap + 1);
    body.insert(body.end(), gap, kWildcard);
    body.push_back(static_cast<SymbolId>(rng->UniformInt(m)));
  }
  return Pattern(std::move(body));
}

void PlantPattern(const Pattern& p, size_t offset, Sequence* seq) {
  assert(offset + p.length() <= seq->size());
  for (size_t i = 0; i < p.length(); ++i) {
    SymbolId s = p[i];
    if (!IsWildcard(s)) {
      (*seq)[offset + i] = s;
    }
  }
}

InMemorySequenceDatabase GenerateDatabase(const GeneratorConfig& config,
                                          Rng* rng) {
  InMemorySequenceDatabase db;
  std::optional<DiscreteSampler> weighted;
  if (!config.symbol_weights.empty()) {
    assert(config.symbol_weights.size() == config.alphabet_size);
    weighted.emplace(config.symbol_weights);
  }
  for (size_t i = 0; i < config.num_sequences; ++i) {
    size_t length = static_cast<size_t>(rng->UniformRange(
        static_cast<int64_t>(config.min_length),
        static_cast<int64_t>(config.max_length)));
    Sequence seq = weighted.has_value()
                       ? WeightedRandomSequence(length, *weighted, rng)
                       : RandomSequence(length, config.alphabet_size, rng);
    for (const Pattern& p : config.planted) {
      if (p.length() > length) continue;
      if (!rng->Bernoulli(config.plant_probability)) continue;
      size_t offset = rng->UniformInt(length - p.length() + 1);
      PlantPattern(p, offset, &seq);
    }
    db.Add(std::move(seq));
  }
  return db;
}

}  // namespace nmine
