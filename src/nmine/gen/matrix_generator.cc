#include "nmine/gen/matrix_generator.h"

#include <algorithm>

#include "nmine/core/check.h"

namespace nmine {

CompatibilityMatrix UniformNoiseMatrix(size_t m, double alpha) {
  // A one-symbol alphabet has no off-diagonal mass to spread; the identity
  // is the only column-stochastic matrix.
  if (m < 2) return CompatibilityMatrix::Identity(m);
  NMINE_CHECK(alpha >= 0.0 && alpha <= 1.0,
              "noise level alpha must be within [0, 1]");
  CompatibilityMatrix c(m);
  const double off = alpha / static_cast<double>(m - 1);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      c.Set(static_cast<SymbolId>(i), static_cast<SymbolId>(j),
            i == j ? 1.0 - alpha : off);
    }
  }
  return c;
}

CompatibilityMatrix SparseRandomMatrix(size_t m, double compat_fraction,
                                       double diagonal_mass, Rng* rng) {
  if (m < 2) return CompatibilityMatrix::Identity(m);
  NMINE_CHECK(diagonal_mass > 0.0 && diagonal_mass <= 1.0,
              "diagonal_mass must be within (0, 1]");
  CompatibilityMatrix c(m);
  // At most m-1 distinct off-diagonal rows exist per column; clamping keeps
  // the distinct-row selection loop below finite for any compat_fraction.
  const size_t num_compat = std::min<size_t>(
      m - 1,
      std::max<size_t>(
          1, static_cast<size_t>(compat_fraction * static_cast<double>(m))));
  for (size_t j = 0; j < m; ++j) {  // per observed-symbol column
    c.Set(static_cast<SymbolId>(j), static_cast<SymbolId>(j), diagonal_mass);
    double residual = 1.0 - diagonal_mass;
    if (residual <= 0.0) continue;
    // Choose distinct off-diagonal rows and split the residual mass with
    // random proportions.
    std::vector<size_t> rows;
    rows.reserve(num_compat);
    while (rows.size() < num_compat) {
      size_t i = rng->UniformInt(m);
      if (i == j) continue;
      if (std::find(rows.begin(), rows.end(), i) != rows.end()) continue;
      rows.push_back(i);
    }
    std::vector<double> weights(rows.size());
    double total = 0.0;
    for (double& w : weights) {
      w = 0.1 + rng->UniformDouble();
      total += w;
    }
    for (size_t k = 0; k < rows.size(); ++k) {
      c.Set(static_cast<SymbolId>(rows[k]), static_cast<SymbolId>(j),
            residual * weights[k] / total);
    }
  }
  return c;
}

CompatibilityMatrix PerturbDiagonal(const CompatibilityMatrix& c,
                                    double error_fraction, Rng* rng) {
  const size_t m = c.size();
  CompatibilityMatrix out = c;
  for (size_t j = 0; j < m; ++j) {
    SymbolId dj = static_cast<SymbolId>(j);
    double diag = c(dj, dj);
    double off_mass = 1.0 - diag;
    if (off_mass <= 0.0) continue;  // nothing to trade with
    double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;
    double new_diag = diag * (1.0 + sign * error_fraction);
    new_diag = std::clamp(new_diag, 0.0, 1.0);
    double scale = (1.0 - new_diag) / off_mass;
    out.Set(dj, dj, new_diag);
    for (size_t i = 0; i < m; ++i) {
      if (i == j) continue;
      SymbolId di = static_cast<SymbolId>(i);
      out.Set(di, dj, c(di, dj) * scale);
    }
  }
  return out;
}

CompatibilityMatrix PosteriorFromEmission(
    const std::vector<std::vector<double>>& emission_rows,
    const std::vector<double>& priors) {
  const size_t m = emission_rows.size();
  NMINE_CHECK(priors.size() == m,
              "PosteriorFromEmission: priors length must equal the number "
              "of emission rows");
  for (const std::vector<double>& row : emission_rows) {
    NMINE_CHECK(row.size() == m,
                "PosteriorFromEmission: emission matrix must be square");
  }
  CompatibilityMatrix c(m);
  for (size_t j = 0; j < m; ++j) {  // observed
    double denom = 0.0;
    for (size_t i = 0; i < m; ++i) {
      denom += priors[i] * emission_rows[i][j];
    }
    for (size_t i = 0; i < m; ++i) {
      double post = denom > 0.0 ? priors[i] * emission_rows[i][j] / denom
                                : (i == j ? 1.0 : 0.0);
      c.Set(static_cast<SymbolId>(i), static_cast<SymbolId>(j), post);
    }
  }
  return c;
}

}  // namespace nmine
