#ifndef NMINE_GEN_NOISE_MODEL_H_
#define NMINE_GEN_NOISE_MODEL_H_

#include <cstddef>
#include <vector>

#include "nmine/core/sequence.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/stats/random.h"

namespace nmine {

/// The uniform noise channel of Section 5.1: each symbol stays itself with
/// probability 1 - alpha and is substituted by each of the other m - 1
/// symbols with probability alpha / (m - 1). Sequence lengths are
/// preserved.
Sequence ApplyUniformNoise(const Sequence& seq, double alpha, size_t m,
                           Rng* rng);

/// Applies the uniform channel to every sequence of `db`, producing the
/// "test database" counterpart of a "standard database".
InMemorySequenceDatabase ApplyUniformNoise(const InMemorySequenceDatabase& db,
                                           double alpha, size_t m, Rng* rng);

/// A general memoryless substitution channel: emission[i][j] =
/// Prob(observed = d_j | true = d_i). Rows must be probability
/// distributions. Used for the BLOSUM50 mutation experiments.
class EmissionModel {
 public:
  /// Precondition: `rows` is square and row-stochastic.
  explicit EmissionModel(std::vector<std::vector<double>> rows);

  size_t size() const { return samplers_.size(); }

  /// Probability of observing `observed` when the true symbol is `true_sym`.
  double Probability(SymbolId true_sym, SymbolId observed) const {
    return rows_[static_cast<size_t>(true_sym)]
                [static_cast<size_t>(observed)];
  }

  SymbolId Emit(SymbolId true_sym, Rng* rng) const;
  Sequence Apply(const Sequence& seq, Rng* rng) const;
  InMemorySequenceDatabase Apply(const InMemorySequenceDatabase& db,
                                 Rng* rng) const;

  const std::vector<std::vector<double>>& rows() const { return rows_; }

 private:
  std::vector<std::vector<double>> rows_;
  std::vector<DiscreteSampler> samplers_;
};

}  // namespace nmine

#endif  // NMINE_GEN_NOISE_MODEL_H_
