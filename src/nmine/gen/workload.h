#ifndef NMINE_GEN_WORKLOAD_H_
#define NMINE_GEN_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/pattern.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/gen/sequence_generator.h"

namespace nmine {

/// Specification of the Section-5 experimental setup: a "standard
/// database" (noise-free, with patterns planted at a controlled frequency)
/// from which "test databases" are derived by pushing every sequence
/// through a noise channel.
struct WorkloadSpec {
  size_t num_sequences = 600;
  size_t min_length = 60;
  size_t max_length = 120;
  size_t alphabet_size = 20;  // amino acids in the paper

  /// Number of random patterns to plant and their shapes.
  size_t num_planted = 4;
  size_t planted_symbols_min = 6;
  size_t planted_symbols_max = 10;
  size_t planted_max_gap = 0;

  /// Probability that a given sequence carries a given planted pattern.
  double plant_probability = 0.3;

  uint64_t seed = 7;
};

/// A standard/test database pair under the uniform noise channel of
/// Section 5.1, together with the matching compatibility matrix.
struct NoisyWorkload {
  InMemorySequenceDatabase standard;  // noise-free
  InMemorySequenceDatabase test;      // observed (after the channel)
  CompatibilityMatrix matrix;         // C for the channel (posterior)
  std::vector<Pattern> planted;

  NoisyWorkload() : matrix(2) {}
};

/// Builds the standard database for `spec` (deterministic given the seed)
/// and returns the planted patterns through `*planted`.
InMemorySequenceDatabase MakeStandardDatabase(const WorkloadSpec& spec,
                                              std::vector<Pattern>* planted);

/// Builds the full standard/test pair for noise level `alpha`. The same
/// spec and seed always produce the same standard database, so workloads
/// with different alphas share their ground truth.
NoisyWorkload MakeUniformNoiseWorkload(const WorkloadSpec& spec, double alpha);

}  // namespace nmine

#endif  // NMINE_GEN_WORKLOAD_H_
