#ifndef NMINE_GEN_MATRIX_GENERATOR_H_
#define NMINE_GEN_MATRIX_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/stats/random.h"

namespace nmine {

/// The compatibility matrix matching the uniform noise channel of
/// Section 5.1: C(d_i, d_j) = 1 - alpha when i == j and alpha / (m - 1)
/// otherwise. (Under a uniform symbol prior this equals the true posterior
/// of the channel, so columns are stochastic by construction.)
CompatibilityMatrix UniformNoiseMatrix(size_t m, double alpha);

/// The synthetic matrices of Section 5.7: each observed symbol is
/// compatible with itself (with dominant probability `diagonal_mass`) and
/// with ~`compat_fraction` of the other symbols, the residual mass split
/// among those at random. Columns are stochastic by construction.
CompatibilityMatrix SparseRandomMatrix(size_t m, double compat_fraction,
                                       double diagonal_mass, Rng* rng);

/// The matrix-error model of Figure 8: for each symbol d_i the diagonal
/// entry C(d_i, d_i) is varied by `error_fraction` (e.g. 0.10 for 10%),
/// equally likely up or down, and the remaining entries of the same COLUMN
/// are rescaled so the column still sums to 1. Columns whose diagonal is
/// 1 (no off-diagonal mass to trade with) are left unchanged.
CompatibilityMatrix PerturbDiagonal(const CompatibilityMatrix& c,
                                    double error_fraction, Rng* rng);

/// Bayes inversion: turns a row-stochastic emission model
/// P(observed | true) plus a prior over true symbols into the posterior
/// compatibility matrix C(true, observed) = P(true | observed).
/// `priors` must have one weight per symbol (need not be normalized).
CompatibilityMatrix PosteriorFromEmission(
    const std::vector<std::vector<double>>& emission_rows,
    const std::vector<double>& priors);

}  // namespace nmine

#endif  // NMINE_GEN_MATRIX_GENERATOR_H_
