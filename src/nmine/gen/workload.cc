#include "nmine/gen/workload.h"

#include "nmine/gen/matrix_generator.h"
#include "nmine/gen/noise_model.h"

namespace nmine {

InMemorySequenceDatabase MakeStandardDatabase(
    const WorkloadSpec& spec, std::vector<Pattern>* planted) {
  Rng rng(spec.seed);
  GeneratorConfig config;
  config.num_sequences = spec.num_sequences;
  config.min_length = spec.min_length;
  config.max_length = spec.max_length;
  config.alphabet_size = spec.alphabet_size;
  config.plant_probability = spec.plant_probability;
  for (size_t i = 0; i < spec.num_planted; ++i) {
    size_t k = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(spec.planted_symbols_min),
                         static_cast<int64_t>(spec.planted_symbols_max)));
    config.planted.push_back(
        RandomPattern(k, spec.planted_max_gap, spec.alphabet_size, &rng));
  }
  if (planted != nullptr) {
    *planted = config.planted;
  }
  return GenerateDatabase(config, &rng);
}

NoisyWorkload MakeUniformNoiseWorkload(const WorkloadSpec& spec,
                                       double alpha) {
  NoisyWorkload w;
  w.standard = MakeStandardDatabase(spec, &w.planted);
  if (alpha > 0.0) {
    // The noise stream is seeded independently of the generator stream so
    // the standard database is bit-identical across alphas.
    Rng noise_rng(spec.seed ^ 0x9e3779b97f4a7c15ull);
    w.test = ApplyUniformNoise(w.standard, alpha, spec.alphabet_size,
                               &noise_rng);
    w.matrix = UniformNoiseMatrix(spec.alphabet_size, alpha);
  } else {
    w.test = w.standard;
    w.matrix = CompatibilityMatrix::Identity(spec.alphabet_size);
  }
  return w;
}

}  // namespace nmine
