#ifndef NMINE_GEN_SEQUENCE_GENERATOR_H_
#define NMINE_GEN_SEQUENCE_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "nmine/core/pattern.h"
#include "nmine/core/sequence.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/stats/random.h"

namespace nmine {

/// Generates a uniform random sequence of `length` symbols over an
/// alphabet of size m.
Sequence RandomSequence(size_t length, size_t m, Rng* rng);

/// Generates a random sequence with symbol i drawn proportionally to
/// weights[i] (real alphabets are skewed; Zipf-like weights make symbol
/// matches vary, which drives the restricted-spread experiments).
Sequence WeightedRandomSequence(size_t length, const DiscreteSampler& dist,
                                Rng* rng);

/// Generates a random pattern with `num_symbols` non-eternal symbols over
/// an alphabet of size m, inserting gaps of up to `max_gap` eternal symbols
/// between consecutive symbols (0 for contiguous patterns).
Pattern RandomPattern(size_t num_symbols, size_t max_gap, size_t m, Rng* rng);

/// Overwrites `seq` starting at `offset` with the non-eternal symbols of
/// `p` (eternal positions leave the background symbol untouched).
/// Precondition: offset + p.length() <= seq->size().
void PlantPattern(const Pattern& p, size_t offset, Sequence* seq);

/// Configuration of a synthetic "standard database" (the noise-free data
/// of Section 5.1) with patterns planted at a controlled frequency.
struct GeneratorConfig {
  size_t num_sequences = 1000;
  size_t min_length = 50;
  size_t max_length = 100;
  size_t alphabet_size = 20;

  /// Patterns to plant. Each sequence receives pattern i with probability
  /// plant_probability (independently); position is uniform.
  std::vector<Pattern> planted;
  double plant_probability = 0.25;

  /// Optional background symbol weights (size alphabet_size). Empty means
  /// uniform. Need not be normalized.
  std::vector<double> symbol_weights;
};

/// Generates the standard database: uniform background with planted
/// patterns. Sequences too short for a pattern simply skip it.
InMemorySequenceDatabase GenerateDatabase(const GeneratorConfig& config,
                                          Rng* rng);

}  // namespace nmine

#endif  // NMINE_GEN_SEQUENCE_GENERATOR_H_
