#include "nmine/gen/noise_model.h"

#include <cassert>

namespace nmine {

Sequence ApplyUniformNoise(const Sequence& seq, double alpha, size_t m,
                           Rng* rng) {
  assert(m >= 2);
  Sequence out;
  out.reserve(seq.size());
  for (SymbolId s : seq) {
    if (rng->Bernoulli(alpha)) {
      // Substitute with a uniformly chosen *different* symbol.
      SymbolId sub = static_cast<SymbolId>(rng->UniformInt(m - 1));
      if (sub >= s) ++sub;
      out.push_back(sub);
    } else {
      out.push_back(s);
    }
  }
  return out;
}

InMemorySequenceDatabase ApplyUniformNoise(const InMemorySequenceDatabase& db,
                                           double alpha, size_t m, Rng* rng) {
  InMemorySequenceDatabase out;
  for (const SequenceRecord& r : db.records()) {
    SequenceRecord noisy;
    noisy.id = r.id;
    noisy.symbols = ApplyUniformNoise(r.symbols, alpha, m, rng);
    out.Add(std::move(noisy));
  }
  return out;
}

EmissionModel::EmissionModel(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  samplers_.reserve(rows_.size());
  for (const std::vector<double>& row : rows_) {
    assert(row.size() == rows_.size());
    samplers_.emplace_back(row);
  }
}

SymbolId EmissionModel::Emit(SymbolId true_sym, Rng* rng) const {
  return static_cast<SymbolId>(
      samplers_[static_cast<size_t>(true_sym)].Sample(*rng));
}

Sequence EmissionModel::Apply(const Sequence& seq, Rng* rng) const {
  Sequence out;
  out.reserve(seq.size());
  for (SymbolId s : seq) {
    out.push_back(Emit(s, rng));
  }
  return out;
}

InMemorySequenceDatabase EmissionModel::Apply(
    const InMemorySequenceDatabase& db, Rng* rng) const {
  InMemorySequenceDatabase out;
  for (const SequenceRecord& r : db.records()) {
    SequenceRecord noisy;
    noisy.id = r.id;
    noisy.symbols = Apply(r.symbols, rng);
    out.Add(std::move(noisy));
  }
  return out;
}

}  // namespace nmine
