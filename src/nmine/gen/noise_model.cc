#include "nmine/gen/noise_model.h"

#include "nmine/core/check.h"

namespace nmine {

Sequence ApplyUniformNoise(const Sequence& seq, double alpha, size_t m,
                           Rng* rng) {
  // With fewer than two symbols no *different* symbol exists to substitute;
  // the only consistent noise channel is the identity.
  if (m < 2) return seq;
  NMINE_CHECK(alpha >= 0.0 && alpha <= 1.0,
              "noise level alpha must be within [0, 1]");
  Sequence out;
  out.reserve(seq.size());
  for (SymbolId s : seq) {
    if (rng->Bernoulli(alpha)) {
      // Substitute with a uniformly chosen *different* symbol.
      SymbolId sub = static_cast<SymbolId>(rng->UniformInt(m - 1));
      if (sub >= s) ++sub;
      out.push_back(sub);
    } else {
      out.push_back(s);
    }
  }
  return out;
}

InMemorySequenceDatabase ApplyUniformNoise(const InMemorySequenceDatabase& db,
                                           double alpha, size_t m, Rng* rng) {
  InMemorySequenceDatabase out;
  for (const SequenceRecord& r : db.records()) {
    SequenceRecord noisy;
    noisy.id = r.id;
    noisy.symbols = ApplyUniformNoise(r.symbols, alpha, m, rng);
    out.Add(std::move(noisy));
  }
  return out;
}

EmissionModel::EmissionModel(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  samplers_.reserve(rows_.size());
  for (const std::vector<double>& row : rows_) {
    // Emission rows frequently come from config files; a ragged matrix
    // must fail loudly in release builds too.
    NMINE_CHECK(row.size() == rows_.size(),
                "EmissionModel row length differs from the number of rows "
                "(matrix must be square)");
    samplers_.emplace_back(row);
  }
}

SymbolId EmissionModel::Emit(SymbolId true_sym, Rng* rng) const {
  return static_cast<SymbolId>(
      samplers_[static_cast<size_t>(true_sym)].Sample(*rng));
}

Sequence EmissionModel::Apply(const Sequence& seq, Rng* rng) const {
  Sequence out;
  out.reserve(seq.size());
  for (SymbolId s : seq) {
    out.push_back(Emit(s, rng));
  }
  return out;
}

InMemorySequenceDatabase EmissionModel::Apply(
    const InMemorySequenceDatabase& db, Rng* rng) const {
  InMemorySequenceDatabase out;
  for (const SequenceRecord& r : db.records()) {
    SequenceRecord noisy;
    noisy.id = r.id;
    noisy.symbols = Apply(r.symbols, rng);
    out.Add(std::move(noisy));
  }
  return out;
}

}  // namespace nmine
