#include "nmine/bio/blosum.h"

#include <cmath>

namespace nmine {

const std::array<std::array<int, kNumAminoAcids>, kNumAminoAcids>&
Blosum50Scores() {
  // Order: A R N D C Q E G H I L K M F P S T W Y V
  static const std::array<std::array<int, kNumAminoAcids>, kNumAminoAcids>
      kScores = {{
          {{5, -2, -1, -2, -1, -1, -1, 0, -2, -1, -2, -1, -1, -3, -1, 1, 0,
            -3, -2, 0}},
          {{-2, 7, -1, -2, -4, 1, 0, -3, 0, -4, -3, 3, -2, -3, -3, -1, -1,
            -3, -1, -3}},
          {{-1, -1, 7, 2, -2, 0, 0, 0, 1, -3, -4, 0, -2, -4, -2, 1, 0, -4,
            -2, -3}},
          {{-2, -2, 2, 8, -4, 0, 2, -1, -1, -4, -4, -1, -4, -5, -1, 0, -1,
            -5, -3, -4}},
          {{-1, -4, -2, -4, 13, -3, -3, -3, -3, -2, -2, -3, -2, -2, -4, -1,
            -1, -5, -3, -1}},
          {{-1, 1, 0, 0, -3, 7, 2, -2, 1, -3, -2, 2, 0, -4, -1, 0, -1, -1,
            -1, -3}},
          {{-1, 0, 0, 2, -3, 2, 6, -3, 0, -4, -3, 1, -2, -3, -1, -1, -1, -3,
            -2, -3}},
          {{0, -3, 0, -1, -3, -2, -3, 8, -2, -4, -4, -2, -3, -4, -2, 0, -2,
            -3, -3, -4}},
          {{-2, 0, 1, -1, -3, 1, 0, -2, 10, -4, -3, 0, -1, -1, -2, -1, -2,
            -3, 2, -4}},
          {{-1, -4, -3, -4, -2, -3, -4, -4, -4, 5, 2, -3, 2, 0, -3, -3, -1,
            -3, -1, 4}},
          {{-2, -3, -4, -4, -2, -2, -3, -4, -3, 2, 5, -3, 3, 1, -4, -3, -1,
            -2, -1, 1}},
          {{-1, 3, 0, -1, -3, 2, 1, -2, 0, -3, -3, 6, -2, -4, -1, 0, -1, -3,
            -2, -3}},
          {{-1, -2, -2, -4, -2, 0, -2, -3, -1, 2, 3, -2, 7, 0, -3, -2, -1,
            -1, 0, 1}},
          {{-3, -3, -4, -5, -2, -4, -3, -4, -1, 0, 1, -4, 0, 8, -4, -3, -2,
            1, 4, -1}},
          {{-1, -3, -2, -1, -4, -1, -1, -2, -2, -3, -4, -1, -3, -4, 10, -1,
            -1, -4, -3, -3}},
          {{1, -1, 1, 0, -1, 0, -1, 0, -1, -3, -3, 0, -2, -3, -1, 5, 2, -4,
            -2, -2}},
          {{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 2, 5,
            -3, -2, 0}},
          {{-3, -3, -4, -5, -5, -1, -3, -3, -3, -3, -2, -3, -1, 1, -4, -4,
            -3, 15, 2, -3}},
          {{-2, -1, -2, -3, -3, -1, -2, -3, 2, -1, -1, -2, 0, 4, -3, -2, -2,
            2, 8, -1}},
          {{0, -3, -3, -4, -1, -3, -3, -4, -4, 4, 1, -3, 1, -1, -3, -2, 0,
            -3, -1, 5}},
      }};
  return kScores;
}

std::vector<std::vector<double>> BlosumEmissionRows(double temperature) {
  const auto& scores = Blosum50Scores();
  std::vector<std::vector<double>> rows(
      kNumAminoAcids, std::vector<double>(kNumAminoAcids, 0.0));
  for (size_t i = 0; i < kNumAminoAcids; ++i) {
    double total = 0.0;
    for (size_t j = 0; j < kNumAminoAcids; ++j) {
      double propensity = std::exp2(static_cast<double>(scores[i][j]) /
                                    (2.0 * temperature));
      rows[i][j] = propensity;
      total += propensity;
    }
    for (double& v : rows[i]) v /= total;
  }
  return rows;
}

CompatibilityMatrix BlosumCompatibilityMatrix(double temperature) {
  const auto& scores = Blosum50Scores();
  CompatibilityMatrix c(kNumAminoAcids);
  for (size_t j = 0; j < kNumAminoAcids; ++j) {  // observed
    double total = 0.0;
    std::vector<double> col(kNumAminoAcids);
    for (size_t i = 0; i < kNumAminoAcids; ++i) {
      col[i] = std::exp2(static_cast<double>(scores[i][j]) /
                         (2.0 * temperature));
      total += col[i];
    }
    for (size_t i = 0; i < kNumAminoAcids; ++i) {
      c.Set(static_cast<SymbolId>(i), static_cast<SymbolId>(j),
            col[i] / total);
    }
  }
  return c;
}

double BlosumDiagonalMass(double temperature) {
  CompatibilityMatrix c = BlosumCompatibilityMatrix(temperature);
  double total = 0.0;
  for (size_t i = 0; i < kNumAminoAcids; ++i) {
    SymbolId d = static_cast<SymbolId>(i);
    total += c(d, d);
  }
  return total / static_cast<double>(kNumAminoAcids);
}

}  // namespace nmine
