#ifndef NMINE_BIO_FASTA_H_
#define NMINE_BIO_FASTA_H_

#include <string>
#include <vector>

#include "nmine/bio/amino_acids.h"
#include "nmine/db/format.h"
#include "nmine/db/in_memory_database.h"

namespace nmine {

/// One FASTA record: the header line (without '>') and the raw residues.
struct FastaRecord {
  std::string header;
  std::string residues;
};

/// Parses FASTA-formatted text ('>' headers, sequence lines, ';' comments
/// ignored). Whitespace inside sequence lines is dropped. Returns false on
/// structural errors (residues before the first header).
bool ParseFasta(const std::string& text, std::vector<FastaRecord>* records,
                std::string* error);

/// Reads a FASTA file from disk.
IoResult ReadFastaFile(const std::string& path,
                       std::vector<FastaRecord>* records);

/// Converts FASTA records to a sequence database over the 20-amino-acid
/// alphabet. Unknown residues (B, Z, X, U, O, gaps, lower-case handled by
/// upcasing) are skipped; `*skipped` (optional) receives the count.
InMemorySequenceDatabase FastaToDatabase(
    const std::vector<FastaRecord>& records, size_t* skipped);

}  // namespace nmine

#endif  // NMINE_BIO_FASTA_H_
