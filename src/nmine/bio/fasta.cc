#include "nmine/bio/fasta.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

namespace nmine {

bool ParseFasta(const std::string& text, std::vector<FastaRecord>* records,
                std::string* error) {
  records->clear();
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF
    }
    if (line.empty() || line[0] == ';') {
      continue;  // blank or comment
    }
    if (line[0] == '>') {
      FastaRecord record;
      record.header = line.substr(1);
      records->push_back(std::move(record));
      continue;
    }
    if (records->empty()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) +
                 ": sequence data before the first '>' header";
      }
      return false;
    }
    for (char ch : line) {
      if (!std::isspace(static_cast<unsigned char>(ch))) {
        records->back().residues.push_back(ch);
      }
    }
  }
  return true;
}

IoResult ReadFastaFile(const std::string& path,
                       std::vector<FastaRecord>* records) {
  std::ifstream in(path);
  if (!in) {
    return IoResult::Error("cannot open for reading: " + path);
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  if (!ParseFasta(text, records, &error)) {
    return IoResult::Error(path + ": " + error);
  }
  return IoResult::Ok();
}

InMemorySequenceDatabase FastaToDatabase(
    const std::vector<FastaRecord>& records, size_t* skipped) {
  InMemorySequenceDatabase db;
  const char* table = AminoAcidLetters();
  size_t dropped = 0;
  for (const FastaRecord& record : records) {
    Sequence seq;
    seq.reserve(record.residues.size());
    for (char ch : record.residues) {
      char upper =
          static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      const char* hit = std::strchr(table, upper);
      if (hit != nullptr && upper != '\0') {
        seq.push_back(static_cast<SymbolId>(hit - table));
      } else {
        ++dropped;
      }
    }
    db.Add(std::move(seq));
  }
  if (skipped != nullptr) {
    *skipped = dropped;
  }
  return db;
}

}  // namespace nmine
