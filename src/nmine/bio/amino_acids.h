#ifndef NMINE_BIO_AMINO_ACIDS_H_
#define NMINE_BIO_AMINO_ACIDS_H_

#include <cstddef>

#include "nmine/core/alphabet.h"
#include "nmine/core/sequence.h"

namespace nmine {

/// Number of standard amino acids.
inline constexpr size_t kNumAminoAcids = 20;

/// One-letter amino acid codes in BLOSUM matrix order:
/// A R N D C Q E G H I L K M F P S T W Y V.
const char* AminoAcidLetters();

/// Alphabet of the 20 amino acids (single-letter names, BLOSUM order).
Alphabet AminoAcidAlphabet();

/// Converts a protein string such as "AMTKYQ" to symbol ids. Unknown
/// letters are skipped.
Sequence ProteinToSequence(const char* letters);

}  // namespace nmine

#endif  // NMINE_BIO_AMINO_ACIDS_H_
