#include "nmine/bio/amino_acids.h"

#include <cstring>

namespace nmine {

const char* AminoAcidLetters() { return "ARNDCQEGHILKMFPSTWYV"; }

Alphabet AminoAcidAlphabet() {
  std::vector<std::string> names;
  names.reserve(kNumAminoAcids);
  const char* letters = AminoAcidLetters();
  for (size_t i = 0; i < kNumAminoAcids; ++i) {
    names.emplace_back(1, letters[i]);
  }
  return Alphabet(names);
}

Sequence ProteinToSequence(const char* letters) {
  Sequence seq;
  const char* table = AminoAcidLetters();
  for (const char* p = letters; *p != '\0'; ++p) {
    const char* hit = std::strchr(table, *p);
    if (hit != nullptr) {
      seq.push_back(static_cast<SymbolId>(hit - table));
    }
  }
  return seq;
}

}  // namespace nmine
