#ifndef NMINE_BIO_BLOSUM_H_
#define NMINE_BIO_BLOSUM_H_

#include <array>
#include <vector>

#include "nmine/bio/amino_acids.h"
#include "nmine/core/compatibility_matrix.h"

namespace nmine {

/// The BLOSUM50 log-odds scores (half-bit units) in AminoAcidLetters()
/// order. The paper (Section 5.1) uses BLOSUM50 [10] as its realistic
/// amino-acid mutation model; we embed the matrix since the original data
/// is public. Symmetric.
const std::array<std::array<int, kNumAminoAcids>, kNumAminoAcids>&
Blosum50Scores();

/// Converts the BLOSUM log-odds into a row-stochastic substitution
/// (emission) model P(observed | true): a BLOSUM score s is a half-bit
/// log-odds, so the implied joint propensity is 2^(s / 2) (uniform
/// background frequencies are assumed; see DESIGN.md). `temperature`
/// sharpens (< 1) or flattens (> 1) the distribution:
/// row[i][j] ∝ 2^(s_ij / (2 * temperature)).
std::vector<std::vector<double>> BlosumEmissionRows(double temperature);

/// The compatibility matrix induced by the BLOSUM50 model: the posterior
/// P(true | observed) under uniform priors, i.e. the column-normalized
/// propensities. Column-stochastic by construction.
CompatibilityMatrix BlosumCompatibilityMatrix(double temperature);

/// Average diagonal mass of BlosumCompatibilityMatrix(temperature):
/// the expected probability that an observed amino acid is its true self.
/// Useful for picking a temperature comparable to a given noise level.
double BlosumDiagonalMass(double temperature);

}  // namespace nmine

#endif  // NMINE_BIO_BLOSUM_H_
