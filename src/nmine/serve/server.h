#ifndef NMINE_SERVE_SERVER_H_
#define NMINE_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "nmine/serve/job.h"
#include "nmine/serve/job_journal.h"
#include "nmine/serve/job_queue.h"
#include "nmine/serve/protocol.h"

namespace nmine {
namespace obs {
class HistogramMetric;
}  // namespace obs

namespace serve {

/// nmine_server's core: accepts line-JSON mining jobs over TCP,
/// multiplexes them onto executor workers from the shared thread pool,
/// and keeps every admitted job durable in a write-ahead journal so a
/// SIGKILL loses nothing a client was ever acknowledged for.
///
/// Robustness spine:
///   - bounded admission (BoundedFairQueue): full queue => typed
///     RESOURCE_EXHAUSTED shed with a retry_after_s hint, never unbounded
///     memory
///   - per-job fault isolation: a job's failure (fault plan, corrupt db,
///     bad spec, deadline) becomes a typed result for that job only
///   - graceful drain (Drain(), wired to SIGTERM by the tool): stop
///     admitting, cancel in-flight jobs via their RunControl so the
///     miners flush RunCheckpoints, journal them back to queued, exit
///   - crash recovery (Start() on an existing state_dir): replay the
///     journal, re-admit queued/interrupt jobs, resume them from their
///     per-job checkpoints; finished jobs keep their cached results
///   - idempotent submits: a (client, tag) pair maps to one job id
///     forever, so a client that resubmits after losing the ack gets the
///     original job instead of a duplicate run
///
/// Metrics: serve.jobs.{admitted,shed,completed,failed,recovered,
/// interrupted} counters, the serve.queue.depth gauge, and the
/// serve.job.queue_wait_ms / serve.job.run_ms lifecycle histograms. The
/// job board is exported process-wide as /jobsz (and, with tracing on,
/// per-job traces as /tracez) via StatusServer::RegisterEndpoint.
///
/// Tracing (Options::tracing): every job is bound to a 128-bit trace id
/// through its whole lifecycle — received, journaled, queued, admitted,
/// running, checkpointing, drained/requeued, done/failed. The server
/// emits "job" (root), "job.queue_wait", and "job.run" spans per job plus
/// requeue/cancel markers, and installs the job's TraceContext around
/// RunJob so every miner span, log line, and flight event the run
/// produces carries the job's ids (see DESIGN.md §15).
class MiningServer {
 public:
  struct Options {
    /// TCP port; 0 picks an ephemeral port (see port()).
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    /// Directory for the job journal and per-job run checkpoints.
    /// Required; created when missing. Reusing a dir = crash recovery.
    std::string state_dir;
    /// Admission bound: queued (not yet running) jobs beyond this are
    /// shed with RESOURCE_EXHAUSTED.
    size_t queue_capacity = 64;
    /// Executor workers (concurrent jobs). 0 = admit-only mode: jobs
    /// queue and journal but never start (deterministic-shedding tests).
    size_t max_running = 1;
    /// retry_after_s hint attached to shed responses.
    double shed_retry_after_s = 1.0;
    /// Enables per-job request tracing: starts the global Tracer, binds
    /// every job to a 128-bit trace id (client-minted via the protocol's
    /// "trace_id" or server-minted at admission), emits lifecycle spans,
    /// and serves /tracez. Off by default — the lifecycle histograms and
    /// /jobsz latency block work either way.
    bool tracing = false;
    /// When > 0 and tracing is on, resizes the Tracer ring to this many
    /// events before starting it (see obs::Tracer::kDefaultCapacity).
    size_t trace_buffer = 0;
  };

  MiningServer() = default;
  ~MiningServer();
  MiningServer(const MiningServer&) = delete;
  MiningServer& operator=(const MiningServer&) = delete;

  /// Opens (or recovers) the state dir, binds the socket, starts the
  /// accept loop and executors, and registers /jobsz. False with *error
  /// set on any setup failure.
  bool Start(const Options& options, std::string* error);

  /// Graceful drain (SIGTERM path): stop admitting (submits get a typed
  /// UNAVAILABLE), cancel in-flight jobs cooperatively so they flush
  /// their checkpoints, journal them back to queued, join everything.
  /// The journal then holds exactly the work a restarted server resumes.
  void Drain();

  /// Abrupt stop: like Drain() but in-flight jobs are NOT journaled back
  /// to queued — their last journaled state stays "running", exactly as
  /// after a SIGKILL. In-process crash-recovery tests use this; real
  /// servers should Drain().
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  /// The /jobsz body: board snapshot with per-state counts, queue-wait /
  /// run-latency quantiles (serve.job.queue_wait_ms / serve.job.run_ms),
  /// current max queue wait + oldest-queued-job age, a slow-job exemplar
  /// table, and one entry per tracked job (with its trace_id).
  std::string JobszJson();

  /// The /tracez body. Empty query: {"version": "nmine.tracez.v1",
  /// "traces": [...]} — the most recent completed job traces with their
  /// phase breakdowns. Query "id=<32 hex>": that trace as single-line
  /// Chrome trace JSON (wall-clock anchored), loadable in Perfetto.
  std::string TracezJson(const std::string& query);

  /// The /healthz queue-staleness contributor: returns the
  /// "queue": {...} member (depth, oldest queued age, max queue wait)
  /// and pushes "queue_stalled" into `reasons` when the oldest queued
  /// job has waited implausibly long for an executor.
  std::string HealthQueueMember(std::vector<std::string>* reasons);

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);
  void ExecutorLoop();
  void RunOne(uint64_t id);
  std::string HandleRequest(const Request& request);
  std::string HandleSubmit(const Request& request);
  std::string StatusResponseLocked(const Job& job) const;
  std::string CheckpointPathFor(uint64_t id) const;
  void Shutdown(bool graceful);
  /// Oldest-queued-job age on the trace clock, 0 when nothing is queued.
  /// Caller holds jobs_mutex_.
  int64_t OldestQueuedAgeMsLocked() const;

  Options options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  std::unique_ptr<JobJournal> journal_;
  std::unique_ptr<BoundedFairQueue> queue_;

  /// Lifecycle latency histograms (registry-owned, stable for the
  /// process); fetched once at Start.
  obs::HistogramMetric* queue_wait_hist_ = nullptr;
  obs::HistogramMetric* run_hist_ = nullptr;

  /// Serializes the capacity-check -> journal -> enqueue sequence of a
  /// submit, so an executor can never observe (and finish!) a job before
  /// its submit record is durable.
  std::mutex submit_mutex_;

  /// Board state: jobs_, dedup index, id counter. The cv signals job
  /// completion (wait op) and shutdown.
  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::map<uint64_t, Job> jobs_;
  std::map<std::pair<std::string, std::string>, uint64_t> dedup_;
  uint64_t next_id_ = 1;

  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
  std::atomic<int> executors_live_{0};
  std::mutex exec_done_mutex_;
  std::condition_variable exec_done_cv_;
  std::mutex accept_done_mutex_;
  std::condition_variable accept_done_cv_;
  bool accept_done_ = true;
};

}  // namespace serve
}  // namespace nmine

#endif  // NMINE_SERVE_SERVER_H_
