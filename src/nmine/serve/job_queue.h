#ifndef NMINE_SERVE_JOB_QUEUE_H_
#define NMINE_SERVE_JOB_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace nmine {
namespace serve {

/// Bounded admission queue with per-client fair scheduling.
///
/// Each client gets its own FIFO; Pop() serves clients round-robin, so a
/// client that bulk-submits 100 jobs cannot starve a client that submits
/// one (per-client order is still FIFO — a client's own jobs never
/// reorder). The bound is on the TOTAL queued count: when full, TryPush
/// refuses and the server sheds the submit with a typed
/// RESOURCE_EXHAUSTED instead of queueing unboundedly.
///
/// PushRecovered bypasses the bound: jobs replayed from the journal were
/// already admitted before the crash — shedding them on restart would
/// break the at-most-once contract the journal exists to keep.
class BoundedFairQueue {
 public:
  /// `now_us` overrides the clock behind the drain-rate estimate (tests);
  /// null means the real steady clock.
  explicit BoundedFairQueue(size_t capacity,
                            std::function<int64_t()> now_us = nullptr);

  /// Admits job `id` for `client`. False (and no state change) when the
  /// queue is at capacity.
  bool TryPush(const std::string& client, uint64_t id);

  /// Admits unconditionally (crash recovery only).
  void PushRecovered(const std::string& client, uint64_t id);

  /// Blocks until a job is available or Stop() was called. False only on
  /// stop-and-empty: after Stop(), remaining jobs still drain.
  bool Pop(uint64_t* id);

  /// Wakes all Pop() waiters; queued jobs remain poppable.
  void Stop();

  size_t size() const;

  /// Load-aware hint, in seconds, for how long a shed client should wait
  /// before resubmitting: current depth divided by the recent drain rate
  /// (the timestamps of the last kDrainWindow pops), clamped to
  /// [kMinRetryAfterS, kMaxRetryAfterS]. Until two pops have been observed
  /// there is no rate to speak of and `fallback_s` is returned unclamped —
  /// a cold server's estimate would be pure fiction.
  double RetryAfterS(double fallback_s) const;

  static constexpr size_t kDrainWindow = 32;
  static constexpr double kMinRetryAfterS = 0.1;
  static constexpr double kMaxRetryAfterS = 60.0;

 private:
  bool PushLocked(const std::string& client, uint64_t id);

  const size_t capacity_;
  std::function<int64_t()> now_us_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
  size_t size_ = 0;
  /// Steady-clock timestamps of the most recent pops, oldest first.
  std::deque<int64_t> pop_times_us_;
  /// Per-client FIFOs plus the round-robin rotation over the clients that
  /// currently have queued work.
  std::map<std::string, std::deque<uint64_t>> clients_;
  std::vector<std::string> rotation_;
  size_t next_ = 0;
};

}  // namespace serve
}  // namespace nmine

#endif  // NMINE_SERVE_JOB_QUEUE_H_
