#ifndef NMINE_SERVE_JOB_QUEUE_H_
#define NMINE_SERVE_JOB_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace nmine {
namespace serve {

/// Bounded admission queue with per-client fair scheduling.
///
/// Each client gets its own FIFO; Pop() serves clients round-robin, so a
/// client that bulk-submits 100 jobs cannot starve a client that submits
/// one (per-client order is still FIFO — a client's own jobs never
/// reorder). The bound is on the TOTAL queued count: when full, TryPush
/// refuses and the server sheds the submit with a typed
/// RESOURCE_EXHAUSTED instead of queueing unboundedly.
///
/// PushRecovered bypasses the bound: jobs replayed from the journal were
/// already admitted before the crash — shedding them on restart would
/// break the at-most-once contract the journal exists to keep.
class BoundedFairQueue {
 public:
  explicit BoundedFairQueue(size_t capacity) : capacity_(capacity) {}

  /// Admits job `id` for `client`. False (and no state change) when the
  /// queue is at capacity.
  bool TryPush(const std::string& client, uint64_t id);

  /// Admits unconditionally (crash recovery only).
  void PushRecovered(const std::string& client, uint64_t id);

  /// Blocks until a job is available or Stop() was called. False only on
  /// stop-and-empty: after Stop(), remaining jobs still drain.
  bool Pop(uint64_t* id);

  /// Wakes all Pop() waiters; queued jobs remain poppable.
  void Stop();

  size_t size() const;

 private:
  bool PushLocked(const std::string& client, uint64_t id);

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
  size_t size_ = 0;
  /// Per-client FIFOs plus the round-robin rotation over the clients that
  /// currently have queued work.
  std::map<std::string, std::deque<uint64_t>> clients_;
  std::vector<std::string> rotation_;
  size_t next_ = 0;
};

}  // namespace serve
}  // namespace nmine

#endif  // NMINE_SERVE_JOB_QUEUE_H_
