#include "nmine/serve/job.h"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/matrix_io.h"
#include "nmine/db/disk_database.h"
#include "nmine/db/fault_injecting_database.h"
#include "nmine/db/retrying_database.h"
#include "nmine/eval/table.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/mining/border_collapse_miner.h"
#include "nmine/mining/depth_first_miner.h"
#include "nmine/mining/levelwise_miner.h"
#include "nmine/mining/max_miner.h"
#include "nmine/mining/toivonen_miner.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/logger.h"

namespace nmine {
namespace serve {

const char* ToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

std::optional<JobState> ParseJobState(const std::string& text) {
  if (text == "queued") return JobState::kQueued;
  if (text == "running") return JobState::kRunning;
  if (text == "done") return JobState::kDone;
  if (text == "failed") return JobState::kFailed;
  return std::nullopt;
}

void JobSpec::AppendJson(std::string* out) const {
  out->append("{\"db\": ");
  obs::AppendJsonString(db_path, out);
  out->append(", \"algorithm\": ");
  obs::AppendJsonString(algorithm, out);
  out->append(", \"metric\": ");
  obs::AppendJsonString(metric, out);
  out->append(", \"matrix\": ");
  obs::AppendJsonString(matrix_path, out);
  out->append(", \"uniform_alpha\": ");
  obs::AppendJsonNumber(uniform_alpha, out);
  out->append(", \"threshold\": ");
  obs::AppendJsonNumber(threshold, out);
  out->append(", \"max_span\": ");
  obs::AppendJsonNumber(static_cast<double>(max_span), out);
  out->append(", \"max_gap\": ");
  obs::AppendJsonNumber(static_cast<double>(max_gap), out);
  out->append(", \"max_level\": ");
  obs::AppendJsonNumber(static_cast<double>(max_level), out);
  out->append(", \"sample\": ");
  obs::AppendJsonNumber(static_cast<double>(sample_size), out);
  out->append(", \"delta\": ");
  obs::AppendJsonNumber(delta, out);
  out->append(", \"seed\": ");
  obs::AppendJsonNumber(static_cast<double>(seed), out);
  out->append(", \"threads\": ");
  obs::AppendJsonNumber(static_cast<double>(num_threads), out);
  out->append(", \"fault_plan\": ");
  obs::AppendJsonString(fault_plan, out);
  out->append(", \"scan_retries\": ");
  obs::AppendJsonNumber(static_cast<double>(scan_retries), out);
  out->append(", \"retry_backoff_ms\": ");
  obs::AppendJsonNumber(retry_backoff_ms, out);
  out->append(", \"retry_budget\": ");
  obs::AppendJsonNumber(static_cast<double>(retry_budget), out);
  out->append(", \"deadline_s\": ");
  obs::AppendJsonNumber(deadline_s, out);
  out->append(", \"memory_budget\": ");
  obs::AppendJsonNumber(static_cast<double>(memory_budget), out);
  out->append("}");
}

std::optional<JobSpec> JobSpec::FromJson(const obs::JsonValue& value,
                                         std::string* error) {
  if (!value.is_object()) {
    if (error != nullptr) *error = "job spec must be a JSON object";
    return std::nullopt;
  }
  JobSpec spec;
  const obs::JsonValue* db = value.Get("db");
  if (db == nullptr || !db->is_string() || db->string_value.empty()) {
    if (error != nullptr) *error = "job spec needs a non-empty \"db\" path";
    return std::nullopt;
  }
  spec.db_path = db->string_value;
  const obs::JsonValue* v;
  if ((v = value.Get("algorithm")) != nullptr && v->is_string()) {
    spec.algorithm = v->string_value;
  }
  if ((v = value.Get("metric")) != nullptr && v->is_string()) {
    spec.metric = v->string_value;
  }
  if ((v = value.Get("matrix")) != nullptr && v->is_string()) {
    spec.matrix_path = v->string_value;
  }
  if ((v = value.Get("fault_plan")) != nullptr && v->is_string()) {
    spec.fault_plan = v->string_value;
  }
  spec.uniform_alpha = value.GetNumber("uniform_alpha", spec.uniform_alpha);
  spec.threshold = value.GetNumber("threshold", spec.threshold);
  spec.max_span = static_cast<uint64_t>(
      value.GetNumber("max_span", static_cast<double>(spec.max_span)));
  spec.max_gap = static_cast<uint64_t>(
      value.GetNumber("max_gap", static_cast<double>(spec.max_gap)));
  spec.max_level = static_cast<uint64_t>(
      value.GetNumber("max_level", static_cast<double>(spec.max_level)));
  spec.sample_size = static_cast<uint64_t>(
      value.GetNumber("sample", static_cast<double>(spec.sample_size)));
  spec.delta = value.GetNumber("delta", spec.delta);
  spec.seed = static_cast<uint64_t>(
      value.GetNumber("seed", static_cast<double>(spec.seed)));
  spec.num_threads = static_cast<uint64_t>(
      value.GetNumber("threads", static_cast<double>(spec.num_threads)));
  spec.scan_retries = static_cast<int64_t>(
      value.GetNumber("scan_retries", static_cast<double>(spec.scan_retries)));
  spec.retry_backoff_ms =
      value.GetNumber("retry_backoff_ms", spec.retry_backoff_ms);
  spec.retry_budget = static_cast<int64_t>(
      value.GetNumber("retry_budget", static_cast<double>(spec.retry_budget)));
  spec.deadline_s = value.GetNumber("deadline_s", spec.deadline_s);
  spec.memory_budget = static_cast<uint64_t>(
      value.GetNumber("memory_budget", static_cast<double>(spec.memory_budget)));

  static const char* kAlgorithms[] = {"collapse", "levelwise", "maxminer",
                                      "toivonen", "depthfirst"};
  if (std::find_if(std::begin(kAlgorithms), std::end(kAlgorithms),
                   [&](const char* a) { return spec.algorithm == a; }) ==
      std::end(kAlgorithms)) {
    if (error != nullptr) *error = "unknown algorithm '" + spec.algorithm + "'";
    return std::nullopt;
  }
  if (spec.metric != "match" && spec.metric != "support") {
    if (error != nullptr) *error = "unknown metric '" + spec.metric + "'";
    return std::nullopt;
  }
  return spec;
}

void JobResult::AppendJson(std::string* out) const {
  out->append("{\"ok\": ");
  out->append(ok ? "true" : "false");
  if (!ok) {
    out->append(", \"error\": ");
    obs::AppendJsonString(error_code, out);
    out->append(", \"message\": ");
    obs::AppendJsonString(message, out);
  }
  out->append(", \"rows\": [");
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append("[");
    obs::AppendJsonString(rows[i].first, out);
    out->append(", ");
    obs::AppendJsonString(rows[i].second, out);
    out->append("]");
  }
  out->append("], \"scans\": ");
  obs::AppendJsonNumber(static_cast<double>(scans), out);
  out->append(", \"truncated\": ");
  out->append(truncated ? "true" : "false");
  out->append(", \"resumed\": ");
  out->append(resumed_from_checkpoint ? "true" : "false");
  out->append("}");
}

std::optional<JobResult> JobResult::FromJson(const obs::JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  const obs::JsonValue* ok = value.Get("ok");
  if (ok == nullptr || ok->type != obs::JsonValue::Type::kBool) {
    return std::nullopt;
  }
  JobResult result;
  result.ok = ok->bool_value;
  const obs::JsonValue* v;
  if ((v = value.Get("error")) != nullptr && v->is_string()) {
    result.error_code = v->string_value;
  }
  if ((v = value.Get("message")) != nullptr && v->is_string()) {
    result.message = v->string_value;
  }
  if ((v = value.Get("rows")) != nullptr && v->is_array()) {
    for (const obs::JsonValue& row : v->array) {
      if (!row.is_array() || row.array.size() != 2 ||
          !row.array[0].is_string() || !row.array[1].is_string()) {
        return std::nullopt;
      }
      result.rows.emplace_back(row.array[0].string_value,
                               row.array[1].string_value);
    }
  }
  result.scans = static_cast<int64_t>(value.GetNumber("scans", 0.0));
  if ((v = value.Get("truncated")) != nullptr) {
    result.truncated = v->bool_value;
  }
  if ((v = value.Get("resumed")) != nullptr) {
    result.resumed_from_checkpoint = v->bool_value;
  }
  return result;
}

namespace {

JobResult TypedError(const Status& status) {
  JobResult r;
  r.ok = false;
  r.error_code = ToString(status.code());
  r.message = status.message();
  return r;
}

}  // namespace

JobResult RunJob(const JobSpec& spec, const std::string& checkpoint_path,
                 const runtime::RunControl* run) {
  return RunJob(spec, checkpoint_path, run, RunJobHooks());
}

JobResult RunJob(const JobSpec& spec, const std::string& checkpoint_path,
                 const runtime::RunControl* run, const RunJobHooks& hooks) {
  // Mirrors nmine_cli's CmdMine step for step: same defaults, same probe
  // scan, same matrix resolution, same row formatting — so the chaos drill
  // can diff server output against a solo CLI run byte for byte.
  RetryPolicy retry;
  retry.max_attempts = 1 + static_cast<int>(std::max<int64_t>(
                               0, spec.scan_retries));
  retry.initial_backoff_ms = spec.retry_backoff_ms;

  std::optional<RetryBudget> retry_budget;
  if (spec.retry_budget >= 0) retry_budget.emplace(spec.retry_budget);

  Status error;
  DiskSequenceDatabase::Options db_options;
  db_options.retry = retry;
  db_options.retry_budget =
      retry_budget.has_value() ? &*retry_budget : nullptr;
  std::unique_ptr<DiskSequenceDatabase> db =
      DiskSequenceDatabase::Open(spec.db_path, db_options, &error);
  if (db == nullptr) return TypedError(error);

  std::unique_ptr<FaultInjectingDatabase> injector;
  std::unique_ptr<RetryingDatabase> retrier;
  const SequenceDatabase* mine_db = db.get();
  if (!spec.fault_plan.empty()) {
    std::string plan_error;
    std::optional<FaultPlan> plan =
        FaultPlan::Parse(spec.fault_plan, &plan_error);
    if (!plan.has_value()) {
      return TypedError(Status::InvalidArgument(plan_error));
    }
    injector =
        std::make_unique<FaultInjectingDatabase>(db.get(), std::move(*plan));
    retrier = std::make_unique<RetryingDatabase>(
        injector.get(), retry, /*sleeper=*/nullptr,
        retry_budget.has_value() ? &*retry_budget : nullptr);
    mine_db = retrier.get();
  }

  SymbolId max_symbol = -1;
  Status probe_status = db->Scan(
      [&](const SequenceRecord& r) {
        for (SymbolId s : r.symbols) max_symbol = std::max(max_symbol, s);
      },
      /*restart=*/[&] { max_symbol = -1; });
  if (!probe_status.ok()) return TypedError(probe_status);
  size_t m = static_cast<size_t>(max_symbol + 1);

  std::optional<CompatibilityMatrix> c;
  if (!spec.matrix_path.empty()) {
    MatrixIoResult merr;
    c = ReadCompatibilityMatrixFile(spec.matrix_path, &merr);
    if (!c.has_value()) {
      return TypedError(Status::InvalidArgument(merr.message));
    }
    if (c->size() < m) {
      return TypedError(Status::InvalidArgument(
          "matrix is " + std::to_string(c->size()) + "x" +
          std::to_string(c->size()) + " but the data uses " +
          std::to_string(m) + " symbols"));
    }
  } else if (spec.uniform_alpha >= 0.0) {
    c = UniformNoiseMatrix(m, spec.uniform_alpha);
  } else {
    c = CompatibilityMatrix::Identity(m);
  }

  Metric metric = spec.metric == "support" ? Metric::kSupport : Metric::kMatch;
  MinerOptions options;
  options.min_threshold = spec.threshold;
  options.space.max_span = static_cast<size_t>(spec.max_span);
  options.space.max_gap = static_cast<size_t>(spec.max_gap);
  options.max_level = static_cast<size_t>(
      spec.max_level == 0 ? spec.max_span : spec.max_level);
  options.sample_size = static_cast<size_t>(spec.sample_size);
  options.delta = spec.delta;
  options.seed = spec.seed;
  options.num_threads = static_cast<size_t>(spec.num_threads);
  options.memory_budget_bytes = static_cast<size_t>(spec.memory_budget);
  options.run_control = run;
  options.run_checkpoint_path = checkpoint_path;
  if (hooks.phase3_count) {
    options.phase3_count_override = [&hooks, metric](
                                        const std::vector<Pattern>& probe,
                                        std::vector<double>* values) {
      return hooks.phase3_count(metric, probe, values);
    };
  }

  const bool had_checkpoint =
      !checkpoint_path.empty() &&
      std::filesystem::exists(std::filesystem::path(checkpoint_path));

  MiningResult result;
  if (spec.algorithm == "collapse") {
    result = BorderCollapseMiner(metric, options).Mine(*mine_db, *c);
  } else if (spec.algorithm == "levelwise") {
    result = LevelwiseMiner(metric, options).Mine(*mine_db, *c);
  } else if (spec.algorithm == "maxminer") {
    result = MaxMiner(metric, options).Mine(*mine_db, *c);
  } else if (spec.algorithm == "toivonen") {
    result = ToivonenMiner(metric, options).Mine(*mine_db, *c);
  } else if (spec.algorithm == "depthfirst") {
    result = DepthFirstMiner(metric, options).Mine(*mine_db, *c);
  } else {
    return TypedError(
        Status::InvalidArgument("unknown algorithm '" + spec.algorithm + "'"));
  }

  if (!result.ok()) {
    JobResult r = TypedError(result.status);
    r.scans = result.scans;
    r.resumed_from_checkpoint = had_checkpoint;
    return r;
  }

  JobResult r;
  r.ok = true;
  r.scans = result.scans;
  r.truncated = result.truncated;
  r.resumed_from_checkpoint = had_checkpoint;
  for (const Pattern& p : result.border.ToSortedVector()) {
    auto it = result.values.find(p);
    r.rows.emplace_back(
        p.ToString(),
        it == result.values.end() ? "-" : Table::Num(it->second, 5));
  }
  return r;
}

}  // namespace serve
}  // namespace nmine
