#include "nmine/serve/job_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "nmine/obs/json_parse.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/trace_context.h"
#include "nmine/runtime/checkpoint_io.h"

namespace nmine {
namespace serve {
namespace {

void AppendSubmitLine(const Job& job, std::string* out) {
  out->append("{\"event\": \"submit\", \"id\": ");
  obs::AppendJsonNumber(static_cast<double>(job.id), out);
  out->append(", \"client\": ");
  obs::AppendJsonString(job.client, out);
  out->append(", \"tag\": ");
  obs::AppendJsonString(job.tag, out);
  out->append(", \"submit_us\": ");
  obs::AppendJsonNumber(static_cast<double>(job.submit_us), out);
  if ((job.trace_hi | job.trace_lo) != 0) {
    out->append(", \"trace_id\": ");
    obs::AppendJsonString(obs::FormatTraceId(job.trace_hi, job.trace_lo),
                          out);
  }
  out->append(", \"spec\": ");
  job.spec.AppendJson(out);
  out->append("}\n");
}

void AppendStateLine(uint64_t id, JobState state, std::string* out) {
  out->append("{\"event\": \"state\", \"id\": ");
  obs::AppendJsonNumber(static_cast<double>(id), out);
  out->append(", \"state\": ");
  obs::AppendJsonString(ToString(state), out);
  out->append("}\n");
}

void AppendResultLine(uint64_t id, const JobResult& result, std::string* out) {
  out->append("{\"event\": \"result\", \"id\": ");
  obs::AppendJsonNumber(static_cast<double>(id), out);
  out->append(", \"result\": ");
  result.AppendJson(out);
  out->append("}\n");
}

/// Applies one journal line to the board. Unparseable lines are skipped:
/// only the torn trailing write of a crash should ever be malformed, and
/// a torn line by construction carries an event the client was never
/// acknowledged for.
void Replay(const std::string& line, std::map<uint64_t, Job>* board) {
  std::optional<obs::JsonValue> value = obs::ParseJson(line);
  if (!value.has_value() || !value->is_object()) return;
  const obs::JsonValue* event = value->Get("event");
  const obs::JsonValue* id_value = value->Get("id");
  if (event == nullptr || !event->is_string() || id_value == nullptr ||
      !id_value->is_number()) {
    return;
  }
  const uint64_t id = static_cast<uint64_t>(id_value->number_value);

  if (event->string_value == "submit") {
    const obs::JsonValue* spec_value = value->Get("spec");
    if (spec_value == nullptr) return;
    std::string spec_error;
    std::optional<JobSpec> spec = JobSpec::FromJson(*spec_value, &spec_error);
    if (!spec.has_value()) return;
    Job& job = (*board)[id];
    job.id = id;
    job.spec = std::move(*spec);
    job.state = JobState::kQueued;
    const obs::JsonValue* v;
    if ((v = value->Get("client")) != nullptr && v->is_string()) {
      job.client = v->string_value;
    }
    if ((v = value->Get("tag")) != nullptr && v->is_string()) {
      job.tag = v->string_value;
    }
    job.submit_us = static_cast<int64_t>(value->GetNumber("submit_us", 0.0));
    if ((v = value->Get("trace_id")) != nullptr && v->is_string()) {
      // Best-effort: a journal written before tracing existed simply has
      // no trace_id; the server mints one at recovery so every live job
      // is traceable.
      obs::ParseTraceId(v->string_value, &job.trace_hi, &job.trace_lo);
    }
    return;
  }

  auto it = board->find(id);
  if (it == board->end()) return;  // state/result without a submit: torn file

  if (event->string_value == "state") {
    const obs::JsonValue* state_value = value->Get("state");
    if (state_value == nullptr || !state_value->is_string()) return;
    std::optional<JobState> state = ParseJobState(state_value->string_value);
    if (state.has_value()) it->second.state = *state;
    return;
  }
  if (event->string_value == "result") {
    const obs::JsonValue* result_value = value->Get("result");
    if (result_value == nullptr) return;
    std::optional<JobResult> result = JobResult::FromJson(*result_value);
    if (!result.has_value()) return;
    it->second.result = std::move(*result);
    it->second.state =
        it->second.result.ok ? JobState::kDone : JobState::kFailed;
  }
}

}  // namespace

std::unique_ptr<JobJournal> JobJournal::Open(const std::string& state_dir,
                                             std::map<uint64_t, Job>* recovered,
                                             uint64_t* next_id,
                                             std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(state_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create state dir '" + state_dir + "': " + ec.message();
    }
    return nullptr;
  }
  const std::string path =
      (std::filesystem::path(state_dir) / "jobs.journal").string();

  // Replay. Reading line-wise naturally tolerates the torn tail: the
  // unterminated final line parses as garbage and is skipped.
  recovered->clear();
  size_t replayed_lines = 0;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      Replay(line, recovered);
      ++replayed_lines;
    }
  }

  // Rewind crash-interrupted jobs: running means the server died mid-run.
  // The job's RunCheckpoint (if the run got far enough to cut one) holds
  // the progress; re-queueing re-enters RunJob which resumes from it.
  uint64_t max_id = 0;
  size_t rewound = 0;
  for (auto& [id, job] : *recovered) {
    max_id = std::max(max_id, id);
    if (job.state == JobState::kRunning) {
      job.state = JobState::kQueued;
      ++rewound;
    }
  }
  *next_id = max_id + 1;

  // Compact: rewrite the replayed board as a fresh journal, dropping the
  // oldest terminal jobs beyond the cap. Atomic write, so a crash during
  // compaction keeps the old journal.
  std::vector<const Job*> terminal;
  for (const auto& [id, job] : *recovered) {
    if (job.state == JobState::kDone || job.state == JobState::kFailed) {
      terminal.push_back(&job);
    }
  }
  if (terminal.size() > kMaxTerminalKept) {
    std::sort(terminal.begin(), terminal.end(),
              [](const Job* a, const Job* b) { return a->id < b->id; });
    const size_t drop = terminal.size() - kMaxTerminalKept;
    for (size_t i = 0; i < drop; ++i) recovered->erase(terminal[i]->id);
  }
  std::string compacted;
  for (const auto& [id, job] : *recovered) {
    AppendSubmitLine(job, &compacted);
    if (job.state != JobState::kQueued) {
      AppendStateLine(id, job.state, &compacted);
    }
    if (job.state == JobState::kDone || job.state == JobState::kFailed) {
      AppendResultLine(id, job.result, &compacted);
    }
  }
  Status write_status = runtime::AtomicWriteFile(path, compacted);
  if (!write_status.ok()) {
    if (error != nullptr) *error = write_status.ToString();
    return nullptr;
  }

  std::unique_ptr<JobJournal> journal(new JobJournal(path));
  journal->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (journal->fd_ < 0) {
    if (error != nullptr) {
      *error = "cannot open journal '" + path +
               "' for append: " + std::string(strerror(errno));
    }
    return nullptr;
  }
  if (replayed_lines > 0) {
    NMINE_LOG(kInfo, "serve")
        .Msg("job journal replayed")
        .Num("lines", static_cast<int64_t>(replayed_lines))
        .Num("jobs", static_cast<int64_t>(recovered->size()))
        .Num("rewound_to_queued", static_cast<int64_t>(rewound));
  }
  return journal;
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status JobJournal::AppendLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t done = 0;
  while (done < line.size()) {
    ssize_t w = ::write(fd_, line.data() + done, line.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("journal write failed: " +
                                 std::string(strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd_) != 0) {
    return Status::Unavailable("journal fsync failed: " +
                               std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status JobJournal::AppendSubmit(const Job& job) {
  std::string line;
  AppendSubmitLine(job, &line);
  return AppendLine(line);
}

Status JobJournal::AppendState(uint64_t id, JobState state) {
  std::string line;
  AppendStateLine(id, state, &line);
  return AppendLine(line);
}

Status JobJournal::AppendResult(uint64_t id, const JobResult& result) {
  std::string line;
  AppendResultLine(id, result, &line);
  return AppendLine(line);
}

}  // namespace serve
}  // namespace nmine
