#ifndef NMINE_SERVE_JOB_JOURNAL_H_
#define NMINE_SERVE_JOB_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "nmine/core/status.h"
#include "nmine/serve/job.h"

namespace nmine {
namespace serve {

/// Write-ahead journal of the server's job board, the crash-recovery spine
/// of nmine_server.
///
/// Every job transition is appended (and fsync'd) to
/// `<state_dir>/jobs.journal` as one JSON line BEFORE the client sees a
/// response:
///
///   {"event": "submit", "id": N, "client": C, "tag": T,
///    ["trace_id": H,] "spec": {...}}
///   {"event": "state",  "id": N, "state": "running"|"queued"|...}
///   {"event": "result", "id": N, "result": {...}}
///
/// Submit ordering gives at-most-once admission: a submit is journaled
/// only AFTER it clears the admission queue, and the "ok" response is sent
/// only AFTER the journal write. A crash between the two means the client
/// never saw ok and safely resubmits (the idempotency tag dedups if the
/// journal record did land).
///
/// Recovery: Open() replays the journal, tolerating a torn trailing line
/// (the one write that was in flight at SIGKILL). Jobs whose last state
/// was running are rewound to queued — their RunCheckpoint carries the
/// actual progress. Open() then compacts: the replayed board is rewritten
/// atomically as a fresh journal (keeping at most `kMaxTerminalKept`
/// finished jobs), so the journal stays bounded across restarts.
class JobJournal {
 public:
  /// Oldest terminal (done/failed) jobs beyond this count are dropped at
  /// compaction; queued/running jobs are always kept.
  static constexpr size_t kMaxTerminalKept = 512;

  /// Opens (creating state_dir if needed), replays, and compacts the
  /// journal. `recovered` receives the replayed board keyed by job id
  /// (running already rewound to queued); `next_id` the first unused job
  /// id. nullptr on unreadable/unwritable state, with *error set.
  static std::unique_ptr<JobJournal> Open(const std::string& state_dir,
                                          std::map<uint64_t, Job>* recovered,
                                          uint64_t* next_id,
                                          std::string* error);

  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Appends are serialized, written whole-line, and fsync'd before
  /// returning, so an acknowledged append survives SIGKILL.
  Status AppendSubmit(const Job& job);
  Status AppendState(uint64_t id, JobState state);
  Status AppendResult(uint64_t id, const JobResult& result);

  const std::string& path() const { return path_; }

 private:
  explicit JobJournal(std::string path) : path_(std::move(path)) {}

  Status AppendLine(const std::string& line);

  std::string path_;
  std::mutex mutex_;
  int fd_ = -1;
};

}  // namespace serve
}  // namespace nmine

#endif  // NMINE_SERVE_JOB_JOURNAL_H_
