#ifndef NMINE_SERVE_PROTOCOL_H_
#define NMINE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "nmine/serve/job.h"

namespace nmine {
namespace serve {

/// Wire protocol of nmine_server: line-JSON over TCP. Each request is one
/// JSON object on one line; the server answers with exactly one JSON
/// object on one line. Requests:
///
///   {"op": "ping"}
///   {"op": "submit", "client": C, "tag": T, "spec": {JobSpec...},
///    ["trace_id": H]}                H = 32 hex digits (client-minted)
///   {"op": "status", "id": N}
///   {"op": "wait",   "id": N}        blocks until the job is terminal
///   {"op": "trace",  "id": N}        the job's per-trace Chrome JSON
///   {"op": "jobs"}                   board snapshot (same shape as /jobsz)
///
/// Responses always carry "ok": true|false. Failures are TYPED: "error" is
/// a StatusCode wire name ("RESOURCE_EXHAUSTED", "INVALID_ARGUMENT",
/// "NOT_FOUND", "UNAVAILABLE", ...) plus a human "message"; shed submits
/// additionally carry "retry_after_s" so clients back off instead of
/// hammering an overloaded server.
///
/// Tracing: a submit may carry "trace_id" — 32 lowercase/uppercase hex
/// digits naming a 128-bit id (obs::ParseTraceId). The submit ack, status,
/// and wait responses echo it back as "trace_id" so either side can
/// correlate with the server's /tracez. Unknown request members are
/// ignored (old servers simply don't attribute), keeping old and new
/// binaries wire-compatible in both directions.
///
/// Versioning: a request may carry "v", the protocol version the client
/// speaks. Absent means 1 (every frame ever sent before versioning
/// existed is a v1 frame). A version this server does not speak is a
/// typed FAILED_PRECONDITION — distinct from INVALID_ARGUMENT garbage, so
/// clients can tell "upgrade me" from "you sent junk".
inline constexpr int kProtocolVersion = 1;

struct Request {
  std::string op;
  int version = kProtocolVersion;
  std::string client;         // fair-scheduling + idempotency namespace
  std::string tag;            // idempotency key for submit; may be empty
  uint64_t job_id = 0;        // status / wait / trace
  bool has_job_id = false;
  std::string trace_id;       // submit only; empty = server mints one
  std::optional<JobSpec> spec;  // submit only
};

/// Parses one request line. nullopt with *error set on malformed JSON, an
/// unknown op, a submit without a valid spec, or an unsupported protocol
/// version. When `error_code` is non-null it receives the StatusCode wire
/// name to answer with: "FAILED_PRECONDITION" for a version mismatch,
/// "INVALID_ARGUMENT" for everything else.
std::optional<Request> ParseRequest(const std::string& line,
                                    std::string* error,
                                    std::string* error_code = nullptr);

/// {"ok": false, "error": CODE, "message": ..., ["retry_after_s": S]}\n
/// `code` is a StatusCode wire name. retry_after_s is emitted when >= 0.
std::string ErrorResponse(const std::string& code, const std::string& message,
                          double retry_after_s = -1.0);

/// {"ok": true}\n with optional extra members spliced in (caller provides
/// `", \"id\": 7"` style fragments — already JSON-encoded).
std::string OkResponse(const std::string& extra_members = "");

}  // namespace serve
}  // namespace nmine

#endif  // NMINE_SERVE_PROTOCOL_H_
