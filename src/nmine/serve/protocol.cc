#include "nmine/serve/protocol.h"

#include "nmine/obs/json_util.h"
#include "nmine/obs/trace_context.h"

namespace nmine {
namespace serve {

std::optional<Request> ParseRequest(const std::string& line,
                                    std::string* error,
                                    std::string* error_code) {
  if (error_code != nullptr) *error_code = "INVALID_ARGUMENT";
  std::optional<obs::JsonValue> value = obs::ParseJson(line);
  if (!value.has_value() || !value->is_object()) {
    if (error != nullptr) *error = "request must be one JSON object per line";
    return std::nullopt;
  }
  Request request;
  const obs::JsonValue* op = value->Get("op");
  if (op == nullptr || !op->is_string()) {
    if (error != nullptr) *error = "request needs a string \"op\"";
    return std::nullopt;
  }
  request.op = op->string_value;

  const obs::JsonValue* v;
  if ((v = value->Get("v")) != nullptr) {
    // "v" must be this protocol's version when present; absence means 1
    // (pre-versioning frames). A mismatch is FAILED_PRECONDITION, not
    // INVALID_ARGUMENT: the frame may be perfectly well-formed for a
    // protocol this server simply does not speak.
    if (!v->is_number() ||
        static_cast<int>(v->number_value) != kProtocolVersion ||
        v->number_value != static_cast<double>(
                               static_cast<int>(v->number_value))) {
      if (error != nullptr) {
        *error = "unsupported protocol version (this server speaks v" +
                 std::to_string(kProtocolVersion) + ")";
      }
      if (error_code != nullptr) *error_code = "FAILED_PRECONDITION";
      return std::nullopt;
    }
    request.version = static_cast<int>(v->number_value);
  }
  if ((v = value->Get("client")) != nullptr && v->is_string()) {
    request.client = v->string_value;
  }
  if ((v = value->Get("tag")) != nullptr && v->is_string()) {
    request.tag = v->string_value;
  }
  if ((v = value->Get("id")) != nullptr && v->is_number()) {
    request.job_id = static_cast<uint64_t>(v->number_value);
    request.has_job_id = true;
  }

  if (request.op == "submit") {
    if ((v = value->Get("trace_id")) != nullptr) {
      uint64_t hi = 0;
      uint64_t lo = 0;
      if (!v->is_string() ||
          !obs::ParseTraceId(v->string_value, &hi, &lo)) {
        if (error != nullptr) {
          *error = "\"trace_id\" must be 32 hex digits (nonzero)";
        }
        return std::nullopt;
      }
      request.trace_id = v->string_value;
    }
    const obs::JsonValue* spec = value->Get("spec");
    if (spec == nullptr) {
      if (error != nullptr) *error = "submit needs a \"spec\" object";
      return std::nullopt;
    }
    std::string spec_error;
    request.spec = JobSpec::FromJson(*spec, &spec_error);
    if (!request.spec.has_value()) {
      if (error != nullptr) *error = spec_error;
      return std::nullopt;
    }
  } else if (request.op == "status" || request.op == "wait" ||
             request.op == "trace") {
    if (!request.has_job_id) {
      if (error != nullptr) *error = request.op + " needs a numeric \"id\"";
      return std::nullopt;
    }
  } else if (request.op != "jobs" && request.op != "ping") {
    if (error != nullptr) *error = "unknown op '" + request.op + "'";
    return std::nullopt;
  }
  return request;
}

std::string ErrorResponse(const std::string& code, const std::string& message,
                          double retry_after_s) {
  std::string out = "{\"ok\": false, \"error\": ";
  obs::AppendJsonString(code, &out);
  out.append(", \"message\": ");
  obs::AppendJsonString(message, &out);
  if (retry_after_s >= 0.0) {
    out.append(", \"retry_after_s\": ");
    obs::AppendJsonNumber(retry_after_s, &out);
  }
  out.append("}\n");
  return out;
}

std::string OkResponse(const std::string& extra_members) {
  std::string out = "{\"ok\": true";
  out.append(extra_members);
  out.append("}\n");
  return out;
}

}  // namespace serve
}  // namespace nmine
