#ifndef NMINE_SERVE_JOB_H_
#define NMINE_SERVE_JOB_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nmine/core/metric.h"
#include "nmine/core/pattern.h"
#include "nmine/core/status.h"
#include "nmine/obs/json_parse.h"
#include "nmine/runtime/run_control.h"

namespace nmine {
namespace serve {

/// Lifecycle of one mining job inside the server.
///
///   queued --> running --> done
///                 |   \--> failed        (typed error to the client)
///                 \--> queued            (drain interrupt / crash; the job
///                                         is re-admitted on restart and
///                                         resumes from its checkpoint)
enum class JobState {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
};

const char* ToString(JobState state);
std::optional<JobState> ParseJobState(const std::string& text);

/// One mining request, the unit of admission, journaling, and execution.
/// Field names and defaults mirror `nmine_cli mine` so a job run by the
/// server is bit-identical to the same flags run solo (the chaos drill
/// diffs the two).
struct JobSpec {
  std::string db_path;               // required
  std::string algorithm = "collapse";
  std::string metric = "match";      // match|support
  std::string matrix_path;           // wins over uniform_alpha when set
  double uniform_alpha = -1.0;       // < 0: identity matrix
  double threshold = 0.1;
  uint64_t max_span = 10;
  uint64_t max_gap = 0;
  uint64_t max_level = 0;            // 0: use max_span
  uint64_t sample_size = 1000;
  double delta = 1e-4;
  uint64_t seed = 42;
  uint64_t num_threads = 1;
  std::string fault_plan;            // drill fault injection, may be empty
  int64_t scan_retries = 2;
  double retry_backoff_ms = 5.0;
  int64_t retry_budget = -1;         // < 0: unlimited
  double deadline_s = 0.0;           // per-job; 0: none
  uint64_t memory_budget = 0;        // bytes; 0: unlimited

  /// Appends this spec as a JSON object (used by the wire protocol and the
  /// job journal — one codec, so a journaled job replays exactly).
  void AppendJson(std::string* out) const;

  /// Parses a spec from a JSON object. Unknown members are ignored
  /// (forward compatibility); a missing/empty `db` is an error.
  static std::optional<JobSpec> FromJson(const obs::JsonValue& value,
                                         std::string* error);
};

/// Terminal outcome of a job: either the result rows (exactly the CLI's
/// pattern/value table cells, preformatted so no float re-rendering can
/// drift) or a typed error.
struct JobResult {
  bool ok = false;
  std::string error_code;  // StatusCode wire name ("DATA_LOSS", ...) if !ok
  std::string message;
  std::vector<std::pair<std::string, std::string>> rows;
  int64_t scans = 0;
  bool truncated = false;
  /// True when the run continued from an existing RunCheckpoint instead of
  /// starting over (recovered jobs must set this — the drill asserts it).
  bool resumed_from_checkpoint = false;

  void AppendJson(std::string* out) const;
  static std::optional<JobResult> FromJson(const obs::JsonValue& value);
};

/// One job as tracked by the server: spec + lifecycle + its cancellation
/// token. State transitions and result publication happen under the
/// server's job mutex; the RunControl is the only field touched from
/// other threads (it is lock-free by design).
///
/// Every job carries a 128-bit trace id (client-minted or server-minted at
/// admission) that names its end-to-end trace, and `root_span_id`, the
/// lifecycle root span all of the job's spans descend from. The *_tus
/// timestamps are on the tracer's clock base (obs::SinceEpochUs()) so
/// lifecycle spans can be emitted with exact queue-wait and run bounds;
/// the *_us wall-clock fields remain what /jobsz and the journal report.
struct Job {
  uint64_t id = 0;
  std::string client;
  std::string tag;  // client idempotency key; empty = no dedup
  JobSpec spec;
  JobState state = JobState::kQueued;
  int64_t submit_us = 0;
  int64_t start_us = 0;
  int64_t finish_us = 0;
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t root_span_id = 0;
  int64_t submit_tus = 0;  // trace clock: admitted to the queue
  int64_t start_tus = 0;   // trace clock: last admitted to run
  int64_t finish_tus = 0;  // trace clock: reached a terminal state
  int64_t requeues = 0;    // drain/crash re-admissions
  int64_t resubmits = 0;   // idempotent duplicate submits absorbed
  JobResult result;
  std::string checkpoint_path;
  runtime::RunControl run_control;
};

/// Executes `spec` as one governed mining run: opens the database (with
/// retry policy / budget / fault plan from the spec), resolves the
/// compatibility matrix, mines with the requested algorithm under `run`,
/// checkpointing to `checkpoint_path` (border-collapsing runs resume from
/// it when it exists). Never throws and never returns a partial answer:
/// the outcome is either ok with the full rows, or a typed error.
/// kCancelled / kDeadlineExceeded surface as a !ok result with the
/// corresponding wire code — the caller decides whether that means
/// "re-queue" (drain) or "failed" (per-job deadline).
JobResult RunJob(const JobSpec& spec, const std::string& checkpoint_path,
                 const runtime::RunControl* run);

/// Extension points a distributed driver splices into the run. The driver
/// reuses ALL of RunJob (database open, matrix resolution, checkpointing,
/// row formatting) so its output stays byte-identical to a solo run by
/// construction; only the hooked stage differs.
struct RunJobHooks {
  /// Counts one Phase-3 probe batch out of process (collapse algorithm
  /// only; other algorithms ignore it). Must be bit-identical to the
  /// in-process counters — see MinerOptions::phase3_count_override.
  std::function<Status(Metric metric, const std::vector<Pattern>& probe,
                       std::vector<double>* values)>
      phase3_count;
};

JobResult RunJob(const JobSpec& spec, const std::string& checkpoint_path,
                 const runtime::RunControl* run, const RunJobHooks& hooks);

}  // namespace serve
}  // namespace nmine

#endif  // NMINE_SERVE_JOB_H_
