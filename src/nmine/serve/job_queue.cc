#include "nmine/serve/job_queue.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace nmine {
namespace serve {
namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

BoundedFairQueue::BoundedFairQueue(size_t capacity,
                                   std::function<int64_t()> now_us)
    : capacity_(capacity),
      now_us_(now_us ? std::move(now_us) : SteadyNowUs) {}

bool BoundedFairQueue::PushLocked(const std::string& client, uint64_t id) {
  std::deque<uint64_t>& fifo = clients_[client];
  if (fifo.empty() &&
      std::find(rotation_.begin(), rotation_.end(), client) ==
          rotation_.end()) {
    rotation_.push_back(client);
  }
  fifo.push_back(id);
  ++size_;
  return true;
}

bool BoundedFairQueue::TryPush(const std::string& client, uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (size_ >= capacity_) return false;
    PushLocked(client, id);
  }
  cv_.notify_one();
  return true;
}

void BoundedFairQueue::PushRecovered(const std::string& client, uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PushLocked(client, id);
  }
  cv_.notify_one();
}

bool BoundedFairQueue::Pop(uint64_t* id) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return size_ > 0 || stopped_; });
  if (size_ == 0) return false;

  if (next_ >= rotation_.size()) next_ = 0;
  const std::string client = rotation_[next_];
  std::deque<uint64_t>& fifo = clients_[client];
  *id = fifo.front();
  fifo.pop_front();
  --size_;
  pop_times_us_.push_back(now_us_());
  if (pop_times_us_.size() > kDrainWindow) pop_times_us_.pop_front();
  if (fifo.empty()) {
    // Drop the drained client from the rotation. erase() shifts the next
    // client into this slot, so the cursor is NOT advanced — otherwise the
    // shifted client would be skipped a turn.
    clients_.erase(client);
    rotation_.erase(rotation_.begin() + static_cast<ptrdiff_t>(next_));
  } else {
    ++next_;
  }
  return true;
}

void BoundedFairQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
}

size_t BoundedFairQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

double BoundedFairQueue::RetryAfterS(double fallback_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pop_times_us_.size() < 2) return fallback_s;
  const int64_t span_us = pop_times_us_.back() - pop_times_us_.front();
  const double intervals = static_cast<double>(pop_times_us_.size() - 1);
  // Mean seconds between pops over the window. A burst of instantaneous
  // pops (span 0) means the queue drains faster than we can measure —
  // the minimum clamp answers for it.
  const double mean_interval_s =
      static_cast<double>(span_us) / intervals / 1e6;
  const double estimate_s = static_cast<double>(size_) * mean_interval_s;
  return std::clamp(estimate_s, kMinRetryAfterS, kMaxRetryAfterS);
}

}  // namespace serve
}  // namespace nmine
