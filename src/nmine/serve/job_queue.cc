#include "nmine/serve/job_queue.h"

#include <algorithm>

namespace nmine {
namespace serve {

bool BoundedFairQueue::PushLocked(const std::string& client, uint64_t id) {
  std::deque<uint64_t>& fifo = clients_[client];
  if (fifo.empty() &&
      std::find(rotation_.begin(), rotation_.end(), client) ==
          rotation_.end()) {
    rotation_.push_back(client);
  }
  fifo.push_back(id);
  ++size_;
  return true;
}

bool BoundedFairQueue::TryPush(const std::string& client, uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (size_ >= capacity_) return false;
    PushLocked(client, id);
  }
  cv_.notify_one();
  return true;
}

void BoundedFairQueue::PushRecovered(const std::string& client, uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PushLocked(client, id);
  }
  cv_.notify_one();
}

bool BoundedFairQueue::Pop(uint64_t* id) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return size_ > 0 || stopped_; });
  if (size_ == 0) return false;

  if (next_ >= rotation_.size()) next_ = 0;
  const std::string client = rotation_[next_];
  std::deque<uint64_t>& fifo = clients_[client];
  *id = fifo.front();
  fifo.pop_front();
  --size_;
  if (fifo.empty()) {
    // Drop the drained client from the rotation. erase() shifts the next
    // client into this slot, so the cursor is NOT advanced — otherwise the
    // shifted client would be skipped a turn.
    clients_.erase(client);
    rotation_.erase(rotation_.begin() + static_cast<ptrdiff_t>(next_));
  } else {
    ++next_;
  }
  return true;
}

void BoundedFairQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped_ = true;
  }
  cv_.notify_all();
}

size_t BoundedFairQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

}  // namespace serve
}  // namespace nmine
