#include "nmine/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "nmine/exec/thread_pool.h"
#include "nmine/net/status_server.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/runtime/checkpoint_io.h"

namespace nmine {
namespace serve {
namespace {

/// Process-wide pointer behind the /jobsz endpoint. A leaked mutex (the
/// endpoint handler outlives every server) guards it; Start publishes,
/// Shutdown retracts before any member state is torn down.
std::mutex& ActiveServerMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

MiningServer*& ActiveServer() {
  static MiningServer* server = nullptr;
  return server;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void SendAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w <= 0) return;
    done += static_cast<size_t>(w);
  }
}

bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed;
}

}  // namespace

MiningServer::~MiningServer() { Stop(); }

std::string MiningServer::CheckpointPathFor(uint64_t id) const {
  return (std::filesystem::path(options_.state_dir) /
          ("job-" + std::to_string(id) + ".ckpt"))
      .string();
}

bool MiningServer::Start(const Options& options, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "mining server already running";
    return false;
  }
  if (options.state_dir.empty()) {
    if (error != nullptr) *error = "mining server needs a state_dir";
    return false;
  }
  options_ = options;
  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);

  // Recover the board from the journal. Queued jobs (including the ones a
  // crash or drain interrupted mid-run) are re-admitted, bypassing the
  // admission bound: they were already accepted once.
  jobs_.clear();
  dedup_.clear();
  journal_ = JobJournal::Open(options_.state_dir, &jobs_, &next_id_, error);
  if (journal_ == nullptr) return false;

  queue_ = std::make_unique<BoundedFairQueue>(options_.queue_capacity);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  size_t recovered_queued = 0;
  for (auto& [id, job] : jobs_) {
    job.checkpoint_path = CheckpointPathFor(id);
    if (!job.tag.empty()) dedup_[{job.client, job.tag}] = id;
    if (job.state == JobState::kQueued) {
      queue_->PushRecovered(job.client, id);
      ++recovered_queued;
    }
  }
  if (recovered_queued > 0) {
    reg.GetCounter("serve.jobs.recovered")
        .Add(static_cast<int64_t>(recovered_queued));
  }
  reg.GetGauge("serve.queue.depth")
      .Set(static_cast<double>(queue_->size()));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) {
      *error = "bad bind address '" + options.bind_address + "'";
    }
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(" + options.bind_address + ":" +
               std::to_string(options.port) +
               "): " + std::string(strerror(errno));
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(fd);
    return false;
  }
  // Same non-blocking + poll() discipline as net::StatusServer: a blocked
  // accept() is not woken by close() on Linux.
  int fd_flags = ::fcntl(fd, F_GETFL, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFL, fd_flags | O_NONBLOCK);
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options.port;
  }
  listen_fd_ = fd;

  {
    std::lock_guard<std::mutex> lock(accept_done_mutex_);
    accept_done_ = false;
  }
  running_.store(true, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lock(ActiveServerMutex());
    ActiveServer() = this;
  }
  static bool jobsz_registered = [] {
    net::StatusServer::RegisterEndpoint("/jobsz", [] {
      std::lock_guard<std::mutex> lock(ActiveServerMutex());
      MiningServer* server = ActiveServer();
      if (server == nullptr) {
        return std::string("{\"error\": \"no mining server running\"}\n");
      }
      return server->JobszJson();
    });
    return true;
  }();
  (void)jobsz_registered;

  // One reserved pool worker for the accept loop, one per executor: a
  // serving process must never let its service loops starve (or be
  // starved by) the scan shards of the jobs it runs.
  exec::ThreadPool& pool = exec::ThreadPool::Shared();
  pool.ReserveWorker();
  pool.Submit([this] { AcceptLoop(); });
  executors_live_.store(static_cast<int>(options_.max_running),
                        std::memory_order_release);
  for (size_t i = 0; i < options_.max_running; ++i) {
    pool.ReserveWorker();
    pool.Submit([this] { ExecutorLoop(); });
  }

  NMINE_LOG(kInfo, "serve")
      .Msg("mining server listening")
      .Str("address", options_.bind_address)
      .Num("port", static_cast<int64_t>(port_))
      .Str("state_dir", options_.state_dir)
      .Num("recovered_jobs", static_cast<int64_t>(jobs_.size()))
      .Num("recovered_queued", static_cast<int64_t>(recovered_queued));
  return true;
}

void MiningServer::Drain() { Shutdown(/*graceful=*/true); }

void MiningServer::Stop() { Shutdown(/*graceful=*/false); }

void MiningServer::Shutdown(bool graceful) {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (graceful) draining_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);

  // Cancel in-flight jobs cooperatively: the miners observe the token at
  // their next boundary, flush their RunCheckpoints, and return
  // kCancelled, which RunOne turns into "back to queued" (graceful) or
  // leaves un-journaled (abrupt — the journal then looks exactly like a
  // SIGKILL's).
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    for (auto& [id, job] : jobs_) {
      if (job.state == JobState::kRunning) job.run_control.RequestCancel();
    }
    jobs_cv_.notify_all();
  }

  queue_->Stop();
  {
    std::unique_lock<std::mutex> lock(exec_done_mutex_);
    exec_done_cv_.wait(lock, [this] {
      return executors_live_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::unique_lock<std::mutex> lock(accept_done_mutex_);
    accept_done_cv_.wait(lock, [this] { return accept_done_; });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (std::thread& t : connection_threads_) {
      if (t.joinable()) t.join();
    }
    connection_threads_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(ActiveServerMutex());
    if (ActiveServer() == this) ActiveServer() = nullptr;
  }
  NMINE_LOG(kInfo, "serve")
      .Msg(graceful ? "mining server drained" : "mining server stopped")
      .Num("jobs_tracked", static_cast<int64_t>(jobs_.size()));
}

void MiningServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, client] { ConnectionLoop(client); });
  }
  std::lock_guard<std::mutex> lock(accept_done_mutex_);
  accept_done_ = true;
  accept_done_cv_.notify_all();
}

void MiningServer::ConnectionLoop(int fd) {
  // Short receive timeout so the loop can observe the stopping flag; a
  // connection idles in 100ms poll steps, it is never parked in a
  // blocking recv the shutdown cannot reach.
  timeval timeout;
  timeout.tv_sec = 0;
  timeout.tv_usec = 100 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r == 0) break;  // peer closed
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(r));
    if (buffer.size() > (1u << 20)) {
      SendAll(fd, ErrorResponse("INVALID_ARGUMENT",
                                "request line exceeds 1 MiB"));
      break;
    }
    size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty() || line == "\r") continue;
      std::string parse_error;
      std::optional<Request> request = ParseRequest(line, &parse_error);
      SendAll(fd, request.has_value()
                      ? HandleRequest(*request)
                      : ErrorResponse("INVALID_ARGUMENT", parse_error));
    }
  }
  ::close(fd);
}

std::string MiningServer::HandleRequest(const Request& request) {
  if (request.op == "ping") return OkResponse();
  if (request.op == "submit") return HandleSubmit(request);
  if (request.op == "jobs") {
    std::string board = JobszJson();
    if (!board.empty() && board.back() == '\n') board.pop_back();
    return OkResponse(", \"board\": " + board);
  }
  // status / wait
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(request.job_id);
  if (it == jobs_.end()) {
    return ErrorResponse(
        "NOT_FOUND", "no job " + std::to_string(request.job_id));
  }
  if (request.op == "wait") {
    // Re-find on every wake: the failed-journal path of a concurrent
    // submit may erase entries, which would invalidate a held iterator.
    jobs_cv_.wait(lock, [&] {
      auto i = jobs_.find(request.job_id);
      return i == jobs_.end() || IsTerminal(i->second.state) ||
             stopping_.load(std::memory_order_acquire);
    });
    it = jobs_.find(request.job_id);
    if (it == jobs_.end()) {
      return ErrorResponse(
          "NOT_FOUND", "no job " + std::to_string(request.job_id));
    }
    if (!IsTerminal(it->second.state)) {
      return ErrorResponse("UNAVAILABLE",
                           "server stopping before job " +
                               std::to_string(request.job_id) +
                               " finished; it resumes after restart",
                           options_.shed_retry_after_s);
    }
  }
  return StatusResponseLocked(it->second);
}

std::string MiningServer::HandleSubmit(const Request& request) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (stopping_.load(std::memory_order_acquire) ||
      draining_.load(std::memory_order_acquire)) {
    return ErrorResponse("UNAVAILABLE",
                         "server is draining; resubmit after restart",
                         options_.shed_retry_after_s);
  }

  // submit_mutex_ serializes capacity-check -> journal -> enqueue: the
  // executor must not be able to pop (let alone finish) a job whose
  // submit record is not durable yet, or a crash could replay its
  // lifecycle events before its submit line.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);

  if (!request.tag.empty()) {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto dup = dedup_.find({request.client, request.tag});
    if (dup != dedup_.end()) {
      // Idempotent resubmit (the client lost our ack): same job, no new
      // admission, no second run.
      return OkResponse(", \"id\": " + std::to_string(dup->second) +
                        ", \"deduped\": true");
    }
  }

  if (queue_->size() >= options_.queue_capacity) {
    reg.GetCounter("serve.jobs.shed").Increment();
    return ErrorResponse(
        "RESOURCE_EXHAUSTED",
        "admission queue full (" + std::to_string(options_.queue_capacity) +
            " queued jobs); retry later",
        options_.shed_retry_after_s);
  }

  uint64_t id;
  const Job* new_job = nullptr;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    id = next_id_++;
    Job& job = jobs_[id];
    job.id = id;
    job.client = request.client;
    job.tag = request.tag;
    job.spec = *request.spec;
    job.state = JobState::kQueued;
    job.submit_us = NowMicros();
    job.checkpoint_path = CheckpointPathFor(id);
    if (!request.tag.empty()) dedup_[{request.client, request.tag}] = id;
    new_job = &job;  // map nodes are address-stable; only submits erase
  }

  // Journal BEFORE enqueue and BEFORE the ok goes out. A crash right here
  // means the client never saw ok and resubmits; the idempotency tag
  // dedups against the journaled record if it did land.
  Status journaled = journal_->AppendSubmit(*new_job);
  if (!journaled.ok()) {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(id);
    if (!request.tag.empty()) dedup_.erase({request.client, request.tag});
    return ErrorResponse("UNAVAILABLE",
                         "cannot journal submit: " + journaled.message());
  }

  queue_->PushRecovered(request.client, id);  // capacity checked above
  reg.GetCounter("serve.jobs.admitted").Increment();
  reg.GetGauge("serve.queue.depth").Set(static_cast<double>(queue_->size()));
  return OkResponse(", \"id\": " + std::to_string(id));
}

void MiningServer::ExecutorLoop() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  uint64_t id;
  while (queue_->Pop(&id)) {
    reg.GetGauge("serve.queue.depth").Set(static_cast<double>(queue_->size()));
    if (stopping_.load(std::memory_order_acquire)) continue;
    RunOne(id);
  }
  if (executors_live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(exec_done_mutex_);
    exec_done_cv_.notify_all();
  }
}

void MiningServer::RunOne(uint64_t id) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  JobSpec spec;
  std::string checkpoint_path;
  const runtime::RunControl* run = nullptr;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::kQueued) return;
    Job& job = it->second;
    job.state = JobState::kRunning;
    job.start_us = NowMicros();
    if (job.spec.deadline_s > 0.0) {
      job.run_control.SetDeadlineAfter(job.spec.deadline_s);
    }
    spec = job.spec;
    checkpoint_path = job.checkpoint_path;
    run = &job.run_control;
  }
  journal_->AppendState(id, JobState::kRunning);

  JobResult result = RunJob(spec, checkpoint_path, run);

  const bool interrupted =
      !result.ok && result.error_code == "CANCELLED" &&
      stopping_.load(std::memory_order_acquire);
  if (interrupted) {
    // Drain: journal the rewind so a restart re-admits the job; its
    // RunCheckpoint already holds the flushed progress. Abrupt Stop():
    // skip the journal write — the file must look SIGKILL-torn.
    if (draining_.load(std::memory_order_acquire)) {
      journal_->AppendState(id, JobState::kQueued);
      reg.GetCounter("serve.jobs.interrupted").Increment();
    }
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) it->second.state = JobState::kQueued;
    return;
  }

  // Terminal. Journal first, then publish: a waiter only ever sees a
  // result that survives a crash.
  journal_->AppendResult(id, result);
  reg.GetCounter(result.ok ? "serve.jobs.completed" : "serve.jobs.failed")
      .Increment();
  if (result.ok) {
    runtime::BestEffortRemoveFile(checkpoint_path, "serve");
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      Job& job = it->second;
      job.result = std::move(result);
      job.state = job.result.ok ? JobState::kDone : JobState::kFailed;
      job.finish_us = NowMicros();
    }
    jobs_cv_.notify_all();
  }
}

std::string MiningServer::StatusResponseLocked(const Job& job) const {
  std::string out = "{\"ok\": true, \"id\": ";
  obs::AppendJsonNumber(static_cast<double>(job.id), &out);
  out.append(", \"state\": ");
  obs::AppendJsonString(ToString(job.state), &out);
  if (IsTerminal(job.state)) {
    out.append(", \"result\": ");
    job.result.AppendJson(&out);
  }
  out.append("}\n");
  return out;
}

std::string MiningServer::JobszJson() {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  size_t counts[4] = {0, 0, 0, 0};
  for (const auto& [id, job] : jobs_) {
    counts[static_cast<int>(job.state)]++;
  }
  std::string out = "{\"version\": \"nmine.jobsz.v1\", \"queue_depth\": ";
  obs::AppendJsonNumber(static_cast<double>(queue_->size()), &out);
  out.append(", \"counts\": {\"queued\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[0]), &out);
  out.append(", \"running\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[1]), &out);
  out.append(", \"done\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[2]), &out);
  out.append(", \"failed\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[3]), &out);
  out.append("}, \"jobs\": [");
  bool first = true;
  for (const auto& [id, job] : jobs_) {
    if (!first) out.append(", ");
    first = false;
    out.append("{\"id\": ");
    obs::AppendJsonNumber(static_cast<double>(id), &out);
    out.append(", \"client\": ");
    obs::AppendJsonString(job.client, &out);
    out.append(", \"state\": ");
    obs::AppendJsonString(ToString(job.state), &out);
    out.append(", \"algorithm\": ");
    obs::AppendJsonString(job.spec.algorithm, &out);
    out.append(", \"submit_us\": ");
    obs::AppendJsonNumber(static_cast<double>(job.submit_us), &out);
    if (IsTerminal(job.state)) {
      out.append(", \"ok\": ");
      out.append(job.result.ok ? "true" : "false");
      if (!job.result.ok) {
        out.append(", \"error\": ");
        obs::AppendJsonString(job.result.error_code, &out);
      }
      if (job.result.resumed_from_checkpoint) {
        out.append(", \"resumed\": true");
      }
    }
    out.append("}");
  }
  out.append("]}\n");
  return out;
}

}  // namespace serve
}  // namespace nmine
