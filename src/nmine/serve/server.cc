#include "nmine/serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "nmine/exec/thread_pool.h"
#include "nmine/net/status_server.h"
#include "nmine/obs/clock.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/trace.h"
#include "nmine/obs/trace_context.h"
#include "nmine/runtime/checkpoint_io.h"

namespace nmine {
namespace serve {
namespace {

/// Process-wide pointer behind the /jobsz endpoint. A leaked mutex (the
/// endpoint handler outlives every server) guards it; Start publishes,
/// Shutdown retracts before any member state is torn down.
std::mutex& ActiveServerMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

MiningServer*& ActiveServer() {
  static MiningServer* server = nullptr;
  return server;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void SendAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w <= 0) return;
    done += static_cast<size_t>(w);
  }
}

bool IsTerminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed;
}

/// Upper bucket edges (ms) shared by the lifecycle latency histograms:
/// sub-ms admission up to multi-minute mining runs.
std::vector<double> LatencyBoundsMs() {
  return {1,    2,    5,     10,    25,    50,    100,   250,
          500,  1000, 2500,  5000,  10000, 30000, 60000, 300000};
}

/// Emits one server lifecycle span into the global tracer with explicit
/// trace identity and explicit bounds on the trace clock (no-op while the
/// tracer is disabled). Durations are clamped non-negative.
void EmitLifecycleSpan(const char* name, const Job& job, uint64_t span_id,
                       uint64_t parent_span_id, int64_t ts_us,
                       int64_t dur_us) {
  obs::TraceEvent e;
  e.name = name;
  e.category = "serve";
  e.ts_us = ts_us;
  e.dur_us = dur_us < 0 ? 0 : dur_us;
  e.trace_hi = job.trace_hi;
  e.trace_lo = job.trace_lo;
  e.span_id = span_id;
  e.parent_span_id = parent_span_id;
  e.args.emplace_back("job_id", std::to_string(job.id));
  if (!job.client.empty()) e.args.emplace_back("client", job.client);
  obs::Tracer::Global().AddComplete(std::move(e));
}

}  // namespace

MiningServer::~MiningServer() { Stop(); }

std::string MiningServer::CheckpointPathFor(uint64_t id) const {
  return (std::filesystem::path(options_.state_dir) /
          ("job-" + std::to_string(id) + ".ckpt"))
      .string();
}

bool MiningServer::Start(const Options& options, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "mining server already running";
    return false;
  }
  if (options.state_dir.empty()) {
    if (error != nullptr) *error = "mining server needs a state_dir";
    return false;
  }
  options_ = options;
  stopping_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);

  // Recover the board from the journal. Queued jobs (including the ones a
  // crash or drain interrupted mid-run) are re-admitted, bypassing the
  // admission bound: they were already accepted once.
  jobs_.clear();
  dedup_.clear();
  journal_ = JobJournal::Open(options_.state_dir, &jobs_, &next_id_, error);
  if (journal_ == nullptr) return false;

  if (options_.tracing) {
    if (options_.trace_buffer > 0) {
      obs::Tracer::Global().SetCapacity(options_.trace_buffer);
    }
    obs::Tracer::Global().Start();
  }

  queue_ = std::make_unique<BoundedFairQueue>(options_.queue_capacity);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  queue_wait_hist_ =
      &reg.GetHistogram("serve.job.queue_wait_ms", LatencyBoundsMs());
  run_hist_ = &reg.GetHistogram("serve.job.run_ms", LatencyBoundsMs());
  size_t recovered_queued = 0;
  for (auto& [id, job] : jobs_) {
    job.checkpoint_path = CheckpointPathFor(id);
    if (!job.tag.empty()) dedup_[{job.client, job.tag}] = id;
    // Journals written before tracing existed have no trace id; mint one
    // so every live job stays traceable across the restart.
    if ((job.trace_hi | job.trace_lo) == 0) {
      obs::TraceContext minted = obs::MintTraceContext();
      job.trace_hi = minted.trace_hi;
      job.trace_lo = minted.trace_lo;
    }
    if (job.state == JobState::kQueued) {
      job.root_span_id = obs::NextSpanId();
      job.submit_tus = obs::SinceEpochUs();
      queue_->PushRecovered(job.client, id);
      ++recovered_queued;
    }
  }
  if (recovered_queued > 0) {
    reg.GetCounter("serve.jobs.recovered")
        .Add(static_cast<int64_t>(recovered_queued));
  }
  reg.GetGauge("serve.queue.depth")
      .Set(static_cast<double>(queue_->size()));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) {
      *error = "bad bind address '" + options.bind_address + "'";
    }
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(" + options.bind_address + ":" +
               std::to_string(options.port) +
               "): " + std::string(strerror(errno));
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(fd);
    return false;
  }
  // Same non-blocking + poll() discipline as net::StatusServer: a blocked
  // accept() is not woken by close() on Linux.
  int fd_flags = ::fcntl(fd, F_GETFL, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFL, fd_flags | O_NONBLOCK);
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options.port;
  }
  listen_fd_ = fd;

  {
    std::lock_guard<std::mutex> lock(accept_done_mutex_);
    accept_done_ = false;
  }
  running_.store(true, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lock(ActiveServerMutex());
    ActiveServer() = this;
  }
  static bool jobsz_registered = [] {
    net::StatusServer::RegisterEndpoint("/jobsz", [] {
      std::lock_guard<std::mutex> lock(ActiveServerMutex());
      MiningServer* server = ActiveServer();
      if (server == nullptr) {
        return std::string("{\"error\": \"no mining server running\"}\n");
      }
      return server->JobszJson();
    });
    net::StatusServer::RegisterQueryEndpoint(
        "/tracez", [](const std::string& query) {
          std::lock_guard<std::mutex> lock(ActiveServerMutex());
          MiningServer* server = ActiveServer();
          if (server == nullptr) {
            return std::string(
                "{\"error\": \"no mining server running\"}\n");
          }
          return server->TracezJson(query);
        });
    net::StatusServer::RegisterHealthSignal(
        "serve.queue", [](std::vector<std::string>* reasons) {
          std::lock_guard<std::mutex> lock(ActiveServerMutex());
          MiningServer* server = ActiveServer();
          if (server == nullptr) return std::string();
          return server->HealthQueueMember(reasons);
        });
    return true;
  }();
  (void)jobsz_registered;

  // One reserved pool worker for the accept loop, one per executor: a
  // serving process must never let its service loops starve (or be
  // starved by) the scan shards of the jobs it runs.
  exec::ThreadPool& pool = exec::ThreadPool::Shared();
  pool.ReserveWorker();
  pool.Submit([this] { AcceptLoop(); });
  executors_live_.store(static_cast<int>(options_.max_running),
                        std::memory_order_release);
  for (size_t i = 0; i < options_.max_running; ++i) {
    pool.ReserveWorker();
    pool.Submit([this] { ExecutorLoop(); });
  }

  NMINE_LOG(kInfo, "serve")
      .Msg("mining server listening")
      .Str("address", options_.bind_address)
      .Num("port", static_cast<int64_t>(port_))
      .Str("state_dir", options_.state_dir)
      .Num("recovered_jobs", static_cast<int64_t>(jobs_.size()))
      .Num("recovered_queued", static_cast<int64_t>(recovered_queued));
  return true;
}

void MiningServer::Drain() { Shutdown(/*graceful=*/true); }

void MiningServer::Stop() { Shutdown(/*graceful=*/false); }

void MiningServer::Shutdown(bool graceful) {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (graceful) draining_.store(true, std::memory_order_release);
  stopping_.store(true, std::memory_order_release);

  // Cancel in-flight jobs cooperatively: the miners observe the token at
  // their next boundary, flush their RunCheckpoints, and return
  // kCancelled, which RunOne turns into "back to queued" (graceful) or
  // leaves un-journaled (abrupt — the journal then looks exactly like a
  // SIGKILL's).
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    for (auto& [id, job] : jobs_) {
      if (job.state == JobState::kRunning) {
        job.run_control.RequestCancel();
        EmitLifecycleSpan("job.cancel_requested", job, obs::NextSpanId(),
                          job.root_span_id, obs::SinceEpochUs(), 0);
      }
    }
    jobs_cv_.notify_all();
  }

  queue_->Stop();
  {
    std::unique_lock<std::mutex> lock(exec_done_mutex_);
    exec_done_cv_.wait(lock, [this] {
      return executors_live_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::unique_lock<std::mutex> lock(accept_done_mutex_);
    accept_done_cv_.wait(lock, [this] { return accept_done_; });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (std::thread& t : connection_threads_) {
      if (t.joinable()) t.join();
    }
    connection_threads_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(ActiveServerMutex());
    if (ActiveServer() == this) ActiveServer() = nullptr;
  }
  NMINE_LOG(kInfo, "serve")
      .Msg(graceful ? "mining server drained" : "mining server stopped")
      .Num("jobs_tracked", static_cast<int64_t>(jobs_.size()));
}

void MiningServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, client] { ConnectionLoop(client); });
  }
  std::lock_guard<std::mutex> lock(accept_done_mutex_);
  accept_done_ = true;
  accept_done_cv_.notify_all();
}

void MiningServer::ConnectionLoop(int fd) {
  // Short receive timeout so the loop can observe the stopping flag; a
  // connection idles in 100ms poll steps, it is never parked in a
  // blocking recv the shutdown cannot reach.
  timeval timeout;
  timeout.tv_sec = 0;
  timeout.tv_usec = 100 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r == 0) break;  // peer closed
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(r));
    if (buffer.size() > (1u << 20)) {
      SendAll(fd, ErrorResponse("INVALID_ARGUMENT",
                                "request line exceeds 1 MiB"));
      break;
    }
    size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty() || line == "\r") continue;
      std::string parse_error;
      std::string parse_error_code;
      std::optional<Request> request =
          ParseRequest(line, &parse_error, &parse_error_code);
      SendAll(fd, request.has_value()
                      ? HandleRequest(*request)
                      : ErrorResponse(parse_error_code, parse_error));
    }
  }
  ::close(fd);
}

std::string MiningServer::HandleRequest(const Request& request) {
  if (request.op == "ping") return OkResponse();
  if (request.op == "submit") return HandleSubmit(request);
  if (request.op == "jobs") {
    std::string board = JobszJson();
    if (!board.empty() && board.back() == '\n') board.pop_back();
    return OkResponse(", \"board\": " + board);
  }
  // status / wait / trace
  std::unique_lock<std::mutex> lock(jobs_mutex_);
  auto it = jobs_.find(request.job_id);
  if (it == jobs_.end()) {
    return ErrorResponse(
        "NOT_FOUND", "no job " + std::to_string(request.job_id));
  }
  if (request.op == "trace") {
    const Job& job = it->second;
    if (!options_.tracing) {
      return ErrorResponse("FAILED_PRECONDITION",
                           "server runs without --trace; no spans were "
                           "captured for job " +
                               std::to_string(request.job_id));
    }
    // The per-trace Chrome JSON travels as an escaped string member so
    // the response stays one line-JSON object like every other reply.
    std::string trace_json = obs::Tracer::Global().TraceJson(
        job.trace_hi, job.trace_lo);
    std::string extra = ", \"id\": " + std::to_string(job.id) +
                        ", \"trace_id\": \"" +
                        obs::FormatTraceId(job.trace_hi, job.trace_lo) +
                        "\", \"trace_json\": ";
    obs::AppendJsonString(trace_json, &extra);
    return OkResponse(extra);
  }
  if (request.op == "wait") {
    // Re-find on every wake: the failed-journal path of a concurrent
    // submit may erase entries, which would invalidate a held iterator.
    jobs_cv_.wait(lock, [&] {
      auto i = jobs_.find(request.job_id);
      return i == jobs_.end() || IsTerminal(i->second.state) ||
             stopping_.load(std::memory_order_acquire);
    });
    it = jobs_.find(request.job_id);
    if (it == jobs_.end()) {
      return ErrorResponse(
          "NOT_FOUND", "no job " + std::to_string(request.job_id));
    }
    if (!IsTerminal(it->second.state)) {
      return ErrorResponse("UNAVAILABLE",
                           "server stopping before job " +
                               std::to_string(request.job_id) +
                               " finished; it resumes after restart",
                           options_.shed_retry_after_s);
    }
  }
  return StatusResponseLocked(it->second);
}

std::string MiningServer::HandleSubmit(const Request& request) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (stopping_.load(std::memory_order_acquire) ||
      draining_.load(std::memory_order_acquire)) {
    return ErrorResponse("UNAVAILABLE",
                         "server is draining; resubmit after restart",
                         options_.shed_retry_after_s);
  }

  // submit_mutex_ serializes capacity-check -> journal -> enqueue: the
  // executor must not be able to pop (let alone finish) a job whose
  // submit record is not durable yet, or a crash could replay its
  // lifecycle events before its submit line.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);

  if (!request.tag.empty()) {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto dup = dedup_.find({request.client, request.tag});
    if (dup != dedup_.end()) {
      // Idempotent resubmit (the client lost our ack): same job, no new
      // admission, no second run. The ack echoes the ORIGINAL trace id —
      // the duplicate submit never opened a new trace.
      auto it = jobs_.find(dup->second);
      std::string trace_member;
      if (it != jobs_.end()) {
        ++it->second.resubmits;
        trace_member = ", \"trace_id\": \"" +
                       obs::FormatTraceId(it->second.trace_hi,
                                          it->second.trace_lo) +
                       "\"";
      }
      return OkResponse(", \"id\": " + std::to_string(dup->second) +
                        ", \"deduped\": true" + trace_member);
    }
  }

  if (queue_->size() >= options_.queue_capacity) {
    reg.GetCounter("serve.jobs.shed").Increment();
    // The hint tracks load: current depth over the recent drain rate, so
    // a shed client behind a deep slow queue waits longer than one shed
    // during a brief burst (options_.shed_retry_after_s is only the
    // cold-start fallback).
    return ErrorResponse(
        "RESOURCE_EXHAUSTED",
        "admission queue full (" + std::to_string(options_.queue_capacity) +
            " queued jobs); retry later",
        queue_->RetryAfterS(options_.shed_retry_after_s));
  }

  // Bind the trace identity at admission: the client's minted id when it
  // sent one, a server-minted id otherwise — either way the job is
  // traceable from its first journal record on.
  obs::TraceContext trace;
  if (!request.trace_id.empty()) {
    obs::ParseTraceId(request.trace_id, &trace.trace_hi, &trace.trace_lo);
  } else {
    trace = obs::MintTraceContext();
  }

  uint64_t id;
  const Job* new_job = nullptr;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    id = next_id_++;
    Job& job = jobs_[id];
    job.id = id;
    job.client = request.client;
    job.tag = request.tag;
    job.spec = *request.spec;
    job.state = JobState::kQueued;
    job.submit_us = NowMicros();
    job.trace_hi = trace.trace_hi;
    job.trace_lo = trace.trace_lo;
    job.root_span_id = obs::NextSpanId();
    job.submit_tus = obs::SinceEpochUs();
    job.checkpoint_path = CheckpointPathFor(id);
    if (!request.tag.empty()) dedup_[{request.client, request.tag}] = id;
    new_job = &job;  // map nodes are address-stable; only submits erase
  }

  // Journal BEFORE enqueue and BEFORE the ok goes out. A crash right here
  // means the client never saw ok and resubmits; the idempotency tag
  // dedups against the journaled record if it did land.
  Status journaled = journal_->AppendSubmit(*new_job);
  if (!journaled.ok()) {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(id);
    if (!request.tag.empty()) dedup_.erase({request.client, request.tag});
    return ErrorResponse("UNAVAILABLE",
                         "cannot journal submit: " + journaled.message());
  }

  queue_->PushRecovered(request.client, id);  // capacity checked above
  reg.GetCounter("serve.jobs.admitted").Increment();
  reg.GetGauge("serve.queue.depth").Set(static_cast<double>(queue_->size()));
  return OkResponse(", \"id\": " + std::to_string(id) +
                    ", \"trace_id\": \"" +
                    obs::FormatTraceId(trace.trace_hi, trace.trace_lo) +
                    "\"");
}

void MiningServer::ExecutorLoop() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  uint64_t id;
  while (queue_->Pop(&id)) {
    reg.GetGauge("serve.queue.depth").Set(static_cast<double>(queue_->size()));
    if (stopping_.load(std::memory_order_acquire)) continue;
    RunOne(id);
  }
  if (executors_live_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(exec_done_mutex_);
    exec_done_cv_.notify_all();
  }
}

void MiningServer::RunOne(uint64_t id) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  JobSpec spec;
  std::string checkpoint_path;
  const runtime::RunControl* run = nullptr;
  obs::TraceContext trace;
  uint64_t root_span_id = 0;
  int64_t start_tus = 0;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::kQueued) return;
    Job& job = it->second;
    job.state = JobState::kRunning;
    job.start_us = NowMicros();
    job.start_tus = obs::SinceEpochUs();
    if (job.spec.deadline_s > 0.0) {
      job.run_control.SetDeadlineAfter(job.spec.deadline_s);
    }
    spec = job.spec;
    checkpoint_path = job.checkpoint_path;
    run = &job.run_control;
    trace.trace_hi = job.trace_hi;
    trace.trace_lo = job.trace_lo;
    root_span_id = job.root_span_id;
    start_tus = job.start_tus;
    // queued -> admitted: the queue-wait edge closes now; emit it
    // immediately so a running job's trace already shows its wait.
    queue_wait_hist_->Observe(
        static_cast<double>(job.start_tus - job.submit_tus) / 1000.0);
    EmitLifecycleSpan("job.queue_wait", job, obs::NextSpanId(),
                      job.root_span_id, job.submit_tus,
                      job.start_tus - job.submit_tus);
  }
  journal_->AppendState(id, JobState::kRunning);

  // The run span parents every miner span: installing its context here
  // means each TraceSpan the run opens (and every pool task it submits)
  // carries this job's trace id with the run span as ancestor.
  trace.span_id = obs::NextSpanId();
  const uint64_t run_span_id = trace.span_id;
  JobResult result;
  {
    obs::ScopedTraceContext scope(trace);
    NMINE_LOG(kDebug, "serve")
        .Msg("job running")
        .Num("id", static_cast<int64_t>(id));
    result = RunJob(spec, checkpoint_path, run);
  }
  const int64_t finish_tus = obs::SinceEpochUs();

  const bool interrupted =
      !result.ok && result.error_code == "CANCELLED" &&
      stopping_.load(std::memory_order_acquire);
  if (interrupted) {
    // Drain: journal the rewind so a restart re-admits the job; its
    // RunCheckpoint already holds the flushed progress. Abrupt Stop():
    // skip the journal write — the file must look SIGKILL-torn.
    if (draining_.load(std::memory_order_acquire)) {
      journal_->AppendState(id, JobState::kQueued);
      reg.GetCounter("serve.jobs.interrupted").Increment();
    }
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      Job& job = it->second;
      job.state = JobState::kQueued;
      ++job.requeues;
      EmitLifecycleSpan("job.requeued", job, obs::NextSpanId(),
                        job.root_span_id, finish_tus, 0);
    }
    return;
  }

  // Terminal. Journal first, then publish: a waiter only ever sees a
  // result that survives a crash.
  journal_->AppendResult(id, result);
  reg.GetCounter(result.ok ? "serve.jobs.completed" : "serve.jobs.failed")
      .Increment();
  run_hist_->Observe(static_cast<double>(finish_tus - start_tus) / 1000.0);
  if (result.ok) {
    runtime::BestEffortRemoveFile(checkpoint_path, "serve");
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      Job& job = it->second;
      job.result = std::move(result);
      job.state = job.result.ok ? JobState::kDone : JobState::kFailed;
      job.finish_us = NowMicros();
      job.finish_tus = finish_tus;
      // running -> done/failed: the run span, then the root lifecycle
      // span spanning the job's whole queued+running life.
      EmitLifecycleSpan("job.run", job, run_span_id, job.root_span_id,
                        job.start_tus, finish_tus - job.start_tus);
      EmitLifecycleSpan("job", job, job.root_span_id, 0, job.submit_tus,
                        finish_tus - job.submit_tus);
    }
    jobs_cv_.notify_all();
  }
}

std::string MiningServer::StatusResponseLocked(const Job& job) const {
  std::string out = "{\"ok\": true, \"id\": ";
  obs::AppendJsonNumber(static_cast<double>(job.id), &out);
  out.append(", \"state\": ");
  obs::AppendJsonString(ToString(job.state), &out);
  out.append(", \"trace_id\": ");
  obs::AppendJsonString(obs::FormatTraceId(job.trace_hi, job.trace_lo),
                        &out);
  if (IsTerminal(job.state)) {
    out.append(", \"result\": ");
    job.result.AppendJson(&out);
  }
  out.append("}\n");
  return out;
}

int64_t MiningServer::OldestQueuedAgeMsLocked() const {
  const int64_t now_tus = obs::SinceEpochUs();
  int64_t oldest = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kQueued || job.submit_tus == 0) continue;
    oldest = std::max(oldest, (now_tus - job.submit_tus) / 1000);
  }
  return oldest;
}

namespace {

/// Milliseconds a completed run took, 0 when it never started (recovered
/// terminal jobs from old journals have no trace-clock timestamps).
int64_t RunMs(const Job& job) {
  if (job.start_tus == 0 || job.finish_tus == 0) return 0;
  return std::max<int64_t>(0, (job.finish_tus - job.start_tus) / 1000);
}

int64_t QueueWaitMs(const Job& job) {
  if (job.submit_tus == 0 || job.start_tus == 0) return 0;
  return std::max<int64_t>(0, (job.start_tus - job.submit_tus) / 1000);
}

void AppendLatencyBlock(const char* name, const obs::HistogramMetric* hist,
                        std::string* out) {
  out->push_back('"');
  out->append(name);
  out->append("\": {\"count\": ");
  obs::AppendJsonNumber(
      hist == nullptr ? 0.0 : static_cast<double>(hist->count()), out);
  out->append(", \"p50\": ");
  obs::AppendJsonNumber(hist == nullptr ? 0.0 : hist->Quantile(0.50), out);
  out->append(", \"p95\": ");
  obs::AppendJsonNumber(hist == nullptr ? 0.0 : hist->Quantile(0.95), out);
  out->append(", \"p99\": ");
  obs::AppendJsonNumber(hist == nullptr ? 0.0 : hist->Quantile(0.99), out);
  out->append(", \"max\": ");
  obs::AppendJsonNumber(hist == nullptr ? 0.0 : hist->max(), out);
  out->append("}");
}

}  // namespace

std::string MiningServer::JobszJson() {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  size_t counts[4] = {0, 0, 0, 0};
  for (const auto& [id, job] : jobs_) {
    counts[static_cast<int>(job.state)]++;
  }
  const int64_t oldest_queued_age_ms = OldestQueuedAgeMsLocked();
  // "Current max queue wait": the longest wait any job has experienced so
  // far — the worst completed wait, or the oldest still-queued job when
  // that is already longer.
  const double max_queue_wait_ms =
      std::max(queue_wait_hist_ == nullptr ? 0.0 : queue_wait_hist_->max(),
               static_cast<double>(oldest_queued_age_ms));

  std::string out = "{\"version\": \"nmine.jobsz.v1\", \"queue_depth\": ";
  obs::AppendJsonNumber(static_cast<double>(queue_->size()), &out);
  out.append(", \"oldest_queued_age_ms\": ");
  obs::AppendJsonNumber(static_cast<double>(oldest_queued_age_ms), &out);
  out.append(", \"max_queue_wait_ms\": ");
  obs::AppendJsonNumber(max_queue_wait_ms, &out);
  out.append(", \"counts\": {\"queued\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[0]), &out);
  out.append(", \"running\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[1]), &out);
  out.append(", \"done\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[2]), &out);
  out.append(", \"failed\": ");
  obs::AppendJsonNumber(static_cast<double>(counts[3]), &out);
  out.append("}, \"latency\": {");
  AppendLatencyBlock("queue_wait_ms", queue_wait_hist_, &out);
  out.append(", ");
  AppendLatencyBlock("run_ms", run_hist_, &out);
  out.append("}");

  // Slow-job exemplar table: the slowest completed runs, with the trace
  // ids to pull their full traces from /tracez.
  std::vector<const Job*> terminal;
  for (const auto& [id, job] : jobs_) {
    if (IsTerminal(job.state)) terminal.push_back(&job);
  }
  std::sort(terminal.begin(), terminal.end(), [](const Job* a, const Job* b) {
    return RunMs(*a) != RunMs(*b) ? RunMs(*a) > RunMs(*b) : a->id < b->id;
  });
  if (terminal.size() > 5) terminal.resize(5);
  out.append(", \"slowest\": [");
  for (size_t i = 0; i < terminal.size(); ++i) {
    const Job& job = *terminal[i];
    if (i > 0) out.append(", ");
    out.append("{\"id\": ");
    obs::AppendJsonNumber(static_cast<double>(job.id), &out);
    out.append(", \"trace_id\": ");
    obs::AppendJsonString(obs::FormatTraceId(job.trace_hi, job.trace_lo),
                          &out);
    out.append(", \"client\": ");
    obs::AppendJsonString(job.client, &out);
    out.append(", \"tag\": ");
    obs::AppendJsonString(job.tag, &out);
    out.append(", \"run_ms\": ");
    obs::AppendJsonNumber(static_cast<double>(RunMs(job)), &out);
    out.append(", \"queue_wait_ms\": ");
    obs::AppendJsonNumber(static_cast<double>(QueueWaitMs(job)), &out);
    out.append(", \"ok\": ");
    out.append(job.result.ok ? "true" : "false");
    out.append(", \"requeues\": ");
    obs::AppendJsonNumber(static_cast<double>(job.requeues), &out);
    out.append(", \"resubmits\": ");
    obs::AppendJsonNumber(static_cast<double>(job.resubmits), &out);
    out.append("}");
  }
  out.append("]");

  out.append(", \"jobs\": [");
  bool first = true;
  for (const auto& [id, job] : jobs_) {
    if (!first) out.append(", ");
    first = false;
    out.append("{\"id\": ");
    obs::AppendJsonNumber(static_cast<double>(id), &out);
    out.append(", \"client\": ");
    obs::AppendJsonString(job.client, &out);
    out.append(", \"state\": ");
    obs::AppendJsonString(ToString(job.state), &out);
    out.append(", \"trace_id\": ");
    obs::AppendJsonString(obs::FormatTraceId(job.trace_hi, job.trace_lo),
                          &out);
    out.append(", \"algorithm\": ");
    obs::AppendJsonString(job.spec.algorithm, &out);
    out.append(", \"submit_us\": ");
    obs::AppendJsonNumber(static_cast<double>(job.submit_us), &out);
    if (IsTerminal(job.state)) {
      out.append(", \"ok\": ");
      out.append(job.result.ok ? "true" : "false");
      if (!job.result.ok) {
        out.append(", \"error\": ");
        obs::AppendJsonString(job.result.error_code, &out);
      }
      if (job.result.resumed_from_checkpoint) {
        out.append(", \"resumed\": true");
      }
      out.append(", \"run_ms\": ");
      obs::AppendJsonNumber(static_cast<double>(RunMs(job)), &out);
      out.append(", \"queue_wait_ms\": ");
      obs::AppendJsonNumber(static_cast<double>(QueueWaitMs(job)), &out);
    }
    out.append("}");
  }
  out.append("]}\n");
  return out;
}

std::string MiningServer::TracezJson(const std::string& query) {
  // /tracez?id=<32 hex>: one trace as wall-clock-anchored Chrome JSON.
  if (query.rfind("id=", 0) == 0) {
    uint64_t hi = 0;
    uint64_t lo = 0;
    if (!obs::ParseTraceId(query.substr(3), &hi, &lo)) {
      return "{\"error\": \"id must be 32 hex digits\"}\n";
    }
    return obs::Tracer::Global().TraceJson(hi, lo) + "\n";
  }
  if (!query.empty()) {
    return "{\"error\": \"unknown query; use /tracez or /tracez?id=<32 "
           "hex>\"}\n";
  }

  // Listing: the most recent completed job traces, newest first, with a
  // per-category phase breakdown summed from the buffered span events.
  // (Job itself is pinned in the board map and not copyable; snapshot the
  // summary fields instead.)
  struct TraceRow {
    uint64_t job_id = 0;
    std::string client;
    std::string tag;
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    int64_t finish_tus = 0;
    int64_t queue_wait_ms = 0;
    int64_t run_ms = 0;
    int64_t requeues = 0;
    int64_t resubmits = 0;
    bool ok = false;
    bool resumed = false;
  };
  std::vector<TraceRow> recent;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    for (const auto& [id, job] : jobs_) {
      if (!IsTerminal(job.state)) continue;
      TraceRow row;
      row.job_id = job.id;
      row.client = job.client;
      row.tag = job.tag;
      row.trace_hi = job.trace_hi;
      row.trace_lo = job.trace_lo;
      row.finish_tus = job.finish_tus;
      row.queue_wait_ms = QueueWaitMs(job);
      row.run_ms = RunMs(job);
      row.requeues = job.requeues;
      row.resubmits = job.resubmits;
      row.ok = job.result.ok;
      row.resumed = job.result.resumed_from_checkpoint;
      recent.push_back(std::move(row));
    }
  }
  std::sort(recent.begin(), recent.end(),
            [](const TraceRow& a, const TraceRow& b) {
              return a.finish_tus != b.finish_tus ? a.finish_tus > b.finish_tus
                                                  : a.job_id > b.job_id;
            });
  if (recent.size() > 32) recent.resize(32);

  // One pass over the tracer buffer, binned by trace id then category.
  std::map<std::pair<uint64_t, uint64_t>, std::map<std::string, int64_t>>
      phase_us;
  for (const obs::TraceEvent& e : obs::Tracer::Global().Events()) {
    if ((e.trace_hi | e.trace_lo) == 0) continue;
    phase_us[{e.trace_hi, e.trace_lo}][e.category] += e.dur_us;
  }

  std::string out =
      "{\"version\": \"nmine.tracez.v1\", \"tracing\": ";
  out.append(options_.tracing ? "true" : "false");
  out.append(", \"traces\": [");
  for (size_t i = 0; i < recent.size(); ++i) {
    const TraceRow& job = recent[i];
    if (i > 0) out.append(", ");
    out.append("{\"trace_id\": ");
    obs::AppendJsonString(obs::FormatTraceId(job.trace_hi, job.trace_lo),
                          &out);
    out.append(", \"job_id\": ");
    obs::AppendJsonNumber(static_cast<double>(job.job_id), &out);
    out.append(", \"client\": ");
    obs::AppendJsonString(job.client, &out);
    out.append(", \"tag\": ");
    obs::AppendJsonString(job.tag, &out);
    out.append(", \"ok\": ");
    out.append(job.ok ? "true" : "false");
    out.append(", \"queue_wait_ms\": ");
    obs::AppendJsonNumber(static_cast<double>(job.queue_wait_ms), &out);
    out.append(", \"run_ms\": ");
    obs::AppendJsonNumber(static_cast<double>(job.run_ms), &out);
    if (job.resumed) out.append(", \"resumed\": true");
    out.append(", \"requeues\": ");
    obs::AppendJsonNumber(static_cast<double>(job.requeues), &out);
    out.append(", \"resubmits\": ");
    obs::AppendJsonNumber(static_cast<double>(job.resubmits), &out);
    out.append(", \"phases_ms\": {");
    bool first_phase = true;
    auto it = phase_us.find({job.trace_hi, job.trace_lo});
    if (it != phase_us.end()) {
      for (const auto& [category, us] : it->second) {
        if (!first_phase) out.append(", ");
        first_phase = false;
        obs::AppendJsonString(category, &out);
        out.append(": ");
        obs::AppendJsonNumber(static_cast<double>(us) / 1000.0, &out);
      }
    }
    out.append("}}");
  }
  out.append("]}\n");
  return out;
}

std::string MiningServer::HealthQueueMember(
    std::vector<std::string>* reasons) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const int64_t oldest_queued_age_ms = OldestQueuedAgeMsLocked();
  const double max_queue_wait_ms =
      std::max(queue_wait_hist_ == nullptr ? 0.0 : queue_wait_hist_->max(),
               static_cast<double>(oldest_queued_age_ms));
  // A job parked in the queue for minutes while executors exist means
  // admission has outrun execution — degrade so the balancer drains us.
  if (options_.max_running > 0 && oldest_queued_age_ms > 5 * 60 * 1000) {
    reasons->push_back("queue_stalled");
  }
  std::string out = "\"queue\": {\"depth\": ";
  obs::AppendJsonNumber(static_cast<double>(queue_->size()), &out);
  out.append(", \"oldest_queued_age_ms\": ");
  obs::AppendJsonNumber(static_cast<double>(oldest_queued_age_ms), &out);
  out.append(", \"max_queue_wait_ms\": ");
  obs::AppendJsonNumber(max_queue_wait_ms, &out);
  out.append("}");
  return out;
}

}  // namespace serve
}  // namespace nmine
