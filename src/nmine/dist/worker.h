#ifndef NMINE_DIST_WORKER_H_
#define NMINE_DIST_WORKER_H_

#include <cstdint>
#include <string>

#include "nmine/core/status.h"
#include "nmine/net/retry.h"
#include "nmine/runtime/run_control.h"

namespace nmine {
namespace dist {

/// One mining worker: connects to a coordinator, mirrors its counting
/// environment (database, compatibility matrix, metric — all named in the
/// hello response), and then polls for shard tasks. Each task is counted
/// one exec shard at a time with the exact serial kernel
/// (lattice::BatchCountKernel over DiskSequenceDatabase::ScanRange), and
/// every finished exec shard is reported as a cumulative progress frame —
/// the worker's checkpoint stream. A worker killed mid-task loses at most
/// one exec shard of work; its successor resumes from the last frame the
/// coordinator journaled.
///
/// The connection is expendable: every RPC failure tears it down and the
/// jittered net::ReconnectBackoff (shared with nmine_client) re-dials and
/// re-hellos. A typed FAILED_PRECONDITION from the coordinator means this
/// worker's view is stale (fenced epoch, superseded scan) — the task is
/// abandoned and the next poll starts fresh.
class DistWorker {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Worker identity: leases and /shardz attribute shards to this name.
    std::string name;
    /// Give up after this long without a successful (re)connect.
    double connect_timeout_s = 30.0;
    /// Artificial delay after every exec shard — drills use it to hold
    /// scans open long enough to kill processes mid-task.
    int64_t throttle_ms = 0;
    /// Cooperative stop (signal handlers / tests). May be null.
    const runtime::RunControl* run = nullptr;
    /// Reconnect backoff schedule.
    RetryPolicy reconnect = net::ReconnectPolicy();
  };

  DistWorker() = default;
  DistWorker(const DistWorker&) = delete;
  DistWorker& operator=(const DistWorker&) = delete;

  /// Runs until the coordinator says shutdown (Ok), the run control stops
  /// it (kCancelled), or the coordinator stays unreachable past
  /// connect_timeout_s (kUnavailable). Blocking.
  Status Run(const Options& options);

  /// Tasks fully processed (cumulative across reconnects).
  int64_t tasks_completed() const { return tasks_completed_; }

 private:
  int64_t tasks_completed_ = 0;
};

}  // namespace dist
}  // namespace nmine

#endif  // NMINE_DIST_WORKER_H_
