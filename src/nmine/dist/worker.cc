#include "nmine/dist/worker.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/matrix_io.h"
#include "nmine/core/metric.h"
#include "nmine/db/disk_database.h"
#include "nmine/dist/wire.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/obs/json_parse.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"

namespace nmine {
namespace dist {
namespace {

bool SendAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w <= 0) return false;
    done += static_cast<size_t>(w);
  }
  return true;
}

void SleepWithStop(int64_t ms, const runtime::RunControl* run) {
  const int64_t step_ms = 20;
  int64_t remaining = ms;
  while (remaining > 0 && !runtime::StopRequested(run)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(step_ms, remaining)));
    remaining -= step_ms;
  }
}

}  // namespace

/// Everything one live connection + hello establishes.
struct WorkerSession {
  int fd = -1;
  HelloInfo info;
  std::unique_ptr<DiskSequenceDatabase> db;
  std::optional<CompatibilityMatrix> matrix;  // set for metric == match
  Metric metric = Metric::kMatch;
  std::string buffer;

  ~WorkerSession() {
    if (fd >= 0) ::close(fd);
  }

  /// Sends one line and reads one response line. Unavailable on any
  /// socket failure or peer close (the caller reconnects); honors `run`.
  Status RoundTrip(const std::string& request, const runtime::RunControl* run,
                   obs::JsonValue* reply) {
    if (!SendAll(fd, request)) {
      return Status::Unavailable("send failed: " + std::string(strerror(errno)));
    }
    char chunk[4096];
    while (true) {
      size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        std::optional<obs::JsonValue> value = obs::ParseJson(line);
        if (!value.has_value() || !value->is_object()) {
          return Status::Unavailable("malformed response line");
        }
        *reply = std::move(*value);
        return Status::Ok();
      }
      Status rs = runtime::CheckRun(run);
      if (!rs.ok()) return rs;
      ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
      if (r == 0) return Status::Unavailable("coordinator closed connection");
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        return Status::Unavailable("recv failed: " +
                                   std::string(strerror(errno)));
      }
      buffer.append(chunk, static_cast<size_t>(r));
      if (buffer.size() > (8u << 20)) {
        return Status::Unavailable("response line exceeds 8 MiB");
      }
    }
  }
};

namespace {

/// Dials the coordinator and completes the hello + environment mirror.
/// Unavailable (reconnectable) on any socket or handshake failure;
/// InvalidArgument/DataLoss (fatal) when the environment cannot be
/// reproduced (bad db path, wrong file, unreadable matrix).
Status OpenSession(const DistWorker::Options& options,
                   std::unique_ptr<WorkerSession>* out) {
  auto session = std::make_unique<WorkerSession>();
  session->fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (session->fd < 0) {
    return Status::Unavailable("socket(): " + std::string(strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad coordinator host '" + options.host +
                                   "'");
  }
  if (::connect(session->fd, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Status::Unavailable("connect(" + options.host + ":" +
                               std::to_string(options.port) +
                               "): " + std::string(strerror(errno)));
  }
  // Short receive ticks so run-control stops are observed promptly.
  timeval timeout;
  timeout.tv_sec = 0;
  timeout.tv_usec = 200 * 1000;
  ::setsockopt(session->fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
               sizeof(timeout));
  int one = 1;
  ::setsockopt(session->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string hello = "{\"v\": " + std::to_string(kProtocolVersion) +
                      ", \"op\": \"hello\", \"worker\": ";
  obs::AppendJsonString(options.name, &hello);
  hello.append("}\n");
  obs::JsonValue reply;
  Status rt = session->RoundTrip(hello, options.run, &reply);
  if (!rt.ok()) return rt;
  std::optional<HelloInfo> info = ParseHelloResponse(reply);
  if (!info.has_value()) {
    const obs::JsonValue* message = reply.Get("message");
    return Status::Unavailable(
        "hello rejected: " +
        (message != nullptr && message->is_string() ? message->string_value
                                                    : std::string("?")));
  }
  session->info = *info;
  session->metric =
      info->metric == "support" ? Metric::kSupport : Metric::kMatch;

  // Mirror the coordinator's counting environment exactly — same database
  // open, same matrix resolution order as serve::RunJob.
  Status db_error;
  session->db = DiskSequenceDatabase::Open(info->db_path, &db_error);
  if (session->db == nullptr) {
    return Status::InvalidArgument("cannot open database '" + info->db_path +
                                   "': " + db_error.message());
  }
  if (session->db->NumSequences() != info->num_sequences) {
    return Status::FailedPrecondition(
        "database '" + info->db_path + "' has " +
        std::to_string(session->db->NumSequences()) +
        " sequences but the coordinator counted " +
        std::to_string(info->num_sequences) + " — different file?");
  }
  const size_t m = static_cast<size_t>(info->num_symbols);
  if (!info->matrix_path.empty()) {
    MatrixIoResult merr;
    session->matrix = ReadCompatibilityMatrixFile(info->matrix_path, &merr);
    if (!session->matrix.has_value()) {
      return Status::InvalidArgument(merr.message);
    }
    if (session->matrix->size() < m) {
      return Status::InvalidArgument(
          "matrix is smaller than the coordinator's symbol count");
    }
  } else if (info->uniform_alpha >= 0.0) {
    session->matrix = UniformNoiseMatrix(m, info->uniform_alpha);
  } else {
    session->matrix = CompatibilityMatrix::Identity(m);
  }
  *out = std::move(session);
  return Status::Ok();
}

/// Counts one granted task, reporting a cumulative progress frame per exec
/// shard. Ok when the task finished or was fenced/superseded (poll again);
/// Unavailable when the connection died (reconnect); kCancelled on stop.
Status ProcessTask(WorkerSession& session, const TaskAssignment& task,
                   const DistWorker::Options& options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const CompatibilityMatrix* c =
      session.metric == Metric::kMatch ? &*session.matrix : nullptr;
  BatchCountKernel kernel(task.patterns, c);
  const uint64_t ess = session.info.exec_shard_size;

  std::vector<std::vector<double>> partials = task.resume_partials;
  for (uint64_t k = task.resume_done;; ++k) {
    const uint64_t lo = task.begin_record + k * ess;
    if (lo >= task.end_record) break;
    const uint64_t hi = std::min(lo + ess, task.end_record);
    Status rs = runtime::CheckRun(options.run);
    if (!rs.ok()) return rs;

    std::vector<double> partial(task.patterns.size(), 0.0);
    exec::RecordFn fn = kernel.MakeRecordFn();
    Status scan_status = session.db->ScanRange(
        static_cast<size_t>(lo), static_cast<size_t>(hi),
        [&](const SequenceRecord& r) { fn(r, &partial); },
        /*restart=*/[&] {
          partial.assign(task.patterns.size(), 0.0);
          fn = kernel.MakeRecordFn();
        });
    if (!scan_status.ok()) return scan_status;
    partials.push_back(std::move(partial));

    // Cumulative frame: the coordinator journals it before acking, so this
    // exec shard is durable once the ack lands — the worker's checkpoint.
    std::string frame = "{\"v\": " + std::to_string(kProtocolVersion) +
                        ", \"op\": \"progress\", \"worker\": ";
    obs::AppendJsonString(options.name, &frame);
    frame.append(", \"scan\": ");
    obs::AppendJsonNumber(static_cast<double>(task.scan), &frame);
    frame.append(", \"shard\": ");
    obs::AppendJsonNumber(static_cast<double>(task.shard), &frame);
    frame.append(", \"epoch\": ");
    obs::AppendJsonNumber(static_cast<double>(task.epoch), &frame);
    frame.append(", \"done\": ");
    obs::AppendJsonNumber(static_cast<double>(k + 1), &frame);
    frame.append(", \"complete\": ");
    frame.append(hi >= task.end_record ? "true" : "false");
    frame.append(", \"partials\": [");
    for (size_t i = 0; i < partials.size(); ++i) {
      if (i > 0) frame.append(", ");
      frame.append("[");
      for (size_t j = 0; j < partials[i].size(); ++j) {
        if (j > 0) frame.append(", ");
        frame.append("\"");
        frame.append(EncodeDoubleBits(partials[i][j]));
        frame.append("\"");
      }
      frame.append("]");
    }
    frame.append("]}\n");

    obs::JsonValue reply;
    Status rt = session.RoundTrip(frame, options.run, &reply);
    if (!rt.ok()) return rt;
    const obs::JsonValue* ok = reply.Get("ok");
    if (ok == nullptr || ok->type != obs::JsonValue::Type::kBool) {
      return Status::Unavailable("malformed progress ack");
    }
    if (!ok->bool_value) {
      const obs::JsonValue* code = reply.Get("error");
      const std::string error_code =
          code != nullptr && code->is_string() ? code->string_value : "";
      if (error_code == "FAILED_PRECONDITION") {
        // Fenced: our lease lapsed (or the scan moved on) and another
        // worker owns this shard now. Drop the task; the next poll tells
        // us what the world looks like.
        reg.GetCounter("dist.worker.fenced").Increment();
        NMINE_LOG(kWarn, "dist")
            .Msg("task fenced by coordinator; abandoning")
            .Str("worker", options.name)
            .Num("shard", static_cast<int64_t>(task.shard))
            .Num("epoch", static_cast<int64_t>(task.epoch));
        return Status::Ok();
      }
      return Status::Unavailable("progress rejected: " + error_code);
    }
    reg.GetCounter("dist.worker.exec_shards").Increment();
    if (options.throttle_ms > 0) {
      SleepWithStop(options.throttle_ms, options.run);
    }
  }
  return Status::Ok();
}

}  // namespace

Status DistWorker::Run(const Options& options) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  net::ReconnectBackoff backoff(options.reconnect);
  auto down_since = std::chrono::steady_clock::now();
  bool was_connected = true;  // first dial gets the full timeout window

  std::unique_ptr<WorkerSession> session;
  while (true) {
    Status rs = runtime::CheckRun(options.run);
    if (!rs.ok()) return rs;

    if (session == nullptr) {
      if (was_connected) {
        down_since = std::chrono::steady_clock::now();
        was_connected = false;
      }
      Status open = OpenSession(options, &session);
      if (!open.ok()) {
        if (!open.IsTransient()) return open;  // bad environment: give up
        const double down_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          down_since)
                .count();
        if (down_s > options.connect_timeout_s) {
          return Status::Unavailable(
              "coordinator unreachable for " +
              std::to_string(static_cast<int64_t>(down_s)) + "s: " +
              open.message());
        }
        reg.GetCounter("dist.worker.reconnects").Increment();
        SleepWithStop(static_cast<int64_t>(backoff.NextBackoffMs()),
                      options.run);
        continue;
      }
      was_connected = true;
      backoff.Reset();
      NMINE_LOG(kInfo, "dist")
          .Msg("worker connected")
          .Str("worker", options.name)
          .Num("port", static_cast<int64_t>(options.port));
    }

    std::string poll = "{\"v\": " + std::to_string(kProtocolVersion) +
                       ", \"op\": \"poll\", \"worker\": ";
    obs::AppendJsonString(options.name, &poll);
    poll.append("}\n");
    obs::JsonValue reply;
    Status rt = session->RoundTrip(poll, options.run, &reply);
    if (!rt.ok()) {
      if (!rt.IsTransient()) return rt;  // run control stop
      session.reset();
      continue;
    }
    std::optional<PollReply> parsed = ParsePollReply(reply);
    if (!parsed.has_value()) {
      session.reset();
      continue;
    }
    if (parsed->shutdown) {
      NMINE_LOG(kInfo, "dist")
          .Msg("worker shutting down on coordinator's word")
          .Str("worker", options.name)
          .Num("tasks", tasks_completed_);
      return Status::Ok();
    }
    if (!parsed->task.has_value()) {
      SleepWithStop(std::max<int64_t>(1, parsed->idle_ms), options.run);
      continue;
    }

    Status task_status = ProcessTask(*session, *parsed->task, options);
    if (task_status.ok()) {
      ++tasks_completed_;
      continue;
    }
    if (!task_status.IsTransient()) return task_status;
    session.reset();  // connection died mid-task; resume via re-grant
  }
}

}  // namespace dist
}  // namespace nmine
