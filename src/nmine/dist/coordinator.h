#ifndef NMINE_DIST_COORDINATOR_H_
#define NMINE_DIST_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nmine/core/metric.h"
#include "nmine/core/pattern.h"
#include "nmine/core/status.h"
#include "nmine/dist/journal.h"
#include "nmine/dist/wire.h"
#include "nmine/runtime/run_control.h"
#include "nmine/serve/job.h"

namespace nmine {
namespace dist {

/// Coordinator of one fault-tolerant distributed mining run.
///
/// The coordinator owns the mining algorithm end to end: it executes
/// serve::RunJob on the Run() caller's thread exactly as the solo CLI
/// would — same database open, matrix resolution, checkpointing, and row
/// formatting — and splices in only the Phase-3 batch counting, which it
/// farms out to workers over TCP. Each counting scan is partitioned into
/// dist shards (contiguous runs of exec shards, boundaries aligned to
/// exec::kDefaultShardSize), workers stream back one partial vector per
/// exec shard, and the coordinator folds all partials into the totals in
/// ascending global shard order before dividing by N once — the exact
/// float grouping of ShardedScanReducer, so the mined pattern set is
/// bit-identical to the serial CLI at any worker count and under any kill
/// schedule.
///
/// Fault model:
///  - Worker death: shards are held under a time-bounded lease renewed by
///    every poll/progress frame. A missed lease returns the shard to the
///    pending pool; the next live worker resumes from the shard's last
///    journaled exec-shard checkpoint instead of restarting it.
///  - Zombie workers: every grant carries a per-shard epoch, bumped and
///    journaled (fsync) BEFORE the grant response, so epochs never regress
///    — even across coordinator restarts. Progress carrying a stale epoch
///    is fenced: typed FAILED_PRECONDITION, dropped, counted in
///    dist.results.fenced. Partials are stored by replacement (cumulative
///    arrays), so a duplicate or racing frame can never double-count.
///  - Coordinator death: assignment epochs and in-flight scan progress
///    live in a write-ahead journal (<state_dir>/dist.journal). A
///    restarted coordinator resumes the run from its RunCheckpoint; the
///    re-issued probe batch is matched to the journaled scan by a
///    fingerprint over (metric, patterns) and adopts the journaled shard
///    progress, so worker output from the previous life is not recounted.
///
/// Introspection: /shardz on the status server (per-shard owner, epoch,
/// lease age, reassignments, progress), dist.* metrics, and grant /
/// reassign / fence spans in the tracer.
class Coordinator {
 public:
  struct Options {
    /// TCP port for workers and clients; 0 picks an ephemeral port.
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    /// Journal + run checkpoint live here. Reusing a dir resumes.
    std::string state_dir;
    /// The job to mine. Only "collapse" distributes its Phase-3 scans;
    /// other algorithms run entirely local.
    serve::JobSpec spec;
    /// Shard lease duration. A worker silent this long loses its shards.
    int64_t lease_ms = 2000;
    /// Poll-again hint handed to idle workers.
    int64_t poll_idle_ms = 50;
    /// Records per dist shard; rounded up to a multiple of the exec shard
    /// size so dist boundaries coincide with the serial reducer's grid.
    uint64_t records_per_task = 1024;
  };

  Coordinator() = default;
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Opens the journal and database, binds the listen socket, starts the
  /// accept loop, and registers /shardz. False with *error on failure.
  bool Start(const Options& options, std::string* error);

  /// Runs the mining job to completion on the calling thread, counting
  /// Phase-3 batches through connected workers (local when none connect —
  /// see CountBatch). Blocks; returns the terminal JobResult. After Run
  /// returns, polling workers receive shutdown and waiting clients the
  /// result. Call once per Start.
  serve::JobResult Run();

  /// Abrupt stop: cancels the run, closes the listener, joins threads.
  /// The journal keeps the in-flight state — a new Coordinator on the
  /// same state_dir resumes (this is the crash path tests exercise).
  void Stop();

  /// Cancellation token of the governed run (signal handlers flip it).
  runtime::RunControl* run_control() { return &run_control_; }

  uint16_t port() const { return port_; }

  /// The /shardz board: one JSON object per dist shard of the scan in
  /// flight plus run-level counters.
  std::string ShardzJson();

 private:
  struct ShardState {
    uint64_t begin_record = 0;
    uint64_t end_record = 0;
    std::string owner;             // empty = pending or complete
    int64_t lease_deadline_us = 0; // steady clock; owner only
    int64_t granted_us = 0;
    int64_t reassigns = 0;
    ShardProgress progress;
  };

  /// Counts one probe batch: the Phase-3 hook spliced into RunJob.
  Status CountBatch(Metric metric, const std::vector<Pattern>& probe,
                    std::vector<double>* values);

  void AcceptLoop();
  void ConnectionLoop(int fd);
  std::string HandleRequest(const DistRequest& request);
  std::string HandleHello(const DistRequest& request);
  std::string HandlePoll(const DistRequest& request);
  std::string HandleProgress(const DistRequest& request);
  std::string HandleWait();

  /// Returns expired leases' shards to the pending pool. Caller holds
  /// state_mutex_.
  void SweepLeasesLocked(int64_t now_us);

  /// Counts one pending shard on the Run() thread (liveness when no live
  /// worker exists) through the same journaled grant/progress path a
  /// worker would take. Enters with `lock` held, drops it for the scan,
  /// reacquires before returning.
  Status CountShardLocallyLocked(std::unique_lock<std::mutex>& lock);

  /// Merges all complete shards into `values` in ascending shard order
  /// (the serial reducer's grouping) and divides by N. Caller holds
  /// state_mutex_ with every shard complete.
  void MergeLocked(std::vector<double>* values) const;

  void EmitDistSpan(const char* name, uint64_t shard, uint64_t epoch,
                    const std::string& worker);

  Options options_;
  std::unique_ptr<DistJournal> journal_;
  ReplayState replay_;
  bool adopt_pending_ = false;  // replay_ holds an unconsumed in-flight scan

  uint64_t num_sequences_ = 0;
  uint64_t num_symbols_ = 0;  // matrix dimension m of the database
  uint64_t exec_shard_size_ = 0;
  uint64_t records_per_shard_ = 0;

  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex accept_done_mutex_;
  std::condition_variable accept_done_cv_;
  bool accept_done_ = true;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;

  runtime::RunControl run_control_;
  uint64_t trace_hi_ = 0;
  uint64_t trace_lo_ = 0;

  // Scan + assignment state. One mutex: grants, progress, lease sweeps,
  // and the merge all serialize here (journal fsyncs happen under it, so
  // the journaled and in-memory orders agree).
  std::mutex state_mutex_;
  std::condition_variable scan_cv_;    // progress/completion of the scan
  std::condition_variable result_cv_;  // terminal JobResult published
  std::map<uint64_t, uint64_t> epochs_;  // per-shard, survives scans
  bool scan_active_ = false;
  uint64_t scan_id_ = 0;
  uint64_t next_scan_ = 0;
  Metric scan_metric_ = Metric::kMatch;
  std::vector<Pattern> scan_patterns_;
  std::map<uint64_t, ShardState> shards_;
  std::map<std::string, int64_t> workers_;  // name -> last frame (steady us)
  bool result_ready_ = false;
  serve::JobResult result_;
};

}  // namespace dist
}  // namespace nmine

#endif  // NMINE_DIST_COORDINATOR_H_
