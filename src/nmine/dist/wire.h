#ifndef NMINE_DIST_WIRE_H_
#define NMINE_DIST_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nmine/core/pattern.h"
#include "nmine/obs/json_parse.h"

namespace nmine {
namespace dist {

/// Wire protocol between nmine_coordinator and its workers: versioned
/// line-JSON over TCP, the serve/protocol framing (one JSON object per
/// line in each direction; failures are typed StatusCode wire names).
/// Every worker frame carries "v"; a version the peer does not speak is a
/// typed FAILED_PRECONDITION, so old and new binaries fail loudly rather
/// than mis-count.
///
/// Worker requests:
///   {"v":1, "op":"hello", "worker":W}
///   {"v":1, "op":"poll",  "worker":W}                      renews lease
///   {"v":1, "op":"progress", "worker":W, "scan":S, "shard":H,
///    "epoch":E, "done":D, "partials":[[hex64...],...],
///    "complete":false}                                     renews lease
///   (a "result" is a progress frame with "complete": true)
///
/// Client requests (nmine_client --distributed; unversioned v1 frames):
///   {"op":"ping"}
///   {"op":"wait"}          blocks until the coordinator's job is terminal
///
/// Doubles travel as 16 lowercase hex digits of their IEEE-754 bit
/// pattern: per-shard partial sums must survive the wire EXACTLY or the
/// coordinator's merged totals drift from the serial CLI's.
inline constexpr int kProtocolVersion = 1;

/// Renders `value`'s bit pattern as 16 lowercase hex digits.
std::string EncodeDoubleBits(double value);

/// Parses EncodeDoubleBits output. False on anything else.
bool DecodeDoubleBits(const std::string& text, double* value);

/// Appends `[p0, p1, ...]` where each pattern is an int array with -1 for
/// the eternal symbol, e.g. [[0,-1,2],[1,3]].
void AppendPatternsJson(const std::vector<Pattern>& patterns,
                        std::string* out);

/// Parses AppendPatternsJson output. False on malformed bodies (empty, or
/// wildcard endpoints).
bool ParsePatternsJson(const obs::JsonValue& value,
                       std::vector<Pattern>* patterns);

/// One parsed worker-or-client request frame.
struct DistRequest {
  std::string op;       // hello | poll | progress | ping | wait
  std::string worker;   // worker ops only
  uint64_t scan = 0;    // progress
  uint64_t shard = 0;   // progress
  uint64_t epoch = 0;   // progress: the epoch the task was granted under
  uint64_t done = 0;    // progress: exec shards finished (cumulative)
  bool complete = false;
  /// Cumulative per-exec-shard partial sums, oldest shard first
  /// (partials.size() == done).
  std::vector<std::vector<double>> partials;
};

/// Parses one request line. nullopt with *error / *error_code set
/// ("FAILED_PRECONDITION" for a version mismatch, "INVALID_ARGUMENT"
/// otherwise). Worker ops REQUIRE "v"; ping/wait are plain serve-style
/// client frames and take the default.
std::optional<DistRequest> ParseDistRequest(const std::string& line,
                                            std::string* error,
                                            std::string* error_code);

/// What a worker needs to mirror the coordinator's counting environment:
/// sent once in the hello response, fixed for the coordinator's lifetime.
struct HelloInfo {
  std::string db_path;
  std::string matrix_path;     // wins over uniform_alpha when set
  double uniform_alpha = -1.0; // < 0: identity matrix
  std::string metric;          // match | support
  uint64_t num_symbols = 0;    // matrix dimension m
  uint64_t num_sequences = 0;  // guard: worker refuses a different file
  uint64_t exec_shard_size = 0;
  int64_t lease_ms = 0;
};

std::string HelloResponse(const HelloInfo& info);
std::optional<HelloInfo> ParseHelloResponse(const obs::JsonValue& value);

/// One granted unit of work: count `patterns` over records
/// [begin_record, end_record) of the database, one partial vector per
/// exec shard, resuming after the first `resume_done` exec shards (their
/// journaled partials ride along so the worker reports cumulatively).
struct TaskAssignment {
  uint64_t scan = 0;
  uint64_t shard = 0;
  uint64_t epoch = 0;
  uint64_t begin_record = 0;
  uint64_t end_record = 0;
  uint64_t resume_done = 0;
  std::vector<std::vector<double>> resume_partials;
  std::vector<Pattern> patterns;
};

std::string TaskResponse(const TaskAssignment& task);

/// {"ok": true, "idle_ms": N} — nothing to do right now, poll again in N.
std::string IdleResponse(int64_t idle_ms);

/// {"ok": true, "shutdown": true} — the job is finished; workers exit 0.
std::string ShutdownResponse();

/// Parsed poll response: exactly one of task / idle / shutdown.
struct PollReply {
  std::optional<TaskAssignment> task;
  int64_t idle_ms = 0;
  bool shutdown = false;
};

std::optional<PollReply> ParsePollReply(const obs::JsonValue& value);

}  // namespace dist
}  // namespace nmine

#endif  // NMINE_DIST_WIRE_H_
