#include "nmine/dist/wire.h"

#include <cstring>

#include "nmine/obs/json_util.h"

namespace nmine {
namespace dist {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

/// Parses a JSON array of arrays of hex-encoded doubles into `out`.
bool ParsePartials(const obs::JsonValue& value,
                   std::vector<std::vector<double>>* out) {
  if (!value.is_array()) return false;
  out->clear();
  out->reserve(value.array.size());
  for (const obs::JsonValue& shard : value.array) {
    if (!shard.is_array()) return false;
    std::vector<double> partial;
    partial.reserve(shard.array.size());
    for (const obs::JsonValue& entry : shard.array) {
      double d = 0.0;
      if (!entry.is_string() || !DecodeDoubleBits(entry.string_value, &d)) {
        return false;
      }
      partial.push_back(d);
    }
    out->push_back(std::move(partial));
  }
  return true;
}

void AppendPartials(const std::vector<std::vector<double>>& partials,
                    std::string* out) {
  out->append("[");
  for (size_t i = 0; i < partials.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append("[");
    for (size_t j = 0; j < partials[i].size(); ++j) {
      if (j > 0) out->append(", ");
      out->append("\"");
      out->append(EncodeDoubleBits(partials[i][j]));
      out->append("\"");
    }
    out->append("]");
  }
  out->append("]");
}

}  // namespace

std::string EncodeDoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHexDigits[bits & 0xf];
    bits >>= 4;
  }
  return out;
}

bool DecodeDoubleBits(const std::string& text, double* value) {
  if (text.size() != 16) return false;
  uint64_t bits = 0;
  for (char ch : text) {
    uint64_t nibble;
    if (ch >= '0' && ch <= '9') {
      nibble = static_cast<uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      nibble = static_cast<uint64_t>(ch - 'a' + 10);
    } else {
      return false;
    }
    bits = (bits << 4) | nibble;
  }
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

void AppendPatternsJson(const std::vector<Pattern>& patterns,
                        std::string* out) {
  out->append("[");
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append("[");
    const Pattern& p = patterns[i];
    for (size_t j = 0; j < p.length(); ++j) {
      if (j > 0) out->append(", ");
      out->append(std::to_string(static_cast<long long>(p[j])));
    }
    out->append("]");
  }
  out->append("]");
}

bool ParsePatternsJson(const obs::JsonValue& value,
                       std::vector<Pattern>* patterns) {
  if (!value.is_array()) return false;
  patterns->clear();
  patterns->reserve(value.array.size());
  for (const obs::JsonValue& entry : value.array) {
    if (!entry.is_array()) return false;
    std::vector<SymbolId> body;
    body.reserve(entry.array.size());
    for (const obs::JsonValue& sym : entry.array) {
      if (!sym.is_number()) return false;
      body.push_back(static_cast<SymbolId>(sym.number_value));
    }
    if (!Pattern::IsValidBody(body)) return false;
    patterns->emplace_back(std::move(body));
  }
  return true;
}

std::optional<DistRequest> ParseDistRequest(const std::string& line,
                                            std::string* error,
                                            std::string* error_code) {
  if (error_code != nullptr) *error_code = "INVALID_ARGUMENT";
  std::optional<obs::JsonValue> value = obs::ParseJson(line);
  if (!value.has_value() || !value->is_object()) {
    if (error != nullptr) *error = "request must be one JSON object per line";
    return std::nullopt;
  }
  DistRequest request;
  const obs::JsonValue* op = value->Get("op");
  if (op == nullptr || !op->is_string()) {
    if (error != nullptr) *error = "request needs a string \"op\"";
    return std::nullopt;
  }
  request.op = op->string_value;

  const bool is_worker_op = request.op == "hello" || request.op == "poll" ||
                            request.op == "progress";
  if (!is_worker_op && request.op != "ping" && request.op != "wait") {
    if (error != nullptr) *error = "unknown op '" + request.op + "'";
    return std::nullopt;
  }

  if (is_worker_op) {
    // Worker frames REQUIRE the version: a mis-versioned worker must not
    // get to count anything.
    const obs::JsonValue* v = value->Get("v");
    if (v == nullptr || !v->is_number() ||
        static_cast<int>(v->number_value) != kProtocolVersion) {
      if (error != nullptr) {
        *error = "unsupported protocol version (coordinator speaks v" +
                 std::to_string(kProtocolVersion) + ")";
      }
      if (error_code != nullptr) *error_code = "FAILED_PRECONDITION";
      return std::nullopt;
    }
    const obs::JsonValue* worker = value->Get("worker");
    if (worker == nullptr || !worker->is_string() ||
        worker->string_value.empty()) {
      if (error != nullptr) {
        *error = request.op + " needs a non-empty \"worker\"";
      }
      return std::nullopt;
    }
    request.worker = worker->string_value;
  }

  if (request.op == "progress") {
    const obs::JsonValue* v;
    if ((v = value->Get("scan")) == nullptr || !v->is_number()) {
      if (error != nullptr) *error = "progress needs a numeric \"scan\"";
      return std::nullopt;
    }
    request.scan = static_cast<uint64_t>(v->number_value);
    if ((v = value->Get("shard")) == nullptr || !v->is_number()) {
      if (error != nullptr) *error = "progress needs a numeric \"shard\"";
      return std::nullopt;
    }
    request.shard = static_cast<uint64_t>(v->number_value);
    if ((v = value->Get("epoch")) == nullptr || !v->is_number()) {
      if (error != nullptr) *error = "progress needs a numeric \"epoch\"";
      return std::nullopt;
    }
    request.epoch = static_cast<uint64_t>(v->number_value);
    request.done = static_cast<uint64_t>(value->GetNumber("done", 0.0));
    if ((v = value->Get("complete")) != nullptr) {
      request.complete = v->bool_value;
    }
    if ((v = value->Get("partials")) == nullptr ||
        !ParsePartials(*v, &request.partials)) {
      if (error != nullptr) {
        *error = "progress needs \"partials\" (arrays of 16-hex doubles)";
      }
      return std::nullopt;
    }
    if (request.partials.size() != request.done) {
      if (error != nullptr) {
        *error = "progress \"done\" disagrees with the partial count";
      }
      return std::nullopt;
    }
  }
  return request;
}

std::string HelloResponse(const HelloInfo& info) {
  std::string out = "{\"ok\": true, \"v\": ";
  out.append(std::to_string(kProtocolVersion));
  out.append(", \"db\": ");
  obs::AppendJsonString(info.db_path, &out);
  out.append(", \"matrix\": ");
  obs::AppendJsonString(info.matrix_path, &out);
  out.append(", \"uniform_alpha\": ");
  obs::AppendJsonNumber(info.uniform_alpha, &out);
  out.append(", \"metric\": ");
  obs::AppendJsonString(info.metric, &out);
  out.append(", \"m\": ");
  obs::AppendJsonNumber(static_cast<double>(info.num_symbols), &out);
  out.append(", \"n\": ");
  obs::AppendJsonNumber(static_cast<double>(info.num_sequences), &out);
  out.append(", \"exec_shard_size\": ");
  obs::AppendJsonNumber(static_cast<double>(info.exec_shard_size), &out);
  out.append(", \"lease_ms\": ");
  obs::AppendJsonNumber(static_cast<double>(info.lease_ms), &out);
  out.append("}\n");
  return out;
}

std::optional<HelloInfo> ParseHelloResponse(const obs::JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  const obs::JsonValue* v = value.Get("v");
  if (v == nullptr || !v->is_number() ||
      static_cast<int>(v->number_value) != kProtocolVersion) {
    return std::nullopt;
  }
  HelloInfo info;
  if ((v = value.Get("db")) == nullptr || !v->is_string() ||
      v->string_value.empty()) {
    return std::nullopt;
  }
  info.db_path = v->string_value;
  if ((v = value.Get("matrix")) != nullptr && v->is_string()) {
    info.matrix_path = v->string_value;
  }
  info.uniform_alpha = value.GetNumber("uniform_alpha", -1.0);
  if ((v = value.Get("metric")) == nullptr || !v->is_string()) {
    return std::nullopt;
  }
  info.metric = v->string_value;
  info.num_symbols = static_cast<uint64_t>(value.GetNumber("m", 0.0));
  info.num_sequences = static_cast<uint64_t>(value.GetNumber("n", 0.0));
  info.exec_shard_size =
      static_cast<uint64_t>(value.GetNumber("exec_shard_size", 0.0));
  info.lease_ms = static_cast<int64_t>(value.GetNumber("lease_ms", 0.0));
  if (info.exec_shard_size == 0) return std::nullopt;
  return info;
}

std::string TaskResponse(const TaskAssignment& task) {
  std::string out = "{\"ok\": true, \"task\": {\"scan\": ";
  obs::AppendJsonNumber(static_cast<double>(task.scan), &out);
  out.append(", \"shard\": ");
  obs::AppendJsonNumber(static_cast<double>(task.shard), &out);
  out.append(", \"epoch\": ");
  obs::AppendJsonNumber(static_cast<double>(task.epoch), &out);
  out.append(", \"begin\": ");
  obs::AppendJsonNumber(static_cast<double>(task.begin_record), &out);
  out.append(", \"end\": ");
  obs::AppendJsonNumber(static_cast<double>(task.end_record), &out);
  out.append(", \"resume_done\": ");
  obs::AppendJsonNumber(static_cast<double>(task.resume_done), &out);
  out.append(", \"resume_partials\": ");
  AppendPartials(task.resume_partials, &out);
  out.append(", \"patterns\": ");
  AppendPatternsJson(task.patterns, &out);
  out.append("}}\n");
  return out;
}

std::string IdleResponse(int64_t idle_ms) {
  std::string out = "{\"ok\": true, \"idle_ms\": ";
  obs::AppendJsonNumber(static_cast<double>(idle_ms), &out);
  out.append("}\n");
  return out;
}

std::string ShutdownResponse() {
  return "{\"ok\": true, \"shutdown\": true}\n";
}

std::optional<PollReply> ParsePollReply(const obs::JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  PollReply reply;
  const obs::JsonValue* v;
  if ((v = value.Get("shutdown")) != nullptr && v->bool_value) {
    reply.shutdown = true;
    return reply;
  }
  const obs::JsonValue* task = value.Get("task");
  if (task == nullptr) {
    reply.idle_ms = static_cast<int64_t>(value.GetNumber("idle_ms", 0.0));
    return reply;
  }
  if (!task->is_object()) return std::nullopt;
  TaskAssignment assignment;
  assignment.scan = static_cast<uint64_t>(task->GetNumber("scan", 0.0));
  assignment.shard = static_cast<uint64_t>(task->GetNumber("shard", 0.0));
  assignment.epoch = static_cast<uint64_t>(task->GetNumber("epoch", 0.0));
  assignment.begin_record =
      static_cast<uint64_t>(task->GetNumber("begin", 0.0));
  assignment.end_record = static_cast<uint64_t>(task->GetNumber("end", 0.0));
  assignment.resume_done =
      static_cast<uint64_t>(task->GetNumber("resume_done", 0.0));
  if ((v = task->Get("resume_partials")) == nullptr ||
      !ParsePartials(*v, &assignment.resume_partials)) {
    return std::nullopt;
  }
  if (assignment.resume_partials.size() != assignment.resume_done) {
    return std::nullopt;
  }
  if ((v = task->Get("patterns")) == nullptr ||
      !ParsePatternsJson(*v, &assignment.patterns)) {
    return std::nullopt;
  }
  if (assignment.end_record <= assignment.begin_record ||
      assignment.patterns.empty()) {
    return std::nullopt;
  }
  reply.task = std::move(assignment);
  return reply;
}

}  // namespace dist
}  // namespace nmine
