#include "nmine/dist/coordinator.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <utility>

#include "nmine/core/compatibility_matrix.h"
#include "nmine/core/matrix_io.h"
#include "nmine/db/disk_database.h"
#include "nmine/exec/policy.h"
#include "nmine/exec/thread_pool.h"
#include "nmine/gen/matrix_generator.h"
#include "nmine/lattice/pattern_counter.h"
#include "nmine/net/status_server.h"
#include "nmine/obs/clock.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/trace.h"
#include "nmine/serve/protocol.h"

namespace nmine {
namespace dist {
namespace {

/// Process-wide pointer behind /shardz — the ActiveServer pattern from
/// serve: a leaked mutex (the endpoint outlives every coordinator) guards
/// it; Start publishes, Stop retracts.
std::mutex& ActiveCoordinatorMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

Coordinator*& ActiveCoordinator() {
  static Coordinator* coordinator = nullptr;
  return coordinator;
}

int64_t NowSteadyUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SendAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w <= 0) return;
    done += static_cast<size_t>(w);
  }
}

}  // namespace

/// Database + matrix the coordinator holds for its own use: the hello
/// response mirrors this environment to workers, and the local fallback
/// (counting with zero live workers) counts against it directly.
struct CoordinatorEnv {
  std::unique_ptr<DiskSequenceDatabase> db;
  std::optional<CompatibilityMatrix> matrix;
};

namespace {
/// One env per live coordinator, keyed off the ActiveCoordinator pattern
/// would be overkill — the Coordinator simply owns it via this holder so
/// coordinator.h does not need the heavy db/matrix includes.
std::mutex& EnvMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
std::map<const Coordinator*, std::unique_ptr<CoordinatorEnv>>& EnvMap() {
  static auto* envs =
      new std::map<const Coordinator*, std::unique_ptr<CoordinatorEnv>>();
  return *envs;
}
CoordinatorEnv* EnvFor(const Coordinator* c) {
  std::lock_guard<std::mutex> lock(EnvMutex());
  auto it = EnvMap().find(c);
  return it == EnvMap().end() ? nullptr : it->second.get();
}
}  // namespace

Coordinator::~Coordinator() { Stop(); }

bool Coordinator::Start(const Options& options, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "coordinator already running";
    return false;
  }
  if (options.state_dir.empty()) {
    if (error != nullptr) *error = "coordinator needs a state_dir";
    return false;
  }
  options_ = options;
  stopping_.store(false, std::memory_order_release);

  journal_ = DistJournal::Open(options_.state_dir, &replay_, error);
  if (journal_ == nullptr) return false;
  epochs_ = replay_.epochs;
  adopt_pending_ = replay_.has_scan;
  next_scan_ = replay_.has_scan ? replay_.scan : 0;

  // The coordinator's own view of the data: NumSequences fixes the shard
  // geometry and the final division; the max symbol fixes the matrix
  // dimension every party must agree on.
  auto env = std::make_unique<CoordinatorEnv>();
  Status db_error;
  env->db = DiskSequenceDatabase::Open(options_.spec.db_path, &db_error);
  if (env->db == nullptr) {
    if (error != nullptr) *error = db_error.ToString();
    return false;
  }
  num_sequences_ = env->db->NumSequences();
  SymbolId max_symbol = -1;
  Status probe_status = env->db->Scan(
      [&](const SequenceRecord& r) {
        for (SymbolId s : r.symbols) max_symbol = std::max(max_symbol, s);
      },
      /*restart=*/[&] { max_symbol = -1; });
  if (!probe_status.ok()) {
    if (error != nullptr) *error = probe_status.ToString();
    return false;
  }
  num_symbols_ = static_cast<uint64_t>(max_symbol + 1);
  const size_t m = static_cast<size_t>(num_symbols_);
  if (!options_.spec.matrix_path.empty()) {
    MatrixIoResult merr;
    env->matrix = ReadCompatibilityMatrixFile(options_.spec.matrix_path, &merr);
    if (!env->matrix.has_value()) {
      if (error != nullptr) *error = merr.message;
      return false;
    }
    if (env->matrix->size() < m) {
      if (error != nullptr) {
        *error = "matrix is " + std::to_string(env->matrix->size()) + "x" +
                 std::to_string(env->matrix->size()) + " but the data uses " +
                 std::to_string(m) + " symbols";
      }
      return false;
    }
  } else if (options_.spec.uniform_alpha >= 0.0) {
    env->matrix = UniformNoiseMatrix(m, options_.spec.uniform_alpha);
  } else {
    env->matrix = CompatibilityMatrix::Identity(m);
  }
  {
    std::lock_guard<std::mutex> lock(EnvMutex());
    EnvMap()[this] = std::move(env);
  }

  exec_shard_size_ = exec::kDefaultShardSize;
  records_per_shard_ = options_.records_per_task;
  if (records_per_shard_ == 0) records_per_shard_ = exec_shard_size_;
  // Dist boundaries must land on the serial reducer's shard grid or the
  // float grouping (and thus the mined set) would depend on the worker
  // count.
  records_per_shard_ =
      ((records_per_shard_ + exec_shard_size_ - 1) / exec_shard_size_) *
      exec_shard_size_;

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) {
      *error = "bad bind address '" + options_.bind_address + "'";
    }
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(" + options_.bind_address + ":" +
               std::to_string(options_.port) +
               "): " + std::string(strerror(errno));
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(fd);
    return false;
  }
  // Same non-blocking + poll() discipline as the mining server: a blocked
  // accept() is not woken by close() on Linux.
  int fd_flags = ::fcntl(fd, F_GETFL, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFL, fd_flags | O_NONBLOCK);
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options_.port;
  }
  listen_fd_ = fd;

  obs::TraceContext minted = obs::MintTraceContext();
  trace_hi_ = minted.trace_hi;
  trace_lo_ = minted.trace_lo;

  run_control_.Reset();
  result_ready_ = false;
  result_ = serve::JobResult();
  {
    std::lock_guard<std::mutex> lock(accept_done_mutex_);
    accept_done_ = false;
  }
  running_.store(true, std::memory_order_release);

  {
    std::lock_guard<std::mutex> lock(ActiveCoordinatorMutex());
    ActiveCoordinator() = this;
  }
  static bool shardz_registered = [] {
    net::StatusServer::RegisterEndpoint("/shardz", [] {
      std::lock_guard<std::mutex> lock(ActiveCoordinatorMutex());
      Coordinator* coordinator = ActiveCoordinator();
      if (coordinator == nullptr) {
        return std::string("{\"error\": \"no coordinator running\"}\n");
      }
      return coordinator->ShardzJson();
    });
    return true;
  }();
  (void)shardz_registered;

  exec::ThreadPool& pool = exec::ThreadPool::Shared();
  pool.ReserveWorker();
  pool.Submit([this] { AcceptLoop(); });

  NMINE_LOG(kInfo, "dist")
      .Msg("coordinator listening")
      .Str("address", options_.bind_address)
      .Num("port", static_cast<int64_t>(port_))
      .Str("state_dir", options_.state_dir)
      .Num("records_per_shard", static_cast<int64_t>(records_per_shard_))
      .Num("replayed_epochs", static_cast<int64_t>(epochs_.size()))
      .Num("inflight_scan", adopt_pending_ ? 1 : 0);
  return true;
}

serve::JobResult Coordinator::Run() {
  const std::string checkpoint_path =
      (std::filesystem::path(options_.state_dir) / "run.ckpt").string();
  serve::RunJobHooks hooks;
  if (options_.spec.algorithm == "collapse") {
    hooks.phase3_count = [this](Metric metric,
                                const std::vector<Pattern>& probe,
                                std::vector<double>* values) {
      return CountBatch(metric, probe, values);
    };
  }
  serve::JobResult result =
      serve::RunJob(options_.spec, checkpoint_path, &run_control_, hooks);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    result_ = result;
    result_ready_ = true;
    result_cv_.notify_all();
    scan_cv_.notify_all();
  }
  NMINE_LOG(kInfo, "dist")
      .Msg("coordinator run finished")
      .Str("outcome", result.ok ? "ok" : result.error_code)
      .Num("scans", result.scans)
      .Num("resumed", result.resumed_from_checkpoint ? 1 : 0);
  return result;
}

void Coordinator::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  run_control_.RequestCancel();
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    scan_cv_.notify_all();
    result_cv_.notify_all();
  }
  {
    std::unique_lock<std::mutex> lock(accept_done_mutex_);
    accept_done_cv_.wait(lock, [this] { return accept_done_; });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    for (std::thread& t : connection_threads_) {
      if (t.joinable()) t.join();
    }
    connection_threads_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(ActiveCoordinatorMutex());
    if (ActiveCoordinator() == this) ActiveCoordinator() = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(EnvMutex());
    EnvMap().erase(this);
  }
  NMINE_LOG(kInfo, "dist").Msg("coordinator stopped");
}

void Coordinator::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, client] { ConnectionLoop(client); });
  }
  std::lock_guard<std::mutex> lock(accept_done_mutex_);
  accept_done_ = true;
  accept_done_cv_.notify_all();
}

void Coordinator::ConnectionLoop(int fd) {
  timeval timeout;
  timeout.tv_sec = 0;
  timeout.tv_usec = 100 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r == 0) break;  // peer closed
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(r));
    if (buffer.size() > (8u << 20)) {
      // Progress frames carry whole partial arrays, so the cap is wider
      // than the mining server's 1 MiB — but still a cap: a wedged peer
      // cannot grow the buffer without bound.
      SendAll(fd, serve::ErrorResponse("INVALID_ARGUMENT",
                                       "request line exceeds 8 MiB"));
      break;
    }
    size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty() || line == "\r") continue;
      std::string parse_error;
      std::string parse_error_code;
      std::optional<DistRequest> request =
          ParseDistRequest(line, &parse_error, &parse_error_code);
      SendAll(fd, request.has_value()
                      ? HandleRequest(*request)
                      : serve::ErrorResponse(parse_error_code, parse_error));
    }
  }
  ::close(fd);
}

std::string Coordinator::HandleRequest(const DistRequest& request) {
  if (request.op == "ping") return serve::OkResponse();
  if (request.op == "hello") return HandleHello(request);
  if (request.op == "poll") return HandlePoll(request);
  if (request.op == "progress") return HandleProgress(request);
  if (request.op == "wait") return HandleWait();
  return serve::ErrorResponse("INVALID_ARGUMENT",
                              "unknown op '" + request.op + "'");
}

std::string Coordinator::HandleHello(const DistRequest& request) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    workers_[request.worker] = NowSteadyUs();
    obs::MetricsRegistry::Global()
        .GetGauge("dist.workers")
        .Set(static_cast<double>(workers_.size()));
  }
  HelloInfo info;
  info.db_path = options_.spec.db_path;
  info.matrix_path = options_.spec.matrix_path;
  info.uniform_alpha = options_.spec.uniform_alpha;
  info.metric = options_.spec.metric;
  info.num_symbols = num_symbols_;
  info.num_sequences = num_sequences_;
  info.exec_shard_size = exec_shard_size_;
  info.lease_ms = options_.lease_ms;
  NMINE_LOG(kInfo, "dist")
      .Msg("worker hello")
      .Str("worker", request.worker);
  return HelloResponse(info);
}

std::string Coordinator::HandlePoll(const DistRequest& request) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const int64_t now = NowSteadyUs();
  workers_[request.worker] = now;
  if (result_ready_) return ShutdownResponse();
  if (!scan_active_) {
    return IdleResponse(options_.poll_idle_ms);
  }
  SweepLeasesLocked(now);
  for (auto& [id, shard] : shards_) {
    if (shard.progress.complete) continue;
    // Grant pending shards — and shards this worker itself still owns: a
    // worker only polls when it holds no task, so its own lease here means
    // its previous task instance died with the connection. Re-granting
    // bumps the epoch, fencing any frame the dead instance left in flight.
    if (!shard.owner.empty() && shard.owner != request.worker) continue;
    const bool regrant = !shard.owner.empty() || shard.reassigns > 0;
    const uint64_t epoch = epochs_[id] + 1;
    // Journal BEFORE the response: the worker must never hold an epoch a
    // restarted coordinator could re-issue.
    Status js = journal_->AppendEpoch(id, epoch);
    if (!js.ok()) {
      return serve::ErrorResponse("UNAVAILABLE",
                                  "cannot journal grant: " + js.message());
    }
    epochs_[id] = epoch;
    shard.owner = request.worker;
    shard.granted_us = now;
    shard.lease_deadline_us = now + options_.lease_ms * 1000;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    if (regrant) {
      if (shard.progress.done > 0) {
        reg.GetCounter("dist.shards.resumed").Increment();
      } else {
        reg.GetCounter("dist.shards.restarted").Increment();
      }
    }
    EmitDistSpan(regrant ? "dist.regrant" : "dist.grant", id, epoch,
                 request.worker);

    TaskAssignment task;
    task.scan = scan_id_;
    task.shard = id;
    task.epoch = epoch;
    task.begin_record = shard.begin_record;
    task.end_record = shard.end_record;
    task.resume_done = shard.progress.done;
    task.resume_partials = shard.progress.partials;
    task.patterns = scan_patterns_;
    return TaskResponse(task);
  }
  return IdleResponse(options_.poll_idle_ms);
}

std::string Coordinator::HandleProgress(const DistRequest& request) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const int64_t now = NowSteadyUs();
  workers_[request.worker] = now;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  if (!scan_active_ || request.scan != scan_id_) {
    reg.GetCounter("dist.results.fenced").Increment();
    return serve::ErrorResponse(
        "FAILED_PRECONDITION",
        "scan " + std::to_string(request.scan) + " is not in flight");
  }
  auto it = shards_.find(request.shard);
  if (it == shards_.end()) {
    return serve::ErrorResponse(
        "INVALID_ARGUMENT", "no shard " + std::to_string(request.shard));
  }
  ShardState& shard = it->second;
  const uint64_t current_epoch = epochs_[request.shard];
  if (request.epoch != current_epoch) {
    // The fencing path: this worker's lease lapsed and the shard moved on.
    // Its work is dropped — the current owner's cumulative partials are
    // the only ones that can land, so nothing is ever double-counted.
    reg.GetCounter("dist.results.fenced").Increment();
    EmitDistSpan("dist.fence", request.shard, request.epoch, request.worker);
    NMINE_LOG(kWarn, "dist")
        .Msg("fenced stale-epoch progress")
        .Str("worker", request.worker)
        .Num("shard", static_cast<int64_t>(request.shard))
        .Num("epoch", static_cast<int64_t>(request.epoch))
        .Num("current_epoch", static_cast<int64_t>(current_epoch));
    return serve::ErrorResponse(
        "FAILED_PRECONDITION",
        "epoch " + std::to_string(request.epoch) + " is stale (shard " +
            std::to_string(request.shard) + " is at epoch " +
            std::to_string(current_epoch) + ")");
  }
  const uint64_t num_exec =
      (shard.end_record - shard.begin_record + exec_shard_size_ - 1) /
      exec_shard_size_;
  if (request.done > num_exec ||
      (request.complete && request.done != num_exec)) {
    return serve::ErrorResponse("INVALID_ARGUMENT",
                                "progress exceeds the shard's exec shards");
  }
  for (const std::vector<double>& partial : request.partials) {
    if (partial.size() != scan_patterns_.size()) {
      return serve::ErrorResponse("INVALID_ARGUMENT",
                                  "partial width disagrees with the batch");
    }
  }
  ShardProgress progress;
  progress.done = request.done;
  progress.complete = request.complete;
  progress.partials = request.partials;
  // Durable before acked: an un-acked resend just replaces the same
  // cumulative state, never adds to it.
  Status js = journal_->AppendShardProgress(scan_id_, request.shard, progress);
  if (!js.ok()) {
    return serve::ErrorResponse("UNAVAILABLE",
                                "cannot journal progress: " + js.message());
  }
  shard.progress = std::move(progress);
  shard.lease_deadline_us = now + options_.lease_ms * 1000;
  reg.GetCounter("dist.progress.frames").Increment();
  if (shard.progress.complete) {
    shard.owner.clear();
    scan_cv_.notify_all();
  }
  return serve::OkResponse();
}

std::string Coordinator::HandleWait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  result_cv_.wait(lock, [this] {
    return result_ready_ || stopping_.load(std::memory_order_acquire);
  });
  if (!result_ready_) {
    return serve::ErrorResponse(
        "UNAVAILABLE",
        "coordinator stopping before the job finished; it resumes on restart");
  }
  std::string extra = ", \"id\": 1, \"state\": ";
  obs::AppendJsonString(result_.ok ? "done" : "failed", &extra);
  extra.append(", \"trace_id\": ");
  obs::AppendJsonString(obs::FormatTraceId(trace_hi_, trace_lo_), &extra);
  extra.append(", \"result\": ");
  result_.AppendJson(&extra);
  return serve::OkResponse(extra);
}

void Coordinator::SweepLeasesLocked(int64_t now_us) {
  for (auto& [id, shard] : shards_) {
    if (shard.owner.empty() || shard.progress.complete) continue;
    if (now_us < shard.lease_deadline_us) continue;
    NMINE_LOG(kWarn, "dist")
        .Msg("lease expired; shard returned to pending")
        .Str("worker", shard.owner)
        .Num("shard", static_cast<int64_t>(id))
        .Num("done", static_cast<int64_t>(shard.progress.done));
    EmitDistSpan("dist.reassign", id, epochs_[id], shard.owner);
    shard.owner.clear();
    ++shard.reassigns;
    obs::MetricsRegistry::Global()
        .GetCounter("dist.shards.reassigned")
        .Increment();
  }
}

void Coordinator::MergeLocked(std::vector<double>* values) const {
  // The serial reducer's exact grouping: per-exec-shard partials folded
  // into zeroed totals in ascending global shard order (dist shards are
  // contiguous, the map iterates ascending), then one division by N.
  const size_t num_patterns = scan_patterns_.size();
  std::vector<double> totals(num_patterns, 0.0);
  for (const auto& [id, shard] : shards_) {
    for (const std::vector<double>& partial : shard.progress.partials) {
      for (size_t i = 0; i < num_patterns; ++i) totals[i] += partial[i];
    }
  }
  const double n = static_cast<double>(num_sequences_);
  if (n > 0) {
    for (double& t : totals) t /= n;
  }
  *values = std::move(totals);
}

void Coordinator::EmitDistSpan(const char* name, uint64_t shard,
                               uint64_t epoch, const std::string& worker) {
  obs::TraceEvent e;
  e.name = name;
  e.category = "dist";
  e.ts_us = obs::SinceEpochUs();
  e.dur_us = 0;
  e.trace_hi = trace_hi_;
  e.trace_lo = trace_lo_;
  e.span_id = obs::NextSpanId();
  e.args.emplace_back("shard", std::to_string(shard));
  e.args.emplace_back("epoch", std::to_string(epoch));
  if (!worker.empty()) e.args.emplace_back("worker", worker);
  obs::Tracer::Global().AddComplete(std::move(e));
}

Status Coordinator::CountBatch(Metric metric,
                               const std::vector<Pattern>& probe,
                               std::vector<double>* values) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t fingerprint = ScanFingerprint(ToString(metric), probe);
  obs::TraceEvent scan_span;
  scan_span.name = "dist.scan";
  scan_span.category = "dist";
  scan_span.ts_us = obs::SinceEpochUs();
  scan_span.trace_hi = trace_hi_;
  scan_span.trace_lo = trace_lo_;
  scan_span.span_id = obs::NextSpanId();

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    scan_metric_ = metric;
    scan_patterns_ = probe;
    shards_.clear();
    for (uint64_t begin = 0, id = 0; begin < num_sequences_;
         begin += records_per_shard_, ++id) {
      ShardState shard;
      shard.begin_record = begin;
      shard.end_record = std::min(begin + records_per_shard_, num_sequences_);
      shards_[id] = std::move(shard);
    }
    if (shards_.empty()) {
      // Zero-record database: nothing to distribute.
      values->assign(probe.size(), 0.0);
      return Status::Ok();
    }
    if (adopt_pending_ && replay_.fingerprint == fingerprint) {
      // The previous coordinator life died inside this very batch (same
      // metric + patterns, as the run checkpoint re-derives it
      // deterministically). Adopt its journaled shard progress instead of
      // recounting work workers already delivered.
      adopt_pending_ = false;
      scan_id_ = replay_.scan;
      size_t adopted = 0;
      for (const auto& [id, progress] : replay_.shards) {
        auto it = shards_.find(id);
        if (it == shards_.end()) continue;
        const uint64_t num_exec =
            (it->second.end_record - it->second.begin_record +
             exec_shard_size_ - 1) /
            exec_shard_size_;
        if (progress.done > num_exec) continue;
        bool sane = true;
        for (const std::vector<double>& partial : progress.partials) {
          if (partial.size() != probe.size()) sane = false;
        }
        if (!sane) continue;
        it->second.progress = progress;
        ++adopted;
      }
      reg.GetCounter("dist.scans.adopted").Increment();
      NMINE_LOG(kInfo, "dist")
          .Msg("adopted in-flight scan from journal")
          .Num("scan", static_cast<int64_t>(scan_id_))
          .Num("shards_with_progress", static_cast<int64_t>(adopted));
    } else {
      adopt_pending_ = false;  // a fresh batch supersedes the stale state
      scan_id_ = ++next_scan_;
      Status js = journal_->AppendScanBegin(scan_id_, fingerprint);
      if (!js.ok()) return js;
    }
    scan_active_ = true;
    reg.GetCounter("dist.scans").Increment();
  }

  Status status = Status::Ok();
  const int64_t scan_started_us = NowSteadyUs();
  std::unique_lock<std::mutex> lock(state_mutex_);
  while (true) {
    Status run_status = runtime::CheckRun(&run_control_);
    if (!run_status.ok()) {
      status = run_status;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      status = Status::Cancelled("coordinator stopping");
      break;
    }
    const int64_t now = NowSteadyUs();
    SweepLeasesLocked(now);

    bool all_complete = true;
    bool any_pending = false;
    for (const auto& [id, shard] : shards_) {
      if (!shard.progress.complete) {
        all_complete = false;
        if (shard.owner.empty()) any_pending = true;
      }
    }
    if (all_complete) {
      MergeLocked(values);
      // Best-effort: a lost scan_end just leaves a completed scan in the
      // journal; the next batch's fingerprint won't match it, so it is
      // superseded, never recounted.
      (void)journal_->AppendScanEnd(scan_id_);
      break;
    }

    // Liveness without workers: after a full lease period of silence — no
    // worker frame since the scan started, or every worker stale — the
    // coordinator counts a pending shard itself, through the same
    // grant/journal path, so the result is the same bytes and a crash
    // resumes identically. The grace period lets freshly launched workers
    // win the race for the first scan instead of the coordinator
    // sprinting through it alone.
    int64_t last_heard_us = scan_started_us;
    for (const auto& [name, last_seen] : workers_) {
      last_heard_us = std::max(last_heard_us, last_seen);
    }
    const bool network_silent = now - last_heard_us > options_.lease_ms * 1000;
    if (any_pending && network_silent) {
      Status local = CountShardLocallyLocked(lock);
      if (!local.ok() && !local.IsTransient()) {
        status = local;
        break;
      }
      continue;
    }
    scan_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  scan_active_ = false;
  lock.unlock();

  scan_span.dur_us = obs::SinceEpochUs() - scan_span.ts_us;
  scan_span.args.emplace_back("scan", std::to_string(scan_id_));
  scan_span.args.emplace_back("patterns", std::to_string(probe.size()));
  scan_span.args.emplace_back("outcome",
                              status.ok() ? "ok" : ToString(status.code()));
  obs::Tracer::Global().AddComplete(std::move(scan_span));
  return status;
}

Status Coordinator::CountShardLocallyLocked(
    std::unique_lock<std::mutex>& lock) {
  // Pick the first pending shard and grant it to ourselves — journaled
  // epoch bump like any grant, so a zombie worker racing us is fenced.
  uint64_t id = 0;
  ShardState* shard = nullptr;
  for (auto& [shard_id, state] : shards_) {
    if (!state.progress.complete && state.owner.empty()) {
      id = shard_id;
      shard = &state;
      break;
    }
  }
  if (shard == nullptr) return Status::Ok();
  const uint64_t epoch = epochs_[id] + 1;
  Status js = journal_->AppendEpoch(id, epoch);
  if (!js.ok()) return js;
  epochs_[id] = epoch;
  shard->owner = "coordinator";
  shard->granted_us = NowSteadyUs();
  shard->lease_deadline_us = shard->granted_us + options_.lease_ms * 1000;
  if (shard->reassigns > 0 || shard->progress.done > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter(shard->progress.done > 0 ? "dist.shards.resumed"
                                             : "dist.shards.restarted")
        .Increment();
  }
  EmitDistSpan("dist.local_grant", id, epoch, "coordinator");

  const uint64_t scan = scan_id_;
  const uint64_t begin = shard->begin_record;
  const uint64_t end = shard->end_record;
  std::vector<Pattern> patterns = scan_patterns_;
  const Metric metric = scan_metric_;
  ShardProgress progress = shard->progress;
  lock.unlock();

  CoordinatorEnv* env = EnvFor(this);
  Status status = Status::Ok();
  if (env == nullptr || env->db == nullptr) {
    status = Status::Internal("coordinator environment missing");
  } else {
    const CompatibilityMatrix* c =
        metric == Metric::kMatch ? &*env->matrix : nullptr;
    BatchCountKernel kernel(patterns, c);
    for (uint64_t k = progress.done;; ++k) {
      const uint64_t lo = begin + k * exec_shard_size_;
      if (lo >= end) break;
      const uint64_t hi = std::min(lo + exec_shard_size_, end);
      Status run_status = runtime::CheckRun(&run_control_);
      if (!run_status.ok()) {
        status = run_status;
        break;
      }
      std::vector<double> partial(patterns.size(), 0.0);
      exec::RecordFn fn = kernel.MakeRecordFn();
      status = env->db->ScanRange(
          static_cast<size_t>(lo), static_cast<size_t>(hi),
          [&](const SequenceRecord& r) { fn(r, &partial); },
          /*restart=*/[&] {
            partial.assign(patterns.size(), 0.0);
            fn = kernel.MakeRecordFn();
          });
      if (!status.ok()) break;
      progress.partials.push_back(std::move(partial));
      progress.done = k + 1;
      progress.complete = hi >= end;
      status = journal_->AppendShardProgress(scan, id, progress);
      if (!status.ok()) break;
    }
  }

  lock.lock();
  // Only publish if the world didn't move: same scan, and the shard was
  // not re-granted out from under us (it can't be — we hold the lease and
  // sweep only runs on this thread — but the check keeps the invariant
  // local and obvious).
  if (scan_active_ && scan_id_ == scan && epochs_[id] == epoch) {
    auto it = shards_.find(id);
    if (it != shards_.end()) {
      it->second.progress = std::move(progress);
      if (it->second.progress.complete) it->second.owner.clear();
    }
  }
  return status;
}

std::string Coordinator::ShardzJson() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const int64_t now = NowSteadyUs();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  std::string out = "{\"scan_active\": ";
  out.append(scan_active_ ? "true" : "false");
  out.append(", \"scan\": ");
  obs::AppendJsonNumber(static_cast<double>(scan_id_), &out);
  out.append(", \"num_sequences\": ");
  obs::AppendJsonNumber(static_cast<double>(num_sequences_), &out);
  out.append(", \"records_per_shard\": ");
  obs::AppendJsonNumber(static_cast<double>(records_per_shard_), &out);
  out.append(", \"reassigned\": ");
  obs::AppendJsonNumber(
      static_cast<double>(reg.CounterValue("dist.shards.reassigned")), &out);
  out.append(", \"fenced\": ");
  obs::AppendJsonNumber(
      static_cast<double>(reg.CounterValue("dist.results.fenced")), &out);
  out.append(", \"resumed\": ");
  obs::AppendJsonNumber(
      static_cast<double>(reg.CounterValue("dist.shards.resumed")), &out);
  out.append(", \"restarted\": ");
  obs::AppendJsonNumber(
      static_cast<double>(reg.CounterValue("dist.shards.restarted")), &out);
  out.append(", \"workers\": {");
  bool first = true;
  for (const auto& [name, last_seen] : workers_) {
    if (!first) out.append(", ");
    first = false;
    obs::AppendJsonString(name, &out);
    out.append(": {\"last_seen_ms\": ");
    obs::AppendJsonNumber(static_cast<double>((now - last_seen) / 1000),
                          &out);
    out.append("}");
  }
  out.append("}, \"shards\": [");
  first = true;
  for (const auto& [id, shard] : shards_) {
    if (!first) out.append(", ");
    first = false;
    out.append("{\"id\": ");
    obs::AppendJsonNumber(static_cast<double>(id), &out);
    out.append(", \"begin\": ");
    obs::AppendJsonNumber(static_cast<double>(shard.begin_record), &out);
    out.append(", \"end\": ");
    obs::AppendJsonNumber(static_cast<double>(shard.end_record), &out);
    out.append(", \"epoch\": ");
    auto epoch_it = epochs_.find(id);
    obs::AppendJsonNumber(
        static_cast<double>(epoch_it == epochs_.end() ? 0 : epoch_it->second),
        &out);
    out.append(", \"owner\": ");
    obs::AppendJsonString(shard.owner, &out);
    out.append(", \"lease_age_ms\": ");
    obs::AppendJsonNumber(
        shard.owner.empty()
            ? -1.0
            : static_cast<double>((now - shard.granted_us) / 1000),
        &out);
    out.append(", \"reassigns\": ");
    obs::AppendJsonNumber(static_cast<double>(shard.reassigns), &out);
    out.append(", \"done\": ");
    obs::AppendJsonNumber(static_cast<double>(shard.progress.done), &out);
    out.append(", \"complete\": ");
    out.append(shard.progress.complete ? "true" : "false");
    out.append("}");
  }
  out.append("]}\n");
  return out;
}

}  // namespace dist
}  // namespace nmine
