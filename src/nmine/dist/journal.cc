#include "nmine/dist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "nmine/dist/wire.h"
#include "nmine/obs/json_parse.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/logger.h"
#include "nmine/runtime/checkpoint_io.h"

namespace nmine {
namespace dist {
namespace {

void AppendEpochLine(uint64_t shard, uint64_t epoch, std::string* out) {
  out->append("{\"event\": \"epoch\", \"shard\": ");
  obs::AppendJsonNumber(static_cast<double>(shard), out);
  out->append(", \"epoch\": ");
  obs::AppendJsonNumber(static_cast<double>(epoch), out);
  out->append("}\n");
}

std::string Hex16(uint64_t bits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[bits & 0xf];
    bits >>= 4;
  }
  return out;
}

bool ParseHex16(const std::string& text, uint64_t* bits) {
  double as_double = 0.0;
  if (!DecodeDoubleBits(text, &as_double)) return false;
  std::memcpy(bits, &as_double, sizeof(*bits));
  return true;
}

void AppendScanLine(uint64_t scan, uint64_t fingerprint, std::string* out) {
  out->append("{\"event\": \"scan\", \"scan\": ");
  obs::AppendJsonNumber(static_cast<double>(scan), out);
  out->append(", \"fp\": \"");
  out->append(Hex16(fingerprint));
  out->append("\"}\n");
}

void AppendProgressLine(uint64_t scan, uint64_t shard,
                        const ShardProgress& progress, std::string* out) {
  out->append("{\"event\": \"progress\", \"scan\": ");
  obs::AppendJsonNumber(static_cast<double>(scan), out);
  out->append(", \"shard\": ");
  obs::AppendJsonNumber(static_cast<double>(shard), out);
  out->append(", \"done\": ");
  obs::AppendJsonNumber(static_cast<double>(progress.done), out);
  out->append(", \"complete\": ");
  out->append(progress.complete ? "true" : "false");
  out->append(", \"partials\": [");
  for (size_t i = 0; i < progress.partials.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append("[");
    for (size_t j = 0; j < progress.partials[i].size(); ++j) {
      if (j > 0) out->append(", ");
      out->append("\"");
      out->append(EncodeDoubleBits(progress.partials[i][j]));
      out->append("\"");
    }
    out->append("]");
  }
  out->append("]}\n");
}

void AppendScanEndLine(uint64_t scan, std::string* out) {
  out->append("{\"event\": \"scan_end\", \"scan\": ");
  obs::AppendJsonNumber(static_cast<double>(scan), out);
  out->append("}\n");
}

/// Applies one journal line to the state. Unparseable lines (the torn
/// trailing write of a crash) are skipped — anything torn was by
/// construction never acknowledged to a worker.
void Replay(const std::string& line, ReplayState* state) {
  std::optional<obs::JsonValue> value = obs::ParseJson(line);
  if (!value.has_value() || !value->is_object()) return;
  const obs::JsonValue* event = value->Get("event");
  if (event == nullptr || !event->is_string()) return;

  if (event->string_value == "epoch") {
    const obs::JsonValue* shard = value->Get("shard");
    const obs::JsonValue* epoch = value->Get("epoch");
    if (shard == nullptr || !shard->is_number() || epoch == nullptr ||
        !epoch->is_number()) {
      return;
    }
    uint64_t& slot = state->epochs[static_cast<uint64_t>(shard->number_value)];
    slot = std::max(slot, static_cast<uint64_t>(epoch->number_value));
    return;
  }
  if (event->string_value == "scan") {
    const obs::JsonValue* scan = value->Get("scan");
    const obs::JsonValue* fp = value->Get("fp");
    uint64_t fingerprint = 0;
    if (scan == nullptr || !scan->is_number() || fp == nullptr ||
        !fp->is_string() || !ParseHex16(fp->string_value, &fingerprint)) {
      return;
    }
    // A new scan supersedes any earlier in-flight one: only the latest
    // batch's partials are ever re-adoptable.
    state->has_scan = true;
    state->scan = static_cast<uint64_t>(scan->number_value);
    state->fingerprint = fingerprint;
    state->shards.clear();
    return;
  }
  if (event->string_value == "progress") {
    const obs::JsonValue* scan = value->Get("scan");
    const obs::JsonValue* shard = value->Get("shard");
    const obs::JsonValue* partials = value->Get("partials");
    if (scan == nullptr || !scan->is_number() || shard == nullptr ||
        !shard->is_number() || partials == nullptr || !partials->is_array() ||
        !state->has_scan ||
        static_cast<uint64_t>(scan->number_value) != state->scan) {
      return;
    }
    ShardProgress progress;
    for (const obs::JsonValue& entry : partials->array) {
      if (!entry.is_array()) return;
      std::vector<double> partial;
      partial.reserve(entry.array.size());
      for (const obs::JsonValue& cell : entry.array) {
        double d = 0.0;
        if (!cell.is_string() || !DecodeDoubleBits(cell.string_value, &d)) {
          return;
        }
        partial.push_back(d);
      }
      progress.partials.push_back(std::move(partial));
    }
    progress.done = static_cast<uint64_t>(value->GetNumber("done", 0.0));
    if (progress.done != progress.partials.size()) return;
    const obs::JsonValue* complete = value->Get("complete");
    progress.complete = complete != nullptr && complete->bool_value;
    // Replacement, not accumulation: replaying the same progress twice
    // (or an un-acked resend after it) lands on identical state.
    state->shards[static_cast<uint64_t>(shard->number_value)] =
        std::move(progress);
    return;
  }
  if (event->string_value == "scan_end") {
    const obs::JsonValue* scan = value->Get("scan");
    if (scan == nullptr || !scan->is_number() || !state->has_scan ||
        static_cast<uint64_t>(scan->number_value) != state->scan) {
      return;
    }
    state->has_scan = false;
    state->scan = 0;
    state->fingerprint = 0;
    state->shards.clear();
  }
}

}  // namespace

std::unique_ptr<DistJournal> DistJournal::Open(const std::string& state_dir,
                                               ReplayState* state,
                                               std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(state_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create state dir '" + state_dir + "': " + ec.message();
    }
    return nullptr;
  }
  const std::string path =
      (std::filesystem::path(state_dir) / "dist.journal").string();

  // Replay line-wise: the unterminated final line of a crash parses as
  // garbage and is skipped.
  *state = ReplayState();
  size_t replayed_lines = 0;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      Replay(line, state);
      ++replayed_lines;
    }
  }

  // Compact: epochs plus the in-flight scan (if any) are all that the next
  // life needs; everything else — dead scans, superseded progress — drops.
  std::string compacted;
  for (const auto& [shard, epoch] : state->epochs) {
    AppendEpochLine(shard, epoch, &compacted);
  }
  if (state->has_scan) {
    AppendScanLine(state->scan, state->fingerprint, &compacted);
    for (const auto& [shard, progress] : state->shards) {
      AppendProgressLine(state->scan, shard, progress, &compacted);
    }
  }
  Status write_status = runtime::AtomicWriteFile(path, compacted);
  if (!write_status.ok()) {
    if (error != nullptr) *error = write_status.ToString();
    return nullptr;
  }

  std::unique_ptr<DistJournal> journal(new DistJournal(path));
  journal->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (journal->fd_ < 0) {
    if (error != nullptr) {
      *error = "cannot open dist journal '" + path +
               "' for append: " + std::string(strerror(errno));
    }
    return nullptr;
  }
  if (replayed_lines > 0) {
    NMINE_LOG(kInfo, "dist")
        .Msg("dist journal replayed")
        .Num("lines", static_cast<int64_t>(replayed_lines))
        .Num("shard_epochs", static_cast<int64_t>(state->epochs.size()))
        .Num("inflight_scan", state->has_scan ? 1 : 0);
  }
  return journal;
}

DistJournal::~DistJournal() {
  if (fd_ >= 0) ::close(fd_);
}

Status DistJournal::AppendLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t done = 0;
  while (done < line.size()) {
    ssize_t w = ::write(fd_, line.data() + done, line.size() - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("dist journal write failed: " +
                                 std::string(strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  if (::fsync(fd_) != 0) {
    return Status::Unavailable("dist journal fsync failed: " +
                               std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status DistJournal::AppendEpoch(uint64_t shard, uint64_t epoch) {
  std::string line;
  AppendEpochLine(shard, epoch, &line);
  return AppendLine(line);
}

Status DistJournal::AppendScanBegin(uint64_t scan, uint64_t fingerprint) {
  std::string line;
  AppendScanLine(scan, fingerprint, &line);
  return AppendLine(line);
}

Status DistJournal::AppendShardProgress(uint64_t scan, uint64_t shard,
                                        const ShardProgress& progress) {
  std::string line;
  AppendProgressLine(scan, shard, progress, &line);
  return AppendLine(line);
}

Status DistJournal::AppendScanEnd(uint64_t scan) {
  std::string line;
  AppendScanEndLine(scan, &line);
  return AppendLine(line);
}

uint64_t ScanFingerprint(const std::string& metric,
                         const std::vector<Pattern>& patterns) {
  uint64_t hash = 14695981039346656037ull;
  auto mix = [&hash](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  for (char ch : metric) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  mix(patterns.size());
  for (const Pattern& p : patterns) {
    mix(p.length());
    for (size_t i = 0; i < p.length(); ++i) {
      mix(static_cast<uint64_t>(static_cast<int64_t>(p[i])));
    }
  }
  return hash;
}

}  // namespace dist
}  // namespace nmine
