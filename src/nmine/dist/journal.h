#ifndef NMINE_DIST_JOURNAL_H_
#define NMINE_DIST_JOURNAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nmine/core/pattern.h"
#include "nmine/core/status.h"

namespace nmine {
namespace dist {

/// Journaled progress of one dist shard within the in-flight scan:
/// cumulative per-exec-shard partial sums, replaced (never summed) on
/// every append so replay is idempotent.
struct ShardProgress {
  uint64_t done = 0;  // exec shards finished (== partials.size())
  bool complete = false;
  std::vector<std::vector<double>> partials;
};

/// Everything DistJournal::Open recovers from a prior coordinator life.
struct ReplayState {
  /// Highest granted epoch per dist shard. Grants after recovery start
  /// ABOVE these, so a zombie worker from the previous life can never
  /// hold a current epoch.
  std::map<uint64_t, uint64_t> epochs;
  /// The scan that was in flight at the crash, if any, identified by a
  /// fingerprint over (metric, probe patterns). The restarted run re-derives
  /// the same probe from its RunCheckpoint, so a matching fingerprint means
  /// the journaled shard progress belongs to the batch being re-counted.
  bool has_scan = false;
  uint64_t scan = 0;
  uint64_t fingerprint = 0;
  std::map<uint64_t, ShardProgress> shards;
};

/// Write-ahead journal of the coordinator's assignment state, the
/// crash-recovery spine of nmine_coordinator (the dist cousin of
/// serve::JobJournal — same line-JSON WAL, torn-tail-tolerant replay,
/// compaction on open).
///
/// Events, each one fsync'd JSON line in `<state_dir>/dist.journal`:
///
///   {"event": "epoch", "shard": H, "epoch": E}     BEFORE the grant response
///   {"event": "scan",  "scan": S, "fp": "hex16"}   scan begins
///   {"event": "progress", "scan": S, "shard": H, "done": D,
///    "complete": B, "partials": [[hex16...],...]}  BEFORE acking the worker
///   {"event": "scan_end", "scan": S}               totals merged & consumed
///
/// Epoch ordering is the fencing invariant: an epoch is journaled before
/// any worker learns it, so epochs never regress across coordinator
/// restarts and a stale-epoch result can always be detected. Progress
/// ordering gives exactly-once counting: partials are journaled (by
/// replacement) before the worker is acked, so an un-acked worker resend
/// just overwrites the same cumulative state.
class DistJournal {
 public:
  /// Opens (creating state_dir if needed), replays into `state`, and
  /// compacts. A scan_end clears the in-flight scan, so only an
  /// interrupted scan survives replay. nullptr with *error on failure.
  static std::unique_ptr<DistJournal> Open(const std::string& state_dir,
                                           ReplayState* state,
                                           std::string* error);

  ~DistJournal();
  DistJournal(const DistJournal&) = delete;
  DistJournal& operator=(const DistJournal&) = delete;

  Status AppendEpoch(uint64_t shard, uint64_t epoch);
  Status AppendScanBegin(uint64_t scan, uint64_t fingerprint);
  Status AppendShardProgress(uint64_t scan, uint64_t shard,
                             const ShardProgress& progress);
  Status AppendScanEnd(uint64_t scan);

  const std::string& path() const { return path_; }

 private:
  explicit DistJournal(std::string path) : path_(std::move(path)) {}

  Status AppendLine(const std::string& line);

  std::string path_;
  std::mutex mutex_;
  int fd_ = -1;
};

/// FNV-1a over the metric wire name and the probe patterns. Identifies a
/// probe batch across coordinator restarts without trusting scan ids
/// (which restart from 1 in the new life).
uint64_t ScanFingerprint(const std::string& metric,
                         const std::vector<Pattern>& patterns);

}  // namespace dist
}  // namespace nmine

#endif  // NMINE_DIST_JOURNAL_H_
