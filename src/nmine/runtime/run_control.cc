#include "nmine/runtime/run_control.h"

#include <chrono>
#include <limits>

namespace nmine {
namespace runtime {

int64_t RunControl::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RunControl::SetDeadlineAfter(double seconds) {
  // A monotonic timestamp of 0 means "no deadline", so clamp pathological
  // arguments to 1ns past now instead of 0.
  const double ns = seconds * 1e9;
  int64_t deadline = NowNanos() + static_cast<int64_t>(ns > 0.0 ? ns : 0.0);
  if (deadline == 0) deadline = 1;
  deadline_ns_.store(deadline, std::memory_order_relaxed);
}

double RunControl::RemainingSeconds() const {
  int64_t d = deadline_ns_.load(std::memory_order_relaxed);
  if (d == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(d - NowNanos()) * 1e-9;
}

Status RunControl::Check() const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("run cancelled by operator request");
  }
  int64_t d = deadline_ns_.load(std::memory_order_relaxed);
  if (d != 0 && NowNanos() >= d) {
    return Status::DeadlineExceeded("run deadline exceeded");
  }
  return Status::Ok();
}

void RunControl::Reset() {
  cancelled_.store(false, std::memory_order_relaxed);
  deadline_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace runtime
}  // namespace nmine
