#ifndef NMINE_RUNTIME_RESOURCE_GOVERNOR_H_
#define NMINE_RUNTIME_RESOURCE_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "nmine/core/pattern.h"
#include "nmine/core/sequence.h"
#include "nmine/core/status.h"

namespace nmine {
namespace runtime {

/// Byte-level accounting of mining working memory (the in-memory sample,
/// candidate pattern batches, borders) against a configurable budget, with
/// a degradation ladder instead of a hard failure:
///
///   1. Shrink Phase-3 probe batches below max_counters_per_scan — more
///      probe scans, results still exact.
///   2. Shrink the in-memory sample and recompute epsilon from the new n —
///      a wider ambiguous band means more exact probe work, results still
///      exact (a prefix of a uniform random sample is itself uniform).
///   3. Only when even the floors cannot fit, fail kResourceExhausted.
///
/// Every degradation step is logged and counted in the metrics registry
/// (governor.probe_batch_shrinks, governor.sample_shrinks,
/// governor.exhausted). A budget of 0 disables all accounting: every
/// admission succeeds and no bytes are tracked.
///
/// The governor is a per-run, single-threaded object owned by the miner;
/// worker threads never touch it (their transient per-shard accumulators
/// are charged once, by the miner, as `accum_bytes * threads`).
class ResourceGovernor {
 public:
  /// `budget_bytes` = 0 means unlimited.
  explicit ResourceGovernor(size_t budget_bytes)
      : budget_(budget_bytes) {}

  bool unlimited() const { return budget_ == 0; }
  size_t budget_bytes() const { return budget_; }
  size_t charged_bytes() const { return charged_; }

  /// Bytes still available for new charges (SIZE_MAX when unlimited).
  size_t RemainingBytes() const;

  /// Charges `bytes` of long-lived working state (sample, borders,
  /// resolved-pattern sets) under `what`. kResourceExhausted when it does
  /// not fit; the caller decides whether a ladder step can shed load
  /// first. Charges are cumulative until Release.
  Status Charge(const char* what, size_t bytes);

  /// Returns previously charged bytes to the budget (clamped at zero).
  void Release(size_t bytes);

  /// Ladder step 2 (decided at the Phase-1 boundary): how many of the
  /// `available` sampled sequences, whose in-memory footprint is
  /// `sample_bytes`, may be kept. Admits everything when it fits;
  /// otherwise shrinks the sample pro-rata to HALF the remaining budget
  /// (the other half stays free for counting batches; logging + counting
  /// the step) and returns the reduced count, at least `min_keep`. 0 when
  /// not even `min_keep` sequences fit — the caller then fails
  /// kResourceExhausted. The admitted bytes are charged.
  size_t AdmitSample(size_t available, size_t sample_bytes, size_t min_keep);

  /// Ladder step 1 (applied per Phase-3 scan / per level batch): how many
  /// of `want` candidate counters, at `bytes_per_counter` each, fit in the
  /// remaining budget. Returns `want` when unconstrained; a smaller batch
  /// (>= 1, logging + counting the first shrink per run) when the budget
  /// binds; 0 when not even one counter fits. Nothing is charged — batch
  /// memory is transient and bounded by the returned size.
  size_t AdmitBatch(size_t want, size_t bytes_per_counter);

  /// Number of ladder steps taken so far (probe-batch shrinks count once
  /// per run, sample shrinks once per run).
  int degradation_steps() const { return degradation_steps_; }

 private:
  /// Mirrors the ladder state onto the process-wide RunStatusBoard so
  /// /statusz reports it live.
  void Publish() const;

  size_t budget_ = 0;
  size_t charged_ = 0;
  int degradation_steps_ = 0;
  bool batch_shrink_logged_ = false;
};

/// Approximate resident footprint of a pattern (body vector + bookkeeping).
size_t PatternBytes(const Pattern& p);

/// Approximate resident footprint of a sampled sequence record.
size_t RecordBytes(const SequenceRecord& rec);

}  // namespace runtime
}  // namespace nmine

#endif  // NMINE_RUNTIME_RESOURCE_GOVERNOR_H_
