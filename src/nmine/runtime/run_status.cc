#include "nmine/runtime/run_status.h"

#include <cmath>

#include "nmine/obs/clock.h"
#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/json_util.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"

namespace nmine {
namespace runtime {
namespace {

/// The counters /statusz surfaces as run progress; each maps to a paper
/// quantity (see DESIGN.md section 13).
constexpr const char* kProgressCounters[] = {
    "db.scans.started",       "db.sequences_scanned", "db.scan.retries",
    "phase2.levels",          "phase2.candidates",    "phase2.frequent",
    "phase2.ambiguous",       "phase3.scans",         "phase3.probed",
    "phase3.scan_retries",    "phase3.checkpoints",   "runtime.checkpoints",
    "governor.probe_batch_shrinks", "governor.sample_shrinks",
};

}  // namespace

RunStatusBoard& RunStatusBoard::Global() {
  static RunStatusBoard* board = new RunStatusBoard();
  return *board;
}

void RunStatusBoard::BeginRun(const char* command, const char* algorithm) {
  command_.store(command, std::memory_order_release);
  algorithm_.store(algorithm, std::memory_order_release);
  run_start_us_.store(obs::SinceEpochUs(), std::memory_order_release);
}

void RunStatusBoard::NoteCheckpointFlush() {
  checkpoint_flush_us_.store(obs::SinceEpochUs(), std::memory_order_release);
}

void RunStatusBoard::PublishGovernor(uint64_t budget_bytes,
                                     uint64_t charged_bytes,
                                     int64_t degradation_steps) {
  governor_budget_.store(budget_bytes, std::memory_order_relaxed);
  governor_charged_.store(charged_bytes, std::memory_order_relaxed);
  governor_steps_.store(degradation_steps, std::memory_order_relaxed);
}

int64_t RunStatusBoard::uptime_us() const {
  int64_t start = run_start_us_.load(std::memory_order_acquire);
  return start == 0 ? 0 : obs::SinceEpochUs() - start;
}

int64_t RunStatusBoard::checkpoint_age_us() const {
  int64_t at = checkpoint_flush_us_.load(std::memory_order_acquire);
  return at < 0 ? -1 : obs::SinceEpochUs() - at;
}

std::string RunStatusBoard::StatusJson() const {
  std::string out = "{\"schema\": \"nmine.statusz.v1\", \"command\": ";
  const char* cmd = command();
  const char* algo = algorithm();
  const char* ph = phase();
  obs::AppendJsonString(cmd == nullptr ? "idle" : cmd, &out);
  out.append(", \"algorithm\": ");
  obs::AppendJsonString(algo == nullptr ? "" : algo, &out);
  out.append(", \"phase\": ");
  if (ph != nullptr) {
    obs::AppendJsonString(ph, &out);
  } else {
    // Fall back to the profiler's live section path when the miner has
    // not published a phase (e.g. profiling-only runs).
    std::string section = obs::Profiler::Global().CurrentSection();
    obs::AppendJsonString(section.empty() ? "idle" : section, &out);
  }
  out.append(", \"simd_kernel\": ");
  const char* simd = simd_kernel();
  obs::AppendJsonString(simd == nullptr ? "scalar" : simd, &out);
  out.append(", \"uptime_s\": ");
  obs::AppendJsonNumber(static_cast<double>(uptime_us()) / 1e6, &out);

  const RunControl* run = run_control();
  out.append(", \"cancel_requested\": ");
  out.append(run != nullptr && run->cancel_requested() ? "true" : "false");
  out.append(", \"deadline_remaining_s\": ");
  if (run != nullptr && run->has_deadline()) {
    double remaining = run->RemainingSeconds();
    obs::AppendJsonNumber(std::isfinite(remaining) ? remaining : 0.0, &out);
  } else {
    out.append("null");
  }

  out.append(", \"checkpoint_age_s\": ");
  int64_t age_us = checkpoint_age_us();
  if (age_us < 0) {
    out.append("null");
  } else {
    obs::AppendJsonNumber(static_cast<double>(age_us) / 1e6, &out);
  }

  out.append(", \"governor\": {\"budget_bytes\": ");
  obs::AppendJsonNumber(static_cast<double>(governor_budget_bytes()), &out);
  out.append(", \"charged_bytes\": ");
  obs::AppendJsonNumber(static_cast<double>(governor_charged_bytes()), &out);
  out.append(", \"degradation_steps\": ");
  obs::AppendJsonNumber(static_cast<double>(governor_degradation_steps()),
                        &out);
  out.append("}");

  out.append(", \"progress\": {");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  bool first = true;
  for (const char* name : kProgressCounters) {
    if (!first) out.append(", ");
    first = false;
    obs::AppendJsonString(name, &out);
    out.append(": ");
    obs::AppendJsonNumber(static_cast<double>(reg.CounterValue(name)), &out);
  }
  // The retry-budget gauge rides along with the counters: a flapping disk
  // shows up here as the budget draining scan over scan.
  out.append(", \"db.scan.retry_budget_remaining\": ");
  obs::AppendJsonNumber(reg.GaugeValue("db.scan.retry_budget_remaining"),
                        &out);
  out.append("}}\n");
  return out;
}

void PublishPhase(const char* phase) {
  RunStatusBoard::Global().SetPhase(phase);
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kPhase, phase);
}

void PublishProgress(const char* what, int64_t a, int64_t b) {
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kProgress, what,
                                       a, b);
}

void RunStatusBoard::Reset() {
  command_.store(nullptr, std::memory_order_relaxed);
  algorithm_.store(nullptr, std::memory_order_relaxed);
  phase_.store(nullptr, std::memory_order_relaxed);
  simd_kernel_.store(nullptr, std::memory_order_relaxed);
  run_control_.store(nullptr, std::memory_order_relaxed);
  run_start_us_.store(0, std::memory_order_relaxed);
  checkpoint_flush_us_.store(-1, std::memory_order_relaxed);
  governor_budget_.store(0, std::memory_order_relaxed);
  governor_charged_.store(0, std::memory_order_relaxed);
  governor_steps_.store(0, std::memory_order_relaxed);
}

}  // namespace runtime
}  // namespace nmine
