#include "nmine/runtime/checkpoint_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifdef _WIN32
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "nmine/obs/logger.h"

namespace nmine {
namespace runtime {
namespace {

/// fsync the file at `path` so the rename below publishes durable bytes.
/// Best-effort on platforms without fsync semantics.
bool SyncFile(const std::string& path) {
#ifdef _WIN32
  (void)path;
  return true;
#else
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#endif
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Unavailable("cannot open temp file '" + tmp + "'");
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      return Status::Unavailable("short write to temp file '" + tmp + "'");
    }
  }
  if (!SyncFile(tmp)) {
    return Status::Unavailable("cannot fsync temp file '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Unavailable("cannot rename '" + tmp + "' into place: " +
                               ec.message());
  }
  return Status::Ok();
}

void BestEffortRemoveFile(const std::string& path, const char* component) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    NMINE_LOG(kWarn, component)
        .Msg("could not remove file")
        .Str("path", path)
        .Str("error", ec.message());
  }
}

}  // namespace runtime
}  // namespace nmine
