#ifndef NMINE_RUNTIME_RUN_STATUS_H_
#define NMINE_RUNTIME_RUN_STATUS_H_

#include <atomic>
#include <cstdint>

#include "nmine/runtime/run_control.h"

namespace nmine {
namespace runtime {

/// Process-wide, lock-free notice board the live-introspection surface
/// (/statusz, the telemetry sampler) reads while a run is in flight.
/// Producers — the CLI driver, the miners at phase boundaries, the
/// resource governor, the checkpoint writer — publish with single relaxed
/// stores, so publishing costs nothing measurable and is safe from any
/// thread. Readers get a point-in-time view that is never torn below the
/// field level.
///
/// Strings are const char* to static storage (string literals at the call
/// sites): a reader can dereference whatever pointer it loads at any
/// time, even mid-update.
class RunStatusBoard {
 public:
  static RunStatusBoard& Global();

  RunStatusBoard() = default;
  RunStatusBoard(const RunStatusBoard&) = delete;
  RunStatusBoard& operator=(const RunStatusBoard&) = delete;

  /// --- Driver-side setup (CLI) ---

  /// Marks the run as started now; `command` and `algorithm` must point
  /// to static storage.
  void BeginRun(const char* command, const char* algorithm);
  void SetRunControl(const RunControl* run) {
    run_control_.store(run, std::memory_order_release);
  }

  /// The active match kernel ("scalar", "avx2", "neon"); `kernel` must
  /// point to static storage (SimdLevelName does). Published by the CLI /
  /// server after --simd resolution so /statusz reports which code path
  /// the run's M(P,s) evaluations take.
  void SetSimdKernel(const char* kernel) {
    simd_kernel_.store(kernel, std::memory_order_release);
  }
  const char* simd_kernel() const {
    return simd_kernel_.load(std::memory_order_acquire);
  }

  /// --- Miner-side publishing ---

  /// `phase` must point to static storage ("phase1", "phase2", ...).
  void SetPhase(const char* phase) {
    phase_.store(phase, std::memory_order_release);
  }

  /// Stamps the time of a successful checkpoint flush.
  void NoteCheckpointFlush();

  /// Governor ladder state, published by ResourceGovernor on every
  /// change.
  void PublishGovernor(uint64_t budget_bytes, uint64_t charged_bytes,
                       int64_t degradation_steps);

  /// --- Reader side (/statusz) ---

  const char* command() const {
    return command_.load(std::memory_order_acquire);
  }
  const char* algorithm() const {
    return algorithm_.load(std::memory_order_acquire);
  }
  const char* phase() const { return phase_.load(std::memory_order_acquire); }
  const RunControl* run_control() const {
    return run_control_.load(std::memory_order_acquire);
  }
  /// Microseconds since BeginRun (0 when no run started).
  int64_t uptime_us() const;
  /// Microseconds since the last checkpoint flush; -1 when none yet.
  int64_t checkpoint_age_us() const;
  uint64_t governor_budget_bytes() const {
    return governor_budget_.load(std::memory_order_relaxed);
  }
  uint64_t governor_charged_bytes() const {
    return governor_charged_.load(std::memory_order_relaxed);
  }
  int64_t governor_degradation_steps() const {
    return governor_steps_.load(std::memory_order_relaxed);
  }

  /// The whole board as a JSON object — the /statusz payload body
  /// ({"schema": "nmine.statusz.v1", "command": ..., "phase": ...,
  ///   "uptime_s": ..., "deadline_remaining_s": ..., "cancel_requested":
  ///   ..., "governor": {...}, "checkpoint_age_s": ..., "progress":
  ///   {...}}). Progress counters are read from the global metrics
  ///   registry.
  std::string StatusJson() const;

  /// Clears everything (tests).
  void Reset();

 private:
  std::atomic<const char*> command_{nullptr};
  std::atomic<const char*> algorithm_{nullptr};
  std::atomic<const char*> phase_{nullptr};
  std::atomic<const char*> simd_kernel_{nullptr};
  std::atomic<const RunControl*> run_control_{nullptr};
  std::atomic<int64_t> run_start_us_{0};
  std::atomic<int64_t> checkpoint_flush_us_{-1};
  std::atomic<uint64_t> governor_budget_{0};
  std::atomic<uint64_t> governor_charged_{0};
  std::atomic<int64_t> governor_steps_{0};
};

/// Publishes a phase transition on the global board AND records it in the
/// flight recorder, so /statusz and crash dumps agree on where the run
/// was. `phase` must point to static storage (string literals).
void PublishPhase(const char* phase);

/// Same, with a progress event instead of a phase change: records a
/// kProgress flight event (a/b are event-specific quantities, e.g.
/// level/candidates or remaining/scans).
void PublishProgress(const char* what, int64_t a, int64_t b);

}  // namespace runtime
}  // namespace nmine

#endif  // NMINE_RUNTIME_RUN_STATUS_H_
