#ifndef NMINE_RUNTIME_RUN_CONTROL_H_
#define NMINE_RUNTIME_RUN_CONTROL_H_

#include <atomic>
#include <cstdint>

#include "nmine/core/status.h"
#include "nmine/obs/flight_recorder.h"

namespace nmine {
namespace runtime {

/// Cooperative cancellation token plus an optional monotonic deadline for
/// one mining run.
///
/// A RunControl is shared between the driver (CLI signal handlers, a
/// deadline set at startup) and the workers (miners, the exec layer): the
/// driver flips the token, and the workers poll it at natural boundaries —
/// shard boundaries inside ParallelFor / ShardedScanReducer, per-level and
/// per-batch boundaries in the miners. Nothing is ever interrupted
/// mid-record, so a stopped run is always at a consistent point: it
/// flushes its checkpoint (when configured) and returns a typed non-OK
/// status, never a silently-partial pattern set.
///
/// RequestCancel() is a single relaxed atomic store, so it is safe to call
/// from a POSIX signal handler. All polling methods are lock-free.
class RunControl {
 public:
  RunControl() = default;
  RunControl(const RunControl&) = delete;
  RunControl& operator=(const RunControl&) = delete;

  /// Requests cooperative cancellation. Async-signal-safe; idempotent.
  /// The first request (only) is logged to the flight recorder, which is
  /// itself signal-safe, so a crash dump shows when the stop was asked
  /// for relative to the last spans and governor steps.
  void RequestCancel() {
    if (!cancelled_.exchange(true, std::memory_order_relaxed)) {
      obs::FlightRecorder::Global().Record(obs::FlightEventType::kCancel,
                                           "run_control.cancel");
    }
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms (or re-arms) a deadline `seconds` from now on the monotonic
  /// clock. Non-positive values expire immediately.
  void SetDeadlineAfter(double seconds);

  /// Removes the deadline (the cancel flag is unaffected).
  void ClearDeadline() { deadline_ns_.store(0, std::memory_order_relaxed); }

  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  /// Seconds until the deadline; negative once it passed, +infinity when
  /// no deadline is armed.
  double RemainingSeconds() const;

  /// True once the run should stop: cancel requested or deadline passed.
  /// Cheap enough for per-shard polling (one relaxed load; a clock read
  /// only when a deadline is armed).
  bool StopRequested() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && NowNanos() >= d;
  }

  /// Ok while the run may continue; kCancelled or kDeadlineExceeded once
  /// it must stop (cancellation wins when both apply).
  Status Check() const;

  /// Resets both the cancel flag and the deadline (tests / reuse between
  /// runs). NOT async-signal-safe by contract, though it only stores.
  void Reset();

 private:
  static int64_t NowNanos();

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = no deadline
};

/// Null-tolerant polling helpers: every call site takes a `const
/// RunControl*` that is nullptr for ungoverned runs (benches, tests), in
/// which case these are a branch on a null pointer and nothing else.
inline bool StopRequested(const RunControl* run) {
  return run != nullptr && run->StopRequested();
}

inline Status CheckRun(const RunControl* run) {
  return run == nullptr ? Status::Ok() : run->Check();
}

}  // namespace runtime
}  // namespace nmine

#endif  // NMINE_RUNTIME_RUN_CONTROL_H_
