#include "nmine/runtime/run_checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/trace.h"
#include "nmine/runtime/checkpoint_io.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace runtime {
namespace {

constexpr const char kMagic[] = "nmine-run-checkpoint";
constexpr int kVersion = 1;

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

/// One pattern per line: `<value> <token> <token> ...` where a token is a
/// raw symbol id or `*`. Doubles are printed with max_digits10 so the
/// resumed run reproduces the interrupted run's values bit-for-bit.
void AppendPatternLine(std::string* out, const Pattern& p, double value) {
  AppendDouble(out, value);
  out->push_back(' ');
  out->append(p.ToString());
  out->push_back('\n');
}

bool ParsePatternLine(const std::string& line, Pattern* p, double* value) {
  std::istringstream in(line);
  if (!(in >> *value)) return false;
  std::vector<SymbolId> body;
  std::string token;
  while (in >> token) {
    if (token == "*") {
      body.push_back(kWildcard);
    } else {
      try {
        size_t pos = 0;
        long id = std::stol(token, &pos);
        if (pos != token.size() || id < 0) return false;
        body.push_back(static_cast<SymbolId>(id));
      } catch (...) {
        return false;
      }
    }
  }
  if (!Pattern::IsValidBody(body)) return false;
  *p = Pattern(std::move(body));
  return true;
}

}  // namespace

const char* ToString(RunStage stage) {
  switch (stage) {
    case RunStage::kPhase1Done:
      return "phase1";
    case RunStage::kPhase2Done:
      return "phase2";
    case RunStage::kPhase3Progress:
      return "phase3";
  }
  return "unknown";
}

Status WriteRunCheckpoint(const std::string& path, const RunCheckpoint& cp) {
  // Checkpoint cuts are a job-lifecycle edge worth seeing per trace: when
  // a traced run flushes a checkpoint the span attributes to that job.
  obs::TraceSpan span("runtime.checkpoint.write", "runtime");
  span.Arg("stage", ToString(cp.stage));
  std::string out;
  out.reserve(4096);
  out.append(kMagic).append(" v").append(std::to_string(kVersion));
  out.push_back('\n');
  out.append("stage ").append(ToString(cp.stage));
  out.push_back('\n');
  out.append("metric ").append(ToString(cp.metric));
  out.push_back('\n');
  out.append("threshold ");
  AppendDouble(&out, cp.min_threshold);
  out.push_back('\n');
  out.append("db ")
      .append(std::to_string(cp.num_sequences))
      .append(" ")
      .append(std::to_string(cp.total_symbols));
  out.push_back('\n');
  out.append("sampling ")
      .append(std::to_string(cp.sample_size))
      .append(" ")
      .append(std::to_string(cp.seed))
      .append(" ");
  AppendDouble(&out, cp.delta);
  out.push_back('\n');
  out.append("scans ").append(std::to_string(cp.scans_completed));
  out.push_back('\n');
  out.append("diag ")
      .append(std::to_string(cp.ambiguous_after_sample))
      .append(" ")
      .append(std::to_string(cp.ambiguous_with_unit_spread))
      .append(" ")
      .append(std::to_string(cp.accepted_from_sample))
      .append(" ")
      .append(cp.truncated ? "1" : "0");
  out.push_back('\n');
  out.append("governor ")
      .append(std::to_string(cp.effective_sample_size))
      .append(" ");
  AppendDouble(&out, cp.final_epsilon);
  out.push_back('\n');
  out.append("symbol_match ").append(std::to_string(cp.symbol_match.size()));
  for (double v : cp.symbol_match) {
    out.push_back(' ');
    AppendDouble(&out, v);
  }
  out.push_back('\n');
  out.append("sample ").append(std::to_string(cp.sample.size()));
  out.push_back('\n');
  for (const SequenceRecord& rec : cp.sample) {
    out.append(std::to_string(rec.id));
    for (SymbolId s : rec.symbols) {
      out.push_back(' ');
      out.append(std::to_string(s));
    }
    out.push_back('\n');
  }
  out.append("frequent ").append(std::to_string(cp.resolved_frequent.size()));
  out.push_back('\n');
  for (const auto& [p, v] : cp.resolved_frequent) {
    AppendPatternLine(&out, p, v);
  }
  out.append("unresolved ").append(std::to_string(cp.unresolved.size()));
  out.push_back('\n');
  for (const auto& [p, v] : cp.unresolved) {
    AppendPatternLine(&out, p, v);
  }
  // Trailer marker: a file cut short anywhere (torn write, truncated copy)
  // is detected even when the cut lands on a section boundary.
  out.append("end\n");
  Status status = AtomicWriteFile(path, out);
  if (status.ok()) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kCheckpoint, ToString(cp.stage),
        static_cast<int64_t>(cp.scans_completed),
        static_cast<int64_t>(cp.resolved_frequent.size()));
    RunStatusBoard::Global().NoteCheckpointFlush();
  }
  return status;
}

Status LoadRunCheckpoint(const std::string& path,
                         const RunCheckpoint& expected, RunCheckpoint* cp) {
  obs::TraceSpan span("runtime.checkpoint.load", "runtime");
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("no run checkpoint at '" + path + "'");
  }
  auto corrupt = [&path](const std::string& what) {
    return Status::DataLoss("malformed run checkpoint '" + path +
                            "': " + what);
  };

  std::string line;
  if (!std::getline(in, line) ||
      line != std::string(kMagic) + " v" + std::to_string(kVersion)) {
    return corrupt("bad header");
  }

  RunCheckpoint loaded;
  std::string word, name;
  if (!(in >> word >> name) || word != "stage") {
    return corrupt("missing stage");
  }
  if (name == "phase1") {
    loaded.stage = RunStage::kPhase1Done;
  } else if (name == "phase2") {
    loaded.stage = RunStage::kPhase2Done;
  } else if (name == "phase3") {
    loaded.stage = RunStage::kPhase3Progress;
  } else {
    return corrupt("unknown stage '" + name + "'");
  }
  if (!(in >> word >> name) || word != "metric") {
    return corrupt("missing metric");
  }
  if (name == "match") {
    loaded.metric = Metric::kMatch;
  } else if (name == "support") {
    loaded.metric = Metric::kSupport;
  } else {
    return corrupt("unknown metric '" + name + "'");
  }
  if (!(in >> word >> loaded.min_threshold) || word != "threshold") {
    return corrupt("missing threshold");
  }
  if (!(in >> word >> loaded.num_sequences >> loaded.total_symbols) ||
      word != "db") {
    return corrupt("missing db fingerprint");
  }
  if (!(in >> word >> loaded.sample_size >> loaded.seed >> loaded.delta) ||
      word != "sampling") {
    return corrupt("missing sampling fingerprint");
  }
  if (!(in >> word >> loaded.scans_completed) || word != "scans" ||
      loaded.scans_completed < 0) {
    return corrupt("missing scans");
  }
  int truncated = 0;
  if (!(in >> word >> loaded.ambiguous_after_sample >>
        loaded.ambiguous_with_unit_spread >> loaded.accepted_from_sample >>
        truncated) ||
      word != "diag") {
    return corrupt("missing diagnostics");
  }
  loaded.truncated = truncated != 0;
  if (!(in >> word >> loaded.effective_sample_size >>
        loaded.final_epsilon) ||
      word != "governor") {
    return corrupt("missing governor state");
  }
  size_t n_match = 0;
  if (!(in >> word >> n_match) || word != "symbol_match") {
    return corrupt("missing symbol_match");
  }
  loaded.symbol_match.resize(n_match);
  for (size_t i = 0; i < n_match; ++i) {
    if (!(in >> loaded.symbol_match[i])) {
      return corrupt("short symbol_match");
    }
  }
  size_t n_sample = 0;
  if (!(in >> word >> n_sample) || word != "sample") {
    return corrupt("missing sample section");
  }
  std::getline(in, line);  // consume end of the count line
  loaded.sample.reserve(n_sample);
  for (size_t i = 0; i < n_sample; ++i) {
    if (!std::getline(in, line)) {
      return corrupt("short sample section");
    }
    std::istringstream rec_in(line);
    SequenceRecord rec;
    long long id = 0;
    if (!(rec_in >> id) || id < 0) {
      return corrupt("bad sample record '" + line + "'");
    }
    rec.id = static_cast<SequenceId>(id);
    long sym = 0;
    while (rec_in >> sym) {
      if (sym < 0) return corrupt("bad sample record '" + line + "'");
      rec.symbols.push_back(static_cast<SymbolId>(sym));
    }
    if (!rec_in.eof()) {
      return corrupt("bad sample record '" + line + "'");
    }
    loaded.sample.push_back(std::move(rec));
  }

  auto read_patterns =
      [&](const char* section,
          std::vector<std::pair<Pattern, double>>* out) -> Status {
    size_t count = 0;
    if (!(in >> word >> count) || word != section) {
      return corrupt(std::string("missing ") + section + " section");
    }
    std::getline(in, line);  // consume end of the count line
    out->reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (!std::getline(in, line)) {
        return corrupt(std::string("short ") + section + " section");
      }
      Pattern p;
      double v = 0.0;
      if (!ParsePatternLine(line, &p, &v)) {
        return corrupt("bad pattern line '" + line + "'");
      }
      out->emplace_back(std::move(p), v);
    }
    return Status::Ok();
  };
  Status s = read_patterns("frequent", &loaded.resolved_frequent);
  if (!s.ok()) return s;
  s = read_patterns("unresolved", &loaded.unresolved);
  if (!s.ok()) return s;
  if (!(in >> word) || word != "end") {
    return corrupt("missing end marker (file truncated?)");
  }

  if (loaded.metric != expected.metric ||
      loaded.min_threshold != expected.min_threshold ||
      loaded.num_sequences != expected.num_sequences ||
      loaded.total_symbols != expected.total_symbols ||
      loaded.sample_size != expected.sample_size ||
      loaded.seed != expected.seed || loaded.delta != expected.delta) {
    return Status::FailedPrecondition(
        "run checkpoint '" + path +
        "' was written for a different run (metric/threshold/database/"
        "sampling mismatch); delete it to start fresh");
  }
  *cp = std::move(loaded);
  return Status::Ok();
}

void RemoveRunCheckpoint(const std::string& path) {
  BestEffortRemoveFile(path, "runtime");
}

}  // namespace runtime
}  // namespace nmine
