#include "nmine/runtime/resource_governor.h"

#include <limits>

#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/runtime/run_status.h"

namespace nmine {
namespace runtime {

size_t ResourceGovernor::RemainingBytes() const {
  if (budget_ == 0) return std::numeric_limits<size_t>::max();
  return charged_ >= budget_ ? 0 : budget_ - charged_;
}

void ResourceGovernor::Publish() const {
  RunStatusBoard::Global().PublishGovernor(budget_, charged_,
                                           degradation_steps_);
}

Status ResourceGovernor::Charge(const char* what, size_t bytes) {
  if (budget_ == 0) return Status::Ok();
  if (bytes > RemainingBytes()) {
    obs::MetricsRegistry::Global().GetCounter("governor.exhausted")
        .Increment();
    NMINE_LOG(kError, "governor")
        .Msg("memory budget exhausted")
        .Str("what", what)
        .Num("requested_bytes", bytes)
        .Num("charged_bytes", charged_)
        .Num("budget_bytes", budget_);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kGovernorStep, "governor.exhausted",
        static_cast<int64_t>(bytes), static_cast<int64_t>(RemainingBytes()));
    return Status::ResourceExhausted(
        std::string("memory budget exhausted charging ") + what);
  }
  charged_ += bytes;
  Publish();
  return Status::Ok();
}

void ResourceGovernor::Release(size_t bytes) {
  if (budget_ == 0) return;
  charged_ = bytes >= charged_ ? 0 : charged_ - bytes;
  Publish();
}

size_t ResourceGovernor::AdmitSample(size_t available, size_t sample_bytes,
                                     size_t min_keep) {
  if (budget_ == 0 || available == 0) {
    return available;
  }
  const size_t remaining = RemainingBytes();
  if (sample_bytes <= remaining) {
    charged_ += sample_bytes;
    Publish();
    return available;
  }
  // Shrink pro-rata against HALF the remaining budget: the other half
  // stays free for counting batches and borders, otherwise a shrunken
  // sample that exactly fills the budget would starve every later
  // admission. Epsilon widens when the caller recomputes it from the
  // smaller n.
  const size_t per_record = sample_bytes / available;
  size_t keep = per_record == 0 ? available : (remaining / 2) / per_record;
  if (keep > available) keep = available;
  if (keep < min_keep) {
    obs::MetricsRegistry::Global().GetCounter("governor.exhausted")
        .Increment();
    NMINE_LOG(kError, "governor")
        .Msg("memory budget cannot hold the minimum sample")
        .Num("available", available)
        .Num("min_keep", min_keep)
        .Num("sample_bytes", sample_bytes)
        .Num("remaining_bytes", remaining);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kGovernorStep, "governor.sample_exhausted",
        static_cast<int64_t>(available), static_cast<int64_t>(min_keep));
    return 0;
  }
  ++degradation_steps_;
  obs::MetricsRegistry::Global().GetCounter("governor.sample_shrinks")
      .Increment();
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kGovernorStep, "governor.sample_shrink",
      static_cast<int64_t>(available), static_cast<int64_t>(keep));
  NMINE_LOG(kWarn, "governor")
      .Msg("degrading: shrinking in-memory sample to fit memory budget")
      .Num("available", available)
      .Num("kept", keep)
      .Num("sample_bytes", sample_bytes)
      .Num("remaining_bytes", remaining);
  charged_ += keep * per_record;
  Publish();
  return keep;
}

size_t ResourceGovernor::AdmitBatch(size_t want, size_t bytes_per_counter) {
  if (budget_ == 0 || want == 0) return want;
  if (bytes_per_counter == 0) bytes_per_counter = 1;
  const size_t remaining = RemainingBytes();
  size_t fit = remaining / bytes_per_counter;
  if (fit >= want) return want;
  if (fit == 0) {
    obs::MetricsRegistry::Global().GetCounter("governor.exhausted")
        .Increment();
    NMINE_LOG(kError, "governor")
        .Msg("memory budget cannot hold a single counter")
        .Num("bytes_per_counter", bytes_per_counter)
        .Num("remaining_bytes", remaining);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kGovernorStep, "governor.batch_exhausted",
        static_cast<int64_t>(want), static_cast<int64_t>(remaining));
    return 0;
  }
  if (!batch_shrink_logged_) {
    batch_shrink_logged_ = true;
    ++degradation_steps_;
    Publish();
    NMINE_LOG(kWarn, "governor")
        .Msg("degrading: shrinking counter batches to fit memory budget")
        .Num("requested", want)
        .Num("admitted", fit)
        .Num("bytes_per_counter", bytes_per_counter)
        .Num("remaining_bytes", remaining);
  }
  obs::MetricsRegistry::Global().GetCounter("governor.probe_batch_shrinks")
      .Increment();
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kGovernorStep, "governor.batch_shrink",
      static_cast<int64_t>(want), static_cast<int64_t>(fit));
  return fit;
}

size_t PatternBytes(const Pattern& p) {
  // Body vector payload + vector header + map-node bookkeeping estimate.
  return p.body().size() * sizeof(SymbolId) + sizeof(Pattern) + 48;
}

size_t RecordBytes(const SequenceRecord& rec) {
  return rec.symbols.size() * sizeof(SymbolId) + sizeof(SequenceRecord);
}

}  // namespace runtime
}  // namespace nmine
