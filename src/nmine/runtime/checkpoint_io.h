#ifndef NMINE_RUNTIME_CHECKPOINT_IO_H_
#define NMINE_RUNTIME_CHECKPOINT_IO_H_

#include <string>

#include "nmine/core/status.h"

namespace nmine {
namespace runtime {

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, fsync, rename. A crash at any point leaves either the
/// previous file or the new one — never a torn mixture — so the last good
/// checkpoint always survives a failed flush.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Removes `path` if present. Best-effort: a failure is logged under
/// `component` and otherwise ignored (a stale checkpoint is refused by its
/// guard fields on the next load, so leaking one is safe).
void BestEffortRemoveFile(const std::string& path, const char* component);

}  // namespace runtime
}  // namespace nmine

#endif  // NMINE_RUNTIME_CHECKPOINT_IO_H_
