#ifndef NMINE_RUNTIME_RUN_CHECKPOINT_H_
#define NMINE_RUNTIME_RUN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nmine/core/metric.h"
#include "nmine/core/pattern.h"
#include "nmine/core/sequence.h"
#include "nmine/core/status.h"

namespace nmine {
namespace runtime {

/// The phase boundary a RunCheckpoint was taken at. Stages are ordered:
/// each one strictly extends the previous one's payload, and a resumed run
/// re-enters the pipeline right after the recorded stage.
enum class RunStage {
  kPhase1Done = 1,     // symbol matches + reservoir sample are final
  kPhase2Done = 2,     // sample classification (FQT/INFQT split) is final
  kPhase3Progress = 3, // some border-collapsing probe scans are consumed
};

const char* ToString(RunStage stage);

/// Whole-run checkpoint: a phase-boundary snapshot of a border-collapsing
/// mining run, written atomically after Phase 1, after Phase 2, and after
/// every Phase-3 probe scan. A process killed at any point resumes from
/// the last completed boundary instead of rescanning — each lost scan is a
/// full pass over the (potentially disk-resident) database, the dominant
/// cost the paper optimizes.
///
/// The guard fields tie a checkpoint to one (database, metric, threshold,
/// sampling) configuration; Load refuses mismatches so stale state can
/// never leak into a different mining run. The Phase-3-only checkpoint of
/// the fault-tolerance layer (mining/phase3_checkpoint.h) is the
/// kPhase3Progress stage of this same format.
struct RunCheckpoint {
  RunStage stage = RunStage::kPhase3Progress;

  // --- Guard: must match the resuming run exactly. ---
  Metric metric = Metric::kMatch;
  double min_threshold = 0.0;
  uint64_t num_sequences = 0;
  uint64_t total_symbols = 0;
  // Sampling guard: a stage-1 snapshot feeds Phase 2, which must replay
  // with the same sample-size / seed / confidence configuration. Legacy
  // Phase-3-only callers leave these at their zero defaults.
  uint64_t sample_size = 0;
  uint64_t seed = 0;
  double delta = 0.0;

  /// Probe scans already consumed by the algorithm (restored into
  /// MiningResult::scans so cost accounting spans the interrupted and
  /// resumed runs). A scan aborted by cancellation is never counted here —
  /// its results were discarded, so the resumed run repeats it.
  int64_t scans_completed = 0;

  // --- Diagnostics carried across the resume. ---
  uint64_t ambiguous_after_sample = 0;
  uint64_t ambiguous_with_unit_spread = 0;
  uint64_t accepted_from_sample = 0;
  bool truncated = false;
  /// Sample size after any memory-budget degradation, and the unit-spread
  /// Chernoff band recomputed from it (0 when never set).
  uint64_t effective_sample_size = 0;
  double final_epsilon = 0.0;

  /// Phase-1 per-symbol match (index = symbol id). Stages >= 1.
  std::vector<double> symbol_match;

  /// The Phase-1 reservoir sample, only at stage kPhase1Done (later stages
  /// no longer need it: sample estimates live on the patterns below).
  std::vector<SequenceRecord> sample;

  /// Patterns already known frequent, with their values (exact for probed
  /// patterns, sample estimates for sample-accepted ones). Stages >= 2.
  std::vector<std::pair<Pattern, double>> resolved_frequent;

  /// Still-ambiguous patterns with their sample estimates. Stages >= 2.
  std::vector<std::pair<Pattern, double>> unresolved;
};

/// Writes `cp` to `path` atomically (temp + fsync + rename via
/// checkpoint_io), so a crash while checkpointing never destroys the
/// previous good checkpoint.
Status WriteRunCheckpoint(const std::string& path, const RunCheckpoint& cp);

/// Loads a checkpoint. kNotFound when no file exists (fresh run),
/// kDataLoss on a malformed file, kFailedPrecondition when the guard
/// fields disagree with `expected` (the caller's configuration).
Status LoadRunCheckpoint(const std::string& path,
                         const RunCheckpoint& expected, RunCheckpoint* cp);

/// Removes the checkpoint file if present (called on successful
/// completion). Best-effort; missing files are fine.
void RemoveRunCheckpoint(const std::string& path);

}  // namespace runtime
}  // namespace nmine

#endif  // NMINE_RUNTIME_RUN_CHECKPOINT_H_
