#ifndef NMINE_NET_RETRY_H_
#define NMINE_NET_RETRY_H_

#include "nmine/db/retry.h"
#include "nmine/stats/random.h"

namespace nmine {
namespace net {

/// The reconnect schedule shared by every nmine network client
/// (nmine_client -> server, dist worker -> coordinator): the db/retry.h
/// jittered exponential backoff, tuned for TCP reconnects rather than
/// disk-scan retries — a 50 ms first step (a refused connect is cheap but
/// a restarting server needs a beat) capped at 2 s so a client never sits
/// out a long hole while the peer is already back.
inline RetryPolicy ReconnectPolicy() {
  RetryPolicy policy;
  policy.initial_backoff_ms = 50.0;
  policy.max_backoff_ms = 2000.0;
  return policy;
}

/// Stateful backoff for one connection: each failure sleeps the next step
/// of the schedule. The jitter stream is seeded from the policy, so tests
/// can assert the exact sleep sequence.
class ReconnectBackoff {
 public:
  explicit ReconnectBackoff(const RetryPolicy& policy = ReconnectPolicy())
      : policy_(policy), rng_(policy.jitter_seed) {}

  /// Backoff for the next failure, in milliseconds (advances the state).
  double NextBackoffMs() { return BackoffMs(policy_, failure_index_++, &rng_); }

  /// Restarts the schedule (call after a sustained healthy period).
  void Reset() { failure_index_ = 0; }

  int failures() const { return failure_index_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int failure_index_ = 0;
};

}  // namespace net
}  // namespace nmine

#endif  // NMINE_NET_RETRY_H_
