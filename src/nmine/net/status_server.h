#ifndef NMINE_NET_STATUS_SERVER_H_
#define NMINE_NET_STATUS_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace nmine {
namespace net {

/// Minimal read-only embedded HTTP/1.0 status server — the live
/// introspection surface of a mining run, and the first brick of the
/// nmine_server daemon's socket layer.
///
/// Endpoints (GET only):
///   /healthz   {"status": "ok"|"degraded", ...} — liveness + load-shedding
///              probe: still HTTP 200 when degraded, but the body flips to
///              "degraded" (with machine-readable reasons) when the
///              ResourceGovernor ladder is engaged, scan retries climbed
///              since the previous /healthz poll, or the run's retry
///              budget ran out — so a load balancer can drain the instance
///              before it fails
///   /statusz   runtime::RunStatusBoard::StatusJson(): current phase,
///              progress counters, deadline remaining, governor ladder
///              state, checkpoint age
///   /metricsz  OpenMetrics text rendering of the metrics registry
///   /profilez  obs::Profiler::Global().SnapshotJson()
///   /flightz   obs::FlightRecorder::Global().SnapshotJson()
///
/// Subsystems can add process-wide endpoints with RegisterEndpoint (the
/// serving layer registers /jobsz this way); registered paths are served
/// by every StatusServer in the process.
///
/// The accept loop is blocking and runs as one task on the shared
/// exec::ThreadPool; Start() grows the pool by one worker first, so the
/// server never steals a scan worker from the miners. Requests are tiny
/// and handled inline on that worker; the server only ever reads process
/// state, so it needs no coordination with the run it is observing.
class StatusServer {
 public:
  struct Options {
    /// TCP port to listen on; 0 picks an ephemeral port (see port()).
    uint16_t port = 0;
    /// Loopback by default: this is an introspection port, not a public
    /// API; expose it deliberately.
    std::string bind_address = "127.0.0.1";
  };

  StatusServer() = default;
  ~StatusServer();
  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Binds, listens, and submits the accept loop to the shared thread
  /// pool. False with *error set when the socket cannot be set up.
  bool Start(const Options& options, std::string* error);

  /// Closes the listener and waits for the accept loop to drain. Safe to
  /// call twice or without Start().
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The port actually bound (resolves port 0 to the ephemeral choice).
  uint16_t port() const { return port_; }

  /// Requests served since Start (any endpoint, including 404s).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Registers (or replaces) a process-wide GET endpoint, e.g. "/jobsz".
  /// `handler` returns the JSON body; it is invoked on the server's accept
  /// worker and must be safe to call from any thread at any time.
  /// Registrations are permanent (like metrics registry entries).
  static void RegisterEndpoint(const std::string& path,
                               std::function<std::string()> handler);

  /// Like RegisterEndpoint, but the handler receives the raw query string
  /// (the text after '?', without it; empty when absent), e.g.
  /// GET /tracez?id=abc -> handler("id=abc"). Registering the same path
  /// via either overload replaces the previous handler.
  static void RegisterQueryEndpoint(
      const std::string& path,
      std::function<std::string(const std::string& query)> handler);

  /// Registers a process-wide /healthz contributor. On every /healthz
  /// render the contributor may push degradation reason strings into
  /// `reasons` and may return one extra JSON object member (e.g.
  /// "\"queue\": {...}" — no leading comma, or empty for none) spliced
  /// into the body. Keyed by `name`; re-registering replaces.
  static void RegisterHealthSignal(
      const std::string& name,
      std::function<std::string(std::vector<std::string>* reasons)>
          contributor);

  /// Computes the /healthz body — {"status": "ok"|"degraded", "uptime_s":
  /// ..., "reasons": [...]} — and updates the poll-over-poll retry
  /// baseline. Exposed for the CLI-free health test and the serving
  /// layer's drain decision.
  static std::string HealthzBody();

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  bool loop_done_ = true;
};

}  // namespace net
}  // namespace nmine

#endif  // NMINE_NET_STATUS_SERVER_H_
