#include "nmine/net/status_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "nmine/exec/thread_pool.h"
#include "nmine/obs/export/openmetrics.h"
#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"
#include "nmine/obs/profiler.h"
#include "nmine/runtime/run_status.h"

#include <map>
#include <vector>

#include "nmine/obs/json_util.h"

namespace nmine {
namespace net {
namespace {

struct Response {
  int status = 200;
  const char* content_type = "application/json";
  std::string body;
};

/// Process-wide extra endpoints (RegisterEndpoint). Guarded by a leaked
/// mutex so registration from static initializers and dispatch from accept
/// workers never race; lookups copy the handler out under the lock.
std::mutex& ExtraEndpointsMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}

using QueryHandler = std::function<std::string(const std::string&)>;

std::map<std::string, QueryHandler>& ExtraEndpoints() {
  static auto* map = new std::map<std::string, QueryHandler>();
  return *map;
}

/// Process-wide /healthz contributors (RegisterHealthSignal), same
/// locking discipline as the endpoint map.
using HealthSignal = std::function<std::string(std::vector<std::string>*)>;

std::map<std::string, HealthSignal>& HealthSignals() {
  static auto* map = new std::map<std::string, HealthSignal>();
  return *map;
}

/// Poll-over-poll baseline for the "scan retries climbing" health signal:
/// the previous /healthz poll's db.scan.retries value, or -1 before the
/// first poll (the first poll only records the baseline, it never
/// degrades).
std::atomic<int64_t> g_health_last_retries{-1};

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

void SendResponse(int fd, const Response& response) {
  char header[256];
  int n = std::snprintf(header, sizeof(header),
                        "HTTP/1.0 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n\r\n",
                        response.status, ReasonPhrase(response.status),
                        response.content_type, response.body.size());
  if (n <= 0) return;
  std::string out(header, static_cast<size_t>(n));
  out.append(response.body);
  size_t done = 0;
  while (done < out.size()) {
    ssize_t w = ::send(fd, out.data() + done, out.size() - done, MSG_NOSIGNAL);
    if (w <= 0) return;
    done += static_cast<size_t>(w);
  }
}

Response Dispatch(const std::string& method, const std::string& path,
                  const std::string& query) {
  Response r;
  if (method != "GET") {
    r.status = 405;
    r.body = "{\"error\": \"only GET is served\"}\n";
    return r;
  }
  if (path == "/healthz") {
    r.body = StatusServer::HealthzBody();
  } else if (path == "/statusz") {
    r.body = runtime::RunStatusBoard::Global().StatusJson();
  } else if (path == "/metricsz") {
    r.content_type =
        "application/openmetrics-text; version=1.0.0; charset=utf-8";
    r.body =
        obs::RenderOpenMetrics(obs::MetricsRegistry::Global().Snapshot());
  } else if (path == "/profilez") {
    r.body = obs::Profiler::Global().SnapshotJson();
    r.body.push_back('\n');
  } else if (path == "/flightz") {
    r.body = obs::FlightRecorder::Global().SnapshotJson();
  } else {
    QueryHandler handler;
    {
      std::lock_guard<std::mutex> lock(ExtraEndpointsMutex());
      auto it = ExtraEndpoints().find(path);
      if (it != ExtraEndpoints().end()) handler = it->second;
    }
    if (handler) {
      r.body = handler(query);
      return r;
    }
    r.status = 404;
    r.body =
        "{\"error\": \"unknown path\", \"endpoints\": [\"/healthz\", "
        "\"/statusz\", \"/metricsz\", \"/profilez\", \"/flightz\"]}\n";
  }
  return r;
}

}  // namespace

StatusServer::~StatusServer() { Stop(); }

void StatusServer::RegisterEndpoint(const std::string& path,
                                    std::function<std::string()> handler) {
  std::lock_guard<std::mutex> lock(ExtraEndpointsMutex());
  ExtraEndpoints()[path] = [handler = std::move(handler)](
                               const std::string&) { return handler(); };
}

void StatusServer::RegisterQueryEndpoint(
    const std::string& path,
    std::function<std::string(const std::string& query)> handler) {
  std::lock_guard<std::mutex> lock(ExtraEndpointsMutex());
  ExtraEndpoints()[path] = std::move(handler);
}

void StatusServer::RegisterHealthSignal(
    const std::string& name,
    std::function<std::string(std::vector<std::string>* reasons)>
        contributor) {
  std::lock_guard<std::mutex> lock(ExtraEndpointsMutex());
  HealthSignals()[name] = std::move(contributor);
}

std::string StatusServer::HealthzBody() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  runtime::RunStatusBoard& board = runtime::RunStatusBoard::Global();

  // Degradation signals, most severe first. All are "keep serving but let
  // the load balancer route around me" conditions — liveness stays 200.
  std::vector<std::string> reasons;
  if (board.governor_degradation_steps() > 0) {
    reasons.push_back("governor_ladder_engaged");
  }
  const int64_t retries = reg.CounterValue("db.scan.retries");
  const int64_t last =
      g_health_last_retries.exchange(retries, std::memory_order_relaxed);
  if (last >= 0 && retries > last) {
    reasons.push_back("scan_retries_climbing");
  }
  if (reg.CounterValue("db.scan.retry_budget_exhausted") > 0) {
    reasons.push_back("retry_budget_exhausted");
  }

  // Registered contributors (e.g. the serving layer's queue staleness
  // signal) add their reasons and optional extra body members.
  std::vector<HealthSignal> signals;
  {
    std::lock_guard<std::mutex> lock(ExtraEndpointsMutex());
    signals.reserve(HealthSignals().size());
    for (const auto& [name, fn] : HealthSignals()) signals.push_back(fn);
  }
  std::vector<std::string> extra_members;
  for (const HealthSignal& signal : signals) {
    std::string member = signal(&reasons);
    if (!member.empty()) extra_members.push_back(std::move(member));
  }

  std::string body = "{\"status\": ";
  obs::AppendJsonString(reasons.empty() ? "ok" : "degraded", &body);
  body.append(", \"uptime_s\": ");
  obs::AppendJsonNumber(static_cast<double>(board.uptime_us()) / 1e6, &body);
  body.append(", \"reasons\": [");
  for (size_t i = 0; i < reasons.size(); ++i) {
    if (i > 0) body.append(", ");
    obs::AppendJsonString(reasons[i], &body);
  }
  body.append("]");
  for (const std::string& member : extra_members) {
    body.append(", ");
    body.append(member);
  }
  body.append("}\n");
  return body;
}

bool StatusServer::Start(const Options& options, std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "status server already running";
    return false;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    if (error != nullptr) {
      *error = "bad bind address '" + options.bind_address + "'";
    }
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind(" + options.bind_address + ":" +
               std::to_string(options.port) +
               "): " + std::string(strerror(errno));
    }
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) != 0) {
    if (error != nullptr) *error = "listen(): " + std::string(strerror(errno));
    ::close(fd);
    return false;
  }
  // Non-blocking listener + poll(): a blocked accept() is NOT woken by
  // close()/shutdown() on Linux, so a blocking loop could never be shut
  // down cleanly. The loop instead polls with a short timeout and checks
  // the stop flag between polls.
  int fd_flags = ::fcntl(fd, F_GETFL, 0);
  if (fd_flags >= 0) ::fcntl(fd, F_SETFL, fd_flags | O_NONBLOCK);
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = options.port;
  }

  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    loop_done_ = false;
  }
  // The accept loop parks one pool worker for the server's lifetime;
  // reserve it so every later EnsureWorkers(n) still yields n workers
  // free for scan shards (submitting into the un-grown pool would starve
  // a sharded scan of one of the workers it sized itself for).
  exec::ThreadPool& pool = exec::ThreadPool::Shared();
  pool.ReserveWorker();
  pool.Submit([this] { AcceptLoop(); });

  NMINE_LOG(kInfo, "net")
      .Msg("status server listening")
      .Str("address", options.bind_address)
      .Num("port", static_cast<int64_t>(port_));
  return true;
}

void StatusServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  // The loop notices the flag at its next poll() timeout; only close the
  // socket once it has drained, so the fd can never be reused by another
  // open while the loop still touches it.
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] { return loop_done_; });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void StatusServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // listener gone; nothing to serve anymore
    }
    if (ready == 0) continue;  // timeout: re-check the stop flag
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    HandleConnection(client);
    ::close(client);
  }
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    loop_done_ = true;
    // Notify while holding the lock: Stop()'s waiter cannot observe
    // loop_done_ and let the server be destroyed until the lock drops,
    // so the condition variable is never destroyed mid-notify.
    done_cv_.notify_all();
  }
}

void StatusServer::HandleConnection(int client_fd) {
  // Polling clients send one small request; cap the read and bail on slow
  // peers so a stuck client can never wedge the introspection port.
  timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  char buf[2048];
  size_t have = 0;
  // Read until the request line is complete (first CRLF); headers beyond
  // it are irrelevant to dispatch.
  while (have < sizeof(buf) - 1) {
    ssize_t r = ::recv(client_fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (r <= 0) break;
    have += static_cast<size_t>(r);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n") != nullptr ||
        std::strchr(buf, '\n') != nullptr) {
      break;
    }
  }
  if (have == 0) return;
  buf[have] = '\0';

  // Parse "METHOD SP path['?'query] SP version".
  std::string method;
  std::string path;
  std::string query;
  const char* p = buf;
  while (*p != '\0' && *p != ' ' && *p != '\r' && *p != '\n') {
    method.push_back(*p++);
  }
  while (*p == ' ') ++p;
  while (*p != '\0' && *p != ' ' && *p != '\r' && *p != '\n' && *p != '?') {
    path.push_back(*p++);
  }
  if (*p == '?') {
    ++p;
    while (*p != '\0' && *p != ' ' && *p != '\r' && *p != '\n') {
      query.push_back(*p++);
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Global().GetCounter("net.statusz.requests")
      .Increment();

  SendResponse(client_fd, Dispatch(method, path, query));
}

}  // namespace net
}  // namespace nmine
