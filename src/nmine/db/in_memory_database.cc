#include "nmine/db/in_memory_database.h"

#include "nmine/db/scan_telemetry.h"

namespace nmine {

InMemorySequenceDatabase InMemorySequenceDatabase::FromSequences(
    std::vector<Sequence> sequences) {
  InMemorySequenceDatabase db;
  db.records_.reserve(sequences.size());
  for (Sequence& s : sequences) {
    db.Add(std::move(s));
  }
  return db;
}

InMemorySequenceDatabase InMemorySequenceDatabase::FromRecords(
    std::vector<SequenceRecord> records) {
  InMemorySequenceDatabase db;
  db.records_ = std::move(records);
  for (const SequenceRecord& r : db.records_) {
    db.total_symbols_ += r.symbols.size();
  }
  return db;
}

void InMemorySequenceDatabase::Add(Sequence sequence) {
  SequenceRecord record;
  record.id = static_cast<SequenceId>(records_.size());
  record.symbols = std::move(sequence);
  Add(std::move(record));
}

void InMemorySequenceDatabase::Add(SequenceRecord record) {
  total_symbols_ += record.symbols.size();
  records_.push_back(std::move(record));
}

Status InMemorySequenceDatabase::Scan(const Visitor& visitor,
                                      const RestartFn& restart) const {
  CountScan();
  db_telemetry::RecordScanStarted();
  if (restart) restart();
  for (const SequenceRecord& r : records_) {
    db_telemetry::RecordSequenceVisited();
    visitor(r);
  }
  return Status::Ok();
}

}  // namespace nmine
