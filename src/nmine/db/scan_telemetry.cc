#include "nmine/db/scan_telemetry.h"

#include "nmine/obs/metrics.h"

namespace nmine {
namespace db_telemetry {
namespace {

/// Resolved once; the registry guarantees stable references.
obs::Counter& ScansCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("db.scans.started");
  return c;
}

obs::Counter& SequencesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().GetCounter("db.sequences_scanned");
  return c;
}

}  // namespace

void RecordScanStarted() { ScansCounter().Increment(); }

void RecordSequenceVisited() { SequencesCounter().Increment(); }

int64_t ScansStarted() { return ScansCounter().value(); }

int64_t SequencesScanned() { return SequencesCounter().value(); }

}  // namespace db_telemetry
}  // namespace nmine
