#include "nmine/db/fault_injecting_database.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"

namespace nmine {
namespace {

bool ParseInt(const std::string& text, long long* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep)) parts.push_back(Trim(part));
  return parts;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::Parse(const std::string& spec,
                                          std::string* error) {
  auto fail = [error](std::string msg) -> std::optional<FaultPlan> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  FaultPlan plan;
  for (const std::string& clause : Split(spec, ',')) {
    if (clause.empty()) continue;
    std::vector<std::string> parts = Split(clause, ':');
    const std::string& key = parts[0];
    long long n = 0;
    if (key == "open-fail" && parts.size() == 2 && ParseInt(parts[1], &n) &&
        n >= 0) {
      plan.open_fail_scans = static_cast<int>(n);
    } else if (key == "short-read" && parts.size() == 3 &&
               ParseInt(parts[1], &n) && n >= 0) {
      long long k = 0;
      if (!ParseInt(parts[2], &k) || k < 0) {
        return fail("bad short-read record count in '" + clause + "'");
      }
      plan.short_read_scans = static_cast<int>(n);
      plan.short_read_records = static_cast<size_t>(k);
    } else if (key == "fail-scan" && parts.size() == 2 &&
               ParseInt(parts[1], &n) && n >= 0) {
      plan.fail_scan_indices.push_back(static_cast<int>(n));
    } else if (key == "corrupt-from" && parts.size() == 2 &&
               ParseInt(parts[1], &n) && n >= 0) {
      plan.corrupt_from_scan = static_cast<int>(n);
    } else if (key == "flaky" && parts.size() == 2) {
      double p = 0.0;
      if (!ParseDouble(parts[1], &p) || p < 0.0 || p > 1.0) {
        return fail("flaky probability must be in [0, 1] in '" + clause +
                    "'");
      }
      plan.flake_probability = p;
    } else if (key == "seed" && parts.size() == 2 && ParseInt(parts[1], &n)) {
      plan.seed = static_cast<uint64_t>(n);
    } else {
      return fail("bad fault-plan clause '" + clause +
                  "' (want open-fail:N, short-read:N:K, fail-scan:I, "
                  "corrupt-from:S, flaky:P, seed:X)");
    }
  }
  return plan;
}

Status FaultInjectingDatabase::Scan(const Visitor& visitor,
                                    const RestartFn& restart) const {
  CountScan();
  const int idx = attempts_++;
  obs::MetricsRegistry::Global().GetCounter("db.fault_injection.scans")
      .Increment();
  auto inject = [idx](Status status) {
    obs::MetricsRegistry::Global()
        .GetCounter("db.fault_injection.injected")
        .Increment();
    NMINE_LOG(kDebug, "db")
        .Msg("injected scan fault")
        .Num("scan_index", idx)
        .Str("status", status.ToString());
    return status;
  };

  // Permanent corruption dominates every transient clause.
  if (plan_.corrupt_from_scan >= 0 && idx >= plan_.corrupt_from_scan) {
    return inject(Status::DataLoss("injected corruption at scan " +
                                   std::to_string(idx)));
  }
  if (idx < plan_.open_fail_scans) {
    return inject(Status::Unavailable("injected fail-on-open at scan " +
                                      std::to_string(idx)));
  }
  if (std::find(plan_.fail_scan_indices.begin(),
                plan_.fail_scan_indices.end(),
                idx) != plan_.fail_scan_indices.end()) {
    return inject(Status::Unavailable("injected failure at scan " +
                                      std::to_string(idx)));
  }
  if (idx < plan_.open_fail_scans + plan_.short_read_scans) {
    // Deliver the first K records, then report a transient short read. The
    // inner pass still runs to completion underneath; the extra records are
    // simply never forwarded, exactly as a reader that lost its stream.
    size_t forwarded = 0;
    Status inner = inner_->Scan(
        [&](const SequenceRecord& r) {
          if (forwarded < plan_.short_read_records) {
            ++forwarded;
            visitor(r);
          }
        },
        [&] {
          forwarded = 0;
          if (restart) restart();
        });
    if (!inner.ok()) return inner;
    return inject(Status::Unavailable(
        "injected short read after record " +
        std::to_string(plan_.short_read_records) + " at scan " +
        std::to_string(idx)));
  }
  if (plan_.flake_probability > 0.0 &&
      rng_.Bernoulli(plan_.flake_probability)) {
    return inject(Status::Unavailable("injected flaky failure at scan " +
                                      std::to_string(idx)));
  }
  return inner_->Scan(visitor, restart);
}

}  // namespace nmine
