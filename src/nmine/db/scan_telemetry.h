#ifndef NMINE_DB_SCAN_TELEMETRY_H_
#define NMINE_DB_SCAN_TELEMETRY_H_

#include <cstdint>

namespace nmine {
namespace db_telemetry {

/// Process-wide scan progress counters, fed into the global metrics
/// registry as "db.scans.started" and "db.sequences_scanned". Unlike the
/// per-database scan_count() accounting (which miners reset per run),
/// these only ever grow, so a progress heartbeat can sample them from
/// another thread while a long mining run is in flight.

/// Called by every SequenceDatabase implementation at the start of a full
/// pass (via CountScan()).
void RecordScanStarted();

/// Called per sequence delivered to a scan visitor by the leaf databases
/// (in-memory and disk; decorators do not double-count). One relaxed
/// atomic increment — cheap enough for the hot path.
void RecordSequenceVisited();

int64_t ScansStarted();
int64_t SequencesScanned();

}  // namespace db_telemetry
}  // namespace nmine

#endif  // NMINE_DB_SCAN_TELEMETRY_H_
