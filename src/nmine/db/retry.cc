#include "nmine/db/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "nmine/obs/flight_recorder.h"
#include "nmine/obs/logger.h"
#include "nmine/obs/metrics.h"

namespace nmine {
namespace {

class RealSleeper : public Sleeper {
 public:
  void SleepMs(double ms) override {
    if (ms <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
};

}  // namespace

Sleeper* Sleeper::Real() {
  static RealSleeper sleeper;
  return &sleeper;
}

RetryBudget::RetryBudget(int64_t total) : total_(total) {
  PublishRemaining();
}

int64_t RetryBudget::remaining() const {
  if (unlimited()) return INT64_MAX;
  int64_t left = total_ - used_.load(std::memory_order_relaxed);
  return left < 0 ? 0 : left;
}

bool RetryBudget::TryConsume() {
  if (unlimited()) return true;
  int64_t u = used_.load(std::memory_order_relaxed);
  while (u < total_) {
    if (used_.compare_exchange_weak(u, u + 1, std::memory_order_relaxed)) {
      PublishRemaining();
      return true;
    }
  }
  return false;
}

void RetryBudget::PublishRemaining() const {
  if (unlimited()) return;
  obs::MetricsRegistry::Global()
      .GetGauge("db.scan.retry_budget_remaining")
      .Set(static_cast<double>(remaining()));
}

double BackoffMs(const RetryPolicy& policy, int failure_index, Rng* rng) {
  double base = policy.initial_backoff_ms *
                std::pow(policy.multiplier, static_cast<double>(failure_index));
  base = std::min(base, policy.max_backoff_ms);
  if (policy.jitter > 0.0 && rng != nullptr) {
    base *= 1.0 + rng->UniformDouble() * policy.jitter;
  }
  return base;
}

Status RunScanWithRetry(
    const RetryPolicy& policy, Sleeper* sleeper, bool can_replay,
    const char* what,
    const std::function<ScanAttempt(int attempt)>& attempt,
    RetryBudget* budget) {
  if (sleeper == nullptr) sleeper = Sleeper::Real();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  Rng jitter_rng(policy.jitter_seed);
  const int max_attempts = std::max(1, policy.max_attempts);
  for (int i = 0;; ++i) {
    ScanAttempt outcome = attempt(i);
    if (outcome.status.ok()) {
      if (i > 0) {
        NMINE_LOG(kInfo, "db")
            .Msg("scan recovered after retries")
            .Str("op", what)
            .Num("attempts", i + 1);
      }
      return outcome.status;
    }
    reg.GetCounter("db.scan.faults").Increment();
    const bool transient = outcome.status.IsTransient();
    const bool replay_safe = can_replay || !outcome.delivered_records;
    if (!transient || !replay_safe || i + 1 >= max_attempts) {
      NMINE_LOG(kWarn, "db")
          .Msg("scan failed")
          .Str("op", what)
          .Str("status", outcome.status.ToString())
          .Num("attempts", i + 1)
          .Num("gave_up_mid_stream",
               static_cast<int64_t>(transient && !replay_safe ? 1 : 0));
      return outcome.status;
    }
    if (budget != nullptr && !budget->TryConsume()) {
      reg.GetCounter("db.scan.retry_budget_exhausted").Increment();
      NMINE_LOG(kWarn, "db")
          .Msg("retry budget exhausted; surfacing scan failure")
          .Str("op", what)
          .Str("status", outcome.status.ToString())
          .Num("budget", budget->total());
      return Status(outcome.status.code(),
                    outcome.status.message() + " (run retry budget of " +
                        std::to_string(budget->total()) + " exhausted)");
    }
    double backoff = BackoffMs(policy, i, &jitter_rng);
    reg.GetCounter("db.scan.retries").Increment();
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kScanRetry,
                                         what, i + 1,
                                         static_cast<int64_t>(backoff));
    NMINE_LOG(kInfo, "db")
        .Msg("transient scan failure; retrying")
        .Str("op", what)
        .Str("status", outcome.status.ToString())
        .Num("attempt", i + 1)
        .Num("backoff_ms", backoff);
    sleeper->SleepMs(backoff);
  }
}

}  // namespace nmine
