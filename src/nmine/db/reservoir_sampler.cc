#include "nmine/db/reservoir_sampler.h"

#include <utility>

namespace nmine {

SequentialSampler::SequentialSampler(size_t n, size_t population, Rng* rng)
    : n_(n), population_(population), rng_(rng) {
  sample_.reserve(n < population ? n : population);
}

bool SequentialSampler::Offer(const SequenceRecord& record) {
  // The population size comes from database metadata, which a corrupted or
  // concurrently-rewritten file can understate. Extra offers are rejected
  // instead of dividing by a zero (or negative) remaining population: the
  // sample is then still a uniform sample of the declared population.
  if (seen_ >= population_) return false;
  size_t remaining_slots = n_ > sample_.size() ? n_ - sample_.size() : 0;
  size_t remaining_population = population_ - seen_;
  ++seen_;
  if (remaining_slots == 0) return false;
  // Select with probability (n - j) / (N - i).
  double p = static_cast<double>(remaining_slots) /
             static_cast<double>(remaining_population);
  if (rng_->UniformDouble() < p) {
    sample_.push_back(record);
    return true;
  }
  return false;
}

InMemorySequenceDatabase SequentialSampler::TakeDatabase() {
  return InMemorySequenceDatabase::FromRecords(std::move(sample_));
}

ReservoirSampler::ReservoirSampler(size_t n, Rng* rng) : n_(n), rng_(rng) {
  sample_.reserve(n);
}

void ReservoirSampler::Offer(const SequenceRecord& record) {
  ++seen_;
  if (sample_.size() < n_) {
    sample_.push_back(record);
    return;
  }
  uint64_t slot = rng_->UniformInt(seen_);
  if (slot < n_) {
    sample_[slot] = record;
  }
}

InMemorySequenceDatabase ReservoirSampler::TakeDatabase() {
  return InMemorySequenceDatabase::FromRecords(std::move(sample_));
}

}  // namespace nmine
