#include "nmine/db/format.h"

#include <cstring>
#include <fstream>

namespace nmine {
namespace dbformat {

void PutVarint64(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(const char** pos, const char* end, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  const char* p = *pos;
  while (p < end && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(*p++);
    // The 10th byte (shift 63) may only contribute bit 63; anything larger
    // would silently drop high bits, so reject it as corrupt.
    if (shift == 63 && (byte & 0x7f) > 1) return false;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or overlong
}

std::string EncodeDatabase(const std::vector<SequenceRecord>& records) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  PutVarint64(records.size(), &out);
  for (const SequenceRecord& r : records) {
    PutVarint64(static_cast<uint64_t>(r.id), &out);
    PutVarint64(r.symbols.size(), &out);
    for (SymbolId s : r.symbols) {
      PutVarint64(static_cast<uint64_t>(static_cast<uint32_t>(s)), &out);
    }
  }
  return out;
}

IoResult DecodeDatabase(const std::string& bytes,
                        std::vector<SequenceRecord>* records) {
  records->clear();
  if (bytes.size() < sizeof(kMagic) + 1) {
    return IoResult::Error("file too short for header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return IoResult::Error("bad magic: not an nmine sequence database");
  }
  uint8_t version = static_cast<uint8_t>(bytes[sizeof(kMagic)]);
  if (version != kVersion) {
    return IoResult::Error("unsupported format version " +
                           std::to_string(version));
  }
  const char* pos = bytes.data() + sizeof(kMagic) + 1;
  const char* end = bytes.data() + bytes.size();
  uint64_t count = 0;
  if (!GetVarint64(&pos, end, &count)) {
    return IoResult::Error("truncated sequence count");
  }
  records->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SequenceRecord r;
    uint64_t id = 0;
    uint64_t len = 0;
    if (!GetVarint64(&pos, end, &id) || !GetVarint64(&pos, end, &len)) {
      return IoResult::Error("truncated record header at sequence " +
                             std::to_string(i));
    }
    r.id = static_cast<SequenceId>(id);
    r.symbols.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      uint64_t sym = 0;
      if (!GetVarint64(&pos, end, &sym)) {
        return IoResult::Error("truncated symbols at sequence " +
                               std::to_string(i));
      }
      r.symbols.push_back(static_cast<SymbolId>(sym));
    }
    records->push_back(std::move(r));
  }
  if (pos != end) {
    return IoResult::Error("trailing garbage after last record");
  }
  return IoResult::Ok();
}

IoResult WriteDatabaseFile(const std::string& path,
                           const std::vector<SequenceRecord>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return IoResult::Error("cannot open for writing: " + path);
  }
  std::string bytes = EncodeDatabase(records);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return IoResult::Error("write failed: " + path);
  }
  return IoResult::Ok();
}

IoResult ReadDatabaseFile(const std::string& path,
                          std::vector<SequenceRecord>* records) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IoResult::Error("cannot open for reading: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return IoResult::Error("read failed: " + path);
  }
  return DecodeDatabase(bytes, records);
}

}  // namespace dbformat
}  // namespace nmine
