#ifndef NMINE_DB_RETRY_H_
#define NMINE_DB_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "nmine/core/status.h"
#include "nmine/stats/random.h"

namespace nmine {

/// Bounded, jittered exponential backoff for transient scan failures.
/// Attempt i (0-based failure index) sleeps
///   min(initial_backoff_ms * multiplier^i, max_backoff_ms) * (1 + U*jitter)
/// where U is uniform in [0, 1) drawn from a seeded generator, so retry
/// schedules are reproducible in tests.
struct RetryPolicy {
  /// Total attempts, including the first. 1 disables retries.
  int max_attempts = 3;
  double initial_backoff_ms = 5.0;
  double multiplier = 2.0;
  double max_backoff_ms = 500.0;
  /// Fractional jitter added on top of the deterministic backoff.
  double jitter = 0.5;
  uint64_t jitter_seed = 42;

  static RetryPolicy NoRetry() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Injectable sleep dependency so tests can assert on the backoff schedule
/// without waiting for it.
class Sleeper {
 public:
  virtual ~Sleeper() = default;
  virtual void SleepMs(double ms) = 0;

  /// Process-wide sleeper backed by std::this_thread::sleep_for.
  static Sleeper* Real();
};

/// Records requested sleeps instead of performing them (for tests).
class FakeSleeper : public Sleeper {
 public:
  void SleepMs(double ms) override { slept_ms_.push_back(ms); }
  const std::vector<double>& slept_ms() const { return slept_ms_; }

 private:
  std::vector<double> slept_ms_;
};

/// Backoff for the given 0-based failure index, jittered from `rng`.
double BackoffMs(const RetryPolicy& policy, int failure_index, Rng* rng);

/// Per-run cap on CUMULATIVE retries across all scans, on top of the
/// per-scan attempt limit in RetryPolicy. A flapping disk can pass every
/// per-scan retry check and still burn hours over a long run (hundreds of
/// probe scans x max_attempts each); sharing one budget across the run
/// bounds the total. Thread-safe: concurrent scans consume from the same
/// pool. The remaining count is mirrored to the metrics-registry gauge
/// `db.scan.retry_budget_remaining` so /statusz and telemetry can watch it
/// drain. A negative `total` means unlimited (nothing is tracked).
class RetryBudget {
 public:
  explicit RetryBudget(int64_t total);

  bool unlimited() const { return total_ < 0; }
  int64_t total() const { return total_; }
  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  /// Retries still allowed; INT64_MAX when unlimited.
  int64_t remaining() const;

  /// Consumes one retry from the budget; false when it is already spent
  /// (the caller must then surface the scan failure instead of retrying).
  bool TryConsume();

 private:
  void PublishRemaining() const;

  int64_t total_;
  std::atomic<int64_t> used_{0};
};

/// Outcome of one scan attempt: its status plus whether any record reached
/// the visitor. A failed attempt that already delivered records may only be
/// retried when the caller supplied a restart callback (so accumulated
/// per-scan state can be reset); otherwise the retry would double-count.
struct ScanAttempt {
  Status status;
  bool delivered_records = false;
};

/// Runs `attempt` until it succeeds, fails permanently, or exhausts
/// `policy.max_attempts`. Only kUnavailable failures are retried, and
/// mid-stream failures (delivered_records == true) are retried only when
/// `can_replay` is set. Emits the shared fault-tolerance counters:
///   db.scan.faults  — failed attempts (of any kind)
///   db.scan.retries — retries actually performed
/// `what` labels log lines (e.g. "disk scan"). `sleeper` may be null
/// (defaults to Sleeper::Real()). `budget`, when non-null, is consulted
/// before every retry: an exhausted budget surfaces the failure instead of
/// retrying (counter db.scan.retry_budget_exhausted).
Status RunScanWithRetry(const RetryPolicy& policy, Sleeper* sleeper,
                        bool can_replay, const char* what,
                        const std::function<ScanAttempt(int attempt)>& attempt,
                        RetryBudget* budget = nullptr);

}  // namespace nmine

#endif  // NMINE_DB_RETRY_H_
