#ifndef NMINE_DB_RETRYING_DATABASE_H_
#define NMINE_DB_RETRYING_DATABASE_H_

#include "nmine/db/retry.h"
#include "nmine/db/sequence_database.h"

namespace nmine {

/// Decorator adding retry-with-backoff around any SequenceDatabase. One
/// logical Scan() counts one scan here regardless of how many attempts it
/// takes underneath (the paper's scan metric counts logical passes; the
/// inner database's own counter records physical attempts).
///
/// Mid-stream failures (records already delivered) are only retried when
/// the caller supplied a restart callback; otherwise the accumulated
/// visitor state could not be reset and the error is surfaced instead.
class RetryingDatabase : public SequenceDatabase {
 public:
  /// `inner` must outlive this object. `sleeper` may be null (real clock).
  /// `budget`, when non-null, caps cumulative retries across all scans of
  /// this database for the run (see RetryBudget); it must outlive this
  /// object too.
  RetryingDatabase(const SequenceDatabase* inner, RetryPolicy policy,
                   Sleeper* sleeper = nullptr, RetryBudget* budget = nullptr)
      : inner_(inner), policy_(policy), sleeper_(sleeper), budget_(budget) {}

  size_t NumSequences() const override { return inner_->NumSequences(); }
  uint64_t TotalSymbols() const override { return inner_->TotalSymbols(); }
  using SequenceDatabase::Scan;
  Status Scan(const Visitor& visitor, const RestartFn& restart) const override;

 private:
  const SequenceDatabase* inner_;
  RetryPolicy policy_;
  Sleeper* sleeper_;
  RetryBudget* budget_;
};

}  // namespace nmine

#endif  // NMINE_DB_RETRYING_DATABASE_H_
