#ifndef NMINE_DB_DISK_DATABASE_H_
#define NMINE_DB_DISK_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "nmine/db/format.h"
#include "nmine/db/sequence_database.h"

namespace nmine {

/// A disk-resident sequence database: the paper's operating assumption
/// ("we assume disk-resident data that is far beyond the memory capacity",
/// Section 2.2). Every Scan() streams the file through a fixed-size buffer;
/// only one sequence is materialized at a time.
class DiskSequenceDatabase : public SequenceDatabase {
 public:
  /// Opens `path`, validating the header and pre-scanning once (not counted)
  /// to establish NumSequences/TotalSymbols. On failure returns nullptr and
  /// fills `*error`.
  static std::unique_ptr<DiskSequenceDatabase> Open(const std::string& path,
                                                    IoResult* error);

  DiskSequenceDatabase(const DiskSequenceDatabase&) = delete;
  DiskSequenceDatabase& operator=(const DiskSequenceDatabase&) = delete;

  size_t NumSequences() const override { return num_sequences_; }
  void Scan(const Visitor& visitor) const override;
  uint64_t TotalSymbols() const override { return total_symbols_; }

  const std::string& path() const { return path_; }

 private:
  explicit DiskSequenceDatabase(std::string path);

  /// Streams the file, invoking `visitor` per record when non-null.
  IoResult StreamFile(const Visitor* visitor, size_t* num_sequences,
                      uint64_t* total_symbols) const;

  std::string path_;
  size_t num_sequences_ = 0;
  uint64_t total_symbols_ = 0;
};

}  // namespace nmine

#endif  // NMINE_DB_DISK_DATABASE_H_
