#ifndef NMINE_DB_DISK_DATABASE_H_
#define NMINE_DB_DISK_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "nmine/core/status.h"
#include "nmine/db/format.h"
#include "nmine/db/retry.h"
#include "nmine/db/sequence_database.h"

namespace nmine {

/// A disk-resident sequence database: the paper's operating assumption
/// ("we assume disk-resident data that is far beyond the memory capacity",
/// Section 2.2). Every Scan() streams the file through a fixed-size buffer;
/// only one sequence is materialized at a time.
///
/// The file is treated as unreliable: structural corruption (bad magic,
/// unsupported version, overlong varints, trailing garbage) surfaces as
/// kDataLoss, while open failures and truncation — which a concurrent
/// rewrite can cause transiently — surface as kUnavailable and are retried
/// with jittered exponential backoff up to the configured policy. A
/// mid-stream retry replays the visitor from the first record, so it is
/// only performed when the caller passed a restart callback.
class DiskSequenceDatabase : public SequenceDatabase {
 public:
  struct Options {
    /// Retry schedule applied to Open's validating pre-scan and to every
    /// Scan(). RetryPolicy::NoRetry() turns retries off.
    RetryPolicy retry;
    /// Sleep dependency; null means the real clock.
    Sleeper* sleeper = nullptr;
    /// Optional per-run cap on cumulative retries across every Scan() of
    /// this database (see RetryBudget). Must outlive the database.
    RetryBudget* retry_budget = nullptr;
  };

  /// Opens `path`, validating the header and pre-scanning once (not counted)
  /// to establish NumSequences/TotalSymbols. On failure returns nullptr and
  /// fills `*error`.
  static std::unique_ptr<DiskSequenceDatabase> Open(const std::string& path,
                                                    Status* error);
  static std::unique_ptr<DiskSequenceDatabase> Open(const std::string& path,
                                                    const Options& options,
                                                    Status* error);

  DiskSequenceDatabase(const DiskSequenceDatabase&) = delete;
  DiskSequenceDatabase& operator=(const DiskSequenceDatabase&) = delete;

  size_t NumSequences() const override { return num_sequences_; }
  using SequenceDatabase::Scan;
  Status Scan(const Visitor& visitor, const RestartFn& restart) const override;
  uint64_t TotalSymbols() const override { return total_symbols_; }

  /// Streams only the records whose 0-based ordinal falls in
  /// [begin_record, end_record): the prefix is decode-skipped and the scan
  /// stops right after the range (distributed workers count their shard
  /// without paying for the whole file). Failures follow the same retry
  /// policy as Scan(); a mid-range retry replays the visitor from
  /// begin_record via `restart`. Range scans are partial by design and are
  /// NOT charged to scan_count() — distributed scan accounting lives with
  /// the coordinator, not with each worker's slice.
  Status ScanRange(size_t begin_record, size_t end_record,
                   const Visitor& visitor, const RestartFn& restart) const;

  const std::string& path() const { return path_; }

 private:
  DiskSequenceDatabase(std::string path, Options options);

  /// Streams the file once, invoking `visitor` per record with ordinal in
  /// [begin_record, end_record) when non-null; parsing stops after
  /// end_record (the trailing-garbage check only runs on full streams).
  Status StreamFile(const Visitor* visitor, size_t begin_record,
                    size_t end_record, size_t* num_sequences,
                    uint64_t* total_symbols, bool* delivered_records) const;

  std::string path_;
  Options options_;
  size_t num_sequences_ = 0;
  uint64_t total_symbols_ = 0;
};

}  // namespace nmine

#endif  // NMINE_DB_DISK_DATABASE_H_
