#ifndef NMINE_DB_IN_MEMORY_DATABASE_H_
#define NMINE_DB_IN_MEMORY_DATABASE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "nmine/db/sequence_database.h"

namespace nmine {

/// A sequence database held entirely in memory. Used for samples (Phase 1
/// keeps the sample memory-resident) and for laptop-scale experiment data.
class InMemorySequenceDatabase : public SequenceDatabase {
 public:
  InMemorySequenceDatabase() = default;

  /// Builds a database from raw sequences; ids are assigned 0..N-1.
  static InMemorySequenceDatabase FromSequences(
      std::vector<Sequence> sequences);

  /// Builds a database from explicit records.
  static InMemorySequenceDatabase FromRecords(
      std::vector<SequenceRecord> records);

  /// Appends a sequence with the next dense id.
  void Add(Sequence sequence);
  void Add(SequenceRecord record);

  size_t NumSequences() const override { return records_.size(); }
  using SequenceDatabase::Scan;
  Status Scan(const Visitor& visitor, const RestartFn& restart) const override;
  uint64_t TotalSymbols() const override { return total_symbols_; }

  /// Direct access (no scan accounting); for tests and sample storage.
  const std::vector<SequenceRecord>& records() const { return records_; }

 private:
  std::vector<SequenceRecord> records_;
  uint64_t total_symbols_ = 0;
};

}  // namespace nmine

#endif  // NMINE_DB_IN_MEMORY_DATABASE_H_
