#include "nmine/db/disk_database.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "nmine/db/scan_telemetry.h"

namespace nmine {
namespace {

/// Buffered LEB128 reader over an std::ifstream.
class BufferedVarintReader {
 public:
  explicit BufferedVarintReader(std::ifstream* in) : in_(in) {}

  /// Reads `n` raw bytes into `out`. Returns false on EOF/short read.
  bool ReadRaw(char* out, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      int byte = NextByte();
      if (byte < 0) return false;
      out[i] = static_cast<char>(byte);
    }
    return true;
  }

  enum class VarintResult { kOk, kTruncated, kOverflow };

  /// Reads one varint. A 10-byte encoding may only contribute bit 63 with
  /// its final byte; payloads whose high bits would be silently dropped are
  /// rejected as kOverflow (corruption), distinct from kTruncated (EOF).
  VarintResult ReadVarint64(uint64_t* value) {
    uint64_t result = 0;
    int shift = 0;
    while (shift <= 63) {
      int byte = NextByte();
      if (byte < 0) return VarintResult::kTruncated;
      if (shift == 63 && (byte & 0x7f) > 1) return VarintResult::kOverflow;
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *value = result;
        return VarintResult::kOk;
      }
      shift += 7;
    }
    return VarintResult::kOverflow;  // continuation past the 10th byte
  }

  /// True when the underlying stream is exhausted and the buffer is empty.
  bool AtEof() {
    if (pos_ < len_) return false;
    Refill();
    return pos_ >= len_;
  }

 private:
  static constexpr size_t kBufferSize = 1 << 16;

  int NextByte() {
    if (pos_ >= len_) {
      Refill();
      if (pos_ >= len_) return -1;
    }
    return static_cast<uint8_t>(buffer_[pos_++]);
  }

  void Refill() {
    if (!in_->good()) return;
    in_->read(buffer_, kBufferSize);
    len_ = static_cast<size_t>(in_->gcount());
    pos_ = 0;
  }

  std::ifstream* in_;
  char buffer_[kBufferSize];
  size_t pos_ = 0;
  size_t len_ = 0;
};

/// Truncation mid-stream is kUnavailable: a concurrent rewrite can shrink
/// the file transiently and a bounded retry may see the complete image
/// again. Structural corruption is kDataLoss and never retried.
Status TruncatedError(std::string what) {
  return Status::Unavailable("truncated " + std::move(what));
}

Status VarintError(BufferedVarintReader::VarintResult r, std::string what) {
  if (r == BufferedVarintReader::VarintResult::kOverflow) {
    return Status::DataLoss("overlong varint in " + std::move(what));
  }
  return TruncatedError(std::move(what));
}

}  // namespace

DiskSequenceDatabase::DiskSequenceDatabase(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

std::unique_ptr<DiskSequenceDatabase> DiskSequenceDatabase::Open(
    const std::string& path, Status* error) {
  return Open(path, Options(), error);
}

std::unique_ptr<DiskSequenceDatabase> DiskSequenceDatabase::Open(
    const std::string& path, const Options& options, Status* error) {
  std::unique_ptr<DiskSequenceDatabase> db(
      new DiskSequenceDatabase(path, options));
  size_t n = 0;
  uint64_t total = 0;
  Status r = RunScanWithRetry(
      options.retry, options.sleeper, /*can_replay=*/true, "disk open",
      [&](int) {
        n = 0;
        total = 0;
        ScanAttempt attempt;
        attempt.status =
            db->StreamFile(/*visitor=*/nullptr, 0, SIZE_MAX, &n, &total,
                           &attempt.delivered_records);
        return attempt;
      });
  if (!r.ok()) {
    if (error != nullptr) *error = r;
    return nullptr;
  }
  db->num_sequences_ = n;
  db->total_symbols_ = total;
  if (error != nullptr) *error = Status::Ok();
  return db;
}

Status DiskSequenceDatabase::Scan(const Visitor& visitor,
                                  const RestartFn& restart) const {
  CountScan();
  db_telemetry::RecordScanStarted();
  return RunScanWithRetry(
      options_.retry, options_.sleeper,
      /*can_replay=*/static_cast<bool>(restart), "disk scan", [&](int) {
        if (restart) restart();
        size_t n = 0;
        uint64_t total = 0;
        ScanAttempt attempt;
        attempt.status = StreamFile(&visitor, 0, SIZE_MAX, &n, &total,
                                    &attempt.delivered_records);
        return attempt;
      },
      options_.retry_budget);
}

Status DiskSequenceDatabase::ScanRange(size_t begin_record, size_t end_record,
                                       const Visitor& visitor,
                                       const RestartFn& restart) const {
  return RunScanWithRetry(
      options_.retry, options_.sleeper,
      /*can_replay=*/static_cast<bool>(restart), "disk range scan", [&](int) {
        if (restart) restart();
        size_t n = 0;
        uint64_t total = 0;
        ScanAttempt attempt;
        attempt.status = StreamFile(&visitor, begin_record, end_record, &n,
                                    &total, &attempt.delivered_records);
        return attempt;
      },
      options_.retry_budget);
}

Status DiskSequenceDatabase::StreamFile(const Visitor* visitor,
                                        size_t begin_record,
                                        size_t end_record,
                                        size_t* num_sequences,
                                        uint64_t* total_symbols,
                                        bool* delivered_records) const {
  if (delivered_records != nullptr) *delivered_records = false;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!std::filesystem::exists(path_, ec)) {
      return Status::NotFound("no such database file: " + path_);
    }
    return Status::Unavailable("cannot open for reading: " + path_);
  }
  BufferedVarintReader reader(&in);
  char magic[sizeof(dbformat::kMagic)];
  if (!reader.ReadRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, dbformat::kMagic, sizeof(magic)) != 0) {
    return Status::DataLoss("bad magic: not an nmine sequence database");
  }
  char version = 0;
  if (!reader.ReadRaw(&version, 1) ||
      static_cast<uint8_t>(version) != dbformat::kVersion) {
    return Status::DataLoss("unsupported format version");
  }
  uint64_t count = 0;
  BufferedVarintReader::VarintResult vr = reader.ReadVarint64(&count);
  if (vr != BufferedVarintReader::VarintResult::kOk) {
    return VarintError(vr, "sequence count");
  }
  SequenceRecord record;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    uint64_t len = 0;
    if ((vr = reader.ReadVarint64(&id)) !=
            BufferedVarintReader::VarintResult::kOk ||
        (vr = reader.ReadVarint64(&len)) !=
            BufferedVarintReader::VarintResult::kOk) {
      return VarintError(vr,
                         "record header at sequence " + std::to_string(i));
    }
    record.id = static_cast<SequenceId>(id);
    record.symbols.clear();
    record.symbols.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      uint64_t sym = 0;
      if ((vr = reader.ReadVarint64(&sym)) !=
          BufferedVarintReader::VarintResult::kOk) {
        return VarintError(vr, "symbols at sequence " + std::to_string(i));
      }
      record.symbols.push_back(static_cast<SymbolId>(sym));
    }
    *total_symbols += record.symbols.size();
    ++*num_sequences;
    if (visitor != nullptr && i >= begin_record && i < end_record) {
      if (delivered_records != nullptr) *delivered_records = true;
      db_telemetry::RecordSequenceVisited();
      (*visitor)(record);
    }
    // Range scan: everything past the range is irrelevant — stop parsing
    // (so the trailing-garbage check below only guards full streams).
    if (i + 1 >= end_record) return Status::Ok();
  }
  if (!reader.AtEof()) {
    return Status::DataLoss("trailing garbage after last record");
  }
  return Status::Ok();
}

}  // namespace nmine
