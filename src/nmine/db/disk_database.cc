#include "nmine/db/disk_database.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace nmine {
namespace {

/// Buffered LEB128 reader over an std::ifstream.
class BufferedVarintReader {
 public:
  explicit BufferedVarintReader(std::ifstream* in) : in_(in) {}

  /// Reads `n` raw bytes into `out`. Returns false on EOF/short read.
  bool ReadRaw(char* out, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      int byte = NextByte();
      if (byte < 0) return false;
      out[i] = static_cast<char>(byte);
    }
    return true;
  }

  /// Reads one varint. Returns false on EOF or overlong encoding.
  bool ReadVarint64(uint64_t* value) {
    uint64_t result = 0;
    int shift = 0;
    while (shift <= 63) {
      int byte = NextByte();
      if (byte < 0) return false;
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *value = result;
        return true;
      }
      shift += 7;
    }
    return false;
  }

  /// True when the underlying stream is exhausted and the buffer is empty.
  bool AtEof() {
    if (pos_ < len_) return false;
    Refill();
    return pos_ >= len_;
  }

 private:
  static constexpr size_t kBufferSize = 1 << 16;

  int NextByte() {
    if (pos_ >= len_) {
      Refill();
      if (pos_ >= len_) return -1;
    }
    return static_cast<uint8_t>(buffer_[pos_++]);
  }

  void Refill() {
    if (!in_->good()) return;
    in_->read(buffer_, kBufferSize);
    len_ = static_cast<size_t>(in_->gcount());
    pos_ = 0;
  }

  std::ifstream* in_;
  char buffer_[kBufferSize];
  size_t pos_ = 0;
  size_t len_ = 0;
};

}  // namespace

DiskSequenceDatabase::DiskSequenceDatabase(std::string path)
    : path_(std::move(path)) {}

std::unique_ptr<DiskSequenceDatabase> DiskSequenceDatabase::Open(
    const std::string& path, IoResult* error) {
  std::unique_ptr<DiskSequenceDatabase> db(new DiskSequenceDatabase(path));
  size_t n = 0;
  uint64_t total = 0;
  IoResult r = db->StreamFile(/*visitor=*/nullptr, &n, &total);
  if (!r.ok) {
    if (error != nullptr) *error = r;
    return nullptr;
  }
  db->num_sequences_ = n;
  db->total_symbols_ = total;
  if (error != nullptr) *error = IoResult::Ok();
  return db;
}

void DiskSequenceDatabase::Scan(const Visitor& visitor) const {
  CountScan();
  size_t n = 0;
  uint64_t total = 0;
  // Open() already validated the file; a concurrent truncation would stop
  // the scan early, which the caller observes via NumSequences mismatch.
  StreamFile(&visitor, &n, &total);
}

IoResult DiskSequenceDatabase::StreamFile(const Visitor* visitor,
                                          size_t* num_sequences,
                                          uint64_t* total_symbols) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    return IoResult::Error("cannot open for reading: " + path_);
  }
  BufferedVarintReader reader(&in);
  char magic[sizeof(dbformat::kMagic)];
  if (!reader.ReadRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, dbformat::kMagic, sizeof(magic)) != 0) {
    return IoResult::Error("bad magic: not an nmine sequence database");
  }
  char version = 0;
  if (!reader.ReadRaw(&version, 1) ||
      static_cast<uint8_t>(version) != dbformat::kVersion) {
    return IoResult::Error("unsupported format version");
  }
  uint64_t count = 0;
  if (!reader.ReadVarint64(&count)) {
    return IoResult::Error("truncated sequence count");
  }
  SequenceRecord record;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    uint64_t len = 0;
    if (!reader.ReadVarint64(&id) || !reader.ReadVarint64(&len)) {
      return IoResult::Error("truncated record header at sequence " +
                             std::to_string(i));
    }
    record.id = static_cast<SequenceId>(id);
    record.symbols.clear();
    record.symbols.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      uint64_t sym = 0;
      if (!reader.ReadVarint64(&sym)) {
        return IoResult::Error("truncated symbols at sequence " +
                               std::to_string(i));
      }
      record.symbols.push_back(static_cast<SymbolId>(sym));
    }
    *total_symbols += record.symbols.size();
    ++*num_sequences;
    if (visitor != nullptr) {
      (*visitor)(record);
    }
  }
  if (!reader.AtEof()) {
    return IoResult::Error("trailing garbage after last record");
  }
  return IoResult::Ok();
}

}  // namespace nmine
