#ifndef NMINE_DB_FORMAT_H_
#define NMINE_DB_FORMAT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nmine/core/sequence.h"

namespace nmine {

/// Result of an I/O operation; `ok == false` carries a diagnostic message.
struct IoResult {
  bool ok = true;
  std::string message;

  static IoResult Ok() { return {true, ""}; }
  static IoResult Error(std::string msg) { return {false, std::move(msg)}; }
};

/// Binary on-disk layout of a sequence database (little-endian):
///
///   magic     "NMSQ"            4 bytes
///   version   u8                currently 1
///   count     varint            number of sequences
///   repeated count times:
///     id      varint            sequence id
///     len     varint            number of symbols
///     symbols len x varint      symbol ids
///
/// Varints are LEB128 (7 bits per byte, high bit = continuation).
namespace dbformat {

inline constexpr char kMagic[4] = {'N', 'M', 'S', 'Q'};
inline constexpr uint8_t kVersion = 1;

/// Appends `value` as LEB128 to `out`.
void PutVarint64(uint64_t value, std::string* out);

/// Decodes a LEB128 varint from [*pos, end). Advances *pos past the varint.
/// Returns false on truncation or overlong (> 10 byte) encodings.
bool GetVarint64(const char** pos, const char* end, uint64_t* value);

/// Serializes `records` into the binary layout.
std::string EncodeDatabase(const std::vector<SequenceRecord>& records);

/// Parses a full database image produced by EncodeDatabase.
IoResult DecodeDatabase(const std::string& bytes,
                        std::vector<SequenceRecord>* records);

/// Writes `records` to `path` (overwrites).
IoResult WriteDatabaseFile(const std::string& path,
                           const std::vector<SequenceRecord>& records);

/// Reads a database file written by WriteDatabaseFile.
IoResult ReadDatabaseFile(const std::string& path,
                          std::vector<SequenceRecord>* records);

}  // namespace dbformat
}  // namespace nmine

#endif  // NMINE_DB_FORMAT_H_
