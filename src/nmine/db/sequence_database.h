#ifndef NMINE_DB_SEQUENCE_DATABASE_H_
#define NMINE_DB_SEQUENCE_DATABASE_H_

#include <cstdint>
#include <functional>

#include "nmine/core/sequence.h"
#include "nmine/core/status.h"

namespace nmine {

/// Abstract sequence database (Definition 3.1) with scan accounting.
///
/// The paper's central cost metric is the number of full passes ("scans")
/// over the (potentially disk-resident) sequence database. Every call to
/// Scan() increments a counter that miners report in their results, so the
/// metric is measured identically for in-memory and on-disk databases.
///
/// Scans are fallible: the storage layer is treated as unreliable, and a
/// truncated or concurrently-rewritten file surfaces as a non-OK Status
/// instead of a silently partial pass (which would yield silently-wrong
/// match values that border collapsing trusts as ground truth). On a
/// non-OK return the caller MUST discard anything the visitor accumulated.
class SequenceDatabase {
 public:
  using Visitor = std::function<void(const SequenceRecord&)>;

  /// Invoked at the start of every scan attempt (including the first).
  /// Implementations with internal retry re-deliver records from the first
  /// one on each attempt; accumulating visitors reset their per-scan state
  /// here so a retried attempt does not double-count. Implementations that
  /// receive no restart callback must not retry once a record has been
  /// delivered.
  using RestartFn = std::function<void()>;

  virtual ~SequenceDatabase() = default;

  /// Number of sequences N.
  virtual size_t NumSequences() const = 0;

  /// Visits every sequence once, in storage order. Counts one scan
  /// (regardless of internal retry attempts). Returns non-OK when the pass
  /// could not be completed; the visitor's accumulated state is then
  /// meaningless and must be discarded.
  virtual Status Scan(const Visitor& visitor,
                      const RestartFn& restart) const = 0;

  /// Convenience overload without a restart callback (mid-stream failures
  /// are then not retried internally).
  Status Scan(const Visitor& visitor) const {
    return Scan(visitor, RestartFn());
  }

  /// Total number of symbols across all sequences.
  virtual uint64_t TotalSymbols() const = 0;

  /// Full passes performed since construction / the last reset.
  int64_t scan_count() const { return scan_count_; }
  void ResetScanCount() { scan_count_ = 0; }

 protected:
  SequenceDatabase() = default;
  SequenceDatabase(const SequenceDatabase&) = default;
  SequenceDatabase& operator=(const SequenceDatabase&) = default;

  /// Implementations call this at the start of each full pass.
  void CountScan() const { ++scan_count_; }

 private:
  mutable int64_t scan_count_ = 0;
};

}  // namespace nmine

#endif  // NMINE_DB_SEQUENCE_DATABASE_H_
