#ifndef NMINE_DB_SEQUENCE_DATABASE_H_
#define NMINE_DB_SEQUENCE_DATABASE_H_

#include <cstdint>
#include <functional>

#include "nmine/core/sequence.h"

namespace nmine {

/// Abstract sequence database (Definition 3.1) with scan accounting.
///
/// The paper's central cost metric is the number of full passes ("scans")
/// over the (potentially disk-resident) sequence database. Every call to
/// Scan() increments a counter that miners report in their results, so the
/// metric is measured identically for in-memory and on-disk databases.
class SequenceDatabase {
 public:
  using Visitor = std::function<void(const SequenceRecord&)>;

  virtual ~SequenceDatabase() = default;

  /// Number of sequences N.
  virtual size_t NumSequences() const = 0;

  /// Visits every sequence once, in storage order. Counts one scan.
  virtual void Scan(const Visitor& visitor) const = 0;

  /// Total number of symbols across all sequences.
  virtual uint64_t TotalSymbols() const = 0;

  /// Full passes performed since construction / the last reset.
  int64_t scan_count() const { return scan_count_; }
  void ResetScanCount() { scan_count_ = 0; }

 protected:
  SequenceDatabase() = default;
  SequenceDatabase(const SequenceDatabase&) = default;
  SequenceDatabase& operator=(const SequenceDatabase&) = default;

  /// Implementations call this at the start of each full pass.
  void CountScan() const { ++scan_count_; }

 private:
  mutable int64_t scan_count_ = 0;
};

}  // namespace nmine

#endif  // NMINE_DB_SEQUENCE_DATABASE_H_
