#ifndef NMINE_DB_RESERVOIR_SAMPLER_H_
#define NMINE_DB_RESERVOIR_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "nmine/core/sequence.h"
#include "nmine/db/in_memory_database.h"
#include "nmine/stats/random.h"

namespace nmine {

/// Sequential random sampler used by Phase 1 (Algorithm 4.1, lines 12-16,
/// after Vitter [27]): when the population size N is known in advance, the
/// i-th element is selected with probability (n - j) / (N - i), where j
/// elements have been chosen among the first i. Produces exactly
/// min(n, N) samples, each subset of size n equally likely.
class SequentialSampler {
 public:
  /// `n` is the memory capacity (sample size); `population` is N.
  SequentialSampler(size_t n, size_t population, Rng* rng);

  /// Offers the next element in population order; returns true if selected.
  /// Must be called exactly `population` times.
  bool Offer(const SequenceRecord& record);

  /// Selected sample, in population order.
  const std::vector<SequenceRecord>& sample() const { return sample_; }

  /// Moves the sample into an in-memory database.
  InMemorySequenceDatabase TakeDatabase();

 private:
  size_t n_;
  size_t population_;
  size_t seen_ = 0;
  Rng* rng_;
  std::vector<SequenceRecord> sample_;
};

/// Classic Algorithm-R reservoir sampler for streams of unknown length:
/// keeps the first n elements, then replaces a uniformly random slot with
/// probability n / i for the i-th element.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t n, Rng* rng);

  void Offer(const SequenceRecord& record);

  const std::vector<SequenceRecord>& sample() const { return sample_; }
  size_t seen() const { return seen_; }

  InMemorySequenceDatabase TakeDatabase();

 private:
  size_t n_;
  size_t seen_ = 0;
  Rng* rng_;
  std::vector<SequenceRecord> sample_;
};

}  // namespace nmine

#endif  // NMINE_DB_RESERVOIR_SAMPLER_H_
