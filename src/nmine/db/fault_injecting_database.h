#ifndef NMINE_DB_FAULT_INJECTING_DATABASE_H_
#define NMINE_DB_FAULT_INJECTING_DATABASE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nmine/db/sequence_database.h"
#include "nmine/stats/random.h"

namespace nmine {

/// Deterministic, seeded plan of faults to inject into a scan stream.
/// Scan attempts are numbered 0, 1, 2, ... in call order (a retrying
/// wrapper above the injector issues one Scan call per attempt, so a
/// "fail-count before success" plan composes naturally with retries).
///
/// Textual spec (comma-separated clauses, also exposed via the hidden
/// nmine_cli `--fault-plan` flag for end-to-end drills):
///   open-fail:N      first N attempts fail before any record (UNAVAILABLE)
///   short-read:N:K   next N attempts deliver only K records, then fail
///                    (UNAVAILABLE) — a transient short read at record K
///   fail-scan:I      attempt index I fails before any record (UNAVAILABLE);
///                    may be repeated for several indices
///   corrupt-from:S   every attempt with index >= S fails with DATA_LOSS
///                    (permanent corruption; retries cannot help)
///   flaky:P          any remaining attempt fails with probability P,
///                    drawn from the seeded generator
///   seed:X           seed for the flaky coin (default 42)
struct FaultPlan {
  int open_fail_scans = 0;
  int short_read_scans = 0;
  size_t short_read_records = 0;
  std::vector<int> fail_scan_indices;
  int corrupt_from_scan = -1;  // -1 = never
  double flake_probability = 0.0;
  uint64_t seed = 42;

  /// Parses the textual spec above. Returns nullopt and fills `*error` on
  /// malformed input.
  static std::optional<FaultPlan> Parse(const std::string& spec,
                                        std::string* error);
};

/// Decorator that injects the faults of a FaultPlan into an otherwise
/// healthy database, for tests and end-to-end fault drills. Forwarded
/// scans count against this database's own scan accounting.
class FaultInjectingDatabase : public SequenceDatabase {
 public:
  /// `inner` must outlive this object.
  FaultInjectingDatabase(const SequenceDatabase* inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)), rng_(plan_.seed) {}

  size_t NumSequences() const override { return inner_->NumSequences(); }
  uint64_t TotalSymbols() const override { return inner_->TotalSymbols(); }
  using SequenceDatabase::Scan;
  Status Scan(const Visitor& visitor, const RestartFn& restart) const override;

  /// Scan attempts observed so far (for tests).
  int attempts() const { return attempts_; }

 private:
  const SequenceDatabase* inner_;
  FaultPlan plan_;
  mutable Rng rng_;
  mutable int attempts_ = 0;
};

}  // namespace nmine

#endif  // NMINE_DB_FAULT_INJECTING_DATABASE_H_
