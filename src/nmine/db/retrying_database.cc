#include "nmine/db/retrying_database.h"

namespace nmine {

Status RetryingDatabase::Scan(const Visitor& visitor,
                              const RestartFn& restart) const {
  CountScan();
  return RunScanWithRetry(
      policy_, sleeper_, /*can_replay=*/static_cast<bool>(restart),
      "retrying scan", [&](int) {
        ScanAttempt attempt;
        bool delivered = false;
        attempt.status = inner_->Scan(
            [&](const SequenceRecord& r) {
              delivered = true;
              visitor(r);
            },
            restart);
        attempt.delivered_records = delivered;
        return attempt;
      },
      budget_);
}

}  // namespace nmine
