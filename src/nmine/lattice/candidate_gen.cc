#include "nmine/lattice/candidate_gen.h"

#include "nmine/obs/profiler.h"

namespace nmine {

bool InSpace(const Pattern& p, const PatternSpaceOptions& opts) {
  if (p.length() > opts.max_span) return false;
  size_t run = 0;
  for (size_t i = 0; i < p.length(); ++i) {
    if (IsWildcard(p[i])) {
      if (++run > opts.max_gap) return false;
    } else {
      run = 0;
    }
  }
  return true;
}

std::vector<Pattern> Level1Candidates(const std::vector<SymbolId>& symbols) {
  std::vector<Pattern> out;
  out.reserve(symbols.size());
  for (SymbolId s : symbols) {
    out.push_back(Pattern({s}));
  }
  return out;
}

std::vector<Pattern> RightExtensions(const Pattern& p,
                                     const std::vector<SymbolId>& symbols,
                                     const PatternSpaceOptions& opts) {
  std::vector<Pattern> out;
  for (size_t gap = 0; gap <= opts.max_gap; ++gap) {
    if (p.length() + gap + 1 > opts.max_span) break;
    for (SymbolId s : symbols) {
      std::vector<SymbolId> body = p.body();
      body.insert(body.end(), gap, kWildcard);
      body.push_back(s);
      out.push_back(Pattern(std::move(body)));
    }
  }
  return out;
}

Pattern GeneratingPrefix(const Pattern& p) {
  if (p.NumSymbols() <= 1) return Pattern();
  std::vector<SymbolId> body = p.body();
  body.pop_back();  // last position is never eternal
  while (!body.empty() && IsWildcard(body.back())) {
    body.pop_back();
  }
  return Pattern(std::move(body));
}

std::vector<Pattern> NextLevelCandidates(
    const std::vector<Pattern>& level_k,
    const std::vector<SymbolId>& symbols, const PatternSpaceOptions& opts,
    const std::function<bool(const Pattern&)>& subpattern_ok,
    size_t max_out) {
  NMINE_PROFILE_SCOPE("candidate_gen.next_level");
  std::vector<Pattern> out;
  for (const Pattern& p : level_k) {
    if (out.size() >= max_out) break;
    for (Pattern& candidate : RightExtensions(p, symbols, opts)) {
      if (out.size() >= max_out) break;
      bool keep = true;
      for (const Pattern& sub : candidate.ImmediateSubpatterns()) {
        if (!InSpace(sub, opts)) continue;
        if (!subpattern_ok(sub)) {
          keep = false;
          break;
        }
      }
      if (keep) {
        out.push_back(std::move(candidate));
      }
    }
  }
  return out;
}

}  // namespace nmine
