#ifndef NMINE_LATTICE_PATTERN_SET_H_
#define NMINE_LATTICE_PATTERN_SET_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nmine/core/pattern.h"

namespace nmine {

/// Hash map keyed by Pattern.
template <typename V>
using PatternMap = std::unordered_map<Pattern, V, PatternHash>;

/// A set of patterns with deterministic export order.
class PatternSet {
 public:
  PatternSet() = default;
  explicit PatternSet(const std::vector<Pattern>& patterns);

  /// Returns true if the pattern was newly inserted.
  bool Insert(const Pattern& p) { return set_.insert(p).second; }
  bool Contains(const Pattern& p) const { return set_.count(p) > 0; }
  bool Erase(const Pattern& p) { return set_.erase(p) > 0; }

  size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }
  void clear() { set_.clear(); }

  /// Elements sorted by (length, lexicographic) for stable output.
  std::vector<Pattern> ToSortedVector() const;

  /// Set intersection size |this ∩ other|.
  size_t IntersectionSize(const PatternSet& other) const;

  auto begin() const { return set_.begin(); }
  auto end() const { return set_.end(); }

 private:
  std::unordered_set<Pattern, PatternHash> set_;
};

}  // namespace nmine

#endif  // NMINE_LATTICE_PATTERN_SET_H_
